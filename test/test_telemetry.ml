(* Telemetry subsystem: the heap event core, log-bucketed histograms,
   the metrics registry, trace rings, SLO reports — and the two contracts
   the rest of the repo leans on: heap order matches sorted order, and a
   telemetry sink never changes simulation outcomes. *)

module Heap = Cdbs_util.Heap
module Stats = Cdbs_util.Stats
module Rng = Cdbs_util.Rng
module Tel = Cdbs_telemetry
module Histogram = Tel.Histogram
module Metrics = Tel.Metrics
module Trace = Tel.Trace
module Slo = Tel.Slo_report
module Simulator = Cdbs_cluster.Simulator
module Ksafety = Cdbs_core.Ksafety
module Fault = Cdbs_faults.Fault
module Fd = Cdbs_experiments.Fig_day

(* ---------------- heap: unit ---------------- *)

let test_heap_basics () =
  let h = Heap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.) string))) "pop on empty" None
    (Heap.pop_timed h);
  Heap.add h ~time:3. "c";
  Heap.add h ~time:1. "a";
  Heap.add h ~time:2. "b";
  Alcotest.(check (option (float 0.))) "min_time peeks" (Some 1.)
    (Heap.min_time h);
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option string)) "pop min" (Some "a") (Heap.pop h);
  Alcotest.(check (option (pair (float 0.) string)))
    "pop_timed returns key" (Some (2., "b")) (Heap.pop_timed h);
  Alcotest.(check (option string)) "last" (Some "c") (Heap.pop h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_tie_breaking () =
  let h = Heap.create ~capacity:1 () in
  (* Equal times: rank decides; equal (time, rank): FIFO. *)
  Heap.add h ~time:5. ~rank:2 "arrival-1";
  Heap.add h ~time:5. ~rank:0 "fault-1";
  Heap.add h ~time:5. ~rank:1 "dyn-1";
  Heap.add h ~time:5. ~rank:1 "dyn-2";
  Heap.add h ~time:5. ~rank:0 "fault-2";
  let order = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list string))
    "rank then FIFO"
    [ "fault-1"; "fault-2"; "dyn-1"; "dyn-2"; "arrival-1" ]
    order

let test_heap_drain_until () =
  let h = Heap.create () in
  List.iter (fun t -> Heap.add h ~time:t t) [ 4.; 1.; 3.; 2.; 9. ];
  let seen = ref [] in
  Heap.drain_until h ~time:3. ~f:(fun at v ->
      Alcotest.(check (float 0.)) "key equals payload" v at;
      seen := v :: !seen;
      (* Entries pushed mid-drain inside the bound drain too. *)
      if v = 1. then Heap.add h ~time:2.5 2.5);
  Alcotest.(check (list (float 0.))) "in-order within bound"
    [ 1.; 2.; 2.5; 3. ] (List.rev !seen);
  Alcotest.(check int) "rest stays" 2 (Heap.length h)

(* ---------------- heap: property ---------------- *)

(* Heap pop order is exactly the stable sort of the input by
   (time, rank): the contract that made the simulator refactor safe. *)
let prop_heap_matches_sorted =
  QCheck.Test.make ~count:200 ~name:"heap pop order = stable sort order"
    QCheck.(list (pair (int_range 0 8) (int_range 0 2)))
    (fun entries ->
      (* A coarse time grid plus only three ranks forces many ties, the
         interesting case. *)
      let entries =
        List.mapi (fun i (t, r) -> (float_of_int t, r, i)) entries
      in
      let h = Heap.create () in
      List.iter (fun (t, r, i) -> Heap.add h ~time:t ~rank:r i) entries;
      let popped = ref [] in
      let rec drain () =
        match Heap.pop h with
        | Some i ->
            popped := i :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      let expected =
        List.stable_sort
          (fun (t1, r1, _) (t2, r2, _) ->
            match Float.compare t1 t2 with
            | 0 -> Int.compare r1 r2
            | c -> c)
          entries
        |> List.map (fun (_, _, i) -> i)
      in
      List.rev !popped = expected)

(* ---------------- histogram: unit ---------------- *)

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Histogram.quantile h 0.5);
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  List.iter (Histogram.record h) [ 0.010; 0.020; 0.030 ];
  Histogram.record_n h 0.020 ~n:2;
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum exact" 0.1 (Histogram.sum h);
  Alcotest.(check (float 1e-12)) "mean exact" 0.02 (Histogram.mean h);
  Alcotest.(check (float 1e-12)) "min exact" 0.010 (Histogram.min_recorded h);
  Alcotest.(check (float 1e-12)) "max exact" 0.030 (Histogram.max_recorded h);
  (* Quantile estimates clamp to the observed range. *)
  Alcotest.(check bool) "p99 <= max" true
    (Histogram.percentile h 99. <= 0.030);
  Alcotest.(check bool) "p1 >= min" true (Histogram.percentile h 1. >= 0.010);
  Histogram.record h 1e-9;
  Alcotest.(check int) "below min_value underflows" 1 (Histogram.underflow h);
  Histogram.reset h;
  Alcotest.(check int) "reset empties" 0 (Histogram.count h)

let test_histogram_merge_params () =
  let a = Histogram.create ~per_decade:90 () in
  let b = Histogram.create ~per_decade:30 () in
  match Histogram.merge_into a ~from:b with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "merging mismatched bucketings should be rejected"

(* ---------------- histogram: properties ---------------- *)

let values_arbitrary =
  (* Positive values well above min_value, on a lattice so duplicates are
     common. *)
  QCheck.(
    list_of_size
      Gen.(int_range 1 300)
      (map (fun k -> 1e-4 *. float_of_int (k + 1)) (int_range 0 5000)))

(* The histogram's nearest-rank quantile lands within one log-bucket of
   the exact sorted-list quantile. *)
let prop_histogram_quantile_close =
  QCheck.Test.make ~count:200
    ~name:"histogram quantile within one bucket of exact"
    values_arbitrary
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      (* One bucket spans a factor of 10^(1/per_decade); the midpoint
         estimate is within half a bucket of any member, and clamping to
         the observed range can only help. *)
      let tol = (10. ** (1. /. 90.)) *. (1. +. 1e-9) in
      List.for_all
        (fun p ->
          let exact = Stats.percentile p xs in
          let est = Histogram.percentile h p in
          est <= exact *. tol && est >= exact /. tol)
        [ 1.; 25.; 50.; 75.; 90.; 95.; 99.; 100. ])

(* Merging is exact: bucket-count addition, so any way of splitting and
   recombining a stream yields the same histogram. *)
let prop_histogram_merge_associative =
  QCheck.Test.make ~count:200
    ~name:"histogram merge = recording the concatenation"
    QCheck.(triple values_arbitrary values_arbitrary values_arbitrary)
    (fun (xs, ys, zs) ->
      let of_list l =
        let h = Histogram.create () in
        List.iter (Histogram.record h) l;
        h
      in
      let whole = of_list (xs @ ys @ zs) in
      (* ((x + y) + z) built by merge... *)
      let merged = of_list xs in
      Histogram.merge_into merged ~from:(of_list ys);
      Histogram.merge_into merged ~from:(of_list zs);
      (* ...and (x + (y + z)) the other way around. *)
      let yz = of_list ys in
      Histogram.merge_into yz ~from:(of_list zs);
      let merged' = of_list xs in
      Histogram.merge_into merged' ~from:yz;
      Histogram.buckets merged = Histogram.buckets whole
      && Histogram.buckets merged' = Histogram.buckets whole
      && Histogram.count merged = Histogram.count whole
      && abs_float (Histogram.sum merged -. Histogram.sum whole) < 1e-9
      && Histogram.min_recorded merged = Histogram.min_recorded whole
      && Histogram.max_recorded merged = Histogram.max_recorded whole)

(* ---------------- metrics registry ---------------- *)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_metrics_registry () =
  let m = Metrics.create () in
  let req = Metrics.counter m "requests" in
  Metrics.incr req;
  Metrics.add (Metrics.counter m "requests") 4;
  Metrics.incr (Metrics.counter m "errors");
  Metrics.set_gauge (Metrics.gauge m "nodes") 6.;
  Alcotest.(check int) "counter interned" 5 (Metrics.counter_value req);
  Alcotest.(check (option int)) "find_counter" (Some 5)
    (Metrics.find_counter m "requests");
  Alcotest.(check (option int)) "unknown counter absent" None
    (Metrics.find_counter m "nope");
  Alcotest.(check (float 0.)) "gauge" 6.
    (Metrics.gauge_value (Metrics.gauge m "nodes"));
  let h = Metrics.histogram m "latency" in
  Histogram.record h 0.5;
  let h' = Metrics.histogram m "latency" in
  Alcotest.(check int) "histogram interned" 1 (Histogram.count h');
  Alcotest.(check (list (pair string int))) "counters sorted by name"
    [ ("errors", 1); ("requests", 5) ]
    (Metrics.counters m);
  Alcotest.(check bool) "json mentions the histogram" true
    (contains ~needle:"latency" (Metrics.to_json m))

(* ---------------- trace ring ---------------- *)

let test_trace_ring () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.emit t ~at:(float_of_int i) "tick" [ ("i", Trace.Int i) ]
  done;
  Alcotest.(check int) "ring keeps capacity" 3 (Trace.length t);
  Alcotest.(check int) "dropped counts evictions" 2 (Trace.dropped t);
  Alcotest.(check int) "total counts everything" 5 (Trace.total t);
  Alcotest.(check (list (float 0.))) "oldest first, newest kept"
    [ 3.; 4.; 5. ]
    (List.map (fun (e : Trace.event) -> e.Trace.at) (Trace.events t));
  let sp = Trace.span_start t ~at:10. "copy" [] in
  Trace.span_end t ~at:12.5 sp [];
  match Trace.find t "copy.end" with
  | [ e ] ->
      Alcotest.(check bool) "span end carries duration" true
        (List.exists
           (function
             | "duration_s", Trace.Float d -> abs_float (d -. 2.5) < 1e-9
             | _ -> false)
           e.Trace.attrs)
  | _ -> Alcotest.fail "expected exactly one span end event"

(* ---------------- SLO report ---------------- *)

let test_slo_gate () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 0.010; 0.020; 0.500 ];
  let r =
    Slo.of_histogram ~duration_s:60. ~offered:100 ~completed:97 ~shed:2
      ~failed:1 ~wasted_work_s:0.3 ~retries:4 ~hedges:1 ~bytes_moved_mb:12.
      ~migrations:1 ~faults_injected:3
      ~utilization:[ (1, 0.5); (0, 0.25) ]
      h
  in
  Alcotest.(check (float 1e-9)) "availability" 0.97 r.Slo.availability;
  Alcotest.(check (float 1e-9)) "shed rate" 0.02 r.Slo.shed_rate;
  Alcotest.(check (list (pair int (float 0.)))) "utilization sorted"
    [ (0, 0.25); (1, 0.5) ]
    r.Slo.utilization;
  Alcotest.(check (list string)) "passing gate" []
    (Slo.check (Slo.gate ~min_availability:0.9 ~max_shed_rate:0.05 ()) r);
  Alcotest.(check int) "failing gate reports both" 2
    (List.length
       (Slo.check
          (Slo.gate ~min_availability:0.99 ~max_p99_s:0.001 ())
          r))

(* ---------------- sink invisibility ---------------- *)

(* A telemetry sink is strictly an observer: the defended simulation's
   outcome record is structurally identical with and without one. *)
let prop_sink_is_invisible =
  QCheck.Test.make ~count:40 ~name:"telemetry sink never changes outcomes"
    Gen.scenario_arbitrary
    (fun (w, backends) ->
      let n = List.length backends in
      let alloc = Ksafety.allocate ~k:(min 1 (n - 1)) w backends in
      let config = Simulator.homogeneous_config n in
      let requests =
        let rng = Rng.create 31 in
        List.concat_map
          (fun (c : Cdbs_core.Query_class.t) ->
            List.init 6 (fun _ ->
                Cdbs_cluster.Request.read
                  ~arrival:(Rng.float rng 4.)
                  ~cost_mb:30. c.Cdbs_core.Query_class.id))
          (Cdbs_core.Workload.all_classes w)
      in
      let faults =
        if n < 2 then []
        else
          [
            Fault.crash ~at:1. 0;
            Fault.recover ~at:2. 0;
            Fault.slowdown ~at:2.5 ~backend:(n - 1) ~factor:3. ~duration:1.;
          ]
      in
      let resilience =
        Cdbs_resilience.Policy.make
          ~admission:
            (Cdbs_resilience.Admission.make ~max_depth:8 ~max_pending:1. ())
          ~breaker:Cdbs_resilience.Breaker.default_config
          ~hedge:Cdbs_resilience.Hedge.default
          ~deadline:(Cdbs_resilience.Deadline.make ~budget:3.)
          ()
      in
      let go telemetry =
        Simulator.run_open_with_faults ~rng:(Rng.create 7) ~resilience
          ?telemetry config alloc requests ~faults
      in
      let sink = Tel.Sink.create () in
      go None = go (Some sink))

(* ---------------- fig_day determinism ---------------- *)

let test_day_deterministic () =
  let params = { Fd.smoke with Fd.scale = 0.05 } in
  let go () =
    let r = Fd.run ~params () in
    (r.Fd.report, r.Fd.windows, r.Fd.events)
  in
  let r1, w1, e1 = go () in
  let r2, w2, e2 = go () in
  Alcotest.(check bool) "same seed, same SLO report" true (r1 = r2);
  Alcotest.(check bool) "same windows" true (w1 = w2);
  Alcotest.(check int) "same event count" e1 e2;
  Alcotest.(check bool) "nonempty day" true (e1 > 0 && r1.Slo.offered > 0)

let suite =
  [
    Alcotest.test_case "heap: push/pop/peek basics" `Quick test_heap_basics;
    Alcotest.test_case "heap: rank then FIFO tie-breaking" `Quick
      test_heap_tie_breaking;
    Alcotest.test_case "heap: drain_until is in-order and reentrant" `Quick
      test_heap_drain_until;
    Alcotest.test_case "histogram: counts, moments, clamping, underflow"
      `Quick test_histogram_basics;
    Alcotest.test_case "histogram: mismatched merge rejected" `Quick
      test_histogram_merge_params;
    Alcotest.test_case "metrics: interning, listing, json" `Quick
      test_metrics_registry;
    Alcotest.test_case "trace: ring eviction and spans" `Quick test_trace_ring;
    Alcotest.test_case "slo report: derivation and gates" `Quick
      test_slo_gate;
    Alcotest.test_case "fig_day: bit-identical at equal seeds" `Quick
      test_day_deterministic;
    QCheck_alcotest.to_alcotest prop_heap_matches_sorted;
    QCheck_alcotest.to_alcotest prop_histogram_quantile_close;
    QCheck_alcotest.to_alcotest prop_histogram_merge_associative;
    QCheck_alcotest.to_alcotest prop_sink_is_invisible;
  ]
