(* Dense allocator core: equivalence with the legacy list path, pool
   determinism, incremental repair safety, island-parallel determinism. *)

open Cdbs_core
module Rng = Cdbs_util.Rng

let frag_set_to_list s = List.map Fragment.name (Fragment.Set.elements s)

(* Compare two allocations structurally: same backends, same per-backend
   fragment sets, same assignment matrix (up to float noise from the two
   code paths accumulating sums in different orders). *)
let same_allocation a b =
  let n = Allocation.num_backends a in
  n = Allocation.num_backends b
  && Array.length (Allocation.classes a) = Array.length (Allocation.classes b)
  && begin
       let ok = ref true in
       for bk = 0 to n - 1 do
         if
           not
             (Fragment.Set.equal
                (Allocation.fragments_of a bk)
                (Allocation.fragments_of b bk))
         then ok := false
       done;
       Array.iter
         (fun c ->
           for bk = 0 to n - 1 do
             if
               abs_float
                 (Allocation.get_assign a bk c -. Allocation.get_assign b bk c)
               > 1e-9
             then ok := false
           done)
         (Allocation.classes a);
       !ok
     end

(* (a) Dense greedy ≡ legacy greedy: same fragment placement, same
   assignment, hence identical cost and replication degree. *)
let prop_dense_greedy_matches_legacy =
  QCheck.Test.make ~count:300 ~name:"dense greedy matches legacy greedy"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let legacy = Greedy.allocate w backends in
      let inst = Dense.(of_allocation (Allocation.create w backends)).Dense.inst in
      let dense = Dense.greedy inst in
      let converted = Dense.to_allocation dense in
      let scale_ok =
        abs_float (Allocation.scale legacy -. Dense.scale dense) <= 1e-9
      in
      let stored_ok =
        abs_float (Allocation.total_stored legacy -. Dense.total_stored dense)
        <= 1e-6
      in
      if not (same_allocation legacy converted && scale_ok && stored_ok) then
        QCheck.Test.fail_reportf
          "legacy scale=%.12f stored=%.6f vs dense scale=%.12f stored=%.6f@.%a"
          (Allocation.scale legacy)
          (Allocation.total_stored legacy)
          (Dense.scale dense) (Dense.total_stored dense)
          Fmt.(list ~sep:comma (list ~sep:semi string))
          [
            frag_set_to_list (Allocation.fragments_of legacy 0);
            frag_set_to_list (Allocation.fragments_of converted 0);
          ]
      else true)

(* Round-trip: legacy -> dense -> legacy preserves structure and cost. *)
let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"of_allocation/to_allocation round-trip"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let legacy = Greedy.allocate w backends in
      let dense = Dense.of_allocation legacy in
      let back = Dense.to_allocation dense in
      same_allocation legacy back
      && abs_float (Allocation.scale legacy -. Dense.scale dense) <= 1e-9)

(* (b) Incremental.repair stays checker-clean and within the move budget
   across random deltas, including backend adds and retirements. *)
let prop_repair_clean =
  QCheck.Test.make ~count:200 ~name:"incremental repair is checker-clean"
    (QCheck.pair Gen.scenario_arbitrary QCheck.small_nat)
    (fun ((w, backends), salt) ->
      let rng = Rng.create (1000 + salt) in
      let t = Dense.of_allocation (Greedy.allocate w backends) in
      let deltas = Incremental.random_delta ~rng ~frac:0.3 t in
      let alive = List.length backends in
      let deltas =
        (if Rng.bool rng then
           [ Incremental.Add_backend { name = "Bnew"; capacity = 1.0 } ]
         else [])
        @ (if alive >= 3 && Rng.bool rng then
             [ Incremental.Retire_backend { backend = Rng.int rng alive } ]
           else [])
        @ deltas
      in
      let budget = t.Dense.inst.Dense.n_frags in
      let st, stats = Incremental.repair ~budget t deltas in
      let dense_diags =
        Cdbs_analysis.Check_allocation.check_dense st
        |> Cdbs_analysis.Diagnostic.errors
      in
      let legacy_diags =
        Cdbs_analysis.Check_allocation.check (Dense.to_allocation st)
        |> Cdbs_analysis.Diagnostic.errors
      in
      if dense_diags <> [] || legacy_diags <> [] then
        QCheck.Test.fail_reportf "diagnostics: dense %d legacy %d — first: %s"
          (List.length dense_diags)
          (List.length legacy_diags)
          (match dense_diags @ legacy_diags with
          | d :: _ -> Fmt.str "%a" Cdbs_analysis.Diagnostic.pp d
          | [] -> "-")
      else stats.Incremental.rebalance_fragments <= budget)

(* (b') with k-safety: a k-safe input stays k-safe through the delta. *)
let prop_repair_preserves_ksafety =
  QCheck.Test.make ~count:100 ~name:"incremental repair preserves k-safety"
    (QCheck.pair Gen.scenario_arbitrary QCheck.small_nat)
    (fun ((w, backends), salt) ->
      QCheck.assume (List.length backends >= 2);
      let rng = Rng.create (2000 + salt) in
      let t = Dense.of_allocation (Ksafety.allocate ~k:1 w backends) in
      let deltas = Incremental.random_delta ~rng ~frac:0.2 t in
      let st, _ = Incremental.repair ~k:1 t deltas in
      Cdbs_analysis.Check_allocation.check_dense ~k:1 st
      |> Cdbs_analysis.Diagnostic.errors
      = [])

(* (c) The island-parallel memetic is bit-deterministic for a fixed
   (seed, islands) no matter how many domains run it. *)
let prop_memetic_par_deterministic =
  QCheck.Test.make ~count:30
    ~name:"parallel memetic deterministic across domains"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let t = Dense.of_allocation (Greedy.allocate w backends) in
      let params =
        {
          Memetic_par.population = 4;
          generations = 6;
          mutations_per_parent = 2;
          islands = 4;
          migration_every = 2;
        }
      in
      let run domains =
        Memetic_par.improve ~params ~domains ~seed:7 (Dense.copy t)
      in
      let r1 = run 1 and r2 = run 2 and r4 = run 4 in
      let same a b =
        a.Dense.assign = b.Dense.assign
        && Array.for_all2 Bytes.equal a.Dense.held b.Dense.held
        && Dense.cost a = Dense.cost b
      in
      let not_worse =
        not (Memetic_par.better (Dense.cost t) (Dense.cost r1))
      in
      same r1 r2 && same r1 r4 && not_worse)

let test_repair_budget_zero () =
  let rng = Rng.create 3 in
  let inst =
    Dense.synthetic ~rng ~fragments:200 ~reads:60 ~updates:15 ~backends:5 ()
  in
  let t = Dense.greedy inst in
  let _, stats =
    Incremental.repair ~budget:0 t
      [ Incremental.Add_backend { name = "B6"; capacity = 1.0 } ]
  in
  Alcotest.(check int)
    "no rebalance copies" 0 stats.Incremental.rebalance_fragments

let test_repair_moves_o_delta () =
  let rng = Rng.create 11 in
  let inst =
    Dense.synthetic ~rng ~fragments:5000 ~reads:1500 ~updates:300 ~backends:20
      ()
  in
  let t = Dense.greedy inst in
  let deltas = Incremental.random_delta ~rng ~frac:0.01 t in
  let st, stats = Incremental.repair t deltas in
  let errs =
    Cdbs_analysis.Check_allocation.check_dense st
    |> Cdbs_analysis.Diagnostic.errors
  in
  Alcotest.(check int) "clean" 0 (List.length errs);
  let moved_frac =
    float_of_int stats.Incremental.moved_fragments
    /. float_of_int inst.Dense.n_frags
  in
  Alcotest.(check bool)
    (Printf.sprintf "moved %.4f <= 0.05" moved_frac)
    true (moved_frac <= 0.05)

let test_check_dense_flags_corruption () =
  let rng = Rng.create 5 in
  let inst =
    Dense.synthetic ~rng ~fragments:300 ~reads:80 ~updates:20 ~backends:6 ()
  in
  let t = Dense.greedy inst in
  Alcotest.(check int) "clean before" 0
    (List.length
       (Cdbs_analysis.Diagnostic.errors
          (Cdbs_analysis.Check_allocation.check_dense t)));
  (* Corrupt: assign a read class somewhere without its data. *)
  let c = inst.Dense.read_idx.(0) in
  let b =
    let rec find b = if Dense.holds t b c then find (b + 1) else b in
    try find 0 with _ -> 0
  in
  if b < Dense.num_backends t then begin
    t.Dense.assign.(b).(c) <- t.Dense.assign.(b).(c) +. 0.1;
    let errs =
      Cdbs_analysis.Diagnostic.errors
        (Cdbs_analysis.Check_allocation.check_dense t)
    in
    Alcotest.(check bool) "flags ALC002/ALC003" true
      (List.exists
         (fun d ->
           d.Cdbs_analysis.Diagnostic.code = "ALC002"
           || d.Cdbs_analysis.Diagnostic.code = "ALC003")
         errs)
  end

let clean_errs st =
  List.length
    (Cdbs_analysis.Diagnostic.errors
       (Cdbs_analysis.Check_allocation.check_dense st))

(* Add_update exercises the fragment->update CSR rebuild (the only delta
   that forces it): the new class must land in the CSR and be ROWA-pinned. *)
let test_repair_add_update () =
  let rng = Rng.create 21 in
  let inst =
    Dense.synthetic ~rng ~fragments:400 ~reads:100 ~updates:25 ~backends:8 ()
  in
  let t = Dense.greedy inst in
  let st, _ =
    Incremental.repair t
      [
        Incremental.Add_update
          { id = "u+new"; weight = 0.01; frags = [| 0; 1; 2; 3 |] };
      ]
  in
  Alcotest.(check int) "clean" 0 (clean_errs st);
  let i2 = st.Dense.inst in
  let c = i2.Dense.n_classes - 1 in
  Alcotest.(check string) "appended id" "u+new" i2.Dense.class_id.(c);
  Alcotest.(check bool) "is update" true (Dense.is_update i2 c);
  Alcotest.(check bool) "pinned somewhere" true (st.Dense.upd_pins.(c) > 0);
  let listed = ref false in
  for k = i2.Dense.frag_upd_off.(0) to i2.Dense.frag_upd_off.(1) - 1 do
    if i2.Dense.frag_upd.(k) = c then listed := true
  done;
  Alcotest.(check bool) "fragment->update CSR rebuilt" true !listed

(* Two repairs over copies sharing one base instance: the first claims the
   in-place slack, the second must fall back to copying — neither sibling
   (nor the untouched original) may observe the other's appended class. *)
let test_repair_sibling_extensions () =
  let rng = Rng.create 23 in
  let inst =
    Dense.synthetic ~rng ~fragments:300 ~reads:80 ~updates:20 ~backends:6 ()
  in
  let t = Dense.greedy inst in
  let a = Dense.copy t and b = Dense.copy t in
  let sa, _ =
    Incremental.repair a
      [ Incremental.Add_read { id = "qa"; weight = 0.01; frags = [| 1; 2 |] } ]
  in
  let sb, _ =
    Incremental.repair b
      [
        Incremental.Add_read { id = "qb"; weight = 0.01; frags = [| 5; 6; 7 |] };
      ]
  in
  let last st =
    st.Dense.inst.Dense.class_id.(st.Dense.inst.Dense.n_classes - 1)
  in
  Alcotest.(check string) "first sibling appends its class" "qa" (last sa);
  Alcotest.(check string) "second sibling appends its class" "qb" (last sb);
  Alcotest.(check int) "first sibling clean" 0 (clean_errs sa);
  Alcotest.(check int) "second sibling clean" 0 (clean_errs sb);
  Alcotest.(check int) "original untouched and clean" 0 (clean_errs t);
  Alcotest.(check int) "original class count unchanged"
    inst.Dense.n_classes t.Dense.inst.Dense.n_classes

(* Chained repairs keep appending into the same physical arrays (each link
   consumes the previous state); the end state must stay checker-clean. *)
let test_repair_chained () =
  let rng = Rng.create 29 in
  let inst =
    Dense.synthetic ~rng ~fragments:300 ~reads:80 ~updates:20 ~backends:6 ()
  in
  let st = ref (Dense.greedy inst) in
  for i = 1 to 5 do
    let d = Incremental.random_delta ~rng ~frac:0.05 !st in
    let d =
      Incremental.Add_read
        {
          id = Printf.sprintf "qc%d" i;
          weight = 0.005;
          frags = [| i; i + 1 |];
        }
      :: d
    in
    let st', _ = Incremental.repair !st d in
    st := st'
  done;
  Alcotest.(check int) "clean after 5 chained repairs" 0 (clean_errs !st);
  Alcotest.(check bool) "classes accumulated" true
    (!st.Dense.inst.Dense.n_classes >= inst.Dense.n_classes + 5)

let test_pool_map_matches_sequential () =
  let arr = Array.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Array.map f arr in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" d)
        seq
        (Cdbs_util.Pool.map ~domains:d f arr))
    [ 1; 2; 4; 8 ]

let test_pool_propagates_exceptions () =
  match
    Cdbs_util.Pool.map ~domains:2
      (fun x -> if x = 3 then failwith "boom" else x)
      [| 1; 2; 3; 4 |]
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m

(* The opt-in balance pass: a Reweight alone rescales in place and moves
   nothing; with ~balance:true the same delta installs extra replicas of
   the now-hot classes on underloaded backends, within budget, and the
   modeled cost can only improve. *)
let test_repair_balance_pass () =
  (* The control loop's scenario: a day-mix k-safe allocation hit by a
     night-heavy reweight of the quiz class.  The bare Reweight rescales
     in place and leaves the quiz holders overloaded; ~balance:true must
     install the hot class's fragments on more backends (within budget),
     equalize relative loads, and improve the model. *)
  let module Wtrace = Cdbs_workloads.Trace in
  let w = Wtrace.workload_of_mix ~mix:(Wtrace.class_mix ~hour:12.) in
  let alloc =
    Ksafety.allocate ~k:1 w (Backend.homogeneous 4)
  in
  let base = Dense.of_allocation alloc in
  let b_idx =
    match
      List.mapi (fun i c -> (i, c.Query_class.id)) w.Workload.reads
      |> List.find_opt (fun (_, id) -> String.equal id "B")
    with
    | Some (i, _) -> i
    | None -> Alcotest.fail "class B missing"
  in
  let deltas = [ Incremental.Reweight { cls = b_idx; weight = 0.6 } ] in
  let plain, plain_stats = Incremental.repair ~k:1 (Dense.copy base) deltas in
  Alcotest.(check int) "bare reweight moves no data" 0
    plain_stats.Incremental.moved_fragments;
  let budget = 64 in
  let balanced, stats =
    Incremental.repair ~k:1 ~budget ~balance:true (Dense.copy base) deltas
  in
  if stats.Incremental.rebalance_fragments > budget then
    Alcotest.failf "balance overspent: %d > %d"
      stats.Incremental.rebalance_fragments budget;
  if stats.Incremental.moved_fragments = 0 then
    Alcotest.fail "balance pass installed nothing under heavy skew";
  let spread st =
    let rel =
      Array.mapi (fun b l -> l /. st.Dense.inst.Dense.loads.(b)) st.Dense.load
    in
    Array.fold_left max neg_infinity rel /. Array.fold_left min infinity rel
  in
  if spread plain < 1.5 then
    Alcotest.failf "reweight alone should skew the loads: spread %.3f"
      (spread plain);
  if spread balanced > 1.1 then
    Alcotest.failf "balance left loads skewed: spread %.3f" (spread balanced);
  if Dense.scale balanced >= Dense.scale plain then
    Alcotest.failf "balance did not improve the model: %.4f >= %.4f"
      (Dense.scale balanced) (Dense.scale plain);
  match
    Cdbs_analysis.Check_allocation.check_dense ~k:1 balanced
    |> Cdbs_analysis.Diagnostic.errors
  with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "balanced repair not clean: %a"
        Cdbs_analysis.Diagnostic.pp d

let test_repair_copy_isolation () =
  (* Regression: repair CONSUMES its input, and Dense.copy is the
     documented escape hatch — but copies share the immutable instance,
     and the in-place instance extension used to write reweighted
     class weights into that shared array.  A repair on one copy then
     corrupted the pre-delta allocation and every sibling copy: a second
     identical repair saw w0 = w1 and silently skipped the rescale. *)
  let module Wtrace = Cdbs_workloads.Trace in
  let w = Wtrace.workload_of_mix ~mix:(Wtrace.class_mix ~hour:12.) in
  let base = Dense.of_allocation (Ksafety.allocate ~k:1 w (Backend.homogeneous 4)) in
  let w0 = base.Dense.inst.Dense.class_weight.(0) in
  let deltas = [ Incremental.Reweight { cls = 0; weight = w0 *. 4. } ] in
  let total st c =
    let s = ref 0. in
    Array.iter (fun row -> s := !s +. row.(c)) st.Dense.assign;
    !s
  in
  let first, _ = Incremental.repair ~k:1 (Dense.copy base) deltas in
  Alcotest.(check (float 1e-9))
    "base keeps its pre-delta weight" w0
    base.Dense.inst.Dense.class_weight.(0);
  Alcotest.(check (float 1e-9)) "base assignments untouched" w0 (total base 0);
  let second, _ = Incremental.repair ~k:1 (Dense.copy base) deltas in
  Alcotest.(check (float 1e-9))
    "first repair scaled the class" (w0 *. 4.) (total first 0);
  Alcotest.(check (float 1e-9))
    "second identical repair scales too, not a no-op" (w0 *. 4.)
    (total second 0)

let test_synthetic_greedy_clean () =
  let rng = Rng.create 42 in
  let inst =
    Dense.synthetic ~materialize:true ~rng ~fragments:400 ~reads:120
      ~updates:30 ~backends:8 ()
  in
  let dense = Dense.greedy inst in
  let alloc = Dense.to_allocation dense in
  (match Allocation.validate alloc with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es));
  Alcotest.(check bool) "scale >= 1" true (Dense.scale dense >= 1.)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_dense_greedy_matches_legacy;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_repair_clean;
    QCheck_alcotest.to_alcotest prop_repair_preserves_ksafety;
    QCheck_alcotest.to_alcotest prop_memetic_par_deterministic;
    Alcotest.test_case "repair budget=0 adds no rebalance copies" `Quick
      test_repair_budget_zero;
    Alcotest.test_case "repair on 1% delta moves few fragments" `Quick
      test_repair_moves_o_delta;
    Alcotest.test_case "check_dense flags corruption" `Quick
      test_check_dense_flags_corruption;
    Alcotest.test_case "repair Add_update rebuilds the update CSR" `Quick
      test_repair_add_update;
    Alcotest.test_case "sibling extensions of one base stay isolated" `Quick
      test_repair_sibling_extensions;
    Alcotest.test_case "chained repairs stay clean" `Quick test_repair_chained;
    Alcotest.test_case "balance pass installs replicas within budget" `Quick
      test_repair_balance_pass;
    Alcotest.test_case "repair on a copy leaves the original intact" `Quick
      test_repair_copy_isolation;
    Alcotest.test_case "pool map = sequential map" `Quick
      test_pool_map_matches_sequential;
    Alcotest.test_case "pool propagates exceptions" `Quick
      test_pool_propagates_exceptions;
    Alcotest.test_case "synthetic greedy is valid" `Quick
      test_synthetic_greedy_clean;
  ]
