(* The self-healing control loop: estimator, drift detector, guarded
   reallocation with canary + rollback, and the fig_drift headline.

   Three layers: unit tests over the estimator/detector math, synthetic
   Loop runs driving the full directive protocol (cutover, commit,
   rollback, flapping suppression) under the protocol monitor, and the
   fig_drift experiment pins — the self-tuning arm must beat the static
   arm on p99 AND availability, chaos runs must stay monitor-clean and
   k-safe across seeds. *)

module Est = Cdbs_control.Estimator
module Drift = Cdbs_control.Drift
module Loop = Cdbs_control.Loop
module Tel = Cdbs_telemetry
module Trace = Cdbs_telemetry.Trace
module Sink = Cdbs_telemetry.Sink
module Wtrace = Cdbs_workloads.Trace
module Mon = Cdbs_analysis.Monitor
module Diagnostic = Cdbs_analysis.Diagnostic
module Fdr = Cdbs_experiments.Fig_drift
module Allocation = Cdbs_core.Allocation
module Workload = Cdbs_core.Workload
module Query_class = Cdbs_core.Query_class
module Ksafety = Cdbs_core.Ksafety
module Backend = Cdbs_core.Backend
module Controller = Cdbs_cluster.Controller

let feq ?(eps = 1e-9) what a b =
  if abs_float (a -. b) > eps then
    Alcotest.failf "%s: %.12f <> %.12f" what a b

let clean name m =
  if not (Mon.clean m) then
    Alcotest.failf "%s: monitor found violations: %s" name
      (String.concat ", "
         (List.map
            (fun d -> d.Diagnostic.code)
            (Diagnostic.errors (Mon.report m))))

(* One synthetic read-serve event in the shape the simulator emits (the
   estimator keys on the "cls" tag). *)
let serve tr ~at ~cls ~dur =
  Trace.emit tr ~at "backend.serve"
    [
      ("backend", Trace.Int 0); ("kind", Trace.Str "read");
      ("cls", Trace.Str cls); ("start", Trace.Float at);
      ("finish", Trace.Float (at +. dur));
    ]

(* ------------------------------------------------------------------ *)
(* Estimator                                                           *)
(* ------------------------------------------------------------------ *)

let test_estimator_service_mass () =
  let sink = Sink.create () in
  let est = Est.create ~half_life_windows:1. () in
  Alcotest.(check bool) "attached" true (Est.attach est sink);
  Alcotest.(check bool) "idempotent" false (Est.attach est sink);
  for i = 0 to 9 do
    serve sink.Sink.trace ~at:(float_of_int i) ~cls:"A" ~dur:0.1;
    serve sink.Sink.trace ~at:(float_of_int i) ~cls:"B" ~dur:0.3
  done;
  Alcotest.(check int) "harvested" 20 (Est.harvested est);
  Alcotest.(check (list (pair string (float 1e-9))))
    "no mix before end_window" [] (Est.measured_mix est);
  Est.end_window est;
  feq "samples" (Est.samples est) 20.;
  (* Shares are service-time mass, not raw counts: equal counts, but B
     costs 3x per request, so B carries 75 % of the mass. *)
  (match Est.measured_mix est with
  | [ ("A", a); ("B", b) ] ->
      feq ~eps:1e-6 "A share" a 0.25;
      feq ~eps:1e-6 "B share" b 0.75
  | mix ->
      Alcotest.failf "unexpected mix: %s"
        (String.concat ", " (List.map fst mix)));
  (match Est.mean_service_s est "B" with
  | Some m -> feq ~eps:1e-9 "B mean" m 0.3
  | None -> Alcotest.fail "no mean for B");
  Est.detach est sink

let test_estimator_decay () =
  let sink = Sink.create () in
  let est = Est.create ~half_life_windows:1. () in
  ignore (Est.attach est sink);
  for i = 0 to 9 do
    serve sink.Sink.trace ~at:(float_of_int i) ~cls:"A" ~dur:0.1
  done;
  Est.end_window est;
  for i = 0 to 9 do
    serve sink.Sink.trace ~at:(float_of_int i) ~cls:"B" ~dur:0.1
  done;
  Est.end_window est;
  (* A stopped arriving one half-life ago: its mass halved, B's is
     fresh, so B holds 2/3 of the decayed service mass. *)
  (match Est.measured_mix est with
  | [ ("A", a); ("B", b) ] ->
      feq ~eps:1e-6 "A faded" a (1. /. 3.);
      feq ~eps:1e-6 "B fresh" b (2. /. 3.)
  | _ -> Alcotest.fail "unexpected mix");
  Alcotest.(check int) "windows" 2 (Est.windows est)

let read_weight w id =
  match
    List.find_opt (fun c -> String.equal c.Query_class.id id) w.Workload.reads
  with
  | Some c -> c.Query_class.weight
  | None -> Alcotest.failf "class %s missing" id

let test_estimator_merge_into () =
  let sink = Sink.create () in
  let est = Est.create ~half_life_windows:3. () in
  ignore (Est.attach est sink);
  let w = Wtrace.workload_at ~hour:12. in
  (* A month of B-only traffic: lambda ~ 1, measured mix ~ all-B. *)
  for win = 0 to 4 do
    for i = 0 to 199 do
      serve sink.Sink.trace
        ~at:((200. *. float_of_int win) +. float_of_int i)
        ~cls:"B" ~dur:1.
    done;
    Est.end_window est
  done;
  let merged = Est.merge_into est w in
  let mass wl =
    List.fold_left (fun acc c -> acc +. c.Query_class.weight) 0.
      wl.Workload.reads
  in
  feq ~eps:1e-9 "read mass preserved" (mass w) (mass merged);
  Alcotest.(check int) "updates untouched"
    (List.length w.Workload.updates)
    (List.length merged.Workload.updates);
  List.iter2
    (fun (a : Query_class.t) (b : Query_class.t) ->
      feq ~eps:1e-12 ("update " ^ a.Query_class.id) a.Query_class.weight
        b.Query_class.weight)
    w.Workload.updates merged.Workload.updates;
  if read_weight merged "B" <= read_weight w "B" then
    Alcotest.fail "B weight did not grow toward the measured mix";
  if read_weight merged "A" >= read_weight w "A" then
    Alcotest.fail "A weight did not shrink";
  (* An empty estimator merges to the unchanged workload. *)
  let empty = Est.create () in
  let same = Est.merge_into empty w in
  feq "empty merge is identity" (read_weight same "A") (read_weight w "A")

(* ------------------------------------------------------------------ *)
(* Drift detector                                                      *)
(* ------------------------------------------------------------------ *)

let test_drift_score () =
  let day = Wtrace.class_mix ~hour:12. in
  let night = Wtrace.class_mix ~hour:5. in
  feq "identical mixes score 0" (Drift.score ~assumed:day ~measured:day) 0.;
  if Drift.score ~assumed:day ~measured:night <= 0.5 then
    Alcotest.fail "day->night step should score heavily";
  (* Classes missing from one side count as share 0 there. *)
  if
    Drift.score ~assumed:[ ("A", 1.) ] ~measured:[ ("B", 1.) ] <= 1.
  then Alcotest.fail "disjoint mixes should score > 1"

let test_drift_schmitt_and_cooldown () =
  let cfg = { Drift.threshold = 1.0; hysteresis = 0.4; cooldown_s = 100. } in
  let d = Drift.create cfg in
  Alcotest.(check bool) "fires at threshold" true
    (Drift.update d ~now:0. ~score:2.);
  Alcotest.(check bool) "disarmed after firing" false
    (Drift.update d ~now:1. ~score:2.);
  (* Re-arms only below threshold - hysteresis. *)
  Alcotest.(check bool) "0.7 does not re-arm" false
    (Drift.update d ~now:2. ~score:0.7);
  Alcotest.(check bool) "still disarmed" false
    (Drift.update d ~now:3. ~score:2.);
  Alcotest.(check bool) "0.5 re-arms silently" false
    (Drift.update d ~now:4. ~score:0.5);
  Alcotest.(check bool) "fires again once re-armed" true
    (Drift.update d ~now:5. ~score:2.);
  (* The post-action cooldown suppresses even an armed detector. *)
  Drift.action_done d ~now:10.;
  ignore (Drift.update d ~now:20. ~score:0.5);
  Alcotest.(check bool) "suppressed inside cooldown" false
    (Drift.update d ~now:50. ~score:5.);
  Alcotest.(check bool) "in_cooldown" true (Drift.in_cooldown d ~now:50.);
  Alcotest.(check bool) "fires at cooldown end" true
    (Drift.update d ~now:110. ~score:5.);
  Alcotest.check_raises "hysteresis >= threshold rejected"
    (Invalid_argument
       "Drift: need 0 < threshold, 0 <= hysteresis < threshold, cooldown >= 0")
    (fun () ->
      ignore
        (Drift.create
           { Drift.threshold = 0.5; hysteresis = 0.5; cooldown_s = 0. }))

(* ------------------------------------------------------------------ *)
(* Loop: synthetic directive protocol                                  *)
(* ------------------------------------------------------------------ *)

let loop_fixture ~cooldown_s () =
  let sink = Sink.create ~capacity:4096 () in
  let monitor = Mon.create () in
  ignore (Mon.attach monitor sink);
  let alloc =
    Ksafety.allocate ~k:1
      (Wtrace.workload_of_mix ~mix:(Wtrace.class_mix ~hour:12.))
      (Backend.homogeneous 4)
  in
  let config =
    {
      Loop.default with
      Loop.detector = { Drift.threshold = 0.8; hysteresis = 0.3; cooldown_s };
      min_samples = 5.;
      margin = 0.01;
      half_life_windows = 1.;
      canary_windows = 1;
      k = 1;
    }
  in
  let loop = Loop.create ~config ~sink ~allocation:alloc () in
  (sink, monitor, alloc, loop)

(* Feed one window of all-B traffic (vs the day-mix assumption) and
   report it served with the given SLO. *)
let drift_window sink loop ~w ?(p99_s = 0.1) ?(availability = 1.) () =
  let t0 = 600. *. float_of_int w in
  for i = 0 to 19 do
    serve sink.Sink.trace ~at:(t0 +. float_of_int i) ~cls:"B" ~dur:1.
  done;
  Loop.observe_window loop ~at:(t0 +. 600.) ~p99_s ~availability

let cutover_by sink loop ~max_windows =
  let rec go w =
    if w >= max_windows then
      Alcotest.failf "no cutover within %d windows" max_windows
    else
      match drift_window sink loop ~w () with
      | Loop.Cutover _ as c -> (w, c)
      | Loop.Rollback _ -> Alcotest.fail "unexpected rollback"
      | Loop.Stay -> go (w + 1)
  in
  go 0

let test_loop_cutover_and_commit () =
  let sink, monitor, alloc, loop = loop_fixture ~cooldown_s:0. () in
  let w, directive = cutover_by sink loop ~max_windows:6 in
  (match directive with
  | Loop.Cutover { next; moved_mb; _ } ->
      if moved_mb <= 0. then Alcotest.fail "cutover moved no data";
      if next == alloc then Alcotest.fail "cutover returned the incumbent";
      Alcotest.(check bool) "canary in flight" true (Loop.migrating loop)
  | _ -> assert false);
  (* A healthy canary window commits. *)
  (match drift_window sink loop ~w:(w + 1) () with
  | Loop.Stay -> ()
  | _ -> Alcotest.fail "healthy canary should Stay");
  Alcotest.(check bool) "committed" false (Loop.migrating loop);
  Alcotest.(check int) "one reallocation" 1 (Loop.reallocations loop);
  Alcotest.(check int) "one commit" 1 (Loop.commits loop);
  Alcotest.(check int) "no rollback" 0 (Loop.rollbacks loop);
  clean "cutover+commit" monitor;
  Loop.detach loop

let test_loop_rollback_on_breach () =
  let sink, monitor, alloc, loop = loop_fixture ~cooldown_s:0. () in
  let w, _ = cutover_by sink loop ~max_windows:6 in
  (* The canary window regresses 100x past the p99 guardrail. *)
  (match drift_window sink loop ~w:(w + 1) ~p99_s:10. () with
  | Loop.Rollback { prev; _ } ->
      Alcotest.(check int) "snapshot has the same cluster"
        (Allocation.num_backends alloc)
        (Allocation.num_backends prev);
      List.iter
        (fun b ->
          if
            not
              (Cdbs_core.Fragment.Set.equal
                 (Allocation.fragments_of alloc b)
                 (Allocation.fragments_of prev b))
          then Alcotest.failf "backend %d fragments not restored" b)
        (List.init (Allocation.num_backends alloc) Fun.id)
  | _ -> Alcotest.fail "breached canary must roll back");
  Alcotest.(check int) "one rollback" 1 (Loop.rollbacks loop);
  Alcotest.(check int) "no commit" 0 (Loop.commits loop);
  Alcotest.(check bool) "loop back to observing" false (Loop.migrating loop);
  (* TRC018: the rollback was preceded by a control.breach — the monitor
     would flag an unpaired one. *)
  clean "rollback pairing" monitor;
  Loop.detach loop

let test_loop_availability_breach () =
  let sink, monitor, _, loop = loop_fixture ~cooldown_s:0. () in
  let w, _ = cutover_by sink loop ~max_windows:6 in
  (match drift_window sink loop ~w:(w + 1) ~availability:0.5 () with
  | Loop.Rollback _ -> ()
  | _ -> Alcotest.fail "availability floor must roll back");
  clean "availability rollback" monitor;
  Loop.detach loop

let test_loop_flapping_suppressed () =
  (* A flapping workload (the measured mix swings every window) under an
     effectively infinite cooldown: at most ONE reallocation ever fires,
     and the monitor confirms no trigger landed inside the cooldown
     (TRC017). *)
  let sink, monitor, _, loop = loop_fixture ~cooldown_s:1e9 () in
  let actions = ref 0 in
  for w = 0 to 11 do
    let t0 = 600. *. float_of_int w in
    let cls = if w mod 2 = 0 then "B" else "A" in
    for i = 0 to 19 do
      serve sink.Sink.trace ~at:(t0 +. float_of_int i) ~cls ~dur:1.
    done;
    match
      Loop.observe_window loop ~at:(t0 +. 600.) ~p99_s:0.1 ~availability:1.
    with
    | Loop.Stay -> ()
    | Loop.Cutover _ | Loop.Rollback _ -> incr actions
  done;
  if !actions > 2 then
    Alcotest.failf "flapping caused %d directives under cooldown" !actions;
  if Loop.reallocations loop > 1 then
    Alcotest.failf "flapping caused %d reallocations in one cooldown window"
      (Loop.reallocations loop);
  clean "flapping" monitor;
  Loop.detach loop

let test_loop_set_allocation_guard () =
  let sink, _, alloc, loop = loop_fixture ~cooldown_s:0. () in
  Loop.set_allocation loop alloc;
  let _ = cutover_by sink loop ~max_windows:6 in
  (match Loop.set_allocation loop alloc with
  | () -> Alcotest.fail "set_allocation must refuse mid-canary"
  | exception Invalid_argument _ -> ());
  Loop.detach loop

(* ------------------------------------------------------------------ *)
(* fig_drift: the headline                                             *)
(* ------------------------------------------------------------------ *)

let test_fig_drift_headline () =
  let monitor = Mon.create () in
  let r = Fdr.run ~params:Fdr.smoke ~monitor () in
  Alcotest.(check bool)
    "self-tuning beats static on p99 AND availability" true (Fdr.verdict r);
  if r.Fdr.reallocations < 1 then
    Alcotest.fail "the step-change must trigger at least one reallocation";
  Alcotest.(check int) "every cutover resolves"
    r.Fdr.reallocations
    (r.Fdr.commits + r.Fdr.rollbacks);
  if r.Fdr.peak_drift < Fdr.smoke.Fdr.control.Loop.detector.Drift.threshold
  then Alcotest.fail "peak drift should cross the trigger threshold";
  (* The report surfaces the control fields. *)
  Alcotest.(check int) "report reallocations"
    r.Fdr.reallocations r.Fdr.tuned.Fdr.report.Tel.Slo_report.reallocations;
  Alcotest.(check int) "static arm reports none" 0
    r.Fdr.static_.Fdr.report.Tel.Slo_report.reallocations;
  clean "fig_drift smoke" monitor

let test_fig_drift_chaos_seeds () =
  (* Crash-during-auto-reallocation: chaos crashes and workload shifts
     land around the control pipeline across seeds.  Every run must stay
     monitor-clean (TRC016-018: no overlap, cooldown respected, every
     rollback paired with a breach) and close on a k-safe, untorn
     allocation. *)
  List.iter
    (fun seed ->
      let monitor = Mon.create () in
      let params = { Fdr.smoke with Fdr.seed; chaos = true } in
      let r = Fdr.run ~params ~monitor () in
      clean (Printf.sprintf "chaos seed %d" seed) monitor;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: cutovers resolve" seed)
        r.Fdr.reallocations
        (r.Fdr.commits + r.Fdr.rollbacks);
      let diags = Cdbs_analysis.Check_allocation.check ~k:1 r.Fdr.final_alloc in
      match Diagnostic.errors diags with
      | [] -> ()
      | es ->
          Alcotest.failf "seed %d: final allocation not k-safe/clean: %s" seed
            (String.concat ", " (List.map (fun d -> d.Diagnostic.code) es)))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Controller.autotune                                                 *)
(* ------------------------------------------------------------------ *)

let test_controller_autotune () =
  let schema = Wtrace.schema in
  let rows = List.map (fun (t, n) -> (t, min n 60)) Wtrace.row_counts in
  let c = Controller.create ~schema ~rows ~backends:2 ~seed:7 in
  (match Controller.autotune c () with
  | Controller.Insufficient_history -> ()
  | _ -> Alcotest.fail "empty journal must be Insufficient_history");
  for _ = 1 to 60 do
    ignore
      (Controller.submit c "SELECT u_id, u_passwd FROM users WHERE u_name = 'student'")
  done;
  (match Controller.autotune c ~min_requests:10 () with
  | Controller.Tuned { score; shipped_mb } ->
      if not (score > 0.) then Alcotest.fail "tuned with zero score";
      if shipped_mb < 0. then Alcotest.fail "negative shipped volume"
  | Controller.Tune_failed e -> Alcotest.failf "tune failed: %s" e
  | Controller.Migration_in_progress ->
      Alcotest.fail "no migration should be in flight"
  | Controller.Insufficient_history ->
      Alcotest.fail "60 requests is enough history"
  | Controller.No_drift _ ->
      Alcotest.fail "fully replicated start must read as full drift");
  (* Immediately after acting the detector is cooling down. *)
  (match Controller.autotune c ~min_requests:10 () with
  | Controller.No_drift _ -> ()
  | _ -> Alcotest.fail "second call inside the cooldown must be No_drift")

(* ------------------------------------------------------------------ *)
(* Trace mix exposure (satellite)                                      *)
(* ------------------------------------------------------------------ *)

let test_trace_mix_exposed () =
  let night = Wtrace.mix_at ~hour:5. in
  let noon = Wtrace.mix_at ~hour:12. in
  let sum m = List.fold_left (fun acc (_, w) -> acc +. w) 0. m in
  feq ~eps:1e-9 "mix_at sums to 1 (night)" (sum night) 1.;
  feq ~eps:1e-9 "mix_at sums to 1 (noon)" (sum noon) 1.;
  let b m = Option.value ~default:0. (List.assoc_opt "B" m) in
  if b night <= b noon then
    Alcotest.fail "quiz batch must dominate the night mix";
  (* mix_at is exactly the weight vector workload_at deploys. *)
  let w = Wtrace.workload_at ~hour:5. in
  List.iter
    (fun (c : Query_class.t) ->
      match List.assoc_opt c.Query_class.id night with
      | Some share -> feq ~eps:1e-9 ("share " ^ c.Query_class.id)
                        share c.Query_class.weight
      | None -> Alcotest.failf "class %s missing from mix_at" c.Query_class.id)
    (Workload.all_classes w);
  (* specs_of_mix pins all read weight on the named class. *)
  let specs = Wtrace.specs_of_mix ~mix:[ ("B", 1.) ] in
  List.iter
    (fun (s : Cdbs_workloads.Spec.class_spec) ->
      match s.Cdbs_workloads.Spec.id with
      | "B" -> feq ~eps:1e-9 "B gets the read share"
                 s.Cdbs_workloads.Spec.weight 0.95
      | "A" | "C" | "D" | "E" ->
          feq ~eps:1e-12 ("zero " ^ s.Cdbs_workloads.Spec.id)
            s.Cdbs_workloads.Spec.weight 0.
      | _ -> ())
    specs

let suite =
  [
    Alcotest.test_case "estimator measures service mass" `Quick
      test_estimator_service_mass;
    Alcotest.test_case "estimator decays absent classes" `Quick
      test_estimator_decay;
    Alcotest.test_case "merge_into blends measured into assumed" `Quick
      test_estimator_merge_into;
    Alcotest.test_case "drift score" `Quick test_drift_score;
    Alcotest.test_case "drift Schmitt trigger and cooldown" `Quick
      test_drift_schmitt_and_cooldown;
    Alcotest.test_case "loop cutover commits on a healthy canary" `Quick
      test_loop_cutover_and_commit;
    Alcotest.test_case "loop rolls back on a p99 breach" `Quick
      test_loop_rollback_on_breach;
    Alcotest.test_case "loop rolls back on an availability breach" `Quick
      test_loop_availability_breach;
    Alcotest.test_case "flapping workload is cooldown-suppressed" `Quick
      test_loop_flapping_suppressed;
    Alcotest.test_case "set_allocation refuses mid-canary" `Quick
      test_loop_set_allocation_guard;
    Alcotest.test_case "fig_drift: self-tuning beats static" `Slow
      test_fig_drift_headline;
    Alcotest.test_case "fig_drift chaos: monitor-clean and k-safe across \
                        seeds" `Slow test_fig_drift_chaos_seeds;
    Alcotest.test_case "Controller.autotune lifecycle" `Quick
      test_controller_autotune;
    Alcotest.test_case "Trace exposes the per-window mix" `Quick
      test_trace_mix_exposed;
  ]
