let () =
  Alcotest.run "cdbs"
    [
      ("lp", Test_lp.suite);
      ("sql", Test_sql.suite);
      ("storage", Test_storage.suite);
      ("stats-index", Test_stats_index.suite);
      ("core-model", Test_core_model.suite);
      ("allocation", Test_allocation.suite);
      ("dense", Test_dense.suite);
      ("physical", Test_physical.suite);
      ("ksafety", Test_ksafety.suite);
      ("faults", Test_faults.suite);
      ("cluster", Test_cluster.suite);
      ("migration", Test_migration.suite);
      ("protocol", Test_protocol.suite);
      ("workloads", Test_workloads.suite);
      ("tpch-sql", Test_tpch_sql.suite);
      ("timeseries", Test_timeseries.suite);
      ("segmented-memetic", Test_segmented.suite);
      ("autoscale", Test_autoscale.suite);
      ("analysis", Test_analysis.suite);
      ("monitor", Test_monitor.suite);
      ("experiments", Test_experiments.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("resilience", Test_resilience.suite);
      ("telemetry", Test_telemetry.suite);
      ("partition", Test_partition.suite);
      ("control", Test_control.suite);
    ]
