(* Protocol sanitizer: the runtime-verification monitor over simulation
   traces, plus the resilience-policy and fault-timeline lints.

   Two layers, mirroring test_analysis: clean-run properties proving the
   engine's own traces are invariant-clean under every flagship scenario
   (day, chaos, overload, migration) across seeds, and unit tests proving
   that corrupted traces and configurations trigger each TRC*/RES*/FLT*
   code. *)

module Mon = Cdbs_analysis.Monitor
module Diagnostic = Cdbs_analysis.Diagnostic
module Check_policy = Cdbs_analysis.Check_policy
module Check_faults = Cdbs_analysis.Check_faults
module Trace = Cdbs_telemetry.Trace
module Sink = Cdbs_telemetry.Sink
module Slo = Cdbs_telemetry.Slo_report
module Res = Cdbs_resilience
module Fault = Cdbs_faults.Fault
module Chaos = Cdbs_faults.Chaos
module Sim = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Rng = Cdbs_util.Rng

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let has code ds =
  if not (List.mem code (codes ds)) then
    Alcotest.failf "expected diagnostic %s, got: %s" code
      (String.concat ", " (codes ds))

let has_error code ds = has code (Diagnostic.errors ds)
let has_warning code ds = has code (Diagnostic.warnings ds)

let no_errors name ds =
  if Diagnostic.has_errors ds then
    Alcotest.failf "%s: unexpected errors: %s" name
      (String.concat ", " (codes (Diagnostic.errors ds)))

let clean name m =
  if not (Mon.clean m) then
    Alcotest.failf "%s: monitor found violations: %s" name
      (String.concat ", " (codes (Diagnostic.errors (Mon.report m))))

(* ------------------------------------------------------------------ *)
(* Synthetic trace vocabulary                                          *)
(* ------------------------------------------------------------------ *)

let ev at name attrs = { Trace.at; name; attrs }

let started =
  ev 0. "run.start" [ ("backends", Trace.Int 4); ("offered", Trace.Int 0) ]

let crash at b = ev at "backend.crash" [ ("backend", Trace.Int b) ]

let recover ?(replay = 0.) at b =
  ev at "backend.recover"
    [ ("backend", Trace.Int b); ("replay_mb", Trace.Float replay) ]

let serve ?(kind = "read") at b =
  ev at "backend.serve"
    [
      ("backend", Trace.Int b); ("kind", Trace.Str kind);
      ("start", Trace.Float at); ("finish", Trace.Float (at +. 0.01));
    ]

let breaker at b state =
  ev at "breaker.transition"
    [ ("backend", Trace.Int b); ("state", Trace.Str state) ]

let retry ?remaining at uid attempt retry_at =
  ev at "request.retry"
    ([
       ("uid", Trace.Int uid); ("attempt", Trace.Int attempt);
       ("retry_at", Trace.Float retry_at);
     ]
    @ match remaining with
      | Some r -> [ ("remaining_s", Trace.Float r) ]
      | None -> [])

let feed events =
  let m = Mon.create () in
  List.iter (Mon.observe m) events;
  m

(* ------------------------------------------------------------------ *)
(* Unit tests: each TRC code has a provoking trace                     *)
(* ------------------------------------------------------------------ *)

let test_trc001_double_crash () =
  let m = feed [ started; crash 1. 0; crash 2. 0 ] in
  has_error "TRC001" (Mon.report m);
  Alcotest.(check int) "one violation" 1 (Mon.violations m)

let test_trc002_spurious_recover () =
  let m = feed [ started; recover 1. 2 ] in
  has_error "TRC002" (Mon.report m)

let test_trc003_serve_while_down () =
  let m = feed [ started; crash 1. 0; serve 2. 0 ] in
  has_error "TRC003" (Mon.report m);
  (* Updates on a down backend are equally illegal. *)
  let m = feed [ started; crash 1. 1; serve ~kind:"update" 2. 1 ] in
  has_error "TRC003" (Mon.report m)

let test_trc004_illegal_breaker_hop () =
  (* closed -> half_open skips Open. *)
  let m = feed [ started; breaker 1. 0 "half_open" ] in
  has_error "TRC004" (Mon.report m);
  (* open -> closed skips the probe phase. *)
  let m = feed [ started; breaker 1. 0 "open"; breaker 2. 0 "closed" ] in
  has_error "TRC004" (Mon.report m)

let test_trc004_legal_cycle_clean () =
  let m =
    feed
      [
        started; breaker 1. 0 "open"; breaker 2. 0 "half_open";
        breaker 3. 0 "closed"; breaker 4. 0 "open";
        breaker 5. 0 "half_open"; breaker 6. 0 "open";
      ]
  in
  clean "legal breaker cycle" m

let test_trc005_read_on_stale () =
  let m =
    feed [ started; crash 1. 0; recover ~replay:4. 2. 0; serve 3. 0 ]
  in
  has_error "TRC005" (Mon.report m)

let test_trc005_stale_updates_allowed () =
  (* A stale backend takes updates and catch-up work, just no reads. *)
  let m =
    feed
      [
        started; crash 1. 0; recover ~replay:4. 2. 0;
        serve ~kind:"update" 3. 0; serve ~kind:"catchup" 4. 0;
        ev 5. "backend.catchup_done" [ ("backend", Trace.Int 0) ];
        serve 6. 0;
      ]
  in
  clean "stale updates then gated rejoin" m

let test_trc005_catchup_without_pending () =
  let m =
    feed [ started; ev 1. "backend.catchup_done" [ ("backend", Trace.Int 0) ] ]
  in
  has_error "TRC005" (Mon.report m)

let test_trc006_below_migration_floor () =
  let m =
    feed
      [
        started;
        ev 0. "migration.floor"
          [ ("class", Trace.Str "C1"); ("floor", Trace.Int 2) ];
        ev 1. "migration.live"
          [ ("class", Trace.Str "C1"); ("replicas", Trace.Int 2) ];
        ev 2. "migration.live"
          [ ("class", Trace.Str "C1"); ("replicas", Trace.Int 1) ];
      ]
  in
  has_error "TRC006" (Mon.report m);
  Alcotest.(check int) "only the drop below the floor" 1 (Mon.violations m)

let test_trc007_retry_in_past () =
  let m = feed [ started; retry 5. 7 1 4. ] in
  has_error "TRC007" (Mon.report m)

let test_trc007_attempt_not_increasing () =
  let m = feed [ started; retry 1. 7 1 1.5; retry 2. 7 1 2.5 ] in
  has_error "TRC007" (Mon.report m)

let test_trc007_budget_growing () =
  let m =
    feed
      [
        started; retry ~remaining:0.8 1. 7 1 1.5;
        retry ~remaining:1.6 2. 7 2 2.5;
      ]
  in
  has_error "TRC007" (Mon.report m)

let test_trc007_healthy_chain_clean () =
  let m =
    feed
      [
        started; retry ~remaining:1.5 1. 7 1 1.2;
        retry ~remaining:0.9 2. 7 2 2.3; retry ~remaining:0.2 3. 7 3 3.4;
      ]
  in
  clean "decreasing-budget retry chain" m

let summary ?(offered = 10) ?(completed = 8) ?(aborted = 2) ?(shed = 1)
    ?(timeouts = 1) ?(hedged = 3) ?(hedge_wins = 1) ?(offered_updates = 4)
    ?(completed_updates = 4) at =
  ev at "run.summary"
    [
      ("offered", Trace.Int offered); ("completed", Trace.Int completed);
      ("aborted", Trace.Int aborted); ("shed", Trace.Int shed);
      ("timeouts", Trace.Int timeouts); ("hedged", Trace.Int hedged);
      ("hedge_wins", Trace.Int hedge_wins);
      ("offered_updates", Trace.Int offered_updates);
      ("completed_updates", Trace.Int completed_updates);
    ]

let test_trc008_conservation () =
  let m = feed [ started; summary ~completed:9 10. ] in
  has_error "TRC008" (Mon.report m);
  let m = feed [ started; summary ~shed:3 10. ] in
  has_error "TRC008" (Mon.report m);
  let m = feed [ started; summary ~completed_updates:5 10. ] in
  has_error "TRC008" (Mon.report m);
  let m = feed [ started; summary 10. ] in
  clean "balanced summary" m

let test_trc009_hedge_accounting () =
  let m =
    feed [ started; ev 1. "request.hedge_win" [ ("uid", Trace.Int 7) ] ]
  in
  has_error "TRC009" (Mon.report m);
  (* Arm consumed by the first win; a second win is spurious. *)
  let m =
    feed
      [
        started;
        ev 1. "request.hedge_armed"
          [ ("uid", Trace.Int 7); ("fire_at", Trace.Float 1.5) ];
        ev 2. "request.hedge_win" [ ("uid", Trace.Int 7) ];
        ev 3. "request.hedge_win" [ ("uid", Trace.Int 7) ];
      ]
  in
  has_error "TRC009" (Mon.report m);
  (* Armed to fire in the past. *)
  let m =
    feed
      [
        started;
        ev 2. "request.hedge_armed"
          [ ("uid", Trace.Int 7); ("fire_at", Trace.Float 1.) ];
      ]
  in
  has_error "TRC009" (Mon.report m);
  (* Wins exceeding hedges at the summary. *)
  let m = feed [ started; summary ~hedged:1 ~hedge_wins:2 10. ] in
  has_error "TRC009" (Mon.report m)

let test_trc010_span_pairing () =
  let m = feed [ started; ev 1. "checkpoint.end" [] ] in
  has_error "TRC010" (Mon.report m);
  let m =
    feed
      [
        started; ev 1. "checkpoint.start" [];
        ev 2. "checkpoint.end" [ ("duration_s", Trace.Float (-1.)) ];
      ]
  in
  has_error "TRC010" (Mon.report m);
  let m =
    feed
      [
        started; ev 1. "checkpoint.start" [];
        ev 2. "checkpoint.end" [ ("duration_s", Trace.Float 1.) ];
        (* Unclosed spans are deliberately tolerated. *)
        ev 3. "migration.start" [];
      ]
  in
  clean "paired span and tolerated unclosed span" m

let test_trc011_event_sanity () =
  let m = feed [ started; crash (-1.) 0 ] in
  has_error "TRC011" (Mon.report m);
  let m = feed [ started; crash nan 1 ] in
  has_error "TRC011" (Mon.report m);
  (* Missing required attribute: a warning, not a crash. *)
  let m = feed [ started; ev 1. "backend.crash" [] ] in
  has_warning "TRC011" (Mon.report m);
  Alcotest.(check int) "missing attr is not an error" 0 (Mon.violations m);
  (* Service interval running backwards. *)
  let m =
    feed
      [
        started;
        ev 1. "backend.serve"
          [
            ("backend", Trace.Int 0); ("kind", Trace.Str "read");
            ("start", Trace.Float 2.); ("finish", Trace.Float 1.);
          ];
      ]
  in
  has_error "TRC011" (Mon.report m)

let test_trc012_ring_overflow () =
  let sink = Sink.create ~capacity:8 () in
  let m = Mon.create () in
  Alcotest.(check bool) "attached" true (Mon.attach m sink);
  for i = 0 to 19 do
    Trace.emit sink.Sink.trace ~at:(float_of_int i) "tick" []
  done;
  Alcotest.(check int) "monitor saw every event" 20 (Mon.events_seen m);
  has_warning "TRC012" (Mon.report m);
  clean "overflow is a warning, not a violation" m;
  Mon.detach m sink;
  (* Detached: overflow no longer reported, events no longer observed. *)
  Trace.emit sink.Sink.trace ~at:20. "tick" [];
  Alcotest.(check int) "detached monitor sees nothing" 20 (Mon.events_seen m)

(* ------------------------------------------------------------------ *)
(* Monitor mechanics                                                   *)
(* ------------------------------------------------------------------ *)

let test_run_start_resets_state () =
  (* The same crash twice is only a violation within one run. *)
  let m = feed [ started; crash 1. 0; started; crash 1. 0 ] in
  clean "state reset at run.start" m;
  Alcotest.(check int) "events counted across runs" 4 (Mon.events_seen m)

let test_attach_idempotent () =
  let sink = Sink.create () in
  let m = Mon.create () in
  Alcotest.(check bool) "first attach" true (Mon.attach m sink);
  Alcotest.(check bool) "second attach is a no-op" false (Mon.attach m sink);
  Trace.emit sink.Sink.trace ~at:0. "tick" [];
  Alcotest.(check int) "observed once, not twice" 1 (Mon.events_seen m)

let test_suppression_cap () =
  let spurious i = recover (float_of_int i) 2 in
  let m = feed (started :: List.init 80 spurious) in
  Alcotest.(check int) "every violation counted" 80 (Mon.violations m);
  let kept =
    List.filter (fun d -> d.Diagnostic.code = "TRC002") (Mon.report m)
  in
  (* 50 verbatim + 1 info suppression marker. *)
  Alcotest.(check int) "kept diagnostics capped" 51 (List.length kept)

let test_check_exn_raises () =
  let m = feed [ started; recover 1. 0 ] in
  (match Mon.check_exn ~context:"test" m with
  | () -> Alcotest.fail "check_exn did not raise"
  | exception Failure msg ->
      Alcotest.(check bool) "message names the context" true
        (String.length msg > 0));
  let m = feed [ started ] in
  Mon.check_exn ~context:"test" m

(* ------------------------------------------------------------------ *)
(* Clean-run properties: the engine's own traces are invariant-clean   *)
(* ------------------------------------------------------------------ *)

let trace_requests ~rng ~rate ~duration =
  List.map
    (fun (r : Request.t) ->
      { r with Request.arrival = Rng.float rng duration })
    (Cdbs_workloads.Spec.requests ~rng
       ~n:(int_of_float (rate *. duration))
       (Cdbs_workloads.Trace.specs_at ~hour:14.))

let test_chaos_runs_clean () =
  List.iter
    (fun seed ->
      let n = 4 and k = 1 and duration = 120. in
      let workload = Cdbs_workloads.Trace.workload_at ~hour:14. in
      let alloc =
        Cdbs_core.Ksafety.allocate ~k workload
          (Cdbs_core.Backend.homogeneous n)
      in
      let rng = Rng.create seed in
      let faults =
        Chaos.generate ~rng ~num_backends:n
          {
            Chaos.default with
            Chaos.mtbf = 40.;
            mttr = 10.;
            horizon = duration;
            max_concurrent_down = Some k;
          }
      in
      let reqs = trace_requests ~rng ~rate:20. ~duration in
      let monitor = Mon.create () in
      let fo =
        Sim.run_open_with_faults ~rng:(Rng.create (seed + 1))
          ~resilience:
            (Cdbs_experiments.Fig_overload.defenses ~deadline_s:1.)
          ~monitor
          (Sim.homogeneous_config n)
          alloc reqs ~faults
      in
      Alcotest.(check bool) "run completed work" true (fo.Sim.offered > 0);
      Alcotest.(check bool)
        "monitor saw the whole stream" true
        (Mon.events_seen monitor > fo.Sim.offered);
      clean (Printf.sprintf "chaos seed %d" seed) monitor)
    [ 7; 11; 42 ]

let test_day_runs_clean () =
  List.iter
    (fun seed ->
      let monitor = Mon.create () in
      let r =
        Cdbs_experiments.Fig_day.run
          ~params:{ Cdbs_experiments.Fig_day.smoke with seed }
          ~monitor ()
      in
      Alcotest.(check bool) "day produced events" true (r.Cdbs_experiments.Fig_day.events > 0);
      clean (Printf.sprintf "day seed %d" seed) monitor)
    [ 1; 2; 42 ]

let test_overload_runs_clean () =
  let monitor = Mon.create () in
  let _victim, c =
    Cdbs_experiments.Fig_overload.compare_at ~nodes:4 ~seed:11 ~duration:60.
      ~rate_per_s:120. ~monitor ()
  in
  Alcotest.(check bool) "both arms offered work" true
    (c.Cdbs_experiments.Fig_overload.defended.Cdbs_experiments.Fig_overload.offered > 0);
  clean "overload (both arms)" monitor

let test_faults_scenario_clean () =
  let monitor = Mon.create () in
  let r =
    Cdbs_experiments.Fig_faults.scenario ~nodes:4 ~rate_per_s:20.
      ~duration:120. ~monitor ()
  in
  Alcotest.(check bool) "lifecycle completed" true
    (r.Cdbs_experiments.Fig_faults.availability > 0.9);
  clean "crash/recover lifecycle" monitor

let test_migration_runs_clean () =
  let nodes = 4 in
  let plan = Cdbs_experiments.Fig_migration.plan ~nodes () in
  let target =
    Cdbs_core.Greedy.allocate
      (Cdbs_workloads.Trace.workload_at ~hour:14.)
      (Cdbs_core.Backend.homogeneous nodes)
  in
  let schedule = Cdbs_migration.Schedule.make ~start:30. ~bandwidth:2. plan in
  let rng = Rng.create 11 in
  let reqs = trace_requests ~rng ~rate:20. ~duration:120. in
  let monitor = Mon.create () in
  let mo =
    Sim.run_open_with_migration
      (Sim.homogeneous_config nodes)
      ~monitor ~target ~schedule reqs
  in
  Alcotest.(check bool) "target deployed" true mo.Sim.target_deployed;
  clean "live migration" monitor

let test_monitored_outcome_identical () =
  (* The monitor is an observer: attaching it must not change outcomes. *)
  let run ?monitor () =
    let n = 4 in
    let workload = Cdbs_workloads.Trace.workload_at ~hour:14. in
    let alloc =
      Cdbs_core.Ksafety.allocate ~k:1 workload
        (Cdbs_core.Backend.homogeneous n)
    in
    let rng = Rng.create 5 in
    let reqs = trace_requests ~rng ~rate:20. ~duration:60. in
    Sim.run_open_with_faults ?monitor
      (Sim.homogeneous_config n)
      alloc reqs
      ~faults:[ Fault.crash ~at:20. 0; Fault.recover ~at:40. 0 ]
  in
  let plain = run () in
  let monitored = run ~monitor:(Mon.create ()) () in
  Alcotest.(check int) "completed identical" plain.Sim.run.Sim.completed
    monitored.Sim.run.Sim.completed;
  Alcotest.(check int) "retries identical" plain.Sim.retries
    monitored.Sim.retries;
  Alcotest.(check (float 0.)) "makespan identical" plain.Sim.run.Sim.makespan
    monitored.Sim.run.Sim.makespan

(* ------------------------------------------------------------------ *)
(* Resilience-policy lints (RES codes)                                 *)
(* ------------------------------------------------------------------ *)

let hedge_ok =
  { Res.Hedge.percentile = 95.; min_delay = 0.05; min_observations = 20;
    window = 256 }

let test_res_cross_checks () =
  (* RES001: hedge delay floor at the deadline budget. *)
  let p =
    Res.Policy.make
      ~hedge:{ hedge_ok with Res.Hedge.min_delay = 2. }
      ~deadline:{ Res.Deadline.budget = 1. } ()
  in
  has_warning "RES001" (Check_policy.check p);
  (* RES002: admission watermark past the budget. *)
  let p =
    Res.Policy.make
      ~admission:{ Res.Admission.max_depth = 64; max_pending = 2. }
      ~deadline:{ Res.Deadline.budget = 1. } ()
  in
  has_warning "RES002" (Check_policy.check p);
  (* RES003: threshold finer than the window resolves. *)
  let p =
    Res.Policy.make
      ~breaker:
        {
          Res.Breaker.default_config with
          Res.Breaker.error_window = 1;
          error_threshold = 0.5;
        }
      ()
  in
  has_warning "RES003" (Check_policy.check p);
  (* RES004: hedging below the median. *)
  let p =
    Res.Policy.make ~hedge:{ hedge_ok with Res.Hedge.percentile = 25. } ()
  in
  has_warning "RES004" (Check_policy.check p);
  (* RES005: everything off. *)
  has "RES005" (Check_policy.check Res.Policy.off)

let test_res_invalid_params () =
  let p =
    Res.Policy.make
      ~admission:{ Res.Admission.max_depth = 0; max_pending = 1. } ()
  in
  has_error "RES006" (Check_policy.check p);
  let p =
    Res.Policy.make
      ~breaker:
        { Res.Breaker.default_config with Res.Breaker.ewma_alpha = 0. }
      ()
  in
  has_error "RES007" (Check_policy.check p);
  let p =
    Res.Policy.make ~hedge:{ hedge_ok with Res.Hedge.min_delay = 0. } ()
  in
  has_error "RES008" (Check_policy.check p);
  let p =
    Res.Policy.make ~hedge:{ hedge_ok with Res.Hedge.window = 4 } ()
  in
  has_error "RES008" (Check_policy.check p);
  let p = Res.Policy.make ~deadline:{ Res.Deadline.budget = 0. } () in
  has_error "RES009" (Check_policy.check p)

let test_res_shipped_policies_clean () =
  no_errors "Policy.default" (Check_policy.check Res.Policy.default);
  Alcotest.(check int) "default policy lints warning-free" 0
    (List.length (Diagnostic.warnings (Check_policy.check Res.Policy.default)));
  let defended = Cdbs_experiments.Fig_overload.defenses ~deadline_s:1. in
  no_errors "Fig_overload.defenses" (Check_policy.check defended);
  Alcotest.(check int) "defended bundle lints warning-free" 0
    (List.length (Diagnostic.warnings (Check_policy.check defended)))

(* ------------------------------------------------------------------ *)
(* Fault-timeline lints (FLT codes)                                    *)
(* ------------------------------------------------------------------ *)

let test_flt_schedule () =
  (* FLT001: structurally invalid (recover of a running backend). *)
  has_error "FLT001"
    (Check_faults.check_schedule ~num_backends:4 [ Fault.recover ~at:5. 0 ]);
  (* FLT002: permanent failure. *)
  has_warning "FLT002"
    (Check_faults.check_schedule ~num_backends:4 [ Fault.crash ~at:5. 0 ]);
  (* FLT004: two down at once on a k=1 allocation. *)
  has_warning "FLT004"
    (Check_faults.check_schedule ~k:1 ~num_backends:4
       [
         Fault.crash ~at:1. 0; Fault.crash ~at:2. 1; Fault.recover ~at:3. 0;
         Fault.recover ~at:4. 1;
       ]);
  (* FLT006: crash-like slowdown. *)
  has_warning "FLT006"
    (Check_faults.check_schedule ~num_backends:4
       [ Fault.slowdown ~at:1. ~backend:0 ~factor:10. ~duration:5. ]);
  (* FLT007: zero-length down window. *)
  has_warning "FLT007"
    (Check_faults.check_schedule ~num_backends:4
       [ Fault.crash ~at:5. 0; Fault.recover ~at:5. 0 ]);
  (* A crash absorbed within k, recovered, is clean. *)
  no_errors "k-bounded incident"
    (Check_faults.check_schedule ~k:1 ~num_backends:4
       [ Fault.crash ~at:1. 0; Fault.recover ~at:2. 0 ])

let test_flt_params () =
  has_error "FLT008"
    (Check_faults.check_params { Chaos.default with Chaos.mtbf = 0. });
  has_error "FLT008"
    (Check_faults.check_params
       { Chaos.default with Chaos.max_concurrent_down = Some 0 });
  has_warning "FLT003"
    (Check_faults.check_params
       { Chaos.default with Chaos.mtbf = 10.; mttr = 10. });
  has_warning "FLT004"
    (Check_faults.check_params ~k:1
       { Chaos.default with Chaos.max_concurrent_down = Some 2 });
  has_warning "FLT004" (Check_faults.check_params ~k:1 Chaos.default);
  has "FLT005"
    (Check_faults.check_params { Chaos.default with Chaos.horizon = 60. });
  let bounded = { Chaos.default with Chaos.max_concurrent_down = Some 1 } in
  Alcotest.(check (list string)) "k-bounded chaos lints clean" []
    (codes (Check_faults.check_params ~k:1 bounded))

(* ------------------------------------------------------------------ *)
(* Slo_report surfaces ring overflow                                   *)
(* ------------------------------------------------------------------ *)

let test_slo_trace_dropped () =
  let h = Cdbs_telemetry.Histogram.create () in
  Cdbs_telemetry.Histogram.record h 0.01;
  let report ?trace_dropped () =
    Slo.of_histogram ~duration_s:60. ~offered:10 ~completed:10 ~shed:0
      ~failed:0 ~wasted_work_s:0. ~retries:0 ~hedges:0 ~bytes_moved_mb:0.
      ~migrations:0 ~faults_injected:0 ?trace_dropped
      ~utilization:[ (0, 0.5) ] h
  in
  let r = report ~trace_dropped:123 () in
  Alcotest.(check int) "field carried" 123 r.Slo.trace_dropped;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "JSON carries trace_dropped" true
    (contains (Slo.to_json r) "\"trace_dropped\":123");
  Alcotest.(check bool) "pp mentions the overflow" true
    (contains (Fmt.str "%a" Slo.pp r) "trace dropped");
  let quiet = report () in
  Alcotest.(check int) "defaults to zero" 0 quiet.Slo.trace_dropped;
  Alcotest.(check bool) "silent when zero" false
    (contains (Fmt.str "%a" Slo.pp quiet) "trace dropped")

let suite =
  [
    Alcotest.test_case "TRC001: crash of a down backend" `Quick
      test_trc001_double_crash;
    Alcotest.test_case "TRC002: recovery of a running backend" `Quick
      test_trc002_spurious_recover;
    Alcotest.test_case "TRC003: work booked while down" `Quick
      test_trc003_serve_while_down;
    Alcotest.test_case "TRC004: illegal breaker hop" `Quick
      test_trc004_illegal_breaker_hop;
    Alcotest.test_case "TRC004: legal breaker cycle is clean" `Quick
      test_trc004_legal_cycle_clean;
    Alcotest.test_case "TRC005: read on a stale backend" `Quick
      test_trc005_read_on_stale;
    Alcotest.test_case "TRC005: stale updates allowed, reads gated" `Quick
      test_trc005_stale_updates_allowed;
    Alcotest.test_case "TRC005: catch-up with none pending" `Quick
      test_trc005_catchup_without_pending;
    Alcotest.test_case "TRC006: below the migration floor" `Quick
      test_trc006_below_migration_floor;
    Alcotest.test_case "TRC007: retry scheduled in the past" `Quick
      test_trc007_retry_in_past;
    Alcotest.test_case "TRC007: attempt counter stuck" `Quick
      test_trc007_attempt_not_increasing;
    Alcotest.test_case "TRC007: deadline budget growing" `Quick
      test_trc007_budget_growing;
    Alcotest.test_case "TRC007: healthy retry chain is clean" `Quick
      test_trc007_healthy_chain_clean;
    Alcotest.test_case "TRC008: conservation at run end" `Quick
      test_trc008_conservation;
    Alcotest.test_case "TRC009: hedge accounting" `Quick
      test_trc009_hedge_accounting;
    Alcotest.test_case "TRC010: span pairing" `Quick test_trc010_span_pairing;
    Alcotest.test_case "TRC011: event sanity" `Quick test_trc011_event_sanity;
    Alcotest.test_case "TRC012: ring overflow warning" `Quick
      test_trc012_ring_overflow;
    Alcotest.test_case "run.start resets protocol state" `Quick
      test_run_start_resets_state;
    Alcotest.test_case "attach is idempotent per trace" `Quick
      test_attach_idempotent;
    Alcotest.test_case "per-code suppression cap" `Quick test_suppression_cap;
    Alcotest.test_case "check_exn raises on violations" `Quick
      test_check_exn_raises;
    Alcotest.test_case "chaos runs are monitor-clean across seeds" `Quick
      test_chaos_runs_clean;
    Alcotest.test_case "day smoke is monitor-clean across seeds" `Quick
      test_day_runs_clean;
    Alcotest.test_case "overload comparison is monitor-clean" `Quick
      test_overload_runs_clean;
    Alcotest.test_case "fault lifecycle is monitor-clean" `Quick
      test_faults_scenario_clean;
    Alcotest.test_case "live migration is monitor-clean" `Quick
      test_migration_runs_clean;
    Alcotest.test_case "monitor never changes outcomes" `Quick
      test_monitored_outcome_identical;
    Alcotest.test_case "RES001-RES005: cross-defense lints" `Quick
      test_res_cross_checks;
    Alcotest.test_case "RES006-RES009: invalid parameters" `Quick
      test_res_invalid_params;
    Alcotest.test_case "shipped policies lint clean" `Quick
      test_res_shipped_policies_clean;
    Alcotest.test_case "FLT001-FLT007: schedule lints" `Quick
      test_flt_schedule;
    Alcotest.test_case "FLT003-FLT008: chaos parameter lints" `Quick
      test_flt_params;
    Alcotest.test_case "Slo_report surfaces trace overflow" `Quick
      test_slo_trace_dropped;
  ]
