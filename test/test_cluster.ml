(* Cluster layer: cost model, scheduler, simulator, controller. *)

open Cdbs_core
module Cost_model = Cdbs_cluster.Cost_model
module Scheduler = Cdbs_cluster.Scheduler
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Controller = Cdbs_cluster.Controller

let fr ?(size = 1.) name = Fragment.table name ~size

let workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "q1" [ fr "a" ] ~weight:0.5;
        Query_class.read "q2" [ fr "b" ] ~weight:0.3;
      ]
    ~updates:[ Query_class.update "u1" [ fr "a" ] ~weight:0.2 ]

(* ---------------- cost model ---------------- *)

let test_cache_factor () =
  let p = { Cost_model.default with Cost_model.cache_mb = 100.; cold_penalty = 2. } in
  Alcotest.(check (float 1e-9)) "fits in cache" 1.
    (Cost_model.cache_factor p ~resident_mb:50.);
  Alcotest.(check (float 1e-9)) "half spilled" 1.5
    (Cost_model.cache_factor p ~resident_mb:200.)

let test_service_time_scaling () =
  let p = Cost_model.default in
  let t1 =
    Cost_model.service_time p ~class_mb:10. ~resident_mb:10. ~speed:1.
      ~is_update:false ~replicas:1
  in
  let t2 =
    Cost_model.service_time p ~class_mb:10. ~resident_mb:10. ~speed:2.
      ~is_update:false ~replicas:1
  in
  Alcotest.(check (float 1e-9)) "speed halves time" (t1 /. 2.) t2;
  let u1 =
    Cost_model.service_time p ~class_mb:10. ~resident_mb:10. ~speed:1.
      ~is_update:true ~replicas:1
  in
  let u10 =
    Cost_model.service_time p ~class_mb:10. ~resident_mb:10. ~speed:1.
      ~is_update:true ~replicas:10
  in
  Alcotest.(check bool) "sync overhead grows with replicas" true (u10 > u1)

(* ---------------- scheduler ---------------- *)

let test_scheduler_least_pending () =
  let alloc = Baselines.full_replication (workload ()) (Backend.homogeneous 3) in
  let sched = Scheduler.create alloc in
  Scheduler.book sched ~backend:0 ~finish:10.;
  Scheduler.book sched ~backend:1 ~finish:5.;
  (* Backend 2 is idle: reads must go there. *)
  match Scheduler.route sched ~now:0. (Request.read "q1") with
  | Ok [ 2 ] -> ()
  | Ok other ->
      Alcotest.failf "expected backend 2, got %s"
        (String.concat "," (List.map string_of_int other))
  | Error e -> Alcotest.fail e

let test_scheduler_rowa () =
  let alloc = Baselines.full_replication (workload ()) (Backend.homogeneous 3) in
  let sched = Scheduler.create alloc in
  match Scheduler.route sched ~now:0. (Request.update "u1") with
  | Ok targets -> Alcotest.(check int) "all three backends" 3 (List.length targets)
  | Error e -> Alcotest.fail e

let test_scheduler_partial_rowa () =
  (* With a greedy partial allocation, u1 goes only to backends holding
     fragment a. *)
  let alloc = Greedy.allocate (workload ()) (Backend.homogeneous 3) in
  let sched = Scheduler.create alloc in
  match Scheduler.route sched ~now:0. (Request.update "u1") with
  | Ok targets ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "target holds a" true
            (Fragment.Set.mem (fr "a") (Allocation.fragments_of alloc b)))
        targets
  | Error e -> Alcotest.fail e

let test_scheduler_unknown_class () =
  let alloc = Greedy.allocate (workload ()) (Backend.homogeneous 2) in
  let sched = Scheduler.create alloc in
  match Scheduler.route sched ~now:0. (Request.read "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown class routed"

(* ---------------- simulator ---------------- *)

let test_simulator_completes_everything () =
  let alloc = Greedy.allocate (workload ()) (Backend.homogeneous 2) in
  let config = Simulator.homogeneous_config 2 in
  let reqs =
    List.concat
      (List.init 50 (fun _ ->
           [ Request.read "q1"; Request.read "q2"; Request.update "u1" ]))
  in
  let outcome = Simulator.run_batch config alloc reqs in
  Alcotest.(check int) "all completed" 150 outcome.Simulator.completed;
  Alcotest.(check int) "no errors" 0 outcome.Simulator.errors;
  Alcotest.(check bool) "positive throughput" true
    (outcome.Simulator.throughput > 0.)

let test_simulator_read_scaling () =
  (* Read-only work on n backends is ~n times faster. *)
  let w =
    Workload.make
      ~reads:[ Query_class.read "q1" [ fr "a" ] ~weight:1. ]
      ~updates:[]
  in
  let reqs = List.init 300 (fun _ -> Request.read ~cost_mb:1. "q1") in
  let tp n =
    let alloc = Baselines.full_replication w (Backend.homogeneous n) in
    (Simulator.run_batch (Simulator.homogeneous_config n) alloc reqs)
      .Simulator.throughput
  in
  let t1 = tp 1 and t3 = tp 3 in
  Alcotest.(check bool) "3 nodes ~3x" true (t3 /. t1 > 2.8 && t3 /. t1 < 3.2)

let test_simulator_update_limits () =
  (* Update-heavy full replication does not scale (Amdahl). *)
  let w =
    Workload.make
      ~reads:[ Query_class.read "q1" [ fr "a" ] ~weight:0.5 ]
      ~updates:[ Query_class.update "u1" [ fr "a" ] ~weight:0.5 ]
  in
  let reqs =
    List.concat
      (List.init 150 (fun _ ->
           [ Request.read ~cost_mb:1. "q1"; Request.update ~cost_mb:1. "u1" ]))
  in
  let tp n =
    let alloc = Baselines.full_replication w (Backend.homogeneous n) in
    (Simulator.run_batch (Simulator.homogeneous_config n) alloc reqs)
      .Simulator.throughput
  in
  let s4 = tp 4 /. tp 1 in
  (* Amdahl with serial = 0.5 caps at 1.6 on 4 nodes. *)
  Alcotest.(check bool) "speedup below 1.8" true (s4 < 1.8)

let test_simulator_open_arrivals () =
  let alloc = Greedy.allocate (workload ()) (Backend.homogeneous 2) in
  let config = Simulator.homogeneous_config 2 in
  let reqs =
    List.init 20 (fun i ->
        Request.read ~arrival:(float_of_int i) ~cost_mb:0.1 "q1")
  in
  let outcome = Simulator.run_open config alloc reqs in
  (* Arrivals are spread out: no queueing, response equals service time. *)
  Alcotest.(check bool) "short responses" true
    (outcome.Simulator.avg_response < 0.05);
  Alcotest.(check bool) "makespan spans arrivals" true
    (outcome.Simulator.makespan >= 19.)

let test_simulator_unsorted_arrivals () =
  (* The same open-mode trace must simulate identically no matter how the
     request list is ordered: [run_open] sorts by arrival itself. *)
  let alloc = Greedy.allocate (workload ()) (Backend.homogeneous 2) in
  let config = Simulator.homogeneous_config 2 in
  let reqs =
    List.init 30 (fun i ->
        Request.read ~arrival:(float_of_int i *. 0.7) ~cost_mb:0.5 "q1")
  in
  let shuffled =
    (* Deterministic scramble: odd arrivals first, then evens reversed. *)
    List.filteri (fun i _ -> i mod 2 = 1) reqs
    @ List.rev (List.filteri (fun i _ -> i mod 2 = 0) reqs)
  in
  let a = Simulator.run_open config alloc reqs in
  let b = Simulator.run_open config alloc shuffled in
  Alcotest.(check (float 1e-9)) "same avg response" a.Simulator.avg_response
    b.Simulator.avg_response;
  Alcotest.(check (float 1e-9)) "same makespan" a.Simulator.makespan
    b.Simulator.makespan;
  Alcotest.(check int) "same errors" a.Simulator.errors b.Simulator.errors

(* ---------------- controller ---------------- *)

let schema : Cdbs_storage.Schema.t =
  [
    Cdbs_storage.Schema.table "t" ~primary_key:[ "id" ]
      [ ("id", Cdbs_storage.Schema.T_int); ("v", Cdbs_storage.Schema.T_int) ];
    Cdbs_storage.Schema.table "u" ~primary_key:[ "id" ]
      [ ("id", Cdbs_storage.Schema.T_int); ("w", Cdbs_storage.Schema.T_int) ];
  ]

let test_controller_end_to_end () =
  let c =
    Controller.create ~schema ~rows:[ ("t", 100); ("u", 50) ] ~backends:2
      ~seed:3
  in
  (* Reads route and execute. *)
  (match Controller.submit c "SELECT id FROM t WHERE v >= 0" with
  | Ok (Cdbs_storage.Executor.Rows _) -> ()
  | Ok _ -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.fail e);
  (* Updates hit every backend: check by updating then reading back. *)
  (match Controller.submit c "UPDATE t SET v = 7 WHERE id = 1" with
  | Ok (Cdbs_storage.Executor.Affected 1) -> ()
  | Ok _ -> Alcotest.fail "expected one row affected"
  | Error e -> Alcotest.fail e);
  for _ = 1 to 20 do
    ignore (Controller.submit c "SELECT id FROM t WHERE v = 7")
  done;
  let processed, _ = Controller.stats c in
  Alcotest.(check int) "journal grew" 22 processed;
  Alcotest.(check int) "journal length" 22
    (Journal.length (Controller.journal c))

let test_controller_reallocate () =
  let c =
    Controller.create ~schema ~rows:[ ("t", 200); ("u", 200) ] ~backends:2
      ~seed:3
  in
  (* t-heavy workload: after reallocation the backends should specialize. *)
  for _ = 1 to 30 do
    ignore (Controller.submit c "SELECT id FROM t WHERE v > 10")
  done;
  for _ = 1 to 10 do
    ignore (Controller.submit c "SELECT id FROM u WHERE w > 10")
  done;
  (match Controller.reallocate c ~iterations:10 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Controller.allocation c with
  | Some alloc ->
      Alcotest.(check bool) "valid" true (Allocation.validate alloc = Ok ())
  | None -> Alcotest.fail "no allocation");
  (* Every statement still answerable. *)
  (match Controller.submit c "SELECT id FROM u WHERE w > 10" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Controller.submit c "SELECT id FROM t WHERE v > 10" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_controller_empty_journal () =
  let c =
    Controller.create ~schema ~rows:[ ("t", 10) ] ~backends:2 ~seed:1
  in
  match Controller.reallocate c () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reallocation with empty history accepted"

let suite =
  [
    Alcotest.test_case "cost model: cache factor" `Quick test_cache_factor;
    Alcotest.test_case "cost model: service time" `Quick
      test_service_time_scaling;
    Alcotest.test_case "scheduler: least pending first" `Quick
      test_scheduler_least_pending;
    Alcotest.test_case "scheduler: ROWA fan-out" `Quick test_scheduler_rowa;
    Alcotest.test_case "scheduler: partial ROWA" `Quick
      test_scheduler_partial_rowa;
    Alcotest.test_case "scheduler: unknown class" `Quick
      test_scheduler_unknown_class;
    Alcotest.test_case "simulator: completes all requests" `Quick
      test_simulator_completes_everything;
    Alcotest.test_case "simulator: read-only scales linearly" `Quick
      test_simulator_read_scaling;
    Alcotest.test_case "simulator: updates cap speedup" `Quick
      test_simulator_update_limits;
    Alcotest.test_case "simulator: open arrivals" `Quick
      test_simulator_open_arrivals;
    Alcotest.test_case "simulator: unsorted arrivals" `Quick
      test_simulator_unsorted_arrivals;
    Alcotest.test_case "controller: end to end" `Quick
      test_controller_end_to_end;
    Alcotest.test_case "controller: reallocation" `Quick
      test_controller_reallocate;
    Alcotest.test_case "controller: empty journal" `Quick
      test_controller_empty_journal;
  ]
