(* Network partitions, split-brain fencing and fault-domain-aware
   replication: topology, the partition/zone-outage fault kinds, the
   correlated chaos stream, the capped retry backoff, the simulator's
   fencing protocol and the zone-outage experiment's headline claim. *)

open Cdbs_core
module Fault = Cdbs_faults.Fault
module Chaos = Cdbs_faults.Chaos
module Retry = Cdbs_faults.Retry
module Sim = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Mon = Cdbs_analysis.Monitor
module Check_a = Cdbs_analysis.Check_allocation
module Diagnostic = Cdbs_analysis.Diagnostic
module Trace = Cdbs_telemetry.Trace
module Sink = Cdbs_telemetry.Sink
module Rng = Cdbs_util.Rng

let fr ?(size = 1.) name = Fragment.table name ~size

let workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "q1" [ fr "a" ] ~weight:0.4;
        Query_class.read "q2" [ fr "b" ] ~weight:0.25;
        Query_class.read "q3" [ fr "c" ] ~weight:0.15;
      ]
    ~updates:
      [
        Query_class.update "u1" [ fr "a" ] ~weight:0.12;
        Query_class.update "u2" [ fr "d" ] ~weight:0.08;
      ]

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let has code ds =
  if not (List.mem code (codes ds)) then
    Alcotest.failf "expected diagnostic %s, got: %s" code
      (String.concat ", " (codes ds))

let clean name m =
  if not (Mon.clean m) then
    Alcotest.failf "%s: monitor found violations: %s" name
      (String.concat ", " (codes (Diagnostic.errors (Mon.report m))))

(* ---------------- topology ---------------- *)

let test_topology_basics () =
  let t = Topology.uniform ~zones:3 7 in
  Alcotest.(check int) "zones" 3 (Topology.zones t);
  Alcotest.(check int) "backends" 7 (Topology.num_backends t);
  Alcotest.(check (list int)) "zone 0 members" [ 0; 3; 6 ]
    (Topology.backends_in t 0);
  Alcotest.(check int) "zone of 5" 2 (Topology.zone_of t 5);
  Alcotest.(check int) "spanned dedups" 2
    (Topology.zones_spanned t [ 0; 3; 1 ]);
  Alcotest.(check int) "required spread k=1" 2 (Topology.required_spread t ~k:1);
  Alcotest.(check int) "required spread capped by zones" 3
    (Topology.required_spread t ~k:5)

let test_topology_rejects_gaps () =
  (match Topology.make [| 0; 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zone gap should be rejected");
  match Topology.make [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty topology should be rejected"

(* ---------------- fault validation ---------------- *)

let test_partition_validation () =
  let ok =
    Fault.validate ~num_backends:4
      [ Fault.partition ~at:1. ~backends:[ 0; 1 ] ~duration:2. ]
  in
  Alcotest.(check bool) "clean partition accepted" true (Result.is_ok ok);
  let overlapping =
    Fault.validate ~num_backends:4
      [
        Fault.partition ~at:1. ~backends:[ 0 ] ~duration:5.;
        Fault.crash ~at:3. 0;
      ]
  in
  Alcotest.(check bool) "event inside the cut window rejected" true
    (Result.is_error overlapping);
  let down =
    Fault.validate ~num_backends:4
      [ Fault.crash ~at:1. 0; Fault.partition ~at:2. ~backends:[ 0 ] ~duration:1. ]
  in
  Alcotest.(check bool) "partition of a down backend rejected" true
    (Result.is_error down)

let test_zone_outage_needs_topology () =
  let sched = [ Fault.zone_outage ~at:1. ~zone:0 ~duration:2. ] in
  Alcotest.(check bool) "no zone_of -> error" true
    (Result.is_error (Fault.validate ~num_backends:4 sched));
  let zone_of = Array.init 4 (fun b -> b mod 2) in
  Alcotest.(check bool) "with zone_of -> ok" true
    (Result.is_ok (Fault.validate ~zone_of ~num_backends:4 sched))

(* ---------------- correlated chaos ---------------- *)

let correlated_params =
  {
    Chaos.default with
    Chaos.horizon = 400.;
    correlated_mtbf = Some 120.;
    partition_prob = 0.5;
    zones = 3;
  }

let test_chaos_correlated_deterministic () =
  let gen seed =
    Chaos.generate ~rng:(Rng.create seed) ~num_backends:6 correlated_params
  in
  Alcotest.(check bool) "same seed, same schedule" true (gen 7 = gen 7);
  let correlated sched =
    List.exists
      (fun (t : Fault.timed) ->
        match t.Fault.event with
        | Fault.Partition _ | Fault.ZoneOutage _ -> true
        | _ -> false)
      sched
  in
  (* Some seed in a small range must produce a correlated incident at this
     rate (mean ~3 incidents per run). *)
  Alcotest.(check bool) "correlated incidents appear" true
    (List.exists (fun s -> correlated (gen s)) [ 1; 2; 3; 4; 5 ])

let test_chaos_legacy_without_correlated () =
  (* With the correlated stream off, the zones knob must not perturb the
     base schedule — legacy schedules are reproduced exactly. *)
  let gen zones =
    Chaos.generate ~rng:(Rng.create 5) ~num_backends:4
      { Chaos.default with Chaos.zones }
  in
  Alcotest.(check bool) "zones knob inert when correlated off" true
    (gen 1 = gen 4);
  List.iter
    (fun (t : Fault.timed) ->
      match t.Fault.event with
      | Fault.Partition _ | Fault.ZoneOutage _ ->
          Alcotest.fail "correlated event without correlated_mtbf"
      | _ -> ())
    (gen 1)

let test_chaos_correlated_validates () =
  let zone_of = Array.init 6 (fun b -> b mod 3) in
  List.iter
    (fun seed ->
      let sched =
        Chaos.generate ~rng:(Rng.create seed) ~num_backends:6
          correlated_params
      in
      match Fault.validate ~zone_of ~num_backends:6 sched with
      | Ok () -> ()
      | Error m -> Alcotest.failf "seed %d: invalid schedule: %s" seed m)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ---------------- capped backoff (satellite) ---------------- *)

let prop_backoff_capped =
  QCheck.Test.make ~count:200 ~name:"capped backoff never exceeds the cap"
    QCheck.(triple (int_range 1 15) small_nat (float_range 0.05 2.))
    (fun (attempt, seed, cap) ->
      let p =
        Retry.make ~backoff_base:0.05 ~backoff_multiplier:2. ~jitter:0.3
          ~max_backoff:cap ()
      in
      Retry.backoff ~rng:(Rng.create seed) p ~attempt <= cap)

let test_backoff_cap_applies_after_jitter () =
  (* Uncapped, attempt 10 with base 50 ms doubles past 25 s; the cap must
     clamp the jittered value, not the pre-jitter one. *)
  let capped =
    Retry.make ~backoff_base:0.05 ~backoff_multiplier:2. ~jitter:0.2
      ~max_backoff:0.4 ()
  in
  let uncapped =
    Retry.make ~backoff_base:0.05 ~backoff_multiplier:2. ~jitter:0.2 ()
  in
  for seed = 0 to 19 do
    for attempt = 1 to 12 do
      let d = Retry.backoff ~rng:(Rng.create seed) capped ~attempt in
      if d > 0.4 then Alcotest.failf "seed %d attempt %d: %g > cap" seed attempt d
    done
  done;
  Alcotest.(check bool) "uncapped grows past the cap" true
    (Retry.backoff uncapped ~attempt:10 > 0.4);
  match Retry.make ~max_backoff:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive cap should be rejected"

(* ---------------- simulator: partitions and fencing ---------------- *)

let requests () =
  List.init 300 (fun i ->
      let arrival = float_of_int i *. 0.05 in
      if i mod 5 = 0 then Request.update ~arrival ~cost_mb:0.5 "u1"
      else Request.read ~arrival ~cost_mb:0.5 "q1")

let partition_run ?monitor ?telemetry ~seed () =
  let w = workload () in
  let alloc = Ksafety.allocate ~k:1 w (Backend.homogeneous 4) in
  let faults = [ Fault.partition ~at:3. ~backends:[ 0; 1 ] ~duration:4. ] in
  Sim.run_open_with_faults ?monitor ?telemetry
    ~rng:(Rng.create seed)
    (Sim.homogeneous_config 4) alloc (requests ()) ~faults

let test_partition_monitor_clean_and_deterministic () =
  List.iter
    (fun seed ->
      let m = Mon.create () in
      let fo = partition_run ~monitor:m ~seed () in
      clean (Printf.sprintf "partition seed %d" seed) m;
      let fo' = partition_run ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d deterministic" seed)
        true
        (fo.Sim.responses = fo'.Sim.responses
        && fo.Sim.availability = fo'.Sim.availability
        && fo.Sim.retries = fo'.Sim.retries))
    [ 1; 2; 3; 4; 5 ]

let test_partition_fences_until_caught_up () =
  let sink = Sink.create ~capacity:65536 () in
  let m = Mon.create () in
  let fo = partition_run ~monitor:m ~telemetry:sink ~seed:3 () in
  clean "fencing run" m;
  Alcotest.(check bool) "all requests completed" true
    (fo.Sim.availability = 1.);
  let tr = sink.Sink.trace in
  let heals = Trace.find tr "backend.heal" in
  let lifts = Trace.find tr "backend.fence_lift" in
  Alcotest.(check int) "one heal per isolated backend" 2 (List.length heals);
  Alcotest.(check int) "every heal lifts its fence" 2 (List.length lifts);
  (* Updates kept flowing on the majority, so the isolated side missed
     volume and the fence can only lift at or after the heal. *)
  let at_of e = e.Trace.at in
  let earliest_lift = List.fold_left min infinity (List.map at_of lifts) in
  let earliest_heal = List.fold_left min infinity (List.map at_of heals) in
  Alcotest.(check bool) "lift not before heal" true
    (earliest_lift >= earliest_heal)

let test_zone_outage_run () =
  let w = workload () in
  let topology = Topology.uniform ~zones:2 4 in
  let alloc = Ksafety.allocate ~topology ~k:1 w (Backend.homogeneous 4) in
  List.iter
    (fun seed ->
      let m = Mon.create () in
      let sink = Sink.create ~capacity:65536 () in
      let fo =
        Sim.run_open_with_faults ~monitor:m ~telemetry:sink ~topology
          ~rng:(Rng.create seed)
          (Sim.homogeneous_config 4) alloc (requests ())
          ~faults:[ Fault.zone_outage ~at:3. ~zone:0 ~duration:4. ]
      in
      clean (Printf.sprintf "zone outage seed %d" seed) m;
      Alcotest.(check bool) "domain-aware placement keeps serving" true
        (fo.Sim.availability = 1.);
      Alcotest.(check int) "zone bracket events" 1
        (List.length (Trace.find sink.Sink.trace "zone.outage"));
      Alcotest.(check int) "zone heal bracket" 1
        (List.length (Trace.find sink.Sink.trace "zone.heal")))
    [ 1; 2; 3; 4; 5 ]

let test_zone_outage_requires_topology () =
  let w = workload () in
  let alloc = Ksafety.allocate ~k:1 w (Backend.homogeneous 4) in
  match
    Sim.run_open_with_faults (Sim.homogeneous_config 4) alloc (requests ())
      ~faults:[ Fault.zone_outage ~at:3. ~zone:0 ~duration:4. ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zone outage without topology should be rejected"

(* The fencing witness: a healed backend serving a read before its
   catch-up finished must be rejected by the monitor (TRC015) — this is
   the split-brain the epoch fence exists to prevent. *)
let test_fencing_witness_regression () =
  let m = Mon.create () in
  let ev at name attrs = Mon.observe m { Trace.at; name; attrs } in
  ev 0. "run.start" [ ("backends", Trace.Int 4); ("offered", Trace.Int 0) ];
  ev 1. "backend.partition" [ ("backend", Trace.Int 0) ];
  ev 2. "backend.heal"
    [
      ("backend", Trace.Int 0); ("epoch", Trace.Int 1);
      ("replay_mb", Trace.Float 3.);
    ];
  ev 3. "backend.serve"
    [
      ("backend", Trace.Int 0); ("kind", Trace.Str "read");
      ("start", Trace.Float 3.); ("finish", Trace.Float 3.1);
    ];
  has "TRC015" (Diagnostic.errors (Mon.report m))

(* ---------------- domain-aware k-safety ---------------- *)

(* The fig_zones configuration: 6 backends in 2 contiguous racks, trace
   midday workload.  Known to stack several naive replica pairs inside
   rack 1. *)
let rack_setup () =
  let w = Cdbs_workloads.Trace.workload_at ~hour:14. in
  let topology = Topology.make (Array.init 6 (fun b -> b * 2 / 6)) in
  (w, topology, Backend.homogeneous 6)

let test_spread_allocate () =
  let w, topology, bs = rack_setup () in
  let aware = Ksafety.allocate ~topology ~k:1 w bs in
  Alcotest.(check bool) "aware spreads" true
    (Ksafety.spread_ok ~topology ~k:1 aware);
  Alcotest.(check bool) "aware still 1-safe" true (Ksafety.is_k_safe ~k:1 aware);
  let naive = Ksafety.allocate ~k:1 w bs in
  Alcotest.(check bool) "naive stacks in one rack" false
    (Ksafety.spread_ok ~topology ~k:1 naive)

let test_spread_repair () =
  let w, topology, bs = rack_setup () in
  let alloc = Ksafety.allocate ~k:1 w bs in
  let gained = Ksafety.repair ~topology ~k:1 ~failed:[] alloc in
  Alcotest.(check bool) "repair restores spread" true
    (Ksafety.spread_ok ~topology ~k:1 alloc);
  Alcotest.(check bool) "repair shipped something" true
    (Array.exists (fun s -> not (Fragment.Set.is_empty s)) gained)

let test_alc013_and_alc014 () =
  let w, topology, bs = rack_setup () in
  let naive = Ksafety.allocate ~k:1 w bs in
  has "ALC013" (Diagnostic.errors (Check_a.check ~k:1 ~topology naive));
  let aware = Ksafety.allocate ~topology ~k:1 w bs in
  let aware_codes = codes (Check_a.check ~k:1 ~topology aware) in
  Alcotest.(check bool) "aware has no ALC013" false
    (List.mem "ALC013" aware_codes);
  has "ALC014"
    (Diagnostic.errors
       (Check_a.check ~k:1 ~topology:(Topology.uniform ~zones:2 4) naive))

let test_fig_zones_headline () =
  let r = Cdbs_experiments.Fig_zones.compare_placements () in
  Alcotest.(check bool) "domain-aware availability >= 0.99" true
    (r.Cdbs_experiments.Fig_zones.aware.Cdbs_experiments.Fig_zones.availability
    >= 0.99);
  Alcotest.(check bool) "naive availability < 0.90" true
    (r.Cdbs_experiments.Fig_zones.naive.Cdbs_experiments.Fig_zones.availability
    < 0.90);
  Alcotest.(check bool) "verdict holds" true r.Cdbs_experiments.Fig_zones.verdict

let suite =
  [
    Alcotest.test_case "topology basics" `Quick test_topology_basics;
    Alcotest.test_case "topology rejects gaps" `Quick test_topology_rejects_gaps;
    Alcotest.test_case "partition validation" `Quick test_partition_validation;
    Alcotest.test_case "zone outage needs a topology (validate)" `Quick
      test_zone_outage_needs_topology;
    Alcotest.test_case "correlated chaos is deterministic" `Quick
      test_chaos_correlated_deterministic;
    Alcotest.test_case "chaos without correlated stream is legacy" `Quick
      test_chaos_legacy_without_correlated;
    Alcotest.test_case "correlated schedules validate" `Quick
      test_chaos_correlated_validates;
    QCheck_alcotest.to_alcotest prop_backoff_capped;
    Alcotest.test_case "backoff cap clamps after jitter" `Quick
      test_backoff_cap_applies_after_jitter;
    Alcotest.test_case "partition runs are monitor-clean and deterministic"
      `Quick test_partition_monitor_clean_and_deterministic;
    Alcotest.test_case "partition heals fenced until caught up" `Quick
      test_partition_fences_until_caught_up;
    Alcotest.test_case "zone outage runs are monitor-clean" `Quick
      test_zone_outage_run;
    Alcotest.test_case "zone outage needs a topology (simulate)" `Quick
      test_zone_outage_requires_topology;
    Alcotest.test_case "fencing witness: stale serve rejected" `Quick
      test_fencing_witness_regression;
    Alcotest.test_case "domain-aware allocate spreads replicas" `Quick
      test_spread_allocate;
    Alcotest.test_case "repair restores spread" `Quick test_spread_repair;
    Alcotest.test_case "ALC013/ALC014 domain-spread diagnostics" `Quick
      test_alc013_and_alc014;
    Alcotest.test_case "fig_zones headline predicate" `Slow
      test_fig_zones_headline;
  ]
