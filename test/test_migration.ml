(* Live migration subsystem: planner, schedule, delta journal, open-mode
   simulation during a rebalance, controller live reallocation, autoscaler
   live deployment. *)

open Cdbs_core
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule
module Delta = Cdbs_migration.Delta
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Controller = Cdbs_cluster.Controller

let fr ?(size = 1.) name = Fragment.table name ~size
let set = Fragment.Set.of_list
let fa = fr ~size:2. "a"
let fb = fr ~size:3. "b"
let fc = fr ~size:1. "c"

let workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "q1" [ fa ] ~weight:0.4;
        Query_class.read "q2" [ fb ] ~weight:0.3;
      ]
    ~updates:
      [
        Query_class.update "u1" [ fa ] ~weight:0.1;
        Query_class.update "u2" [ fb ] ~weight:0.2;
      ]

(* Target: node0 {a}, node1 {a,b} — a placement the matching can deploy
   for free onto old = [{a,b}; {a}] by crossing the backends. *)
let crossing_target () =
  let alloc = Allocation.create (workload ()) (Backend.homogeneous 2) in
  Allocation.add_fragments alloc 0 (set [ fa ]);
  Allocation.add_fragments alloc 1 (set [ fa; fb ]);
  alloc

let test_planner_moves_and_drops () =
  (* Expand: every node must end with {a,b}; the node missing b receives
     exactly one copy, sourced from the node that has it. *)
  let old_fragments = [ set [ fa; fb ]; set [ fa ] ] in
  let alloc = Allocation.create (workload ()) (Backend.homogeneous 2) in
  Allocation.add_fragments alloc 0 (set [ fa; fb ]);
  Allocation.add_fragments alloc 1 (set [ fa; fb ]);
  let plan = Planner.make ~old_fragments alloc in
  Alcotest.(check int) "one copy" 1 (List.length plan.Planner.moves);
  (match plan.Planner.moves with
  | [ m ] ->
      Alcotest.(check int) "b lands on node 1" 1 m.Planner.dest;
      Alcotest.(check (option int)) "sourced from node 0" (Some 0)
        m.Planner.source;
      Alcotest.(check (float 1e-9)) "ships b" 3. m.Planner.size
  | _ -> Alcotest.fail "expected exactly one move");
  Alcotest.(check int) "no drops" 0 (List.length plan.Planner.drops);
  Alcotest.(check (float 1e-9)) "copy volume" 3. plan.Planner.copy_mb;
  (* A stop-the-world rebuild ships the whole target placement. *)
  Alcotest.(check (float 1e-9)) "full rebuild volume" 10.
    plan.Planner.full_rebuild_mb;
  (* Contract: shedding a surplus replica of b ships nothing. *)
  let old_full = [ set [ fa; fb ]; set [ fa; fb ] ] in
  let plan2 = Planner.make ~old_fragments:old_full (crossing_target ()) in
  Alcotest.(check int) "no copies" 0 (List.length plan2.Planner.moves);
  Alcotest.(check int) "one drop" 1 (List.length plan2.Planner.drops);
  (match plan2.Planner.drops with
  | [ d ] ->
      Alcotest.(check bool) "victim is b" true
        (Fragment.compare d.Planner.victim fb = 0)
  | _ -> Alcotest.fail "expected exactly one drop");
  Alcotest.(check (float 1e-9)) "contract ships nothing" 0.
    plan2.Planner.copy_mb

let test_planner_smallest_first () =
  (* Fresh node receives a, b and c: cutovers must come cheapest-first. *)
  let old_fragments = [ set [ fa; fb; fc ]; Fragment.Set.empty ] in
  let alloc = Allocation.create (workload ()) (Backend.homogeneous 2) in
  Allocation.add_fragments alloc 0 (set [ fa; fb; fc ]);
  Allocation.add_fragments alloc 1 (set [ fa; fb; fc ]);
  let plan = Planner.make ~old_fragments alloc in
  let sizes = List.map (fun (m : Planner.move) -> m.Planner.size) plan.moves in
  Alcotest.(check (list (float 1e-9))) "ascending sizes" [ 1.; 2.; 3. ] sizes

let test_planner_noop () =
  let old_fragments = [ set [ fa ]; set [ fa; fb ] ] in
  let plan = Planner.make ~old_fragments (crossing_target ()) in
  Alcotest.(check bool) "noop" true (Planner.is_noop plan);
  Alcotest.(check int) "no moves" 0 (List.length plan.Planner.moves);
  Alcotest.(check int) "no drops" 0 (List.length plan.Planner.drops)

let test_planner_ksafety () =
  (* A two-fragment class relocating wholesale: {a,b} lives only on node 0
     and must end up only on node 1.  Expand-then-contract keeps one full
     replica live throughout; a per-fragment drop discipline would strand
     the class between b's arrival and a's. *)
  let w =
    Workload.make
      ~reads:[ Query_class.read "pair" [ fa; fb ] ~weight:1. ]
      ~updates:[]
  in
  let old_fragments = [ set [ fa; fb ]; Fragment.Set.empty ] in
  let alloc = Allocation.create w (Backend.homogeneous 2) in
  Allocation.add_fragments alloc 0 Fragment.Set.empty;
  Allocation.add_fragments alloc 1 (set [ fa; fb ]);
  let plan = Planner.make ~old_fragments alloc in
  (match Planner.validate plan w with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  List.iter
    (fun (cls, m) ->
      Alcotest.(check bool) (cls ^ " never loses its last replica") true
        (m >= 1))
    (Planner.min_live_replicas plan w)

let test_schedule_throttle () =
  let old_fragments = [ set [ fa; fb; fc ]; Fragment.Set.empty ] in
  let alloc = Allocation.create (workload ()) (Backend.homogeneous 2) in
  Allocation.add_fragments alloc 0 (set [ fa; fb; fc ]);
  Allocation.add_fragments alloc 1 (set [ fa; fb; fc ]);
  let plan = Planner.make ~old_fragments alloc in
  let s = Schedule.make ~start:10. ~bandwidth:0.5 plan in
  (* All three copies share the node0 -> node1 stream: strictly serial, so
     the phase lasts (1 + 2 + 3) / 0.5 seconds. *)
  Alcotest.(check (float 1e-9)) "serialized duration" 12. (Schedule.duration s);
  Alcotest.(check (float 1e-9)) "drops at the barrier" s.Schedule.copy_done
    s.Schedule.drops_at;
  List.iter
    (fun (tm : Schedule.timed_move) ->
      Alcotest.(check (float 1e-9)) "throttled length"
        (tm.Schedule.move.Planner.size /. 0.5)
        (tm.Schedule.finish -. tm.Schedule.start))
    s.Schedule.moves;
  (* No two copies on the shared stream overlap. *)
  let rec disjoint = function
    | (a : Schedule.timed_move) :: (b : Schedule.timed_move) :: rest ->
        Alcotest.(check bool) "serial on shared stream" true
          (a.Schedule.finish <= b.Schedule.start +. 1e-9);
        disjoint (b :: rest)
    | _ -> ()
  in
  disjoint s.Schedule.moves;
  Alcotest.(check bool) "copying during" true
    (Schedule.copying s ~backend:1 ~at:11.);
  Alcotest.(check bool) "idle before start" false
    (Schedule.copying s ~backend:1 ~at:9.);
  Alcotest.(check bool) "idle after barrier" false
    (Schedule.copying s ~backend:1 ~at:23.)

let test_delta_journal () =
  let d : string Delta.t = Delta.create () in
  Delta.open_capture d ~dest:1 ~fragment:fb;
  Alcotest.(check int) "one open capture" 1
    (List.length (Delta.open_captures d));
  Alcotest.(check int) "update recorded once" 1
    (Delta.capture d ~fragment:fb ~item:"u1" ~mb:0.5);
  Alcotest.(check int) "other fragment ignored" 0
    (Delta.capture d ~fragment:fa ~item:"ux" ~mb:0.5);
  Alcotest.(check int) "second update" 1
    (Delta.capture d ~fragment:fb ~item:"u2" ~mb:0.25);
  Alcotest.(check (float 1e-9)) "pending volume" 0.75
    (Delta.pending_mb d ~dest:1 ~fragment:fb);
  let items, mb = Delta.drain d ~dest:1 ~fragment:fb in
  Alcotest.(check (list string)) "arrival order" [ "u1"; "u2" ] items;
  Alcotest.(check (float 1e-9)) "drained volume" 0.75 mb;
  Alcotest.(check int) "capture closed" 0 (List.length (Delta.open_captures d));
  let items2, mb2 = Delta.drain d ~dest:1 ~fragment:fb in
  Alcotest.(check (list string)) "second drain empty" [] items2;
  Alcotest.(check (float 1e-9)) "no volume" 0. mb2;
  Alcotest.(check (float 1e-9)) "lifetime capture count" 0.75
    (Delta.total_captured_mb d)

(* The acceptance scenario: an open-mode run while the rebalance executes.
   Old: node0 {a,b}, node1 {a}.  Target crosses b over to node 1 and drops
   it from node 0; node 2 is fresh and receives a.  Updates to b arrive
   while b's snapshot is on the wire, so the delta journal must capture and
   replay them. *)
let migration_run () =
  let w = workload () in
  let old_fragments = [ set [ fa; fb ]; set [ fa ] ] in
  let alloc = Allocation.create w (Backend.homogeneous 3) in
  Allocation.add_fragments alloc 0 (set [ fa ]);
  Allocation.add_fragments alloc 1 (set [ fa; fb ]);
  Allocation.add_fragments alloc 2 (set [ fa ]);
  let plan = Planner.make ~old_fragments alloc in
  let schedule = Schedule.make ~start:20. ~bandwidth:0.2 plan in
  let rng = Cdbs_util.Rng.create 9 in
  let requests =
    List.init 400 (fun i ->
        let arrival = Cdbs_util.Rng.float rng 120. in
        match i mod 4 with
        | 0 -> Request.read ~arrival "q1"
        | 1 -> Request.read ~arrival "q2"
        | 2 -> Request.update ~arrival "u2"
        | _ -> Request.update ~arrival "u1")
  in
  let config = Simulator.homogeneous_config plan.Planner.num_physical in
  (plan, schedule, Simulator.run_open_with_migration config ~target:alloc
                     ~schedule requests)

let test_simulator_acceptance () =
  let plan, schedule, mo = migration_run () in
  Alcotest.(check int) "zero routing errors" 0 mo.Simulator.run.Simulator.errors;
  Alcotest.(check int) "all requests completed" 400
    mo.Simulator.run.Simulator.completed;
  Alcotest.(check bool) "ships no more than a full rebuild" true
    (mo.Simulator.copied_mb <= plan.Planner.full_rebuild_mb +. 1e-9);
  Alcotest.(check (float 1e-9)) "ships exactly the plan" plan.Planner.copy_mb
    mo.Simulator.copied_mb;
  Alcotest.(check bool) "deltas were replayed" true
    (mo.Simulator.replayed_mb > 0.);
  List.iter
    (fun (cls, m) ->
      Alcotest.(check bool) (cls ^ " kept a live replica") true (m >= 1))
    mo.Simulator.min_live_replicas;
  Alcotest.(check bool) "target deployed" true mo.Simulator.target_deployed;
  Alcotest.(check (float 1e-9)) "barrier as scheduled" schedule.Schedule.drops_at
    mo.Simulator.drops_at;
  Alcotest.(check int) "responses recorded" 400
    (List.length mo.Simulator.responses)

let test_simulator_degrades_then_recovers () =
  let _, schedule, mo = migration_run () in
  let phase p =
    List.filter_map
      (fun (arrival, response) ->
        let in_copy =
          arrival >= schedule.Schedule.start
          && arrival < schedule.Schedule.copy_done
        in
        if (p = `Copy) = in_copy then Some response else None)
      mo.Simulator.responses
  in
  let mean xs =
    List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  (* Copy contention slows the touched nodes; the run still completes. *)
  Alcotest.(check bool) "copy phase is slower" true
    (mean (phase `Copy) > mean (phase `Steady))

(* ---------------- controller ---------------- *)

let schema : Cdbs_storage.Schema.t =
  [
    Cdbs_storage.Schema.table "orders" ~primary_key:[ "id" ]
      [ ("id", Cdbs_storage.Schema.T_int); ("total", Cdbs_storage.Schema.T_int) ];
    Cdbs_storage.Schema.table "items" ~primary_key:[ "id" ]
      [ ("id", Cdbs_storage.Schema.T_int); ("qty", Cdbs_storage.Schema.T_int) ];
  ]

let test_controller_live_end_to_end () =
  let c =
    Controller.create ~schema
      ~rows:[ ("orders", 2000); ("items", 2000) ]
      ~backends:3 ~seed:7
  in
  (* Orders-heavy history; first rebalance shrinks items to one replica. *)
  for _ = 1 to 40 do
    ignore (Controller.submit c "SELECT id FROM orders WHERE total > 50")
  done;
  for _ = 1 to 4 do
    ignore (Controller.submit c "SELECT id FROM items WHERE qty > 5")
  done;
  (match Controller.reallocate_live c () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "first migration finished" false
    (Controller.is_migrating c);
  (* The mix flips: items becomes hot, the next rebalance must copy it
     back while serving. *)
  for _ = 1 to 400 do
    ignore (Controller.submit c "SELECT id FROM items WHERE qty > 5")
  done;
  let plan =
    match Controller.begin_reallocate_live c ~bandwidth_mb_per_request:0.0005 ()
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "plan copies items back" true
    (List.length plan.Planner.moves >= 1);
  Alcotest.(check bool) "offline path refuses while live" true
    (Result.is_error (Controller.reallocate c ()));
  (* Serve during the copy: updates to the in-flight table are captured. *)
  let captured = ref 0 in
  let steps = ref 0 in
  while Controller.is_migrating c && !steps < 2000 do
    incr steps;
    let sql =
      if !steps mod 5 = 0 then
        Fmt.str "UPDATE items SET qty = %d WHERE id = %d" (100 + !steps)
          (!steps mod 50)
      else "SELECT id FROM items WHERE qty > 5"
    in
    (match Controller.submit c sql with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("request failed mid-migration: " ^ e));
    match Controller.migration_progress c with
    | Some p -> captured := max !captured p.Controller.delta_pending
    | None -> ()
  done;
  Controller.drive_migration c ();
  Alcotest.(check bool) "migration finished" false (Controller.is_migrating c);
  Alcotest.(check bool) "updates were captured in flight" true (!captured > 0);
  (* The last captured update must be visible on every replica now serving
     items: route the probe repeatedly so least-pending spreads it. *)
  let last = 100 + (!steps / 5 * 5) in
  for _ = 1 to 10 do
    match
      Controller.submit c (Fmt.str "SELECT id FROM items WHERE qty = %d" last)
    with
    | Ok (Cdbs_storage.Executor.Rows { rows; _ }) ->
        Alcotest.(check int) "replayed update visible" 1 (List.length rows)
    | Ok _ -> Alcotest.fail "expected rows"
    | Error e -> Alcotest.fail e
  done

let test_controller_live_noop () =
  let c =
    Controller.create ~schema ~rows:[ ("orders", 100); ("items", 100) ]
      ~backends:2 ~seed:1
  in
  for _ = 1 to 10 do
    ignore (Controller.submit c "SELECT id FROM orders WHERE total > 50");
    ignore (Controller.submit c "SELECT id FROM items WHERE qty > 5")
  done;
  (match Controller.reallocate_live c () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Same history again: the second plan is a noop and completes inline. *)
  match Controller.reallocate_live c () with
  | Ok mb ->
      Alcotest.(check (float 1e-9)) "nothing shipped" 0. mb;
      Alcotest.(check bool) "not migrating" false (Controller.is_migrating c)
  | Error e -> Alcotest.fail e

(* ---------------- autoscaler + experiment ---------------- *)

let test_autoscaler_live () =
  let rng = Cdbs_util.Rng.create 5 in
  let summary =
    match
      Cdbs_autoscale.Autoscaler.simulate_days ~days:1 ~live:true
        ~bandwidth_mb_s:10. ~rng ()
    with
    | [ s ] -> s
    | _ -> Alcotest.fail "expected one day"
  in
  Alcotest.(check bool) "scale events deployed live" true
    (List.exists
       (fun (w : Cdbs_autoscale.Autoscaler.window_report) -> w.migrating)
       summary.Cdbs_autoscale.Autoscaler.windows);
  Alcotest.(check bool) "day served" true
    (summary.Cdbs_autoscale.Autoscaler.avg_response > 0.)

let test_fig_migration () =
  let r =
    Cdbs_experiments.Fig_migration.scenario ~nodes:3 ~bandwidth:8.
      ~rate_per_s:5. ~duration:240. ~migrate_at:60. ~buckets:8 ()
  in
  Alcotest.(check int) "timeline buckets" 8
    (List.length r.Cdbs_experiments.Fig_migration.timeline);
  Alcotest.(check int) "zero errors" 0 r.Cdbs_experiments.Fig_migration.errors;
  Alcotest.(check bool) "target deployed" true
    r.Cdbs_experiments.Fig_migration.target_deployed;
  Alcotest.(check bool) "live ships no more than a rebuild" true
    (r.Cdbs_experiments.Fig_migration.copied_mb
    <= r.Cdbs_experiments.Fig_migration.full_rebuild_mb +. 1e-9);
  Alcotest.(check bool) "classes stayed served" true
    (r.Cdbs_experiments.Fig_migration.min_live_replicas >= 1)

let suite =
  [
    Alcotest.test_case "planner: moves and drops" `Quick
      test_planner_moves_and_drops;
    Alcotest.test_case "planner: smallest transfer first" `Quick
      test_planner_smallest_first;
    Alcotest.test_case "planner: noop" `Quick test_planner_noop;
    Alcotest.test_case "planner: k-safety across the move" `Quick
      test_planner_ksafety;
    Alcotest.test_case "schedule: throttle and barrier" `Quick
      test_schedule_throttle;
    Alcotest.test_case "delta journal" `Quick test_delta_journal;
    Alcotest.test_case "simulator: live rebalance acceptance" `Quick
      test_simulator_acceptance;
    Alcotest.test_case "simulator: degrades during copy" `Quick
      test_simulator_degrades_then_recovers;
    Alcotest.test_case "controller: live reallocation end to end" `Quick
      test_controller_live_end_to_end;
    Alcotest.test_case "controller: noop live reallocation" `Quick
      test_controller_live_noop;
    Alcotest.test_case "autoscaler: live deployment" `Quick test_autoscaler_live;
    Alcotest.test_case "experiment: migration timeline" `Quick
      test_fig_migration;
  ]
