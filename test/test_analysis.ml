(* Static plan verifier: diagnostics, allocation/workload/migration checks.

   Two layers: properties proving the algorithms' outputs are
   diagnostic-clean on random instances, and unit tests proving that
   deliberately corrupted artifacts trigger the expected coded
   diagnostics. *)

open Cdbs_core
module Diagnostic = Cdbs_analysis.Diagnostic
module Check_allocation = Cdbs_analysis.Check_allocation
module Check_workload = Cdbs_analysis.Check_workload
module Check_migration = Cdbs_analysis.Check_migration
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule
module Delta = Cdbs_migration.Delta

let codes ds = List.map (fun d -> d.Diagnostic.code) ds
let error_codes ds = codes (Diagnostic.errors ds)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let has code ds =
  if not (List.mem code (codes ds)) then
    Alcotest.failf "expected diagnostic %s, got: %s" code
      (String.concat ", " (codes ds))

let no_errors name ds =
  if Diagnostic.has_errors ds then
    Alcotest.failf "%s: unexpected errors: %s" name
      (String.concat ", " (error_codes ds))

(* ------------------------------------------------------------------ *)
(* Properties: algorithm outputs are diagnostic-clean                  *)
(* ------------------------------------------------------------------ *)

let small_params =
  { Memetic.default_params with Memetic.population = 4; iterations = 5 }

let prop_greedy_clean =
  QCheck.Test.make ~name:"greedy allocations carry no error diagnostics"
    ~count:100 Gen.scenario_arbitrary (fun (w, bs) ->
      not (Diagnostic.has_errors (Check_allocation.check (Greedy.allocate w bs))))

let prop_memetic_clean =
  QCheck.Test.make ~name:"memetic allocations carry no error diagnostics"
    ~count:100 Gen.scenario_arbitrary (fun (w, bs) ->
      let rng = Cdbs_util.Rng.create 7 in
      let alloc = Memetic.allocate ~params:small_params ~rng w bs in
      not (Diagnostic.has_errors (Check_allocation.check alloc)))

let prop_ksafety_clean =
  QCheck.Test.make
    ~name:"k-safe allocations pass the k-safety checks (k=1)" ~count:100
    Gen.scenario_arbitrary (fun (w, bs) ->
      QCheck.assume (List.length bs >= 2);
      let alloc = Ksafety.allocate ~k:1 w bs in
      not (Diagnostic.has_errors (Check_allocation.check ~k:1 alloc)))

let prop_migration_clean =
  QCheck.Test.make
    ~name:"planner plans and schedules carry no error diagnostics" ~count:100
    Gen.scenario_arbitrary (fun (w, bs) ->
      let old_alloc = Greedy.allocate w bs in
      let rng = Cdbs_util.Rng.create 13 in
      let target = Memetic.improve ~params:small_params ~rng old_alloc in
      let old_fragments =
        List.init (Allocation.num_backends old_alloc)
          (Allocation.fragments_of old_alloc)
      in
      let plan = Planner.make ~old_fragments target in
      let plan_ds = Check_migration.check_plan ~workload:w plan in
      let sched_ds =
        Check_migration.check_schedule (Schedule.make ~bandwidth:2. plan)
      in
      (not (Diagnostic.has_errors plan_ds))
      && not (Diagnostic.has_errors sched_ds))

(* ------------------------------------------------------------------ *)
(* Unit: corrupted allocations                                         *)
(* ------------------------------------------------------------------ *)

let fr ?(size = 1.) name = Fragment.table name ~size
let fa = fr "a"
let fb = fr "b"
let fc = fr "c"

let paper_workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "C1" [ fa ] ~weight:0.30;
        Query_class.read "C2" [ fb ] ~weight:0.25;
        Query_class.read "C3" [ fc ] ~weight:0.20;
        Query_class.read "C4" [ fa; fb ] ~weight:0.15;
      ]
    ~updates:[ Query_class.update "U1" [ fa ] ~weight:0.10 ]

let class_of alloc id =
  let w = Allocation.workload alloc in
  List.find
    (fun (c : Query_class.t) -> c.Query_class.id = id)
    (w.Workload.reads @ w.Workload.updates)

let fresh_alloc () = Greedy.allocate (paper_workload ()) (Backend.homogeneous 3)

let backend_without alloc c =
  let n = Allocation.num_backends alloc in
  let rec go b =
    if b >= n then Alcotest.fail "no backend lacks the class's data"
    else if not (Allocation.holds alloc b c) then b
    else go (b + 1)
  in
  go 0

let backend_serving alloc c =
  let n = Allocation.num_backends alloc in
  let rec go b =
    if b >= n then Alcotest.fail "class served nowhere"
    else if Allocation.get_assign alloc b c > 1e-9 then b
    else go (b + 1)
  in
  go 0

let test_clean_allocation_is_clean () =
  no_errors "greedy on the paper example"
    (Check_allocation.check (fresh_alloc ()))

let test_locality_violation () =
  let alloc = fresh_alloc () in
  let c = class_of alloc "C1" in
  Allocation.set_assign alloc (backend_without alloc c) c 0.05;
  let ds = Check_allocation.check alloc in
  has "ALC002" ds;
  has "ALC003" ds

let test_read_sum_violation () =
  let alloc = fresh_alloc () in
  let c = class_of alloc "C2" in
  let b = backend_serving alloc c in
  Allocation.set_assign alloc b c (Allocation.get_assign alloc b c /. 2.);
  has "ALC003" (Check_allocation.check alloc)

let test_unpinned_update () =
  let alloc = fresh_alloc () in
  let u = class_of alloc "U1" in
  let b = backend_serving alloc u in
  Allocation.set_assign alloc b u (u.Query_class.weight /. 2.);
  let ds = Check_allocation.check alloc in
  has "ALC004" ds

let test_negative_assignment () =
  let alloc = fresh_alloc () in
  let c = class_of alloc "C1" in
  Allocation.set_assign alloc (backend_serving alloc c) c (-0.1);
  has "ALC001" (Check_allocation.check alloc)

let test_under_replication () =
  (* Greedy ignores k-safety: on the paper example each class ends up on a
     single backend, so every class is under-replicated for k=1. *)
  let ds = Check_allocation.check ~k:1 (fresh_alloc ()) in
  has "ALC009" ds

let test_ksafe_passes_k_check () =
  let alloc = Ksafety.allocate ~k:1 (paper_workload ()) (Backend.homogeneous 3) in
  no_errors "k-safe allocation under ~k:1" (Check_allocation.check ~k:1 alloc)

let test_check_exn_raises () =
  let alloc = fresh_alloc () in
  let c = class_of alloc "C1" in
  Allocation.set_assign alloc (backend_without alloc c) c 0.05;
  match Check_allocation.check_exn ~context:"test" alloc with
  | () -> Alcotest.fail "expected Invariants.Violation"
  | exception Invariants.Violation msg ->
      Alcotest.(check bool) "message names the code" true
        (contains_sub msg "ALC002")

(* ------------------------------------------------------------------ *)
(* Unit: workload lints                                                *)
(* ------------------------------------------------------------------ *)

let test_workload_clean () =
  no_errors "paper example workload" (Check_workload.check (paper_workload ()))

let test_duplicate_id () =
  let w =
    Workload.make
      ~reads:
        [
          Query_class.read "Q1" [ fa ] ~weight:0.5;
          Query_class.read "Q1" [ fb ] ~weight:0.5;
        ]
      ~updates:[]
  in
  has "WKL001" (Check_workload.check w)

let test_zero_weight_and_bad_sum () =
  let w =
    Workload.make
      ~reads:
        [
          Query_class.read "Q1" [ fa ] ~weight:0.5;
          Query_class.read "Q2" [ fb ] ~weight:0.;
        ]
      ~updates:[]
  in
  let ds = Check_workload.check w in
  has "WKL003" ds;
  has "WKL004" ds

let test_empty_fragments () =
  let w =
    Workload.make ~reads:[ Query_class.read "Q1" [] ~weight:1. ] ~updates:[]
  in
  has "WKL005" (Check_workload.check w)

let test_undefined_table () =
  let w =
    Workload.make
      ~reads:[ Query_class.read "Q1" [ fr "phantom" ] ~weight:1. ]
      ~updates:[]
  in
  has "WKL007" (Check_workload.check ~schema:[ ("a", [ "x" ]) ] w)

let test_range_overlap_and_gap () =
  let r lo hi =
    Fragment.range "t" "ts" ~lo ~hi ~size:1.
  in
  let overlapping =
    Workload.make
      ~reads:
        [
          Query_class.read "Q1" [ r 0. 10. ] ~weight:0.5;
          Query_class.read "Q2" [ r 5. 20. ] ~weight:0.5;
        ]
      ~updates:[]
  in
  has "WKL010" (Check_workload.check overlapping);
  let gapped =
    Workload.make
      ~reads:
        [
          Query_class.read "Q1" [ r 0. 10. ] ~weight:0.5;
          Query_class.read "Q2" [ r 15. 20. ] ~weight:0.5;
        ]
      ~updates:[]
  in
  has "WKL011" (Check_workload.check gapped)

(* ------------------------------------------------------------------ *)
(* Unit: corrupted migration plans, schedules, delta journals          *)
(* ------------------------------------------------------------------ *)

let migration_fixture () =
  let w = paper_workload () in
  let old_alloc = Greedy.allocate w (Backend.homogeneous 3) in
  let rng = Cdbs_util.Rng.create 3 in
  let target = Memetic.improve ~params:small_params ~rng old_alloc in
  let old_fragments = List.init 3 (Allocation.fragments_of old_alloc) in
  (w, Planner.make ~old_fragments target)

(* A fixture guaranteed to contain a move: node 1 must receive b. *)
let moving_fixture () =
  let w = paper_workload () in
  let target = Allocation.create w (Backend.homogeneous 2) in
  Allocation.add_fragments target 0 (Fragment.Set.of_list [ fa; fb; fc ]);
  Allocation.add_fragments target 1 (Fragment.Set.of_list [ fa; fb ]);
  List.iter
    (fun id ->
      let c = class_of target id in
      Allocation.set_assign target 0 c c.Query_class.weight)
    [ "C1"; "C2"; "C3"; "C4" ];
  let u = class_of target "U1" in
  Allocation.set_assign target 0 u u.Query_class.weight;
  Allocation.set_assign target 1 u u.Query_class.weight;
  let old_fragments =
    [ Fragment.Set.of_list [ fa; fb; fc ]; Fragment.Set.of_list [ fa ] ]
  in
  (w, Planner.make ~old_fragments target)

let test_plan_clean () =
  let w, plan = migration_fixture () in
  no_errors "planner output" (Check_migration.check_plan ~workload:w plan)

let test_drop_at_copy_destination () =
  let w, plan = moving_fixture () in
  let m = List.hd plan.Planner.moves in
  let corrupted =
    {
      plan with
      Planner.drops =
        { Planner.victim = m.Planner.fragment; at_backend = m.Planner.dest }
        :: plan.Planner.drops;
    }
  in
  let ds = Check_migration.check_plan ~workload:w corrupted in
  has "MIG005" ds;
  has "MIG006" ds

let test_move_index_out_of_range () =
  let w, plan = moving_fixture () in
  let m = List.hd plan.Planner.moves in
  let corrupted =
    { plan with Planner.moves = [ { m with Planner.dest = 9 } ] }
  in
  has "MIG001" (Check_migration.check_plan ~workload:w corrupted)

let test_source_lacks_fragment () =
  let w, plan = moving_fixture () in
  let m = List.hd plan.Planner.moves in
  (* Node 1 starts with only {a}; shipping b out of it is impossible. *)
  let corrupted =
    { plan with Planner.moves = [ { m with Planner.source = Some 1 } ] }
  in
  has "MIG002" (Check_migration.check_plan ~workload:w corrupted)

let test_copy_mb_drift () =
  let w, plan = moving_fixture () in
  let corrupted = { plan with Planner.copy_mb = plan.Planner.copy_mb +. 5. } in
  has "MIG007" (Check_migration.check_plan ~workload:w corrupted)

let test_lost_last_replica () =
  (* Dropping c from node 0 (its only holder, target still serves C3 on
     it) sinks class C3 to zero replicas. *)
  let w, plan = moving_fixture () in
  let corrupted =
    {
      plan with
      Planner.drops =
        { Planner.victim = fc; at_backend = 0 } :: plan.Planner.drops;
    }
  in
  let ds = Check_migration.check_plan ~workload:w corrupted in
  has "MIG006" ds;
  has "MIG008" ds;
  has "MIG009" ds

let test_schedule_clean () =
  let _, plan = moving_fixture () in
  no_errors "schedule" (Check_migration.check_schedule (Schedule.make ~bandwidth:2. plan))

let test_schedule_throttle_violation () =
  let _, plan = moving_fixture () in
  let sched = Schedule.make ~bandwidth:2. plan in
  let faster =
    List.map
      (fun (tm : Schedule.timed_move) ->
        { tm with Schedule.finish = tm.Schedule.start +. 1e-3 })
      sched.Schedule.moves
  in
  has "SCH002"
    (Check_migration.check_schedule { sched with Schedule.moves = faster })

let test_schedule_early_drop_barrier () =
  let _, plan = moving_fixture () in
  let sched = Schedule.make ~bandwidth:2. plan in
  has "SCH004"
    (Check_migration.check_schedule
       { sched with Schedule.drops_at = sched.Schedule.copy_done -. 0.5 })

let test_schedule_bad_bandwidth () =
  let _, plan = moving_fixture () in
  let sched = Schedule.make ~bandwidth:2. plan in
  has "SCH001"
    (Check_migration.check_schedule { sched with Schedule.bandwidth = 0. })

let test_schedule_stream_overlap () =
  let _, plan = moving_fixture () in
  let sched = Schedule.make ~bandwidth:2. plan in
  match sched.Schedule.moves with
  | [] -> Alcotest.fail "fixture produced no moves"
  | (tm : Schedule.timed_move) :: _ ->
      (* Run the same copy twice over the same stream at the same time. *)
      let doubled =
        {
          sched with
          Schedule.moves = [ tm; tm ];
          plan =
            {
              plan with
              Planner.moves = [ tm.Schedule.move; tm.Schedule.move ];
            };
        }
      in
      has "SCH003" (Check_migration.check_schedule doubled)

let test_open_capture_without_copy () =
  let _, plan = moving_fixture () in
  let journal : int Delta.t = Delta.create () in
  Delta.open_capture journal ~dest:0 ~fragment:fc;
  has "DLT001" (Check_migration.check_delta ~plan journal)

let test_delta_matching_copy_is_clean () =
  let _, plan = moving_fixture () in
  let m = List.hd plan.Planner.moves in
  let journal : int Delta.t = Delta.create () in
  Delta.open_capture journal ~dest:m.Planner.dest ~fragment:m.Planner.fragment;
  no_errors "capture matching a planned copy"
    (Check_migration.check_delta ~plan journal)

(* ------------------------------------------------------------------ *)
(* Unit: diagnostic rendering                                          *)
(* ------------------------------------------------------------------ *)

let test_json_rendering () =
  let d =
    Diagnostic.error ~code:"ALC002" ~subject:{|class "Q1"|}
      ~data:[ ("backend", Diagnostic.Int 2); ("assign", Diagnostic.Num 0.5) ]
      "broken %s" "badly"
  in
  let json = Diagnostic.to_json d in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true
        (contains_sub json needle))
    [
      {|"severity":"error"|}; {|"code":"ALC002"|}; {|class \"Q1\"|};
      {|"backend":2|}; {|"assign":0.5|};
    ];
  Alcotest.(check string) "empty list" "[]" (Diagnostic.list_to_json [])

let test_sort_and_summary () =
  let e = Diagnostic.error ~code:"ALC001" ~subject:"x" "e" in
  let w = Diagnostic.warning ~code:"WKL003" ~subject:"y" "w" in
  let i = Diagnostic.info ~code:"ALC012" ~subject:"z" "i" in
  (match Diagnostic.sort [ i; w; e ] with
  | [ a; b; c ] ->
      Alcotest.(check string) "errors first" "ALC001" a.Diagnostic.code;
      Alcotest.(check string) "then warnings" "WKL003" b.Diagnostic.code;
      Alcotest.(check string) "then infos" "ALC012" c.Diagnostic.code
  | _ -> Alcotest.fail "sort changed the length");
  Alcotest.(check string) "summary" "1 error, 1 warning, 1 info"
    (Diagnostic.summary [ i; w; e ]);
  Alcotest.(check string) "clean" "clean" (Diagnostic.summary [])

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_greedy_clean; prop_memetic_clean; prop_ksafety_clean;
      prop_migration_clean;
    ]
  @ [
      Alcotest.test_case "clean allocation is clean" `Quick
        test_clean_allocation_is_clean;
      Alcotest.test_case "locality violation -> ALC002" `Quick
        test_locality_violation;
      Alcotest.test_case "read-sum violation -> ALC003" `Quick
        test_read_sum_violation;
      Alcotest.test_case "unpinned update -> ALC004" `Quick
        test_unpinned_update;
      Alcotest.test_case "negative assignment -> ALC001" `Quick
        test_negative_assignment;
      Alcotest.test_case "under-replication -> ALC009" `Quick
        test_under_replication;
      Alcotest.test_case "k-safe allocation passes ~k:1" `Quick
        test_ksafe_passes_k_check;
      Alcotest.test_case "check_exn raises a coded Violation" `Quick
        test_check_exn_raises;
      Alcotest.test_case "workload lints: clean example" `Quick
        test_workload_clean;
      Alcotest.test_case "duplicate id -> WKL001" `Quick test_duplicate_id;
      Alcotest.test_case "zero weight + bad sum -> WKL003/WKL004" `Quick
        test_zero_weight_and_bad_sum;
      Alcotest.test_case "empty fragments -> WKL005" `Quick
        test_empty_fragments;
      Alcotest.test_case "undefined table -> WKL007" `Quick
        test_undefined_table;
      Alcotest.test_case "range overlap/gap -> WKL010/WKL011" `Quick
        test_range_overlap_and_gap;
      Alcotest.test_case "planner output is clean" `Quick test_plan_clean;
      Alcotest.test_case "drop at copy destination -> MIG005/MIG006" `Quick
        test_drop_at_copy_destination;
      Alcotest.test_case "move index out of range -> MIG001" `Quick
        test_move_index_out_of_range;
      Alcotest.test_case "source lacks fragment -> MIG002" `Quick
        test_source_lacks_fragment;
      Alcotest.test_case "copy_mb drift -> MIG007" `Quick test_copy_mb_drift;
      Alcotest.test_case "lost last replica -> MIG008/MIG009" `Quick
        test_lost_last_replica;
      Alcotest.test_case "schedule is clean" `Quick test_schedule_clean;
      Alcotest.test_case "throttle violation -> SCH002" `Quick
        test_schedule_throttle_violation;
      Alcotest.test_case "early drop barrier -> SCH004" `Quick
        test_schedule_early_drop_barrier;
      Alcotest.test_case "bad bandwidth -> SCH001" `Quick
        test_schedule_bad_bandwidth;
      Alcotest.test_case "stream overlap -> SCH003" `Quick
        test_schedule_stream_overlap;
      Alcotest.test_case "open capture without copy -> DLT001" `Quick
        test_open_capture_without_copy;
      Alcotest.test_case "capture matching a copy is clean" `Quick
        test_delta_matching_copy_is_clean;
      Alcotest.test_case "JSON rendering" `Quick test_json_rendering;
      Alcotest.test_case "sort and summary" `Quick test_sort_and_summary;
    ]
