(* Overload protection & gray-failure mitigation: deadline budgets,
   admission control, circuit breakers, hedged reads, the defended
   simulator paths, and the overload experiment's determinism. *)

open Cdbs_core
module Res = Cdbs_resilience
module Deadline = Res.Deadline
module Admission = Res.Admission
module Breaker = Res.Breaker
module Hedge = Res.Hedge
module Fault = Cdbs_faults.Fault
module Retry = Cdbs_faults.Retry
module Scheduler = Cdbs_cluster.Scheduler
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Controller = Cdbs_cluster.Controller
module Rng = Cdbs_util.Rng
module Fo = Cdbs_experiments.Fig_overload

let fr ?(size = 1.) name = Fragment.table name ~size

(* ---------------- deadline budgets ---------------- *)

let test_deadline () =
  let d = Deadline.start (Deadline.make ~budget:2.) ~arrival:10. in
  Alcotest.(check (float 1e-9)) "arrival" 10. (Deadline.arrival d);
  Alcotest.(check (float 1e-9)) "deadline" 12. (Deadline.deadline d);
  Alcotest.(check (float 1e-9)) "remaining" 1.5 (Deadline.remaining d ~now:10.5);
  Alcotest.(check bool) "not exhausted" false (Deadline.exhausted d ~now:11.9);
  Alcotest.(check bool) "exhausted" true (Deadline.exhausted d ~now:12.);
  Alcotest.(check bool) "allows fitting work" true
    (Deadline.allows d ~now:11. ~cost:0.9);
  Alcotest.(check bool) "refuses doomed work" false
    (Deadline.allows d ~now:11. ~cost:1.1);
  let u = Deadline.unlimited ~arrival:0. in
  Alcotest.(check bool) "unlimited never exhausts" false
    (Deadline.exhausted u ~now:1e12);
  match Deadline.make ~budget:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "budget 0 should be rejected"

(* ---------------- admission control ---------------- *)

let test_admission () =
  let p = Admission.make ~max_depth:2 ~max_pending:0.5 () in
  Alcotest.(check bool) "fresh backend admits" true
    (Admission.decide p ~depth:0 ~pending:0. ~is_update:false = Admission.Admit);
  Alcotest.(check bool) "depth watermark sheds" true
    (Admission.decide p ~depth:2 ~pending:0. ~is_update:false = Admission.Shed);
  Alcotest.(check bool) "pending watermark sheds" true
    (Admission.decide p ~depth:0 ~pending:0.6 ~is_update:false = Admission.Shed);
  Alcotest.(check bool) "updates are never shed" true
    (Admission.decide p ~depth:99 ~pending:99. ~is_update:true
    = Admission.Admit);
  Alcotest.(check bool) "unbounded never sheds" true
    (Admission.decide Admission.unbounded ~depth:100000 ~pending:1e6
       ~is_update:false
    = Admission.Admit);
  match Admission.make ~max_depth:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_depth 0 should be rejected"

(* ---------------- hedge delay tracker ---------------- *)

let test_hedge_delay () =
  let p = Hedge.make ~percentile:95. ~min_delay:0.05 ~min_observations:10 () in
  let h = Hedge.create p in
  Alcotest.(check (float 1e-9)) "cold tracker floors at min_delay" 0.05
    (Hedge.delay h);
  for i = 1 to 100 do
    Hedge.observe h (0.001 *. float_of_int i)
  done;
  Alcotest.(check int) "reservoir bounded by window" 100 (Hedge.observations h);
  let d = Hedge.delay h in
  Alcotest.(check bool) "p95 of 1..100 ms near 95 ms" true
    (d > 0.09 && d < 0.1);
  (* All-fast latencies: the floor still applies. *)
  let h2 = Hedge.create p in
  for _ = 1 to 50 do
    Hedge.observe h2 0.001
  done;
  Alcotest.(check (float 1e-9)) "floor holds for fast reads" 0.05
    (Hedge.delay h2)

(* ---------------- circuit breaker ---------------- *)

let slow_config =
  Breaker.make_config ~ewma_alpha:1. ~latency_factor:2. ~min_samples:3
    ~cool_down:10. ~probes:2 ()

(* Backend 0 turns slow, trips, cools down, probes healthy, closes. *)
let test_breaker_round_trip () =
  let br = Breaker.create ~config:slow_config 3 in
  Alcotest.(check int) "three backends" 3 (Breaker.num_backends br);
  (* Build healthy baselines everywhere. *)
  for i = 1 to 5 do
    let now = float_of_int i in
    Breaker.record_success br ~backend:0 ~now ~latency:0.01;
    Breaker.record_success br ~backend:1 ~now ~latency:0.01;
    Breaker.record_success br ~backend:2 ~now ~latency:0.01
  done;
  Alcotest.(check bool) "closed while healthy" true
    (Breaker.state br ~backend:0 = Breaker.Closed);
  (* Gray failure: backend 0 is slow but alive (alpha 1 -> EWMA = last). *)
  Breaker.record_success br ~backend:0 ~now:6. ~latency:0.05;
  Alcotest.(check bool) "latency trip opens" true
    (Breaker.state br ~backend:0 = Breaker.Open);
  Alcotest.(check int) "one trip counted" 1 (Breaker.trips br);
  Alcotest.(check bool) "open rejects routing" false
    (Breaker.allows br ~backend:0 ~now:7.);
  Alcotest.(check bool) "peers unaffected" true
    (Breaker.allows br ~backend:1 ~now:7.);
  (* Cool-down elapses: the next allows admits a probe (Half_open). *)
  Alcotest.(check bool) "probe admitted after cool-down" true
    (Breaker.allows br ~backend:0 ~now:17.);
  Alcotest.(check bool) "half-open" true
    (Breaker.state br ~backend:0 = Breaker.Half_open);
  (* Two healthy probes close it again. *)
  Breaker.record_success br ~backend:0 ~now:17. ~latency:0.01;
  Alcotest.(check bool) "still half-open after 1 probe" true
    (Breaker.state br ~backend:0 = Breaker.Half_open);
  Breaker.record_success br ~backend:0 ~now:18. ~latency:0.01;
  Alcotest.(check bool) "closed after enough probes" true
    (Breaker.state br ~backend:0 = Breaker.Closed);
  Alcotest.(check int) "no further trips" 1 (Breaker.trips br)

(* A slow probe reopens; a second cool-down and healthy probes recover. *)
let test_breaker_slow_probe_reopens () =
  let br = Breaker.create ~config:slow_config 2 in
  for i = 1 to 5 do
    let now = float_of_int i in
    Breaker.record_success br ~backend:0 ~now ~latency:0.01;
    Breaker.record_success br ~backend:1 ~now ~latency:0.01
  done;
  Breaker.record_success br ~backend:0 ~now:6. ~latency:0.05;
  Alcotest.(check bool) "tripped" true
    (Breaker.state br ~backend:0 = Breaker.Open);
  ignore (Breaker.allows br ~backend:0 ~now:17.);
  Breaker.record_success br ~backend:0 ~now:17. ~latency:0.05;
  Alcotest.(check bool) "slow probe reopens" true
    (Breaker.state br ~backend:0 = Breaker.Open);
  Alcotest.(check int) "second trip counted" 2 (Breaker.trips br);
  ignore (Breaker.allows br ~backend:0 ~now:28.);
  Breaker.record_success br ~backend:0 ~now:28. ~latency:0.01;
  Breaker.record_success br ~backend:0 ~now:29. ~latency:0.01;
  Alcotest.(check bool) "recovers on the second attempt" true
    (Breaker.state br ~backend:0 = Breaker.Closed)

let test_breaker_error_window () =
  let config =
    Breaker.make_config ~error_window:4 ~error_threshold:0.5 ~cool_down:5. ()
  in
  let br = Breaker.create ~config 2 in
  Breaker.record_failure br ~backend:0 ~now:1.;
  Alcotest.(check bool) "partial window does not trip" true
    (Breaker.state br ~backend:0 = Breaker.Closed);
  Breaker.record_success br ~backend:0 ~now:2. ~latency:0.01;
  Breaker.record_failure br ~backend:0 ~now:3.;
  Breaker.record_failure br ~backend:0 ~now:4.;
  Alcotest.(check bool) "3/4 failures trip" true
    (Breaker.state br ~backend:0 = Breaker.Open);
  (* Any failure in Half_open reopens immediately. *)
  ignore (Breaker.allows br ~backend:0 ~now:10.);
  Alcotest.(check bool) "half-open" true
    (Breaker.state br ~backend:0 = Breaker.Half_open);
  Breaker.record_failure br ~backend:0 ~now:10.;
  Alcotest.(check bool) "failed probe reopens" true
    (Breaker.state br ~backend:0 = Breaker.Open);
  Breaker.force_close br ~backend:0;
  Alcotest.(check bool) "force_close closes" true
    (Breaker.state br ~backend:0 = Breaker.Closed);
  Breaker.force_open br ~backend:0 ~now:20.;
  Alcotest.(check bool) "force_open opens" true
    (Breaker.state br ~backend:0 = Breaker.Open)

(* ---------------- scheduler routing filter ---------------- *)

let test_scheduler_healthy_filter () =
  let w =
    Workload.make ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:1. ]
      ~updates:[]
  in
  let alloc = Ksafety.allocate ~k:1 w (Backend.homogeneous 3) in
  let sched = Scheduler.create alloc in
  let q = Option.get (Workload.find w "q") in
  let all = Scheduler.eligible_for_read sched q in
  Alcotest.(check bool) "replicated" true (List.length all >= 2);
  let victim = List.hd all in
  let filtered =
    Scheduler.eligible_for_read ~healthy:(fun b -> b <> victim) sched q
  in
  Alcotest.(check bool) "breaker-open backend steered around" true
    (not (List.mem victim filtered) && filtered <> []);
  (* Every breaker open: fail open, the unfiltered list comes back. *)
  Alcotest.(check (list int)) "all-open fails open" all
    (Scheduler.eligible_for_read ~healthy:(fun _ -> false) sched q)

(* ---------------- retry jitter ---------------- *)

let test_retry_jitter () =
  let p = Retry.make ~jitter:0.2 () in
  (* Without an rng the delay is exact (legacy behaviour). *)
  Alcotest.(check (float 1e-9)) "no rng: exact" p.Retry.backoff_base
    (Retry.backoff p ~attempt:1);
  let base = Retry.backoff p ~attempt:2 in
  let jittered seed =
    let rng = Rng.create seed in
    Retry.backoff ~rng p ~attempt:2
  in
  Alcotest.(check (float 1e-12)) "deterministic per seed" (jittered 3)
    (jittered 3);
  (* Bounds hold over many draws. *)
  let rng = Rng.create 9 in
  for _ = 1 to 200 do
    let d = Retry.backoff ~rng p ~attempt:2 in
    if d < base *. 0.8 -. 1e-9 || d >= base *. 1.2 +. 1e-9 then
      Alcotest.failf "jittered delay %f outside [%f, %f)" d (base *. 0.8)
        (base *. 1.2)
  done;
  (* jitter = 0 with an rng stays exact. *)
  let p0 = Retry.make ~jitter:0. () in
  Alcotest.(check (float 1e-9)) "zero jitter exact"
    (Retry.backoff p0 ~attempt:3)
    (Retry.backoff ~rng:(Rng.create 1) p0 ~attempt:3);
  match Retry.make ~jitter:1. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jitter >= 1 should be rejected"

(* ---------------- fault validation ---------------- *)

let test_overlapping_slowdowns_rejected () =
  let slow at = Fault.slowdown ~at ~backend:0 ~factor:2. ~duration:5. in
  Alcotest.(check bool) "overlap on one backend rejected" false
    (Fault.validate ~num_backends:2 [ slow 0.; slow 3. ] = Ok ());
  Alcotest.(check bool) "back-to-back windows allowed" true
    (Fault.validate ~num_backends:2 [ slow 0.; slow 5. ] = Ok ());
  Alcotest.(check bool) "concurrent windows on distinct backends allowed"
    true
    (Fault.validate ~num_backends:2
       [
         Fault.slowdown ~at:0. ~backend:0 ~factor:2. ~duration:5.;
         Fault.slowdown ~at:1. ~backend:1 ~factor:2. ~duration:5.;
       ]
    = Ok ())

(* ---------------- controller breaker ---------------- *)

let ctl_schema : Cdbs_storage.Schema.t =
  [
    Cdbs_storage.Schema.table "t" ~primary_key:[ "id" ]
      [ ("id", Cdbs_storage.Schema.T_int); ("v", Cdbs_storage.Schema.T_int) ];
  ]

let test_controller_breaker () =
  let c =
    Controller.create ~schema:ctl_schema ~rows:[ ("t", 20) ] ~backends:3
      ~seed:5
  in
  let br = Controller.breaker c in
  Alcotest.(check int) "breaker tracks every backend" 3
    (Breaker.num_backends br);
  (* Force a backend open: reads keep being answered (steered or failed
     open), and results stay correct. *)
  Breaker.force_open br ~backend:0 ~now:0.;
  for _ = 1 to 5 do
    match Controller.submit c "SELECT id FROM t WHERE v >= 0" with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  (* A rejoin hands back a clean bill of health. *)
  Controller.fail_backend c ~backend:0;
  ignore (Controller.rejoin_backend c ~backend:0);
  Alcotest.(check bool) "rejoin closes the breaker" true
    (Breaker.state (Controller.breaker c) ~backend:0 = Breaker.Closed);
  (* Swapping the config resets all state. *)
  Controller.set_breaker_config c slow_config;
  Alcotest.(check int) "fresh breaker has no trips" 0
    (Breaker.trips (Controller.breaker c))

(* ---------------- defended simulator scenarios ---------------- *)

let overload_scenario () =
  let w =
    Workload.make
      ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:0.8 ]
      ~updates:[ Query_class.update "u" [ fr "a" ] ~weight:0.2 ]
  in
  let alloc = Ksafety.allocate ~k:1 w (Backend.homogeneous 2) in
  let rng = Rng.create 3 in
  let requests =
    List.init 400 (fun i ->
        let arrival = Rng.float rng 20. in
        if i mod 5 = 0 then Request.update ~arrival ~cost_mb:20. "u"
        else Request.read ~arrival ~cost_mb:150. "q")
  in
  (alloc, requests)

let run_defended ?rng ~resilience ?(faults = []) () =
  let alloc, requests = overload_scenario () in
  Simulator.run_open_with_faults ?rng ~resilience
    (Simulator.homogeneous_config 2)
    alloc requests ~faults

(* Shedding under pressure: reads are shed, every update survives, and the
   accounting identity still closes. *)
let test_shedding_preserves_updates () =
  let resilience =
    Res.Policy.make
      ~admission:(Admission.make ~max_depth:4 ~max_pending:0.2 ())
      ()
  in
  let fo = run_defended ~resilience () in
  Alcotest.(check bool) "overload sheds reads" true (fo.Simulator.shed > 0);
  Alcotest.(check int) "zero shed updates" 0 fo.Simulator.shed_updates;
  Alcotest.(check int) "every update committed" fo.Simulator.offered_updates
    fo.Simulator.completed_updates;
  Alcotest.(check int) "completed + aborted = offered" fo.Simulator.offered
    (fo.Simulator.run.Simulator.completed + fo.Simulator.aborted);
  Alcotest.(check bool) "shed requests count as aborted" true
    (fo.Simulator.aborted >= fo.Simulator.shed)

(* Doomed reads are refused up front instead of served past the deadline:
   with admission on, nothing completes after its deadline and no booked
   service is wasted on abandoned requests. *)
let test_deadline_refuses_doomed_work () =
  let deadline = Res.Deadline.make ~budget:1.5 in
  let undefended = Res.Policy.make ~deadline () in
  let defended =
    Res.Policy.make ~admission:(Admission.make ()) ~deadline ()
  in
  let u = run_defended ~resilience:undefended () in
  let d = run_defended ~resilience:defended () in
  Alcotest.(check bool) "undefended wastes capacity on doomed reads" true
    (u.Simulator.wasted_work > 0.);
  Alcotest.(check (float 1e-9)) "defended wastes none" 0.
    d.Simulator.wasted_work;
  Alcotest.(check bool) "goodput no worse when defended" true
    (d.Simulator.availability >= u.Simulator.availability)

(* ---------------- properties ---------------- *)

let requests_for (w : Workload.t) rng =
  let classes = Workload.all_classes w in
  List.concat_map
    (fun (c : Query_class.t) ->
      List.init 8 (fun _ ->
          let arrival = Rng.float rng 4. in
          if Query_class.is_update c then
            Request.update ~arrival ~cost_mb:30. c.Query_class.id
          else Request.read ~arrival ~cost_mb:30. c.Query_class.id))
    classes

(* Hedged reads are an optimisation, not a semantic change: with hedging
   on (and an aggressive policy so it actually fires), the accounting
   identity holds, every request completes exactly once, and update
   volume is not double-counted by the speculative read legs. *)
let prop_hedging_preserves_outcomes =
  QCheck.Test.make ~count:60
    ~name:"hedged reads: outcomes unchanged, updates not double-counted"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let n = List.length backends in
      if n < 2 then true
      else
        let alloc = Ksafety.allocate ~k:1 w backends in
        let config = Simulator.homogeneous_config n in
        let rng = Rng.create 17 in
        let requests = requests_for w rng in
        let hedged =
          Simulator.run_open_with_faults
            ~resilience:
              (Res.Policy.make
                 ~hedge:(Hedge.make ~min_delay:0.01 ~min_observations:5 ())
                 ())
            config alloc requests ~faults:[]
        in
        let plain =
          Simulator.run_open_with_faults config alloc requests ~faults:[]
        in
        hedged.Simulator.run.Simulator.completed + hedged.Simulator.aborted
        = hedged.Simulator.offered
        && hedged.Simulator.run.Simulator.completed
           = plain.Simulator.run.Simulator.completed
        && hedged.Simulator.aborted = plain.Simulator.aborted
        && hedged.Simulator.offered_updates
           = hedged.Simulator.completed_updates
        && hedged.Simulator.hedge_wins <= hedged.Simulator.hedged
        && List.length hedged.Simulator.responses
           = hedged.Simulator.run.Simulator.completed)

(* Admission control sheds only reads, whatever the workload. *)
let prop_shedding_never_touches_updates =
  QCheck.Test.make ~count:60 ~name:"admission control never sheds an update"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let n = List.length backends in
      let alloc = Ksafety.allocate ~k:(min 1 (n - 1)) w backends in
      let fo =
        Simulator.run_open_with_faults
          ~resilience:
            (Res.Policy.make
               ~admission:(Admission.make ~max_depth:1 ~max_pending:0.05 ())
               ())
          (Simulator.homogeneous_config n)
          alloc
          (requests_for w (Rng.create 23))
          ~faults:[]
      in
      fo.Simulator.shed_updates = 0
      && fo.Simulator.offered_updates = fo.Simulator.completed_updates
      && fo.Simulator.run.Simulator.completed + fo.Simulator.aborted
         = fo.Simulator.offered)

(* The full overload experiment is replayable: same seed, same report. *)
let prop_overload_deterministic =
  QCheck.Test.make ~count:4 ~name:"overload comparison is seed-deterministic"
    QCheck.(int_range 0 50)
    (fun seed ->
      let run () =
        let b, c =
          Fo.compare_at ~seed ~duration:20. ~rate_per_s:80. ~slow_backend:0 ()
        in
        (b, c)
      in
      run () = run ())

let suite =
  [
    Alcotest.test_case "deadline budgets" `Quick test_deadline;
    Alcotest.test_case "admission: watermarks, update exemption" `Quick
      test_admission;
    Alcotest.test_case "hedge delay: percentile with floor" `Quick
      test_hedge_delay;
    Alcotest.test_case "breaker: open -> half-open -> closed round trip"
      `Quick test_breaker_round_trip;
    Alcotest.test_case "breaker: slow probe reopens, then recovers" `Quick
      test_breaker_slow_probe_reopens;
    Alcotest.test_case "breaker: error window and forced states" `Quick
      test_breaker_error_window;
    Alcotest.test_case "scheduler: breaker filter fails open" `Quick
      test_scheduler_healthy_filter;
    Alcotest.test_case "retry jitter: seeded, bounded, off by default" `Quick
      test_retry_jitter;
    Alcotest.test_case "fault validate: overlapping slowdowns rejected"
      `Quick test_overlapping_slowdowns_rejected;
    Alcotest.test_case "controller: breaker wiring and rejoin reset" `Quick
      test_controller_breaker;
    Alcotest.test_case "shedding preserves all updates" `Quick
      test_shedding_preserves_updates;
    Alcotest.test_case "deadline budgets refuse doomed work" `Quick
      test_deadline_refuses_doomed_work;
    QCheck_alcotest.to_alcotest prop_hedging_preserves_outcomes;
    QCheck_alcotest.to_alcotest prop_shedding_never_touches_updates;
    QCheck_alcotest.to_alcotest prop_overload_deterministic;
  ]
