(* Physical allocation: Hungarian matching of new to old backends,
   transfer deltas, elastic padding, ETL duration model. *)

open Cdbs_core

let fr ?(size = 1.) name = Fragment.table name ~size
let set = Fragment.Set.of_list

let workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "q1" [ fr "a" ] ~weight:0.4;
        Query_class.read "q2" [ fr "b" ] ~weight:0.3;
        Query_class.read "q3" [ fr "c" ] ~weight:0.3;
      ]
    ~updates:[]

let test_transfer_cost () =
  Alcotest.(check (float 1e-9)) "missing data only" 1.
    (Physical.transfer_cost
       ~old_fragments:(set [ fr "a" ])
       (set [ fr "a"; fr "b" ]));
  Alcotest.(check (float 1e-9)) "already in place" 0.
    (Physical.transfer_cost
       ~old_fragments:(set [ fr "a"; fr "b" ])
       (set [ fr "a" ]))

let test_plan_identity () =
  (* A new allocation identical to the old one must cost nothing and map
     each backend to itself (or an equivalent permutation of zero cost). *)
  let w = workload () in
  let alloc = Greedy.allocate w (Backend.homogeneous 3) in
  let plan = Physical.plan ~old_alloc:alloc alloc in
  Alcotest.(check (float 1e-9)) "no transfer" 0. plan.Physical.transfer

let test_plan_prefers_cheap_matching () =
  (* Old: B1 holds a, B2 holds b.  New: backend 0 wants b, backend 1 wants
     a.  The matching must cross the backends instead of re-shipping. *)
  let old_sets = [ set [ fr "a" ]; set [ fr "b" ] ] in
  let w = workload () in
  let alloc = Allocation.create w (Backend.homogeneous 2) in
  Allocation.add_fragments alloc 0 (set [ fr "b" ]);
  Allocation.add_fragments alloc 1 (set [ fr "a" ]);
  let plan = Physical.plan_scaled ~old_fragments:old_sets alloc in
  Alcotest.(check (float 1e-9)) "crossed for free" 0. plan.Physical.transfer;
  Alcotest.(check (array int)) "mapping" [| 1; 0 |] plan.Physical.mapping

let test_plan_scale_out () =
  (* Scale 1 -> 3: the new empty nodes receive their data; the existing
     node keeps what it has. *)
  let old_sets = [ set [ fr "a"; fr "b"; fr "c" ] ] in
  let w = workload () in
  let alloc = Allocation.create w (Backend.homogeneous 3) in
  Allocation.add_fragments alloc 0 (set [ fr "a" ]);
  Allocation.add_fragments alloc 1 (set [ fr "b" ]);
  Allocation.add_fragments alloc 2 (set [ fr "c" ]);
  let plan = Physical.plan_scaled ~old_fragments:old_sets alloc in
  (* One of the three new backends lands on the old node (0 MB); the other
     two are fresh and receive one fragment each. *)
  Alcotest.(check (float 1e-9)) "2 fragments shipped" 2. plan.Physical.transfer;
  let fresh = Array.to_list plan.Physical.mapping |> List.filter (( = ) (-1)) in
  Alcotest.(check int) "two fresh nodes" 2 (List.length fresh)

let test_plan_scale_in () =
  (* Scale 3 -> 1: everything must end on the surviving node; data it does
     not already hold is shipped. *)
  let old_sets = [ set [ fr "a" ]; set [ fr "b" ]; set [ fr "c" ] ] in
  let w = workload () in
  let alloc = Allocation.create w (Backend.homogeneous 1) in
  Allocation.add_fragments alloc 0 (set [ fr "a"; fr "b"; fr "c" ]);
  let plan = Physical.plan_scaled ~old_fragments:old_sets alloc in
  Alcotest.(check (float 1e-9)) "ships the two missing" 2.
    plan.Physical.transfer

let test_deltas () =
  let old_sets = [ set [ fr "a" ]; set [ fr "b" ] ] in
  let new_sets = [ set [ fr "a"; fr "c" ]; set [ fr "b" ] ] in
  let w = workload () in
  let alloc = Allocation.create w (Backend.homogeneous 2) in
  Allocation.add_fragments alloc 0 (List.nth new_sets 0);
  Allocation.add_fragments alloc 1 (List.nth new_sets 1);
  let plan = Physical.plan_scaled ~old_fragments:old_sets alloc in
  let deltas =
    Physical.deltas plan ~old_fragments:old_sets ~new_fragments:new_sets
  in
  Alcotest.(check int) "c is shipped to backend 0" 1
    (Fragment.Set.cardinal (List.nth deltas 0));
  Alcotest.(check int) "backend 1 receives nothing" 0
    (Fragment.Set.cardinal (List.nth deltas 1))

let test_duration_monotone () =
  (* Shipping more takes longer; full replication on more nodes takes
     longer (the serial network stage). *)
  let w = workload () in
  let d n =
    let alloc = Baselines.full_replication w (Backend.homogeneous n) in
    let empty = List.init n (fun _ -> Fragment.Set.empty) in
    let plan = Physical.plan_scaled ~old_fragments:empty alloc in
    Physical.duration plan ~fragmentation:0.
  in
  Alcotest.(check bool) "3 nodes slower than 1" true (d 3 > d 1);
  Alcotest.(check bool) "6 nodes slower than 3" true (d 6 > d 3)

let test_plan_roundtrip () =
  (* Scale 2 -> 3 and straight back: the scale-in must recognize the two
     surviving nodes already hold their data and ship nothing. *)
  let w = workload () in
  let two_node_sets = [ set [ fr "a" ]; set [ fr "b" ] ] in
  let out = Allocation.create w (Backend.homogeneous 3) in
  Allocation.add_fragments out 0 (set [ fr "a" ]);
  Allocation.add_fragments out 1 (set [ fr "b" ]);
  Allocation.add_fragments out 2 (set [ fr "c" ]);
  let plan_out = Physical.plan_scaled ~old_fragments:two_node_sets out in
  Alcotest.(check (float 1e-9)) "scale-out ships only c" 1.
    plan_out.Physical.transfer;
  (* Physical state after deploying the scale-out. *)
  let three_node_sets = List.init 3 (Allocation.fragments_of out) in
  let back = Allocation.create w (Backend.homogeneous 2) in
  Allocation.add_fragments back 0 (set [ fr "a" ]);
  Allocation.add_fragments back 1 (set [ fr "b" ]);
  let plan_in = Physical.plan_scaled ~old_fragments:three_node_sets back in
  Alcotest.(check (float 1e-9)) "scale-in is free" 0. plan_in.Physical.transfer;
  Alcotest.(check (array int)) "survivors keep their data" [| 0; 1 |]
    plan_in.Physical.mapping

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (( <> ) x) l)))
        l

let test_plan_bruteforce_optimal () =
  (* On instances small enough to enumerate every matching, the Hungarian
     plan must hit the exact optimum, scale-out and scale-in included. *)
  let rng = Cdbs_util.Rng.create 42 in
  let pool =
    [ fr ~size:1. "a"; fr ~size:2. "b"; fr ~size:3. "c"; fr ~size:4. "d" ]
  in
  let random_set () =
    set (List.filter (fun _ -> Cdbs_util.Rng.bool rng) pool)
  in
  let w = workload () in
  for _ = 1 to 60 do
    let nu = 1 + Cdbs_util.Rng.int rng 4
    and nv = 1 + Cdbs_util.Rng.int rng 4 in
    let old_sets = List.init nu (fun _ -> random_set ()) in
    let alloc = Allocation.create w (Backend.homogeneous nv) in
    for i = 0 to nv - 1 do
      Allocation.add_fragments alloc i (random_set ())
    done;
    let plan = Physical.plan_scaled ~old_fragments:old_sets alloc in
    let m = max nu nv in
    let old_padded =
      Array.init m (fun i ->
          if i < nu then List.nth old_sets i else Fragment.Set.empty)
    in
    let new_padded =
      Array.init m (fun j ->
          if j < nv then Allocation.fragments_of alloc j
          else Fragment.Set.empty)
    in
    let best =
      List.fold_left
        (fun acc perm ->
          let cost =
            List.fold_left ( +. ) 0.
              (List.mapi
                 (fun j i ->
                   Physical.transfer_cost ~old_fragments:old_padded.(i)
                     new_padded.(j))
                 perm)
          in
          min acc cost)
        infinity
        (permutations (List.init m (fun i -> i)))
    in
    Alcotest.(check (float 1e-6)) "matches brute force" best
      plan.Physical.transfer
  done

(* Property: matching never costs more than the identity mapping. *)
let prop_matching_no_worse_than_identity =
  QCheck.Test.make ~count:150 ~name:"hungarian matching beats identity"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let n = List.length backends in
      let rng = Cdbs_util.Rng.create 3 in
      let old_alloc = Baselines.random_placement ~rng w backends in
      let new_alloc = Greedy.allocate w backends in
      let old_sets = List.init n (Allocation.fragments_of old_alloc) in
      let plan = Physical.plan_scaled ~old_fragments:old_sets new_alloc in
      let identity_cost =
        List.fold_left ( +. ) 0.
          (List.mapi
             (fun i old ->
               Physical.transfer_cost ~old_fragments:old
                 (Allocation.fragments_of new_alloc i))
             old_sets)
      in
      plan.Physical.transfer <= identity_cost +. 1e-6)

let suite =
  [
    Alcotest.test_case "transfer cost (Eq. 27)" `Quick test_transfer_cost;
    Alcotest.test_case "identity plan is free" `Quick test_plan_identity;
    Alcotest.test_case "matching crosses backends" `Quick
      test_plan_prefers_cheap_matching;
    Alcotest.test_case "scale-out pads with empty nodes" `Quick
      test_plan_scale_out;
    Alcotest.test_case "scale-in consolidates" `Quick test_plan_scale_in;
    Alcotest.test_case "per-backend deltas" `Quick test_deltas;
    Alcotest.test_case "scale-out/scale-in roundtrip" `Quick
      test_plan_roundtrip;
    Alcotest.test_case "matching is brute-force optimal" `Quick
      test_plan_bruteforce_optimal;
    Alcotest.test_case "duration model monotone" `Quick test_duration_monotone;
    QCheck_alcotest.to_alcotest prop_matching_no_worse_than_identity;
  ]
