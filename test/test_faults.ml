(* Fault injection & recovery: fault timelines, retry policy, seeded chaos,
   the event-clock simulator, the crash/rejoin scheduler states, the
   controller lifecycle, and k-safety self-repair. *)

open Cdbs_core
module Fault = Cdbs_faults.Fault
module Retry = Cdbs_faults.Retry
module Chaos = Cdbs_faults.Chaos
module Scheduler = Cdbs_cluster.Scheduler
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Controller = Cdbs_cluster.Controller
module Rng = Cdbs_util.Rng

let fr ?(size = 1.) name = Fragment.table name ~size

(* ---------------- fault timelines ---------------- *)

let test_fault_sort_and_validate () =
  let sched =
    [ Fault.recover ~at:9. 0; Fault.crash ~at:3. 0; Fault.crash ~at:3. 1 ]
  in
  let sorted = Fault.sort sched in
  Alcotest.(check (list (float 1e-9)))
    "sorted by time, stable at ties" [ 3.; 3.; 9. ]
    (List.map (fun t -> t.Fault.at) sorted);
  (match List.concat_map (fun t -> Fault.backends t.Fault.event) sorted with
  | [ 0; 1; 0 ] -> ()
  | _ -> Alcotest.fail "tie order not stable");
  Alcotest.(check bool) "valid alternation" true
    (Fault.validate ~num_backends:2 sorted = Ok ());
  Alcotest.(check bool) "double crash rejected" false
    (Fault.validate ~num_backends:2
       [ Fault.crash ~at:1. 0; Fault.crash ~at:2. 0 ]
    = Ok ());
  Alcotest.(check bool) "recover of an up backend rejected" false
    (Fault.validate ~num_backends:2 [ Fault.recover ~at:1. 0 ] = Ok ());
  Alcotest.(check bool) "out-of-range backend rejected" false
    (Fault.validate ~num_backends:2 [ Fault.crash ~at:1. 5 ] = Ok ());
  match Fault.slowdown ~at:1. ~backend:0 ~factor:0.5 ~duration:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "slowdown factor < 1 should be rejected"

let test_retry_policy () =
  let p = Retry.default in
  Alcotest.(check (float 1e-9)) "first backoff" p.Retry.backoff_base
    (Retry.backoff p ~attempt:1);
  Alcotest.(check (float 1e-9))
    "third backoff"
    (p.Retry.backoff_base *. (p.Retry.backoff_multiplier ** 2.))
    (Retry.backoff p ~attempt:3);
  Alcotest.(check bool) "within budget" false (Retry.gives_up p ~attempt:3);
  Alcotest.(check bool) "budget spent" true (Retry.gives_up p ~attempt:4);
  Alcotest.(check bool) "no_retry gives up at once" true
    (Retry.gives_up Retry.no_retry ~attempt:1);
  Alcotest.(check bool) "deadline" true
    (Retry.timed_out p ~arrival:0. ~now:(p.Retry.timeout +. 1.));
  match Retry.make ~max_retries:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative max_retries should be rejected"

let test_chaos_deterministic () =
  let gen seed =
    Chaos.generate ~rng:(Rng.create seed) ~num_backends:4
      { Chaos.default with Chaos.max_concurrent_down = Some 1 }
  in
  Alcotest.(check bool) "same seed, same schedule" true (gen 7 = gen 7);
  Alcotest.(check bool) "different seeds differ" true (gen 7 <> gen 8);
  let sched = gen 7 in
  Alcotest.(check bool) "generated schedule validates" true
    (Fault.validate ~num_backends:4 sched = Ok ());
  (* The concurrency cap holds along the whole timeline. *)
  let down = Hashtbl.create 4 and max_down = ref 0 in
  List.iter
    (fun t ->
      (match t.Fault.event with
      | Fault.Crash b -> Hashtbl.replace down b ()
      | Fault.Recover b -> Hashtbl.remove down b
      | Fault.Slowdown _ | Fault.Partition _ | Fault.ZoneOutage _
      | Fault.Workload_shift _ -> ());
      if Hashtbl.length down > !max_down then
        max_down := Hashtbl.length down)
    sched;
  Alcotest.(check bool) "cap respected" true (!max_down <= 1)

(* ---------------- event-clock simulator ---------------- *)

(* One class on one backend; 10 reads at t=0 of 990 MB each.  Under the
   default cost model each takes exactly 0.01 + 0.99 = 1 s, so the queue
   drains at t=10.  A crash at t=5.5 — after the last arrival — must
   cancel the read in flight and the 4 still queued; with no surviving
   replica all 5 abort after exhausting their 3 retries.  The historical
   polling implementation only applied failures at arrival instants, so
   this crash was silently ignored (0 errors, 10 completed). *)
let orphan_scenario () =
  let w =
    Workload.make ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:1. ]
      ~updates:[]
  in
  let alloc = Greedy.allocate w (Backend.homogeneous 1) in
  let requests =
    List.init 10 (fun _ -> Request.read ~arrival:0. ~cost_mb:990. "q")
  in
  (alloc, requests)

let test_late_failure_cancels_queued_work () =
  let alloc, requests = orphan_scenario () in
  let outcome =
    Simulator.run_open_with_failures
      (Simulator.homogeneous_config 1)
      alloc requests ~failures:[ (5.5, 0) ]
  in
  Alcotest.(check int) "5 queued/in-flight requests abort" 5
    outcome.Simulator.errors;
  Alcotest.(check int) "5 completed before the crash" 5
    outcome.Simulator.completed

let test_fault_outcome_accounting () =
  let alloc, requests = orphan_scenario () in
  let fo =
    Simulator.run_open_with_faults
      (Simulator.homogeneous_config 1)
      alloc requests
      ~faults:[ Fault.crash ~at:5.5 0 ]
  in
  Alcotest.(check int) "offered" 10 fo.Simulator.offered;
  Alcotest.(check int) "aborted" 5 fo.Simulator.aborted;
  Alcotest.(check int) "completed + aborted = offered" 10
    (fo.Simulator.run.Simulator.completed + fo.Simulator.aborted);
  Alcotest.(check (float 1e-9)) "availability" 0.5 fo.Simulator.availability;
  Alcotest.(check int) "each orphan retried" 5 fo.Simulator.retried_requests;
  Alcotest.(check int) "3 attempts per orphan" 15 fo.Simulator.retries;
  Alcotest.(check bool) "cancelled work recorded" true
    (fo.Simulator.cancelled_work > 4.4);
  Alcotest.(check int) "one backend down the whole tail" 1
    fo.Simulator.max_concurrent_down

let test_failover_retries_on_survivor () =
  let w =
    Workload.make ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:1. ]
      ~updates:[]
  in
  let alloc = Ksafety.allocate ~k:1 w (Backend.homogeneous 2) in
  let requests =
    List.init 10 (fun i ->
        Request.read ~arrival:(0.1 *. float_of_int i) ~cost_mb:990. "q")
  in
  let fo =
    Simulator.run_open_with_faults
      (Simulator.homogeneous_config 2)
      alloc requests
      ~faults:[ Fault.crash ~at:2.5 0 ]
  in
  Alcotest.(check int) "no aborts with a survivor" 0 fo.Simulator.aborted;
  Alcotest.(check (float 1e-9)) "fully available" 1. fo.Simulator.availability;
  Alcotest.(check bool) "the cancelled reads were retried" true
    (fo.Simulator.retried_requests > 0)

let test_recover_and_catch_up () =
  let w =
    Workload.make
      ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:0.8 ]
      ~updates:[ Query_class.update "u" [ fr "a" ] ~weight:0.2 ]
  in
  let alloc = Ksafety.allocate ~k:1 w (Backend.homogeneous 2) in
  let requests =
    List.init 40 (fun i ->
        let arrival = 0.25 *. float_of_int i in
        if i mod 4 = 0 then Request.update ~arrival ~cost_mb:2. "u"
        else Request.read ~arrival ~cost_mb:2. "q")
  in
  let fo =
    Simulator.run_open_with_faults
      (Simulator.homogeneous_config 2)
      alloc requests
      ~faults:[ Fault.crash ~at:2.0 0; Fault.recover ~at:6.0 0 ]
  in
  Alcotest.(check int) "everything served" 0 fo.Simulator.aborted;
  (match fo.Simulator.recoveries with
  | [ r ] ->
      Alcotest.(check int) "the crashed backend" 0 r.Simulator.rec_backend;
      Alcotest.(check (float 1e-9)) "crash time" 2.0 r.Simulator.crashed_at;
      Alcotest.(check (float 1e-9)) "recover time" 6.0 r.Simulator.recovered_at;
      Alcotest.(check bool) "missed updates were replayed" true
        (r.Simulator.replayed_mb > 0.);
      Alcotest.(check bool) "caught up after rejoining" true
        ((not (Float.is_nan r.Simulator.caught_up_at))
        && r.Simulator.caught_up_at >= r.Simulator.recovered_at)
  | rs -> Alcotest.failf "expected 1 recovery, got %d" (List.length rs));
  Alcotest.(check bool) "catch-up volume accounted" true
    (fo.Simulator.catch_up_mb > 0.);
  Alcotest.(check bool) "downtime recorded" true
    (fo.Simulator.downtime.(0) >= 4. -. 1e-9)

let test_slowdown_inflates_service () =
  let w =
    Workload.make ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:1. ]
      ~updates:[]
  in
  let alloc = Greedy.allocate w (Backend.homogeneous 1) in
  let requests =
    List.init 20 (fun i ->
        Request.read ~arrival:(float_of_int i) ~cost_mb:100. "q")
  in
  let run faults =
    Simulator.run_open_with_faults
      (Simulator.homogeneous_config 1)
      alloc requests ~faults
  in
  let base = run [] and slow =
    run [ Fault.slowdown ~at:0. ~backend:0 ~factor:4. ~duration:30. ]
  in
  Alcotest.(check int) "no aborts either way" 0 slow.Simulator.aborted;
  Alcotest.(check bool) "slowdown raises mean response" true
    (slow.Simulator.run.Simulator.avg_response
    > base.Simulator.run.Simulator.avg_response +. 1e-9)

(* ---------------- scheduler stale / rejoin states ---------------- *)

let test_scheduler_stale_states () =
  let w =
    Workload.make
      ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:0.8 ]
      ~updates:[ Query_class.update "u" [ fr "a" ] ~weight:0.2 ]
  in
  let alloc = Ksafety.allocate ~k:1 w (Backend.homogeneous 2) in
  let sched = Scheduler.create alloc in
  let q = Option.get (Workload.find w "q") in
  let u = Option.get (Workload.find w "u") in
  Alcotest.(check int) "both serve reads" 2
    (List.length (Scheduler.eligible_for_read sched q));
  Scheduler.set_down sched ~backend:0;
  Alcotest.(check bool) "down" false (Scheduler.is_up sched ~backend:0);
  (match Scheduler.set_stale sched ~backend:0 ~stale:true with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set_stale on a down backend should be rejected");
  Scheduler.set_up ~stale:true sched ~backend:0;
  Alcotest.(check bool) "up again" true (Scheduler.is_up sched ~backend:0);
  Alcotest.(check bool) "but stale" true (Scheduler.is_stale sched ~backend:0);
  Alcotest.(check (list int)) "stale serves no reads" [ 1 ]
    (Scheduler.eligible_for_read sched q);
  Alcotest.(check (list int)) "stale still takes updates" [ 0; 1 ]
    (Scheduler.targets_for_update sched u);
  Alcotest.(check int) "stale excluded from live replicas" 1
    (Scheduler.live_replicas sched q);
  Scheduler.set_stale sched ~backend:0 ~stale:false;
  Alcotest.(check int) "caught up: serving again" 2
    (List.length (Scheduler.eligible_for_read sched q))

(* ---------------- controller lifecycle ---------------- *)

let ctl_schema : Cdbs_storage.Schema.t =
  [
    Cdbs_storage.Schema.table "t" ~primary_key:[ "id" ]
      [ ("id", Cdbs_storage.Schema.T_int); ("v", Cdbs_storage.Schema.T_int) ];
    Cdbs_storage.Schema.table "u" ~primary_key:[ "id" ]
      [ ("id", Cdbs_storage.Schema.T_int); ("w", Cdbs_storage.Schema.T_int) ];
  ]

let test_controller_crash_rejoin () =
  let c =
    Controller.create ~schema:ctl_schema
      ~rows:[ ("t", 50); ("u", 50) ]
      ~backends:3 ~seed:5
  in
  Alcotest.(check int) "fully replicated: effective k = n-1" 2
    (Controller.effective_k c);
  Controller.fail_backend c ~backend:0;
  Alcotest.(check bool) "marked down" false
    (Controller.is_backend_up c ~backend:0);
  Alcotest.(check (list int)) "failed list" [ 0 ]
    (Controller.failed_backends c);
  Alcotest.(check int) "one survivor fewer" 1 (Controller.effective_k c);
  (* Service continues on the survivors, and the down copy misses the
     update. *)
  (match Controller.submit c "UPDATE t SET v = 9 WHERE id = 1" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Controller.submit c "SELECT id FROM t WHERE v = 9" with
  | Ok (Cdbs_storage.Executor.Rows { rows; _ }) ->
      Alcotest.(check int) "survivors saw the update" 1 (List.length rows)
  | Ok _ -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.fail e);
  let shipped = Controller.rejoin_backend c ~backend:0 in
  Alcotest.(check bool) "rejoin ships catch-up data" true (shipped > 0.);
  Alcotest.(check bool) "up again" true
    (Controller.is_backend_up c ~backend:0);
  Alcotest.(check int) "full k restored" 2 (Controller.effective_k c);
  Alcotest.(check (float 1e-9)) "idempotent rejoin" 0.
    (Controller.rejoin_backend c ~backend:0)

let test_controller_repair () =
  let c =
    Controller.create ~schema:ctl_schema
      ~rows:[ ("t", 80); ("u", 80) ]
      ~backends:3 ~seed:5
  in
  (* Build a history skewed enough that reallocation de-replicates. *)
  for _ = 1 to 30 do
    ignore (Controller.submit c "SELECT id FROM t WHERE v > 10")
  done;
  for _ = 1 to 10 do
    ignore (Controller.submit c "SELECT id FROM u WHERE w > 10")
  done;
  (match Controller.reallocate c ~iterations:5 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Whatever k the reallocation left, a repair to k=1 must make every
     class live on 2+ up backends and be verifier-clean. *)
  (match Controller.repair c ~k:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "k >= 1 after repair" true
    (Controller.effective_k c >= 1);
  Controller.fail_backend c ~backend:1;
  (match Controller.repair c ~k:1 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "k-safe again without backend 1" true
    (Controller.effective_k c >= 1);
  let alloc = Option.get (Controller.allocation c) in
  Alcotest.(check int) "repaired allocation is diagnostic-clean" 0
    (List.length
       (Cdbs_analysis.Diagnostic.errors
          (Cdbs_analysis.Check_allocation.check ~k:1 alloc)));
  (* Reads still answered by the survivors after the repair. *)
  match Controller.submit c "SELECT id FROM t WHERE v > 10" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* ---------------- properties ---------------- *)

let requests_for (w : Workload.t) =
  let classes = Workload.all_classes w in
  List.concat_map
    (fun (c : Query_class.t) ->
      List.init 5 (fun i ->
          let arrival = float_of_int i *. 0.5 in
          if Query_class.is_update c then
            Request.update ~arrival ~cost_mb:1. c.Query_class.id
          else Request.read ~arrival ~cost_mb:1. c.Query_class.id))
    classes

(* A k-safe allocation absorbs up to k crashes: zero aborts, availability
   1.0 — requests only pay retry latency. *)
let prop_k_crashes_fully_absorbed =
  QCheck.Test.make ~count:60
    ~name:"k=1 allocation under 1 crash: availability 1.0, no errors"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let n = List.length backends in
      if n < 2 then true
      else
        let alloc = Ksafety.allocate ~k:1 w backends in
        let config =
          {
            (Simulator.homogeneous_config n) with
            Simulator.speeds =
              Array.of_list (List.map (fun b -> b.Backend.load) backends);
          }
        in
        let requests = requests_for w in
        List.for_all
          (fun b ->
            let fo =
              Simulator.run_open_with_faults config alloc requests
                ~faults:[ Fault.crash ~at:1.2 b ]
            in
            fo.Simulator.aborted = 0
            && fo.Simulator.availability = 1.
            && fo.Simulator.run.Simulator.errors = 0)
          (List.init n (fun b -> b)))

(* Crashing k+1 backends may degrade service but never wedges the run:
   accounting stays consistent and the simulation terminates. *)
let prop_beyond_k_degrades_but_terminates =
  QCheck.Test.make ~count:60
    ~name:"k+1 crashes: degraded but consistent accounting"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let n = List.length backends in
      if n < 2 then true
      else
        let alloc = Ksafety.allocate ~k:1 w backends in
        let fo =
          Simulator.run_open_with_faults
            (Simulator.homogeneous_config n)
            alloc (requests_for w)
            ~faults:[ Fault.crash ~at:0.7 0; Fault.crash ~at:0.9 1 ]
        in
        fo.Simulator.run.Simulator.completed + fo.Simulator.aborted
        = fo.Simulator.offered
        && fo.Simulator.availability >= 0.
        && fo.Simulator.availability <= 1.)

let prop_chaos_runs_deterministic =
  QCheck.Test.make ~count:25 ~name:"chaos runs are seed-deterministic"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let w =
        Workload.make
          ~reads:
            [
              Query_class.read "q1" [ fr "a" ] ~weight:0.5;
              Query_class.read "q2" [ fr "b" ] ~weight:0.3;
            ]
          ~updates:[ Query_class.update "u1" [ fr "a" ] ~weight:0.2 ]
      in
      let alloc = Ksafety.allocate ~k:1 w (Backend.homogeneous 3) in
      let run () =
        let rng = Rng.create seed in
        let faults =
          Chaos.generate ~rng ~num_backends:3
            { Chaos.default with Chaos.mtbf = 20.; mttr = 5.; horizon = 60. }
        in
        let requests =
          List.init 100 (fun _ ->
              let arrival = Rng.float rng 60. in
              if Rng.float rng 1. < 0.2 then
                Request.update ~arrival ~cost_mb:1. "u1"
              else Request.read ~arrival ~cost_mb:1. "q1")
        in
        let fo =
          Simulator.run_open_with_faults
            (Simulator.homogeneous_config 3)
            alloc requests ~faults
        in
        ( fo.Simulator.run.Simulator.completed,
          fo.Simulator.aborted,
          fo.Simulator.retries,
          fo.Simulator.run.Simulator.makespan,
          fo.Simulator.responses )
      in
      run () = run ())

(* Ksafety.repair leaves the allocation diagnostic-clean (including the
   ALC009/ALC010 k-safety codes) and k-safe for the survivors. *)
let prop_repair_is_clean =
  QCheck.Test.make ~count:80
    ~name:"post-repair allocations are verifier-clean and k-safe"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let n = List.length backends in
      if n < 3 then true
      else begin
        let alloc = Ksafety.allocate ~k:1 w backends in
        let failed = [ n - 1 ] in
        ignore (Ksafety.repair ~k:1 ~failed alloc);
        Ksafety.effective_k ~failed alloc >= 1
        && Cdbs_analysis.Diagnostic.errors
             (Cdbs_analysis.Check_allocation.check ~k:1 alloc)
           = []
      end)

let suite =
  [
    Alcotest.test_case "fault timeline: sort + validate" `Quick
      test_fault_sort_and_validate;
    Alcotest.test_case "retry policy: backoff, budget, deadline" `Quick
      test_retry_policy;
    Alcotest.test_case "chaos: deterministic, valid, capped" `Quick
      test_chaos_deterministic;
    Alcotest.test_case "late failure cancels queued work (regression)" `Quick
      test_late_failure_cancels_queued_work;
    Alcotest.test_case "fault outcome accounting" `Quick
      test_fault_outcome_accounting;
    Alcotest.test_case "failover: retries land on the survivor" `Quick
      test_failover_retries_on_survivor;
    Alcotest.test_case "recover: stale rejoin + delta catch-up" `Quick
      test_recover_and_catch_up;
    Alcotest.test_case "slowdown inflates service times" `Quick
      test_slowdown_inflates_service;
    Alcotest.test_case "scheduler: down/stale/up states" `Quick
      test_scheduler_stale_states;
    Alcotest.test_case "controller: crash, serve, rejoin" `Quick
      test_controller_crash_rejoin;
    Alcotest.test_case "controller: k-safety self-repair" `Quick
      test_controller_repair;
    QCheck_alcotest.to_alcotest prop_k_crashes_fully_absorbed;
    QCheck_alcotest.to_alcotest prop_beyond_k_degrades_but_terminates;
    QCheck_alcotest.to_alcotest prop_chaos_runs_deterministic;
    QCheck_alcotest.to_alcotest prop_repair_is_clean;
  ]
