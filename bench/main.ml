(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 4-5 and the appendices) plus ablations and Bechamel
   micro-benchmarks of the allocation machinery.

   Usage: main.exe [section ...] with sections among
   tables | tpch | tpcapp | balance | elastic | ablation | day | alloc |
   micro; no argument (or "all") runs everything.  The [day] section runs
   the scaled-down day-in-production macro-benchmark and writes its SLO
   report to BENCH_day.json; the [alloc] section runs the massive-instance
   allocator benchmark and writes BENCH_alloc.json. *)

module E = Cdbs_experiments

let microbenchmark name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun elt ->
      let result = Benchmark.run cfg [ instance ] elt in
      let estimate =
        match Analyze.OLS.estimates (Analyze.one ols instance result) with
        | Some (t :: _) -> t
        | _ -> nan
      in
      Fmt.pr "  %-52s %12.1f us/run@." (Test.Elt.name elt) (estimate /. 1e3))
    (Test.elements test)

let microbenchmarks () =
  E.Common.header "Micro-benchmarks (Bechamel, one Test.make per row)";
  let column_workload = Cdbs_workloads.Tpch.workload ~granularity:`Column ~sf:1. in
  let table_workload = Cdbs_workloads.Tpcapp.workload ~granularity:`Table ~eb:300 in
  let backends = Cdbs_core.Backend.homogeneous 8 in
  microbenchmark "greedy allocation (TPC-H column, 8 nodes)" (fun () ->
      ignore (Cdbs_core.Greedy.allocate column_workload backends));
  microbenchmark "memetic generation (TPC-App table, 8 nodes)" (fun () ->
      let rng = Cdbs_util.Rng.create 3 in
      let params =
        {
          Cdbs_core.Memetic.default_params with
          Cdbs_core.Memetic.iterations = 1;
          population = 6;
        }
      in
      ignore (Cdbs_core.Memetic.allocate ~params ~rng table_workload backends));
  microbenchmark "hungarian matching 24x24" (fun () ->
      let rng = Cdbs_util.Rng.create 7 in
      let cost =
        Array.init 24 (fun _ ->
            Array.init 24 (fun _ -> Cdbs_util.Rng.float rng 100.))
      in
      ignore (Cdbs_lp.Hungarian.solve cost));
  microbenchmark "simplex 10 vars / 20 rows" (fun () ->
      let rows =
        List.init 20 (fun i ->
            Cdbs_lp.Simplex.row
              [ (i mod 10, 1.); ((i + 3) mod 10, 2.) ]
              Cdbs_lp.Simplex.Le
              (10. +. float_of_int i))
      in
      let p =
        { Cdbs_lp.Simplex.num_vars = 10; objective = Array.make 10 (-1.); rows }
      in
      ignore (Cdbs_lp.Simplex.solve p));
  microbenchmark "classification of a 200-entry SQL journal" (fun () ->
      let journal = Cdbs_core.Journal.create () in
      for i = 0 to 199 do
        Cdbs_core.Journal.record journal
          ~sql:
            (Printf.sprintf
               "SELECT o_orderkey, o_totalprice FROM orders WHERE o_custkey \
                = %d"
               (i mod 7))
          ~cost:1.
      done;
      let schema = Cdbs_workloads.Tpch.schema in
      let size_of =
        Cdbs_core.Classification.default_sizes ~schema
          ~rows:(Cdbs_workloads.Tpch.row_counts ~sf:1.)
      in
      ignore
        (Cdbs_core.Classification.classify ~schema ~size_of
           Cdbs_core.Classification.By_column journal));
  microbenchmark "cluster simulation of 2000 requests (8 nodes)" (fun () ->
      let rng = Cdbs_util.Rng.create 11 in
      let alloc =
        Cdbs_core.Greedy.allocate table_workload backends
      in
      let reqs =
        Cdbs_workloads.Tpcapp.requests ~rng ~granularity:`Table ~eb:300
          ~n:2000
      in
      ignore (E.Common.simulate alloc reqs))

(* Scaled-down day-in-production macro-benchmark: seed-deterministic, so
   BENCH_day.json is reproducible run to run (timing fields aside). *)
let day () =
  E.Common.header "Day-in-production SLO macro-benchmark (smoke scale)";
  let r = E.Fig_day.run ~params:E.Fig_day.smoke () in
  Fmt.pr "%a@." Cdbs_telemetry.Slo_report.pp r.E.Fig_day.report;
  Fmt.pr "@.%d events in %.1f s (%.0f events/s)@." r.E.Fig_day.events
    r.E.Fig_day.wall_s r.E.Fig_day.events_per_s;
  E.Fig_day.write_json ~path:"BENCH_day.json" r;
  Fmt.pr "wrote BENCH_day.json@."

(* Massive-instance allocator: dense greedy + island memetic + incremental
   repair at 10^5 fragments, writing BENCH_alloc.json (seed-deterministic
   apart from the timing fields). *)
let alloc () = E.Fig_alloc.print_all ()

let run_section = function
  | "tables" -> E.Tables.print_all ()
  | "tpch" -> E.Fig_tpch.print_all ()
  | "tpcapp" -> E.Fig_tpcapp.print_all ()
  | "balance" -> E.Fig_balance.print_all ()
  | "elastic" -> E.Fig_elastic.print_all ()
  | "ablation" -> E.Ablation.print_all ()
  | "day" -> day ()
  | "alloc" -> alloc ()
  | "micro" -> microbenchmarks ()
  | s -> Fmt.epr "unknown section %s@." s

let () =
  let sections =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) when not (List.mem "all" args) -> args
    | _ ->
        [
          "tables"; "tpch"; "tpcapp"; "balance"; "elastic"; "ablation";
          "day"; "alloc"; "micro";
        ]
  in
  List.iter run_section sections
