(* Quickstart: allocate a small partially replicated database.

   Reproduces the running example of the paper (Sec. 3, Fig. 2): three
   relations A, B, C and four read classes, allocated on 2 and 4 backends,
   then an update-aware variant with the exact MIP optimum.

   Run with: dune exec examples/quickstart.exe *)

open Cdbs_core

let () =
  (* Describe the data: three equally sized relations. *)
  let a = Fragment.table "A" ~size:1. in
  let b = Fragment.table "B" ~size:1. in
  let c = Fragment.table "C" ~size:1. in

  (* Describe the workload: four classes of read queries, grouped by the
     relations they access, weighted by their share of the processing cost
     (e.g. summed execution times from a query journal). *)
  let workload =
    Workload.make
      ~reads:
        [
          Query_class.read "C1" [ a ] ~weight:0.30;
          Query_class.read "C2" [ b ] ~weight:0.25;
          Query_class.read "C3" [ c ] ~weight:0.25;
          Query_class.read "C4" [ a; b ] ~weight:0.20;
        ]
      ~updates:[]
  in

  (* Allocate on clusters of 2 and 4 identical backends. *)
  List.iter
    (fun n ->
      let alloc = Greedy.allocate workload (Backend.homogeneous n) in
      Fmt.pr "--- %d backends ---@." n;
      Fmt.pr "%a@." Allocation.pp_allocation_matrix alloc;
      Fmt.pr "%a@." Allocation.pp_load_matrix alloc;
      Fmt.pr "speedup %.1f with %.2fx the storage of a single copy@.@."
        (Allocation.speedup alloc)
        (Replication.degree alloc))
    [ 2; 4 ];

  (* Updates change the picture: every replica of updated data must apply
     every update (ROWA), so the allocator balances read parallelism
     against update replication.  Solve this one exactly. *)
  let with_updates =
    Workload.make
      ~reads:
        [
          Query_class.read "Q1" [ a ] ~weight:0.24;
          Query_class.read "Q2" [ b ] ~weight:0.20;
          Query_class.read "Q3" [ c ] ~weight:0.20;
          Query_class.read "Q4" [ a; b ] ~weight:0.16;
        ]
      ~updates:
        [
          Query_class.update "U1" [ a ] ~weight:0.04;
          Query_class.update "U2" [ b ] ~weight:0.10;
          Query_class.update "U3" [ c ] ~weight:0.06;
        ]
  in
  Fmt.pr "--- update-aware, 4 heterogeneous backends (30/30/20/20) ---@.";
  let backends = Backend.heterogeneous [ 0.3; 0.3; 0.2; 0.2 ] in
  let heuristic = Greedy.allocate with_updates backends in
  Fmt.pr "greedy:  scale %.3f, speedup %.2f@."
    (Allocation.scale heuristic)
    (Allocation.speedup heuristic);
  (match Optimal.allocate with_updates backends with
  | Ok r ->
      Fmt.pr "optimal: scale %.3f, speedup %.2f (proved: %b)@."
        r.Optimal.scale
        (Speedup.of_scale ~nodes:4 ~scale:r.Optimal.scale)
        r.Optimal.proved_optimal;
      Fmt.pr "%a@." Allocation.pp_load_matrix r.Optimal.allocation
  | Error e -> Fmt.pr "optimal allocation failed: %s@." e);
  Fmt.pr "upper bound from the analytical model (Eq. 17): %.2f@."
    (Speedup.max_speedup_bound with_updates ~nodes:4)
