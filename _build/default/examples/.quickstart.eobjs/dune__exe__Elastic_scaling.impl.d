examples/elastic_scaling.ml: Cdbs_autoscale Cdbs_util Fmt List String
