examples/sql_journal.ml: Cdbs_cluster Cdbs_core Cdbs_storage Fmt List Printf String
