examples/sql_journal.mli:
