examples/quickstart.mli:
