examples/horizontal_partitioning.ml: Allocation Array Backend Cdbs_core Cdbs_util Cdbs_workloads Fmt Fragment List Memetic Replication Speedup String Workload
