examples/ksafety_failover.ml: Allocation Array Backend Cdbs_core Cdbs_workloads Fmt Greedy Ksafety List Printf Query_class Replication String
