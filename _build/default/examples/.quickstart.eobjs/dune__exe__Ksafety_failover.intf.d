examples/ksafety_failover.mli:
