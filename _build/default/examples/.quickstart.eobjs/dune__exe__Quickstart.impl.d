examples/quickstart.ml: Allocation Backend Cdbs_core Fmt Fragment Greedy List Optimal Query_class Replication Speedup Workload
