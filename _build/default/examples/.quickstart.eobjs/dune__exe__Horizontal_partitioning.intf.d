examples/horizontal_partitioning.mli:
