(* K-safety: surviving backend failures without service interruption
   (paper Appendix C).

   A TPC-App-style workload is allocated on 5 backends with k = 0 and
   k = 1; we then fail each backend in turn and check whether every query
   class can still be processed locally by a surviving backend, and what
   the extra availability costs in storage and throughput.

   Run with: dune exec examples/ksafety_failover.exe *)

open Cdbs_core

let () =
  let workload = Cdbs_workloads.Tpcapp.workload ~granularity:`Table ~eb:300 in
  let backends = Backend.homogeneous 5 in
  let plain = Greedy.allocate workload backends in
  let safe = Ksafety.allocate ~k:1 workload backends in

  Fmt.pr "--- storage and throughput cost of 1-safety ---@.";
  List.iter
    (fun (name, alloc) ->
      Fmt.pr
        "%-8s degree of replication %.2f, scale %.3f, predicted speedup \
         %.2f, min fragment replicas %d@."
        name
        (Replication.degree alloc)
        (Allocation.scale alloc) (Allocation.speedup alloc)
        (Replication.min_replicas alloc))
    [ ("k=0:", plain); ("k=1:", safe) ];

  Fmt.pr "@.--- failing each backend in turn ---@.";
  for b = 0 to 4 do
    Fmt.pr
      "lose B%d: plain allocation still serves all classes: %-5b  1-safe: %b@."
      (b + 1)
      (Ksafety.survives plain ~failed:[ b ])
      (Ksafety.survives safe ~failed:[ b ])
  done;

  (* Double failures exceed k=1 coverage — usually, but not always. *)
  let double_survival alloc =
    let total = ref 0 and ok = ref 0 in
    for b1 = 0 to 4 do
      for b2 = b1 + 1 to 4 do
        incr total;
        if Ksafety.survives alloc ~failed:[ b1; b2 ] then incr ok
      done
    done;
    (!ok, !total)
  in
  let ok, total = double_survival safe in
  Fmt.pr "@.1-safe allocation survives %d of %d double failures@." ok total;

  (* Which classes each backend can serve — the standby replicas are what
     failover falls back to. *)
  Fmt.pr "@.--- class coverage of the 1-safe allocation ---@.";
  Array.iter
    (fun c ->
      let servers =
        List.filter
          (fun b -> Allocation.holds safe b c)
          (List.init 5 (fun b -> b))
      in
      Fmt.pr "%-18s served by %s@." c.Query_class.id
        (String.concat ", "
           (List.map (fun b -> Printf.sprintf "B%d" (b + 1)) servers)))
    (Allocation.classes safe)
