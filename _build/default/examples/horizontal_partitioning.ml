(* Horizontal partitioning: why classifying by predicates matters
   (paper Sec. 3.1).

   An append-only event archive is dominated by one big table.  At table
   granularity every query class references [events], so the insert class
   must be replicated to every backend serving reads — update fan-out
   caps the speedup.  Classifying by the range predicates on [ev_day]
   splits the table into quarters: inserts pin only where the hot head
   quarter lives, and the cold quarters replicate freely.

   Run with: dune exec examples/horizontal_partitioning.exe *)

open Cdbs_core
module Timeseries = Cdbs_workloads.Timeseries

let describe name workload =
  let backends = Backend.homogeneous 6 in
  (* Full pipeline: greedy seed + memetic improvement (Algorithm 2). *)
  let alloc =
    Memetic.allocate ~rng:(Cdbs_util.Rng.create 3) workload backends
  in
  Fmt.pr "--- %s classification ---@." name;
  Fmt.pr "%d read classes, %d update classes over %d fragments@."
    (List.length workload.Workload.reads)
    (List.length workload.Workload.updates)
    (Fragment.Set.cardinal (Workload.fragments workload));
  Fmt.pr
    "scale %.3f -> predicted speedup %.2f on 6 backends; degree of \
     replication %.2f; max-speedup bound (Eq. 17) %.2f@.@."
    (Allocation.scale alloc) (Allocation.speedup alloc)
    (Replication.degree alloc)
    (Speedup.max_speedup_bound workload ~nodes:6);
  alloc

let () =
  let rng () = Cdbs_util.Rng.create 11 in
  let table =
    Timeseries.workload ~granularity:`Table ~rng:(rng ()) ~n:4000
  in
  let predicate =
    Timeseries.workload ~granularity:`Predicate ~rng:(rng ()) ~n:4000
  in
  let _ = describe "table-granular" table in
  let alloc = describe "predicate-granular (quarters of ev_day)" predicate in
  Fmt.pr "--- where the ranges went ---@.";
  Array.iteri
    (fun b _ ->
      let frs = Allocation.fragments_of alloc b in
      Fmt.pr "B%d: %s@." (b + 1)
        (String.concat ", "
           (List.map Fragment.name (Fragment.Set.elements frs))))
    (Allocation.backends alloc)
