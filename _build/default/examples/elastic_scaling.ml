(* Autonomic elastic scaling over a 24-hour workload trace (paper Sec. 5).

   The e-learning day profile is replayed at 40x; the autoscaler grows and
   shrinks the cluster based on windowed average response times, deploying
   each new allocation with cost-minimal Hungarian matching.  A static
   6-node fully replicated cluster runs alongside for comparison.

   Run with: dune exec examples/elastic_scaling.exe *)

module Autoscaler = Cdbs_autoscale.Autoscaler

let bar n = String.concat "" (List.init n (fun _ -> "#"))

let () =
  let summary =
    Autoscaler.simulate_day ~window_minutes:10. ~scale:40.
      ~rng:(Cdbs_util.Rng.create 5) ()
  in
  Fmt.pr "%6s %11s %7s %28s %10s@." "hour" "req/10min" "nodes" "active"
    "resp(ms)";
  List.iteri
    (fun i (w : Autoscaler.window_report) ->
      if i mod 6 = 0 then
        Fmt.pr "%6.1f %11.0f %7d %-28s %10.1f@." w.Autoscaler.hour
          w.Autoscaler.rate w.Autoscaler.nodes
          (bar w.Autoscaler.nodes)
          (w.Autoscaler.avg_response_scaled *. 1000.))
    summary.Autoscaler.windows;
  Fmt.pr
    "@.day-average response %.1f ms (worst window %.1f ms); %d \
     reallocations shipping %.0f MB in total@."
    (summary.Autoscaler.avg_response *. 1000.)
    (summary.Autoscaler.max_response_window *. 1000.)
    summary.Autoscaler.reallocations summary.Autoscaler.total_transfer_mb;
  let max_nodes =
    List.fold_left
      (fun acc (w : Autoscaler.window_report) -> max acc w.Autoscaler.nodes)
      0 summary.Autoscaler.windows
  in
  let node_windows =
    List.fold_left
      (fun acc (w : Autoscaler.window_report) -> acc + w.Autoscaler.nodes)
      0 summary.Autoscaler.windows
  in
  let total_windows = List.length summary.Autoscaler.windows in
  Fmt.pr
    "node-hours used: %.1f of %.1f a static %d-node cluster would burn \
     (%.0f%% saved)@."
    (float_of_int node_windows /. 6.)
    (float_of_int (max_nodes * total_windows) /. 6.)
    max_nodes
    (100.
    *. (1.
       -. float_of_int node_windows
          /. float_of_int (max_nodes * total_windows)))
