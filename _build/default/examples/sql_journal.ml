(* End-to-end CDBS prototype: real SQL through the controller.

   A small web-shop database is bootstrapped fully replicated on three
   backends; the application sends SQL through the controller (which
   routes reads least-pending-first and updates write-all while recording
   the query history); then the controller switches to allocation mode —
   classifying the history, computing a partial replication and rebuilding
   the backends with only the tables they need.

   Run with: dune exec examples/sql_journal.exe *)

module Schema = Cdbs_storage.Schema
module Controller = Cdbs_cluster.Controller

let schema : Schema.t =
  [
    Schema.table "products" ~primary_key:[ "p_id" ]
      [
        ("p_id", Schema.T_int); ("p_name", Schema.T_string 40);
        ("p_price", Schema.T_float); ("p_stock", Schema.T_int);
      ];
    Schema.table "customers" ~primary_key:[ "c_id" ]
      [
        ("c_id", Schema.T_int); ("c_name", Schema.T_string 30);
        ("c_city", Schema.T_string 20);
      ];
    Schema.table "orders" ~primary_key:[ "o_id" ]
      [
        ("o_id", Schema.T_int); ("o_c_id", Schema.T_int);
        ("o_p_id", Schema.T_int); ("o_qty", Schema.T_int);
      ];
    Schema.table "reviews" ~primary_key:[ "r_id" ]
      [
        ("r_id", Schema.T_int); ("r_p_id", Schema.T_int);
        ("r_stars", Schema.T_int); ("r_text", Schema.T_string 100);
      ];
  ]

let () =
  let controller =
    Controller.create ~schema
      ~rows:
        [ ("products", 500); ("customers", 300); ("orders", 1500); ("reviews", 800) ]
      ~backends:3 ~seed:7
  in
  Fmt.pr "--- bootstrapped fully replicated on 3 backends ---@.";
  List.iteri
    (fun i tables ->
      Fmt.pr "B%d: %s@." (i + 1) (String.concat ", " tables))
    (Controller.backend_tables controller);

  (* Drive a workload: catalogue browsing dominates, plus order inserts. *)
  let statements =
    [
      "SELECT p_name, p_price FROM products WHERE p_price < 5000";
      "SELECT p_name, r_stars FROM products JOIN reviews ON p_id = r_p_id \
       WHERE r_stars >= 4";
      "SELECT c_name, c_city FROM customers WHERE c_city LIKE 'a%'";
      "SELECT o_id, o_qty FROM orders WHERE o_c_id = 17";
      "INSERT INTO orders (o_id, o_c_id, o_p_id, o_qty) VALUES (100001, 1, 2, 3)";
      "UPDATE products SET p_stock = p_stock - 1 WHERE p_id = 2";
    ]
  in
  let counts = [ 40; 30; 15; 10; 4; 4 ] in
  let next_order = ref 200000 in
  List.iter2
    (fun sql count ->
      for _ = 1 to count do
        let sql =
          (* Give inserts fresh keys so they keep succeeding. *)
          if String.length sql > 6 && String.sub sql 0 6 = "INSERT" then begin
            incr next_order;
            Printf.sprintf
              "INSERT INTO orders (o_id, o_c_id, o_p_id, o_qty) VALUES (%d, 1, 2, 3)"
              !next_order
          end
          else sql
        in
        match Controller.submit controller sql with
        | Ok _ -> ()
        | Error e -> Fmt.epr "request failed: %s@." e
      done)
    statements counts;
  let processed, cost = Controller.stats controller in
  Fmt.pr "@.processed %d requests (journal cost %.1f MB scanned)@." processed
    cost;

  (* Allocation mode: classify the journal and repartition. *)
  (match Controller.reallocate controller () with
  | Ok moved -> Fmt.pr "reallocated, shipped %.2f MB@." moved
  | Error e -> Fmt.epr "reallocation failed: %s@." e);
  Fmt.pr "@.--- after query-centric reallocation ---@.";
  List.iteri
    (fun i tables ->
      Fmt.pr "B%d: %s@." (i + 1) (String.concat ", " tables))
    (Controller.backend_tables controller);
  (match Controller.allocation controller with
  | Some alloc ->
      Fmt.pr "predicted speedup %.2f, degree of replication %.2f@."
        (Cdbs_core.Allocation.speedup alloc)
        (Cdbs_core.Replication.degree alloc)
  | None -> ());

  (* The cluster still answers everything, now with local execution. *)
  Fmt.pr "@.--- queries after reallocation ---@.";
  List.iter
    (fun sql ->
      match Controller.submit controller sql with
      | Ok (Cdbs_storage.Executor.Rows { rows; _ }) ->
          Fmt.pr "%-70s -> %d rows@."
            (String.sub sql 0 (min 70 (String.length sql)))
            (List.length rows)
      | Ok (Cdbs_storage.Executor.Affected n) ->
          Fmt.pr "%-70s -> %d affected@." sql n
      | Error e -> Fmt.epr "failed: %s@." e)
    [
      "SELECT p_name, p_price FROM products WHERE p_price < 5000 ORDER BY \
       p_price DESC LIMIT 5";
      "SELECT c_city, count(*) AS n FROM customers GROUP BY c_city LIMIT 3";
      "SELECT o_id, o_qty FROM orders WHERE o_qty >= 1 LIMIT 3";
    ]
