(* K-safety (Appendix C): class replication, failover, fragment-level
   redundancy, robustness extensions. *)

open Cdbs_core

let fr ?(size = 1.) name = Fragment.table name ~size

let workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "q1" [ fr "a" ] ~weight:0.4;
        Query_class.read "q2" [ fr "b" ] ~weight:0.25;
        Query_class.read "q3" [ fr "c" ] ~weight:0.15;
      ]
    ~updates:
      [
        Query_class.update "u1" [ fr "a" ] ~weight:0.12;
        Query_class.update "u2" [ fr "d" ] ~weight:0.08;
      ]

let test_k1_allocation () =
  let alloc = Ksafety.allocate ~k:1 (workload ()) (Backend.homogeneous 4) in
  Alcotest.(check bool) "1-safe" true (Ksafety.is_k_safe ~k:1 alloc);
  Alcotest.(check bool) "valid" true (Allocation.validate alloc = Ok ());
  Alcotest.(check bool) "fragments >= 2 copies" true
    (Replication.min_replicas alloc >= 2)

let test_k2_allocation () =
  let alloc = Ksafety.allocate ~k:2 (workload ()) (Backend.homogeneous 5) in
  Alcotest.(check bool) "2-safe" true (Ksafety.is_k_safe ~k:2 alloc);
  Alcotest.(check bool) "fragments >= 3 copies" true
    (Replication.min_replicas alloc >= 3)

let test_k_exceeds_backends () =
  match Ksafety.allocate ~k:4 (workload ()) (Backend.homogeneous 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k+1 > backends should be rejected"

let test_survives_all_single_failures () =
  let alloc = Ksafety.allocate ~k:1 (workload ()) (Backend.homogeneous 4) in
  for b = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "survives loss of B%d" (b + 1))
      true
      (Ksafety.survives alloc ~failed:[ b ])
  done

let test_greedy_not_necessarily_safe () =
  (* The plain greedy allocation usually leaves some class on one backend. *)
  let alloc = Greedy.allocate (workload ()) (Backend.homogeneous 4) in
  Alcotest.(check bool) "not 1-safe" false (Ksafety.is_k_safe ~k:1 alloc)

let test_replicate_fragments () =
  let alloc = Greedy.allocate (workload ()) (Backend.homogeneous 4) in
  Ksafety.replicate_fragments ~k:1 alloc;
  Alcotest.(check bool) "fragments >= 2 copies" true
    (Replication.min_replicas alloc >= 2);
  Alcotest.(check bool) "still valid" true (Allocation.validate alloc = Ok ())

let test_ksafety_increases_update_cost () =
  let w = workload () in
  let plain = Greedy.allocate w (Backend.homogeneous 4) in
  let safe = Ksafety.allocate ~k:1 w (Backend.homogeneous 4) in
  (* Replicated update classes add work: scale can only grow. *)
  Alcotest.(check bool) "scale grows" true
    (Allocation.scale safe >= Allocation.scale plain -. 1e-9);
  Alcotest.(check bool) "storage grows" true
    (Allocation.total_stored safe > Allocation.total_stored plain)

(* ---------------- robustness (Sec. 5) ---------------- *)

let test_over_utilization () =
  (* Fig. 2 example: 4 backends, class C3 alone on B4 at 25%; raising its
     weight by 2 points pushes that backend to 27% -> scale 1.08 -> maximum
     speedup 4/1.08 = 3.7. *)
  let w =
    Workload.make
      ~reads:
        [
          Query_class.read "C1" [ fr "A" ] ~weight:0.30;
          Query_class.read "C2" [ fr "B" ] ~weight:0.25;
          Query_class.read "C3" [ fr "C" ] ~weight:0.25;
          Query_class.read "C4" [ fr "A"; fr "B" ] ~weight:0.20;
        ]
      ~updates:[]
  in
  let alloc = Greedy.allocate w (Backend.homogeneous 4) in
  let c3 = Option.get (Workload.find w "C3") in
  let scale = Robustness.over_utilization alloc c3 ~delta:0.02 in
  Alcotest.(check (float 1e-6)) "scale 1.08" 1.08 scale;
  Alcotest.(check (float 0.05)) "speedup drops to ~3.7" 3.7
    (Speedup.of_scale ~nodes:4 ~scale)

let test_shiftable_weight () =
  let w = workload () in
  let alloc = Baselines.full_replication w (Backend.homogeneous 3) in
  (* Fully replicated: every read class can shift anywhere. *)
  let total_reads =
    List.fold_left
      (fun acc c -> acc +. c.Query_class.weight)
      0. w.Workload.reads
  in
  Alcotest.(check (float 1e-6)) "everything shiftable"
    (total_reads /. 3.)
    (Robustness.shiftable_weight alloc 0)

let test_harden () =
  let w = workload () in
  let alloc = Greedy.allocate w (Backend.homogeneous 4) in
  Robustness.harden alloc ~tolerance:0.10;
  Alcotest.(check bool) "robust after hardening" true
    (Robustness.is_robust alloc ~tolerance:0.10);
  Alcotest.(check bool) "still valid" true (Allocation.validate alloc = Ok ())

(* Property: k-safe allocations survive every single failure and stay
   valid, over random workloads. *)
let prop_k1_survives =
  QCheck.Test.make ~count:100 ~name:"k=1 allocations survive any single loss"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let n = List.length backends in
      if n < 2 then true
      else
        let alloc = Ksafety.allocate ~k:1 w backends in
        Allocation.validate alloc = Ok ()
        && List.for_all
             (fun b -> Ksafety.survives alloc ~failed:[ b ])
             (List.init n (fun b -> b)))

let suite =
  [
    Alcotest.test_case "k=1 allocation" `Quick test_k1_allocation;
    Alcotest.test_case "k=2 allocation" `Quick test_k2_allocation;
    Alcotest.test_case "k too large rejected" `Quick test_k_exceeds_backends;
    Alcotest.test_case "survives single failures" `Quick
      test_survives_all_single_failures;
    Alcotest.test_case "plain greedy is not 1-safe" `Quick
      test_greedy_not_necessarily_safe;
    Alcotest.test_case "fragment-level redundancy (Eq. 46)" `Quick
      test_replicate_fragments;
    Alcotest.test_case "k-safety costs scale and storage" `Quick
      test_ksafety_increases_update_cost;
    Alcotest.test_case "robustness: over-utilization (Sec. 5)" `Quick
      test_over_utilization;
    Alcotest.test_case "robustness: shiftable weight" `Quick
      test_shiftable_weight;
    Alcotest.test_case "robustness: harden" `Quick test_harden;
    QCheck_alcotest.to_alcotest prop_k1_survives;
  ]

(* ---------------- failure injection in the simulator ---------------- *)

let test_simulated_failover () =
  let w = workload () in
  let backends = Backend.homogeneous 4 in
  let safe = Ksafety.allocate ~k:1 w backends in
  (* Random placement puts each class on exactly one backend — the layout a
     failure can orphan (greedy may split classes while balancing). *)
  let plain =
    Baselines.random_placement ~rng:(Cdbs_util.Rng.create 2) w backends
  in
  let requests =
    List.init 200 (fun i ->
        let arrival = float_of_int i *. 0.05 in
        if i mod 5 = 0 then
          Cdbs_cluster.Request.update ~arrival ~cost_mb:0.5 "u1"
        else Cdbs_cluster.Request.read ~arrival ~cost_mb:0.5 "q3")
  in
  let run alloc =
    Cdbs_cluster.Simulator.run_open_with_failures
      (Cdbs_cluster.Simulator.homogeneous_config 4)
      alloc requests
      ~failures:[ (4.0, 0) ]
  in
  let safe_outcome = run safe in
  Alcotest.(check int) "k=1 keeps serving everything" 0
    safe_outcome.Cdbs_cluster.Simulator.errors;
  Alcotest.(check int) "all requests completed" 200
    safe_outcome.Cdbs_cluster.Simulator.completed;
  (* q3 lives on exactly one backend of the unsafe allocation; failing
     that backend must orphan its requests. *)
  let some_failure_breaks_plain =
    List.exists
      (fun b ->
        let outcome =
          Cdbs_cluster.Simulator.run_open_with_failures
            (Cdbs_cluster.Simulator.homogeneous_config 4)
            plain requests
            ~failures:[ (4.0, b) ]
        in
        outcome.Cdbs_cluster.Simulator.errors > 0)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "some failure breaks the unsafe allocation" true
    some_failure_breaks_plain

let suite =
  suite
  @ [
      Alcotest.test_case "simulated failover (k=1 vs k=0)" `Quick
        test_simulated_failover;
    ]
