(* Horizontal (predicate-range) classification end to end: on the
   time-partitioned event archive, range granularity must beat table
   granularity (paper Sec. 3.1's motivation for predicate classes). *)

open Cdbs_core
module Timeseries = Cdbs_workloads.Timeseries

let workload granularity =
  Timeseries.workload ~granularity ~rng:(Cdbs_util.Rng.create 11) ~n:3000

let allocate w =
  Memetic.allocate ~rng:(Cdbs_util.Rng.create 3) w (Backend.homogeneous 6)

let test_class_structure () =
  let table = workload `Table in
  let pred = workload `Predicate in
  Alcotest.(check int) "one table-level update class" 1
    (List.length table.Workload.updates);
  Alcotest.(check int) "three disjoint range update classes" 3
    (List.length pred.Workload.updates);
  (* The three update classes are pairwise disjoint. *)
  List.iteri
    (fun i u1 ->
      List.iteri
        (fun j u2 ->
          if i < j then
            Alcotest.(check bool) "disjoint updates" false
              (Query_class.overlaps u1 u2))
        pred.Workload.updates)
    pred.Workload.updates

let test_insert_lands_in_head_range () =
  let pred = workload `Predicate in
  let insert =
    List.find
      (fun u -> Fragment.Set.cardinal u.Query_class.fragments = 1)
      (List.filter
         (fun u ->
           Fragment.Set.exists
             (fun f ->
               match f.Fragment.kind with
               | Fragment.Range { lo; _ } -> lo = 270.
               | _ -> false)
             u.Query_class.fragments)
         pred.Workload.updates)
  in
  Alcotest.(check int) "single range" 1
    (Fragment.Set.cardinal insert.Query_class.fragments)

let test_predicate_beats_table () =
  let table_alloc = allocate (workload `Table) in
  let pred_alloc = allocate (workload `Predicate) in
  Alcotest.(check bool) "valid" true (Allocation.validate pred_alloc = Ok ());
  Alcotest.(check bool) "higher speedup" true
    (Allocation.speedup pred_alloc > Allocation.speedup table_alloc +. 0.5);
  Alcotest.(check bool) "less replication" true
    (Replication.degree pred_alloc < Replication.degree table_alloc /. 2.)

let test_bound_improves () =
  let table = workload `Table in
  let pred = workload `Predicate in
  Alcotest.(check bool) "Eq. 17 bound rises with disjoint updates" true
    (Speedup.max_speedup_bound pred ~nodes:6
    > Speedup.max_speedup_bound table ~nodes:6)

let suite =
  [
    Alcotest.test_case "class structure" `Quick test_class_structure;
    Alcotest.test_case "insert lands in head range" `Quick
      test_insert_lands_in_head_range;
    Alcotest.test_case "predicate beats table granularity" `Slow
      test_predicate_beats_table;
    Alcotest.test_case "Eq. 17 bound improves" `Quick test_bound_improves;
  ]
