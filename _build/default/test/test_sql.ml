(* Lexer, parser and analyzer tests for the SQL subset. *)

open Cdbs_sql

let parse_ok sql =
  match Parser.parse sql with
  | st -> st
  | exception Parser.Parse_error m -> Alcotest.failf "parse failed: %s" m

let footprint ?schema sql = Analyze.footprint_of_sql ?schema sql

(* ---------------- lexer ---------------- *)

let test_lexer_basic () =
  let tokens = Lexer.tokenize "SELECT a, b FROM t WHERE x <= 10.5" in
  (* SELECT a , b FROM t WHERE x <= 10.5 EOF = 11 tokens *)
  Alcotest.(check int) "token count" 11 (List.length tokens);
  (match tokens with
  | Lexer.Keyword "SELECT" :: Lexer.Ident "a" :: _ -> ()
  | _ -> Alcotest.fail "unexpected head tokens");
  match List.rev tokens with
  | Lexer.Eof :: Lexer.Float_lit f :: _ ->
      Alcotest.(check (float 1e-9)) "float" 10.5 f
  | _ -> Alcotest.fail "unexpected tail tokens"

let test_lexer_strings () =
  match Lexer.tokenize "SELECT 'it''s'" with
  | [ Lexer.Keyword "SELECT"; Lexer.String_lit s; Lexer.Eof ] ->
      Alcotest.(check string) "escaped quote" "it's" s
  | _ -> Alcotest.fail "bad tokens"

let test_lexer_operators () =
  match Lexer.tokenize "a <> b != c <= d >= e" with
  | [
   Lexer.Ident "a"; Lexer.Symbol "<>"; Lexer.Ident "b"; Lexer.Symbol "<>";
   Lexer.Ident "c"; Lexer.Symbol "<="; Lexer.Ident "d"; Lexer.Symbol ">=";
   Lexer.Ident "e"; Lexer.Eof;
  ] ->
      ()
  | _ -> Alcotest.fail "operator tokens wrong"

let test_lexer_error () =
  match Lexer.tokenize "SELECT @" with
  | exception Lexer.Lex_error (_, 7) -> ()
  | exception Lexer.Lex_error (_, off) ->
      Alcotest.failf "wrong offset %d" off
  | _ -> Alcotest.fail "expected lex error"

let test_lexer_unterminated_string () =
  match Lexer.tokenize "SELECT 'oops" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

(* ---------------- parser ---------------- *)

let test_parse_select_shape () =
  match parse_ok "SELECT a, t.b AS bb FROM t WHERE a > 5 ORDER BY a DESC LIMIT 3" with
  | Ast.Select s ->
      Alcotest.(check int) "items" 2 (List.length s.Ast.items);
      Alcotest.(check bool) "where" true (s.Ast.where <> None);
      Alcotest.(check int) "order" 1 (List.length s.Ast.order_by);
      Alcotest.(check (option int)) "limit" (Some 3) s.Ast.limit
  | _ -> Alcotest.fail "expected select"

let test_parse_join () =
  match parse_ok "SELECT * FROM a JOIN b ON a.x = b.y JOIN c ON b.z = c.z" with
  | Ast.Select s -> Alcotest.(check int) "joins" 2 (List.length s.Ast.joins)
  | _ -> Alcotest.fail "expected select"

let test_parse_comma_join () =
  match parse_ok "SELECT x FROM a, b WHERE a.k = b.k" with
  | Ast.Select s ->
      Alcotest.(check int) "joins" 1 (List.length s.Ast.joins);
      (match s.Ast.joins with
      | [ { Ast.on = None; _ } ] -> ()
      | _ -> Alcotest.fail "comma join should have no on-condition")
  | _ -> Alcotest.fail "expected select"

let test_parse_group_having () =
  match
    parse_ok
      "SELECT c, count(*) FROM t GROUP BY c HAVING count(*) > 2"
  with
  | Ast.Select s ->
      Alcotest.(check int) "group" 1 (List.length s.Ast.group_by);
      Alcotest.(check bool) "having" true (s.Ast.having <> None)
  | _ -> Alcotest.fail "expected select"

let test_parse_insert () =
  match parse_ok "INSERT INTO t (a, b) VALUES (1, 'x')" with
  | Ast.Insert { target; columns; values } ->
      Alcotest.(check string) "target" "t" target;
      Alcotest.(check (list string)) "columns" [ "a"; "b" ] columns;
      Alcotest.(check int) "values" 2 (List.length values)
  | _ -> Alcotest.fail "expected insert"

let test_parse_update () =
  match parse_ok "UPDATE t SET a = a + 1, b = 'y' WHERE a = 2" with
  | Ast.Update { assignments; where; _ } ->
      Alcotest.(check int) "assignments" 2 (List.length assignments);
      Alcotest.(check bool) "where" true (where <> None)
  | _ -> Alcotest.fail "expected update"

let test_parse_delete () =
  match parse_ok "DELETE FROM t WHERE a BETWEEN 1 AND 5" with
  | Ast.Delete { target = "t"; where = Some (Ast.Between _) } -> ()
  | _ -> Alcotest.fail "expected delete with between"

let test_parse_precedence () =
  (* a OR b AND c parses as a OR (b AND c). *)
  match Parser.parse_expr "a OR b AND c" with
  | Ast.Binop (Ast.Or, Ast.Column (None, "a"), Ast.Binop (Ast.And, _, _)) -> ()
  | e -> Alcotest.failf "wrong tree: %a" Ast.pp_expr e

let test_parse_arith_precedence () =
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Lit (Ast.Int 1), Ast.Binop (Ast.Mul, _, _)) -> ()
  | e -> Alcotest.failf "wrong tree: %a" Ast.pp_expr e

let test_parse_in_like_null () =
  (match Parser.parse_expr "x IN (1, 2, 3)" with
  | Ast.In_list (_, l) -> Alcotest.(check int) "in items" 3 (List.length l)
  | _ -> Alcotest.fail "expected in-list");
  (match Parser.parse_expr "name LIKE 'ab%'" with
  | Ast.Like (_, "ab%") -> ()
  | _ -> Alcotest.fail "expected like");
  match Parser.parse_expr "x IS NOT NULL" with
  | Ast.Not (Ast.Binop (Ast.Eq, _, Ast.Lit Ast.Null)) -> ()
  | _ -> Alcotest.fail "expected is-not-null"

let test_parse_errors () =
  List.iter
    (fun sql ->
      match Parser.parse sql with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" sql)
    [
      "SELECT"; "SELECT FROM t"; "SELECT a FROM"; "INSERT t VALUES (1)";
      "UPDATE t a = 1"; "DELETE t"; "SELECT a FROM t WHERE"; "FOO BAR";
      "SELECT a FROM t extra garbage here";
    ]

(* ---------------- analyzer ---------------- *)

let schema = [ ("t", [ "a"; "b" ]); ("u", [ "c"; "d" ]) ]

let test_footprint_tables () =
  let fp = footprint ~schema "SELECT a, c FROM t JOIN u ON t.a = u.c" in
  Alcotest.(check (list string)) "tables" [ "t"; "u" ] fp.Analyze.tables;
  Alcotest.(check bool) "not update" false fp.Analyze.is_update

let test_footprint_columns_resolved () =
  let fp = footprint ~schema "SELECT a, d FROM t, u WHERE t.b = u.c" in
  Alcotest.(check (list (pair string string)))
    "columns"
    [ ("t", "a"); ("t", "b"); ("u", "c"); ("u", "d") ]
    fp.Analyze.columns

let test_footprint_alias () =
  let fp = footprint ~schema "SELECT x.a FROM t x WHERE x.b = 1" in
  Alcotest.(check (list string)) "tables" [ "t" ] fp.Analyze.tables;
  Alcotest.(check (list (pair string string)))
    "columns" [ ("t", "a"); ("t", "b") ] fp.Analyze.columns

let test_footprint_unqualified_single_table_no_schema () =
  (* Without schema knowledge, unqualified columns of a single-table query
     must still resolve to that table (the FROM entry registers both the
     alias and the table name; resolution must not double-count). *)
  let fp = footprint "SELECT a, b FROM t WHERE a > 1" in
  Alcotest.(check (list (pair string string)))
    "columns" [ ("t", "a"); ("t", "b") ] fp.Analyze.columns

let test_footprint_star () =
  let fp = footprint ~schema "SELECT * FROM u" in
  Alcotest.(check (list (pair string string)))
    "columns expanded" [ ("u", "c"); ("u", "d") ] fp.Analyze.columns

let test_footprint_update () =
  let fp = footprint ~schema "UPDATE t SET a = 1 WHERE b > 3" in
  Alcotest.(check bool) "is update" true fp.Analyze.is_update;
  Alcotest.(check (list (pair string string)))
    "columns" [ ("t", "a"); ("t", "b") ] fp.Analyze.columns

let test_footprint_insert_all_columns () =
  let fp = footprint ~schema "INSERT INTO t VALUES (1, 2)" in
  Alcotest.(check (list (pair string string)))
    "all columns" [ ("t", "a"); ("t", "b") ] fp.Analyze.columns

let interval_testable =
  Alcotest.testable
    (fun ppf (iv : Analyze.interval) ->
      let b = function
        | Analyze.Neg_inf -> "-inf"
        | Analyze.Pos_inf -> "+inf"
        | Analyze.Value v -> string_of_float v
      in
      Fmt.pf ppf "[%s,%s]" (b iv.Analyze.lo) (b iv.Analyze.hi))
    ( = )

let test_predicate_ranges () =
  let fp = footprint ~schema "SELECT a FROM t WHERE a >= 10 AND a < 20" in
  match List.assoc_opt ("t", "a") fp.Analyze.predicates with
  | Some iv ->
      Alcotest.check interval_testable "range"
        { Analyze.lo = Analyze.Value 10.; hi = Analyze.Value 20. }
        iv
  | None -> Alcotest.fail "no range extracted"

let test_predicate_flipped () =
  (* "5 < a" restricts a from below. *)
  let fp = footprint ~schema "SELECT a FROM t WHERE 5 < a" in
  match List.assoc_opt ("t", "a") fp.Analyze.predicates with
  | Some { Analyze.lo = Analyze.Value 5.; hi = Analyze.Pos_inf } -> ()
  | _ -> Alcotest.fail "flipped comparison not normalized"

let test_predicate_between () =
  let fp = footprint ~schema "SELECT a FROM t WHERE b BETWEEN 1 AND 2" in
  match List.assoc_opt ("t", "b") fp.Analyze.predicates with
  | Some { Analyze.lo = Analyze.Value 1.; hi = Analyze.Value 2. } -> ()
  | _ -> Alcotest.fail "between not extracted"

let test_predicate_disjunction_conservative () =
  (* OR must not restrict the range. *)
  let fp = footprint ~schema "SELECT a FROM t WHERE a < 5 OR a > 10" in
  Alcotest.(check int) "no ranges from OR" 0 (List.length fp.Analyze.predicates)

let test_interval_intersect () =
  let v x = Analyze.Value x in
  let iv lo hi = { Analyze.lo; hi } in
  (match Analyze.interval_intersect (iv (v 1.) (v 5.)) (iv (v 3.) (v 8.)) with
  | Some { Analyze.lo = Analyze.Value 3.; hi = Analyze.Value 5. } -> ()
  | _ -> Alcotest.fail "overlap wrong");
  match Analyze.interval_intersect (iv (v 1.) (v 2.)) (iv (v 3.) (v 4.)) with
  | None -> ()
  | Some _ -> Alcotest.fail "disjoint should be empty"

(* Property: the parser accepts everything our printer can express for
   randomly generated simple expressions. *)
let expr_gen =
  let open QCheck.Gen in
  let lit =
    oneof
      [
        map (fun i -> Ast.Lit (Ast.Int i)) (int_range 0 1000);
        return (Ast.Column (None, "a"));
        return (Ast.Column (Some "t", "b"));
      ]
  in
  let rec expr n =
    if n = 0 then lit
    else
      frequency
        [
          (2, lit);
          ( 3,
            map2
              (fun a b -> Ast.Binop (Ast.Add, a, b))
              (expr (n / 2)) (expr (n / 2)) );
          ( 3,
            map2
              (fun a b -> Ast.Binop (Ast.Lt, a, b))
              (lit) (expr (n / 2)) );
          (1, map (fun e -> Ast.Not e) (expr (n / 2)));
        ]
  in
  expr 4

let prop_expr_roundtrip =
  QCheck.Test.make ~count:200 ~name:"printed expressions reparse"
    (QCheck.make expr_gen) (fun e ->
      let printed = Fmt.str "%a" Ast.pp_expr e in
      match Parser.parse_expr printed with
      | _ -> true
      | exception Parser.Parse_error _ -> false)

let suite =
  [
    Alcotest.test_case "lexer: basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer: strings" `Quick test_lexer_strings;
    Alcotest.test_case "lexer: operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer: error offset" `Quick test_lexer_error;
    Alcotest.test_case "lexer: unterminated string" `Quick
      test_lexer_unterminated_string;
    Alcotest.test_case "parser: select shape" `Quick test_parse_select_shape;
    Alcotest.test_case "parser: joins" `Quick test_parse_join;
    Alcotest.test_case "parser: comma join" `Quick test_parse_comma_join;
    Alcotest.test_case "parser: group/having" `Quick test_parse_group_having;
    Alcotest.test_case "parser: insert" `Quick test_parse_insert;
    Alcotest.test_case "parser: update" `Quick test_parse_update;
    Alcotest.test_case "parser: delete" `Quick test_parse_delete;
    Alcotest.test_case "parser: boolean precedence" `Quick
      test_parse_precedence;
    Alcotest.test_case "parser: arithmetic precedence" `Quick
      test_parse_arith_precedence;
    Alcotest.test_case "parser: IN/LIKE/IS NULL" `Quick test_parse_in_like_null;
    Alcotest.test_case "parser: error cases" `Quick test_parse_errors;
    Alcotest.test_case "analyze: tables" `Quick test_footprint_tables;
    Alcotest.test_case "analyze: column resolution" `Quick
      test_footprint_columns_resolved;
    Alcotest.test_case "analyze: aliases" `Quick test_footprint_alias;
    Alcotest.test_case "analyze: unqualified without schema" `Quick
      test_footprint_unqualified_single_table_no_schema;
    Alcotest.test_case "analyze: star expansion" `Quick test_footprint_star;
    Alcotest.test_case "analyze: update footprint" `Quick
      test_footprint_update;
    Alcotest.test_case "analyze: insert all columns" `Quick
      test_footprint_insert_all_columns;
    Alcotest.test_case "analyze: predicate ranges" `Quick
      test_predicate_ranges;
    Alcotest.test_case "analyze: flipped comparison" `Quick
      test_predicate_flipped;
    Alcotest.test_case "analyze: between" `Quick test_predicate_between;
    Alcotest.test_case "analyze: OR stays conservative" `Quick
      test_predicate_disjunction_conservative;
    Alcotest.test_case "analyze: interval intersection" `Quick
      test_interval_intersect;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
  ]
