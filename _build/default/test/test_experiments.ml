(* Sanity checks of the experiment harness at reduced scale: the paper's
   qualitative shapes must hold even with few requests and runs. *)

module E = Cdbs_experiments

let test_fig4a_shapes () =
  let data =
    E.Fig_tpch.fig4a ~backend_counts:[ 1; 4 ] ~requests:400 ~runs:1 ()
  in
  let speedup strategy n =
    let rows = List.assoc strategy data in
    let r = List.find (fun r -> r.E.Fig_tpch.backends = n) rows in
    r.E.Fig_tpch.speedup
  in
  (* Full replication of a read-only workload scales linearly. *)
  Alcotest.(check bool) "full ~4x at 4 nodes" true
    (abs_float (speedup E.Common.Full_replication 4 -. 4.) < 0.5);
  (* Column-based is at least as fast; random placement is worst. *)
  Alcotest.(check bool) "column >= full" true
    (speedup E.Common.Column_based 4
    >= speedup E.Common.Full_replication 4 -. 0.3);
  Alcotest.(check bool) "random <= column" true
    (speedup E.Common.Random_placement 4
    <= speedup E.Common.Column_based 4 +. 0.1)

let test_fig4c_ordering () =
  let deg = E.Fig_tpch.fig4c ~backend_counts:[ 4 ] ~optimal_up_to:0 () in
  match deg with
  | [ (4, full, table, column, _) ] ->
      Alcotest.(check (float 1e-9)) "full = n" 4. full;
      Alcotest.(check bool) "table < full" true (table < full);
      Alcotest.(check bool) "column < table" true (column < table);
      Alcotest.(check bool) "column >= 1" true (column >= 1.)
  | _ -> Alcotest.fail "unexpected shape"

let test_fig4d_column_cheaper_at_scale () =
  match E.Fig_tpch.fig4d ~backend_counts:[ 1; 4 ] () with
  | [ (1, _, _); (4, full4, col4) ] ->
      Alcotest.(check bool) "column reallocation cheaper at 4 nodes" true
        (col4 < full4)
  | _ -> Alcotest.fail "unexpected shape"

let test_fig4f_amdahl_cap () =
  let data =
    E.Fig_tpcapp.fig4f_4g ~backend_counts:[ 1; 8 ] ~requests:3000 ~runs:1 ()
  in
  let speedup strategy n =
    let rows = List.assoc strategy data in
    let _, _, s = List.find (fun (b, _, _) -> b = n) rows in
    s
  in
  (* Full replication of the 25%-update workload saturates below the
     theoretical 3.07; partial allocation climbs past it. *)
  Alcotest.(check bool) "full capped" true
    (speedup E.Common.Full_replication 8 < 3.2);
  Alcotest.(check bool) "table beats full" true
    (speedup E.Common.Table_based 8 > speedup E.Common.Full_replication 8)

let test_fig4j_readwrite_less_balanced () =
  (* Single-point comparisons are noisy; assert the robust trend: the
     read-only deviation stays small everywhere, and the read-write
     deviation grows with the cluster. *)
  match E.Fig_balance.fig4j ~backend_counts:[ 2; 9 ] ~runs:2 () with
  | [ (2, tpch2, tpcapp2); (9, tpch9, tpcapp9) ] ->
      Alcotest.(check bool) "TPC-H well balanced" true
        (tpch2 < 0.15 && tpch9 < 0.15);
      Alcotest.(check bool) "TPC-App deviation grows" true
        (tpcapp9 > tpcapp2)
  | _ -> Alcotest.fail "unexpected shape"

let test_fig4k_histograms () =
  let hist = E.Fig_balance.fig4k ~nodes:6 ~runs:1 () in
  let tpch_total =
    List.fold_left (fun acc (_, h, _) -> acc +. h) 0. hist
  in
  let tpcapp_total =
    List.fold_left (fun acc (_, _, a) -> acc +. a) 0. hist
  in
  Alcotest.(check (float 0.01)) "8 TPC-H tables" 8. tpch_total;
  Alcotest.(check (float 0.01)) "8 TPC-App tables" 8. tpcapp_total;
  (* The write-only order_line table stays on exactly one backend. *)
  let _, _, once = List.hd hist in
  Alcotest.(check bool) "some TPC-App table unreplicated" true (once >= 1.)

let test_fig6_night_class () =
  let mix = E.Fig_elastic.fig6 ~step_minutes:120. () in
  let at hour =
    let _, shares =
      List.find (fun (h, _) -> abs_float (h -. hour) < 0.1) mix
    in
    shares
  in
  let b_night = List.assoc "B" (at 4.) in
  let a_night = List.assoc "A" (at 4.) in
  Alcotest.(check bool) "B dominates at night" true (b_night > a_night);
  let a_noon = List.assoc "A" (at 12.) in
  let b_noon = List.assoc "B" (at 12.) in
  Alcotest.(check bool) "A dominates at noon" true (a_noon > b_noon)

let test_theoretical_numbers () =
  let vals = E.Fig_tpcapp.theoretical () in
  match vals with
  | [ (_, eq29); (_, eq30) ] ->
      Alcotest.(check (float 0.01)) "Eq. 29" 3.08 eq29;
      Alcotest.(check (float 0.01)) "Eq. 30" 7.69 eq30
  | _ -> Alcotest.fail "unexpected shape"

let test_ablation_local_search_ordering () =
  let rows = E.Ablation.local_search_contribution () in
  match rows with
  | [ (_, none_scale, _); (_, s1_scale, _); (_, both_scale, _) ] ->
      Alcotest.(check bool) "strategy 1 helps" true
        (s1_scale <= none_scale +. 1e-9);
      Alcotest.(check bool) "both help most" true
        (both_scale <= s1_scale +. 1e-9)
  | _ -> Alcotest.fail "unexpected shape"

let test_ablation_protocols_ordering () =
  let rows = E.Ablation.protocol_comparison () in
  let tp alloc proto =
    let _, _, t, _ =
      List.find (fun (a, p, _, _) -> a = alloc && p = proto) rows
    in
    t
  in
  Alcotest.(check bool) "lazy fastest (full)" true
    (tp "full" "lazy" > tp "full" "rowa");
  Alcotest.(check bool) "primary copy >= rowa (full)" true
    (tp "full" "primary-copy" >= tp "full" "rowa" -. 1.)

let suite =
  [
    Alcotest.test_case "fig 4(a) shapes" `Slow test_fig4a_shapes;
    Alcotest.test_case "fig 4(c) replication ordering" `Slow
      test_fig4c_ordering;
    Alcotest.test_case "fig 4(d) reallocation cost" `Quick
      test_fig4d_column_cheaper_at_scale;
    Alcotest.test_case "fig 4(f) Amdahl cap" `Slow test_fig4f_amdahl_cap;
    Alcotest.test_case "fig 4(j) balance ordering" `Slow
      test_fig4j_readwrite_less_balanced;
    Alcotest.test_case "fig 4(k) histograms" `Slow test_fig4k_histograms;
    Alcotest.test_case "fig 6 class mix" `Quick test_fig6_night_class;
    Alcotest.test_case "Eqs. 29-30" `Quick test_theoretical_numbers;
    Alcotest.test_case "ablation: local searches" `Slow
      test_ablation_local_search_ordering;
    Alcotest.test_case "ablation: protocols" `Slow
      test_ablation_protocols_ordering;
  ]
