(* Update-propagation protocols (Sec. 2 extensions). *)

open Cdbs_core
module Protocol = Cdbs_cluster.Protocol
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request

let fr name = Fragment.table name ~size:1.

let workload () =
  Workload.make
    ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:0.5 ]
    ~updates:[ Query_class.update "u" [ fr "a" ] ~weight:0.5 ]

let requests n =
  List.concat
    (List.init n (fun _ ->
         [ Request.read ~cost_mb:1. "q"; Request.update ~cost_mb:1. "u" ]))

let run protocol n_backends =
  let alloc =
    Baselines.full_replication (workload ()) (Backend.homogeneous n_backends)
  in
  let config = Simulator.homogeneous_config ~protocol n_backends in
  Simulator.run_batch config alloc (requests 100)

let test_plan_rowa () =
  let split = Protocol.plan Protocol.Rowa ~targets:[ 0; 1; 2 ] in
  Alcotest.(check (list int)) "all sync" [ 0; 1; 2 ] split.Protocol.sync;
  Alcotest.(check int) "no async" 0 (List.length split.Protocol.async)

let test_plan_primary_copy () =
  let split = Protocol.plan Protocol.Primary_copy ~targets:[ 2; 0; 1 ] in
  Alcotest.(check (list int)) "primary only" [ 2 ] split.Protocol.sync;
  Alcotest.(check int) "two followers" 2 (List.length split.Protocol.async);
  List.iter
    (fun (_, f) -> Alcotest.(check (float 1e-9)) "full apply" 1. f)
    split.Protocol.async

let test_plan_lazy_factor () =
  let split =
    Protocol.plan (Protocol.Lazy { apply_factor = 0.25 }) ~targets:[ 0; 1 ]
  in
  match split.Protocol.async with
  | [ (1, 0.25) ] -> ()
  | _ -> Alcotest.fail "lazy follower factor wrong"

let test_plan_empty_targets () =
  match Protocol.plan Protocol.Rowa ~targets:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty targets accepted"

let test_primary_copy_improves_response () =
  let rowa = run Protocol.Rowa 4 in
  let pc = run Protocol.Primary_copy 4 in
  Alcotest.(check bool) "primary copy responds faster" true
    (pc.Simulator.avg_response < rowa.Simulator.avg_response);
  (* Both apply the update everywhere: same total busy time. *)
  let total o = Array.fold_left ( +. ) 0. o.Simulator.busy in
  Alcotest.(check bool) "similar total work" true
    (abs_float (total pc -. total rowa) /. total rowa < 0.15)

let test_lazy_reduces_replica_work () =
  let rowa = run Protocol.Rowa 4 in
  let lazy_ = run (Protocol.Lazy { apply_factor = 0.2 }) 4 in
  let total o = Array.fold_left ( +. ) 0. o.Simulator.busy in
  Alcotest.(check bool) "lazy does less work" true
    (total lazy_ < total rowa);
  Alcotest.(check bool) "lazy is faster" true
    (lazy_.Simulator.throughput > rowa.Simulator.throughput)

let test_reads_unaffected () =
  (* A read-only stream behaves identically under every protocol. *)
  let reads = List.init 100 (fun _ -> Request.read ~cost_mb:1. "q") in
  let alloc =
    Baselines.full_replication (workload ()) (Backend.homogeneous 3)
  in
  let tp p =
    (Simulator.run_batch (Simulator.homogeneous_config ~protocol:p 3) alloc reads)
      .Simulator.throughput
  in
  let a = tp Protocol.Rowa and b = tp Protocol.Primary_copy in
  Alcotest.(check (float 1e-9)) "identical" a b

let suite =
  [
    Alcotest.test_case "plan: rowa" `Quick test_plan_rowa;
    Alcotest.test_case "plan: primary copy" `Quick test_plan_primary_copy;
    Alcotest.test_case "plan: lazy factor" `Quick test_plan_lazy_factor;
    Alcotest.test_case "plan: empty targets" `Quick test_plan_empty_targets;
    Alcotest.test_case "primary copy improves response" `Quick
      test_primary_copy_improves_response;
    Alcotest.test_case "lazy reduces replica work" `Quick
      test_lazy_reduces_replica_work;
    Alcotest.test_case "reads unaffected" `Quick test_reads_unaffected;
  ]
