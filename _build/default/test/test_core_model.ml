(* Core model tests: fragments, query classes, workloads, journal,
   classification. *)

open Cdbs_core

let fr ?(size = 1.) name = Fragment.table name ~size

(* ---------------- fragments ---------------- *)

let test_fragment_identity () =
  (* Identity ignores the size: the same fragment measured differently is
     still the same fragment. *)
  let a1 = Fragment.table "A" ~size:1. in
  let a2 = Fragment.table "A" ~size:99. in
  Alcotest.(check bool) "equal" true (Fragment.equal a1 a2);
  Alcotest.(check int) "set collapses" 1
    (Fragment.Set.cardinal (Fragment.Set.of_list [ a1; a2 ]))

let test_fragment_names () =
  Alcotest.(check string) "table" "t" (Fragment.name (fr "t"));
  Alcotest.(check string) "column" "t.c"
    (Fragment.name (Fragment.column "t" "c" ~size:1.));
  Alcotest.(check string) "range" "t.c[0,10)"
    (Fragment.name (Fragment.range "t" "c" ~lo:0. ~hi:10. ~size:1.))

let test_set_size () =
  let s =
    Fragment.Set.of_list [ fr ~size:2. "a"; fr ~size:3. "b" ]
  in
  Alcotest.(check (float 1e-9)) "sum" 5. (Fragment.set_size s)

(* ---------------- query classes / workload ---------------- *)

let test_class_overlap () =
  let c1 = Query_class.read "c1" [ fr "a"; fr "b" ] ~weight:0.5 in
  let c2 = Query_class.read "c2" [ fr "b"; fr "c" ] ~weight:0.5 in
  let c3 = Query_class.read "c3" [ fr "d" ] ~weight:0.0 in
  Alcotest.(check bool) "overlap" true (Query_class.overlaps c1 c2);
  Alcotest.(check bool) "no overlap" false (Query_class.overlaps c1 c3)

let test_updates_of () =
  let w =
    Workload.make
      ~reads:[ Query_class.read "q" [ fr "a"; fr "b" ] ~weight:0.8 ]
      ~updates:
        [
          Query_class.update "u1" [ fr "a" ] ~weight:0.1;
          Query_class.update "u2" [ fr "c" ] ~weight:0.1;
        ]
  in
  let q = Option.get (Workload.find w "q") in
  Alcotest.(check (list string)) "only overlapping updates" [ "u1" ]
    (List.map (fun u -> u.Query_class.id) (Workload.updates_of w q));
  Alcotest.(check (float 1e-9)) "update weight" 0.1
    (Workload.update_weight_of w q)

let test_workload_normalize () =
  let w =
    Workload.make
      ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:3. ]
      ~updates:[ Query_class.update "u" [ fr "a" ] ~weight:1. ]
  in
  let n = Workload.normalize w in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (Workload.total_weight n);
  Alcotest.(check (float 1e-9)) "ratio preserved" 0.75
    (Option.get (Workload.find n "q")).Query_class.weight

let test_workload_validate () =
  let ok =
    Workload.make
      ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:1. ]
      ~updates:[]
  in
  (match Workload.validate ok with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid workload rejected: %s" e);
  let dup =
    Workload.make
      ~reads:
        [
          Query_class.read "q" [ fr "a" ] ~weight:0.5;
          Query_class.read "q" [ fr "b" ] ~weight:0.5;
        ]
      ~updates:[]
  in
  (match Workload.validate dup with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate ids accepted");
  let bad_sum =
    Workload.make
      ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:0.4 ]
      ~updates:[]
  in
  match Workload.validate bad_sum with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "weights not summing to 1 accepted"

(* ---------------- journal ---------------- *)

let test_journal_multiset () =
  let j = Journal.create () in
  Journal.record j ~sql:"SELECT a FROM t" ~cost:1.;
  Journal.record j ~sql:"SELECT a FROM t" ~cost:2.;
  Journal.record j ~sql:"SELECT b FROM t" ~cost:3.;
  Alcotest.(check int) "length" 3 (Journal.length j);
  Alcotest.(check (float 1e-9)) "total cost" 6. (Journal.total_cost j);
  Alcotest.(check (list (pair string int)))
    "occurrences"
    [ ("SELECT a FROM t", 2); ("SELECT b FROM t", 1) ]
    (Journal.occurrences j)

let test_journal_between () =
  let j = Journal.create () in
  List.iter
    (fun at -> Journal.record_at j ~at ~sql:"q" ~cost:1.)
    [ 0.; 10.; 20.; 30. ];
  Alcotest.(check int) "window" 2 (Journal.length (Journal.between j ~lo:10. ~hi:30.))

(* ---------------- classification ---------------- *)

let schema : Cdbs_storage.Schema.t =
  [
    Cdbs_storage.Schema.table "t"
      [ ("a", Cdbs_storage.Schema.T_int); ("b", Cdbs_storage.Schema.T_int) ];
    Cdbs_storage.Schema.table "u" [ ("c", Cdbs_storage.Schema.T_int) ];
  ]

let size_of _ = 1.

let journal_of stmts =
  let j = Journal.create () in
  List.iter (fun (sql, cost) -> Journal.record j ~sql ~cost) stmts;
  j

let test_classify_by_table () =
  let j =
    journal_of
      [
        ("SELECT a FROM t", 2.);
        ("SELECT b FROM t", 2.);
        ("SELECT c FROM u", 1.);
        ("UPDATE u SET c = 1", 1.);
      ]
  in
  let w = Classification.classify ~schema ~size_of Classification.By_table j in
  Alcotest.(check int) "read classes" 2 (List.length w.Workload.reads);
  Alcotest.(check int) "update classes" 1 (List.length w.Workload.updates);
  Alcotest.(check (float 1e-9)) "normalized" 1. (Workload.total_weight w);
  (* The t-class has 4 of 6 cost units. *)
  let heaviest = List.hd w.Workload.reads in
  Alcotest.(check (float 1e-9))
    "heaviest weight"
    (4. /. 6.)
    heaviest.Query_class.weight

let test_classify_by_column () =
  let j =
    journal_of
      [ ("SELECT a FROM t", 1.); ("SELECT b FROM t", 1.) ]
  in
  let w =
    Classification.classify ~schema ~size_of Classification.By_column j
  in
  (* Different column sets -> different classes. *)
  Alcotest.(check int) "two classes" 2 (List.length w.Workload.reads)

let test_classify_single () =
  let j =
    journal_of [ ("SELECT a FROM t", 1.); ("SELECT c FROM u", 1.) ]
  in
  let w = Classification.classify ~schema ~size_of Classification.Single j in
  Alcotest.(check int) "one class" 1 (List.length w.Workload.reads);
  let c = List.hd w.Workload.reads in
  Alcotest.(check int) "all tables" 2
    (Fragment.Set.cardinal c.Query_class.fragments)

let test_classify_by_predicate () =
  let j =
    journal_of
      [
        ("SELECT a FROM t WHERE a <= 49", 1.);
        ("SELECT a FROM t WHERE a >= 50", 1.);
        ("SELECT a FROM t", 1.);
      ]
  in
  let w =
    Classification.classify ~schema ~size_of
      (Classification.By_predicate [ ("t", "a", [ 50. ]) ])
      j
  in
  (* Three distinct footprints: below, above, both ranges.  (Interval
     bounds are conservative about open endpoints, so the below-query uses
     "<= 49" to stay clear of the 50 boundary.) *)
  Alcotest.(check int) "three classes" 3 (List.length w.Workload.reads);
  let sizes =
    List.sort compare
      (List.map
         (fun c -> Fragment.Set.cardinal c.Query_class.fragments)
         w.Workload.reads)
  in
  Alcotest.(check (list int)) "fragment counts" [ 1; 1; 2 ] sizes

let test_classify_skips_garbage () =
  let j = journal_of [ ("SELECT a FROM t", 1.); ("NOT SQL", 5.) ] in
  let w = Classification.classify ~schema ~size_of Classification.By_table j in
  Alcotest.(check int) "garbage skipped" 1 (List.length w.Workload.reads)

let test_default_sizes () =
  let rows = [ ("t", 1_048_576) ] in
  let size = Classification.default_sizes ~schema ~rows in
  (* t has two int columns of 8 bytes: 16 MB total at 2^20 rows. *)
  Alcotest.(check (float 1e-6)) "table size" 16. (size (Fragment.Table "t"));
  Alcotest.(check (float 1e-6)) "column size" 8.
    (size (Fragment.Column { table = "t"; column = "a" }));
  Alcotest.(check (float 1e-6)) "unknown table" 0.
    (size (Fragment.Table "nope"))

let test_journal_file_roundtrip () =
  let j = Journal.create () in
  Journal.record_at j ~at:1. ~sql:"SELECT a FROM t" ~cost:2.5;
  Journal.record_at j ~at:2. ~sql:"SELECT b FROM t WHERE x LIKE 'a|b'" ~cost:0.5;
  let path = Filename.temp_file "cdbs" ".journal" in
  Journal.save_file j path;
  (match Journal.load_file path with
  | Error e -> Alcotest.fail e
  | Ok j' ->
      Alcotest.(check int) "length" 2 (Journal.length j');
      let e = List.nth (Journal.entries j') 1 in
      (* The '|' inside the SQL must survive the separator. *)
      Alcotest.(check string) "sql with pipe"
        "SELECT b FROM t WHERE x LIKE 'a|b'" e.Journal.sql;
      Alcotest.(check (float 1e-6)) "cost" 0.5 e.Journal.cost;
      Alcotest.(check (float 1e-6)) "at" 2. e.Journal.at);
  Sys.remove path

let test_journal_file_tolerant () =
  let path = Filename.temp_file "cdbs" ".journal" in
  let oc = open_out path in
  output_string oc
    "# comment\n\nSELECT bare FROM t\n2.5|SELECT with_cost FROM t\n";
  close_out oc;
  (match Journal.load_file path with
  | Error e -> Alcotest.fail e
  | Ok j ->
      Alcotest.(check int) "two entries" 2 (Journal.length j);
      Alcotest.(check (float 1e-9)) "default cost" 1.
        (List.hd (Journal.entries j)).Journal.cost);
  Sys.remove path

(* Property: classification weights always sum to 1 and every class is
   non-empty, for arbitrary journals over the schema. *)
let prop_classification_normalized =
  let stmt_gen =
    QCheck.Gen.(
      oneofl
        [
          "SELECT a FROM t"; "SELECT b FROM t"; "SELECT a, b FROM t";
          "SELECT c FROM u"; "UPDATE t SET a = 1"; "UPDATE u SET c = 2";
          "SELECT a FROM t JOIN u ON a = c";
        ])
  in
  QCheck.Test.make ~count:100 ~name:"classification is a valid workload"
    QCheck.(make Gen.(list_size (int_range 1 50) (pair stmt_gen (float_range 0.1 10.))))
    (fun stmts ->
      let w =
        Classification.classify ~schema ~size_of Classification.By_table
          (journal_of stmts)
      in
      match Workload.validate w with Ok () -> true | Error _ -> false)

let suite =
  [
    Alcotest.test_case "fragment: identity" `Quick test_fragment_identity;
    Alcotest.test_case "fragment: names" `Quick test_fragment_names;
    Alcotest.test_case "fragment: set size" `Quick test_set_size;
    Alcotest.test_case "class: overlap" `Quick test_class_overlap;
    Alcotest.test_case "workload: updates_of" `Quick test_updates_of;
    Alcotest.test_case "workload: normalize" `Quick test_workload_normalize;
    Alcotest.test_case "workload: validate" `Quick test_workload_validate;
    Alcotest.test_case "journal: multiset" `Quick test_journal_multiset;
    Alcotest.test_case "journal: time window" `Quick test_journal_between;
    Alcotest.test_case "journal: file round trip" `Quick
      test_journal_file_roundtrip;
    Alcotest.test_case "journal: tolerant file parsing" `Quick
      test_journal_file_tolerant;
    Alcotest.test_case "classify: by table" `Quick test_classify_by_table;
    Alcotest.test_case "classify: by column" `Quick test_classify_by_column;
    Alcotest.test_case "classify: single class" `Quick test_classify_single;
    Alcotest.test_case "classify: by predicate" `Quick
      test_classify_by_predicate;
    Alcotest.test_case "classify: skips unparsable" `Quick
      test_classify_skips_garbage;
    Alcotest.test_case "classify: default sizes" `Quick test_default_sizes;
    QCheck_alcotest.to_alcotest prop_classification_normalized;
  ]
