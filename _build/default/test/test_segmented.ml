(* Time-segmented allocation (Sec. 5) and the memetic local searches. *)

open Cdbs_core

let fr ?(size = 1.) name = Fragment.table name ~size

(* A journal whose mix flips halfway through the "day". *)
let flipping_journal () =
  let j = Journal.create () in
  for i = 0 to 99 do
    let at = float_of_int i *. 60. in
    if i < 50 then Journal.record_at j ~at ~sql:"SELECT x FROM night" ~cost:2.
    else Journal.record_at j ~at ~sql:"SELECT y FROM day" ~cost:2.;
    (* A constant background class. *)
    Journal.record_at j ~at ~sql:"SELECT z FROM base" ~cost:0.5
  done;
  j

let schema : Cdbs_storage.Schema.t =
  [
    Cdbs_storage.Schema.table "night" [ ("x", Cdbs_storage.Schema.T_int) ];
    Cdbs_storage.Schema.table "day" [ ("y", Cdbs_storage.Schema.T_int) ];
    Cdbs_storage.Schema.table "base" [ ("z", Cdbs_storage.Schema.T_int) ];
  ]

let classify j =
  Workload.normalize
    (Classification.classify ~schema ~size_of:(fun _ -> 1.)
       Classification.By_table j)

let test_segmentation_finds_flip () =
  let segments =
    Segmented.segment_journal ~window:600. ~threshold:0.4 (flipping_journal ())
  in
  Alcotest.(check int) "two segments" 2 (List.length segments);
  match segments with
  | [ s1; s2 ] ->
      (* The flip happens at entry 50 = 3000 s. *)
      Alcotest.(check bool) "boundary near 3000s" true
        (abs_float (s1.Segmented.end_time -. 3000.) <= 600.);
      Alcotest.(check bool) "contiguous" true
        (s1.Segmented.end_time = s2.Segmented.start_time)
  | _ -> Alcotest.fail "expected exactly two segments"

let test_segmentation_stable_journal () =
  let j = Journal.create () in
  for i = 0 to 99 do
    Journal.record_at j ~at:(float_of_int i *. 60.) ~sql:"SELECT z FROM base"
      ~cost:1.
  done;
  let segments = Segmented.segment_journal ~window:600. ~threshold:0.4 j in
  Alcotest.(check int) "one segment" 1 (List.length segments)

let test_segmented_allocation_serves_both_phases () =
  let allocate w = Greedy.allocate w (Backend.homogeneous 3) in
  let merged, segments =
    Segmented.allocate_segmented ~classify ~allocate ~window:600.
      ~threshold:0.4 (flipping_journal ())
  in
  Alcotest.(check int) "two segments" 2 (List.length segments);
  Alcotest.(check bool) "valid" true (Allocation.validate merged = Ok ());
  (* The merged placement holds every table some segment needed. *)
  let all = Workload.fragments (Allocation.workload merged) in
  let stored =
    List.fold_left
      (fun acc b -> Fragment.Set.union acc (Allocation.fragments_of merged b))
      Fragment.Set.empty
      (List.init 3 (fun b -> b))
  in
  Alcotest.(check bool) "covers all fragments" true
    (Fragment.Set.subset all stored)

let test_merge_balances () =
  let w =
    Workload.make
      ~reads:
        [
          Query_class.read "q1" [ fr "a" ] ~weight:0.5;
          Query_class.read "q2" [ fr "b" ] ~weight:0.5;
        ]
      ~updates:[]
  in
  let a1 = Greedy.allocate w (Backend.homogeneous 2) in
  let a2 = Greedy.allocate w (Backend.homogeneous 2) in
  let merged = Segmented.merge [ a1; a2 ] in
  Alcotest.(check bool) "valid" true (Allocation.validate merged = Ok ());
  Alcotest.(check bool) "balanced" true (Balance.deviation merged < 0.05)

(* ---------------- memetic local search ---------------- *)

let test_local_search_improves_bad_allocation () =
  (* Start from a deliberately bad allocation: everything on one backend of
     two.  Local search plus mutation must strictly improve it. *)
  let w =
    Workload.normalize
      (Workload.make
         ~reads:
           [
             Query_class.read "q1" [ fr "a" ] ~weight:0.5;
             Query_class.read "q2" [ fr "b" ] ~weight:0.5;
           ]
         ~updates:[])
  in
  let bad = Allocation.create w (Backend.homogeneous 2) in
  List.iter
    (fun c ->
      Allocation.add_fragments bad 0 c.Query_class.fragments;
      Allocation.set_assign bad 0 c c.Query_class.weight)
    w.Workload.reads;
  Alcotest.(check (float 1e-9)) "bad scale" 2. (Allocation.scale bad);
  let improved =
    Memetic.improve
      ~params:{ Memetic.default_params with Memetic.iterations = 25 }
      ~rng:(Cdbs_util.Rng.create 5) bad
  in
  Alcotest.(check (float 1e-6)) "balanced after improvement" 1.
    (Allocation.scale improved)

let test_local_search_drops_replicated_update () =
  (* Two read classes both split across two backends with different update
     sets: strategy 1 consolidates and removes update replication. *)
  let w =
    Workload.normalize
      (Workload.make
         ~reads:
           [
             Query_class.read "q1" [ fr "a" ] ~weight:0.4;
             Query_class.read "q2" [ fr "b" ] ~weight:0.4;
           ]
         ~updates:
           [
             Query_class.update "u1" [ fr "a" ] ~weight:0.1;
             Query_class.update "u2" [ fr "b" ] ~weight:0.1;
           ])
  in
  let alloc = Allocation.create w (Backend.homogeneous 2) in
  (* Both classes split 50/50 across both backends: both updates pinned on
     both nodes. *)
  List.iter
    (fun c ->
      for b = 0 to 1 do
        Allocation.add_fragments alloc b c.Query_class.fragments;
        Allocation.set_assign alloc b c (c.Query_class.weight /. 2.)
      done)
    w.Workload.reads;
  Allocation.ensure_update_closure alloc;
  let before = Allocation.scale alloc in
  let changed = Memetic.local_search alloc in
  Alcotest.(check bool) "improved" true changed;
  Alcotest.(check bool) "scale reduced" true (Allocation.scale alloc < before);
  Alcotest.(check bool) "valid" true (Allocation.validate alloc = Ok ())

let test_optimal_coarsen_preserves_problem () =
  let w =
    Workload.normalize
      (Workload.make
         ~reads:
           [
             (* a and b always co-accessed: they merge into one compound
                fragment. *)
             Query_class.read "q1" [ fr "a"; fr "b" ] ~weight:0.6;
             Query_class.read "q2" [ fr "a"; fr "b"; fr "c" ] ~weight:0.4;
           ]
         ~updates:[])
  in
  let coarse = Optimal.coarsen w in
  Alcotest.(check int) "two compound fragments" 2
    (Fragment.Set.cardinal (Workload.fragments coarse));
  Alcotest.(check (float 1e-9)) "total size preserved"
    (Fragment.set_size (Workload.fragments w))
    (Fragment.set_size (Workload.fragments coarse));
  (* Optima agree on the 2-backend instance. *)
  match
    ( Optimal.allocate w (Backend.homogeneous 2),
      Optimal.allocate coarse (Backend.homogeneous 2) )
  with
  | Ok r1, Ok r2 ->
      Alcotest.(check (float 1e-6)) "same scale" r1.Optimal.scale r2.Optimal.scale;
      Alcotest.(check (float 1e-6)) "same space" r1.Optimal.space r2.Optimal.space
  | _ -> Alcotest.fail "optimal failed"

let suite =
  [
    Alcotest.test_case "segmentation finds the flip" `Quick
      test_segmentation_finds_flip;
    Alcotest.test_case "stable journal stays whole" `Quick
      test_segmentation_stable_journal;
    Alcotest.test_case "segmented allocation covers all phases" `Quick
      test_segmented_allocation_serves_both_phases;
    Alcotest.test_case "merge balances" `Quick test_merge_balances;
    Alcotest.test_case "memetic improves a bad allocation" `Quick
      test_local_search_improves_bad_allocation;
    Alcotest.test_case "local search drops replicated updates" `Quick
      test_local_search_drops_replicated_update;
    Alcotest.test_case "coarsen preserves the MIP" `Quick
      test_optimal_coarsen_preserves_problem;
  ]
