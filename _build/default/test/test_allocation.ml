(* Allocation structure and algorithm invariants, including property-based
   tests over random workloads and clusters. *)

open Cdbs_core

let fr ?(size = 1.) name = Fragment.table name ~size

let simple_workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "q1" [ fr "a" ] ~weight:0.5;
        Query_class.read "q2" [ fr "b" ] ~weight:0.3;
      ]
    ~updates:[ Query_class.update "u1" [ fr "a"; fr "b" ] ~weight:0.2 ]

(* ---------------- structure ---------------- *)

let test_assign_requires_fragments () =
  let w = simple_workload () in
  let alloc = Allocation.create w (Backend.homogeneous 2) in
  let q1 = Option.get (Workload.find w "q1") in
  Allocation.set_assign alloc 0 q1 0.5;
  match Allocation.validate alloc with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "assignment without data accepted"

let test_update_closure () =
  let w = simple_workload () in
  let alloc = Allocation.create w (Backend.homogeneous 2) in
  let q1 = Option.get (Workload.find w "q1") in
  let u1 = Option.get (Workload.find w "u1") in
  (* Placing only fragment a on B1 must pull in u1 entirely (and with it
     fragment b). *)
  Allocation.add_fragments alloc 0 q1.Query_class.fragments;
  Allocation.ensure_update_closure alloc;
  Alcotest.(check (float 1e-9)) "u1 pinned" 0.2 (Allocation.get_assign alloc 0 u1);
  Alcotest.(check bool) "b present too" true (Allocation.holds alloc 0 u1)

let test_scale_and_speedup () =
  let w = simple_workload () in
  let alloc = Greedy.allocate w (Backend.homogeneous 2) in
  let s = Allocation.scale alloc in
  Alcotest.(check bool) "scale >= 1" true (s >= 1.);
  Alcotest.(check (float 1e-9)) "speedup consistent"
    (2. /. s) (Allocation.speedup alloc)

let test_update_weight_eq13 () =
  let w = simple_workload () in
  let alloc = Greedy.allocate w (Backend.homogeneous 1) in
  let q1 = Option.get (Workload.find w "q1") in
  (* One backend: u1 is pinned there, so updateWeight(B1, q1) = 0.2. *)
  Alcotest.(check (float 1e-9)) "Eq. 13" 0.2 (Allocation.update_weight alloc 0 q1)

let test_prune_drops_unused () =
  let w = simple_workload () in
  let alloc = Greedy.allocate w (Backend.homogeneous 2) in
  (* Plant an unused fragment; prune must remove it. *)
  Allocation.add_fragments alloc 1 (Fragment.Set.singleton (fr "z"));
  Allocation.prune alloc;
  Alcotest.(check bool) "z dropped" false
    (Fragment.Set.mem (fr "z") (Allocation.fragments_of alloc 1));
  match Allocation.validate alloc with
  | Ok () -> ()
  | Error es -> Alcotest.failf "prune broke validity: %s" (String.concat "; " es)

let test_prune_keeps_update_home () =
  (* An update class with no read overlap must survive pruning somewhere. *)
  let w =
    Workload.make
      ~reads:[ Query_class.read "q" [ fr "a" ] ~weight:0.9 ]
      ~updates:[ Query_class.update "u" [ fr "x" ] ~weight:0.1 ]
  in
  let alloc = Greedy.allocate w (Backend.homogeneous 3) in
  Allocation.prune alloc;
  let total = ref 0. in
  let u = Option.get (Workload.find w "u") in
  for b = 0 to 2 do
    total := !total +. Allocation.get_assign alloc b u
  done;
  Alcotest.(check (float 1e-9)) "u still allocated once" 0.1 !total

let test_blit_and_copy_independent () =
  let w = simple_workload () in
  let a1 = Greedy.allocate w (Backend.homogeneous 2) in
  let a2 = Allocation.copy a1 in
  let q1 = Option.get (Workload.find w "q1") in
  Allocation.set_assign a2 0 q1 0.;
  Alcotest.(check bool) "copy is independent" true
    (Allocation.get_assign a1 0 q1 <> Allocation.get_assign a2 0 q1);
  Allocation.blit ~src:a1 ~dst:a2;
  Alcotest.(check (float 1e-9)) "blit restores" (Allocation.get_assign a1 0 q1)
    (Allocation.get_assign a2 0 q1)

(* ---------------- replication / balance ---------------- *)

let test_degree_full_replication () =
  let w = simple_workload () in
  let alloc = Baselines.full_replication w (Backend.homogeneous 4) in
  Alcotest.(check (float 1e-9)) "degree n" 4. (Replication.degree alloc);
  Alcotest.(check int) "every fragment 4x" 4 (Replication.min_replicas alloc)

let test_histogram () =
  let w = simple_workload () in
  let alloc = Baselines.full_replication w (Backend.homogeneous 3) in
  let h = Replication.histogram alloc ~max_replicas:3 in
  Alcotest.(check (array int)) "all at 3" [| 0; 0; 2 |] h

let test_balance_full_replication () =
  let w = simple_workload () in
  let alloc = Baselines.full_replication w (Backend.homogeneous 4) in
  (* Updates pinned everywhere create equal overload: perfectly balanced. *)
  Alcotest.(check (float 1e-9)) "balanced" 0. (Balance.deviation alloc)

(* ---------------- greedy properties ---------------- *)

let prop_greedy_valid =
  QCheck.Test.make ~count:300 ~name:"greedy allocations are always valid"
    Gen.scenario_arbitrary (fun (w, backends) ->
      match Allocation.validate (Greedy.allocate w backends) with
      | Ok () -> true
      | Error _ -> false)

let homogeneous backends =
  match backends with
  | [] -> true
  | b :: rest ->
      List.for_all
        (fun b' -> abs_float (b'.Backend.load -. b.Backend.load) < 1e-9)
        rest

let prop_greedy_scale_bounds =
  (* Eq. 17 is stated for homogeneous clusters; with heterogeneous
     capacities a heavy update class on a fast node evades the bound. *)
  QCheck.Test.make ~count:300
    ~name:"greedy scale is >= 1 and speedup respects Eq. 17 (homogeneous)"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let alloc = Greedy.allocate w backends in
      let nodes = List.length backends in
      Allocation.scale alloc >= 1. -. 1e-9
      && ((not (homogeneous backends))
         || Allocation.speedup alloc
            <= Speedup.max_speedup_bound w ~nodes +. 1e-6))

let prop_memetic_never_worse_than_seed =
  (* Guaranteed by construction: the seed stays in the candidate set. *)
  QCheck.Test.make ~count:60 ~name:"memetic is never worse than its seed"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let seed = Greedy.allocate w backends in
      let params =
        { Memetic.default_params with Memetic.iterations = 8; population = 5 }
      in
      let improved =
        Memetic.improve ~params ~rng:(Cdbs_util.Rng.create 17)
          (Allocation.copy seed)
      in
      let s_seed = Memetic.cost seed and s_impr = Memetic.cost improved in
      (match Allocation.validate improved with Ok () -> true | Error _ -> false)
      && (fst s_impr < fst s_seed +. 1e-9
         || (abs_float (fst s_impr -. fst s_seed) <= 1e-9
            && snd s_impr <= snd s_seed +. 1e-6)))

let prop_greedy_stores_less =
  QCheck.Test.make ~count:200
    ~name:"greedy never stores more than full replication"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let greedy = Greedy.allocate w backends in
      let full = Baselines.full_replication w backends in
      Allocation.total_stored greedy <= Allocation.total_stored full +. 1e-6)

let prop_readonly_scale_is_one =
  QCheck.Test.make ~count:200 ~name:"read-only greedy reaches scale 1"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let readonly = Workload.normalize { w with Workload.updates = [] } in
      if readonly.Workload.reads = [] then true
      else
        let alloc = Greedy.allocate readonly backends in
        abs_float (Allocation.scale alloc -. 1.) < 1e-6)

let prop_full_replication_valid =
  QCheck.Test.make ~count:200 ~name:"full replication is always valid"
    Gen.scenario_arbitrary (fun (w, backends) ->
      match Allocation.validate (Baselines.full_replication w backends) with
      | Ok () -> true
      | Error _ -> false)

let prop_random_placement_valid =
  QCheck.Test.make ~count:200 ~name:"random placement is always valid"
    Gen.scenario_arbitrary (fun (w, backends) ->
      let rng = Cdbs_util.Rng.create 9 in
      match
        Allocation.validate (Baselines.random_placement ~rng w backends)
      with
      | Ok () -> true
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "assign requires fragments" `Quick
      test_assign_requires_fragments;
    Alcotest.test_case "update closure (Eq. 10)" `Quick test_update_closure;
    Alcotest.test_case "scale and speedup (Eqs. 15, 19)" `Quick
      test_scale_and_speedup;
    Alcotest.test_case "updateWeight (Eq. 13)" `Quick test_update_weight_eq13;
    Alcotest.test_case "prune drops unused data" `Quick test_prune_drops_unused;
    Alcotest.test_case "prune keeps update home (Eq. 11)" `Quick
      test_prune_keeps_update_home;
    Alcotest.test_case "copy/blit independence" `Quick
      test_blit_and_copy_independent;
    Alcotest.test_case "degree of replication (Eq. 28)" `Quick
      test_degree_full_replication;
    Alcotest.test_case "replication histogram" `Quick test_histogram;
    Alcotest.test_case "balance of full replication" `Quick
      test_balance_full_replication;
    QCheck_alcotest.to_alcotest prop_greedy_valid;
    QCheck_alcotest.to_alcotest prop_greedy_scale_bounds;
    QCheck_alcotest.to_alcotest prop_memetic_never_worse_than_seed;
    QCheck_alcotest.to_alcotest prop_greedy_stores_less;
    QCheck_alcotest.to_alcotest prop_readonly_scale_is_one;
    QCheck_alcotest.to_alcotest prop_full_replication_valid;
    QCheck_alcotest.to_alcotest prop_random_placement_valid;
  ]
