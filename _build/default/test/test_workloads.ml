(* Workload generator tests: TPC-H, TPC-App, the e-learning trace, and the
   request-spec plumbing. *)

open Cdbs_core
module Tpch = Cdbs_workloads.Tpch
module Tpcapp = Cdbs_workloads.Tpcapp
module Trace = Cdbs_workloads.Trace
module Spec = Cdbs_workloads.Spec
module Request = Cdbs_cluster.Request

(* ---------------- spec plumbing ---------------- *)

let specs =
  [
    Spec.read "r1" [ ("t", [ "a" ]) ] ~weight:0.6 ~request_mb:2.;
    Spec.read "r2" [ ("t", [ "b" ]) ] ~weight:0.2 ~request_mb:0.5;
    Spec.update "u1" [ ("t", []) ] ~weight:0.2 ~request_mb:0.1;
  ]

let test_class_counts_weighted () =
  let counts = Spec.class_counts ~n:1000 specs in
  (* count_i ∝ weight/mb: r1 0.3, r2 0.4, u1 2.0 -> of 2.7. *)
  let get id = Option.value ~default:0 (List.assoc_opt id counts) in
  Alcotest.(check int) "total" 1000 (get "r1" + get "r2" + get "u1");
  Alcotest.(check int) "r1" 111 (get "r1");
  Alcotest.(check int) "r2" 148 (get "r2");
  Alcotest.(check int) "u1" 741 (get "u1")

let test_requests_carry_cost () =
  let rng = Cdbs_util.Rng.create 1 in
  let reqs = Spec.requests ~rng ~n:100 specs in
  Alcotest.(check int) "100 requests" 100 (List.length reqs);
  List.iter
    (fun (r : Request.t) ->
      match r.Request.cost_mb with
      | Some _ -> ()
      | None -> Alcotest.fail "request without cost override")
    reqs

let test_spec_to_workload_valid () =
  let schema =
    [ Cdbs_storage.Schema.table "t"
        [ ("a", Cdbs_storage.Schema.T_int); ("b", Cdbs_storage.Schema.T_int) ] ]
  in
  let w =
    Spec.to_workload ~schema ~rows:[ ("t", 1000) ] ~granularity:`Column specs
  in
  Alcotest.(check bool) "valid" true (Workload.validate w = Ok ());
  (* The update spec with [] columns covers the whole table. *)
  let u = Option.get (Workload.find w "u1") in
  Alcotest.(check int) "u1 has both columns" 2
    (Fragment.Set.cardinal u.Query_class.fragments)

(* ---------------- TPC-H ---------------- *)

let test_tpch_workload_valid () =
  List.iter
    (fun granularity ->
      let w = Tpch.workload ~granularity ~sf:1. in
      Alcotest.(check bool) "valid" true (Workload.validate w = Ok ());
      Alcotest.(check int) "19 classes" 19 (List.length w.Workload.reads);
      Alcotest.(check int) "read-only" 0 (List.length w.Workload.updates))
    [ `Table; `Column ]

let test_tpch_fact_tables_dominate () =
  (* The paper: lineitem and orders hold over 80% of the data. *)
  let size_of =
    Classification.default_sizes ~schema:Tpch.schema
      ~rows:(Tpch.row_counts ~sf:1.)
  in
  let total = Tpch.database_mb ~sf:1. in
  let facts =
    size_of (Fragment.Table "lineitem") +. size_of (Fragment.Table "orders")
  in
  Alcotest.(check bool) "fact tables > 80%" true (facts /. total > 0.8)

let test_tpch_scaling () =
  Alcotest.(check bool) "SF10 is 10x SF1" true
    (Tpch.database_mb ~sf:10. /. Tpch.database_mb ~sf:1. > 9.5)

let test_tpch_column_footprints_within_schema () =
  let w = Tpch.workload ~granularity:`Column ~sf:1. in
  let cols = Cdbs_storage.Schema.to_assoc Tpch.schema in
  Fragment.Set.iter
    (fun f ->
      match f.Fragment.kind with
      | Fragment.Column { table; column } ->
          let known = Option.value ~default:[] (List.assoc_opt table cols) in
          if not (List.mem column known) then
            Alcotest.failf "query references unknown column %s.%s" table column
      | _ -> Alcotest.fail "expected column fragments")
    (Workload.fragments w)

(* ---------------- TPC-App ---------------- *)

let test_tpcapp_class_counts () =
  let table = Tpcapp.workload ~granularity:`Table ~eb:300 in
  let column = Tpcapp.workload ~granularity:`Column ~eb:300 in
  Alcotest.(check int) "8 table classes" 8
    (List.length (Workload.all_classes table));
  Alcotest.(check int) "10 column classes" 10
    (List.length (Workload.all_classes column))

let test_tpcapp_update_share () =
  let w = Tpcapp.workload ~granularity:`Table ~eb:300 in
  let updates =
    List.fold_left
      (fun acc u -> acc +. u.Query_class.weight)
      0. w.Workload.updates
  in
  Alcotest.(check (float 1e-6)) "25% updates" Tpcapp.update_weight updates

let test_tpcapp_request_mix () =
  (* Roughly 1 read to 7 writes by count; the heavy class is ~1.5% of the
     requests. *)
  let rng = Cdbs_util.Rng.create 4 in
  let reqs = Tpcapp.requests ~rng ~granularity:`Table ~eb:300 ~n:10_000 in
  let updates =
    List.length (List.filter (fun r -> r.Request.is_update) reqs)
  in
  let ratio = float_of_int updates /. float_of_int (10_000 - updates) in
  Alcotest.(check bool) "write-heavy mix" true (ratio > 4. && ratio < 10.);
  let heavy =
    List.length
      (List.filter (fun r -> r.Request.class_id = "R_catalog_search") reqs)
  in
  let share = float_of_int heavy /. 10_000. in
  Alcotest.(check bool) "heavy class ~1.5% of requests" true
    (share > 0.005 && share < 0.03)

let test_tpcapp_database_sizes () =
  Alcotest.(check bool) "EB300 near 280MB" true
    (abs_float (Tpcapp.database_mb ~eb:300 -. 280.) < 80.);
  Alcotest.(check bool) "EB12000 near 8GB" true
    (abs_float (Tpcapp.database_mb ~eb:12_000 -. 8192.) < 1500.)

let test_tpcapp_updated_tables_are_queried_tables () =
  (* Paper: all queried tables are also updated (column classes then span
     whole tables). *)
  let w = Tpcapp.workload ~granularity:`Table ~eb:300 in
  let tables_of cs =
    List.fold_left
      (fun acc c ->
        Fragment.Set.fold
          (fun f acc ->
            match f.Fragment.kind with
            | Fragment.Table t -> t :: acc
            | _ -> acc)
          c.Query_class.fragments acc)
      [] cs
    |> List.sort_uniq String.compare
  in
  let queried = tables_of w.Workload.reads in
  let updated = tables_of w.Workload.updates in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " updated") true (List.mem t updated))
    queried

(* ---------------- trace ---------------- *)

let test_trace_rate_profile () =
  (* Night trough vs evening peak. *)
  Alcotest.(check bool) "4am low" true (Trace.rate_per_10min ~hour:4. < 400.);
  Alcotest.(check bool) "8pm peak" true
    (Trace.rate_per_10min ~hour:20. > 4000.);
  (* Continuity at the day boundary. *)
  Alcotest.(check (float 1.)) "wraps"
    (Trace.rate_per_10min ~hour:0.)
    (Trace.rate_per_10min ~hour:24.)

let test_trace_mix_night_b () =
  let share h id =
    Option.value ~default:0. (List.assoc_opt id (Trace.class_mix ~hour:h))
  in
  Alcotest.(check bool) "B dominates at 5am" true (share 5. "B" > 0.5);
  Alcotest.(check bool) "B small at noon" true (share 12. "B" < 0.15);
  (* Mix always sums to 1. *)
  for h = 0 to 23 do
    let total =
      List.fold_left
        (fun acc (_, s) -> acc +. s)
        0.
        (Trace.class_mix ~hour:(float_of_int h))
    in
    Alcotest.(check (float 1e-9)) "mix sums to 1" 1. total
  done

let test_trace_day_requests_sorted () =
  let rng = Cdbs_util.Rng.create 2 in
  let reqs = Trace.requests_for_day ~rng ~scale:0.02 ~step_minutes:60. in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Request.arrival <= b.Request.arrival && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by arrival" true (sorted reqs);
  Alcotest.(check bool) "non-empty" true (List.length reqs > 100)

let test_trace_journal_classifies () =
  let journal = Trace.journal_for_day ~rng:(Cdbs_util.Rng.create 2) ~scale:1. in
  let size_of =
    Classification.default_sizes ~schema:Trace.schema ~rows:Trace.row_counts
  in
  let w =
    Workload.normalize
      (Classification.classify ~schema:Trace.schema ~size_of
         Classification.By_table journal)
  in
  Alcotest.(check bool) "valid workload" true (Workload.validate w = Ok ());
  Alcotest.(check bool) "several classes" true
    (List.length (Workload.all_classes w) >= 5)

let suite =
  [
    Alcotest.test_case "spec: class counts" `Quick test_class_counts_weighted;
    Alcotest.test_case "spec: requests carry cost" `Quick
      test_requests_carry_cost;
    Alcotest.test_case "spec: to_workload" `Quick test_spec_to_workload_valid;
    Alcotest.test_case "tpch: workload valid" `Quick test_tpch_workload_valid;
    Alcotest.test_case "tpch: fact tables dominate" `Quick
      test_tpch_fact_tables_dominate;
    Alcotest.test_case "tpch: scale factor" `Quick test_tpch_scaling;
    Alcotest.test_case "tpch: footprints within schema" `Quick
      test_tpch_column_footprints_within_schema;
    Alcotest.test_case "tpcapp: class counts (8/10)" `Quick
      test_tpcapp_class_counts;
    Alcotest.test_case "tpcapp: 25% update weight" `Quick
      test_tpcapp_update_share;
    Alcotest.test_case "tpcapp: request mix" `Quick test_tpcapp_request_mix;
    Alcotest.test_case "tpcapp: database sizes" `Quick
      test_tpcapp_database_sizes;
    Alcotest.test_case "tpcapp: queried tables updated" `Quick
      test_tpcapp_updated_tables_are_queried_tables;
    Alcotest.test_case "trace: rate profile" `Quick test_trace_rate_profile;
    Alcotest.test_case "trace: class mix" `Quick test_trace_mix_night_b;
    Alcotest.test_case "trace: day request stream" `Quick
      test_trace_day_requests_sorted;
    Alcotest.test_case "trace: journal classifies" `Quick
      test_trace_journal_classifies;
  ]
