(* The worked examples of the paper: the Section 3 read-only allocation on
   1/2/4 backends and the Appendix A heterogeneous update-aware trace. *)

open Cdbs_core

let fr name = Fragment.table name ~size:1.

(* Section 3, Figure 2: relations A, B, C; classes C1..C4. *)
let readonly_workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "C1" [ fr "A" ] ~weight:0.30;
        Query_class.read "C2" [ fr "B" ] ~weight:0.25;
        Query_class.read "C3" [ fr "C" ] ~weight:0.25;
        Query_class.read "C4" [ fr "A"; fr "B" ] ~weight:0.20;
      ]
    ~updates:[]

(* Appendix A: 4 reads, 3 updates, heterogeneous backends .3/.3/.2/.2. *)
let appendix_workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "Q1" [ fr "A" ] ~weight:0.24;
        Query_class.read "Q2" [ fr "B" ] ~weight:0.20;
        Query_class.read "Q3" [ fr "C" ] ~weight:0.20;
        Query_class.read "Q4" [ fr "A"; fr "B" ] ~weight:0.16;
      ]
    ~updates:
      [
        Query_class.update "U1" [ fr "A" ] ~weight:0.04;
        Query_class.update "U2" [ fr "B" ] ~weight:0.10;
        Query_class.update "U3" [ fr "C" ] ~weight:0.06;
      ]

let check_valid alloc =
  match Allocation.validate alloc with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid allocation: %s" (String.concat "; " es)

let test_single_backend () =
  let w = readonly_workload () in
  let alloc = Greedy.allocate w (Backend.homogeneous 1) in
  check_valid alloc;
  (* One backend must hold everything and run at speedup 1. *)
  Alcotest.(check int)
    "all three relations stored" 3
    (Fragment.Set.cardinal (Allocation.fragments_of alloc 0));
  Alcotest.(check (float 1e-9)) "speedup 1" 1. (Allocation.speedup alloc)

let test_two_backends () =
  let w = readonly_workload () in
  let alloc = Greedy.allocate w (Backend.homogeneous 2) in
  check_valid alloc;
  Alcotest.(check (float 1e-6)) "speedup 2" 2. (Allocation.speedup alloc);
  (* Paper: only one relation needs replication — 4 fragment copies total
     for 3 relations. *)
  let copies =
    Fragment.Set.cardinal (Allocation.fragments_of alloc 0)
    + Fragment.Set.cardinal (Allocation.fragments_of alloc 1)
  in
  Alcotest.(check int) "only one relation replicated" 4 copies;
  (* Both backends carry exactly half the load. *)
  Alcotest.(check (float 1e-6))
    "B1 at 50%" 0.5
    (Allocation.assigned_load alloc 0);
  Alcotest.(check (float 1e-6))
    "B2 at 50%" 0.5
    (Allocation.assigned_load alloc 1)

let test_four_backends () =
  let w = readonly_workload () in
  let alloc = Greedy.allocate w (Backend.homogeneous 4) in
  check_valid alloc;
  Alcotest.(check (float 1e-6)) "speedup 4" 4. (Allocation.speedup alloc);
  (* Every backend is at exactly 25%. *)
  for b = 0 to 3 do
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "B%d at 25%%" (b + 1))
      0.25
      (Allocation.assigned_load alloc b)
  done;
  (* Paper: the optimum replicates only two tables (6 copies of 3
     relations); the greedy heuristic must not do worse than one extra
     copy. *)
  let copies = ref 0 in
  for b = 0 to 3 do
    copies := !copies + Fragment.Set.cardinal (Allocation.fragments_of alloc b)
  done;
  if !copies > 7 then
    Alcotest.failf "too much replication: %d fragment copies" !copies

let test_appendix_a_speedup () =
  let w = appendix_workload () in
  let backends = Backend.heterogeneous [ 0.3; 0.3; 0.2; 0.2 ] in
  let alloc = Greedy.allocate w backends in
  check_valid alloc;
  (* The paper's final allocation reaches scale 1.24 (B1 and B2 at 37.2%
     against load 30%).  The heuristic trace in the appendix ends exactly
     there; accept anything at least as good within a small slack. *)
  let s = Allocation.scale alloc in
  if s > 1.24 +. 1e-6 then Alcotest.failf "scale %.4f worse than paper's 1.24" s;
  (* All update classes pinned wherever their data lives. *)
  check_valid alloc

let test_appendix_a_sort_order () =
  let w = appendix_workload () in
  let key id =
    match Workload.find w id with
    | Some c -> Greedy.sort_key w c ~rest_weight:c.Query_class.weight
    | None -> Alcotest.failf "class %s missing" id
  in
  (* Paper: C = (Q4, Q2, Q1, Q3). *)
  Alcotest.(check (float 1e-9)) "key Q4" 0.6 (key "Q4");
  Alcotest.(check (float 1e-9)) "key Q2" 0.3 (key "Q2");
  Alcotest.(check (float 1e-9)) "key Q1" 0.28 (key "Q1");
  Alcotest.(check (float 1e-9)) "key Q3" 0.26 (key "Q3")

let test_max_speedup_bound () =
  let w = appendix_workload () in
  (* Worst co-allocated update weight: Q4 overlaps U1 (0.04) and U2 (0.10)
     -> bound 1/0.14. *)
  Alcotest.(check (float 1e-6))
    "Eq. 17 bound"
    (1. /. 0.14)
    (Speedup.max_speedup_bound w ~nodes:100)

let test_equations_29_30 () =
  Alcotest.(check (float 0.01))
    "Eq. 29: full replication, serial 25%, 10 nodes" 3.07
    (Speedup.full_replication ~nodes:10 ~update_weight:0.25);
  Alcotest.(check (float 0.01))
    "Eq. 30: scale 1.3 on 10 nodes" 7.69
    (Speedup.of_scale ~nodes:10 ~scale:1.3)

let suite =
  [
    Alcotest.test_case "read-only: 1 backend" `Quick test_single_backend;
    Alcotest.test_case "read-only: 2 backends" `Quick test_two_backends;
    Alcotest.test_case "read-only: 4 backends" `Quick test_four_backends;
    Alcotest.test_case "appendix A: scale" `Quick test_appendix_a_speedup;
    Alcotest.test_case "appendix A: sort order" `Quick
      test_appendix_a_sort_order;
    Alcotest.test_case "Eq. 17 bound" `Quick test_max_speedup_bound;
    Alcotest.test_case "Eqs. 29-30" `Quick test_equations_29_30;
  ]
