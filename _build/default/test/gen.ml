(* Shared random-workload generators for property-based tests. *)

open Cdbs_core

let fragment_pool =
  Array.init 8 (fun i ->
      Fragment.table (String.make 1 (Char.chr (Char.code 'A' + i)))
        ~size:(1. +. float_of_int (i mod 3)))

(* A random normalized workload: 2-6 read classes, 0-3 update classes, each
   over 1-3 distinct fragments from the pool, weights normalized to 1. *)
let workload_gen =
  let open QCheck.Gen in
  let class_fragments =
    let* k = int_range 1 3 in
    let* idxs = list_size (return k) (int_range 0 7) in
    return
      (List.sort_uniq compare idxs |> List.map (fun i -> fragment_pool.(i)))
  in
  let* n_reads = int_range 2 6 in
  let* n_updates = int_range 0 3 in
  let* read_frs = list_size (return n_reads) class_fragments in
  let* update_frs = list_size (return n_updates) class_fragments in
  let* read_ws = list_size (return n_reads) (float_range 0.5 5.) in
  let* update_ws = list_size (return n_updates) (float_range 0.1 1.) in
  let reads =
    List.mapi
      (fun i (frs, w) ->
        Query_class.read (Printf.sprintf "Q%d" (i + 1)) frs ~weight:w)
      (List.combine read_frs read_ws)
  in
  let updates =
    List.mapi
      (fun i (frs, w) ->
        Query_class.update (Printf.sprintf "U%d" (i + 1)) frs ~weight:w)
      (List.combine update_frs update_ws)
  in
  return (Workload.normalize (Workload.make ~reads ~updates))

(* Random homogeneous or heterogeneous backend list with 1-6 nodes. *)
let backends_gen =
  let open QCheck.Gen in
  let* n = int_range 1 6 in
  let* hetero = bool in
  if hetero then
    let* perfs = list_size (return n) (float_range 0.5 3.) in
    return (Backend.heterogeneous perfs)
  else return (Backend.homogeneous n)

let workload_arbitrary = QCheck.make workload_gen

let scenario_arbitrary =
  QCheck.make
    QCheck.Gen.(pair workload_gen backends_gen)
    ~print:(fun (w, bs) ->
      Fmt.str "%a on %d backends" Workload.pp w (List.length bs))
