(* Autoscaling policy and the elastic day simulation. *)

module Policy = Cdbs_autoscale.Policy
module Autoscaler = Cdbs_autoscale.Autoscaler

let test_policy_scale_up () =
  let p = Policy.create ~up_threshold:0.02 ~cooldown_windows:0 () in
  match Policy.decide p ~current:2 ~avg_response:0.05 ~utilization:0.9 with
  | Policy.Scale_to 3 -> ()
  | Policy.Scale_to n -> Alcotest.failf "scaled to %d" n
  | Policy.Stay -> Alcotest.fail "should scale up"

let test_policy_double_step_on_meltdown () =
  let p = Policy.create ~up_threshold:0.02 ~cooldown_windows:0 () in
  match Policy.decide p ~current:2 ~avg_response:1.0 ~utilization:1.0 with
  | Policy.Scale_to 4 -> ()
  | _ -> Alcotest.fail "meltdown should jump two nodes"

let test_policy_scale_down_needs_low_utilization () =
  let p =
    Policy.create ~up_threshold:0.05 ~down_threshold:0.01 ~cooldown_windows:0 ()
  in
  (match Policy.decide p ~current:3 ~avg_response:0.005 ~utilization:0.8 with
  | Policy.Stay -> ()
  | _ -> Alcotest.fail "busy cluster must not scale down");
  match Policy.decide p ~current:3 ~avg_response:0.005 ~utilization:0.1 with
  | Policy.Scale_to 2 -> ()
  | _ -> Alcotest.fail "idle cluster should scale down"

let test_policy_respects_bounds () =
  let p =
    Policy.create ~min_nodes:2 ~max_nodes:4 ~up_threshold:0.02
      ~down_threshold:0.01 ~cooldown_windows:0 ()
  in
  (match Policy.decide p ~current:4 ~avg_response:0.5 ~utilization:1.0 with
  | Policy.Stay -> ()
  | _ -> Alcotest.fail "must not exceed max");
  match Policy.decide p ~current:2 ~avg_response:0.001 ~utilization:0.01 with
  | Policy.Stay -> ()
  | _ -> Alcotest.fail "must not go below min"

let test_policy_cooldown () =
  let p = Policy.create ~up_threshold:0.02 ~cooldown_windows:2 () in
  (match Policy.decide p ~current:1 ~avg_response:0.05 ~utilization:1.0 with
  | Policy.Scale_to _ -> ()
  | Policy.Stay -> Alcotest.fail "first decision should scale");
  (* Next two windows are cooled down regardless of load. *)
  for _ = 1 to 2 do
    match Policy.decide p ~current:2 ~avg_response:0.5 ~utilization:1.0 with
    | Policy.Stay -> ()
    | _ -> Alcotest.fail "cooldown violated"
  done;
  match Policy.decide p ~current:2 ~avg_response:0.5 ~utilization:1.0 with
  | Policy.Scale_to _ -> ()
  | Policy.Stay -> Alcotest.fail "cooldown should have expired"

let test_elastic_day_smoke () =
  (* A shortened day (30-minute windows, modest scale) must track the load
     shape: fewer nodes at night than at the peak, bounded response. *)
  let summary =
    Autoscaler.simulate_day ~window_minutes:30. ~scale:20.
      ~rng:(Cdbs_util.Rng.create 7) ()
  in
  let nodes_at hour =
    let w =
      List.find
        (fun (w : Autoscaler.window_report) ->
          abs_float (w.Autoscaler.hour -. hour) < 0.26)
        summary.Autoscaler.windows
    in
    w.Autoscaler.nodes
  in
  Alcotest.(check bool) "peak uses more nodes than the night" true
    (nodes_at 20. > nodes_at 5.);
  Alcotest.(check bool) "day average below 100 ms" true
    (summary.Autoscaler.avg_response < 0.1);
  Alcotest.(check bool) "scaled at least twice" true
    (summary.Autoscaler.reallocations >= 2);
  Alcotest.(check bool) "reallocations ship data" true
    (summary.Autoscaler.total_transfer_mb > 0.)

let suite =
  [
    Alcotest.test_case "policy: scale up" `Quick test_policy_scale_up;
    Alcotest.test_case "policy: meltdown double step" `Quick
      test_policy_double_step_on_meltdown;
    Alcotest.test_case "policy: scale down gating" `Quick
      test_policy_scale_down_needs_low_utilization;
    Alcotest.test_case "policy: bounds" `Quick test_policy_respects_bounds;
    Alcotest.test_case "policy: cooldown" `Quick test_policy_cooldown;
    Alcotest.test_case "elastic day tracks load" `Slow test_elastic_day_smoke;
  ]

let test_forecast_learns () =
  let f = Cdbs_autoscale.Forecast.create ~windows_per_day:4 () in
  Alcotest.(check bool) "unknown before" true
    (Cdbs_autoscale.Forecast.predict f ~window:1 = None);
  Cdbs_autoscale.Forecast.observe f ~window:1 ~rate:100.;
  (match Cdbs_autoscale.Forecast.predict f ~window:1 with
  | Some r -> Alcotest.(check (float 1e-9)) "first observation" 100. r
  | None -> Alcotest.fail "no prediction");
  (* EWMA with alpha 0.5: 100 then 200 -> 150. *)
  Cdbs_autoscale.Forecast.observe f ~window:1 ~rate:200.;
  (match Cdbs_autoscale.Forecast.predict f ~window:5 with
  | Some r -> Alcotest.(check (float 1e-9)) "EWMA, modulo period" 150. r
  | None -> Alcotest.fail "no prediction");
  Alcotest.(check (float 1e-9)) "coverage 1/4" 0.25
    (Cdbs_autoscale.Forecast.coverage f)

let suite =
  suite
  @ [ Alcotest.test_case "forecast: EWMA profile" `Quick test_forecast_learns ]
