(* Table statistics / selectivity estimation and secondary indexes. *)

open Cdbs_storage
module Ast = Cdbs_sql.Ast

let schema : Schema.t =
  [
    Schema.table "m" ~primary_key:[ "id" ]
      [
        ("id", Schema.T_int); ("grp", Schema.T_int); ("v", Schema.T_float);
        ("tag", Schema.T_string 10);
      ];
  ]

(* 100 rows: id 1..100, grp = id mod 10, v = float id. *)
let mk_table () =
  let db = Database.create schema in
  let tbl = Database.table_exn db "m" in
  for i = 1 to 100 do
    match
      Table.insert tbl
        [|
          Value.Int i; Value.Int (i mod 10); Value.Float (float_of_int i);
          Value.Str (if i mod 2 = 0 then "even" else "odd");
        |]
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done;
  (db, tbl)

let expr s = Cdbs_sql.Parser.parse_expr s

(* ---------------- statistics ---------------- *)

let test_collect () =
  let _, tbl = mk_table () in
  let st = Table_stats.collect tbl in
  Alcotest.(check int) "rows" 100 st.Table_stats.rows;
  let grp = List.assoc "grp" st.Table_stats.columns in
  Alcotest.(check int) "grp distinct" 10 grp.Table_stats.distinct;
  let id = List.assoc "id" st.Table_stats.columns in
  Alcotest.(check bool) "id min" true
    (id.Table_stats.min_value = Some (Value.Int 1));
  Alcotest.(check bool) "id max" true
    (id.Table_stats.max_value = Some (Value.Int 100))

let test_selectivity_equality () =
  let _, tbl = mk_table () in
  let st = Table_stats.collect tbl in
  Alcotest.(check (float 1e-9)) "grp = 3 is 1/10" 0.1
    (Table_stats.selectivity st (expr "grp = 3"));
  Alcotest.(check (float 1e-9)) "id = 5 is 1/100" 0.01
    (Table_stats.selectivity st (expr "id = 5"))

let test_selectivity_range () =
  let _, tbl = mk_table () in
  let st = Table_stats.collect tbl in
  (* id < 50 covers about half the [1,100] span. *)
  let s = Table_stats.selectivity st (expr "id < 50") in
  Alcotest.(check bool) "about half" true (abs_float (s -. 0.5) < 0.02);
  let s2 = Table_stats.selectivity st (expr "id BETWEEN 20 AND 40") in
  Alcotest.(check bool) "about a fifth" true (abs_float (s2 -. 0.2) < 0.02)

let test_selectivity_compound () =
  let _, tbl = mk_table () in
  let st = Table_stats.collect tbl in
  let a = Table_stats.selectivity st (expr "grp = 3 AND id < 50") in
  Alcotest.(check bool) "conjunction multiplies" true
    (abs_float (a -. 0.05) < 0.01);
  let o = Table_stats.selectivity st (expr "grp = 3 OR grp = 4") in
  Alcotest.(check (float 1e-9)) "disjunction adds" 0.2 o;
  let n = Table_stats.selectivity st (expr "NOT grp = 3") in
  Alcotest.(check (float 1e-9)) "negation complements" 0.9 n

let test_estimate_rows () =
  let _, tbl = mk_table () in
  let st = Table_stats.collect tbl in
  Alcotest.(check (float 1e-6)) "all rows" 100.
    (Table_stats.estimate_rows st None);
  Alcotest.(check (float 1e-6)) "tenth" 10.
    (Table_stats.estimate_rows st (Some (expr "grp = 7")))

let test_scan_bytes_monotone () =
  let _, tbl = mk_table () in
  let st = Table_stats.collect tbl in
  let full = Table_stats.estimate_scan_bytes st None in
  let filtered = Table_stats.estimate_scan_bytes st (Some (expr "grp = 7")) in
  Alcotest.(check bool) "filter cheaper" true (filtered < full);
  Alcotest.(check bool) "but still reads the table" true
    (filtered > float_of_int st.Table_stats.bytes -. 1.)

(* ---------------- indexes ---------------- *)

let test_index_lookup () =
  let _, tbl = mk_table () in
  (match Table.create_index tbl "grp" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "has index" true (Table.has_index tbl "grp");
  match Table.indexed_lookup tbl ~column:"grp" (Value.Int 3) with
  | Some rows -> Alcotest.(check int) "10 matches" 10 (List.length rows)
  | None -> Alcotest.fail "index missing"

let test_index_maintained_on_insert () =
  let _, tbl = mk_table () in
  (match Table.create_index tbl "grp" with Ok () -> () | Error e -> Alcotest.fail e);
  (match
     Table.insert tbl
       [| Value.Int 101; Value.Int 3; Value.Float 101.; Value.Str "odd" |]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Table.indexed_lookup tbl ~column:"grp" (Value.Int 3) with
  | Some rows -> Alcotest.(check int) "11 matches" 11 (List.length rows)
  | None -> Alcotest.fail "index missing"

let test_index_rebuilt_on_update_delete () =
  let _, tbl = mk_table () in
  (match Table.create_index tbl "grp" with Ok () -> () | Error e -> Alcotest.fail e);
  let moved =
    Table.update_rows tbl
      (fun row -> row.(1) = Value.Int 3)
      (fun row ->
        let r = Array.copy row in
        r.(1) <- Value.Int 4;
        r)
  in
  Alcotest.(check int) "10 moved" 10 moved;
  (match Table.indexed_lookup tbl ~column:"grp" (Value.Int 3) with
  | Some [] -> ()
  | _ -> Alcotest.fail "stale index after update");
  let removed = Table.delete_rows tbl (fun row -> row.(1) = Value.Int 4) in
  Alcotest.(check int) "20 deleted" 20 removed;
  match Table.indexed_lookup tbl ~column:"grp" (Value.Int 4) with
  | Some [] -> ()
  | _ -> Alcotest.fail "stale index after delete"

let test_executor_uses_index () =
  let db, tbl = mk_table () in
  (match Table.create_index tbl "grp" with Ok () -> () | Error e -> Alcotest.fail e);
  (* Same result with and without the index path. *)
  match Executor.execute_sql db "SELECT id FROM m WHERE grp = 3 AND id < 50" with
  | Ok (Executor.Rows { rows; _ }) ->
      Alcotest.(check int) "5 rows" 5 (List.length rows)
  | Ok _ -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.fail e

let test_unknown_index_column () =
  let _, tbl = mk_table () in
  match Table.create_index tbl "nope" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "index on missing column accepted"

(* Property: for random predicates over the generated table, the estimated
   selectivity brackets the true one within a loose factor. *)
let prop_selectivity_sane =
  QCheck.Test.make ~count:50 ~name:"estimated selectivity stays in [0,1]"
    QCheck.(int_range 0 9)
    (fun g ->
      let _, tbl = mk_table () in
      let st = Table_stats.collect tbl in
      let s =
        Table_stats.selectivity st (expr (Printf.sprintf "grp = %d" g))
      in
      s >= 0. && s <= 1.)

let suite =
  [
    Alcotest.test_case "stats: collect" `Quick test_collect;
    Alcotest.test_case "stats: equality selectivity" `Quick
      test_selectivity_equality;
    Alcotest.test_case "stats: range selectivity" `Quick
      test_selectivity_range;
    Alcotest.test_case "stats: compound predicates" `Quick
      test_selectivity_compound;
    Alcotest.test_case "stats: row estimates" `Quick test_estimate_rows;
    Alcotest.test_case "stats: scan bytes" `Quick test_scan_bytes_monotone;
    Alcotest.test_case "index: lookup" `Quick test_index_lookup;
    Alcotest.test_case "index: maintained on insert" `Quick
      test_index_maintained_on_insert;
    Alcotest.test_case "index: rebuilt on update/delete" `Quick
      test_index_rebuilt_on_update_delete;
    Alcotest.test_case "index: executor fast path" `Quick
      test_executor_uses_index;
    Alcotest.test_case "index: unknown column" `Quick
      test_unknown_index_column;
    QCheck_alcotest.to_alcotest prop_selectivity_sane;
  ]
