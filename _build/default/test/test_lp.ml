(* Solver substrate tests: simplex, branch-and-bound MIP, Hungarian. *)

module Simplex = Cdbs_lp.Simplex
module Mip = Cdbs_lp.Mip
module Hungarian = Cdbs_lp.Hungarian

let check_opt ~expected_value outcome =
  match outcome with
  | Simplex.Optimal { value; solution } ->
      Alcotest.(check (float 1e-6)) "objective" expected_value value;
      solution
  | Simplex.Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpectedly unbounded"

(* max 3x + 2y st x + y <= 4, x + 3y <= 6  -> x=4, y=0, obj 12 *)
let test_simplex_basic () =
  let p =
    {
      Simplex.num_vars = 2;
      objective = [| -3.; -2. |];
      rows =
        [
          Simplex.row [ (0, 1.); (1, 1.) ] Simplex.Le 4.;
          Simplex.row [ (0, 1.); (1, 3.) ] Simplex.Le 6.;
        ];
    }
  in
  let x = check_opt ~expected_value:(-12.) (Simplex.solve p) in
  Alcotest.(check (float 1e-6)) "x" 4. x.(0);
  Alcotest.(check (float 1e-6)) "y" 0. x.(1)

(* Equality and >= constraints: min x + y st x + y = 2, x >= 0.5 *)
let test_simplex_eq_ge () =
  let p =
    {
      Simplex.num_vars = 2;
      objective = [| 1.; 1. |];
      rows =
        [
          Simplex.row [ (0, 1.); (1, 1.) ] Simplex.Eq 2.;
          Simplex.row [ (0, 1.) ] Simplex.Ge 0.5;
        ];
    }
  in
  let x = check_opt ~expected_value:2. (Simplex.solve p) in
  Alcotest.(check bool) "feasible" true (Simplex.feasible p x)

let test_simplex_infeasible () =
  let p =
    {
      Simplex.num_vars = 1;
      objective = [| 1. |];
      rows =
        [
          Simplex.row [ (0, 1.) ] Simplex.Ge 3.;
          Simplex.row [ (0, 1.) ] Simplex.Le 2.;
        ];
    }
  in
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let p =
    {
      Simplex.num_vars = 2;
      objective = [| -1.; 0. |];
      rows = [ Simplex.row [ (1, 1.) ] Simplex.Le 1. ];
    }
  in
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

(* Negative rhs requires row normalization. *)
let test_simplex_negative_rhs () =
  let p =
    {
      Simplex.num_vars = 1;
      objective = [| 1. |];
      rows = [ Simplex.row [ (0, -1.) ] Simplex.Le (-2.) ];
    }
  in
  (* -x <= -2 means x >= 2; minimize x -> 2. *)
  let x = check_opt ~expected_value:2. (Simplex.solve p) in
  Alcotest.(check (float 1e-6)) "x" 2. x.(0)

(* Degenerate problem exercising many pivots. *)
let test_simplex_degenerate () =
  let n = 12 in
  let rows =
    List.init n (fun i ->
        Simplex.row [ (i, 1.); ((i + 1) mod n, 1.) ] Simplex.Le 1.)
  in
  let p =
    { Simplex.num_vars = n; objective = Array.make n (-1.); rows }
  in
  match Simplex.solve p with
  | Simplex.Optimal { value; solution } ->
      Alcotest.(check bool) "feasible" true (Simplex.feasible p solution);
      (* Optimal packing of a cycle: n/2 for even n. *)
      Alcotest.(check (float 1e-6)) "value" (-6.) value
  | _ -> Alcotest.fail "expected optimum"

(* Knapsack-style MIP: max 5a + 4b + 3c st 2a + 3b + c <= 5, binaries.
   Optimum: a=1, c=1 (value 8) beats b combinations. *)
let test_mip_knapsack () =
  let lp =
    {
      Simplex.num_vars = 3;
      objective = [| -5.; -4.; -3. |];
      rows =
        Simplex.row [ (0, 2.); (1, 3.); (2, 1.) ] Simplex.Le 5.
        :: Mip.binary [ 0; 1; 2 ];
    }
  in
  match Mip.solve { Mip.lp; integer_vars = [ 0; 1; 2 ] } with
  | Mip.Solved s ->
      Alcotest.(check (float 1e-6)) "value" (-9.) s.Mip.value;
      Alcotest.(check bool) "proved" true s.Mip.proved_optimal
  | Mip.No_solution -> Alcotest.fail "expected solution"

let test_mip_integrality_gap () =
  (* max x st 2x <= 3, x integer -> x = 1 (LP relaxation gives 1.5). *)
  let lp =
    {
      Simplex.num_vars = 1;
      objective = [| -1. |];
      rows = [ Simplex.row [ (0, 2.) ] Simplex.Le 3. ];
    }
  in
  match Mip.solve { Mip.lp; integer_vars = [ 0 ] } with
  | Mip.Solved s ->
      Alcotest.(check (float 1e-6)) "value" (-1.) s.Mip.value;
      Alcotest.(check (float 1e-6)) "x" 1. s.Mip.assignment.(0)
  | Mip.No_solution -> Alcotest.fail "expected solution"

let test_mip_infeasible () =
  let lp =
    {
      Simplex.num_vars = 1;
      objective = [| 1. |];
      rows =
        [
          Simplex.row [ (0, 2.) ] Simplex.Ge 1.;
          Simplex.row [ (0, 2.) ] Simplex.Le 1.9;
        ];
    }
  in
  (* 0.5 <= x <= 0.95 has no integer point. *)
  match Mip.solve { Mip.lp; integer_vars = [ 0 ] } with
  | Mip.No_solution -> ()
  | Mip.Solved _ -> Alcotest.fail "expected no solution"

let test_hungarian_identity () =
  let cost = [| [| 0.; 5. |]; [| 5.; 0. |] |] in
  let assignment, total = Hungarian.solve cost in
  Alcotest.(check (array int)) "assignment" [| 0; 1 |] assignment;
  Alcotest.(check (float 1e-9)) "total" 0. total

let test_hungarian_classic () =
  (* Classic 3x3 example; optimum is 5 (1,3 -> no: verify by brute force). *)
  let cost = [| [| 4.; 1.; 3. |]; [| 2.; 0.; 5. |]; [| 3.; 2.; 2. |] |] in
  let _, total = Hungarian.solve cost in
  (* Brute force the 6 permutations. *)
  let perms = [ [0;1;2]; [0;2;1]; [1;0;2]; [1;2;0]; [2;0;1]; [2;1;0] ] in
  let best =
    List.fold_left
      (fun acc p ->
        min acc
          (List.fold_left ( +. ) 0.
             (List.mapi (fun i j -> cost.(i).(j)) p)))
      infinity perms
  in
  Alcotest.(check (float 1e-9)) "matches brute force" best total

let test_hungarian_random_vs_bruteforce () =
  let rng = Cdbs_util.Rng.create 42 in
  for _ = 1 to 25 do
    let n = 2 + Cdbs_util.Rng.int rng 4 in
    let cost =
      Array.init n (fun _ ->
          Array.init n (fun _ -> Cdbs_util.Rng.float rng 10.))
    in
    let _, total = Hungarian.solve cost in
    (* Brute force over all permutations. *)
    let best = ref infinity in
    let rec permute acc remaining =
      match remaining with
      | [] ->
          let c =
            List.fold_left ( +. ) 0.
              (List.mapi (fun i j -> cost.(i).(j)) (List.rev acc))
          in
          if c < !best then best := c
      | _ ->
          List.iter
            (fun j ->
              permute (j :: acc) (List.filter (fun x -> x <> j) remaining))
            remaining
    in
    permute [] (List.init n (fun i -> i));
    Alcotest.(check (float 1e-6)) "optimal" !best total
  done

let test_hungarian_rectangular () =
  let cost = [| [| 1.; 9.; 9. |]; [| 9.; 1.; 9. |] |] in
  let assignment, total = Hungarian.solve_rectangular cost in
  Alcotest.(check int) "rows" 2 (Array.length assignment);
  Alcotest.(check (float 1e-9)) "total" 2. total

(* The paper's Section 3 read-only example solved exactly: on 2 backends the
   optimum replicates exactly one relation. *)
let test_optimal_readonly_example () =
  let open Cdbs_core in
  let fr name = Fragment.table name ~size:1. in
  let w =
    Workload.make
      ~reads:
        [
          Query_class.read "C1" [ fr "A" ] ~weight:0.30;
          Query_class.read "C2" [ fr "B" ] ~weight:0.25;
          Query_class.read "C3" [ fr "C" ] ~weight:0.25;
          Query_class.read "C4" [ fr "A"; fr "B" ] ~weight:0.20;
        ]
      ~updates:[]
  in
  match Optimal.allocate w (Backend.homogeneous 2) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "proved optimal" true r.Optimal.proved_optimal;
      Alcotest.(check (float 1e-6)) "scale 1" 1. r.Optimal.scale;
      Alcotest.(check (float 1e-6)) "space 4 (one table replicated)" 4.
        r.Optimal.space;
      (match Allocation.validate r.Optimal.allocation with
      | Ok () -> ()
      | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))

(* Update-aware optimum on the Appendix A workload, homogeneous 4 backends.
   Q4 references {A, B}, so some backend carries U1+U2 (14%) plus read load;
   since Q1+U1 (28%) exceeds one backend, A is replicated and the best
   achievable maximum backend load is 30% (e.g. B1{A,B}: U1+U2+Q4 = 30%,
   B2{B}: U2+Q2 = 30%, B3{A}: U1+Q1 = 28%, B4{C}: U3+Q3 = 26%), i.e.
   scale = 0.30/0.25 = 1.2 — the structure of the paper's Figure 7. *)
let test_optimal_appendix_homogeneous () =
  let open Cdbs_core in
  let fr name = Fragment.table name ~size:1. in
  let w =
    Workload.make
      ~reads:
        [
          Query_class.read "Q1" [ fr "A" ] ~weight:0.24;
          Query_class.read "Q2" [ fr "B" ] ~weight:0.20;
          Query_class.read "Q3" [ fr "C" ] ~weight:0.20;
          Query_class.read "Q4" [ fr "A"; fr "B" ] ~weight:0.16;
        ]
      ~updates:
        [
          Query_class.update "U1" [ fr "A" ] ~weight:0.04;
          Query_class.update "U2" [ fr "B" ] ~weight:0.10;
          Query_class.update "U3" [ fr "C" ] ~weight:0.06;
        ]
  in
  match Optimal.allocate ~node_limit:200_000 w (Backend.homogeneous 4) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "proved optimal" true r.Optimal.proved_optimal;
      Alcotest.(check (float 1e-6)) "scale 1.2" 1.2 r.Optimal.scale;
      (match Allocation.validate r.Optimal.allocation with
      | Ok () -> ()
      | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))

let suite =
  [
    Alcotest.test_case "simplex: basic max" `Quick test_simplex_basic;
    Alcotest.test_case "simplex: eq and ge rows" `Quick test_simplex_eq_ge;
    Alcotest.test_case "simplex: infeasible" `Quick test_simplex_infeasible;
    Alcotest.test_case "simplex: unbounded" `Quick test_simplex_unbounded;
    Alcotest.test_case "simplex: negative rhs" `Quick
      test_simplex_negative_rhs;
    Alcotest.test_case "simplex: degenerate cycle" `Quick
      test_simplex_degenerate;
    Alcotest.test_case "mip: knapsack" `Quick test_mip_knapsack;
    Alcotest.test_case "mip: integrality gap" `Quick test_mip_integrality_gap;
    Alcotest.test_case "mip: infeasible" `Quick test_mip_infeasible;
    Alcotest.test_case "hungarian: identity" `Quick test_hungarian_identity;
    Alcotest.test_case "hungarian: classic 3x3" `Quick test_hungarian_classic;
    Alcotest.test_case "hungarian: random vs brute force" `Quick
      test_hungarian_random_vs_bruteforce;
    Alcotest.test_case "hungarian: rectangular" `Quick
      test_hungarian_rectangular;
    Alcotest.test_case "optimal: read-only example" `Quick
      test_optimal_readonly_example;
    Alcotest.test_case "optimal: appendix A homogeneous" `Slow
      test_optimal_appendix_homogeneous;
  ]
