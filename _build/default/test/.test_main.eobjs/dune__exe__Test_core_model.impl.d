test/test_core_model.ml: Alcotest Cdbs_core Cdbs_storage Classification Filename Fragment Gen Journal List Option QCheck QCheck_alcotest Query_class Sys Workload
