test/test_stats_index.ml: Alcotest Array Cdbs_sql Cdbs_storage Database Executor List Printf QCheck QCheck_alcotest Schema Table Table_stats Value
