test/test_segmented.ml: Alcotest Allocation Backend Balance Cdbs_core Cdbs_storage Cdbs_util Classification Fragment Greedy Journal List Memetic Optimal Query_class Segmented Workload
