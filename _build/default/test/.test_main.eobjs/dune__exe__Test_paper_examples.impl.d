test/test_paper_examples.ml: Alcotest Allocation Backend Cdbs_core Fragment Greedy Printf Query_class Speedup String Workload
