test/test_workloads.ml: Alcotest Cdbs_cluster Cdbs_core Cdbs_storage Cdbs_util Cdbs_workloads Classification Fragment List Option Query_class String Workload
