test/test_tpch_sql.ml: Alcotest Backend Cdbs_core Cdbs_sql Cdbs_storage Cdbs_util Cdbs_workloads Classification Fragment Greedy List Query_class Replication Workload
