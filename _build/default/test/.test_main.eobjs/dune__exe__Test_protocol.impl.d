test/test_protocol.ml: Alcotest Array Backend Baselines Cdbs_cluster Cdbs_core Fragment List Query_class Workload
