test/test_sql.ml: Alcotest Analyze Ast Cdbs_sql Fmt Lexer List Parser QCheck QCheck_alcotest
