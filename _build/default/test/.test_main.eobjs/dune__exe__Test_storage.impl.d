test/test_storage.ml: Alcotest Array Cdbs_storage Cdbs_util Database Datagen Executor List QCheck QCheck_alcotest Schema Table Value
