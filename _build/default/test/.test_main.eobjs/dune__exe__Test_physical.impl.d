test/test_physical.ml: Alcotest Allocation Array Backend Baselines Cdbs_core Cdbs_util Fragment Gen Greedy List Physical QCheck QCheck_alcotest Query_class Workload
