test/gen.ml: Array Backend Cdbs_core Char Fmt Fragment List Printf QCheck Query_class String Workload
