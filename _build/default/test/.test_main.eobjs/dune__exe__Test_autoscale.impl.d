test/test_autoscale.ml: Alcotest Cdbs_autoscale Cdbs_util List
