test/test_lp.ml: Alcotest Allocation Array Backend Cdbs_core Cdbs_lp Cdbs_util Fragment List Optimal Query_class String Workload
