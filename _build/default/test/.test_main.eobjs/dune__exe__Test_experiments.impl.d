test/test_experiments.ml: Alcotest Cdbs_experiments List
