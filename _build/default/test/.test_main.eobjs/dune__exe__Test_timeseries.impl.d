test/test_timeseries.ml: Alcotest Allocation Backend Cdbs_core Cdbs_util Cdbs_workloads Fragment List Memetic Query_class Replication Speedup Workload
