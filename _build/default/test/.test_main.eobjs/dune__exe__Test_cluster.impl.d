test/test_cluster.ml: Alcotest Allocation Backend Baselines Cdbs_cluster Cdbs_core Cdbs_storage Fragment Greedy Journal List Query_class String Workload
