(* Storage engine tests: values, tables, databases, executor. *)

open Cdbs_storage

let schema : Schema.t =
  [
    Schema.table "emp" ~primary_key:[ "id" ]
      [
        ("id", Schema.T_int); ("name", Schema.T_string 20);
        ("dept", Schema.T_int); ("salary", Schema.T_float);
      ];
    Schema.table "dept" ~primary_key:[ "did" ]
      [ ("did", Schema.T_int); ("dname", Schema.T_string 20) ];
  ]

let mk_db () =
  let db = Database.create schema in
  let ins name row =
    match Database.insert db name row with
    | Ok () -> ()
    | Error e -> Alcotest.failf "insert failed: %s" e
  in
  List.iter
    (fun (id, name, dept, salary) ->
      ins "emp"
        [|
          Value.Int id; Value.Str name; Value.Int dept; Value.Float salary;
        |])
    [
      (1, "ada", 10, 5000.); (2, "bob", 10, 4000.); (3, "cyd", 20, 6000.);
      (4, "dan", 20, 3500.); (5, "eve", 30, 7000.);
    ];
  List.iter
    (fun (did, dname) -> ins "dept" [| Value.Int did; Value.Str dname |])
    [ (10, "eng"); (20, "ops"); (30, "hr") ];
  db

let query db sql =
  match Executor.execute_sql db sql with
  | Ok (Executor.Rows { columns; rows }) -> (columns, rows)
  | Ok (Executor.Affected _) -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.failf "query failed: %s" e

let dml db sql =
  match Executor.execute_sql db sql with
  | Ok (Executor.Affected n) -> n
  | Ok (Executor.Rows _) -> Alcotest.fail "expected affected count"
  | Error e -> Alcotest.failf "statement failed: %s" e

(* ---------------- values ---------------- *)

let test_value_compare () =
  Alcotest.(check bool) "int vs float" true
    (Value.compare (Value.Int 2) (Value.Float 2.0) = 0);
  Alcotest.(check bool) "ordering" true
    (Value.compare (Value.Int 1) (Value.Float 1.5) < 0);
  Alcotest.(check bool) "null smallest" true
    (Value.compare Value.Null (Value.Int (-100)) < 0)

let test_value_arith () =
  Alcotest.(check bool) "int add" true
    (Value.add (Value.Int 2) (Value.Int 3) = Value.Int 5);
  (match Value.add (Value.Int 2) (Value.Float 0.5) with
  | Value.Float f -> Alcotest.(check (float 1e-9)) "promote" 2.5 f
  | _ -> Alcotest.fail "expected float");
  Alcotest.(check bool) "div by zero is null" true
    (Value.div (Value.Int 1) (Value.Int 0) = Value.Null);
  Alcotest.(check bool) "string arith is null" true
    (Value.add (Value.Str "a") (Value.Int 1) = Value.Null)

(* ---------------- table ---------------- *)

let test_table_pk_duplicate () =
  let db = mk_db () in
  match
    Database.insert db "emp"
      [| Value.Int 1; Value.Str "dup"; Value.Int 1; Value.Float 1. |]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate primary key accepted"

let test_table_pk_lookup () =
  let db = mk_db () in
  let tbl = Database.table_exn db "emp" in
  (match Table.find_by_pk tbl [ Value.Int 3 ] with
  | Some row -> Alcotest.(check bool) "name" true (row.(1) = Value.Str "cyd")
  | None -> Alcotest.fail "pk lookup failed");
  Alcotest.(check bool) "missing pk" true
    (Table.find_by_pk tbl [ Value.Int 99 ] = None)

let test_table_update_refreshes_index () =
  let db = mk_db () in
  let n = dml db "UPDATE emp SET id = 30 WHERE id = 3" in
  Alcotest.(check int) "one row" 1 n;
  let tbl = Database.table_exn db "emp" in
  Alcotest.(check bool) "old key gone" true
    (Table.find_by_pk tbl [ Value.Int 3 ] = None);
  Alcotest.(check bool) "new key found" true
    (Table.find_by_pk tbl [ Value.Int 30 ] <> None)

let test_partial_database () =
  let db = Database.create_partial schema ~tables:[ "dept" ] in
  Alcotest.(check (list string)) "only dept" [ "dept" ]
    (Database.table_names db);
  Alcotest.(check bool) "emp missing" true (Database.table db "emp" = None)

let test_copy_table () =
  let src = mk_db () in
  let dst = Database.create_partial schema ~tables:[ "emp" ] in
  (match Database.copy_table_into ~src ~dst "emp" with
  | Ok n -> Alcotest.(check int) "rows copied" 5 n
  | Error e -> Alcotest.failf "copy failed: %s" e);
  Alcotest.(check int) "row count" 5
    (Table.row_count (Database.table_exn dst "emp"))

(* ---------------- executor: queries ---------------- *)

let test_select_filter () =
  let db = mk_db () in
  let _, rows = query db "SELECT name FROM emp WHERE salary >= 5000" in
  Alcotest.(check int) "3 high earners" 3 (List.length rows)

let test_select_projection_order () =
  let db = mk_db () in
  let columns, rows =
    query db "SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 2"
  in
  Alcotest.(check (list string)) "columns" [ "name"; "salary" ] columns;
  match rows with
  | [ [| Value.Str "eve"; _ |]; [| Value.Str "cyd"; _ |] ] -> ()
  | _ -> Alcotest.fail "wrong order/limit"

let test_select_join () =
  let db = mk_db () in
  let _, rows =
    query db
      "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.did WHERE \
       dname = 'ops'"
  in
  Alcotest.(check int) "two ops employees" 2 (List.length rows)

let test_select_cross_join_filtered () =
  let db = mk_db () in
  let _, rows =
    query db "SELECT name FROM emp, dept WHERE dept = did AND dname = 'hr'"
  in
  Alcotest.(check int) "one hr employee" 1 (List.length rows)

let test_aggregates () =
  let db = mk_db () in
  let _, rows = query db "SELECT count(*), sum(salary), avg(salary), min(salary), max(salary) FROM emp" in
  match rows with
  | [ [| Value.Int 5; Value.Float sum; Value.Float avg; mn; mx |] ] ->
      Alcotest.(check (float 1e-6)) "sum" 25500. sum;
      Alcotest.(check (float 1e-6)) "avg" 5100. avg;
      Alcotest.(check bool) "min" true (Value.compare mn (Value.Float 3500.) = 0);
      Alcotest.(check bool) "max" true (Value.compare mx (Value.Float 7000.) = 0)
  | _ -> Alcotest.fail "aggregate row shape"

let test_group_by_having () =
  let db = mk_db () in
  let _, rows =
    query db
      "SELECT dept, count(*) AS n FROM emp GROUP BY dept HAVING count(*) >= \
       2 ORDER BY dept"
  in
  match rows with
  | [ [| Value.Int 10; Value.Int 2 |]; [| Value.Int 20; Value.Int 2 |] ] -> ()
  | _ -> Alcotest.failf "wrong groups (%d rows)" (List.length rows)

let test_aggregate_empty_input () =
  let db = mk_db () in
  let _, rows = query db "SELECT count(*) FROM emp WHERE salary > 100000" in
  match rows with
  | [ [| Value.Int 0 |] ] -> ()
  | _ -> Alcotest.fail "count over empty input should be one row of 0"

let test_distinct () =
  let db = mk_db () in
  let _, rows = query db "SELECT DISTINCT dept FROM emp" in
  Alcotest.(check int) "three departments" 3 (List.length rows)

let test_like_and_in () =
  let db = mk_db () in
  let _, rows = query db "SELECT name FROM emp WHERE name LIKE '%a%'" in
  (* ada and dan contain 'a'. *)
  Alcotest.(check int) "like matches" 2 (List.length rows);
  let _, rows = query db "SELECT name FROM emp WHERE dept IN (10, 30)" in
  Alcotest.(check int) "in matches" 3 (List.length rows)

(* ---------------- executor: DML ---------------- *)

let test_insert_select () =
  let db = mk_db () in
  let n =
    dml db
      "INSERT INTO emp (id, name, dept, salary) VALUES (6, 'fay', 10, 4500)"
  in
  Alcotest.(check int) "inserted" 1 n;
  let _, rows = query db "SELECT name FROM emp WHERE dept = 10" in
  Alcotest.(check int) "now three in eng" 3 (List.length rows)

let test_update_expression () =
  let db = mk_db () in
  let n = dml db "UPDATE emp SET salary = salary * 2 WHERE dept = 10" in
  Alcotest.(check int) "two updated" 2 n;
  let _, rows = query db "SELECT salary FROM emp WHERE name = 'ada'" in
  match rows with
  | [ [| Value.Float s |] ] -> Alcotest.(check (float 1e-6)) "doubled" 10000. s
  | _ -> Alcotest.fail "row shape"

let test_delete () =
  let db = mk_db () in
  let n = dml db "DELETE FROM emp WHERE salary < 4000" in
  Alcotest.(check int) "one deleted" 1 n;
  let _, rows = query db "SELECT id FROM emp" in
  Alcotest.(check int) "four left" 4 (List.length rows)

let test_executor_errors () =
  let db = mk_db () in
  List.iter
    (fun sql ->
      match Executor.execute_sql db sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected error for %S" sql)
    [
      "SELECT nope FROM emp";
      "SELECT id FROM missing";
      "INSERT INTO emp (id) VALUES (1, 2)";
      "UPDATE emp SET nope = 1";
      "not sql at all";
    ]

(* Property: generated rows survive a write-read round trip. *)
let prop_datagen_rows_valid =
  QCheck.Test.make ~count:30 ~name:"datagen produces valid rows"
    QCheck.(int_range 1 200)
    (fun rows ->
      let db = Database.create schema in
      Datagen.populate
        (Cdbs_util.Rng.create rows)
        db
        ~rows_per_table:[ ("emp", rows); ("dept", rows) ];
      Table.row_count (Database.table_exn db "emp") = rows
      && Database.byte_size db > 0)

let suite =
  [
    Alcotest.test_case "value: compare" `Quick test_value_compare;
    Alcotest.test_case "value: arithmetic" `Quick test_value_arith;
    Alcotest.test_case "table: duplicate pk" `Quick test_table_pk_duplicate;
    Alcotest.test_case "table: pk lookup" `Quick test_table_pk_lookup;
    Alcotest.test_case "table: update refreshes index" `Quick
      test_table_update_refreshes_index;
    Alcotest.test_case "database: partial" `Quick test_partial_database;
    Alcotest.test_case "database: bulk copy" `Quick test_copy_table;
    Alcotest.test_case "executor: filter" `Quick test_select_filter;
    Alcotest.test_case "executor: projection/order/limit" `Quick
      test_select_projection_order;
    Alcotest.test_case "executor: equi-join" `Quick test_select_join;
    Alcotest.test_case "executor: comma join" `Quick
      test_select_cross_join_filtered;
    Alcotest.test_case "executor: aggregates" `Quick test_aggregates;
    Alcotest.test_case "executor: group by / having" `Quick
      test_group_by_having;
    Alcotest.test_case "executor: empty aggregate" `Quick
      test_aggregate_empty_input;
    Alcotest.test_case "executor: distinct" `Quick test_distinct;
    Alcotest.test_case "executor: like / in" `Quick test_like_and_in;
    Alcotest.test_case "executor: insert" `Quick test_insert_select;
    Alcotest.test_case "executor: update expression" `Quick
      test_update_expression;
    Alcotest.test_case "executor: delete" `Quick test_delete;
    Alcotest.test_case "executor: error cases" `Quick test_executor_errors;
    QCheck_alcotest.to_alcotest prop_datagen_rows_valid;
  ]
