(* The TPC-H SQL texts must parse, analyze to exactly the statistical class
   footprints, execute on a generated mini database, and classify back to
   the same workload. *)

open Cdbs_core
module Tpch = Cdbs_workloads.Tpch
module Queries = Cdbs_workloads.Tpch_queries
module Analyze = Cdbs_sql.Analyze

let footprints_by_id =
  (* The statistical definitions, recovered through the spec layer. *)
  let specs = Tpch.specs ~sf:1. in
  List.map
    (fun (s : Cdbs_workloads.Spec.class_spec) -> (s.Cdbs_workloads.Spec.id, s.Cdbs_workloads.Spec.footprint))
    specs

let test_all_queries_parse () =
  Alcotest.(check int) "19 queries" 19 (List.length Queries.all);
  List.iter
    (fun (id, sql) ->
      match Cdbs_sql.Parser.parse sql with
      | _ -> ()
      | exception Cdbs_sql.Parser.Parse_error m ->
          Alcotest.failf "%s does not parse: %s" id m)
    Queries.all

let test_footprints_match_specs () =
  let schema_assoc = Cdbs_storage.Schema.to_assoc Tpch.schema in
  List.iter
    (fun (id, sql) ->
      let fp = Analyze.footprint_of_sql ~schema:schema_assoc sql in
      let expected =
        match List.assoc_opt id footprints_by_id with
        | Some f -> f
        | None -> Alcotest.failf "no spec for %s" id
      in
      let expected_tables =
        List.sort compare (List.map fst expected)
      in
      Alcotest.(check (list string)) (id ^ " tables") expected_tables
        fp.Analyze.tables;
      let expected_columns =
        List.sort compare
          (List.concat_map
             (fun (t, cols) -> List.map (fun c -> (t, c)) cols)
             expected)
      in
      Alcotest.(check (list (pair string string)))
        (id ^ " columns") expected_columns fp.Analyze.columns)
    Queries.all

let test_queries_execute () =
  (* A miniature TPC-H instance: every query must run without error. *)
  let db = Cdbs_storage.Database.create Tpch.schema in
  Cdbs_storage.Datagen.populate
    (Cdbs_util.Rng.create 13)
    db
    ~rows_per_table:
      [
        ("region", 5); ("nation", 25); ("supplier", 30); ("customer", 60);
        ("part", 50); ("partsupp", 80); ("orders", 120); ("lineitem", 300);
      ];
  List.iter
    (fun (id, sql) ->
      match Cdbs_storage.Executor.execute_sql db sql with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s failed to execute: %s" id e)
    Queries.all

let test_journal_classifies_to_19_classes () =
  let journal =
    Queries.journal ~rng:(Cdbs_util.Rng.create 3) ~n:2000 ~sf:1.
  in
  let size_of =
    Classification.default_sizes ~schema:Tpch.schema
      ~rows:(Tpch.row_counts ~sf:1.)
  in
  let w =
    Classification.classify ~schema:Tpch.schema ~size_of
      Classification.By_column journal
  in
  Alcotest.(check int) "19 classes from SQL" 19 (List.length w.Workload.reads);
  Alcotest.(check int) "no updates" 0 (List.length w.Workload.updates);
  (* Weights of the SQL-journal classification match the statistical
     workload: compare by fragment-set identity. *)
  let reference = Tpch.workload ~granularity:`Column ~sf:1. in
  List.iter
    (fun c ->
      let matching =
        List.find_opt
          (fun r ->
            Fragment.Set.equal r.Query_class.fragments c.Query_class.fragments)
          reference.Workload.reads
      in
      match matching with
      | None ->
          Alcotest.failf "class %s has no counterpart" c.Query_class.id
      | Some r ->
          (* Rounding of request counts distorts weights slightly. *)
          if abs_float (r.Query_class.weight -. c.Query_class.weight) > 0.01
          then
            Alcotest.failf "weight mismatch for %s: %.4f vs %.4f"
              c.Query_class.id c.Query_class.weight r.Query_class.weight)
    w.Workload.reads

let test_sql_journal_allocation_agrees () =
  (* End-to-end: allocating from the SQL journal gives the same degree of
     replication as allocating from the statistical workload. *)
  let journal =
    Queries.journal ~rng:(Cdbs_util.Rng.create 5) ~n:4000 ~sf:1.
  in
  let size_of =
    Classification.default_sizes ~schema:Tpch.schema
      ~rows:(Tpch.row_counts ~sf:1.)
  in
  let from_sql =
    Classification.classify ~schema:Tpch.schema ~size_of
      Classification.By_column journal
  in
  let reference = Tpch.workload ~granularity:`Column ~sf:1. in
  let backends = Backend.homogeneous 6 in
  let a1 = Greedy.allocate from_sql backends in
  let a2 = Greedy.allocate reference backends in
  Alcotest.(check bool) "degrees within 5%" true
    (abs_float (Replication.degree a1 -. Replication.degree a2) < 0.05
     *. Replication.degree a2 +. 0.05)

let suite =
  [
    Alcotest.test_case "all 19 queries parse" `Quick test_all_queries_parse;
    Alcotest.test_case "footprints match the class definitions" `Quick
      test_footprints_match_specs;
    Alcotest.test_case "queries execute on generated data" `Quick
      test_queries_execute;
    Alcotest.test_case "SQL journal classifies to the 19 classes" `Quick
      test_journal_classifies_to_19_classes;
    Alcotest.test_case "SQL-journal allocation agrees" `Quick
      test_sql_journal_allocation_agrees;
  ]
