(** TPC-H-style read-only decision-support workload (paper Sec. 4.1).

    The 8-relation TPC-H schema with size-accurate column widths and the 19
    query classes the paper evaluates (queries 17, 20 and 21 are omitted,
    as in the paper, because the backends could not process them in
    reasonable time).  Class weights model the relative execution costs
    that the paper measured from the query history; footprints list the
    exact columns each query touches, which is what makes column-granular
    allocation so much cheaper than table-granular on this schema — nearly
    every query references the two fact tables that hold over 80 % of the
    data. *)

val schema : Cdbs_storage.Schema.t

val row_counts : sf:float -> (string * int) list
(** Cardinalities at the given scale factor (SF1 = the paper's 1 GB). *)

val database_mb : sf:float -> float
(** Total database size under the schema's column widths. *)

val specs : sf:float -> Spec.class_spec list
(** The 19 query-class specifications; weights normalized downstream. *)

val workload :
  granularity:[ `Table | `Column ] -> sf:float -> Cdbs_core.Workload.t

val requests :
  rng:Cdbs_util.Rng.t -> sf:float -> n:int -> Cdbs_cluster.Request.t list

val random_allocation :
  rng:Cdbs_util.Rng.t ->
  Cdbs_core.Workload.t ->
  Cdbs_core.Backend.t list ->
  Cdbs_core.Allocation.t
(** The paper's "random allocation" baseline: every query class is placed
    (whole) on a uniformly random backend; updates follow by closure.  Load
    is whatever falls out — the baseline that levels off at speedup ≈ 2.5
    in Fig. 4(a). *)
