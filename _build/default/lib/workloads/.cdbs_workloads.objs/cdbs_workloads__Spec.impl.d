lib/workloads/spec.ml: Array Cdbs_cluster Cdbs_core Cdbs_storage Cdbs_util List Option Stdlib
