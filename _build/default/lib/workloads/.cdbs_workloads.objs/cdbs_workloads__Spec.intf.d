lib/workloads/spec.mli: Cdbs_cluster Cdbs_core Cdbs_storage Cdbs_util
