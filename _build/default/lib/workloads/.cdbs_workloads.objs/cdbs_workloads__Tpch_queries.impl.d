lib/workloads/tpch_queries.ml: Array Cdbs_core Cdbs_util List Option Spec Tpch
