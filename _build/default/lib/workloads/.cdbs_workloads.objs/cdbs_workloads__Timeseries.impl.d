lib/workloads/timeseries.ml: Cdbs_core Cdbs_storage Cdbs_util List
