lib/workloads/timeseries.mli: Cdbs_core Cdbs_storage Cdbs_util
