lib/workloads/tpch.ml: Cdbs_core Cdbs_storage List Spec
