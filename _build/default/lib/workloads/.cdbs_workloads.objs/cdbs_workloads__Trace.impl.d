lib/workloads/trace.ml: Cdbs_cluster Cdbs_core Cdbs_storage Cdbs_util Float List Option Spec Stdlib
