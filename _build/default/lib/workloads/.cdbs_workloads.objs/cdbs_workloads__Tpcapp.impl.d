lib/workloads/tpcapp.ml: Cdbs_core Cdbs_storage List Spec
