lib/workloads/trace.mli: Cdbs_cluster Cdbs_core Cdbs_storage Cdbs_util Spec
