lib/workloads/tpch_queries.mli: Cdbs_core Cdbs_util
