(** SQL text of the 19 evaluated TPC-H-style queries.

    The statements are adapted to the SQL subset of {!Cdbs_sql} (correlated
    subqueries are unrolled into joins or dropped, semantics preserved
    where possible) but reference {e exactly} the tables and columns of the
    corresponding class footprint in {!Tpch.specs} — a journal of these
    statements classifies to the same workload the statistical definition
    produces, which the test suite verifies. *)

val all : (string * string) list
(** [(query id, SQL text)] for Q1–Q22 minus Q17, Q20, Q21. *)

val sql : string -> string option
(** SQL of one query id. *)

val journal :
  rng:Cdbs_util.Rng.t -> n:int -> sf:float -> Cdbs_core.Journal.t
(** A journal of [n] entries drawn with per-query frequencies matching the
    class weights (heavier classes are fewer, more expensive executions —
    entry costs carry the class cost). *)
