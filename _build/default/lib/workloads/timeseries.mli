(** Time-partitioned event-archive workload — the horizontal-partitioning
    showcase (paper Sec. 3.1: queries can be grouped "based on their
    predicates and, thus, create a horizontal partitioning").

    One large append-only [events] table dominates the database.  Dashboards
    hammer the most recent days, analytic scans read the full year, and all
    inserts land in the newest range.  Table-granular classification cannot
    separate any of this — every class references [events], so the insert
    class is dragged onto every backend that serves reads.  Classifying by
    the predicate ranges on [ev_day] splits the table into quarters: the hot
    head quarter (reads + all writes) pins to few backends while the cold
    quarters replicate freely. *)

val schema : Cdbs_storage.Schema.t
val row_counts : (string * int) list

val splits : (string * string * float list) list
(** The split specification for {!Cdbs_core.Classification.By_predicate}:
    [ev_day] cut at days 90, 180 and 270. *)

val journal : rng:Cdbs_util.Rng.t -> n:int -> Cdbs_core.Journal.t
(** [n] journal entries: reads over all four quarters (the head quarter
    carries ~30% of the cost) plus three disjoint-range update classes —
    head inserts, third-quarter corrections, tail retention deletes —
    together ≈20% of the cost. *)

val workload :
  granularity:
    [ `Table | `Column | `Predicate ] ->
  rng:Cdbs_util.Rng.t ->
  n:int ->
  Cdbs_core.Workload.t
(** Classify a fresh [n]-entry journal at the requested granularity. *)
