module Schema = Cdbs_storage.Schema
module Classification = Cdbs_core.Classification
module Fragment = Cdbs_core.Fragment
module Allocation = Cdbs_core.Allocation
module Workload = Cdbs_core.Workload
module Query_class = Cdbs_core.Query_class

let s w = Schema.T_string w
let i = Schema.T_int
let f = Schema.T_float

let schema : Schema.t =
  [
    Schema.table "region" ~primary_key:[ "r_regionkey" ]
      [ ("r_regionkey", i); ("r_name", s 25); ("r_comment", s 152) ];
    Schema.table "nation" ~primary_key:[ "n_nationkey" ]
      [
        ("n_nationkey", i); ("n_name", s 25); ("n_regionkey", i);
        ("n_comment", s 152);
      ];
    Schema.table "supplier" ~primary_key:[ "s_suppkey" ]
      [
        ("s_suppkey", i); ("s_name", s 25); ("s_address", s 40);
        ("s_nationkey", i); ("s_phone", s 15); ("s_acctbal", f);
        ("s_comment", s 101);
      ];
    Schema.table "customer" ~primary_key:[ "c_custkey" ]
      [
        ("c_custkey", i); ("c_name", s 25); ("c_address", s 40);
        ("c_nationkey", i); ("c_phone", s 15); ("c_acctbal", f);
        ("c_mktsegment", s 10); ("c_comment", s 117);
      ];
    Schema.table "part" ~primary_key:[ "p_partkey" ]
      [
        ("p_partkey", i); ("p_name", s 55); ("p_mfgr", s 25);
        ("p_brand", s 10); ("p_type", s 25); ("p_size", i);
        ("p_container", s 10); ("p_retailprice", f); ("p_comment", s 23);
      ];
    Schema.table "partsupp" ~primary_key:[ "ps_partkey"; "ps_suppkey" ]
      [
        ("ps_partkey", i); ("ps_suppkey", i); ("ps_availqty", i);
        ("ps_supplycost", f); ("ps_comment", s 199);
      ];
    Schema.table "orders" ~primary_key:[ "o_orderkey" ]
      [
        ("o_orderkey", i); ("o_custkey", i); ("o_orderstatus", s 1);
        ("o_totalprice", f); ("o_orderdate", s 10); ("o_orderpriority", s 15);
        ("o_clerk", s 15); ("o_shippriority", i); ("o_comment", s 79);
      ];
    Schema.table "lineitem" ~primary_key:[ "l_orderkey"; "l_linenumber" ]
      [
        ("l_orderkey", i); ("l_partkey", i); ("l_suppkey", i);
        ("l_linenumber", i); ("l_quantity", f); ("l_extendedprice", f);
        ("l_discount", f); ("l_tax", f); ("l_returnflag", s 1);
        ("l_linestatus", s 1); ("l_shipdate", s 10); ("l_commitdate", s 10);
        ("l_receiptdate", s 10); ("l_shipinstruct", s 25); ("l_shipmode", s 10);
        ("l_comment", s 44);
      ];
  ]

let row_counts ~sf =
  let scale base = int_of_float (float_of_int base *. sf) in
  [
    ("region", 5);
    ("nation", 25);
    ("supplier", scale 10_000);
    ("customer", scale 150_000);
    ("part", scale 200_000);
    ("partsupp", scale 800_000);
    ("orders", scale 1_500_000);
    ("lineitem", scale 6_000_000);
  ]

let database_mb ~sf =
  let size_of = Classification.default_sizes ~schema ~rows:(row_counts ~sf) in
  List.fold_left
    (fun acc tbl -> acc +. size_of (Fragment.Table tbl.Schema.tbl_name))
    0. schema

(* Footprints of the 19 evaluated queries (Q17, Q20, Q21 omitted) and their
   relative costs, modeling the measured execution-time weights of the
   paper's journal. *)
let query_defs :
    (string * float * (string * string list) list) list =
  [
    ( "Q1", 9.0,
      [ ("lineitem",
         [ "l_returnflag"; "l_linestatus"; "l_quantity"; "l_extendedprice";
           "l_discount"; "l_tax"; "l_shipdate" ]) ] );
    ( "Q2", 2.0,
      [
        ("part", [ "p_partkey"; "p_mfgr"; "p_size"; "p_type" ]);
        ("supplier",
         [ "s_suppkey"; "s_name"; "s_address"; "s_nationkey"; "s_phone";
           "s_acctbal"; "s_comment" ]);
        ("partsupp", [ "ps_partkey"; "ps_suppkey"; "ps_supplycost" ]);
        ("nation", [ "n_nationkey"; "n_name"; "n_regionkey" ]);
        ("region", [ "r_regionkey"; "r_name" ]);
      ] );
    ( "Q3", 6.0,
      [
        ("customer", [ "c_mktsegment"; "c_custkey" ]);
        ("orders", [ "o_orderkey"; "o_custkey"; "o_orderdate"; "o_shippriority" ]);
        ("lineitem", [ "l_orderkey"; "l_extendedprice"; "l_discount"; "l_shipdate" ]);
      ] );
    ( "Q4", 5.0,
      [
        ("orders", [ "o_orderkey"; "o_orderdate"; "o_orderpriority" ]);
        ("lineitem", [ "l_orderkey"; "l_commitdate"; "l_receiptdate" ]);
      ] );
    ( "Q5", 6.0,
      [
        ("customer", [ "c_custkey"; "c_nationkey" ]);
        ("orders", [ "o_orderkey"; "o_custkey"; "o_orderdate" ]);
        ("lineitem", [ "l_orderkey"; "l_suppkey"; "l_extendedprice"; "l_discount" ]);
        ("supplier", [ "s_suppkey"; "s_nationkey" ]);
        ("nation", [ "n_nationkey"; "n_name"; "n_regionkey" ]);
        ("region", [ "r_regionkey"; "r_name" ]);
      ] );
    ( "Q6", 4.0,
      [ ("lineitem", [ "l_shipdate"; "l_quantity"; "l_discount"; "l_extendedprice" ]) ] );
    ( "Q7", 6.0,
      [
        ("supplier", [ "s_suppkey"; "s_nationkey" ]);
        ("lineitem",
         [ "l_suppkey"; "l_orderkey"; "l_shipdate"; "l_extendedprice"; "l_discount" ]);
        ("orders", [ "o_orderkey"; "o_custkey" ]);
        ("customer", [ "c_custkey"; "c_nationkey" ]);
        ("nation", [ "n_nationkey"; "n_name" ]);
      ] );
    ( "Q8", 5.0,
      [
        ("part", [ "p_partkey"; "p_type" ]);
        ("supplier", [ "s_suppkey"; "s_nationkey" ]);
        ("lineitem",
         [ "l_partkey"; "l_suppkey"; "l_orderkey"; "l_extendedprice"; "l_discount" ]);
        ("orders", [ "o_orderkey"; "o_custkey"; "o_orderdate" ]);
        ("customer", [ "c_custkey"; "c_nationkey" ]);
        ("nation", [ "n_nationkey"; "n_regionkey"; "n_name" ]);
        ("region", [ "r_regionkey"; "r_name" ]);
      ] );
    ( "Q9", 12.0,
      [
        ("part", [ "p_partkey"; "p_name" ]);
        ("supplier", [ "s_suppkey"; "s_nationkey" ]);
        ("lineitem",
         [ "l_partkey"; "l_suppkey"; "l_orderkey"; "l_quantity";
           "l_extendedprice"; "l_discount" ]);
        ("partsupp", [ "ps_partkey"; "ps_suppkey"; "ps_supplycost" ]);
        ("orders", [ "o_orderkey"; "o_orderdate" ]);
        ("nation", [ "n_nationkey"; "n_name" ]);
      ] );
    ( "Q10", 6.0,
      [
        ("customer",
         [ "c_custkey"; "c_name"; "c_acctbal"; "c_address"; "c_phone";
           "c_comment"; "c_nationkey" ]);
        ("orders", [ "o_orderkey"; "o_custkey"; "o_orderdate" ]);
        ("lineitem", [ "l_orderkey"; "l_returnflag"; "l_extendedprice"; "l_discount" ]);
        ("nation", [ "n_nationkey"; "n_name" ]);
      ] );
    ( "Q11", 2.0,
      [
        ("partsupp", [ "ps_partkey"; "ps_suppkey"; "ps_availqty"; "ps_supplycost" ]);
        ("supplier", [ "s_suppkey"; "s_nationkey" ]);
        ("nation", [ "n_nationkey"; "n_name" ]);
      ] );
    ( "Q12", 5.0,
      [
        ("orders", [ "o_orderkey"; "o_orderpriority" ]);
        ("lineitem",
         [ "l_orderkey"; "l_shipmode"; "l_commitdate"; "l_receiptdate"; "l_shipdate" ]);
      ] );
    ( "Q13", 7.0,
      [
        ("customer", [ "c_custkey" ]);
        ("orders", [ "o_orderkey"; "o_custkey"; "o_comment" ]);
      ] );
    ( "Q14", 4.0,
      [
        ("lineitem", [ "l_partkey"; "l_shipdate"; "l_extendedprice"; "l_discount" ]);
        ("part", [ "p_partkey"; "p_type" ]);
      ] );
    ( "Q15", 5.0,
      [
        ("lineitem", [ "l_suppkey"; "l_shipdate"; "l_extendedprice"; "l_discount" ]);
        ("supplier", [ "s_suppkey"; "s_name"; "s_address"; "s_phone" ]);
      ] );
    ( "Q16", 3.0,
      [
        ("partsupp", [ "ps_partkey"; "ps_suppkey" ]);
        ("part", [ "p_partkey"; "p_brand"; "p_type"; "p_size" ]);
        ("supplier", [ "s_suppkey"; "s_comment" ]);
      ] );
    ( "Q18", 10.0,
      [
        ("customer", [ "c_custkey"; "c_name" ]);
        ("orders", [ "o_orderkey"; "o_custkey"; "o_orderdate"; "o_totalprice" ]);
        ("lineitem", [ "l_orderkey"; "l_quantity" ]);
      ] );
    ( "Q19", 4.0,
      [
        ("lineitem",
         [ "l_partkey"; "l_quantity"; "l_extendedprice"; "l_discount";
           "l_shipmode"; "l_shipinstruct" ]);
        ("part", [ "p_partkey"; "p_brand"; "p_container"; "p_size" ]);
      ] );
    ( "Q22", 3.0,
      [
        ("customer", [ "c_custkey"; "c_phone"; "c_acctbal" ]);
        ("orders", [ "o_custkey" ]);
      ] );
  ]

let specs ~sf =
  let size_of = Classification.default_sizes ~schema ~rows:(row_counts ~sf) in
  let footprint_mb footprint =
    List.fold_left
      (fun acc (table, cols) ->
        List.fold_left
          (fun acc column ->
            acc +. size_of (Fragment.Column { table; column }))
          acc cols)
      0. footprint
  in
  List.map
    (fun (id, cost, footprint) ->
      Spec.read id footprint ~weight:cost ~request_mb:(footprint_mb footprint))
    query_defs

let workload ~granularity ~sf =
  Spec.to_workload ~schema ~rows:(row_counts ~sf) ~granularity (specs ~sf)

let requests ~rng ~sf ~n = Spec.requests ~rng ~n (specs ~sf)

let random_allocation ~rng workload backend_list =
  Cdbs_core.Baselines.random_placement ~rng workload backend_list
