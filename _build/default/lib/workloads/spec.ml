module Schema = Cdbs_storage.Schema
module Fragment = Cdbs_core.Fragment
module Query_class = Cdbs_core.Query_class
module Workload = Cdbs_core.Workload
module Classification = Cdbs_core.Classification
module Request = Cdbs_cluster.Request

type kind = Read | Update

type class_spec = {
  id : string;
  kind : kind;
  footprint : (string * string list) list;
  weight : float;
  request_mb : float;
}

let read id footprint ~weight ~request_mb =
  { id; kind = Read; footprint; weight; request_mb }

let update id footprint ~weight ~request_mb =
  { id; kind = Update; footprint; weight; request_mb }

let columns_of schema table = function
  | [] -> (
      match Schema.find_table schema table with
      | Some tbl -> Schema.column_names tbl
      | None -> [])
  | cols -> cols

let fragments_of ~schema ~size_of ~granularity spec =
  List.fold_left
    (fun acc (table, cols) ->
      match granularity with
      | `Table ->
          let kind = Fragment.Table table in
          Fragment.Set.add { Fragment.kind; size = size_of kind } acc
      | `Column ->
          List.fold_left
            (fun acc column ->
              let kind = Fragment.Column { table; column } in
              Fragment.Set.add { Fragment.kind; size = size_of kind } acc)
            acc
            (columns_of schema table cols))
    Fragment.Set.empty spec.footprint

let to_workload ~schema ~rows ~granularity specs =
  let size_of = Classification.default_sizes ~schema ~rows in
  let mk spec =
    {
      Query_class.id = spec.id;
      kind = (match spec.kind with Read -> Query_class.Read | Update -> Query_class.Update);
      fragments = fragments_of ~schema ~size_of ~granularity spec;
      weight = spec.weight;
    }
  in
  let reads, updates = List.partition (fun s -> s.kind = Read) specs in
  Workload.normalize
    (Workload.make ~reads:(List.map mk reads) ~updates:(List.map mk updates))

let class_counts ~n specs =
  let raw =
    List.map
      (fun s ->
        let mb = max 1e-9 s.request_mb in
        (s, s.weight /. mb))
      specs
  in
  let total = List.fold_left (fun acc (_, r) -> acc +. r) 0. raw in
  if total <= 0. then List.map (fun (s, _) -> (s.id, 0)) raw
  else begin
    (* Largest-remainder apportionment of n requests. *)
    let quotas =
      List.map (fun (s, r) -> (s, r /. total *. float_of_int n)) raw
    in
    let floors = List.map (fun (s, q) -> (s, int_of_float (floor q), q -. floor q)) quotas in
    let used = List.fold_left (fun acc (_, f, _) -> acc + f) 0 floors in
    let remaining = n - used in
    let by_remainder =
      List.stable_sort (fun (_, _, ra) (_, _, rb) -> Stdlib.compare rb ra) floors
    in
    let with_extra =
      List.mapi
        (fun i (s, f, _) -> (s.id, if i < remaining then f + 1 else f))
        by_remainder
    in
    (* Restore the spec order. *)
    List.map
      (fun (s, _) ->
        (s.id, Option.value ~default:0 (List.assoc_opt s.id with_extra)))
      raw
  end

let requests ~rng ~n specs =
  let counts = class_counts ~n specs in
  let all =
    List.concat_map
      (fun spec ->
        let count = Option.value ~default:0 (List.assoc_opt spec.id counts) in
        List.init count (fun _ ->
            match spec.kind with
            | Read -> Request.read ~cost_mb:spec.request_mb spec.id
            | Update -> Request.update ~cost_mb:spec.request_mb spec.id))
      specs
  in
  let arr = Array.of_list all in
  Cdbs_util.Rng.shuffle rng arr;
  Array.to_list arr
