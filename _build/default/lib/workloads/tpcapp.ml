module Schema = Cdbs_storage.Schema
module Classification = Cdbs_core.Classification
module Fragment = Cdbs_core.Fragment

let s w = Schema.T_string w
let i = Schema.T_int
let f = Schema.T_float

let schema : Schema.t =
  [
    Schema.table "customer" ~primary_key:[ "c_id" ]
      [
        ("c_id", i); ("c_uname", s 20); ("c_passwd", s 20); ("c_fname", s 15);
        ("c_lname", s 15); ("c_email", s 50); ("c_since", s 10);
        ("c_balance", f); ("c_discount", f); ("c_addr_id", i);
      ];
    Schema.table "address" ~primary_key:[ "addr_id" ]
      [
        ("addr_id", i); ("addr_street1", s 40); ("addr_street2", s 40);
        ("addr_city", s 30); ("addr_state", s 20); ("addr_zip", s 10);
        ("addr_co_id", i);
      ];
    Schema.table "country" ~primary_key:[ "co_id" ]
      [
        ("co_id", i); ("co_name", s 50); ("co_exchange", f);
        ("co_currency", s 18);
      ];
    Schema.table "author" ~primary_key:[ "a_id" ]
      [
        ("a_id", i); ("a_fname", s 20); ("a_lname", s 20); ("a_mname", s 20);
        ("a_dob", s 10); ("a_bio", s 500);
      ];
    Schema.table "item" ~primary_key:[ "i_id" ]
      [
        ("i_id", i); ("i_title", s 60); ("i_a_id", i); ("i_pub_date", s 10);
        ("i_publisher", s 60); ("i_subject", s 60); ("i_desc", s 500);
        ("i_srp", f); ("i_cost", f); ("i_avail", s 10); ("i_page", i);
        ("i_backing", s 15);
      ];
    Schema.table "stock" ~primary_key:[ "st_i_id" ]
      [ ("st_i_id", i); ("st_qty", i); ("st_reorder", i) ];
    Schema.table "orders" ~primary_key:[ "o_id" ]
      [
        ("o_id", i); ("o_c_id", i); ("o_date", s 10); ("o_sub_total", f);
        ("o_tax", f); ("o_total", f); ("o_ship_type", s 10);
        ("o_ship_date", s 10); ("o_status", s 15);
      ];
    Schema.table "order_line" ~primary_key:[ "ol_id" ]
      [
        ("ol_id", i); ("ol_o_id", i); ("ol_i_id", i); ("ol_qty", i);
        ("ol_discount", f); ("ol_comment", s 110);
      ];
  ]

let row_counts ~eb =
  [
    ("customer", 400 * eb);
    ("address", 600 * eb);
    ("country", 92);
    ("author", 25_000);
    ("item", 100_000);
    ("stock", 100_000);
    ("orders", 1_000 * eb);
    ("order_line", 3_000 * eb);
  ]

let database_mb ~eb =
  let size_of = Classification.default_sizes ~schema ~rows:(row_counts ~eb) in
  List.fold_left
    (fun acc tbl -> acc +. size_of (Fragment.Table tbl.Schema.tbl_name))
    0. schema

let update_weight = 0.25
let order_line_weight = 0.13

(* Scale per-request scan volumes with the database size relative to the
   paper's EB=300 baseline. *)
let mb_scale eb = float_of_int eb /. 300.

(* Update classes: every queried table is also updated (paper Sec. 4.2), so
   their footprints use whole tables (empty column list = all columns).
   Order_Line itself is write-only — order lines are written at checkout
   and only aggregated offline — which is what lets the allocator place its
   13% write class exclusively on one backend (the scale-1.3 bound behind
   Eq. 30). *)
let update_specs eb =
  let u = mb_scale eb in
  [
    Spec.update "U_order_line"
      [ ("order_line", []) ]
      ~weight:order_line_weight ~request_mb:(0.025 *. sqrt u);
    Spec.update "U_orders" [ ("orders", []) ] ~weight:0.04
      ~request_mb:(0.025 *. sqrt u);
    Spec.update "U_catalog"
      [ ("item", []); ("stock", []); ("author", []) ]
      ~weight:0.05 ~request_mb:(0.04 *. sqrt u);
    Spec.update "U_customer"
      [ ("customer", []); ("address", []); ("country", []) ]
      ~weight:0.03 ~request_mb:(0.03 *. sqrt u);
  ]

let table_read_specs eb =
  let m = mb_scale eb in
  [
    (* The one complex read class: 50% of the weight from ~1.5% of the
       requests (a catalog-wide search/recommendation join). *)
    Spec.read "R_catalog_search"
      [ ("item", []); ("author", []) ]
      ~weight:0.50 ~request_mb:(3.0 *. m);
    Spec.read "R_shopping"
      [ ("item", []); ("stock", []) ]
      ~weight:0.10 ~request_mb:(0.25 *. m);
    Spec.read "R_customer_lookup"
      [ ("customer", []); ("address", []); ("country", []) ]
      ~weight:0.08 ~request_mb:(0.12 *. m);
    Spec.read "R_order_status"
      [ ("customer", []); ("orders", []) ]
      ~weight:0.07 ~request_mb:(0.15 *. m);
  ]

(* Column granularity splits the reads more finely (10 classes in total,
   paper Sec. 4.2); updates still cover whole tables, which is why the
   column-based allocation ends up allocating complete tables. *)
let column_read_specs eb =
  let m = mb_scale eb in
  [
    Spec.read "R_catalog_search"
      [
        ("item", [ "i_id"; "i_title"; "i_a_id"; "i_subject"; "i_srp" ]);
        ("author", [ "a_id"; "a_fname"; "a_lname" ]);
      ]
      ~weight:0.30 ~request_mb:(2.2 *. m);
    Spec.read "R_recommendations"
      [
        ("item", [ "i_id"; "i_title"; "i_a_id"; "i_publisher"; "i_pub_date" ]);
        ("author", [ "a_id"; "a_lname"; "a_bio" ]);
      ]
      ~weight:0.20 ~request_mb:(1.8 *. m);
    Spec.read "R_shopping"
      [
        ("item", [ "i_id"; "i_title"; "i_srp"; "i_avail" ]);
        ("stock", [ "st_i_id"; "st_qty" ]);
      ]
      ~weight:0.10 ~request_mb:(0.25 *. m);
    Spec.read "R_customer_lookup"
      [
        ("customer", [ "c_id"; "c_uname"; "c_passwd"; "c_fname"; "c_lname" ]);
        ("address", [ "addr_id"; "addr_street1"; "addr_city"; "addr_zip" ]);
        ("country", [ "co_id"; "co_name" ]);
      ]
      ~weight:0.08 ~request_mb:(0.12 *. m);
    Spec.read "R_order_status"
      [
        ("customer", [ "c_id"; "c_uname" ]);
        ("orders", [ "o_id"; "o_c_id"; "o_status"; "o_ship_date" ]);
      ]
      ~weight:0.04 ~request_mb:(0.15 *. m);
    Spec.read "R_order_history"
      [
        ("customer", [ "c_id" ]);
        ("orders", [ "o_id"; "o_c_id"; "o_date"; "o_total" ]);
      ]
      ~weight:0.03 ~request_mb:(0.12 *. m);
  ]

(* Large-scale profile (Fig. 4(i)): heavier updates, ~1:1 request mix. *)
let specs_large_scale ~eb =
  let m = mb_scale eb in
  [
    Spec.read "R_catalog_search"
      [ ("item", []); ("author", []) ]
      ~weight:0.30 ~request_mb:(2.0 *. m);
    Spec.read "R_shopping"
      [ ("item", []); ("stock", []) ]
      ~weight:0.15 ~request_mb:(0.5 *. m);
    Spec.read "R_order_status"
      [ ("customer", []); ("orders", []) ]
      ~weight:0.10 ~request_mb:(0.35 *. m);
    Spec.update "U_order_line" [ ("order_line", []) ] ~weight:0.25
      ~request_mb:(0.5 *. sqrt m);
    Spec.update "U_orders" [ ("orders", []) ] ~weight:0.12
      ~request_mb:(0.4 *. sqrt m);
    Spec.update "U_catalog"
      [ ("item", []); ("stock", []); ("author", []) ]
      ~weight:0.05 ~request_mb:(0.3 *. sqrt m);
    Spec.update "U_customer"
      [ ("customer", []); ("address", []); ("country", []) ]
      ~weight:0.03 ~request_mb:(0.3 *. sqrt m);
  ]

let workload_large_scale ~granularity ~eb =
  Spec.to_workload ~schema ~rows:(row_counts ~eb) ~granularity
    (specs_large_scale ~eb)

let requests_large_scale ~rng ~eb ~n =
  Spec.requests ~rng ~n (specs_large_scale ~eb)

let specs ~granularity ~eb =
  match granularity with
  | `Table -> table_read_specs eb @ update_specs eb
  | `Column -> column_read_specs eb @ update_specs eb

let workload ~granularity ~eb =
  Spec.to_workload ~schema ~rows:(row_counts ~eb) ~granularity
    (specs ~granularity ~eb)

let requests ~rng ~granularity ~eb ~n =
  Spec.requests ~rng ~n (specs ~granularity ~eb)
