(** Statistical workload specifications.

    The paper's evaluation workloads are characterized by their query
    classes: which tables/columns each class touches, what fraction of the
    total processing cost it produces, and how much work a single request
    of the class performs.  This module turns such a specification into a
    {!Cdbs_core.Workload} at table or column granularity and into request
    streams for the simulator, keeping the two consistent: the expected
    per-class share of simulated work matches the class weight. *)

type kind = Read | Update

type class_spec = {
  id : string;
  kind : kind;
  footprint : (string * string list) list;
      (** [(table, columns)]; an empty column list means every column of
          the table *)
  weight : float;  (** share of the total workload cost *)
  request_mb : float;
      (** megabytes of work a single request performs (an update touches a
          row, a scan touches the footprint) *)
}

val read :
  string -> (string * string list) list -> weight:float -> request_mb:float ->
  class_spec

val update :
  string -> (string * string list) list -> weight:float -> request_mb:float ->
  class_spec

val to_workload :
  schema:Cdbs_storage.Schema.t ->
  rows:(string * int) list ->
  granularity:[ `Table | `Column ] ->
  class_spec list ->
  Cdbs_core.Workload.t
(** Build the classified workload: fragments are tables or columns with
    sizes from {!Cdbs_core.Classification.default_sizes}; weights are
    normalized. *)

val requests :
  rng:Cdbs_util.Rng.t ->
  n:int ->
  class_spec list ->
  Cdbs_cluster.Request.t list
(** [n] requests whose per-class counts are proportional to
    [weight / request_mb] (largest-remainder rounding), shuffled, each
    carrying its class's [request_mb] as the cost override. *)

val class_counts : n:int -> class_spec list -> (string * int) list
(** The deterministic per-class request counts used by {!requests}. *)
