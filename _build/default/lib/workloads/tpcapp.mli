(** TPC-App-style transactional workload (paper Sec. 4.2).

    An online-bookseller database scaled by the number of emulated browsers
    (EB); the paper's workload statistics are reproduced exactly:

    - read : write request ratio about 1 : 7 by count, while reads carry
      about 75 % of the processing weight;
    - one complex read class produces 50 % of the workload with only
      ~1.5 % of the requests;
    - the Order_Line write class carries ≈13 % of the weight, setting the
      theoretical speedup cap of 10/1.3 ≈ 7.7 on 10 backends (Eq. 30);
    - every queried table is also updated, so column-granular classes span
      whole tables and the column classification differs from the
      table-based one only by splitting reads (8 table-based vs 10
      column-based classes). *)

val schema : Cdbs_storage.Schema.t

val row_counts : eb:int -> (string * int) list
(** Cardinalities for EB emulated browsers (EB = 300 gives the paper's
    ≈280 MB database; EB = 12000 gives ≈8 GB). *)

val database_mb : eb:int -> float

val specs :
  granularity:[ `Table | `Column ] -> eb:int -> Spec.class_spec list
(** 8 classes at table granularity, 10 at column granularity. *)

val workload :
  granularity:[ `Table | `Column ] -> eb:int -> Cdbs_core.Workload.t

val requests :
  rng:Cdbs_util.Rng.t ->
  granularity:[ `Table | `Column ] ->
  eb:int ->
  n:int ->
  Cdbs_cluster.Request.t list

val specs_large_scale : eb:int -> Spec.class_spec list
(** The EB = 12000 large-scale profile of Fig. 4(i): update-to-read request
    ratio about 1:1 with markedly more expensive updates (larger rows and
    indexes); reads carry 55 % of the weight. *)

val workload_large_scale :
  granularity:[ `Table | `Column ] -> eb:int -> Cdbs_core.Workload.t

val requests_large_scale :
  rng:Cdbs_util.Rng.t -> eb:int -> n:int -> Cdbs_cluster.Request.t list

val update_weight : float
(** Total update share of the workload (0.25), the serial fraction in the
    paper's Eq. 29. *)

val order_line_weight : float
(** Weight of the Order_Line write class (0.13), the bound behind Eq. 30. *)
