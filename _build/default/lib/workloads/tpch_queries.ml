(* SQL adapted to the supported subset: EXISTS/IN subqueries are unrolled
   into joins, views inlined, and multi-instance self-joins collapsed, while
   keeping each statement's table/column footprint identical to the class
   definitions in [Tpch.query_defs]. *)

let all =
  [
    ( "Q1",
      "SELECT l_returnflag, l_linestatus, sum(l_quantity), \
       sum(l_extendedprice), avg(l_discount), sum(l_tax) FROM lineitem \
       WHERE l_shipdate <= '1998-09-02' GROUP BY l_returnflag, l_linestatus \
       ORDER BY l_returnflag, l_linestatus" );
    ( "Q2",
      "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, \
       s_phone, s_comment FROM part JOIN partsupp ON p_partkey = ps_partkey \
       JOIN supplier ON s_suppkey = ps_suppkey JOIN nation ON s_nationkey = \
       n_nationkey JOIN region ON n_regionkey = r_regionkey WHERE p_size = \
       15 AND p_type LIKE '%BRASS' AND r_name = 'EUROPE' AND ps_supplycost \
       < 500 ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100" );
    ( "Q3",
      "SELECT o_orderkey, sum(l_extendedprice * l_discount) AS revenue, \
       o_orderdate, o_shippriority FROM customer JOIN orders ON c_custkey = \
       o_custkey JOIN lineitem ON l_orderkey = o_orderkey WHERE \
       c_mktsegment = 'BUILDING' AND o_orderdate < '1995-03-15' AND \
       l_shipdate > '1995-03-15' GROUP BY o_orderkey, o_orderdate, \
       o_shippriority ORDER BY revenue DESC LIMIT 10" );
    ( "Q4",
      "SELECT o_orderpriority, count(*) AS order_count FROM orders JOIN \
       lineitem ON l_orderkey = o_orderkey WHERE o_orderdate >= \
       '1993-07-01' AND o_orderdate < '1993-10-01' AND l_commitdate < \
       l_receiptdate GROUP BY o_orderpriority ORDER BY o_orderpriority" );
    ( "Q5",
      "SELECT n_name, sum(l_extendedprice * l_discount) AS revenue FROM \
       customer JOIN orders ON c_custkey = o_custkey JOIN lineitem ON \
       l_orderkey = o_orderkey JOIN supplier ON l_suppkey = s_suppkey JOIN \
       nation ON c_nationkey = n_nationkey JOIN region ON n_regionkey = \
       r_regionkey WHERE r_name = 'ASIA' AND o_orderdate >= '1994-01-01' \
       AND s_nationkey = n_nationkey GROUP BY n_name ORDER BY revenue DESC" );
    ( "Q6",
      "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem \
       WHERE l_shipdate >= '1994-01-01' AND l_discount BETWEEN 0.05 AND \
       0.07 AND l_quantity < 24" );
    ( "Q7",
      "SELECT n_name, sum(l_extendedprice * l_discount) AS revenue FROM \
       supplier JOIN lineitem ON s_suppkey = l_suppkey JOIN orders ON \
       o_orderkey = l_orderkey JOIN customer ON c_custkey = o_custkey JOIN \
       nation ON s_nationkey = n_nationkey WHERE l_shipdate BETWEEN \
       '1995-01-01' AND '1996-12-31' AND c_nationkey = n_nationkey GROUP BY \
       n_name ORDER BY n_name" );
    ( "Q8",
      "SELECT n_name, sum(l_extendedprice * l_discount) AS volume FROM part \
       JOIN lineitem ON p_partkey = l_partkey JOIN supplier ON s_suppkey = \
       l_suppkey JOIN orders ON o_orderkey = l_orderkey JOIN customer ON \
       c_custkey = o_custkey JOIN nation ON s_nationkey = n_nationkey JOIN \
       region ON n_regionkey = r_regionkey WHERE r_name = 'AMERICA' AND \
       p_type = 'ECONOMY ANODIZED STEEL' AND o_orderdate >= '1995-01-01' \
       AND c_nationkey = n_nationkey GROUP BY n_name" );
    ( "Q9",
      "SELECT n_name, o_orderdate, sum(l_extendedprice * l_discount - \
       ps_supplycost * l_quantity) AS profit FROM part JOIN lineitem ON \
       p_partkey = l_partkey JOIN partsupp ON ps_partkey = l_partkey JOIN \
       supplier ON s_suppkey = l_suppkey JOIN orders ON o_orderkey = \
       l_orderkey JOIN nation ON s_nationkey = n_nationkey WHERE p_name \
       LIKE '%green%' AND ps_suppkey = l_suppkey GROUP BY n_name, \
       o_orderdate" );
    ( "Q10",
      "SELECT c_custkey, c_name, sum(l_extendedprice * l_discount) AS \
       revenue, c_acctbal, n_name, c_address, c_phone, c_comment FROM \
       customer JOIN orders ON c_custkey = o_custkey JOIN lineitem ON \
       l_orderkey = o_orderkey JOIN nation ON c_nationkey = n_nationkey \
       WHERE o_orderdate >= '1993-10-01' AND l_returnflag = 'R' GROUP BY \
       c_custkey, c_name, c_acctbal, c_address, c_phone, c_comment, n_name \
       ORDER BY revenue DESC LIMIT 20" );
    ( "Q11",
      "SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS total_value \
       FROM partsupp JOIN supplier ON ps_suppkey = s_suppkey JOIN nation ON \
       s_nationkey = n_nationkey WHERE n_name = 'GERMANY' GROUP BY \
       ps_partkey ORDER BY total_value DESC" );
    ( "Q12",
      "SELECT l_shipmode, count(*) AS line_count FROM orders JOIN lineitem \
       ON o_orderkey = l_orderkey WHERE l_shipmode IN ('MAIL', 'SHIP') AND \
       l_commitdate < l_receiptdate AND l_shipdate < l_commitdate AND \
       o_orderpriority <> '1-URGENT' GROUP BY l_shipmode ORDER BY \
       l_shipmode" );
    ( "Q13",
      "SELECT c_custkey, count(o_orderkey) AS c_count FROM customer JOIN \
       orders ON c_custkey = o_custkey WHERE NOT o_comment LIKE \
       '%special%requests%' GROUP BY c_custkey ORDER BY c_count DESC" );
    ( "Q14",
      "SELECT sum(l_extendedprice * l_discount) AS promo_revenue, p_type \
       FROM lineitem JOIN part ON l_partkey = p_partkey WHERE l_shipdate >= \
       '1995-09-01' GROUP BY p_type" );
    ( "Q15",
      "SELECT s_suppkey, s_name, s_address, s_phone, sum(l_extendedprice * \
       l_discount) AS total_revenue FROM supplier JOIN lineitem ON \
       s_suppkey = l_suppkey WHERE l_shipdate >= '1996-01-01' GROUP BY \
       s_suppkey, s_name, s_address, s_phone ORDER BY total_revenue DESC \
       LIMIT 1" );
    ( "Q16",
      "SELECT p_brand, p_type, p_size, count(ps_suppkey) AS supplier_cnt \
       FROM partsupp JOIN part ON p_partkey = ps_partkey JOIN supplier ON \
       s_suppkey = ps_suppkey WHERE p_brand <> 'Brand#45' AND NOT s_comment \
       LIKE '%Customer%Complaints%' GROUP BY p_brand, p_type, p_size ORDER \
       BY supplier_cnt DESC" );
    ( "Q18",
      "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
       sum(l_quantity) FROM customer JOIN orders ON c_custkey = o_custkey \
       JOIN lineitem ON o_orderkey = l_orderkey GROUP BY c_name, c_custkey, \
       o_orderkey, o_orderdate, o_totalprice ORDER BY o_totalprice DESC, \
       o_orderdate LIMIT 100" );
    ( "Q19",
      "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem \
       JOIN part ON p_partkey = l_partkey WHERE p_brand = 'Brand#12' AND \
       p_container IN ('SM CASE', 'SM BOX') AND l_quantity BETWEEN 1 AND 11 \
       AND p_size BETWEEN 1 AND 5 AND l_shipmode IN ('AIR', 'AIR REG') AND \
       l_shipinstruct = 'DELIVER IN PERSON'" );
    ( "Q22",
      "SELECT c_custkey, c_phone, c_acctbal FROM customer JOIN orders ON \
       c_custkey = o_custkey WHERE c_acctbal > 0 ORDER BY c_custkey LIMIT \
       100" );
  ]

let sql id = List.assoc_opt id all

let journal ~rng ~n ~sf =
  let journal = Cdbs_core.Journal.create () in
  let specs = Tpch.specs ~sf in
  let counts = Spec.class_counts ~n specs in
  let entries =
    List.concat_map
      (fun (spec : Spec.class_spec) ->
        match sql spec.Spec.id with
        | None -> []
        | Some text ->
            let count =
              Option.value ~default:0 (List.assoc_opt spec.Spec.id counts)
            in
            if count = 0 then []
            else
              (* Spread the class's total cost over its executions so the
                 classified weights reproduce the spec weights. *)
              let cost = spec.Spec.weight /. float_of_int count in
              List.init count (fun _ -> (text, cost)))
      specs
  in
  let arr = Array.of_list entries in
  Cdbs_util.Rng.shuffle rng arr;
  Array.iteri
    (fun i (sql, cost) ->
      Cdbs_core.Journal.record_at journal ~at:(float_of_int i) ~sql ~cost)
    arr;
  journal
