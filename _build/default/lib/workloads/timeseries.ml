module Schema = Cdbs_storage.Schema
module Journal = Cdbs_core.Journal
module Classification = Cdbs_core.Classification
module Rng = Cdbs_util.Rng

let s w = Schema.T_string w
let i = Schema.T_int

let schema : Schema.t =
  [
    Schema.table "events" ~primary_key:[ "ev_id" ]
      [
        ("ev_id", i); ("ev_day", i); ("ev_user", i); ("ev_kind", s 12);
        ("ev_payload", s 200);
      ];
    Schema.table "users" ~primary_key:[ "u_id" ]
      [ ("u_id", i); ("u_name", s 30) ];
    Schema.table "kinds" ~primary_key:[ "k_id" ]
      [ ("k_id", i); ("k_label", s 20) ];
  ]

let row_counts = [ ("events", 2_000_000); ("users", 50_000); ("kinds", 40) ]
let splits = [ ("events", "ev_day", [ 90.; 180.; 270. ]) ]

(* Statement templates: (relative frequency, cost per execution, SQL).
   Reads cover all four quarters with different intensities; the three
   maintenance update classes live in three DISJOINT ranges — appends at
   the head, corrections in the third quarter, retention deletes at the
   tail.  Table-granular classification chains all of them to every reader
   of [events]; range classification keeps each one local. *)
let templates =
  [
    (45., 0.5,
     "SELECT ev_id, ev_kind, ev_payload FROM events WHERE ev_day >= 280");
    (12., 1.3,
     "SELECT ev_id, ev_user FROM events WHERE ev_day >= 185 AND ev_day <= 265");
    (10., 1.0, "SELECT ev_id, ev_payload FROM events WHERE ev_day < 85");
    (8., 1.0,
     "SELECT ev_id, ev_kind FROM events WHERE ev_day BETWEEN 95 AND 175");
    (10., 0.3, "SELECT u_id, u_name FROM users WHERE u_id = 7");
    (15., 0.5,
     "INSERT INTO events (ev_id, ev_day, ev_user, ev_kind, ev_payload) \
      VALUES (1, 300, 1, 'click', 'x')");
    (5., 0.8, "DELETE FROM events WHERE ev_day <= 80");
    (4., 0.9,
     "UPDATE events SET ev_payload = 'fixed' WHERE ev_day >= 95 AND ev_day \
      <= 175");
  ]

let journal ~rng ~n =
  let total_freq = List.fold_left (fun acc (f, _, _) -> acc +. f) 0. templates in
  let journal = Journal.create () in
  for at = 0 to n - 1 do
    let pick = Rng.float rng total_freq in
    let rec choose acc = function
      | [ (_, cost, sql) ] -> (cost, sql)
      | (f, cost, sql) :: rest ->
          if pick < acc +. f then (cost, sql) else choose (acc +. f) rest
      | [] -> assert false
    in
    let cost, sql = choose 0. templates in
    Journal.record_at journal ~at:(float_of_int at) ~sql ~cost
  done;
  journal

let workload ~granularity ~rng ~n =
  let size_of = Classification.default_sizes ~schema ~rows:row_counts in
  let g =
    match granularity with
    | `Table -> Classification.By_table
    | `Column -> Classification.By_column
    | `Predicate -> Classification.By_predicate splits
  in
  Cdbs_core.Workload.normalize
    (Classification.classify ~schema ~size_of g (journal ~rng ~n))
