lib/lp/hungarian.mli:
