lib/lp/simplex.mli:
