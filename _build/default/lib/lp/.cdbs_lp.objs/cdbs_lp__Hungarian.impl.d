lib/lp/hungarian.ml: Array
