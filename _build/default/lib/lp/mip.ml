type problem = {
  lp : Simplex.problem;
  integer_vars : int list;
}

type solution = {
  value : float;
  assignment : float array;
  proved_optimal : bool;
  nodes_explored : int;
}

type outcome = Solved of solution | No_solution

let int_tol = 1e-6

let binary vars =
  List.map (fun j -> Simplex.row [ (j, 1.) ] Simplex.Le 1.) vars

(* Pick the integer variable whose relaxation value is closest to 0.5
   (most fractional first). *)
let branch_var integer_vars (x : float array) =
  let best = ref None and best_frac = ref 0. in
  List.iter
    (fun j ->
      let f = abs_float (x.(j) -. Float.round x.(j)) in
      if f > int_tol && f > !best_frac then begin
        best := Some j;
        best_frac := f
      end)
    integer_vars;
  !best

let objective_value obj x =
  let acc = ref 0. in
  Array.iteri (fun j c -> acc := !acc +. (c *. x.(j))) obj;
  !acc

let solve ?(node_limit = 200_000) ?incumbent (p : problem) : outcome =
  let best_value = ref infinity in
  let best_point = ref None in
  (match incumbent with
  | Some x when Simplex.feasible p.lp x ->
      best_value := objective_value p.lp.objective x;
      best_point := Some (Array.copy x)
  | _ -> ());
  let nodes = ref 0 in
  let exhausted = ref false in
  (* [extra] is the list of bound rows accumulated along the current branch. *)
  let rec explore extra =
    if !nodes >= node_limit then exhausted := true
    else begin
      incr nodes;
      let lp = { p.lp with Simplex.rows = extra @ p.lp.rows } in
      match Simplex.solve lp with
      | Simplex.Infeasible | Simplex.Unbounded -> ()
      | Simplex.Optimal { value; solution } ->
          if value < !best_value -. 1e-9 then begin
            match branch_var p.integer_vars solution with
            | None ->
                best_value := value;
                best_point := Some (Array.copy solution)
            | Some j ->
                let v = solution.(j) in
                let lo = floor v and hi = ceil v in
                (* Explore the side closer to the relaxation value first. *)
                let down () =
                  explore (Simplex.row [ (j, 1.) ] Simplex.Le lo :: extra)
                and up () =
                  explore (Simplex.row [ (j, 1.) ] Simplex.Ge hi :: extra)
                in
                if v -. lo <= hi -. v then begin
                  down ();
                  up ()
                end
                else begin
                  up ();
                  down ()
                end
          end
    end
  in
  explore [];
  match !best_point with
  | None -> No_solution
  | Some assignment ->
      (* Snap integer variables exactly. *)
      List.iter
        (fun j -> assignment.(j) <- Float.round assignment.(j))
        p.integer_vars;
      Solved
        {
          value = !best_value;
          assignment;
          proved_optimal = not !exhausted;
          nodes_explored = !nodes;
        }
