(** Hungarian (Kuhn–Munkres) algorithm for the assignment problem.

    Computes a minimum-cost perfect matching of an [n x n] cost matrix in
    O(n³) using the potentials formulation.  The paper uses it for the
    physical-allocation step (Sec. 3.4): matching newly computed backends to
    currently installed backends so the amount of data moved is minimal, and
    for elastic scale-out/scale-in where virtual empty backends pad the
    smaller side. *)

val solve : float array array -> int array * float
(** [solve cost] returns [(assignment, total)] where [assignment.(i) = j]
    means row [i] is matched to column [j], and [total] is the summed cost.
    Raises [Invalid_argument] if the matrix is empty or not square. *)

val solve_rectangular : float array array -> int array * float
(** Like {!solve} but for an [r x c] matrix: the smaller dimension is padded
    with zero-cost virtual rows/columns.  Entries of the result for virtual
    rows are omitted; for real rows matched to virtual columns the value is
    [-1].  The returned array always has length [r]. *)
