(** Dense two-phase primal simplex solver.

    Solves linear programs of the form

    {v minimize    c . x
       subject to  a_i . x (<= | >= | =) b_i   for every row i
                   x >= 0 v}

    All variables are implicitly non-negative; upper bounds must be added as
    explicit [Le] rows.  The implementation uses a standard tableau with
    Bland's anti-cycling rule as a fallback after a fixed number of Dantzig
    pivots, which keeps it both fast on typical inputs and guaranteed to
    terminate. *)

type relation =
  | Le  (** row . x <= rhs *)
  | Ge  (** row . x >= rhs *)
  | Eq  (** row . x = rhs *)

type row = {
  coeffs : (int * float) list;  (** sparse [(variable index, coefficient)] *)
  relation : relation;
  rhs : float;
}

type problem = {
  num_vars : int;  (** number of structural variables, indexed [0 .. n-1] *)
  objective : float array;  (** minimization objective, length [num_vars] *)
  rows : row list;
}

type outcome =
  | Optimal of { value : float; solution : float array }
      (** optimal objective value and one optimal point *)
  | Infeasible  (** the constraint system admits no solution *)
  | Unbounded  (** the objective is unbounded below on the feasible set *)

val solve : problem -> outcome
(** [solve p] minimizes [p.objective] subject to [p.rows].  To maximize,
    negate the objective and the resulting value. *)

val row : (int * float) list -> relation -> float -> row
(** [row coeffs rel rhs] builds a constraint row; convenience constructor. *)

val feasible : ?eps:float -> problem -> float array -> bool
(** [feasible p x] checks whether point [x] satisfies every row of [p]
    (and non-negativity) within tolerance [eps] (default [1e-6]).  Used by
    tests to validate solver output independently of the tableau. *)
