(* Potentials formulation of the Kuhn–Munkres algorithm, O(n^3).
   Internally 1-indexed: index 0 of [way]/[p] is a virtual row/column used
   to bootstrap each augmenting path. *)

let solve (cost : float array array) =
  let n = Array.length cost in
  if n = 0 then invalid_arg "Hungarian.solve: empty matrix";
  Array.iter
    (fun r ->
      if Array.length r <> n then
        invalid_arg "Hungarian.solve: matrix not square")
    cost;
  let u = Array.make (n + 1) 0. in
  let v = Array.make (n + 1) 0. in
  let p = Array.make (n + 1) 0 in
  (* p.(j) = row matched to column j *)
  let way = Array.make (n + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (n + 1) infinity in
    let used = Array.make (n + 1) false in
    let continue = ref true in
    while !continue do
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref infinity in
      let j1 = ref 0 in
      for j = 1 to n do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to n do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    (* Augment along the alternating path. *)
    let j = ref !j0 in
    while !j <> 0 do
      let j1 = way.(!j) in
      p.(!j) <- p.(j1);
      j := j1
    done
  done;
  let assignment = Array.make n (-1) in
  for j = 1 to n do
    if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
  done;
  let total = ref 0. in
  Array.iteri (fun i j -> total := !total +. cost.(i).(j)) assignment;
  (assignment, !total)

let solve_rectangular (cost : float array array) =
  let r = Array.length cost in
  if r = 0 then invalid_arg "Hungarian.solve_rectangular: empty matrix";
  let c = Array.length cost.(0) in
  Array.iter
    (fun line ->
      if Array.length line <> c then
        invalid_arg "Hungarian.solve_rectangular: ragged matrix")
    cost;
  let n = max r c in
  let padded =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i < r && j < c then cost.(i).(j) else 0.))
  in
  let assignment, _ = solve padded in
  let result = Array.make r (-1) in
  let total = ref 0. in
  for i = 0 to r - 1 do
    let j = assignment.(i) in
    if j < c then begin
      result.(i) <- j;
      total := !total +. cost.(i).(j)
    end
  done;
  (result, !total)
