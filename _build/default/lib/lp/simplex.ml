type relation = Le | Ge | Eq

type row = {
  coeffs : (int * float) list;
  relation : relation;
  rhs : float;
}

type problem = {
  num_vars : int;
  objective : float array;
  rows : row list;
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

let row coeffs relation rhs = { coeffs; relation; rhs }

let eps = 1e-9

(* Internal tableau:
   - [a] is an [m x total] coefficient matrix, [b] the rhs (always >= 0 once
     the basis is feasible), [basis.(i)] the basic variable of row [i].
   - [obj] is the current objective row (reduced costs) and [obj_rhs] the
     negated objective value, maintained by the same pivots as the rows. *)
type tableau = {
  m : int;
  total : int;
  a : float array array;
  b : float array;
  basis : int array;
  obj : float array;
  mutable obj_rhs : float;
}

let pivot t ~prow ~pcol =
  let arow = t.a.(prow) in
  let p = arow.(pcol) in
  for j = 0 to t.total - 1 do
    arow.(j) <- arow.(j) /. p
  done;
  t.b.(prow) <- t.b.(prow) /. p;
  for i = 0 to t.m - 1 do
    if i <> prow then begin
      let f = t.a.(i).(pcol) in
      if abs_float f > eps then begin
        let r = t.a.(i) in
        for j = 0 to t.total - 1 do
          r.(j) <- r.(j) -. (f *. arow.(j))
        done;
        t.b.(i) <- t.b.(i) -. (f *. t.b.(prow))
      end
      else t.a.(i).(pcol) <- 0.
    end
  done;
  let f = t.obj.(pcol) in
  if abs_float f > eps then begin
    for j = 0 to t.total - 1 do
      t.obj.(j) <- t.obj.(j) -. (f *. arow.(j))
    done;
    t.obj_rhs <- t.obj_rhs -. (f *. t.b.(prow))
  end
  else t.obj.(pcol) <- 0.;
  t.basis.(prow) <- pcol

(* Ratio test: among rows with a positive pivot-column entry, pick the one
   minimizing b_i / a_ip; ties broken by smallest basic-variable index
   (lexicographic enough to pair with Bland's rule). *)
let leaving_row t pcol =
  let best = ref (-1) in
  let best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let aip = t.a.(i).(pcol) in
    if aip > eps then begin
      let ratio = t.b.(i) /. aip in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps
            && !best >= 0
            && t.basis.(i) < t.basis.(!best))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  !best

(* Entering column.  Dantzig's rule for the first [dantzig_limit] iterations,
   then Bland's rule (smallest index with negative reduced cost) which
   guarantees termination. *)
let entering_col t ~bland ~allowed =
  if bland then begin
    let rec find j =
      if j >= t.total then -1
      else if allowed j && t.obj.(j) < -.eps then j
      else find (j + 1)
    in
    find 0
  end
  else begin
    let best = ref (-1) and best_v = ref (-.eps) in
    for j = 0 to t.total - 1 do
      if allowed j && t.obj.(j) < !best_v then begin
        best := j;
        best_v := t.obj.(j)
      end
    done;
    !best
  end

type iterate_result = Opt | Unb

let iterate t ~allowed =
  let dantzig_limit = 20 * (t.m + t.total) in
  let rec loop iter =
    let bland = iter > dantzig_limit in
    match entering_col t ~bland ~allowed with
    | -1 -> Opt
    | pcol -> (
        match leaving_row t pcol with
        | -1 -> Unb
        | prow ->
            pivot t ~prow ~pcol;
            loop (iter + 1))
  in
  loop 0

let solve (p : problem) : outcome =
  if Array.length p.objective <> p.num_vars then
    invalid_arg "Simplex.solve: objective length <> num_vars";
  let rows = Array.of_list p.rows in
  let m = Array.length rows in
  (* Normalize: rhs >= 0 by flipping rows. *)
  let rows =
    Array.map
      (fun r ->
        if r.rhs < 0. then
          {
            coeffs = List.map (fun (j, c) -> (j, -.c)) r.coeffs;
            relation =
              (match r.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = -.r.rhs;
          }
        else r)
      rows
  in
  let n = p.num_vars in
  (* Column layout: structural [0..n-1], one slack/surplus per Le/Ge row,
     then one artificial per Ge/Eq row. *)
  let num_slack =
    Array.fold_left
      (fun acc r -> match r.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let num_art =
    Array.fold_left
      (fun acc r -> match r.relation with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let total = n + num_slack + num_art in
  let a = Array.make_matrix m total 0. in
  let b = Array.make m 0. in
  let basis = Array.make m (-1) in
  let slack_at = ref n and art_at = ref (n + num_slack) in
  Array.iteri
    (fun i r ->
      List.iter
        (fun (j, c) ->
          if j < 0 || j >= n then invalid_arg "Simplex.solve: var index";
          a.(i).(j) <- a.(i).(j) +. c)
        r.coeffs;
      b.(i) <- r.rhs;
      (match r.relation with
      | Le ->
          a.(i).(!slack_at) <- 1.;
          basis.(i) <- !slack_at;
          incr slack_at
      | Ge ->
          a.(i).(!slack_at) <- -1.;
          incr slack_at
      | Eq -> ());
      match r.relation with
      | Ge | Eq ->
          a.(i).(!art_at) <- 1.;
          basis.(i) <- !art_at;
          incr art_at
      | Le -> ())
    rows;
  let t = { m; total; a; b; basis; obj = Array.make total 0.; obj_rhs = 0. } in
  (* Phase 1: minimize the sum of artificials.  The phase-1 objective row is
     the negated sum of rows whose basic variable is artificial. *)
  if num_art > 0 then begin
    for j = n + num_slack to total - 1 do
      t.obj.(j) <- 1.
    done;
    for i = 0 to m - 1 do
      if basis.(i) >= n + num_slack then begin
        for j = 0 to total - 1 do
          t.obj.(j) <- t.obj.(j) -. a.(i).(j)
        done;
        t.obj_rhs <- t.obj_rhs -. b.(i)
      end
    done;
    (match iterate t ~allowed:(fun _ -> true) with
    | Unb -> assert false (* phase-1 objective is bounded below by 0 *)
    | Opt -> ());
    if -.t.obj_rhs > 1e-7 then raise Exit
  end;
  (* Drive remaining artificials out of the basis when possible; rows where
     it is impossible are redundant and can stay (their artificial is 0). *)
  for i = 0 to m - 1 do
    if t.basis.(i) >= n + num_slack then begin
      let rec find j =
        if j >= n + num_slack then ()
        else if abs_float t.a.(i).(j) > 1e-7 then pivot t ~prow:i ~pcol:j
        else find (j + 1)
      in
      find 0
    end
  done;
  (* Phase 2: install the real objective expressed over the current basis. *)
  Array.fill t.obj 0 total 0.;
  t.obj_rhs <- 0.;
  Array.blit p.objective 0 t.obj 0 n;
  for i = 0 to m - 1 do
    let bv = t.basis.(i) in
    let c = if bv < n then p.objective.(bv) else 0. in
    if abs_float c > eps then begin
      for j = 0 to total - 1 do
        t.obj.(j) <- t.obj.(j) -. (c *. t.a.(i).(j))
      done;
      t.obj_rhs <- t.obj_rhs -. (c *. t.b.(i))
    end
  done;
  let artificial j = j >= n + num_slack in
  match iterate t ~allowed:(fun j -> not (artificial j)) with
  | Unb -> Unbounded
  | Opt ->
      let solution = Array.make n 0. in
      for i = 0 to m - 1 do
        if t.basis.(i) < n then solution.(t.basis.(i)) <- t.b.(i)
      done;
      let value =
        Array.to_list solution
        |> List.mapi (fun j x -> p.objective.(j) *. x)
        |> List.fold_left ( +. ) 0.
      in
      Optimal { value; solution }

let solve p = try solve p with Exit -> Infeasible

let feasible ?(eps = 1e-6) (p : problem) (x : float array) =
  Array.length x = p.num_vars
  && Array.for_all (fun v -> v >= -.eps) x
  && List.for_all
       (fun r ->
         let lhs =
           List.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) 0. r.coeffs
         in
         match r.relation with
         | Le -> lhs <= r.rhs +. eps
         | Ge -> lhs >= r.rhs -. eps
         | Eq -> abs_float (lhs -. r.rhs) <= eps)
       p.rows
