(** Branch-and-bound mixed-integer programming on top of {!Simplex}.

    Minimizes a linear objective where a designated subset of the variables
    must take integer values.  Binary variables are expressed as integer
    variables with an explicit [x <= 1] row (added automatically by
    {!val:binary}).

    The solver performs depth-first branch and bound with best-bound pruning
    against the current incumbent.  An optional node budget turns it into an
    anytime solver: when the budget is exhausted the best incumbent found so
    far is returned with [proved_optimal = false] — mirroring how commercial
    solvers are used on the paper's larger instances. *)

type problem = {
  lp : Simplex.problem;  (** the LP relaxation *)
  integer_vars : int list;  (** indices that must be integral *)
}

type solution = {
  value : float;  (** objective value of the incumbent *)
  assignment : float array;  (** incumbent point (integral on integer vars) *)
  proved_optimal : bool;  (** false when the node budget was exhausted *)
  nodes_explored : int;
}

type outcome = Solved of solution | No_solution

val binary : int list -> Simplex.row list
(** [binary vars] returns the [x_j <= 1] rows making each listed variable
    binary once it is also declared in [integer_vars]. *)

val solve :
  ?node_limit:int -> ?incumbent:float array -> problem -> outcome
(** [solve p] minimizes [p.lp] with integrality on [p.integer_vars].
    [node_limit] bounds the number of branch-and-bound nodes (default
    [200_000]).  [incumbent], if given, must be a feasible integral point;
    it seeds the upper bound so pruning starts immediately (the paper seeds
    the exact solver with the greedy allocation the same way). *)
