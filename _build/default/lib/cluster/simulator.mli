(** Cluster execution simulator.

    Replaces the paper's physical 16-node cluster: requests are dispatched
    by the least-pending-first scheduler onto single-server FIFO backends
    whose service times come from {!Cost_model}.  Reads run on one backend;
    updates run on every backend holding the touched data (ROWA).

    Two drive modes:
    - {!run_batch} saturates the cluster with a fixed request list (all
      available immediately) and reports makespan-based throughput — the
      mode behind the throughput/speedup figures;
    - {!run_open} replays timestamped arrivals and reports response times —
      the mode behind the elastic-scaling experiment (Fig. 5). *)

type config = {
  cost : Cost_model.params;
  speeds : float array;
      (** per-backend speed relative to a reference node; [ [|1.;1.|] ] is
          a homogeneous 2-node cluster *)
  protocol : Protocol.t;
      (** how updates propagate to replicas (default {!Protocol.Rowa}) *)
}

val homogeneous_config :
  ?cost:Cost_model.params -> ?protocol:Protocol.t -> int -> config

type outcome = {
  completed : int;  (** requests fully processed *)
  makespan : float;  (** time the last backend went idle *)
  throughput : float;  (** completed / makespan *)
  avg_response : float;  (** mean request response time (completion - arrival) *)
  max_response : float;
  busy : float array;  (** per-backend busy seconds *)
  utilization : float array;  (** busy / makespan *)
  errors : int;  (** requests that could not be routed *)
}

val run_batch :
  config -> Cdbs_core.Allocation.t -> Request.t list -> outcome
(** All requests offered at time 0, dispatched in list order. *)

val run_open :
  config -> Cdbs_core.Allocation.t -> Request.t list -> outcome
(** Requests dispatched at their [arrival] timestamps (list must be sorted
    by arrival). *)

val run_open_with_failures :
  config ->
  Cdbs_core.Allocation.t ->
  Request.t list ->
  failures:(float * int) list ->
  outcome
(** Like {!run_open}, but each [(time, backend)] failure takes the backend
    out of service from that time on.  Requests that no surviving backend
    can serve count as [errors] — zero for an adequately k-safe allocation
    (Appendix C). *)

val class_mb : Cdbs_core.Allocation.t -> Request.t -> float
(** The megabytes a request's class scans (its fragment footprint, or the
    request's override). *)
