type params = {
  base_latency : float;
  scan_seconds_per_mb : float;
  cache_mb : float;
  cold_penalty : float;
  update_factor : float;
  sync_overhead : float;
}

let default =
  {
    base_latency = 0.01;
    scan_seconds_per_mb = 0.001;
    cache_mb = 500.;
    cold_penalty = 1.35;
    update_factor = 1.0;
    sync_overhead = 0.02;
  }

let cache_factor p ~resident_mb =
  if resident_mb <= p.cache_mb || resident_mb <= 0. then 1.
  else
    let spill = (resident_mb -. p.cache_mb) /. resident_mb in
    1. +. ((p.cold_penalty -. 1.) *. spill)

let service_time p ~class_mb ~resident_mb ~speed ~is_update ~replicas =
  if speed <= 0. then invalid_arg "Cost_model.service_time: speed <= 0";
  if replicas < 1 then invalid_arg "Cost_model.service_time: replicas < 1";
  let scan = class_mb *. p.scan_seconds_per_mb *. cache_factor p ~resident_mb in
  let t = p.base_latency +. scan in
  let t =
    if is_update then
      t *. p.update_factor
      *. (1. +. (p.sync_overhead *. float_of_int (replicas - 1)))
    else t
  in
  t /. speed
