module Schema = Cdbs_storage.Schema
module Database = Cdbs_storage.Database
module Executor = Cdbs_storage.Executor
module Datagen = Cdbs_storage.Datagen
module Analyze = Cdbs_sql.Analyze
module Journal = Cdbs_core.Journal
module Classification = Cdbs_core.Classification
module Fragment = Cdbs_core.Fragment
module Allocation = Cdbs_core.Allocation
module Memetic = Cdbs_core.Memetic
module Backend = Cdbs_core.Backend
module Physical = Cdbs_core.Physical

type backend_state = {
  mutable db : Database.t;
  mutable pending_cost : float;  (** accumulated routed cost, for balance *)
}

type t = {
  schema : Schema.t;
  rows : (string * int) list;
  master : Database.t;  (** authoritative full copy, source for ETL *)
  stats_cache : (string, Cdbs_storage.Table_stats.t) Hashtbl.t;
  backends : backend_state array;
  journal : Journal.t;
  rng : Cdbs_util.Rng.t;
  mutable allocation : Allocation.t option;
  mutable processed : int;
  mutable total_cost : float;
  mutable clock : float;
}

let create ~schema ~rows ~backends ~seed =
  if backends <= 0 then invalid_arg "Controller.create: need backends";
  let rng = Cdbs_util.Rng.create seed in
  let master = Database.create schema in
  Datagen.populate rng master ~rows_per_table:rows;
  let mk () =
    let db = Database.create schema in
    List.iter
      (fun tbl ->
        match Database.copy_table_into ~src:master ~dst:db tbl.Schema.tbl_name with
        | Ok _ -> ()
        | Error e -> invalid_arg ("Controller.create: " ^ e))
      schema;
    { db; pending_cost = 0. }
  in
  {
    schema;
    rows;
    master;
    stats_cache = Hashtbl.create 8;
    backends = Array.init backends (fun _ -> mk ());
    journal = Journal.create ();
    rng;
    allocation = None;
    processed = 0;
    total_cost = 0.;
    clock = 0.;
  }

(* Deterministic cost estimate, the paper's "cost estimation from the
   query optimizer" alternative to measured execution times: per referenced
   table, the estimated scan bytes under the statement's predicate
   (selectivity from cached table statistics). *)
let table_stats t name =
  match Hashtbl.find_opt t.stats_cache name with
  | Some st -> st
  | None -> (
      match Database.table t.master name with
      | None -> { Cdbs_storage.Table_stats.rows = 0; bytes = 0; columns = [] }
      | Some tbl ->
          let st = Cdbs_storage.Table_stats.collect tbl in
          Hashtbl.replace t.stats_cache name st;
          st)

let where_of = function
  | Cdbs_sql.Ast.Select { where; joins = []; _ } -> where
  | Cdbs_sql.Ast.Update { where; _ } | Cdbs_sql.Ast.Delete { where; _ } ->
      where
  | _ -> None

let cost_of_statement t stmt (fp : Analyze.footprint) =
  let where = where_of stmt in
  List.fold_left
    (fun acc tbl ->
      acc
      +. Cdbs_storage.Table_stats.estimate_scan_bytes (table_stats t tbl)
           where
         /. 1048576.)
    0.001 fp.Analyze.tables

let holds_tables st tables =
  List.for_all (fun tbl -> Database.table st.db tbl <> None) tables

let submit t sql =
  match Cdbs_sql.Parser.parse sql with
  | exception Cdbs_sql.Parser.Parse_error m -> Error ("parse error: " ^ m)
  | stmt -> (
      let fp =
        Analyze.footprint_of_statement ~schema:(Schema.to_assoc t.schema) stmt
      in
      let cost = cost_of_statement t stmt fp in
      t.clock <- t.clock +. 1.;
      Journal.record_at t.journal ~at:t.clock ~sql ~cost;
      t.processed <- t.processed + 1;
      t.total_cost <- t.total_cost +. cost;
      if fp.Analyze.is_update then begin
        (* Updated tables get fresh statistics on next use. *)
        List.iter (Hashtbl.remove t.stats_cache) fp.Analyze.tables;
        (* ROWA: run on the master and every backend holding the table. *)
        let result = Executor.execute t.master stmt in
        Array.iter
          (fun st ->
            if holds_tables st fp.Analyze.tables then begin
              st.pending_cost <- st.pending_cost +. cost;
              ignore (Executor.execute st.db stmt)
            end)
          t.backends;
        result
      end
      else begin
        (* Least pending eligible backend. *)
        let best = ref None in
        Array.iteri
          (fun i st ->
            if holds_tables st fp.Analyze.tables then
              match !best with
              | None -> best := Some i
              | Some j ->
                  if st.pending_cost < t.backends.(j).pending_cost then
                    best := Some i)
          t.backends;
        match !best with
        | None -> Error "no backend holds the referenced tables"
        | Some i ->
            let st = t.backends.(i) in
            st.pending_cost <- st.pending_cost +. cost;
            Executor.execute st.db stmt
      end)

let journal t = t.journal
let allocation t = t.allocation

let backend_tables t =
  Array.to_list
    (Array.map (fun st -> Database.table_names st.db) t.backends)

let stats t = (t.processed, t.total_cost)

let reallocate t ?(iterations = 40) () =
  if Journal.length t.journal = 0 then Error "empty query history"
  else begin
    let size_of =
      Classification.default_sizes ~schema:t.schema ~rows:t.rows
    in
    let workload =
      Classification.classify ~schema:t.schema ~size_of
        Classification.By_table t.journal
    in
    let backends = Backend.homogeneous (Array.length t.backends) in
    let params =
      { Memetic.default_params with Memetic.iterations }
    in
    let alloc = Memetic.allocate ~params ~rng:t.rng workload backends in
    (* Match against the current physical placement. *)
    let current_sets =
      Array.to_list
        (Array.map
           (fun st ->
             List.fold_left
               (fun acc name ->
                 let kind = Fragment.Table name in
                 Fragment.Set.add { Fragment.kind; size = size_of kind } acc)
               Fragment.Set.empty
               (Database.table_names st.db))
           t.backends)
    in
    let plan = Physical.plan_scaled ~old_fragments:current_sets alloc in
    (* Rebuild each physical node with exactly the tables of the new
       backend mapped onto it. *)
    Array.iteri
      (fun v _u ->
        let wanted =
          Fragment.Set.fold
            (fun f acc ->
              match f.Fragment.kind with
              | Fragment.Table name -> name :: acc
              | Fragment.Column { table; _ } | Fragment.Range { table; _ } ->
                  table :: acc)
            (Allocation.fragments_of alloc v) []
          |> List.sort_uniq String.compare
        in
        let db = Database.create_partial t.schema ~tables:wanted in
        List.iter
          (fun tbl ->
            match Database.copy_table_into ~src:t.master ~dst:db tbl with
            | Ok _ -> ()
            | Error e -> invalid_arg ("Controller.reallocate: " ^ e))
          wanted;
        t.backends.(v).db <- db;
        t.backends.(v).pending_cost <- 0.)
      plan.Physical.mapping;
    t.allocation <- Some alloc;
    Ok plan.Physical.transfer
  end
