(** Backend service-time model.

    Stands in for the paper's real PostgreSQL/MySQL backends.  A query's
    service time grows with the bytes its class scans and shrinks when the
    backend's resident data set fits its cache — the effect behind the
    paper's observation that partially replicated backends, being
    specialized on fewer classes, cache better and reach super-linear
    speedup on TPC-H (Sec. 4.1).  Column-granularity classes scan only the
    referenced columns, giving vertical partitioning its additional edge. *)

type params = {
  base_latency : float;  (** fixed per-request overhead, seconds *)
  scan_seconds_per_mb : float;  (** scan cost per MB of class data *)
  cache_mb : float;  (** per-backend cache capacity *)
  cold_penalty : float;
      (** multiplier applied to the portion of the resident set that spills
          out of cache (1.0 = no penalty) *)
  update_factor : float;  (** updates cost this multiple of an equal-size read *)
  sync_overhead : float;
      (** ROWA synchronization overhead per additional replica of an
          update: ordering all replicas' writes consistently costs more as
          the replica set grows *)
}

val default : params
(** Calibrated so a 1-node TPC-H-style setup processes on the order of one
    query per second at SF1, as in Fig. 4(a). *)

val service_time :
  params ->
  class_mb:float ->
  resident_mb:float ->
  speed:float ->
  is_update:bool ->
  replicas:int ->
  float
(** Service time of one request of a class scanning [class_mb] on a backend
    storing [resident_mb] in total, running at relative [speed] (1.0 = one
    reference node).  [replicas] is the number of backends an update is
    applied to (1 for reads). *)

val cache_factor : params -> resident_mb:float -> float
(** The caching multiplier: 1.0 when the resident set fits in cache, rising
    toward [cold_penalty] as it outgrows it. *)
