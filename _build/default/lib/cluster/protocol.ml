type t =
  | Rowa
  | Primary_copy
  | Lazy of { apply_factor : float }

let default = Rowa

let name = function
  | Rowa -> "rowa"
  | Primary_copy -> "primary-copy"
  | Lazy _ -> "lazy"

type split = {
  sync : int list;
  async : (int * float) list;
}

let plan t ~targets =
  match targets with
  | [] -> invalid_arg "Protocol.plan: no targets"
  | primary :: followers -> (
      match t with
      | Rowa -> { sync = targets; async = [] }
      | Primary_copy ->
          { sync = [ primary ]; async = List.map (fun b -> (b, 1.)) followers }
      | Lazy { apply_factor } ->
          if apply_factor < 0. then
            invalid_arg "Protocol.plan: negative apply factor";
          {
            sync = [ primary ];
            async = List.map (fun b -> (b, apply_factor)) followers;
          })
