(** Requests flowing through the cluster: one executed query instance,
    tagged with the query class the classification assigned it to. *)

type t = {
  class_id : string;  (** id of the {!Cdbs_core.Query_class} it belongs to *)
  is_update : bool;
  arrival : float;  (** submission time, seconds *)
  cost_mb : float option;
      (** override of the class's scanned megabytes; [None] uses the class
          fragment size *)
}

val read : ?arrival:float -> ?cost_mb:float -> string -> t
val update : ?arrival:float -> ?cost_mb:float -> string -> t
val pp : t Fmt.t
