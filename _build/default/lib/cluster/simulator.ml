module Allocation = Cdbs_core.Allocation
module Query_class = Cdbs_core.Query_class

type config = {
  cost : Cost_model.params;
  speeds : float array;
  protocol : Protocol.t;
}

let homogeneous_config ?(cost = Cost_model.default)
    ?(protocol = Protocol.default) n =
  if n <= 0 then invalid_arg "Simulator.homogeneous_config";
  { cost; speeds = Array.make n 1.; protocol }

type outcome = {
  completed : int;
  makespan : float;
  throughput : float;
  avg_response : float;
  max_response : float;
  busy : float array;
  utilization : float array;
  errors : int;
}

let find_class alloc id =
  let classes = Allocation.classes alloc in
  let rec go i =
    if i >= Array.length classes then None
    else if classes.(i).Query_class.id = id then Some classes.(i)
    else go (i + 1)
  in
  go 0

let class_mb alloc (r : Request.t) =
  match r.Request.cost_mb with
  | Some mb -> mb
  | None -> (
      match find_class alloc r.Request.class_id with
      | Some c -> Query_class.size c
      | None -> 0.)

let run ?(failures = []) ~respect_arrivals config alloc requests =
  let n = Allocation.num_backends alloc in
  if Array.length config.speeds <> n then
    invalid_arg "Simulator.run: speeds length <> backend count";
  let sched = Scheduler.create alloc in
  let pending_failures =
    ref (List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) failures)
  in
  let busy = Array.make n 0. in
  let completed = ref 0 and errors = ref 0 in
  let response_sum = ref 0. and response_max = ref 0. in
  let resident =
    Array.init n (fun b ->
        Cdbs_core.Fragment.set_size (Allocation.fragments_of alloc b))
  in
  List.iter
    (fun (r : Request.t) ->
      let now = if respect_arrivals then r.Request.arrival else 0. in
      let rec apply_failures () =
        match !pending_failures with
        | (at, b) :: rest when at <= now ->
            Scheduler.set_down sched ~backend:b;
            pending_failures := rest;
            apply_failures ()
        | _ -> ()
      in
      apply_failures ();
      match Scheduler.route sched ~now r with
      | Error _ -> incr errors
      | Ok targets ->
          let mb = class_mb alloc r in
          (* The protocol decides which replicas sit on the request's
             critical path; a read always has exactly one target. *)
          let split =
            if r.Request.is_update then
              Protocol.plan config.protocol ~targets
            else { Protocol.sync = targets; async = [] }
          in
          let replicas =
            if r.Request.is_update then List.length split.Protocol.sync else 1
          in
          let serve b ~factor =
            let service =
              factor
              *. Cost_model.service_time config.cost ~class_mb:mb
                   ~resident_mb:resident.(b) ~speed:config.speeds.(b)
                   ~is_update:r.Request.is_update ~replicas
            in
            let start = max now (Scheduler.free_at sched ~backend:b) in
            let finish = start +. service in
            Scheduler.book sched ~backend:b ~finish;
            busy.(b) <- busy.(b) +. service;
            finish
          in
          let finish_all = ref 0. in
          List.iter
            (fun b ->
              let finish = serve b ~factor:1. in
              if finish > !finish_all then finish_all := finish)
            split.Protocol.sync;
          (* Asynchronous replica application: occupies the queues but not
             the response. *)
          List.iter
            (fun (b, factor) -> ignore (serve b ~factor))
            split.Protocol.async;
          incr completed;
          let response = !finish_all -. now in
          response_sum := !response_sum +. response;
          if response > !response_max then response_max := response)
    requests;
  let makespan =
    let m = ref 0. in
    for b = 0 to n - 1 do
      if Scheduler.free_at sched ~backend:b > !m then
        m := Scheduler.free_at sched ~backend:b
    done;
    !m
  in
  {
    completed = !completed;
    makespan;
    throughput = (if makespan > 0. then float_of_int !completed /. makespan else 0.);
    avg_response =
      (if !completed > 0 then !response_sum /. float_of_int !completed else 0.);
    max_response = !response_max;
    busy;
    utilization =
      Array.map (fun b -> if makespan > 0. then b /. makespan else 0.) busy;
    errors = !errors;
  }

let run_batch config alloc requests =
  run ~respect_arrivals:false config alloc requests

let run_open config alloc requests =
  run ~respect_arrivals:true config alloc requests

let run_open_with_failures config alloc requests ~failures =
  run ~failures ~respect_arrivals:true config alloc requests
