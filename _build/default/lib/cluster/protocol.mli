(** Update-propagation protocols.

    The paper's processing model uses read-once/write-all (ROWA) and notes
    that primary-copy and lazy replication "could be easily incorporated
    into our model and system" (Sec. 2).  This module incorporates them:

    - {!Rowa}: an update is applied synchronously on every backend holding
      the touched data; the request completes when the slowest replica is
      done.  Strong consistency, full cost on the critical path.
    - {!Primary_copy}: the update commits on one designated primary replica
      and the request returns; the remaining replicas apply the same work
      asynchronously (it still occupies their queues, but off the critical
      path).
    - {!Lazy}: like primary copy, but replica application is batched:
      followers pay only [apply_factor] of the primary's work, at the price
      of a staleness window. *)

type t =
  | Rowa
  | Primary_copy
  | Lazy of { apply_factor : float }

val default : t
(** {!Rowa}, the paper's protocol. *)

val name : t -> string

type split = {
  sync : int list;  (** backends on the request's critical path *)
  async : (int * float) list;
      (** backends applying the update off the critical path, with the
          fraction of the full work each pays *)
}

val plan : t -> targets:int list -> split
(** [plan p ~targets] splits an update's target backends.  [targets] must
    be non-empty; its first element acts as the primary. *)
