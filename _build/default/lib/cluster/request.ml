type t = {
  class_id : string;
  is_update : bool;
  arrival : float;
  cost_mb : float option;
}

let[@warning "-16"] read ?(arrival = 0.) ?cost_mb class_id =
  { class_id; is_update = false; arrival; cost_mb }

let[@warning "-16"] update ?(arrival = 0.) ?cost_mb class_id =
  { class_id; is_update = true; arrival; cost_mb }

let pp ppf r =
  Fmt.pf ppf "%s%s@%.3f"
    (if r.is_update then "U:" else "Q:")
    r.class_id r.arrival
