(** The CDBS controller — the middleware of the paper's prototype (Fig. 3).

    Owns a set of backend databases (each an independent in-memory
    {!Cdbs_storage} engine holding a subset of the tables), routes incoming
    SQL by the least-pending rule, applies updates read-once/write-all, and
    records every request in the query history.  Switching to allocation
    mode classifies the history, computes a new allocation (greedy +
    memetic), matches it cost-minimally against the running placement and
    rebuilds the backends.

    Physical placement is table-granular (the storage engine stores whole
    tables); column-granular allocations are exercised at the model and
    simulation level. *)

type t

val create :
  schema:Cdbs_storage.Schema.t ->
  rows:(string * int) list ->
  backends:int ->
  seed:int ->
  t
(** Bootstrap: generate data, start [backends] fully replicated backend
    databases (the paper's initial configuration used to collect a first
    weight distribution). *)

val submit : t -> string -> (Cdbs_storage.Executor.result, string) result
(** Route and execute one SQL statement; reads run on the least-pending
    eligible backend, updates on every backend holding the touched tables
    (and on the controller's authoritative master copy).  The request and
    its cost are recorded in the query history. *)

val journal : t -> Cdbs_core.Journal.t
val allocation : t -> Cdbs_core.Allocation.t option
(** [None] while fully replicated (before the first reallocation). *)

val backend_tables : t -> string list list
(** Per backend, the tables it currently stores. *)

val reallocate : t -> ?iterations:int -> unit -> (float, string) result
(** Allocation mode: classify the history at table granularity, run greedy
    plus memetic improvement, deploy via Hungarian matching and bulk table
    copies.  Returns the total megabytes shipped.  Fails when the history
    is empty. *)

val stats : t -> int * float
(** [(processed, total_cost)]: requests processed and their accumulated
    cost since creation. *)
