module Allocation = Cdbs_core.Allocation
module Query_class = Cdbs_core.Query_class
module Fragment = Cdbs_core.Fragment
module Workload = Cdbs_core.Workload

type t = {
  alloc : Allocation.t;
  class_by_id : (string, Query_class.t) Hashtbl.t;
  free_at : float array;
  up : bool array;
}

let create alloc =
  let class_by_id = Hashtbl.create 32 in
  Array.iter
    (fun c -> Hashtbl.replace class_by_id c.Query_class.id c)
    (Allocation.classes alloc);
  {
    alloc;
    class_by_id;
    free_at = Array.make (Allocation.num_backends alloc) 0.;
    up = Array.make (Allocation.num_backends alloc) true;
  }

(* The schema records which backends a class was assigned to; the scheduler
   routes among those.  Backends that merely happen to hold the data (e.g.
   k-safety standby replicas) are used only when no assigned backend
   exists. *)
let eligible_for_read t c =
  let all = List.init (Allocation.num_backends t.alloc) (fun b -> b) in
  let assigned =
    List.filter
      (fun b -> t.up.(b) && Allocation.get_assign t.alloc b c > 0.)
      all
  in
  if assigned <> [] then assigned
  else
    List.filter (fun b -> t.up.(b) && Allocation.holds t.alloc b c) all

let targets_for_update t (c : Query_class.t) =
  List.filter
    (fun b ->
      t.up.(b)
      && not
           (Fragment.Set.is_empty
              (Fragment.Set.inter c.Query_class.fragments
                 (Allocation.fragments_of t.alloc b))))
    (List.init (Allocation.num_backends t.alloc) (fun b -> b))

let set_down t ~backend = t.up.(backend) <- false
let is_up t ~backend = t.up.(backend)
let pending t ~backend ~now = max 0. (t.free_at.(backend) -. now)
let free_at t ~backend = t.free_at.(backend)
let book t ~backend ~finish = t.free_at.(backend) <- finish

let route t ~now (r : Request.t) =
  match Hashtbl.find_opt t.class_by_id r.Request.class_id with
  | None -> Error ("unknown query class " ^ r.Request.class_id)
  | Some c ->
      if r.Request.is_update then begin
        match targets_for_update t c with
        | [] -> Error ("update class " ^ c.Query_class.id ^ " has no replica")
        | targets -> Ok targets
      end
      else begin
        match eligible_for_read t c with
        | [] -> Error ("read class " ^ c.Query_class.id ^ " is not served")
        | candidates ->
            (* Least pending request first. *)
            let best =
              List.fold_left
                (fun acc b ->
                  match acc with
                  | None -> Some b
                  | Some cur ->
                      if
                        pending t ~backend:b ~now
                        < pending t ~backend:cur ~now
                      then Some b
                      else acc)
                None candidates
            in
            Ok [ Option.get best ]
      end
