lib/cluster/simulator.mli: Cdbs_core Cost_model Protocol Request
