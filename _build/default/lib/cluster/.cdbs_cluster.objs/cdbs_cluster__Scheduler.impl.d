lib/cluster/scheduler.ml: Array Cdbs_core Hashtbl List Option Request
