lib/cluster/request.mli: Fmt
