lib/cluster/cost_model.mli:
