lib/cluster/simulator.ml: Array Cdbs_core Cost_model List Protocol Request Scheduler Stdlib
