lib/cluster/controller.mli: Cdbs_core Cdbs_storage
