lib/cluster/scheduler.mli: Cdbs_core Request
