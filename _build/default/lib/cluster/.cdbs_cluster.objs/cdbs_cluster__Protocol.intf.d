lib/cluster/protocol.mli:
