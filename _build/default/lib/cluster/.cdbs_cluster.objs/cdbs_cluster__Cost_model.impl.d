lib/cluster/cost_model.ml:
