lib/cluster/request.ml: Fmt
