lib/cluster/controller.ml: Array Cdbs_core Cdbs_sql Cdbs_storage Cdbs_util Hashtbl List String
