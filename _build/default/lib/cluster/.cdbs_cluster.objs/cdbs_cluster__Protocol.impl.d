lib/cluster/protocol.ml: List
