(** Load balance and replication histograms: Figs. 4(j)–4(l). *)

val fig4j :
  ?backend_counts:int list -> ?runs:int -> unit ->
  (int * float * float) list
(** Per backend count: (n, TPC-H deviation, TPC-App deviation) — the mean
    relative deviation of per-node busy time from the average, column-based
    allocation, averaged over the runs. *)

val fig4k : ?nodes:int -> ?runs:int -> unit -> (int * float * float) list
(** Table-based replication histogram at 10 nodes: for each replica count
    1..nodes, the average number of tables replicated that often, for
    (TPC-H, TPC-App). *)

val fig4l : ?nodes:int -> ?runs:int -> unit -> (int * float * float) list
(** Column-based replication histogram (fragments are columns). *)

val print_all : unit -> unit
