(** Shared plumbing for the experiment harness: allocation strategies,
    simulation driving, and table printing. *)

type strategy =
  | Full_replication
  | Table_based
  | Column_based
  | Random_placement

val strategy_name : strategy -> string

val allocate :
  rng:Cdbs_util.Rng.t ->
  strategy ->
  table_workload:Cdbs_core.Workload.t ->
  column_workload:Cdbs_core.Workload.t ->
  Cdbs_core.Backend.t list ->
  Cdbs_core.Allocation.t
(** Build the allocation a strategy yields.  Full replication is modeled as
    a single-class-style placement: every backend holds every fragment of
    the table workload and reads are spread evenly. *)

val full_replication :
  Cdbs_core.Workload.t -> Cdbs_core.Backend.t list -> Cdbs_core.Allocation.t

val simulate :
  ?cost:Cdbs_cluster.Cost_model.params ->
  ?protocol:Cdbs_cluster.Protocol.t ->
  Cdbs_core.Allocation.t ->
  Cdbs_cluster.Request.t list ->
  Cdbs_cluster.Simulator.outcome
(** Batch-mode simulation with homogeneous unit-speed backends. *)

val header : string -> unit
(** Print a section header for the harness output. *)

val table : columns:string list -> (string * float list) list -> unit
(** Print an aligned table: row label plus one value per column. *)

val mean_of_runs : (int -> float) -> runs:int -> float
(** Average [f seed] over seeds 1..runs. *)
