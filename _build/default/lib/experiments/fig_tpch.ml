module Tpch = Cdbs_workloads.Tpch
module Backend = Cdbs_core.Backend
module Allocation = Cdbs_core.Allocation
module Replication = Cdbs_core.Replication
module Optimal = Cdbs_core.Optimal
module Greedy = Cdbs_core.Greedy
module Physical = Cdbs_core.Physical
module Fragment = Cdbs_core.Fragment
module Simulator = Cdbs_cluster.Simulator
module Rng = Cdbs_util.Rng

type row = {
  backends : int;
  throughput : float;
  speedup : float;
}

let default_counts = [ 1; 2; 4; 6; 8; 10 ]
let sf = 1.

let throughput_of ~rng ~requests strategy n =
  let backends = Backend.homogeneous n in
  let table_workload = Tpch.workload ~granularity:`Table ~sf in
  let column_workload = Tpch.workload ~granularity:`Column ~sf in
  let alloc =
    Common.allocate ~rng strategy ~table_workload ~column_workload backends
  in
  let reqs = Tpch.requests ~rng ~sf ~n:requests in
  (Common.simulate alloc reqs).Simulator.throughput

let baseline ~requests ~runs =
  Common.mean_of_runs ~runs (fun seed ->
      throughput_of ~rng:(Rng.create seed) ~requests Common.Full_replication 1)

let fig4a ?(backend_counts = default_counts) ?(requests = 2000) ?(runs = 3) () =
  let base = baseline ~requests ~runs in
  List.map
    (fun strategy ->
      ( strategy,
        List.map
          (fun n ->
            let tp =
              Common.mean_of_runs ~runs (fun seed ->
                  throughput_of ~rng:(Rng.create (seed * 37)) ~requests
                    strategy n)
            in
            { backends = n; throughput = tp; speedup = tp /. base })
          backend_counts ))
    [
      Common.Full_replication; Common.Table_based; Common.Column_based;
      Common.Random_placement;
    ]

let fig4b ?(backend_counts = default_counts) ?(requests = 2000) ?(runs = 10) ()
    =
  List.map
    (fun n ->
      let samples =
        List.init runs (fun seed ->
            throughput_of
              ~rng:(Rng.create ((seed + 1) * 101))
              ~requests Common.Column_based n)
      in
      ( n,
        Cdbs_util.Stats.mean samples,
        Cdbs_util.Stats.minimum samples,
        Cdbs_util.Stats.maximum samples ))
    backend_counts

let fig4c ?(backend_counts = default_counts) ?(optimal_up_to = 7) () =
  let table_workload = Tpch.workload ~granularity:`Table ~sf in
  let column_workload = Tpch.workload ~granularity:`Column ~sf in
  List.map
    (fun n ->
      let rng = Rng.create 7 in
      let backends = Backend.homogeneous n in
      let full =
        Replication.degree (Common.full_replication table_workload backends)
      in
      let table_deg =
        Replication.degree
          (Common.allocate ~rng Common.Table_based ~table_workload
             ~column_workload backends)
      in
      let column_deg =
        Replication.degree
          (Common.allocate ~rng Common.Column_based ~table_workload
             ~column_workload backends)
      in
      let optimal =
        if n > optimal_up_to then None
        else begin
          (* Merge identically-accessed columns to shrink the MIP, as the
             paper's solver setup effectively does via preprocessing. *)
          let coarse = Optimal.coarsen column_workload in
          match Optimal.allocate ~node_limit:4000 coarse backends with
          | Ok r -> Some (Replication.degree r.Optimal.allocation)
          | Error _ -> None
        end
      in
      (n, full, table_deg, column_deg, optimal))
    backend_counts

let fig4d ?(backend_counts = [ 1; 2; 3; 4; 5; 6; 7 ]) () =
  let table_workload = Tpch.workload ~granularity:`Table ~sf in
  let column_workload = Tpch.workload ~granularity:`Column ~sf in
  List.map
    (fun n ->
      let rng = Rng.create 11 in
      let backends = Backend.homogeneous n in
      let empty = List.init n (fun _ -> Fragment.Set.empty) in
      let duration alloc ~fragmentation =
        let plan = Physical.plan_scaled ~old_fragments:empty alloc in
        Physical.duration plan ~fragmentation /. 60.
      in
      let full = Common.full_replication table_workload backends in
      let column =
        Common.allocate ~rng Common.Column_based ~table_workload
          ~column_workload backends
      in
      (* Full replication ships whole tables (no fragment preparation);
         column-based must first cut the fragments it ships. *)
      let full_min = duration full ~fragmentation:0. in
      let column_min =
        duration column ~fragmentation:(Allocation.total_stored column)
      in
      (n, full_min, column_min))
    backend_counts

let fig4e () =
  let counts = [ 1; 5; 10 ] in
  let strategies =
    [ Common.Full_replication; Common.Table_based; Common.Column_based ]
  in
  let run ~sf strategy n =
    let rng = Rng.create (n + (7 * int_of_float sf)) in
    let backends = Backend.homogeneous n in
    let table_workload = Tpch.workload ~granularity:`Table ~sf in
    let column_workload = Tpch.workload ~granularity:`Column ~sf in
    let alloc =
      Common.allocate ~rng strategy ~table_workload ~column_workload backends
    in
    let reqs = Tpch.requests ~rng ~sf ~n:600 in
    (Common.simulate alloc reqs).Simulator.throughput
  in
  List.concat_map
    (fun sf ->
      let base = run ~sf Common.Full_replication 1 in
      List.map
        (fun strategy ->
          ( Printf.sprintf "%s SF%d" (Common.strategy_name strategy)
              (int_of_float sf),
            List.map (fun n -> run ~sf strategy n /. base) counts ))
        strategies)
    [ 1.; 10. ]

let print_all () =
  Common.header "Fig 4(a): TPC-H throughput (queries/sec) and speedup";
  let data = fig4a () in
  Common.table
    ~columns:(List.map (fun r -> string_of_int r.backends) (snd (List.hd data)))
    (List.concat_map
       (fun (strategy, rows) ->
         [
           ( Common.strategy_name strategy ^ " (q/s)",
             List.map (fun r -> r.throughput) rows );
           ( Common.strategy_name strategy ^ " (speedup)",
             List.map (fun r -> r.speedup) rows );
         ])
       data);
  Common.header "Fig 4(b): TPC-H column-based throughput deviation";
  let dev = fig4b () in
  Common.table
    ~columns:(List.map (fun (n, _, _, _) -> string_of_int n) dev)
    [
      ("average", List.map (fun (_, a, _, _) -> a) dev);
      ("minimum", List.map (fun (_, _, m, _) -> m) dev);
      ("maximum", List.map (fun (_, _, _, m) -> m) dev);
    ];
  Common.header "Fig 4(c): TPC-H degree of replication";
  let deg = fig4c () in
  Common.table
    ~columns:(List.map (fun (n, _, _, _, _) -> string_of_int n) deg)
    [
      ("full replication", List.map (fun (_, f, _, _, _) -> f) deg);
      ("table-based", List.map (fun (_, _, t, _, _) -> t) deg);
      ("column-based", List.map (fun (_, _, _, c, _) -> c) deg);
      ( "optimal column-based",
        List.map
          (fun (_, _, _, c, o) -> Option.value ~default:c o)
          deg );
    ];
  Common.header "Fig 4(d): allocation duration (minutes)";
  let dur = fig4d () in
  Common.table
    ~columns:(List.map (fun (n, _, _) -> string_of_int n) dur)
    [
      ("full replication", List.map (fun (_, f, _) -> f) dur);
      ("column-based", List.map (fun (_, _, c) -> c) dur);
    ];
  Common.header "Fig 4(e): TPC-H scaling (relative throughput, 1/5/10 nodes)";
  Common.table ~columns:[ "1"; "5"; "10" ] (fig4e ())
