module Autoscaler = Cdbs_autoscale.Autoscaler
module Trace = Cdbs_workloads.Trace
module Segmented = Cdbs_core.Segmented
module Classification = Cdbs_core.Classification
module Greedy = Cdbs_core.Greedy
module Backend = Cdbs_core.Backend
module Allocation = Cdbs_core.Allocation
module Rng = Cdbs_util.Rng

let elastic_day ?(scale = 40.) ?(window_minutes = 10.) () =
  Autoscaler.simulate_day ~window_minutes ~scale ~rng:(Rng.create 5) ()

let fig6 ?(step_minutes = 60.) () =
  let steps = int_of_float (24. *. 60. /. step_minutes) in
  List.init steps (fun w ->
      let hour = float_of_int w *. step_minutes /. 60. in
      let rate = Trace.rate_per_10min ~hour in
      let mix = Trace.class_mix ~hour in
      (hour, List.map (fun (id, share) -> (id, rate *. share)) mix))

let segmentation_demo () =
  let journal = Trace.journal_for_day ~rng:(Rng.create 3) ~scale:1. in
  let size_of =
    Classification.default_sizes ~schema:Trace.schema ~rows:Trace.row_counts
  in
  let classify j =
    Cdbs_core.Workload.normalize
      (Classification.classify ~schema:Trace.schema ~size_of
         Classification.By_table j)
  in
  let allocate w = Greedy.allocate w (Backend.homogeneous 4) in
  let merged, segments =
    Segmented.allocate_segmented ~classify ~allocate ~window:3600.
      ~threshold:0.25 journal
  in
  ( List.map
      (fun s ->
        (s.Segmented.start_time /. 3600., s.Segmented.end_time /. 3600.))
      segments,
    Allocation.num_backends merged )

let print_all () =
  Common.header "Elastic scaling: active servers and response time vs load";
  let summary = elastic_day () in
  Fmt.pr
    "%8s%12s%8s%14s%14s%12s@." "hour" "req/10min" "nodes" "resp(ms)"
    "static(ms)" "moved(MB)";
  List.iteri
    (fun i (w : Autoscaler.window_report) ->
      (* Print every third window to keep the table readable. *)
      if i mod 3 = 0 then
        Fmt.pr "%8.2f%12.0f%8d%14.1f%14.1f%12.1f@." w.Autoscaler.hour
          w.Autoscaler.rate w.Autoscaler.nodes
          (w.Autoscaler.avg_response_scaled *. 1000.)
          (w.Autoscaler.avg_response_static *. 1000.)
          w.Autoscaler.transfer_mb)
    summary.Autoscaler.windows;
  Fmt.pr
    "day average response: %.1f ms, worst window: %.1f ms, reallocations: \
     %d, total data moved: %.0f MB@."
    (summary.Autoscaler.avg_response *. 1000.)
    (summary.Autoscaler.max_response_window *. 1000.)
    summary.Autoscaler.reallocations summary.Autoscaler.total_transfer_mb;
  Common.header "Fig 6: query class mix over a day (requests/10min)";
  let mix = fig6 ~step_minutes:120. () in
  Fmt.pr "%8s" "hour";
  List.iter (fun (id, _) -> Fmt.pr "%10s" id) (snd (List.hd mix));
  Fmt.pr "@.";
  List.iter
    (fun (hour, shares) ->
      Fmt.pr "%8.1f" hour;
      List.iter (fun (_, v) -> Fmt.pr "%10.0f" v) shares;
      Fmt.pr "@.")
    mix;
  Common.header "Sec. 5: history segmentation and merged allocation";
  let segments, nodes = segmentation_demo () in
  List.iteri
    (fun i (a, b) -> Fmt.pr "segment %d: %05.2fh - %05.2fh@." (i + 1) a b)
    segments;
  Fmt.pr "merged allocation spans %d backends@." nodes
