(** TPC-H experiments: Figs. 4(a)–4(e) of the paper. *)

type row = {
  backends : int;
  throughput : float;  (** queries/second *)
  speedup : float;  (** vs. the 1-node baseline *)
}

val fig4a :
  ?backend_counts:int list ->
  ?requests:int ->
  ?runs:int ->
  unit ->
  (Common.strategy * row list) list
(** Throughput and speedup of full replication, table-based, column-based
    and random allocation over cluster sizes. *)

val fig4b :
  ?backend_counts:int list -> ?requests:int -> ?runs:int -> unit ->
  (int * float * float * float) list
(** Column-based allocation deviation: per backend count, (average,
    minimum, maximum) throughput over the runs. *)

val fig4c :
  ?backend_counts:int list -> ?optimal_up_to:int -> unit ->
  (int * float * float * float * float option) list
(** Degree of replication per backend count: (full, table, column,
    optimal-column when computed). *)

val fig4d : ?backend_counts:int list -> unit -> (int * float * float) list
(** Allocation (ETL) duration in minutes: (full replication, column-based)
    per backend count. *)

val fig4e : unit -> (string * float list) list
(** Relative throughput of 1/5/10 backends for SF1 and SF10 under each
    strategy (baseline: 1 node at the same scale factor). *)

val print_all : unit -> unit
(** Run every TPC-H figure and print its series. *)
