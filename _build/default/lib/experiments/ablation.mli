(** Ablation studies for the design choices DESIGN.md calls out:
    greedy vs. memetic vs. exact allocation quality, the contribution of
    the two local-search strategies, k-safety overhead, and robustness
    hardening. *)

val solver_comparison :
  ?backend_counts:int list -> unit ->
  (int * (string * float * float) list) list
(** Per backend count, for greedy / memetic / optimal (small instances):
    (name, scale, stored MB) on the TPC-App table workload. *)

val local_search_contribution : unit -> (string * float * float) list
(** Memetic with no local search / strategy 1 only / both, on TPC-App:
    (variant, scale, stored). *)

val ksafety_overhead :
  ?ks:int list -> unit -> (int * float * float * float) list
(** For k = 0, 1, 2 on TPC-App with 6 backends: (k, scale, degree of
    replication, simulated throughput q/s). *)

val protocol_comparison : unit -> (string * string * float * float) list
(** Update-propagation protocols (ROWA / primary copy / lazy, Sec. 2) on
    TPC-App with 8 backends, for full replication and the table-based
    allocation: (allocation, protocol, throughput q/s, avg response s). *)

val failover : unit -> (int * bool * bool) list
(** For each single backend failure of a 1-safe 4-backend allocation:
    (failed backend, survives with k=1, survives with k=0). *)

val granularity_comparison : unit -> (string * float * float * float) list
(** Classification granularity on the time-partitioned event archive:
    (granularity, scale, predicted speedup on 6 nodes, degree of
    replication) — the horizontal-partitioning payoff of Sec. 3.1. *)

val predictive_scaling : unit -> (string * float * float * int) list
(** Reactive day-1 vs forecast-driven day-2 autoscaling over the e-learning
    trace: (label, avg response s, worst window s, reallocations). *)

val print_all : unit -> unit
