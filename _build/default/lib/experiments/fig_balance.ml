module Tpch = Cdbs_workloads.Tpch
module Tpcapp = Cdbs_workloads.Tpcapp
module Backend = Cdbs_core.Backend
module Replication = Cdbs_core.Replication
module Simulator = Cdbs_cluster.Simulator
module Rng = Cdbs_util.Rng

let sf = 1.
let eb = 300

let tpch_alloc ~rng n =
  Common.allocate ~rng Common.Column_based
    ~table_workload:(Tpch.workload ~granularity:`Table ~sf)
    ~column_workload:(Tpch.workload ~granularity:`Column ~sf)
    (Backend.homogeneous n)

let tpcapp_alloc ~rng ~granularity n =
  let table_workload = Tpcapp.workload ~granularity:`Table ~eb in
  let column_workload = Tpcapp.workload ~granularity:`Column ~eb in
  let strategy =
    match granularity with
    | `Table -> Common.Table_based
    | `Column -> Common.Column_based
  in
  Common.allocate ~rng strategy ~table_workload ~column_workload
    (Backend.homogeneous n)

let busy_deviation alloc requests ~cost =
  let outcome = Common.simulate ~cost alloc requests in
  Cdbs_util.Stats.relative_deviation
    (Array.to_list outcome.Simulator.busy)

let fig4j ?(backend_counts = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]) ?(runs = 5) ()
    =
  let app_cost =
    {
      Cdbs_cluster.Cost_model.default with
      Cdbs_cluster.Cost_model.base_latency = 0.;
      scan_seconds_per_mb = 0.0117;
      sync_overhead = 0.03;
    }
  in
  List.map
    (fun n ->
      let h =
        Common.mean_of_runs ~runs (fun seed ->
            let rng = Rng.create (seed * 61) in
            let alloc = tpch_alloc ~rng n in
            busy_deviation alloc
              (Tpch.requests ~rng ~sf ~n:1500)
              ~cost:Cdbs_cluster.Cost_model.default)
      in
      let a =
        Common.mean_of_runs ~runs (fun seed ->
            let rng = Rng.create (seed * 71) in
            let alloc = tpcapp_alloc ~rng ~granularity:`Column n in
            busy_deviation alloc
              (Tpcapp.requests ~rng ~granularity:`Column ~eb ~n:6000)
              ~cost:app_cost)
      in
      (n, h, a))
    backend_counts

let histogram ~runs ~nodes alloc_of =
  let acc = Array.make nodes 0. in
  for seed = 1 to runs do
    let alloc = alloc_of ~rng:(Rng.create (seed * 97)) nodes in
    let h = Replication.histogram alloc ~max_replicas:nodes in
    Array.iteri (fun idx v -> acc.(idx) <- acc.(idx) +. float_of_int v) h
  done;
  Array.map (fun v -> v /. float_of_int runs) acc

let fig4k ?(nodes = 10) ?(runs = 5) () =
  let tpch =
    histogram ~runs ~nodes (fun ~rng n ->
        Common.allocate ~rng Common.Table_based
          ~table_workload:(Tpch.workload ~granularity:`Table ~sf)
          ~column_workload:(Tpch.workload ~granularity:`Column ~sf)
          (Backend.homogeneous n))
  in
  let app =
    histogram ~runs ~nodes (fun ~rng n ->
        tpcapp_alloc ~rng ~granularity:`Table n)
  in
  List.init nodes (fun idx -> (idx + 1, tpch.(idx), app.(idx)))

let fig4l ?(nodes = 10) ?(runs = 5) () =
  let tpch = histogram ~runs ~nodes tpch_alloc in
  let app =
    histogram ~runs ~nodes (fun ~rng n ->
        tpcapp_alloc ~rng ~granularity:`Column n)
  in
  List.init nodes (fun idx -> (idx + 1, tpch.(idx), app.(idx)))

let print_all () =
  Common.header "Fig 4(j): deviation from balance (column-based)";
  let dev = fig4j () in
  Common.table
    ~columns:(List.map (fun (n, _, _) -> string_of_int n) dev)
    [
      ("TPC-H", List.map (fun (_, h, _) -> h) dev);
      ("TPC-App", List.map (fun (_, _, a) -> a) dev);
    ];
  Common.header "Fig 4(k): replication histogram, table-based (10 nodes)";
  let k = fig4k () in
  Common.table
    ~columns:(List.map (fun (r, _, _) -> string_of_int r) k)
    [
      ("TPC-H tables", List.map (fun (_, h, _) -> h) k);
      ("TPC-App tables", List.map (fun (_, _, a) -> a) k);
    ];
  Common.header "Fig 4(l): replication histogram, column-based (10 nodes)";
  let l = fig4l () in
  Common.table
    ~columns:(List.map (fun (r, _, _) -> string_of_int r) l)
    [
      ("TPC-H columns", List.map (fun (_, h, _) -> h) l);
      ("TPC-App columns", List.map (fun (_, _, a) -> a) l);
    ]
