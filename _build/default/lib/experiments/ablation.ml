module Tpcapp = Cdbs_workloads.Tpcapp
module Tpch = Cdbs_workloads.Tpch
module Backend = Cdbs_core.Backend
module Allocation = Cdbs_core.Allocation
module Greedy = Cdbs_core.Greedy
module Memetic = Cdbs_core.Memetic
module Optimal = Cdbs_core.Optimal
module Replication = Cdbs_core.Replication
module Ksafety = Cdbs_core.Ksafety
module Robustness = Cdbs_core.Robustness
module Simulator = Cdbs_cluster.Simulator
module Rng = Cdbs_util.Rng

let eb = 300

let app_cost =
  {
    Cdbs_cluster.Cost_model.default with
    Cdbs_cluster.Cost_model.base_latency = 0.;
    scan_seconds_per_mb = 0.0117;
    sync_overhead = 0.03;
  }

let solver_comparison ?(backend_counts = [ 2; 3; 4 ]) () =
  let workload = Tpcapp.workload ~granularity:`Table ~eb in
  List.map
    (fun n ->
      let backends = Backend.homogeneous n in
      let greedy = Greedy.allocate workload backends in
      let memetic =
        Memetic.improve ~rng:(Rng.create 23) (Allocation.copy greedy)
      in
      let entries =
        [
          ("greedy", Allocation.scale greedy, Allocation.total_stored greedy);
          ( "memetic",
            Allocation.scale memetic,
            Allocation.total_stored memetic );
        ]
      in
      let entries =
        match
          Optimal.allocate ~node_limit:20_000 (Optimal.coarsen workload)
            backends
        with
        | Ok r ->
            entries
            @ [
                ( (if r.Optimal.proved_optimal then "optimal"
                   else "optimal (best found)"),
                  r.Optimal.scale, r.Optimal.space );
              ]
        | Error _ -> entries
      in
      (n, entries))
    backend_counts

let local_search_contribution () =
  let workload = Tpcapp.workload ~granularity:`Column ~eb in
  let backends = Backend.homogeneous 8 in
  let greedy = Greedy.allocate workload backends in
  List.map
    (fun (name, mode) ->
      let params =
        { Memetic.default_params with Memetic.local_search_mode = mode }
      in
      let improved =
        Memetic.improve ~params ~rng:(Rng.create 31)
          (Allocation.copy greedy)
      in
      (name, Allocation.scale improved, Allocation.total_stored improved))
    [
      ("no local search", Memetic.No_local_search);
      ("strategy 1 only", Memetic.Consolidate_only);
      ("both strategies", Memetic.Both_strategies);
    ]

let ksafety_overhead ?(ks = [ 0; 1; 2 ]) () =
  let workload = Tpcapp.workload ~granularity:`Table ~eb in
  let backends = Backend.homogeneous 6 in
  List.map
    (fun k ->
      let alloc = Ksafety.allocate ~k workload backends in
      let rng = Rng.create 41 in
      let reqs = Tpcapp.requests ~rng ~granularity:`Table ~eb ~n:6000 in
      let outcome = Common.simulate ~cost:app_cost alloc reqs in
      ( k,
        Allocation.scale alloc,
        Replication.degree alloc,
        outcome.Simulator.throughput ))
    ks

let protocol_comparison () =
  let table_workload = Tpcapp.workload ~granularity:`Table ~eb in
  let backends = Backend.homogeneous 8 in
  let reqs =
    Tpcapp.requests ~rng:(Rng.create 19) ~granularity:`Table ~eb ~n:8000
  in
  let allocations =
    [
      ("full", Cdbs_core.Baselines.full_replication table_workload backends);
      ("table", Greedy.allocate table_workload backends);
    ]
  in
  List.concat_map
    (fun (aname, alloc) ->
      List.map
        (fun protocol ->
          let outcome = Common.simulate ~cost:app_cost ~protocol alloc reqs in
          ( aname,
            Cdbs_cluster.Protocol.name protocol,
            outcome.Simulator.throughput,
            outcome.Simulator.avg_response ))
        [
          Cdbs_cluster.Protocol.Rowa; Cdbs_cluster.Protocol.Primary_copy;
          Cdbs_cluster.Protocol.Lazy { apply_factor = 0.3 };
        ])
    allocations

let failover () =
  let workload = Tpcapp.workload ~granularity:`Table ~eb in
  let backends = Backend.homogeneous 4 in
  let safe = Ksafety.allocate ~k:1 workload backends in
  let unsafe = Greedy.allocate workload backends in
  List.init 4 (fun b ->
      ( b + 1,
        Ksafety.survives safe ~failed:[ b ],
        Ksafety.survives unsafe ~failed:[ b ] ))

let granularity_comparison () =
  List.map
    (fun (name, granularity) ->
      let w =
        Cdbs_workloads.Timeseries.workload ~granularity
          ~rng:(Rng.create 11) ~n:3000
      in
      let alloc =
        Memetic.allocate ~rng:(Rng.create 3) w (Backend.homogeneous 6)
      in
      ( name,
        Allocation.scale alloc,
        Allocation.speedup alloc,
        Replication.degree alloc ))
    [ ("table", `Table); ("column", `Column); ("predicate", `Predicate) ]

let predictive_scaling () =
  let days =
    Cdbs_autoscale.Autoscaler.simulate_days ~days:2 ~predictive:true
      ~rng:(Rng.create 5) ()
  in
  List.mapi
    (fun i (d : Cdbs_autoscale.Autoscaler.summary) ->
      ( (if i = 0 then "day 1 (reactive, learning)" else "day 2 (predictive)"),
        d.Cdbs_autoscale.Autoscaler.avg_response,
        d.Cdbs_autoscale.Autoscaler.max_response_window,
        d.Cdbs_autoscale.Autoscaler.reallocations ))
    days

let robustness_demo () =
  let workload = Tpch.workload ~granularity:`Table ~sf:1. in
  let alloc = Greedy.allocate workload (Backend.homogeneous 4) in
  let before = Robustness.is_robust alloc ~tolerance:0.05 in
  Robustness.harden alloc ~tolerance:0.05;
  let after = Robustness.is_robust alloc ~tolerance:0.05 in
  (before, after, Replication.degree alloc)

let print_all () =
  Common.header "Ablation: greedy vs memetic vs optimal (TPC-App, table)";
  List.iter
    (fun (n, entries) ->
      Fmt.pr "%d backends:@." n;
      List.iter
        (fun (name, scale, stored) ->
          Fmt.pr "  %-24s scale %.3f   stored %8.1f MB@." name scale stored)
        entries)
    (solver_comparison ());
  Common.header "Ablation: local-search strategies (TPC-App, column, 8 nodes)";
  List.iter
    (fun (name, scale, stored) ->
      Fmt.pr "  %-24s scale %.3f   stored %8.1f MB@." name scale stored)
    (local_search_contribution ());
  Common.header "Ablation: k-safety overhead (TPC-App, 6 nodes)";
  List.iter
    (fun (k, scale, degree, tp) ->
      Fmt.pr "  k=%d: scale %.3f, replication %.2f, throughput %.0f q/s@." k
        scale degree tp)
    (ksafety_overhead ());
  Common.header "Ablation: update propagation protocols (TPC-App, 8 nodes)";
  List.iter
    (fun (aname, pname, tp, resp) ->
      Fmt.pr "  %-7s %-13s throughput %8.0f q/s   avg response %7.2f ms@."
        aname pname tp (resp *. 1000.))
    (protocol_comparison ());
  Common.header "Ablation: failover after one backend loss (4 nodes)";
  List.iter
    (fun (b, safe, unsafe) ->
      Fmt.pr "  lose B%d: k=1 allocation survives: %b, k=0 survives: %b@." b
        safe unsafe)
    (failover ());
  Common.header
    "Ablation: classification granularity (time-partitioned archive, 6 \
     nodes)";
  List.iter
    (fun (name, scale, speedup, degree) ->
      Fmt.pr "  %-10s scale %.3f   speedup %.2f   replication %.2f@." name
        scale speedup degree)
    (granularity_comparison ());
  Common.header "Ablation: reactive vs predictive autoscaling";
  List.iter
    (fun (label, avg, worst, reallocs) ->
      Fmt.pr "  %-28s avg %6.1f ms   worst %7.1f ms   %d reallocations@."
        label (avg *. 1000.) (worst *. 1000.) reallocs)
    (predictive_scaling ());
  Common.header "Ablation: robustness hardening (TPC-H, 4 nodes)";
  let before, after, degree = robustness_demo () in
  Fmt.pr
    "  robust to 5%% shift before hardening: %b, after: %b (replication \
     %.2f)@."
    before after degree
