(** The paper's worked examples as executable artifacts: the Section 3
    read-only tables (2 and 4 backends), the Appendix A heterogeneous
    update-aware allocation, and the closed-form speedup predictions. *)

val readonly_workload : unit -> Cdbs_core.Workload.t
(** Figure 2: relations A, B, C; classes C1 (30%), C2 (25%), C3 (25%),
    C4 (20%, referencing A and B). *)

val appendix_workload : unit -> Cdbs_core.Workload.t
(** Appendix A: reads Q1–Q4, updates U1–U3. *)

val appendix_backends : unit -> Cdbs_core.Backend.t list
(** Heterogeneous backends with loads 0.3/0.3/0.2/0.2. *)

val print_all : unit -> unit
