(** Elastic-scaling experiments: the "Number of Active Servers" figure,
    Fig. 5 (response times with and without scaling), and Fig. 6 (query
    class mix over a day). *)

val elastic_day :
  ?scale:float -> ?window_minutes:float -> unit ->
  Cdbs_autoscale.Autoscaler.summary
(** Run the autonomic day; defaults follow the paper (trace scaled 40x,
    10-minute windows). *)

val fig6 : ?step_minutes:float -> unit -> (float * (string * float) list) list
(** Per time step: the requests/10min each of the five classes A–E
    contributes (rate x mix share). *)

val segmentation_demo : unit -> (float * float) list * int
(** Run the Sec. 5 sliding-window segmentation over a synthetic day journal;
    returns the (start, end) hours of each segment and the backend count of
    the merged allocation. *)

val print_all : unit -> unit
