lib/experiments/fig_balance.mli:
