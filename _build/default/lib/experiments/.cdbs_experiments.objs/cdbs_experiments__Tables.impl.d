lib/experiments/tables.ml: Allocation Backend Cdbs_core Common Fmt Fragment Greedy Query_class Replication Speedup Workload
