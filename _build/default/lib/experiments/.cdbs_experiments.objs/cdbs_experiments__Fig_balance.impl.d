lib/experiments/fig_balance.ml: Array Cdbs_cluster Cdbs_core Cdbs_util Cdbs_workloads Common List
