lib/experiments/fig_tpch.ml: Cdbs_cluster Cdbs_core Cdbs_util Cdbs_workloads Common List Option Printf
