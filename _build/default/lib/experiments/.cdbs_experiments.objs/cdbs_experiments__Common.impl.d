lib/experiments/common.ml: Array Cdbs_cluster Cdbs_core Fmt List
