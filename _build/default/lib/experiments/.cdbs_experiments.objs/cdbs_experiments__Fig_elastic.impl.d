lib/experiments/fig_elastic.ml: Cdbs_autoscale Cdbs_core Cdbs_util Cdbs_workloads Common Fmt List
