lib/experiments/common.mli: Cdbs_cluster Cdbs_core Cdbs_util
