lib/experiments/fig_tpcapp.ml: Cdbs_cluster Cdbs_core Cdbs_util Cdbs_workloads Common Fmt List
