lib/experiments/ablation.mli:
