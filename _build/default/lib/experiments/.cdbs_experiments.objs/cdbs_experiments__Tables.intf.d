lib/experiments/tables.mli: Cdbs_core
