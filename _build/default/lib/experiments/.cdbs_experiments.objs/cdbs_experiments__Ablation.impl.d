lib/experiments/ablation.ml: Cdbs_autoscale Cdbs_cluster Cdbs_core Cdbs_util Cdbs_workloads Common Fmt List
