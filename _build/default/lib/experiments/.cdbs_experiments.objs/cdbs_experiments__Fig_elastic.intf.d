lib/experiments/fig_elastic.mli: Cdbs_autoscale
