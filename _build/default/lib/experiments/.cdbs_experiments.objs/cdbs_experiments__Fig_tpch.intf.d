lib/experiments/fig_tpch.mli: Common
