lib/experiments/fig_tpcapp.mli: Common
