module Tpcapp = Cdbs_workloads.Tpcapp
module Backend = Cdbs_core.Backend
module Speedup = Cdbs_core.Speedup
module Simulator = Cdbs_cluster.Simulator
module Rng = Cdbs_util.Rng

let default_counts = [ 1; 2; 4; 6; 8; 10 ]
let eb = 300

(* TPC-App requests are small web-service interactions whose entire cost is
   proportional to the data they touch (request_mb), so the fixed
   per-request overhead is folded into the scan rate; calibrated to the
   paper's ≈900 queries/s on a single node (Fig. 4(g)).  The ROWA sync
   overhead is what caps full replication near the paper's 2.6. *)
let cost =
  {
    Cdbs_cluster.Cost_model.default with
    Cdbs_cluster.Cost_model.base_latency = 0.;
    scan_seconds_per_mb = 0.0117;
    sync_overhead = 0.03;
  }

let throughput_of ~rng ~requests strategy n =
  let backends = Backend.homogeneous n in
  let table_workload = Tpcapp.workload ~granularity:`Table ~eb in
  let column_workload = Tpcapp.workload ~granularity:`Column ~eb in
  let alloc =
    Common.allocate ~rng strategy ~table_workload ~column_workload backends
  in
  let granularity =
    match strategy with Common.Column_based -> `Column | _ -> `Table
  in
  let reqs = Tpcapp.requests ~rng ~granularity ~eb ~n:requests in
  (Common.simulate ~cost alloc reqs).Simulator.throughput

let fig4f_4g ?(backend_counts = default_counts) ?(requests = 8000) ?(runs = 3)
    () =
  List.map
    (fun strategy ->
      (* Baseline: a single node processing the same request stream. *)
      let base =
        Common.mean_of_runs ~runs (fun seed ->
            throughput_of ~rng:(Rng.create seed) ~requests strategy 1)
      in
      ( strategy,
        List.map
          (fun n ->
            let tp =
              Common.mean_of_runs ~runs (fun seed ->
                  throughput_of
                    ~rng:(Rng.create (seed * 53))
                    ~requests strategy n)
            in
            (n, tp, tp /. base))
          backend_counts ))
    [ Common.Full_replication; Common.Table_based; Common.Column_based ]

let fig4h ?(backend_counts = default_counts) ?(requests = 8000) ?(runs = 10) ()
    =
  List.map
    (fun n ->
      let samples =
        List.init runs (fun seed ->
            throughput_of
              ~rng:(Rng.create ((seed + 1) * 211))
              ~requests Common.Column_based n)
      in
      ( n,
        Cdbs_util.Stats.mean samples,
        Cdbs_util.Stats.minimum samples,
        Cdbs_util.Stats.maximum samples ))
    backend_counts

let fig4i ?(backend_counts = [ 1; 5; 10 ]) ?(requests = 4000) () =
  let eb = 12_000 in
  let table_workload = Tpcapp.workload_large_scale ~granularity:`Table ~eb in
  let column_workload = Tpcapp.workload_large_scale ~granularity:`Column ~eb in
  let run strategy n =
    let rng = Rng.create (n * 17) in
    let backends = Backend.homogeneous n in
    let alloc =
      Common.allocate ~rng strategy ~table_workload ~column_workload backends
    in
    let reqs = Tpcapp.requests_large_scale ~rng ~eb ~n:requests in
    (Common.simulate ~cost alloc reqs).Simulator.throughput
  in
  List.map
    (fun strategy ->
      let base = run strategy 1 in
      ( Common.strategy_name strategy,
        List.map (fun n -> run strategy n /. base) backend_counts ))
    [ Common.Full_replication; Common.Table_based; Common.Column_based ]

let theoretical () =
  [
    ( "Eq. 29: full replication cap (10 nodes)",
      Speedup.full_replication ~nodes:10
        ~update_weight:Tpcapp.update_weight );
    (* Order_Line writes are 13% of the weight; pinned exclusively to one
       backend of ten, that backend runs at 0.13 / 0.1 = 1.3 of its fair
       share. *)
    ( "Eq. 30: partial allocation cap (10 nodes)",
      Speedup.of_scale ~nodes:10
        ~scale:(Tpcapp.order_line_weight /. 0.1) );
  ]

let print_all () =
  Common.header "Fig 4(f)/(g): TPC-App speedup and throughput";
  let data = fig4f_4g () in
  Common.table
    ~columns:
      (List.map (fun (n, _, _) -> string_of_int n) (snd (List.hd data)))
    (List.concat_map
       (fun (strategy, rows) ->
         [
           ( Common.strategy_name strategy ^ " (q/s)",
             List.map (fun (_, tp, _) -> tp) rows );
           ( Common.strategy_name strategy ^ " (speedup)",
             List.map (fun (_, _, s) -> s) rows );
         ])
       data);
  List.iter
    (fun (label, v) -> Fmt.pr "%-44s%8.2f@." label v)
    (theoretical ());
  Common.header "Fig 4(h): TPC-App column-based throughput deviation";
  let dev = fig4h () in
  Common.table
    ~columns:(List.map (fun (n, _, _, _) -> string_of_int n) dev)
    [
      ("average", List.map (fun (_, a, _, _) -> a) dev);
      ("minimum", List.map (fun (_, _, m, _) -> m) dev);
      ("maximum", List.map (fun (_, _, _, m) -> m) dev);
    ];
  Common.header "Fig 4(i): TPC-App large scale (relative throughput)";
  Common.table ~columns:[ "1"; "5"; "10" ] (fig4i ())
