(** TPC-App experiments: Figs. 4(f)–4(i) of the paper. *)

val fig4f_4g :
  ?backend_counts:int list -> ?requests:int -> ?runs:int -> unit ->
  (Common.strategy * (int * float * float) list) list
(** Per strategy and backend count: (backends, throughput q/s, speedup).
    Covers both Fig. 4(f) (speedup) and Fig. 4(g) (throughput). *)

val fig4h :
  ?backend_counts:int list -> ?requests:int -> ?runs:int -> unit ->
  (int * float * float * float) list
(** Column-based throughput deviation: (backends, avg, min, max). *)

val fig4i :
  ?backend_counts:int list -> ?requests:int -> unit ->
  (string * float list) list
(** Large-scale (EB = 12000) relative throughput for 1/5/10 backends per
    strategy. *)

val theoretical : unit -> (string * float) list
(** The paper's closed-form predictions: Eq. 29 (full replication cap,
    3.07) and Eq. 30 (partial allocation cap, 7.7). *)

val print_all : unit -> unit
