open Cdbs_core

let fr name = Fragment.table name ~size:1.

let readonly_workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "C1" [ fr "A" ] ~weight:0.30;
        Query_class.read "C2" [ fr "B" ] ~weight:0.25;
        Query_class.read "C3" [ fr "C" ] ~weight:0.25;
        Query_class.read "C4" [ fr "A"; fr "B" ] ~weight:0.20;
      ]
    ~updates:[]

let appendix_workload () =
  Workload.make
    ~reads:
      [
        Query_class.read "Q1" [ fr "A" ] ~weight:0.24;
        Query_class.read "Q2" [ fr "B" ] ~weight:0.20;
        Query_class.read "Q3" [ fr "C" ] ~weight:0.20;
        Query_class.read "Q4" [ fr "A"; fr "B" ] ~weight:0.16;
      ]
    ~updates:
      [
        Query_class.update "U1" [ fr "A" ] ~weight:0.04;
        Query_class.update "U2" [ fr "B" ] ~weight:0.10;
        Query_class.update "U3" [ fr "C" ] ~weight:0.06;
      ]

let appendix_backends () = Backend.heterogeneous [ 0.3; 0.3; 0.2; 0.2 ]

let show title alloc =
  Common.header title;
  Fmt.pr "%a@." Allocation.pp_allocation_matrix alloc;
  Fmt.pr "%a@." Allocation.pp_load_matrix alloc;
  Fmt.pr "scale %.3f, speedup %.2f, degree of replication %.2f@."
    (Allocation.scale alloc) (Allocation.speedup alloc)
    (Replication.degree alloc)

let print_all () =
  let w = readonly_workload () in
  show "Sec. 3 table: read-only allocation, 2 backends"
    (Greedy.allocate w (Backend.homogeneous 2));
  show "Sec. 3 table: read-only allocation, 4 backends"
    (Greedy.allocate w (Backend.homogeneous 4));
  show "Appendix A: heterogeneous update-aware allocation"
    (Greedy.allocate (appendix_workload ()) (appendix_backends ()));
  Common.header "Analytical model (Eqs. 1, 17-19, 29-30)";
  Fmt.pr "Eq. 29 full replication, 25%% updates, 10 nodes: %.2f@."
    (Speedup.full_replication ~nodes:10 ~update_weight:0.25);
  Fmt.pr "Eq. 30 partial allocation, scale 1.3, 10 nodes: %.2f@."
    (Speedup.of_scale ~nodes:10 ~scale:1.3);
  Fmt.pr "Eq. 17 bound, Appendix A workload, 100 nodes: %.2f@."
    (Speedup.max_speedup_bound (appendix_workload ()) ~nodes:100)
