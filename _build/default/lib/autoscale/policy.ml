type t = {
  min_nodes : int;
  max_nodes : int;
  up_threshold : float;
  down_threshold : float;
  cooldown_windows : int;
  mutable cooldown : int;
}

type decision =
  | Stay
  | Scale_to of int

let create ?(min_nodes = 1) ?(max_nodes = 6) ?(up_threshold = 0.018)
    ?(down_threshold = 0.0118) ?(cooldown_windows = 1) () =
  if min_nodes < 1 || max_nodes < min_nodes then
    invalid_arg "Policy.create: bad node bounds";
  {
    min_nodes;
    max_nodes;
    up_threshold;
    down_threshold;
    cooldown_windows;
    cooldown = 0;
  }

let decide t ~current ~avg_response ~utilization =
  if t.cooldown > 0 then begin
    t.cooldown <- t.cooldown - 1;
    Stay
  end
  else if avg_response > t.up_threshold && current < t.max_nodes then begin
    t.cooldown <- t.cooldown_windows;
    (* Aggressive up, conservative down: overload hurts immediately, and a
       melted-down window (far above threshold) warrants a double step. *)
    let step = if avg_response > 6. *. t.up_threshold then 2 else 1 in
    Scale_to (min t.max_nodes (current + step))
  end
  else if
    avg_response < t.down_threshold
    && utilization < 0.35
    && current > t.min_nodes
  then begin
    t.cooldown <- t.cooldown_windows;
    Scale_to (current - 1)
  end
  else Stay
