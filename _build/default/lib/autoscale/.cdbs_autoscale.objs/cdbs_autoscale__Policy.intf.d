lib/autoscale/policy.mli:
