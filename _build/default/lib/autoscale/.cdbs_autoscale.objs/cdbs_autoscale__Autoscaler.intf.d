lib/autoscale/autoscaler.mli: Cdbs_util Policy
