lib/autoscale/forecast.ml: Array
