lib/autoscale/forecast.mli:
