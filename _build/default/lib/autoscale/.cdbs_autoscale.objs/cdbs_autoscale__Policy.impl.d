lib/autoscale/policy.ml:
