lib/autoscale/autoscaler.ml: Array Cdbs_cluster Cdbs_core Cdbs_util Cdbs_workloads Forecast List Policy Stdlib
