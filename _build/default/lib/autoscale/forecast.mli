(** Periodic workload forecasting (paper Sec. 5: "predictably changing
    workloads ... in the form of periodic changes such as daily patterns").

    Learns a per-window-of-day profile with an exponentially weighted
    moving average; after one observed period it predicts the load of any
    upcoming window, letting the autoscaler provision {e before} the
    morning ramp instead of reacting to the first overloaded window. *)

type t

val create : ?alpha:float -> windows_per_day:int -> unit -> t
(** [alpha] is the EWMA smoothing factor (default 0.5). *)

val observe : t -> window:int -> rate:float -> unit
(** Record the observed request rate of a window (index modulo the
    period). *)

val predict : t -> window:int -> float option
(** Predicted rate for the window, [None] before any observation of that
    window-of-day. *)

val coverage : t -> float
(** Fraction of the period's windows with at least one observation. *)
