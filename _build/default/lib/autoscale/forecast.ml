type t = {
  alpha : float;
  values : float option array;
}

let create ?(alpha = 0.5) ~windows_per_day () =
  if windows_per_day <= 0 then invalid_arg "Forecast.create";
  if alpha <= 0. || alpha > 1. then invalid_arg "Forecast.create: alpha";
  { alpha; values = Array.make windows_per_day None }

let slot t window = ((window mod Array.length t.values) + Array.length t.values)
                    mod Array.length t.values

let observe t ~window ~rate =
  let i = slot t window in
  t.values.(i) <-
    (match t.values.(i) with
    | None -> Some rate
    | Some prev -> Some ((t.alpha *. rate) +. ((1. -. t.alpha) *. prev)))

let predict t ~window = t.values.(slot t window)

let coverage t =
  let filled =
    Array.fold_left
      (fun acc v -> if v = None then acc else acc + 1)
      0 t.values
  in
  float_of_int filled /. float_of_int (Array.length t.values)
