(** Autonomic scaling policy (paper Sec. 5).

    The paper's autonomic CDBS scales the backend count up and down based
    on the average response time of the queries.  This policy adds the
    standard guards: hysteresis (distinct up/down thresholds) and a
    cooldown so a single noisy window cannot thrash the cluster. *)

type t

type decision =
  | Stay
  | Scale_to of int  (** new backend count *)

val create :
  ?min_nodes:int ->
  ?max_nodes:int ->
  ?up_threshold:float ->
  ?down_threshold:float ->
  ?cooldown_windows:int ->
  unit ->
  t
(** Defaults: 1–6 nodes, scale up (by 2 when badly overloaded) when the
    windowed average response time exceeds [up_threshold] (0.018 s), scale
    down when it stays below [down_threshold] (0.0118 s) {e and} utilization
    is low, with a cooldown of 1 window between scaling actions. *)

val decide :
  t -> current:int -> avg_response:float -> utilization:float -> decision
(** One decision per measurement window; call once per window so the
    cooldown counts correctly. *)
