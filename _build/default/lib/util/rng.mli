(** Deterministic splitmix64 pseudo-random generator.

    Every randomized component of the reproduction (data generation, workload
    streams, the memetic mutation operator, random allocation baseline) takes
    an explicit [Rng.t] so runs are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. [n] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean; used
    for inter-arrival times in the cluster simulator. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal sample. *)

val split : t -> t
(** A generator statistically independent of the parent's future output. *)
