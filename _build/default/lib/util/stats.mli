(** Small descriptive-statistics helpers used by the simulator and the
    benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val stdev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank on the sorted list.
    @raise Invalid_argument on an empty list. *)

val relative_deviation : float list -> float
(** Mean absolute deviation from the mean, relative to the mean — the
    "deviation from balance" measure plotted in Fig. 4(j). 0 when the mean
    is 0. *)

val histogram : bins:int -> lo:float -> hi:float -> float list -> int array
(** Fixed-width histogram; values outside [lo, hi] clamp to the end bins. *)
