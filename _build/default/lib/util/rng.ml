type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the value stays non-negative in OCaml's native
     63-bit integers. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits scaled to [0,1) *)
  v /. 9007199254740992.0 *. x

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let gaussian t ~mu ~sigma =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 1e-12 then 1e-12 else u1 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let split t = { state = next_int64 t }
