let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stdev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs)
      in
      sqrt var

let minimum = function
  | [] -> 0.
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> 0.
  | x :: xs -> List.fold_left max x xs

let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
      in
      let rank = max 0 (min (n - 1) rank) in
      List.nth sorted rank

let relative_deviation xs =
  let m = mean xs in
  if m = 0. then 0.
  else
    let mad =
      List.fold_left (fun acc x -> acc +. abs_float (x -. m)) 0. xs
      /. float_of_int (List.length xs)
    in
    mad /. m

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  List.iter
    (fun x ->
      let idx =
        if width <= 0. then 0
        else int_of_float (floor ((x -. lo) /. width))
      in
      let idx = max 0 (min (bins - 1) idx) in
      counts.(idx) <- counts.(idx) + 1)
    xs;
  counts
