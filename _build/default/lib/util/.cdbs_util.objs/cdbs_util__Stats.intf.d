lib/util/stats.mli:
