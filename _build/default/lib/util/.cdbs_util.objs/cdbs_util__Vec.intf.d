lib/util/vec.mli:
