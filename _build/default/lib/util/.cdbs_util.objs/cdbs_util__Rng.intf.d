lib/util/rng.mli:
