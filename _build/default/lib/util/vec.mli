(** Growable array (OCaml 5.1 has no [Dynarray] yet). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val clear : 'a t -> unit

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)
