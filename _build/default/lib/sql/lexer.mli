(** Hand-written lexer for the SQL subset.

    Keywords are case-insensitive; identifiers preserve case.  String
    literals use single quotes with [''] as the escape for a quote. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Keyword of string  (** upper-cased *)
  | Symbol of string  (** punctuation and operators, e.g. ["<="], [","] *)
  | Eof

exception Lex_error of string * int  (** message and byte offset *)

val tokenize : string -> token list
(** [tokenize s] lexes the full input, ending with [Eof].
    @raise Lex_error on an unexpected character or unterminated string. *)

val pp_token : token Fmt.t
