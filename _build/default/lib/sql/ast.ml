(** Abstract syntax for the SQL subset understood by the CDBS prototype.

    The subset covers what the classification step (Sec. 3.1) needs to see:
    which tables and columns a statement references and which predicates it
    places on them.  It also carries enough structure for the in-memory
    executor in [cdbs_storage] to run the statements. *)

type literal =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Null

type binop =
  | Eq | Neq | Lt | Le | Gt | Ge
  | Add | Sub | Mul | Div
  | And | Or

type expr =
  | Lit of literal
  | Column of string option * string
      (** [(qualifier, column)]; the qualifier is a table name or alias *)
  | Binop of binop * expr * expr
  | Not of expr
  | Between of expr * expr * expr  (** [Between (e, lo, hi)] *)
  | In_list of expr * expr list
  | Like of expr * string
  | Call of string * expr list  (** aggregate / scalar function call *)
  | Star  (** the [*] of [COUNT] or of a select list *)

type order = Asc | Desc

type select_item = {
  expr : expr;
  alias : string option;
}

type table_ref = {
  table : string;
  tbl_alias : string option;
}

type join = {
  jtable : table_ref;
  on : expr option;  (** [None] for a cross join from comma syntax *)
}

type select = {
  distinct : bool;
  items : select_item list;
  from : table_ref;
  joins : join list;
  where : expr option;
  group_by : (string option * string) list;
  having : expr option;
  order_by : ((string option * string) * order) list;
  limit : int option;
}

type statement =
  | Select of select
  | Insert of { target : string; columns : string list; values : expr list }
  | Update of {
      target : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Delete of { target : string; where : expr option }

(** [is_update st] is true for statements that modify data; the paper calls
    these "update requests" and routes them with ROWA. *)
let is_update = function
  | Select _ -> false
  | Insert _ | Update _ | Delete _ -> true

let rec pp_expr ppf = function
  | Lit (Int i) -> Fmt.int ppf i
  | Lit (Float f) -> Fmt.float ppf f
  | Lit (String s) -> Fmt.pf ppf "'%s'" s
  | Lit (Bool b) -> Fmt.bool ppf b
  | Lit Null -> Fmt.string ppf "NULL"
  | Column (None, c) -> Fmt.string ppf c
  | Column (Some t, c) -> Fmt.pf ppf "%s.%s" t c
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Not e -> Fmt.pf ppf "(NOT %a)" pp_expr e
  | Between (e, lo, hi) ->
      Fmt.pf ppf "(%a BETWEEN %a AND %a)" pp_expr e pp_expr lo pp_expr hi
  | In_list (e, es) ->
      Fmt.pf ppf "(%a IN (%a))" pp_expr e Fmt.(list ~sep:comma pp_expr) es
  | Like (e, pat) -> Fmt.pf ppf "(%a LIKE '%s')" pp_expr e pat
  | Call (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args
  | Star -> Fmt.string ppf "*"

and binop_name = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | And -> "AND" | Or -> "OR"
