open Ast

exception Parse_error of string

type state = {
  tokens : Lexer.token array;
  mutable pos : int;
}

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_error
       (Fmt.str "%s at token %d (%a)" msg st.pos Lexer.pp_token (peek st)))

let expect_keyword st kw =
  match peek st with
  | Lexer.Keyword k when k = kw -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" kw)

let expect_symbol st sym =
  match peek st with
  | Lexer.Symbol s when s = sym -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" sym)

let accept_keyword st kw =
  match peek st with
  | Lexer.Keyword k when k = kw ->
      advance st;
      true
  | _ -> false

let accept_symbol st sym =
  match peek st with
  | Lexer.Symbol s when s = sym ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

(* Column reference: [ident] or [ident . ident]. *)
let parse_column_ref st =
  let first = expect_ident st in
  if accept_symbol st "." then (Some first, expect_ident st)
  else (None, first)

(* Expression grammar, loosest first:
   or_expr > and_expr > not_expr > comparison > additive > multiplicative
   > primary *)
let rec parse_or st =
  let lhs = parse_and st in
  if accept_keyword st "OR" then Binop (Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_keyword st "AND" then Binop (And, lhs, parse_and st) else lhs

and parse_not st =
  if accept_keyword st "NOT" then Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let lhs = parse_additive st in
  match peek st with
  | Lexer.Symbol "=" ->
      advance st;
      Binop (Eq, lhs, parse_additive st)
  | Lexer.Symbol "<>" ->
      advance st;
      Binop (Neq, lhs, parse_additive st)
  | Lexer.Symbol "<" ->
      advance st;
      Binop (Lt, lhs, parse_additive st)
  | Lexer.Symbol "<=" ->
      advance st;
      Binop (Le, lhs, parse_additive st)
  | Lexer.Symbol ">" ->
      advance st;
      Binop (Gt, lhs, parse_additive st)
  | Lexer.Symbol ">=" ->
      advance st;
      Binop (Ge, lhs, parse_additive st)
  | Lexer.Keyword "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      expect_keyword st "AND";
      let hi = parse_additive st in
      Between (lhs, lo, hi)
  | Lexer.Keyword "IN" ->
      advance st;
      expect_symbol st "(";
      let rec items acc =
        let e = parse_additive st in
        if accept_symbol st "," then items (e :: acc)
        else begin
          expect_symbol st ")";
          List.rev (e :: acc)
        end
      in
      In_list (lhs, items [])
  | Lexer.Keyword "LIKE" -> (
      advance st;
      match peek st with
      | Lexer.String_lit pat ->
          advance st;
          Like (lhs, pat)
      | _ -> fail st "expected string literal after LIKE")
  | Lexer.Keyword "IS" ->
      advance st;
      let negated = accept_keyword st "NOT" in
      expect_keyword st "NULL";
      let base = Binop (Eq, lhs, Lit Null) in
      if negated then Not base else base
  | _ -> lhs

and parse_additive st =
  let rec loop lhs =
    if accept_symbol st "+" then loop (Binop (Add, lhs, parse_multiplicative st))
    else if accept_symbol st "-" then
      loop (Binop (Sub, lhs, parse_multiplicative st))
    else lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    if accept_symbol st "*" then loop (Binop (Mul, lhs, parse_primary st))
    else if accept_symbol st "/" then loop (Binop (Div, lhs, parse_primary st))
    else lhs
  in
  loop (parse_primary st)

and parse_primary st =
  match peek st with
  | Lexer.Int_lit i ->
      advance st;
      Lit (Int i)
  | Lexer.Float_lit f ->
      advance st;
      Lit (Float f)
  | Lexer.String_lit s ->
      advance st;
      Lit (String s)
  | Lexer.Keyword "NULL" ->
      advance st;
      Lit Null
  | Lexer.Keyword "TRUE" ->
      advance st;
      Lit (Bool true)
  | Lexer.Keyword "FALSE" ->
      advance st;
      Lit (Bool false)
  | Lexer.Symbol "-" ->
      advance st;
      Binop (Sub, Lit (Int 0), parse_primary st)
  | Lexer.Symbol "(" ->
      advance st;
      let e = parse_or st in
      expect_symbol st ")";
      e
  | Lexer.Symbol "*" ->
      advance st;
      Star
  | Lexer.Ident name ->
      advance st;
      if accept_symbol st "(" then begin
        (* function call *)
        if accept_symbol st ")" then Call (name, [])
        else begin
          let rec args acc =
            let e = parse_or st in
            if accept_symbol st "," then args (e :: acc)
            else begin
              expect_symbol st ")";
              List.rev (e :: acc)
            end
          in
          Call (name, args [])
        end
      end
      else if accept_symbol st "." then Column (Some name, expect_ident st)
      else Column (None, name)
  | _ -> fail st "expected expression"

let parse_select_item st =
  let expr = parse_or st in
  let alias =
    if accept_keyword st "AS" then Some (expect_ident st)
    else
      match peek st with
      | Lexer.Ident a ->
          advance st;
          Some a
      | _ -> None
  in
  { expr; alias }

let parse_table_ref st =
  let table = expect_ident st in
  let tbl_alias =
    if accept_keyword st "AS" then Some (expect_ident st)
    else
      match peek st with
      | Lexer.Ident a ->
          advance st;
          Some a
      | _ -> None
  in
  { table; tbl_alias }

let parse_select st =
  expect_keyword st "SELECT";
  let distinct = accept_keyword st "DISTINCT" in
  let rec items acc =
    let item = parse_select_item st in
    if accept_symbol st "," then items (item :: acc)
    else List.rev (item :: acc)
  in
  let items = items [] in
  expect_keyword st "FROM";
  let from = parse_table_ref st in
  let joins = ref [] in
  let continue = ref true in
  while !continue do
    if accept_symbol st "," then
      joins := { jtable = parse_table_ref st; on = None } :: !joins
    else if
      accept_keyword st "JOIN"
      || (accept_keyword st "INNER" && (expect_keyword st "JOIN"; true))
      || (accept_keyword st "LEFT" && (expect_keyword st "JOIN"; true))
    then begin
      let jtable = parse_table_ref st in
      let on =
        if accept_keyword st "ON" then Some (parse_or st) else None
      in
      joins := { jtable; on } :: !joins
    end
    else continue := false
  done;
  let where = if accept_keyword st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_keyword st "GROUP" then begin
      expect_keyword st "BY";
      let rec cols acc =
        let c = parse_column_ref st in
        if accept_symbol st "," then cols (c :: acc) else List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let having =
    if accept_keyword st "HAVING" then Some (parse_or st) else None
  in
  let order_by =
    if accept_keyword st "ORDER" then begin
      expect_keyword st "BY";
      let rec cols acc =
        let c = parse_column_ref st in
        let dir =
          if accept_keyword st "DESC" then Desc
          else begin
            ignore (accept_keyword st "ASC");
            Asc
          end
        in
        if accept_symbol st "," then cols ((c, dir) :: acc)
        else List.rev ((c, dir) :: acc)
      in
      cols []
    end
    else []
  in
  let limit =
    if accept_keyword st "LIMIT" then
      match peek st with
      | Lexer.Int_lit i ->
          advance st;
          Some i
      | _ -> fail st "expected integer after LIMIT"
    else None
  in
  Select
    {
      distinct;
      items;
      from;
      joins = List.rev !joins;
      where;
      group_by;
      having;
      order_by;
      limit;
    }

let parse_insert st =
  expect_keyword st "INSERT";
  expect_keyword st "INTO";
  let target = expect_ident st in
  let columns =
    if accept_symbol st "(" then begin
      let rec cols acc =
        let c = expect_ident st in
        if accept_symbol st "," then cols (c :: acc)
        else begin
          expect_symbol st ")";
          List.rev (c :: acc)
        end
      in
      cols []
    end
    else []
  in
  expect_keyword st "VALUES";
  expect_symbol st "(";
  let rec vals acc =
    let e = parse_or st in
    if accept_symbol st "," then vals (e :: acc)
    else begin
      expect_symbol st ")";
      List.rev (e :: acc)
    end
  in
  Insert { target; columns; values = vals [] }

let parse_update st =
  expect_keyword st "UPDATE";
  let target = expect_ident st in
  expect_keyword st "SET";
  let rec assigns acc =
    let col = expect_ident st in
    expect_symbol st "=";
    let e = parse_or st in
    if accept_symbol st "," then assigns ((col, e) :: acc)
    else List.rev ((col, e) :: acc)
  in
  let assignments = assigns [] in
  let where = if accept_keyword st "WHERE" then Some (parse_or st) else None in
  Update { target; assignments; where }

let parse_delete st =
  expect_keyword st "DELETE";
  expect_keyword st "FROM";
  let target = expect_ident st in
  let where = if accept_keyword st "WHERE" then Some (parse_or st) else None in
  Delete { target; where }

let parse_statement st =
  let stmt =
    match peek st with
    | Lexer.Keyword "SELECT" -> parse_select st
    | Lexer.Keyword "INSERT" -> parse_insert st
    | Lexer.Keyword "UPDATE" -> parse_update st
    | Lexer.Keyword "DELETE" -> parse_delete st
    | _ -> fail st "expected SELECT, INSERT, UPDATE or DELETE"
  in
  ignore (accept_symbol st ";");
  (match peek st with
  | Lexer.Eof -> ()
  | _ -> fail st "trailing input after statement");
  stmt

let with_state sql f =
  let tokens =
    try Array.of_list (Lexer.tokenize sql)
    with Lexer.Lex_error (msg, off) ->
      raise (Parse_error (Printf.sprintf "lex error: %s at offset %d" msg off))
  in
  f { tokens; pos = 0 }

let parse sql = with_state sql parse_statement

let parse_expr s =
  with_state s (fun st ->
      let e = parse_or st in
      match peek st with
      | Lexer.Eof -> e
      | _ -> fail st "trailing input after expression")
