open Ast

type bound = Neg_inf | Pos_inf | Value of float

type interval = {
  lo : bound;
  hi : bound;
}

type footprint = {
  tables : string list;
  columns : (string * string) list;
  predicates : ((string * string) * interval) list;
  is_update : bool;
}

let full_range = { lo = Neg_inf; hi = Pos_inf }

let interval_intersect a b =
  let lo =
    match (a.lo, b.lo) with
    | Neg_inf, x | x, Neg_inf -> x
    | Pos_inf, _ | _, Pos_inf -> Pos_inf
    | Value x, Value y -> Value (max x y)
  in
  let hi =
    match (a.hi, b.hi) with
    | Pos_inf, x | x, Pos_inf -> x
    | Neg_inf, _ | _, Neg_inf -> Neg_inf
    | Value x, Value y -> Value (min x y)
  in
  match (lo, hi) with
  | Value l, Value h when l > h -> None
  | Pos_inf, _ | _, Neg_inf -> None
  | _ -> Some { lo; hi }

(* Alias environment: alias or table name -> table name. *)
type env = {
  aliases : (string * string) list;
  schema : (string * string list) list;
}

let resolve_qualifier env q =
  match List.assoc_opt q env.aliases with Some t -> t | None -> q

(* Resolve an unqualified column: the table in scope whose schema contains
   it; if the schema is unknown, attribute it to the sole table in scope or
   "?" when ambiguous. *)
let resolve_unqualified env col =
  let in_scope =
    List.sort_uniq String.compare (List.map snd env.aliases)
  in
  let owners =
    List.filter
      (fun t ->
        match List.assoc_opt t env.schema with
        | Some cols -> List.mem col cols
        | None -> false)
      in_scope
  in
  match (owners, in_scope) with
  | t :: _, _ -> t
  | [], [ t ] -> t
  | [], _ -> "?"

let resolve env (qualifier, col) =
  match qualifier with
  | Some q -> (resolve_qualifier env q, col)
  | None -> (resolve_unqualified env col, col)

let rec columns_of_expr env acc = function
  | Lit _ | Star -> acc
  | Column (q, c) -> resolve env (q, c) :: acc
  | Binop (_, a, b) -> columns_of_expr env (columns_of_expr env acc a) b
  | Not e -> columns_of_expr env acc e
  | Between (e, lo, hi) ->
      columns_of_expr env (columns_of_expr env (columns_of_expr env acc e) lo) hi
  | In_list (e, es) ->
      List.fold_left (columns_of_expr env) (columns_of_expr env acc e) es
  | Like (e, _) -> columns_of_expr env acc e
  | Call (_, args) -> List.fold_left (columns_of_expr env) acc args

let literal_value = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1. else 0.)
  | String _ | Null -> None

(* Extract per-column range restrictions from the conjunctive skeleton of a
   predicate.  Disjunctions widen to the full range (conservative). *)
let rec ranges_of_expr env = function
  | Binop (And, a, b) ->
      let merge ra rb =
        List.fold_left
          (fun acc (col, iv) ->
            match List.assoc_opt col acc with
            | None -> (col, iv) :: acc
            | Some prev ->
                let merged =
                  match interval_intersect prev iv with
                  | Some m -> m
                  | None -> (* contradictory; keep empty-ish point *) prev
                in
                (col, merged) :: List.remove_assoc col acc)
          ra rb
      in
      merge (ranges_of_expr env a) (ranges_of_expr env b)
  | Binop (((Eq | Lt | Le | Gt | Ge) as op), Column (q, c), Lit l)
  | Binop
      ( ((Eq | Lt | Le | Gt | Ge) as op),
        Lit l,
        Column (q, c) )
    when literal_value l <> None -> (
      let v = Option.get (literal_value l) in
      let col = resolve env (q, c) in
      let iv =
        match op with
        | Eq -> { lo = Value v; hi = Value v }
        | Lt | Le -> { lo = Neg_inf; hi = Value v }
        | Gt | Ge -> { lo = Value v; hi = Pos_inf }
        | _ -> full_range
      in
      [ (col, iv) ])
  | Between (Column (q, c), Lit l1, Lit l2)
    when literal_value l1 <> None && literal_value l2 <> None ->
      let col = resolve env (q, c) in
      [
        ( col,
          {
            lo = Value (Option.get (literal_value l1));
            hi = Value (Option.get (literal_value l2));
          } );
      ]
  | _ -> []

(* When a literal is on the left ("5 < x") the direction flips; handle by
   rewriting such comparisons before extraction. *)
let rec normalize_comparisons = function
  | Binop (Lt, (Lit _ as l), rhs) -> Binop (Gt, rhs, l)
  | Binop (Le, (Lit _ as l), rhs) -> Binop (Ge, rhs, l)
  | Binop (Gt, (Lit _ as l), rhs) -> Binop (Lt, rhs, l)
  | Binop (Ge, (Lit _ as l), rhs) -> Binop (Le, rhs, l)
  | Binop (And, a, b) ->
      Binop (And, normalize_comparisons a, normalize_comparisons b)
  | Binop (Or, a, b) ->
      Binop (Or, normalize_comparisons a, normalize_comparisons b)
  | e -> e

let dedup_sorted compare l = List.sort_uniq compare l

let schema_columns env table =
  match List.assoc_opt table env.schema with Some cols -> cols | None -> []

let footprint_of_statement ?(schema = []) (st : statement) : footprint =
  match st with
  | Select s ->
      let tables = s.from :: List.map (fun j -> j.jtable) s.joins in
      let aliases =
        List.map
          (fun tr ->
            ( (match tr.tbl_alias with Some a -> a | None -> tr.table),
              tr.table ))
          tables
        @ List.map (fun tr -> (tr.table, tr.table)) tables
      in
      let env = { aliases; schema } in
      let cols = ref [] in
      let add_expr e = cols := columns_of_expr env !cols e in
      List.iter
        (fun item ->
          match item.expr with
          | Star ->
              List.iter
                (fun tr ->
                  List.iter
                    (fun c -> cols := (tr.table, c) :: !cols)
                    (schema_columns env tr.table))
                tables
          | e -> add_expr e)
        s.items;
      List.iter (fun j -> Option.iter add_expr j.on) s.joins;
      Option.iter add_expr s.where;
      List.iter (fun c -> cols := resolve env c :: !cols) s.group_by;
      Option.iter add_expr s.having;
      (* ORDER BY may name select-list aliases; those are not base
         columns. *)
      let aliases = List.filter_map (fun item -> item.alias) s.items in
      List.iter
        (fun (c, _) ->
          match c with
          | None, name when List.mem name aliases -> ()
          | c -> cols := resolve env c :: !cols)
        s.order_by;
      let predicates =
        match s.where with
        | None -> []
        | Some w -> ranges_of_expr env (normalize_comparisons w)
      in
      {
        tables =
          dedup_sorted String.compare (List.map (fun tr -> tr.table) tables);
        columns = dedup_sorted compare !cols;
        predicates;
        is_update = false;
      }
  | Insert { target; columns; values } ->
      let cols =
        match columns with
        | [] -> List.map (fun c -> (target, c)) (match List.assoc_opt target schema with Some cs -> cs | None -> [])
        | cs -> List.map (fun c -> (target, c)) cs
      in
      (* An insert lands in the horizontal range containing its literal
         values: expose each literal column as a point restriction so
         predicate-based classification places the insert with the right
         range fragment. *)
      let predicates =
        if columns = [] then []
        else
          List.concat
            (List.map2
               (fun col v ->
                 match v with
                 | Lit l -> (
                     match literal_value l with
                     | Some x ->
                         [ ((target, col), { lo = Value x; hi = Value x }) ]
                     | None -> [])
                 | _ -> [])
               columns values)
      in
      {
        tables = [ target ];
        columns = dedup_sorted compare cols;
        predicates;
        is_update = true;
      }
  | Update { target; assignments; where } ->
      let env = { aliases = [ (target, target) ]; schema } in
      let cols = ref (List.map (fun (c, _) -> (target, c)) assignments) in
      List.iter
        (fun (_, e) -> cols := columns_of_expr env !cols e)
        assignments;
      Option.iter (fun w -> cols := columns_of_expr env !cols w) where;
      let predicates =
        match where with
        | None -> []
        | Some w -> ranges_of_expr env (normalize_comparisons w)
      in
      {
        tables = [ target ];
        columns = dedup_sorted compare !cols;
        predicates;
        is_update = true;
      }
  | Delete { target; where } ->
      let env = { aliases = [ (target, target) ]; schema } in
      let cols = ref [] in
      Option.iter (fun w -> cols := columns_of_expr env !cols w) where;
      let predicates =
        match where with
        | None -> []
        | Some w -> ranges_of_expr env (normalize_comparisons w)
      in
      {
        tables = [ target ];
        columns = dedup_sorted compare !cols;
        predicates;
        is_update = true;
      }

let footprint_of_sql ?schema sql =
  footprint_of_statement ?schema (Parser.parse sql)

let pp_bound ppf = function
  | Neg_inf -> Fmt.string ppf "-inf"
  | Pos_inf -> Fmt.string ppf "+inf"
  | Value v -> Fmt.float ppf v

let pp_footprint ppf fp =
  Fmt.pf ppf "@[<v>tables: %a@,columns: %a@,predicates: %a@,update: %b@]"
    Fmt.(list ~sep:comma string)
    fp.tables
    Fmt.(list ~sep:comma (pair ~sep:(any ".") string string))
    fp.columns
    Fmt.(
      list ~sep:comma (fun ppf ((t, c), iv) ->
          pf ppf "%s.%s in [%a,%a]" t c pp_bound iv.lo pp_bound iv.hi))
    fp.predicates fp.is_update
