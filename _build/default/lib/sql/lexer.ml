type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Keyword of string
  | Symbol of string
  | Eof

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER";
    "ASC"; "DESC"; "LIMIT"; "JOIN"; "INNER"; "LEFT"; "ON"; "AS"; "AND"; "OR";
    "NOT"; "BETWEEN"; "IN"; "LIKE"; "INSERT"; "INTO"; "VALUES"; "UPDATE";
    "SET"; "DELETE"; "NULL"; "TRUE"; "FALSE"; "IS";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (s : string) : token list =
  let n = String.length s in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      if is_keyword word then emit (Keyword (String.uppercase_ascii word))
      else emit (Ident word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      if !i < n && s.[!i] = '.' && !i + 1 < n && is_digit s.[!i + 1] then begin
        incr i;
        while !i < n && is_digit s.[!i] do
          incr i
        done;
        emit (Float_lit (float_of_string (String.sub s start (!i - start))))
      end
      else emit (Int_lit (int_of_string (String.sub s start (!i - start))))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", start));
      emit (String_lit (Buffer.contents buf))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub s !i 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "<>" | "!=") as op) ->
          emit (Symbol (if op = "!=" then "<>" else op));
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | '=' | '<' | '>' | '+' | '-' | '*' | '/'
          | ';' ->
              emit (Symbol (String.make 1 c));
              incr i
          | _ ->
              raise
                (Lex_error (Printf.sprintf "unexpected character %C" c, !i)))
    end
  done;
  List.rev (Eof :: !tokens)

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "ident:%s" s
  | Int_lit i -> Fmt.pf ppf "int:%d" i
  | Float_lit f -> Fmt.pf ppf "float:%g" f
  | String_lit s -> Fmt.pf ppf "str:%s" s
  | Keyword k -> Fmt.pf ppf "kw:%s" k
  | Symbol s -> Fmt.pf ppf "sym:%s" s
  | Eof -> Fmt.string ppf "eof"
