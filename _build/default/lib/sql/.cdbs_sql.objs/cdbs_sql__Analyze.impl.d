lib/sql/analyze.ml: Ast Fmt List Option Parser String
