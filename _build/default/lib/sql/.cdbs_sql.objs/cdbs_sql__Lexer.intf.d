lib/sql/lexer.mli: Fmt
