lib/sql/analyze.mli: Ast Fmt
