(** Recursive-descent parser for the SQL subset described in {!Ast}. *)

exception Parse_error of string

val parse : string -> Ast.statement
(** [parse sql] parses a single statement (a trailing [;] is allowed).
    @raise Parse_error on malformed input (including {!Lexer.Lex_error}
    conditions, which are wrapped). *)

val parse_expr : string -> Ast.expr
(** [parse_expr s] parses a standalone expression; used by tests. *)
