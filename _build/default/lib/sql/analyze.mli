(** Static analysis of parsed statements for query classification.

    Classification (paper Sec. 3.1) groups queries by the data they access:
    tables (no partitioning), columns (vertical partitioning), or predicate
    ranges (horizontal partitioning).  This module extracts exactly that
    footprint from a {!Ast.statement}. *)

type bound = Neg_inf | Pos_inf | Value of float

type interval = {
  lo : bound;
  hi : bound;
}
(** A conservative numeric range restriction on a column (closed on finite
    ends). *)

type footprint = {
  tables : string list;  (** sorted, deduplicated table names *)
  columns : (string * string) list;
      (** sorted, deduplicated [(table, column)] pairs; unqualified columns
          that could not be resolved are attributed to the single table in
          scope or to ["?"] *)
  predicates : ((string * string) * interval) list;
      (** per-column range restrictions implied by conjunctive predicates *)
  is_update : bool;
}

val footprint_of_statement : ?schema:(string * string list) list ->
  Ast.statement -> footprint
(** [footprint_of_statement ~schema st] computes the access footprint.
    [schema] maps table names to their column lists and is used to resolve
    unqualified column references and to expand [SELECT *] / whole-row
    updates into concrete columns. *)

val footprint_of_sql : ?schema:(string * string list) list ->
  string -> footprint
(** Parse and analyze in one step. @raise Parser.Parse_error *)

val interval_intersect : interval -> interval -> interval option
(** Intersection of two ranges, [None] if empty. *)

val pp_footprint : footprint Fmt.t
