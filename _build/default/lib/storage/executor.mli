(** Query executor: runs parsed SQL statements against a {!Database.t}.

    This is the "backend DBMS" of the CDBS architecture — each backend is an
    independent single-node engine, and a query sent to a backend is executed
    entirely locally (the paper's processing model, Sec. 2).  The physical
    plan is deliberately simple (scan, filter, hash equi-join falling back to
    nested loops, hash aggregation, sort, limit; single-table equality
    predicates use a secondary hash index when one exists): the
    reproduction needs correct local execution and plausible relative
    costs, not a competitive optimizer. *)

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int  (** row count touched by INSERT/UPDATE/DELETE *)

val execute : Database.t -> Cdbs_sql.Ast.statement -> (result, string) Result.t
(** Execute one statement.  Errors are returned, never raised: missing
    table or column, arity mismatches, unsupported constructs. *)

val execute_sql : Database.t -> string -> (result, string) Result.t
(** Parse then execute; parse errors are returned as [Error]. *)

val eval_expr :
  (string option * string -> Value.t option) ->
  Cdbs_sql.Ast.expr ->
  (Value.t, string) Result.t
(** Expression evaluation against a column-lookup function; exposed for
    unit tests of the evaluator. *)
