open Cdbs_sql.Ast

type column_stats = {
  distinct : int;
  min_value : Value.t option;
  max_value : Value.t option;
  nulls : int;
}

type t = {
  rows : int;
  bytes : int;
  columns : (string * column_stats) list;
}

let collect tbl =
  let schema = Table.schema tbl in
  let names = Schema.column_names schema in
  let n_cols = List.length names in
  let seen = Array.init n_cols (fun _ -> Hashtbl.create 64) in
  let mins = Array.make n_cols None in
  let maxs = Array.make n_cols None in
  let nulls = Array.make n_cols 0 in
  let rows = ref 0 in
  let bytes = ref 0 in
  Table.iter
    (fun row ->
      incr rows;
      Array.iteri
        (fun i v ->
          bytes := !bytes + Value.byte_size v;
          if v = Value.Null then nulls.(i) <- nulls.(i) + 1
          else begin
            Hashtbl.replace seen.(i) v ();
            (match mins.(i) with
            | None -> mins.(i) <- Some v
            | Some m -> if Value.compare v m < 0 then mins.(i) <- Some v);
            match maxs.(i) with
            | None -> maxs.(i) <- Some v
            | Some m -> if Value.compare v m > 0 then maxs.(i) <- Some v
          end)
        row)
    tbl;
  {
    rows = !rows;
    bytes = !bytes;
    columns =
      List.mapi
        (fun i name ->
          ( name,
            {
              distinct = Hashtbl.length seen.(i);
              min_value = mins.(i);
              max_value = maxs.(i);
              nulls = nulls.(i);
            } ))
        names;
  }

let default_eq = 0.05
let default_range = 0.3
let default_like = 0.1

let column_of = function
  | Column (_, c) -> Some c
  | _ -> None

let stats_of t c = List.assoc_opt c t.columns

(* Fraction of the column's [min, max] span below value v. *)
let position st v =
  match (st.min_value, st.max_value) with
  | Some mn, Some mx -> (
      match (Value.to_float mn, Value.to_float mx, Value.to_float v) with
      | Some mn, Some mx, Some v when mx > mn ->
          Some (max 0. (min 1. ((v -. mn) /. (mx -. mn))))
      | _ -> None)
  | _ -> None

let rec selectivity t (e : expr) : float =
  match e with
  | Binop (And, a, b) -> selectivity t a *. selectivity t b
  | Binop (Or, a, b) -> min 1. (selectivity t a +. selectivity t b)
  | Not a -> max 0. (1. -. selectivity t a)
  | Binop (Eq, a, b) -> (
      match (column_of a, column_of b) with
      | Some c, None | None, Some c -> (
          match stats_of t c with
          | Some st when st.distinct > 0 -> 1. /. float_of_int st.distinct
          | _ -> default_eq)
      | Some _, Some _ ->
          (* join-style equality: key/foreign-key assumption *)
          default_eq
      | None, None -> default_eq)
  | Binop (Neq, a, b) -> max 0. (1. -. selectivity t (Binop (Eq, a, b)))
  | Binop (((Lt | Le | Gt | Ge) as op), a, b) -> (
      let estimate col v ~below =
        match stats_of t col with
        | None -> default_range
        | Some st -> (
            match position st v with
            | None -> default_range
            | Some p -> if below then p else 1. -. p)
      in
      match (column_of a, b) with
      | Some c, Lit l ->
          estimate c (Value.of_literal l) ~below:(op = Lt || op = Le)
      | _ -> (
          match (a, column_of b) with
          | Lit l, Some c ->
              (* literal op column flips direction *)
              estimate c (Value.of_literal l) ~below:(op = Gt || op = Ge)
          | _ -> default_range))
  | Between (a, Lit lo, Lit hi) -> (
      match column_of a with
      | Some c -> (
          match stats_of t c with
          | None -> default_range
          | Some st -> (
              match
                ( position st (Value.of_literal lo),
                  position st (Value.of_literal hi) )
              with
              | Some plo, Some phi -> max 0. (phi -. plo)
              | _ -> default_range))
      | None -> default_range)
  | Between _ -> default_range
  | In_list (a, items) ->
      let eq_sel =
        selectivity t (Binop (Eq, a, Lit (Int 0)))
      in
      min 1. (eq_sel *. float_of_int (List.length items))
  | Like _ -> default_like
  | Lit (Bool b) -> if b then 1. else 0.
  | Lit _ | Column _ | Call _ | Star -> 1.
  | Binop ((Add | Sub | Mul | Div), _, _) -> 1.

let estimate_rows t = function
  | None -> float_of_int t.rows
  | Some e -> float_of_int t.rows *. selectivity t e

let estimate_scan_bytes t pred =
  if t.rows = 0 then 0.
  else
    let per_row = float_of_int t.bytes /. float_of_int t.rows in
    (* A scan reads everything; its output volume scales with
       selectivity.  Cost = read + produce. *)
    float_of_int t.bytes +. (estimate_rows t pred *. per_row)
