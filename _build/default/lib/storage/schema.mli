(** Logical schemas: column types, table definitions, size estimation.

    Column byte widths drive the fragment sizes used by the allocation
    algorithm and the degree-of-replication accounting (paper Eq. 28). *)

type col_type = T_int | T_float | T_string of int  (** avg width *) | T_bool

type column = {
  col_name : string;
  col_type : col_type;
}

type table = {
  tbl_name : string;
  columns : column list;
  primary_key : string list;
}

type t = table list
(** A database schema is a list of table definitions. *)

val table : string -> ?primary_key:string list -> (string * col_type) list -> table
(** Convenience constructor. *)

val find_table : t -> string -> table option
val column_names : table -> string list

val column_width : col_type -> int
(** Estimated bytes per value of the type. *)

val row_width : table -> int
(** Sum of the column widths. *)

val to_assoc : t -> (string * string list) list
(** The [(table, columns)] view consumed by {!Cdbs_sql.Analyze}. *)
