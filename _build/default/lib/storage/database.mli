(** Catalog of tables forming one backend's local database. *)

type t

val create : Schema.t -> t
(** Instantiate empty tables for every table of the schema. *)

val create_partial : Schema.t -> tables:string list -> t
(** Instantiate only the listed tables — a partially replicated backend. *)

val schema : t -> Schema.t
val table : t -> string -> Table.t option
val table_exn : t -> string -> Table.t
val table_names : t -> string list
val byte_size : t -> int

val insert : t -> string -> Value.t array -> (unit, string) result

val copy_table_into : src:t -> dst:t -> string -> (int, string) result
(** Bulk-copy a table's rows from [src] to [dst] (the ETL step of physical
    allocation); returns the number of rows copied. *)
