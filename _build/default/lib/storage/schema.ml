type col_type = T_int | T_float | T_string of int | T_bool

type column = {
  col_name : string;
  col_type : col_type;
}

type table = {
  tbl_name : string;
  columns : column list;
  primary_key : string list;
}

type t = table list

let table tbl_name ?(primary_key = []) cols =
  {
    tbl_name;
    columns = List.map (fun (col_name, col_type) -> { col_name; col_type }) cols;
    primary_key;
  }

let find_table (schema : t) name =
  List.find_opt (fun tbl -> tbl.tbl_name = name) schema

let column_names tbl = List.map (fun c -> c.col_name) tbl.columns

let column_width = function
  | T_int -> 8
  | T_float -> 8
  | T_string avg -> avg + 4
  | T_bool -> 1

let row_width tbl =
  List.fold_left (fun acc c -> acc + column_width c.col_type) 0 tbl.columns

let to_assoc (schema : t) =
  List.map (fun tbl -> (tbl.tbl_name, column_names tbl)) schema
