module Rng = Cdbs_util.Rng

let random_string rng width =
  let len = max 1 (width / 2 + Rng.int rng (max 1 width)) in
  String.init len (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

let random_value rng = function
  | Schema.T_int -> Value.Int (Rng.int rng 1_000_000)
  | Schema.T_float -> Value.Float (Rng.float rng 10_000.)
  | Schema.T_string w -> Value.Str (random_string rng w)
  | Schema.T_bool -> Value.Bool (Rng.bool rng)

let populate_table rng tbl ~rows =
  let schema = Table.schema tbl in
  let pk = schema.Schema.primary_key in
  for i = 1 to rows do
    let row =
      Array.of_list
        (List.map
           (fun c ->
             if List.mem c.Schema.col_name pk then Value.Int i
             else random_value rng c.Schema.col_type)
           schema.Schema.columns)
    in
    match Table.insert tbl row with
    | Ok () -> ()
    | Error _ ->
        (* Composite keys can collide on the sequential scheme; skip. *)
        ()
  done

let populate rng db ~rows_per_table =
  List.iter
    (fun (name, rows) ->
      match Database.table db name with
      | Some tbl -> populate_table rng tbl ~rows
      | None -> ())
    rows_per_table
