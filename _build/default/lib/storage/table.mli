(** In-memory table storage: rows are value arrays in schema column order,
    with a hash index on the primary key when one is declared. *)

type t

val create : Schema.table -> t
val schema : t -> Schema.table
val row_count : t -> int

val insert : t -> Value.t array -> (unit, string) result
(** Fails on arity mismatch or duplicate primary key. *)

val iter : (Value.t array -> unit) -> t -> unit
val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

val find_by_pk : t -> Value.t list -> Value.t array option
(** Point lookup by primary-key values (in key order); [None] when the
    table has no primary key or no matching row. *)

val update_rows : t -> (Value.t array -> bool) -> (Value.t array -> Value.t array) -> int
(** [update_rows t pred f] replaces each row matching [pred] by [f row];
    returns the number of rows changed.  Primary-key index entries are
    refreshed. *)

val delete_rows : t -> (Value.t array -> bool) -> int
(** Delete matching rows; returns the count. *)

val byte_size : t -> int
(** Total approximate bytes stored. *)

val column_index : t -> string -> int option
(** Position of a column in the row arrays. *)

val create_index : t -> string -> (unit, string) result
(** Build (or rebuild) a secondary hash index on the column.  Indexes are
    maintained by {!insert} and rebuilt by {!update_rows} /
    {!delete_rows}. *)

val has_index : t -> string -> bool

val indexed_lookup : t -> column:string -> Value.t -> Value.t array list option
(** Rows whose indexed column equals the value; [None] when the column has
    no index (callers fall back to a scan). *)
