type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null

let of_literal : Cdbs_sql.Ast.literal -> t = function
  | Cdbs_sql.Ast.Int i -> Int i
  | Cdbs_sql.Ast.Float f -> Float f
  | Cdbs_sql.Ast.String s -> Str s
  | Cdbs_sql.Ast.Bool b -> Bool b
  | Cdbs_sql.Ast.Null -> Null

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool _ | Str _ | Null -> None

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | (Int _ | Float _), (Int _ | Float _) ->
      Stdlib.compare (Option.get (to_float a)) (Option.get (to_float b))
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Null, Null -> 0
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let truthy = function
  | Bool b -> b
  | Int i -> i <> 0
  | Float f -> f <> 0.
  | Str _ | Null -> false

let arith f_int f_float a b =
  match (a, b) with
  | Int x, Int y -> Int (f_int x y)
  | (Int _ | Float _), (Int _ | Float _) ->
      Float (f_float (Option.get (to_float a)) (Option.get (to_float b)))
  | _ -> Null

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )

let div a b =
  match (a, b) with
  | _, Int 0 | _, Float 0. -> Null
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) ->
      Float (Option.get (to_float a) /. Option.get (to_float b))
  | _ -> Null

let byte_size = function
  | Int _ -> 8
  | Float _ -> 8
  | Bool _ -> 1
  | Null -> 1
  | Str s -> String.length s + 4

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Null -> Fmt.string ppf "NULL"
