(** Deterministic synthetic data generation for a schema.

    Stands in for the official TPC data generators: rows are filled with
    seeded pseudo-random values of the right type, with sequential integer
    primary keys so referential lookups and point updates work. *)

val populate_table : Cdbs_util.Rng.t -> Table.t -> rows:int -> unit
(** Fill a table with [rows] generated rows.  Primary-key columns receive
    the row number (starting at 1); other columns receive random values. *)

val populate : Cdbs_util.Rng.t -> Database.t -> rows_per_table:(string * int) list -> unit
(** Populate each listed table of the database. Tables not listed stay
    empty; unknown table names are ignored. *)
