module Vec = Cdbs_util.Vec

type secondary = {
  position : int;  (** column offset in the row arrays *)
  entries : (Value.t, int list) Hashtbl.t;  (** value -> row indices *)
}

type t = {
  schema : Schema.table;
  rows : Value.t array Vec.t;
  pk_index : (Value.t list, int) Hashtbl.t option;  (** pk values -> row idx *)
  pk_positions : int list;
  secondaries : (string, secondary) Hashtbl.t;
}

let column_positions schema names =
  let cols = Schema.column_names schema in
  List.filter_map
    (fun name ->
      let rec find i = function
        | [] -> None
        | c :: _ when c = name -> Some i
        | _ :: rest -> find (i + 1) rest
      in
      find 0 cols)
    names

let create schema =
  let pk_positions = column_positions schema schema.Schema.primary_key in
  let pk_index =
    if pk_positions = [] then None else Some (Hashtbl.create 64)
  in
  {
    schema;
    rows = Vec.create ();
    pk_index;
    pk_positions;
    secondaries = Hashtbl.create 4;
  }

let schema t = t.schema
let row_count t = Vec.length t.rows

let pk_of_row t row = List.map (fun i -> row.(i)) t.pk_positions

let index_row t row i =
  Hashtbl.iter
    (fun _ sec ->
      let v = row.(sec.position) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt sec.entries v) in
      Hashtbl.replace sec.entries v (i :: prev))
    t.secondaries

let insert t row =
  if Array.length row <> List.length t.schema.Schema.columns then
    Error "insert: arity mismatch"
  else
    match t.pk_index with
    | None ->
        index_row t row (Vec.length t.rows);
        Vec.push t.rows row;
        Ok ()
    | Some idx ->
        let key = pk_of_row t row in
        if Hashtbl.mem idx key then Error "insert: duplicate primary key"
        else begin
          Hashtbl.add idx key (Vec.length t.rows);
          index_row t row (Vec.length t.rows);
          Vec.push t.rows row;
          Ok ()
        end

let iter f t = Vec.iter f t.rows
let fold f init t = Vec.fold_left f init t.rows

let find_by_pk t key =
  match t.pk_index with
  | None -> None
  | Some idx -> (
      match Hashtbl.find_opt idx key with
      | Some i -> Some (Vec.get t.rows i)
      | None -> None)

let rebuild_index t =
  (match t.pk_index with
  | None -> ()
  | Some idx ->
      Hashtbl.reset idx;
      Vec.iteri (fun i row -> Hashtbl.replace idx (pk_of_row t row) i) t.rows);
  Hashtbl.iter (fun _ sec -> Hashtbl.reset sec.entries) t.secondaries;
  Vec.iteri (fun i row -> index_row t row i) t.rows

let update_rows t pred f =
  let changed = ref 0 in
  Vec.iteri
    (fun i row ->
      if pred row then begin
        Vec.set t.rows i (f row);
        incr changed
      end)
    t.rows;
  if !changed > 0 then rebuild_index t;
  !changed

let delete_rows t pred =
  let before = Vec.length t.rows in
  Vec.filter_in_place (fun row -> not (pred row)) t.rows;
  let removed = before - Vec.length t.rows in
  if removed > 0 then rebuild_index t;
  removed

let byte_size t =
  fold
    (fun acc row ->
      Array.fold_left (fun a v -> a + Value.byte_size v) acc row)
    0 t

let column_index t name =
  let rec find i = function
    | [] -> None
    | c :: _ when c.Schema.col_name = name -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 t.schema.Schema.columns

let create_index t name =
  match column_index t name with
  | None -> Error ("create_index: no column " ^ name)
  | Some position ->
      let sec = { position; entries = Hashtbl.create 64 } in
      Hashtbl.replace t.secondaries name sec;
      Vec.iteri
        (fun i row ->
          let v = row.(position) in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt sec.entries v)
          in
          Hashtbl.replace sec.entries v (i :: prev))
        t.rows;
      Ok ()

let has_index t name = Hashtbl.mem t.secondaries name

let indexed_lookup t ~column v =
  match Hashtbl.find_opt t.secondaries column with
  | None -> None
  | Some sec ->
      let idxs = Option.value ~default:[] (Hashtbl.find_opt sec.entries v) in
      Some (List.rev_map (Vec.get t.rows) idxs)
