open Cdbs_sql.Ast

type result =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

(* LIKE patterns: % matches any sequence, _ any single character. *)
let like_match pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pattern.[pi] with
      | '%' ->
          let rec try_from k = k <= ns && (go (pi + 1) k || try_from (k + 1)) in
          try_from si
      | '_' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let rec eval_expr lookup (e : expr) : (Value.t, string) Result.t =
  match e with
  | Lit l -> Ok (Value.of_literal l)
  | Star -> Error "'*' outside of COUNT"
  | Column (q, c) -> (
      match lookup (q, c) with
      | Some v -> Ok v
      | None ->
          Error
            (Printf.sprintf "unknown column %s%s"
               (match q with Some t -> t ^ "." | None -> "")
               c))
  | Not e ->
      let* v = eval_expr lookup e in
      Ok (Value.Bool (not (Value.truthy v)))
  | Binop (op, a, b) -> eval_binop lookup op a b
  | Between (e, lo, hi) ->
      let* v = eval_expr lookup e in
      let* l = eval_expr lookup lo in
      let* h = eval_expr lookup hi in
      Ok (Value.Bool (Value.compare v l >= 0 && Value.compare v h <= 0))
  | In_list (e, es) ->
      let* v = eval_expr lookup e in
      let rec any = function
        | [] -> Ok (Value.Bool false)
        | x :: rest ->
            let* xv = eval_expr lookup x in
            if Value.equal v xv then Ok (Value.Bool true) else any rest
      in
      any es
  | Like (e, pat) -> (
      let* v = eval_expr lookup e in
      match v with
      | Value.Str s -> Ok (Value.Bool (like_match pat s))
      | _ -> Ok (Value.Bool false))
  | Call (name, _) ->
      Error
        (Printf.sprintf "function %s outside of aggregation context" name)

and eval_binop lookup op a b =
  match op with
  | And ->
      let* va = eval_expr lookup a in
      if not (Value.truthy va) then Ok (Value.Bool false)
      else
        let* vb = eval_expr lookup b in
        Ok (Value.Bool (Value.truthy vb))
  | Or ->
      let* va = eval_expr lookup a in
      if Value.truthy va then Ok (Value.Bool true)
      else
        let* vb = eval_expr lookup b in
        Ok (Value.Bool (Value.truthy vb))
  | _ ->
      let* va = eval_expr lookup a in
      let* vb = eval_expr lookup b in
      Ok
        (match op with
        | Eq -> Value.Bool (Value.equal va vb)
        | Neq -> Value.Bool (not (Value.equal va vb))
        | Lt -> Value.Bool (Value.compare va vb < 0)
        | Le -> Value.Bool (Value.compare va vb <= 0)
        | Gt -> Value.Bool (Value.compare va vb > 0)
        | Ge -> Value.Bool (Value.compare va vb >= 0)
        | Add -> Value.add va vb
        | Sub -> Value.sub va vb
        | Mul -> Value.mul va vb
        | Div -> Value.div va vb
        | And | Or -> assert false)

(* ------------------------------------------------------------------ *)
(* Row streams during SELECT processing                                *)
(* ------------------------------------------------------------------ *)

(* A bound row carries, per joined table instance, the visible names
   (alias and table name), the column names, and the values. *)
type segment = {
  names : string list;
  cols : string array;
  values : Value.t array;
}

type bound_row = segment list

let lookup_in (row : bound_row) (q, c) : Value.t option =
  let matches seg =
    match q with
    | Some qual -> List.mem qual seg.names
    | None -> true
  in
  let rec search = function
    | [] -> None
    | seg :: rest ->
        if matches seg then begin
          let rec find i =
            if i >= Array.length seg.cols then search rest
            else if seg.cols.(i) = c then Some seg.values.(i)
            else find (i + 1)
          in
          find 0
        end
        else search rest
  in
  search row

let segment_of tref (tbl : Table.t) values =
  let names =
    tref.table :: (match tref.tbl_alias with Some a -> [ a ] | None -> [])
  in
  {
    names;
    cols = Array.of_list (Schema.column_names (Table.schema tbl));
    values;
  }

let scan db tref : (bound_row list, string) Result.t =
  match Database.table db tref.table with
  | None -> Error ("no table " ^ tref.table)
  | Some tbl ->
      let rows = ref [] in
      Table.iter (fun r -> rows := [ segment_of tref tbl r ] :: !rows) tbl;
      Ok (List.rev !rows)

(* Top-level [column = literal] conjuncts of a predicate. *)
let rec equality_conjuncts = function
  | Binop (And, a, b) -> equality_conjuncts a @ equality_conjuncts b
  | Binop (Eq, Column (q, c), Lit l) | Binop (Eq, Lit l, Column (q, c)) ->
      [ (q, c, l) ]
  | _ -> []

(* Index-assisted access path for single-table selects: if some equality
   conjunct hits a secondary index, fetch only the matching rows; the full
   predicate is still applied afterwards. *)
let scan_with_predicate db tref where : (bound_row list, string) Result.t =
  match Database.table db tref.table with
  | None -> Error ("no table " ^ tref.table)
  | Some tbl -> (
      let applicable (q, c, _) =
        (match q with
        | Some qual -> qual = tref.table || Some qual = tref.tbl_alias
        | None -> true)
        && Table.has_index tbl c
      in
      match
        match where with
        | None -> None
        | Some w -> List.find_opt applicable (equality_conjuncts w)
      with
      | Some (_, column, l) -> (
          match Table.indexed_lookup tbl ~column (Value.of_literal l) with
          | Some rows ->
              Ok (List.map (fun r -> [ segment_of tref tbl r ]) rows)
          | None -> scan db tref)
      | None -> scan db tref)

(* Detect an equi-join condition [a.x = b.y] so the join can be hashed. *)
let equi_join_key on =
  match on with
  | Some (Binop (Eq, Column (qa, ca), Column (qb, cb))) ->
      Some ((qa, ca), (qb, cb))
  | _ -> None

let filter_rows pred rows =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | row :: rest -> (
        match eval_expr (lookup_in row) pred with
        | Error _ as e -> e
        | Ok v -> go (if Value.truthy v then row :: acc else acc) rest)
  in
  go [] rows

let join db (left : bound_row list) (j : join) :
    (bound_row list, string) Result.t =
  match Database.table db j.jtable.table with
  | None -> Error ("no table " ^ j.jtable.table)
  | Some tbl -> (
      let right_rows = ref [] in
      Table.iter
        (fun r -> right_rows := segment_of j.jtable tbl r :: !right_rows)
        tbl;
      let right_rows = List.rev !right_rows in
      match equi_join_key j.on with
      | Some (ka, kb) -> (
          (* Decide which key belongs to the new table. *)
          let right_has (q, c) =
            match lookup_in [ List.hd right_rows ] (q, c) with
            | Some _ -> true
            | None -> false
          in
          match right_rows with
          | [] -> Ok []
          | _ ->
              let right_key, left_key =
                if right_has ka then (ka, kb) else (kb, ka)
              in
              let index : (Value.t, segment list) Hashtbl.t =
                Hashtbl.create 256
              in
              List.iter
                (fun seg ->
                  match lookup_in [ seg ] right_key with
                  | Some v ->
                      let prev =
                        Option.value ~default:[] (Hashtbl.find_opt index v)
                      in
                      Hashtbl.replace index v (seg :: prev)
                  | None -> ())
                right_rows;
              let out = ref [] in
              let error = ref None in
              List.iter
                (fun lrow ->
                  if !error = None then
                    match lookup_in lrow left_key with
                    | Some v ->
                        List.iter
                          (fun seg -> out := (lrow @ [ seg ]) :: !out)
                          (Option.value ~default:[]
                             (Hashtbl.find_opt index v))
                    | None ->
                        error :=
                          Some "join key not found on left side of equi-join")
                left;
              (match !error with
              | Some e -> Error e
              | None -> Ok (List.rev !out)))
      | None -> (
          (* Cross product, then filter by the on-condition if present. *)
          let crossed =
            List.concat_map
              (fun lrow -> List.map (fun seg -> lrow @ [ seg ]) right_rows)
              left
          in
          match j.on with
          | None -> Ok crossed
          | Some cond -> filter_rows cond crossed))

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let aggregate_functions = [ "count"; "sum"; "avg"; "min"; "max" ]

let rec has_aggregate = function
  | Call (f, _) when List.mem (String.lowercase_ascii f) aggregate_functions ->
      true
  | Call (_, args) -> List.exists has_aggregate args
  | Binop (_, a, b) -> has_aggregate a || has_aggregate b
  | Not e -> has_aggregate e
  | Between (a, b, c) -> List.exists has_aggregate [ a; b; c ]
  | In_list (e, es) -> List.exists has_aggregate (e :: es)
  | Like (e, _) -> has_aggregate e
  | Lit _ | Column _ | Star -> false

(* Evaluate an expression that may contain aggregate calls over a group of
   rows; non-aggregate subexpressions are evaluated on the first row. *)
let rec eval_agg group (e : expr) : (Value.t, string) Result.t =
  match e with
  | Call (f, args) when List.mem (String.lowercase_ascii f) aggregate_functions
    -> (
      let f = String.lowercase_ascii f in
      match (f, args) with
      | "count", ([ Star ] | []) ->
          Ok (Value.Int (List.length group))
      | _, [ arg ] ->
          let* values =
            List.fold_left
              (fun acc row ->
                let* acc = acc in
                let* v = eval_expr (lookup_in row) arg in
                Ok (v :: acc))
              (Ok []) group
          in
          let numeric =
            List.filter_map Value.to_float
              (List.filter (fun v -> v <> Value.Null) values)
          in
          let non_null = List.filter (fun v -> v <> Value.Null) values in
          (match f with
          | "count" -> Ok (Value.Int (List.length non_null))
          | "sum" -> Ok (Value.Float (List.fold_left ( +. ) 0. numeric))
          | "avg" ->
              if numeric = [] then Ok Value.Null
              else
                Ok
                  (Value.Float
                     (List.fold_left ( +. ) 0. numeric
                     /. float_of_int (List.length numeric)))
          | "min" -> (
              match non_null with
              | [] -> Ok Value.Null
              | v :: rest ->
                  Ok
                    (List.fold_left
                       (fun a b -> if Value.compare b a < 0 then b else a)
                       v rest))
          | "max" -> (
              match non_null with
              | [] -> Ok Value.Null
              | v :: rest ->
                  Ok
                    (List.fold_left
                       (fun a b -> if Value.compare b a > 0 then b else a)
                       v rest))
          | _ -> Error ("unsupported aggregate " ^ f))
      | _ -> Error ("bad arguments to aggregate " ^ f))
  | Binop (op, a, b) ->
      let* va = eval_agg group a in
      let* vb = eval_agg group b in
      Ok
        (match op with
        | Add -> Value.add va vb
        | Sub -> Value.sub va vb
        | Mul -> Value.mul va vb
        | Div -> Value.div va vb
        | Eq -> Value.Bool (Value.equal va vb)
        | Neq -> Value.Bool (not (Value.equal va vb))
        | Lt -> Value.Bool (Value.compare va vb < 0)
        | Le -> Value.Bool (Value.compare va vb <= 0)
        | Gt -> Value.Bool (Value.compare va vb > 0)
        | Ge -> Value.Bool (Value.compare va vb >= 0)
        | And -> Value.Bool (Value.truthy va && Value.truthy vb)
        | Or -> Value.Bool (Value.truthy va || Value.truthy vb))
  | e -> (
      match group with
      | [] -> Ok Value.Null
      | row :: _ -> eval_expr (lookup_in row) e)

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

let item_name i (item : select_item) =
  match (item.alias, item.expr) with
  | Some a, _ -> a
  | None, Column (_, c) -> c
  | None, Call (f, _) -> String.lowercase_ascii f
  | None, Star -> "*"
  | None, _ -> Printf.sprintf "col%d" i

let expand_star db (s : select) : (select_item list, string) Result.t =
  let expand_one tref =
    match Database.table db tref.table with
    | None -> Error ("no table " ^ tref.table)
    | Some tbl ->
        Ok
          (List.map
             (fun c -> { expr = Column (Some tref.table, c); alias = Some c })
             (Schema.column_names (Table.schema tbl)))
  in
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | item :: rest -> (
        match item.expr with
        | Star ->
            let all = s.from :: List.map (fun j -> j.jtable) s.joins in
            let* expanded =
              List.fold_left
                (fun acc tref ->
                  let* acc = acc in
                  let* items = expand_one tref in
                  Ok (acc @ items))
                (Ok []) all
            in
            go ([ expanded ] @ acc) rest
        | _ -> go ([ [ item ] ] @ acc) rest)
  in
  go [] s.items

let execute_select db (s : select) : (result, string) Result.t =
  let* items = expand_star db s in
  let* rows =
    if s.joins = [] then scan_with_predicate db s.from s.where
    else scan db s.from
  in
  let* rows =
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        join db acc j)
      (Ok rows) s.joins
  in
  let* rows = match s.where with None -> Ok rows | Some w -> filter_rows w rows in
  let aggregating =
    s.group_by <> [] || List.exists (fun it -> has_aggregate it.expr) items
  in
  let* out_rows =
    if aggregating then begin
      (* Hash-group rows by the group-by key. *)
      let groups : (Value.t list, bound_row list) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      let error = ref None in
      List.iter
        (fun row ->
          if !error = None then begin
            let key =
              List.map
                (fun col ->
                  match lookup_in row col with
                  | Some v -> v
                  | None ->
                      error := Some "unknown group-by column";
                      Value.Null)
                s.group_by
            in
            if not (Hashtbl.mem groups key) then order := key :: !order;
            let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
            Hashtbl.replace groups key (row :: prev)
          end)
        rows;
      match !error with
      | Some e -> Error e
      | None ->
          let keys =
            if s.group_by = [] && rows = [] then [ [] ]
              (* aggregate over empty input still yields one row *)
            else List.rev !order
          in
          let* produced =
            List.fold_left
              (fun acc key ->
                let* acc = acc in
                let group =
                  List.rev
                    (Option.value ~default:[] (Hashtbl.find_opt groups key))
                in
                let* keep =
                  match s.having with
                  | None -> Ok true
                  | Some h ->
                      let* v = eval_agg group h in
                      Ok (Value.truthy v)
                in
                if not keep then Ok acc
                else
                  let* values =
                    List.fold_left
                      (fun acc item ->
                        let* acc = acc in
                        let* v = eval_agg group item.expr in
                        Ok (v :: acc))
                      (Ok []) items
                  in
                  Ok ((Array.of_list (List.rev values), group) :: acc))
              (Ok []) keys
          in
          Ok (List.rev produced)
    end
    else
      let* produced =
        List.fold_left
          (fun acc row ->
            let* acc = acc in
            let* values =
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  let* v = eval_expr (lookup_in row) item.expr in
                  Ok (v :: acc))
                (Ok []) items
            in
            Ok ((Array.of_list (List.rev values), [ row ]) :: acc))
          (Ok []) rows
      in
      Ok (List.rev produced)
  in
  (* ORDER BY: sort on the source rows (first row of each group). *)
  let columns = List.mapi item_name items in
  let find_output_index (q, c) =
    let rec go i = function
      | [] -> None
      | item :: rest -> (
          match (item.alias, item.expr) with
          | Some a, _ when q = None && a = c -> Some i
          | _, Column (q', c') when c' = c && (q = None || q = q') -> Some i
          | _ -> go (i + 1) rest)
    in
    go 0 items
  in
  let* sorted =
    match s.order_by with
    | [] -> Ok (List.map fst out_rows)
    | order_cols ->
        let keyed =
          List.map
            (fun (vals, group) ->
              let keys =
                List.map
                  (fun (col, dir) ->
                    let v =
                      match find_output_index col with
                      | Some i -> Some vals.(i)
                      | None -> (
                          match group with
                          | row :: _ -> lookup_in row col
                          | [] -> None)
                    in
                    (Option.value ~default:Value.Null v, dir))
                  order_cols
              in
              (keys, vals))
            out_rows
        in
        let cmp (ka, _) (kb, _) =
          let rec go = function
            | [] -> 0
            | ((va, dir), (vb, _)) :: rest -> (
                match Value.compare va vb with
                | 0 -> go rest
                | c -> ( match dir with Asc -> c | Desc -> -c))
          in
          go (List.combine ka kb)
        in
        Ok (List.map snd (List.stable_sort cmp keyed))
  in
  let deduped =
    if s.distinct then
      let seen = Hashtbl.create 64 in
      List.filter
        (fun vals ->
          let key = Array.to_list vals in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        sorted
    else sorted
  in
  let limited =
    match s.limit with
    | None -> deduped
    | Some n ->
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | x :: rest -> x :: take (k - 1) rest
        in
        take n deduped
  in
  Ok (Rows { columns; rows = limited })

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

let const_lookup (_ : string option * string) : Value.t option = None

let execute_insert db target columns values =
  match Database.table db target with
  | None -> Error ("no table " ^ target)
  | Some tbl ->
      let schema_cols = Schema.column_names (Table.schema tbl) in
      let cols = if columns = [] then schema_cols else columns in
      if List.length cols <> List.length values then
        Error "INSERT: column/value arity mismatch"
      else
        let* bindings =
          List.fold_left2
            (fun acc col e ->
              let* acc = acc in
              let* v = eval_expr const_lookup e in
              Ok ((col, v) :: acc))
            (Ok []) cols values
        in
        let row =
          Array.of_list
            (List.map
               (fun c ->
                 Option.value ~default:Value.Null (List.assoc_opt c bindings))
               schema_cols)
        in
        let* () = Table.insert tbl row in
        Ok (Affected 1)

let row_lookup tbl (row : Value.t array) (q, c) =
  ignore q;
  match Table.column_index tbl c with
  | Some i -> Some row.(i)
  | None -> None

let predicate_of tbl where row =
  match where with
  | None -> Ok true
  | Some w -> (
      match eval_expr (row_lookup tbl row) w with
      | Ok v -> Ok (Value.truthy v)
      | Error _ as e -> e)

let execute_update db target assignments where =
  match Database.table db target with
  | None -> Error ("no table " ^ target)
  | Some tbl ->
      (* Pre-validate the predicate and assignments on one probe row to
         surface errors (updates on empty tables succeed trivially). *)
      let error = ref None in
      let apply row =
        let updated = Array.copy row in
        List.iter
          (fun (col, e) ->
            match Table.column_index tbl col with
            | None -> error := Some ("UPDATE: unknown column " ^ col)
            | Some i -> (
                match eval_expr (row_lookup tbl row) e with
                | Ok v -> updated.(i) <- v
                | Error e -> error := Some e))
          assignments;
        updated
      in
      let count =
        Table.update_rows tbl
          (fun row ->
            match predicate_of tbl where row with
            | Ok b -> b && !error = None
            | Error e ->
                error := Some e;
                false)
          apply
      in
      (match !error with Some e -> Error e | None -> Ok (Affected count))

let execute_delete db target where =
  match Database.table db target with
  | None -> Error ("no table " ^ target)
  | Some tbl ->
      let error = ref None in
      let count =
        Table.delete_rows tbl (fun row ->
            match predicate_of tbl where row with
            | Ok b -> b && !error = None
            | Error e ->
                error := Some e;
                false)
      in
      (match !error with Some e -> Error e | None -> Ok (Affected count))

let execute db (st : statement) : (result, string) Result.t =
  match st with
  | Select s -> execute_select db s
  | Insert { target; columns; values } -> execute_insert db target columns values
  | Update { target; assignments; where } ->
      execute_update db target assignments where
  | Delete { target; where } -> execute_delete db target where

let execute_sql db sql =
  match Cdbs_sql.Parser.parse sql with
  | exception Cdbs_sql.Parser.Parse_error msg -> Error ("parse error: " ^ msg)
  | st -> execute db st
