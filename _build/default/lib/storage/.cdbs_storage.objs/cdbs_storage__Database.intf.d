lib/storage/database.mli: Schema Table Value
