lib/storage/schema.mli:
