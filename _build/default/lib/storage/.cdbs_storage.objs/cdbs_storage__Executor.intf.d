lib/storage/executor.mli: Cdbs_sql Database Result Value
