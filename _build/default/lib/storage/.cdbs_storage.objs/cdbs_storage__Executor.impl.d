lib/storage/executor.ml: Array Cdbs_sql Database Hashtbl List Option Printf Result Schema String Table Value
