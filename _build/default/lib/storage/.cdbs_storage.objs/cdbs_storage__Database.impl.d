lib/storage/database.ml: Array Hashtbl List Schema String Table
