lib/storage/value.ml: Cdbs_sql Fmt Option Stdlib String
