lib/storage/table_stats.mli: Cdbs_sql Table Value
