lib/storage/datagen.ml: Array Cdbs_util Char Database List Schema String Table Value
