lib/storage/table_stats.ml: Array Cdbs_sql Hashtbl List Schema Table Value
