lib/storage/table.ml: Array Cdbs_util Hashtbl List Option Schema Value
