lib/storage/value.mli: Cdbs_sql Fmt
