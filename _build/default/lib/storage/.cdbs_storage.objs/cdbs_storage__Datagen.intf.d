lib/storage/datagen.mli: Cdbs_util Database Table
