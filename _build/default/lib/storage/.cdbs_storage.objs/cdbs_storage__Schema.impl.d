lib/storage/schema.ml: List
