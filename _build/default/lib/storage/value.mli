(** Runtime values stored in backend tables and produced by the executor. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null

val of_literal : Cdbs_sql.Ast.literal -> t

val compare : t -> t -> int
(** Total order: [Null] < [Bool] < numeric (Int and Float compare by value)
    < [Str]. *)

val equal : t -> t -> bool

val to_float : t -> float option
(** Numeric view, [None] for non-numeric values. *)

val truthy : t -> bool
(** SQL-ish truth: [Bool b] is [b], non-zero numbers are true, [Null] and
    everything else false. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic promotes [Int] to [Float] when mixed; non-numeric operands
    yield [Null]. *)

val byte_size : t -> int
(** Approximate storage footprint in bytes, used by the size accounting that
    feeds the degree-of-replication measurements (paper Eq. 28). *)

val pp : t Fmt.t
