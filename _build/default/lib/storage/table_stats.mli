(** Table statistics and cardinality estimation.

    The paper computes query-class weights from summed execution times or
    "a cost estimation (e.g., from the query optimizer)" (Sec. 3.1).  This
    module provides that second source: per-column statistics collected
    from a table and a textbook selectivity model for predicates, giving
    deterministic cost estimates without executing anything. *)

type column_stats = {
  distinct : int;  (** number of distinct values *)
  min_value : Value.t option;  (** smallest non-null value *)
  max_value : Value.t option;
  nulls : int;
}

type t = {
  rows : int;
  bytes : int;
  columns : (string * column_stats) list;
}

val collect : Table.t -> t
(** Scan the table once and build statistics. *)

val selectivity : t -> Cdbs_sql.Ast.expr -> float
(** Estimated fraction of rows satisfying the predicate, in [0, 1]:
    equality on a column uses 1/distinct, ranges interpolate between the
    column's min and max, conjunctions multiply, disjunctions add (capped),
    LIKE and unknown shapes fall back to fixed default factors. *)

val estimate_rows : t -> Cdbs_sql.Ast.expr option -> float
(** [rows * selectivity], or all rows without a predicate. *)

val estimate_scan_bytes : t -> Cdbs_sql.Ast.expr option -> float
(** Bytes a scan with the predicate must produce — the cost-estimation
    backend for journal weights. *)
