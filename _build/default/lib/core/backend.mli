(** Backend descriptors.

    A backend is an independent DBMS node.  Its [load] is its relative query
    processing performance: the share of the total cluster performance it
    contributes (paper Eq. 7; all loads sum to 1).  In a homogeneous cluster
    of s nodes every load is 1/s. *)

type t = {
  id : int;
  name : string;
  load : float;
}

val homogeneous : int -> t list
(** [homogeneous n] builds n identical backends with load 1/n. *)

val heterogeneous : float list -> t list
(** Backends with the given relative performances, normalized to sum to 1.
    @raise Invalid_argument on an empty list or non-positive entries. *)

val pp : t Fmt.t
