module Analyze = Cdbs_sql.Analyze
module Schema = Cdbs_storage.Schema

type granularity =
  | Single
  | By_table
  | By_column
  | By_predicate of (string * string * float list) list

(* Range boundaries for a split spec: interior points plus infinities. *)
let boundaries splits = (neg_infinity :: splits) @ [ infinity ]

let ranges_of_table ~size_of table column splits =
  let bounds = boundaries splits in
  let rec pairs = function
    | lo :: (hi :: _ as rest) ->
        let kind = Fragment.Range { table; column; lo; hi } in
        { Fragment.kind; size = size_of kind } :: pairs rest
    | _ -> []
  in
  pairs bounds

let interval_overlaps (iv : Analyze.interval) ~lo ~hi =
  let lo_ok =
    match iv.hi with
    | Analyze.Neg_inf -> false
    | Analyze.Pos_inf -> true
    | Analyze.Value v -> v >= lo
  in
  let hi_ok =
    match iv.lo with
    | Analyze.Pos_inf -> false
    | Analyze.Neg_inf -> true
    | Analyze.Value v -> v < hi
  in
  lo_ok && hi_ok

let fragments_of_footprint ~size_of granularity (fp : Analyze.footprint) =
  match granularity with
  | Single | By_table ->
      Fragment.of_footprint ~granularity:`Table ~size_of fp
  | By_column -> Fragment.of_footprint ~granularity:`Column ~size_of fp
  | By_predicate specs ->
      List.fold_left
        (fun acc table ->
          match
            List.find_opt (fun (t, _, _) -> t = table) specs
          with
          | None ->
              let kind = Fragment.Table table in
              Fragment.Set.add { Fragment.kind; size = size_of kind } acc
          | Some (_, column, splits) ->
              let all = ranges_of_table ~size_of table column splits in
              let restriction =
                List.assoc_opt (table, column) fp.Analyze.predicates
              in
              let selected =
                match restriction with
                | None -> all
                | Some iv ->
                    List.filter
                      (fun f ->
                        match f.Fragment.kind with
                        | Fragment.Range { lo; hi; _ } ->
                            interval_overlaps iv ~lo ~hi
                        | _ -> true)
                      all
              in
              (* An empty (contradictory) predicate still touches the
                 table's metadata; keep the first range so the class is
                 non-empty. *)
              let selected = if selected = [] then [ List.hd all ] else selected in
              List.fold_left (fun acc f -> Fragment.Set.add f acc) acc selected)
        Fragment.Set.empty fp.Analyze.tables

let classify_footprints ~size_of granularity
    (footprints : (Analyze.footprint * float) list) : Workload.t =
  (* Group by (kind, fragment set); accumulate cost. *)
  let groups : (bool * string list, Fragment.Set.t * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun ((fp : Analyze.footprint), cost) ->
      let fragments =
        match granularity with
        | Single ->
            (* Everything collapses into one class per kind. *)
            fragments_of_footprint ~size_of By_table fp
        | g -> fragments_of_footprint ~size_of g fp
      in
      if not (Fragment.Set.is_empty fragments) then begin
        let key =
          match granularity with
          | Single -> (fp.Analyze.is_update, [ "*" ])
          | _ ->
              ( fp.Analyze.is_update,
                List.map Fragment.name (Fragment.Set.elements fragments) )
        in
        match Hashtbl.find_opt groups key with
        | Some (frs, acc) ->
            Hashtbl.replace groups key (Fragment.Set.union frs fragments, acc);
            acc := !acc +. cost
        | None -> Hashtbl.add groups key (fragments, ref cost)
      end)
    footprints;
  let total =
    Hashtbl.fold (fun _ (_, c) acc -> acc +. !c) groups 0.
  in
  let total = if total <= 0. then 1. else total in
  let reads = ref [] and updates = ref [] in
  Hashtbl.iter
    (fun (is_update, _) (fragments, cost) ->
      let entry = (fragments, !cost /. total) in
      if is_update then updates := entry :: !updates
      else reads := entry :: !reads)
    groups;
  let by_weight = List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) in
  let name_all prefix entries =
    List.mapi
      (fun i (fragments, weight) ->
        {
          Query_class.id = Printf.sprintf "%s%d" prefix (i + 1);
          kind = (if prefix = "Q" then Query_class.Read else Query_class.Update);
          fragments;
          weight;
        })
      entries
  in
  Workload.make
    ~reads:(name_all "Q" (by_weight !reads))
    ~updates:(name_all "U" (by_weight !updates))

let classify ~schema ~size_of granularity journal : Workload.t =
  let assoc = Schema.to_assoc schema in
  let footprints =
    List.filter_map
      (fun (e : Journal.entry) ->
        match Analyze.footprint_of_sql ~schema:assoc e.sql with
        | fp -> Some (fp, e.cost)
        | exception Cdbs_sql.Parser.Parse_error _ -> None)
      (Journal.entries journal)
  in
  classify_footprints ~size_of granularity footprints

let default_sizes ~schema ~rows kind =
  let bytes_per_mb = 1024. *. 1024. in
  let row_count table =
    float_of_int (Option.value ~default:0 (List.assoc_opt table rows))
  in
  match kind with
  | Fragment.Table name -> (
      match Schema.find_table schema name with
      | None -> 0.
      | Some tbl ->
          row_count name *. float_of_int (Schema.row_width tbl) /. bytes_per_mb)
  | Fragment.Column { table; column } -> (
      match Schema.find_table schema table with
      | None -> 0.
      | Some tbl -> (
          match
            List.find_opt
              (fun c -> c.Schema.col_name = column)
              tbl.Schema.columns
          with
          | None -> 0.
          | Some c ->
              row_count table
              *. float_of_int (Schema.column_width c.Schema.col_type)
              /. bytes_per_mb))
  | Fragment.Range { table; lo; hi; _ } -> (
      match Schema.find_table schema table with
      | None -> 0.
      | Some tbl ->
          let full =
            row_count table *. float_of_int (Schema.row_width tbl)
            /. bytes_per_mb
          in
          (* The kind alone does not reveal how many ranges the table was
             cut into, so each range is charged a nominal quarter of the
             table; callers needing exact range sizes pass their own
             [size_of]. *)
          ignore lo;
          ignore hi;
          full /. 4.)
