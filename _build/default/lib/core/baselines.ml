let full_replication workload backends =
  let alloc = Allocation.create workload backends in
  let n = Allocation.num_backends alloc in
  let all = Workload.fragments workload in
  for b = 0 to n - 1 do
    Allocation.add_fragments alloc b all
  done;
  List.iter
    (fun c ->
      Array.iteri
        (fun b backend ->
          Allocation.set_assign alloc b c
            (c.Query_class.weight *. backend.Backend.load))
        (Allocation.backends alloc))
    workload.Workload.reads;
  Allocation.ensure_update_closure alloc;
  alloc

let random_placement ~rng workload backends =
  let alloc = Allocation.create workload backends in
  let n = Allocation.num_backends alloc in
  List.iter
    (fun c ->
      let b = Cdbs_util.Rng.int rng n in
      Allocation.add_fragments alloc b c.Query_class.fragments;
      Allocation.set_assign alloc b c c.Query_class.weight)
    workload.Workload.reads;
  List.iter
    (fun u ->
      let b = Cdbs_util.Rng.int rng n in
      Allocation.add_fragments alloc b u.Query_class.fragments)
    workload.Workload.updates;
  Allocation.ensure_update_closure alloc;
  alloc
