(** Memetic (evolutionary + local search) allocation improvement
    (paper Algorithm 2, Sec. 3.3).

    Evolutionary programming over allocations: mutations perturb a single
    parent (no recombination), selection keeps the best 2/3 of the parents
    and the best 1/3 of the offspring (a (λ+µ) strategy), and a random 1/3
    of the surviving population is improved by local search each iteration
    — the paper's two strategies:

    - consolidating read classes that share backends so a replicated update
      class can be dropped (Eqs. 21–22);
    - shifting read classes so a heavy replicated update class trades
      places with a lighter one (Eqs. 23–26).

    The cost function is lexicographic, matching the paper's objective:
    scale (throughput) first, total stored bytes (replication) second. *)

type local_search_mode =
  | No_local_search  (** plain evolutionary programming *)
  | Consolidate_only  (** strategy 1 only (Eqs. 21–22) *)
  | Both_strategies  (** the full memetic algorithm *)

type params = {
  population : int;  (** population size p (default 12) *)
  iterations : int;  (** generations to run (default 60) *)
  mutations_per_parent : int;  (** offspring generated per survivor *)
  local_search_mode : local_search_mode;  (** default [Both_strategies] *)
}

val default_params : params

val cost : Allocation.t -> float * float
(** [(scale, stored_bytes)] — compared lexicographically. *)

val improve :
  ?params:params ->
  rng:Cdbs_util.Rng.t ->
  Allocation.t ->
  Allocation.t
(** Improve an initial (typically greedy) allocation.  The result is always
    valid and never worse than the input under {!cost}. *)

val allocate :
  ?params:params ->
  rng:Cdbs_util.Rng.t ->
  Workload.t ->
  Backend.t list ->
  Allocation.t
(** Greedy seed followed by {!improve} — the paper's full heuristic
    pipeline. *)

val local_search : Allocation.t -> bool
(** One pass of the two local-search strategies, in place; returns whether
    anything improved.  Exposed for unit tests. *)
