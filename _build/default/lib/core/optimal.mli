(** Exact allocation via the Appendix B mixed-integer program.

    Two phases, as in the paper: first minimize the [scale] factor
    (throughput-optimal), then — holding [scale] at its optimum — minimize
    the total allocated space.  Decision variables follow Appendix B:
    allocation matrix A, load-distribution matrices L_Q/L_U and indicator
    helpers H_Q/H_U.  Only the H matrices need integrality: given integral
    indicators, constraints 44–45 force A to the exact fragment unions, so
    A and the L matrices stay continuous and the branch-and-bound tree is
    over [|B| * |C|] binaries.

    Like the paper (which could only solve up to 7 backends), this is
    feasible for small instances only; [node_limit] makes it an anytime
    solver that returns the best allocation found. *)

type report = {
  allocation : Allocation.t;
  scale : float;  (** optimal (or best-found) scale *)
  space : float;  (** total allocated fragment size after phase 2 *)
  proved_optimal : bool;  (** both phases closed their search trees *)
}

val allocate :
  ?node_limit:int ->
  ?seed_with_greedy:bool ->
  Workload.t ->
  Backend.t list ->
  (report, string) result
(** Solve both phases.  [seed_with_greedy] (default true) warm-starts the
    incumbent with {!Greedy.allocate}.  [node_limit] (default 50_000)
    bounds each phase's branch-and-bound tree. *)

val coarsen : Workload.t -> Workload.t
(** Merge fragments that occur in exactly the same set of query classes
    into single compound fragments (sizes summed).  This preserves the
    optimization problem — any solution maps 1:1 — while shrinking the
    A-matrix dramatically for column-granularity workloads. *)
