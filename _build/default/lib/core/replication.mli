(** Replication accounting (paper Eq. 28 and Figs. 4(c), 4(k), 4(l)). *)

val degree : Allocation.t -> float
(** Degree of replication r(B): total size of all stored fragment copies
    divided by the size of the distinct fragments of the workload.  Full
    replication on n backends yields n. *)

val replica_counts : Allocation.t -> (Fragment.t * int) list
(** For each workload fragment, on how many backends a copy lives. *)

val histogram : Allocation.t -> max_replicas:int -> int array
(** [histogram a ~max_replicas] counts fragments by replica count:
    index i holds the number of fragments replicated exactly [i+1] times
    (index [max_replicas - 1] aggregates everything at or above). *)

val min_replicas : Allocation.t -> int
(** Smallest replica count over all workload fragments (0 when some
    fragment is nowhere stored — an invalid allocation). *)
