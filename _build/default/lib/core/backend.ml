type t = {
  id : int;
  name : string;
  load : float;
}

let homogeneous n =
  if n <= 0 then invalid_arg "Backend.homogeneous: need at least one backend";
  List.init n (fun i ->
      { id = i; name = Printf.sprintf "B%d" (i + 1); load = 1. /. float_of_int n })

let heterogeneous perfs =
  if perfs = [] then invalid_arg "Backend.heterogeneous: empty list";
  if List.exists (fun p -> p <= 0.) perfs then
    invalid_arg "Backend.heterogeneous: non-positive performance";
  let total = List.fold_left ( +. ) 0. perfs in
  List.mapi
    (fun i p ->
      { id = i; name = Printf.sprintf "B%d" (i + 1); load = p /. total })
    perfs

let pp ppf b = Fmt.pf ppf "%s(load=%.3f)" b.name b.load
