(** A classified workload: the read and update query classes with their
    weights, as produced by {!Classification}. *)

type t = {
  reads : Query_class.t list;  (** the set C_Q *)
  updates : Query_class.t list;  (** the set C_U *)
}

val make : reads:Query_class.t list -> updates:Query_class.t list -> t

val all_classes : t -> Query_class.t list

val fragments : t -> Fragment.Set.t
(** Union of all referenced fragments (the set F restricted to accessed
    data). *)

val updates_of : t -> Query_class.t -> Query_class.t list
(** [updates_of w c] is the paper's [updates(C)] (Eq. 12): the update
    classes whose fragment set overlaps [c]'s. *)

val update_weight_of : t -> Query_class.t -> float
(** Total weight of [updates_of w c] — the update load co-allocated with
    [c]. *)

val total_weight : t -> float
(** Should be 1 for a proper classification. *)

val normalize : t -> t
(** Rescale all weights so they sum to 1 (no-op on an already normalized or
    empty workload). *)

val validate : t -> (unit, string) result
(** Check invariants: ids unique, weights non-negative and summing to 1
    (tolerance 1e-6), every class references at least one fragment, kinds
    consistent with the list they are in. *)

val find : t -> string -> Query_class.t option
val pp : t Fmt.t
