(** Data fragments — the unit of partitioning and allocation.

    Depending on the classification granularity (paper Sec. 3.1) a fragment
    is a whole relation (no partitioning), a column of a relation (vertical
    partitioning), or a predicate-defined range of tuples (horizontal
    partitioning).  Hybrid schemes mix the three. *)

type kind =
  | Table of string  (** a whole relation *)
  | Column of { table : string; column : string }
  | Range of { table : string; column : string; lo : float; hi : float }
      (** tuples of [table] whose [column] lies in [[lo, hi)] *)

type t = {
  kind : kind;
  size : float;  (** size in abstract storage units (we use megabytes) *)
}

val table : string -> size:float -> t
val column : string -> string -> size:float -> t
val range : string -> string -> lo:float -> hi:float -> size:float -> t

val name : t -> string
(** Canonical display name, e.g. ["lineitem"], ["lineitem.l_price"],
    ["orders.o_id[0,100)"]. *)

val compare : t -> t -> int
(** Order by kind structure (sizes do not participate: two fragments with
    the same identity are the same fragment). *)

val equal : t -> t -> bool
val pp : t Fmt.t

module Set : Set.S with type elt = t

val set_size : Set.t -> float
(** Total size of a fragment set. *)

val of_footprint :
  granularity:[ `Table | `Column ] ->
  size_of:(kind -> float) ->
  Cdbs_sql.Analyze.footprint ->
  Set.t
(** Fragments referenced by an analyzed statement at the chosen granularity,
    with sizes provided by [size_of]. *)
