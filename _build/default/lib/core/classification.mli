(** Query classification (paper Sec. 3.1, Eqs. 2–4).

    Groups the journal's queries by the data fragments they access; the
    chosen granularity determines the partitioning that the allocation will
    produce:

    - [Single] — all queries in one class: the allocation degenerates to
      full replication;
    - [By_table] — classes keyed by accessed tables: partial replication
      without partitioning;
    - [By_column] — classes keyed by accessed columns: vertical
      partitioning (each class implicitly carries a candidate key so data
      remains losslessly reconstructible);
    - [By_predicate splits] — classes keyed by predicate ranges over the
      given split points: horizontal partitioning. *)

type granularity =
  | Single
  | By_table
  | By_column
  | By_predicate of (string * string * float list) list
      (** [(table, column, ascending interior split points)]: the column's
          domain is cut into [n+1] range fragments.  Tables without a split
          spec fall back to table granularity. *)

val classify :
  schema:Cdbs_storage.Schema.t ->
  size_of:(Fragment.kind -> float) ->
  granularity ->
  Journal.t ->
  Workload.t
(** Classify every journal entry, with class weights proportional to summed
    entry costs (Eq. 4), normalized to 1.  Classes are named [Q1..Qn] /
    [U1..Um] in descending weight order.  Statements that fail to parse are
    skipped (real journals contain noise). *)

val classify_footprints :
  size_of:(Fragment.kind -> float) ->
  granularity ->
  (Cdbs_sql.Analyze.footprint * float) list ->
  Workload.t
(** Classify pre-analyzed footprints with explicit costs; used when the
    workload is defined statistically rather than as SQL text (the paper's
    e-learning trace had no query text, Sec. 5). *)

val default_sizes :
  schema:Cdbs_storage.Schema.t ->
  rows:(string * int) list ->
  Fragment.kind ->
  float
(** Fragment sizes in MB derived from schema column widths and per-table row
    counts.  Range fragments assume a uniform value distribution. *)
