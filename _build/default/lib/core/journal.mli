(** Query journal — the multiset J of executed queries with their measured
    costs (paper Sec. 3.1).

    Each entry is one executed request; textually identical statements are
    the "same query" and their occurrence count is the multiset
    characteristic function j.  The weight of a class is computed from the
    summed costs, which the paper found to be an excellent estimator
    (Sec. 4.1). *)

type entry = {
  sql : string;
  cost : float;  (** measured execution time (or optimizer estimate) *)
  at : float;  (** submission timestamp in seconds; 0 if unknown *)
}

type t

val create : unit -> t
val record : t -> sql:string -> cost:float -> unit
(** Record an entry with timestamp 0 (order-only journals). *)

val record_at : t -> at:float -> sql:string -> cost:float -> unit
val add_entry : t -> entry -> unit
val length : t -> int
val entries : t -> entry list
val total_cost : t -> float

val occurrences : t -> (string * int) list
(** The characteristic function j as an association list. *)

val between : t -> lo:float -> hi:float -> t
(** Sub-journal of entries with [lo <= at < hi]; used by the time-segmented
    allocation of Sec. 5. *)

val merge : t -> t -> t
val clear : t -> unit

val save_file : t -> string -> unit
(** Write the journal as text, one entry per line: [cost|at|sql].  Lines
    starting with [#] are comments. *)

val load_file : string -> (t, string) result
(** Parse a journal file.  Tolerant input: a line may be [cost|at|sql],
    [cost|sql] (timestamp 0) or bare SQL (cost 1); blank and [#] lines are
    skipped. *)
