type kind = Read | Update

type t = {
  id : string;
  kind : kind;
  fragments : Fragment.Set.t;
  weight : float;
}

let make id kind fragments ~weight =
  if weight < 0. then invalid_arg "Query_class: negative weight";
  { id; kind; fragments = Fragment.Set.of_list fragments; weight }

let read id fragments ~weight = make id Read fragments ~weight
let update id fragments ~weight = make id Update fragments ~weight
let size t = Fragment.set_size t.fragments

let overlaps a b =
  not (Fragment.Set.is_empty (Fragment.Set.inter a.fragments b.fragments))

let is_update t = t.kind = Update
let compare a b = String.compare a.id b.id

let pp ppf t =
  Fmt.pf ppf "%s[%s w=%.3f {%a}]" t.id
    (match t.kind with Read -> "R" | Update -> "U")
    t.weight
    Fmt.(list ~sep:comma string)
    (List.map Fragment.name (Fragment.Set.elements t.fragments))
