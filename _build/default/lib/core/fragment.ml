type kind =
  | Table of string
  | Column of { table : string; column : string }
  | Range of { table : string; column : string; lo : float; hi : float }

type t = {
  kind : kind;
  size : float;
}

let table name ~size = { kind = Table name; size }
let column table column ~size = { kind = Column { table; column }; size }

let range table column ~lo ~hi ~size =
  { kind = Range { table; column; lo; hi }; size }

let name t =
  match t.kind with
  | Table n -> n
  | Column { table; column } -> table ^ "." ^ column
  | Range { table; column; lo; hi } ->
      Fmt.str "%s.%s[%g,%g)" table column lo hi

let compare a b = Stdlib.compare a.kind b.kind
let equal a b = compare a b = 0
let pp ppf t = Fmt.pf ppf "%s(%.2f)" (name t) t.size

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let set_size s = Set.fold (fun f acc -> acc +. f.size) s 0.

let of_footprint ~granularity ~size_of (fp : Cdbs_sql.Analyze.footprint) =
  match granularity with
  | `Table ->
      List.fold_left
        (fun acc tbl ->
          let kind = Table tbl in
          Set.add { kind; size = size_of kind } acc)
        Set.empty fp.Cdbs_sql.Analyze.tables
  | `Column ->
      List.fold_left
        (fun acc (table, column) ->
          if table = "?" then acc
          else
            let kind = Column { table; column } in
            Set.add { kind; size = size_of kind } acc)
        Set.empty fp.Cdbs_sql.Analyze.columns
