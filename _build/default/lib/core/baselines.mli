(** Baseline allocation strategies the paper compares against. *)

val full_replication : Workload.t -> Backend.t list -> Allocation.t
(** Every backend stores every fragment; reads are spread in proportion to
    backend capacity and updates run everywhere (ROWA).  The classic
    cluster-database configuration (Sec. 2). *)

val random_placement :
  rng:Cdbs_util.Rng.t -> Workload.t -> Backend.t list -> Allocation.t
(** Each query class is placed whole on a uniformly random backend; update
    classes follow by closure.  The load lands wherever it lands — the
    baseline whose imbalance caps its speedup in Fig. 4(a). *)
