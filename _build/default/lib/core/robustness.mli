(** Workload-change robustness (paper Sec. 5).

    The processing model tolerates weight shifts when replicated query
    classes leave room to rebalance.  This module quantifies that tolerance
    and can harden an allocation so each fully loaded backend has classes
    that can be (partially) shifted away. *)

val over_utilization : Allocation.t -> Query_class.t -> delta:float -> float
(** The scale factor after increasing the class's weight by [delta] (the
    extra weight lands on the backends currently serving the class, pro
    rata); per Eq. 19 the speedup drops to [|B| / result].  The paper's
    example: +2% on the only class of a lone backend of a 4-node cluster
    drops the maximum speedup from 4 to ≈3.7. *)

val shiftable_weight : Allocation.t -> int -> float
(** Weight currently on the backend that could move to other backends
    already holding the same classes' data, without new replication. *)

val is_robust : Allocation.t -> tolerance:float -> bool
(** Whether every backend whose utilization is at the maximum can shed at
    least [tolerance] of the total workload to peers. *)

val harden : Allocation.t -> tolerance:float -> unit
(** Add zero-weight replicas of read classes (smallest-data first) to
    backends until {!is_robust} holds.  In-place; increases storage but not
    assigned load. *)
