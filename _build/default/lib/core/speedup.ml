let amdahl ~nodes ~serial =
  if nodes <= 0 then invalid_arg "Speedup.amdahl: nodes must be positive";
  let parallel = 1. -. serial in
  1. /. ((parallel /. float_of_int nodes) +. serial)

let full_replication ~nodes ~update_weight =
  amdahl ~nodes ~serial:update_weight

let max_speedup_bound workload ~nodes =
  let worst =
    List.fold_left
      (fun acc c -> max acc (Workload.update_weight_of workload c))
      0.
      (Workload.all_classes workload)
  in
  if worst <= 0. then float_of_int nodes
  else min (float_of_int nodes) (1. /. worst)

let of_scale ~nodes ~scale = float_of_int nodes /. scale
let of_allocation = Allocation.speedup
