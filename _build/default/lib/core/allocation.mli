(** Partial-replication allocations (paper Sec. 3.2).

    An allocation places fragment sets on backends and assigns each query
    class's weight across backends:

    - [assign c b > 0] requires the backend to hold all of [c]'s fragments
      (Eq. 8);
    - read classes are fully distributed: the per-backend shares of a read
      class sum to its weight (Eq. 9);
    - an update class is pinned at full weight on {e every} backend holding
      any of its referenced data (ROWA, Eq. 10) and lives on at least one
      backend (Eq. 11).

    The structure is mutable — the greedy and memetic algorithms edit it in
    place — and cheap to {!copy} for population-based search. *)

type t

val create : Workload.t -> Backend.t list -> t
(** An empty allocation (no fragments placed, nothing assigned). *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst]'s placement and assignments with [src]'s.  Both must
    stem from the same workload/backends. *)

val backends : t -> Backend.t array
val workload : t -> Workload.t
val num_backends : t -> int

val classes : t -> Query_class.t array
(** All classes, reads first — index order is stable and shared with
    {!class_index}. *)

val class_index : t -> Query_class.t -> int

val fragments_of : t -> int -> Fragment.Set.t
val holds : t -> int -> Query_class.t -> bool
(** Whether the backend stores every fragment the class references. *)

val get_assign : t -> int -> Query_class.t -> float
val set_assign : t -> int -> Query_class.t -> float -> unit
val add_fragments : t -> int -> Fragment.Set.t -> unit

val assigned_load : t -> int -> float
(** Sum of assigned class weights on the backend (Eq. 14). *)

val update_weight : t -> int -> Query_class.t -> float
(** [updateWeight(B, C)] (Eq. 13): update load already on the backend that
    overlaps class [C]'s data. *)

val scale : t -> float
(** max over backends of assignedLoad/load, floored at 1 (Eq. 15).  The
    factor by which replicated updates inflate the total work. *)

val scaled_load : t -> int -> float
(** [load(B) * scale] when [scale > 1], else [load(B)] (Eq. 15). *)

val speedup : t -> float
(** [|B| / scale] (Eq. 19); equals [1 / scaledLoad] in the homogeneous
    case (Eq. 18). *)

val total_stored : t -> float
(** Total size of all fragment copies across backends — the numerator of
    the degree of replication (Eq. 28). *)

val ensure_update_closure : t -> unit
(** Enforce Eq. 10: pin every update class (at full weight) on every backend
    whose fragment set overlaps the class's data, adding the class's
    remaining fragments to those backends; iterates to a fixpoint. *)

val prune : t -> unit
(** Drop fragments (and update-class pinnings) from backends where no
    assigned read class needs them, while keeping every update class on at
    least one backend (Eq. 11); re-establishes the closure afterwards. *)

val validate : t -> (unit, string list) result
(** Check Eqs. 8–11 plus basic sanity (non-negative assignments). *)

val pp_load_matrix : t Fmt.t
(** The class-by-backend percentage matrix used throughout the paper's
    examples. *)

val pp_allocation_matrix : t Fmt.t
(** The backend-by-fragment 0/1 matrix of Appendix A. *)
