(** Query classes — groups of queries that access the same data fragments
    (paper Sec. 3.1, Eqs. 2–4).

    A class carries its access footprint (a fragment set), its kind (read or
    update) and its weight: the fraction of the total workload cost that
    queries of this class produce.  Read-class weights plus update-class
    weights sum to 1 over a classification. *)

type kind = Read | Update

type t = {
  id : string;  (** stable identifier, e.g. ["Q1"] or ["U2"] *)
  kind : kind;
  fragments : Fragment.Set.t;
  weight : float;
}

val read : string -> Fragment.t list -> weight:float -> t
val update : string -> Fragment.t list -> weight:float -> t

val size : t -> float
(** Total size of the fragments the class references. *)

val overlaps : t -> t -> bool
(** Whether the two classes reference at least one common fragment. *)

val is_update : t -> bool

val compare : t -> t -> int
(** Order by [id]. *)

val pp : t Fmt.t
