module Vec = Cdbs_util.Vec

type entry = {
  sql : string;
  cost : float;
  at : float;
}

type t = entry Vec.t

let create () = Vec.create ()

let record_at t ~at ~sql ~cost = Vec.push t { sql; cost; at }
let record t ~sql ~cost = record_at t ~at:0. ~sql ~cost

let add_entry t e = Vec.push t e
let length = Vec.length
let entries t = Vec.to_list t
let total_cost t = Vec.fold_left (fun acc e -> acc +. e.cost) 0. t

let occurrences t =
  let counts = Hashtbl.create 64 in
  Vec.iter
    (fun e ->
      Hashtbl.replace counts e.sql
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.sql)))
    t;
  Hashtbl.fold (fun sql n acc -> (sql, n) :: acc) counts []
  |> List.sort compare

let between t ~lo ~hi =
  let out = create () in
  Vec.iter (fun e -> if e.at >= lo && e.at < hi then Vec.push out e) t;
  out

let merge a b =
  let out = create () in
  Vec.iter (Vec.push out) a;
  Vec.iter (Vec.push out) b;
  out

let clear = Vec.clear

let save_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# cdbs journal: cost|at|sql\n";
      Vec.iter
        (fun e -> Printf.fprintf oc "%.6f|%.3f|%s\n" e.cost e.at e.sql)
        t)

let parse_line line =
  match String.split_on_char '|' line with
  | [ sql ] -> Some { sql; cost = 1.; at = 0. }
  | cost :: rest -> (
      match float_of_string_opt (String.trim cost) with
      | None -> Some { sql = line; cost = 1.; at = 0. }
      | Some cost -> (
          match rest with
          | [ sql ] -> Some { sql; cost; at = 0. }
          | at :: sql_parts -> (
              match float_of_string_opt (String.trim at) with
              | Some at ->
                  Some { sql = String.concat "|" sql_parts; cost; at }
              | None ->
                  Some { sql = String.concat "|" rest; cost; at = 0. })
          | [] -> None))
  | [] -> None

let load_file path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let t = create () in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          try
            while true do
              let line = String.trim (input_line ic) in
              if line <> "" && line.[0] <> '#' then
                Option.iter (Vec.push t) (parse_line line)
            done;
            assert false
          with End_of_file -> Ok t)
