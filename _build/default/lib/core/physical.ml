module Hungarian = Cdbs_lp.Hungarian

type plan = {
  mapping : int array;
  transfer : float;
  per_backend : float array;
}

let transfer_cost ~old_fragments new_fragments =
  Fragment.set_size (Fragment.Set.diff new_fragments old_fragments)

let plan_of_sets ~old_sets ~new_sets =
  let nv = Array.length new_sets and nu = Array.length old_sets in
  let n = max nv nu in
  (* Pad with empty virtual backends: shipping to a fresh node costs the
     full fragment size; decommissioned nodes receive nothing. *)
  let cost =
    Array.init n (fun v ->
        Array.init n (fun u ->
            let nf =
              if v < nv then new_sets.(v) else Fragment.Set.empty
            in
            let of_ = if u < nu then old_sets.(u) else Fragment.Set.empty in
            transfer_cost ~old_fragments:of_ nf))
  in
  let assignment, _ = Hungarian.solve cost in
  let mapping = Array.make nv (-1) in
  let per_backend = Array.make nv 0. in
  for v = 0 to nv - 1 do
    let u = assignment.(v) in
    mapping.(v) <- (if u < nu then u else -1);
    per_backend.(v) <- cost.(v).(u)
  done;
  {
    mapping;
    transfer = Array.fold_left ( +. ) 0. per_backend;
    per_backend;
  }

let plan ~old_alloc new_alloc =
  if Allocation.num_backends old_alloc <> Allocation.num_backends new_alloc
  then invalid_arg "Physical.plan: backend counts differ (use plan_scaled)";
  let sets alloc =
    Array.init (Allocation.num_backends alloc) (Allocation.fragments_of alloc)
  in
  plan_of_sets ~old_sets:(sets old_alloc) ~new_sets:(sets new_alloc)

let plan_scaled ~old_fragments new_alloc =
  let new_sets =
    Array.init
      (Allocation.num_backends new_alloc)
      (Allocation.fragments_of new_alloc)
  in
  plan_of_sets ~old_sets:(Array.of_list old_fragments) ~new_sets

let deltas p ~old_fragments ~new_fragments =
  let old_sets = Array.of_list old_fragments in
  let new_sets = Array.of_list new_fragments in
  Array.to_list
    (Array.mapi
       (fun v u ->
         let already =
           if u >= 0 && u < Array.length old_sets then old_sets.(u)
           else Fragment.Set.empty
         in
         Fragment.Set.diff new_sets.(v) already)
       p.mapping)

let duration ?(prepare_rate = 100.) ?(transfer_rate = 35.) ?(load_rate = 25.)
    p ~fragmentation =
  (* The controller ships from a single source, so the network stage is
     serial in the total volume; bulk loading runs in parallel on the
     backends and costs as much as the slowest one. *)
  let prepare = fragmentation /. prepare_rate in
  let ship = p.transfer /. transfer_rate in
  let slowest_load =
    Array.fold_left (fun acc mb -> max acc (mb /. load_rate)) 0. p.per_backend
  in
  prepare +. ship +. slowest_load
