(** The paper's analytical performance model (Sec. 2 and 3.2.1).

    Amdahl's-law-style throughput prediction for the CDBS processing model:
    reads parallelize perfectly, updates replicate and act as the serial
    fraction. *)

val amdahl : nodes:int -> serial:float -> float
(** Eq. 1: [1 / (parallel/nodes + serial)] with [parallel = 1 - serial].
    For the fully replicated TPC-App setup ([serial = 0.25], 10 nodes) this
    is the paper's 3.07 (Eq. 29). *)

val full_replication : nodes:int -> update_weight:float -> float
(** Speedup of a fully replicated cluster where updates (total weight
    [update_weight]) run on every node: {!amdahl} with
    [serial = update_weight]. *)

val max_speedup_bound : Workload.t -> nodes:int -> float
(** Eq. 17: an upper bound on any allocation's speedup — the reciprocal of
    the largest co-allocated update weight [max_C sum_{CU in updates(C)}
    weight(CU)], additionally capped by the node count (read-only workloads
    are bounded by linear speedup). *)

val of_scale : nodes:int -> scale:float -> float
(** Eq. 19: [nodes / scale]; with 10 nodes and scale 1.3 this is the
    paper's 7.7 (Eq. 30). *)

val of_allocation : Allocation.t -> float
(** Speedup predicted for a concrete allocation (equals
    {!Allocation.speedup}). *)
