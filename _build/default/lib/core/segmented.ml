type segment = {
  start_time : float;
  end_time : float;
  journal : Journal.t;
}

(* Per-statement cost shares of a list of entries. *)
let mix entries =
  let h = Hashtbl.create 16 in
  let total = ref 0. in
  List.iter
    (fun (e : Journal.entry) ->
      total := !total +. e.cost;
      Hashtbl.replace h e.sql
        (e.cost +. Option.value ~default:0. (Hashtbl.find_opt h e.sql)))
    entries;
  if !total <= 0. then h
  else begin
    Hashtbl.iter (fun k v -> Hashtbl.replace h k (v /. !total)) h;
    h
  end

(* Total-variation distance between two mixes (0..1). *)
let mix_distance a b =
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) a;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) b;
  let d = ref 0. in
  Hashtbl.iter
    (fun k () ->
      let va = Option.value ~default:0. (Hashtbl.find_opt a k) in
      let vb = Option.value ~default:0. (Hashtbl.find_opt b k) in
      d := !d +. abs_float (va -. vb))
    keys;
  !d /. 2.

let segment_journal ~window ~threshold journal =
  let entries =
    List.sort
      (fun (a : Journal.entry) b -> Stdlib.compare a.at b.at)
      (Journal.entries journal)
  in
  match entries with
  | [] -> [ { start_time = 0.; end_time = 0.; journal = Journal.create () } ]
  | first :: _ ->
      let last = List.nth entries (List.length entries - 1) in
      let t0 = first.at and t1 = last.at in
      if t1 -. t0 <= window then
        [ { start_time = t0; end_time = t1 +. 1.; journal } ]
      else begin
        (* Compare adjacent windows at half-window steps; a boundary is
           placed where the mix jumps. *)
        let step = window /. 2. in
        let in_range lo hi =
          List.filter (fun (e : Journal.entry) -> e.at >= lo && e.at < hi) entries
        in
        let boundaries = ref [] in
        let t = ref (t0 +. window) in
        while !t < t1 do
          let before = mix (in_range (!t -. window) !t) in
          let after = mix (in_range !t (!t +. window)) in
          if mix_distance before after > threshold then begin
            (* Avoid boundary bursts: only keep if far from the previous. *)
            match !boundaries with
            | b :: _ when !t -. b < window -> ()
            | _ -> boundaries := !t :: !boundaries
          end;
          t := !t +. step
        done;
        let cuts = List.rev !boundaries in
        let edges = (t0 :: cuts) @ [ t1 +. 1. ] in
        let rec to_segments = function
          | lo :: (hi :: _ as rest) ->
              {
                start_time = lo;
                end_time = hi;
                journal = Journal.between journal ~lo ~hi;
              }
              :: to_segments rest
          | _ -> []
        in
        to_segments edges
      end

(* Distribute a class's weight over the backends holding its data,
   water-filling toward equal utilization. *)
let distribute alloc c holders =
  let backends = Allocation.backends alloc in
  let chunks = 50 in
  let chunk = c.Query_class.weight /. float_of_int chunks in
  for _ = 1 to chunks do
    let best = ref (-1) and best_u = ref infinity in
    List.iter
      (fun b ->
        let u =
          Allocation.assigned_load alloc b /. backends.(b).Backend.load
        in
        if u < !best_u then begin
          best := b;
          best_u := u
        end)
      holders;
    if !best >= 0 then
      Allocation.set_assign alloc !best c
        (Allocation.get_assign alloc !best c +. chunk)
  done

let reassign alloc =
  let workload = Allocation.workload alloc in
  let n = Allocation.num_backends alloc in
  (* Clear read assignments, keep the placement. *)
  List.iter
    (fun c ->
      for b = 0 to n - 1 do
        Allocation.set_assign alloc b c 0.
      done)
    workload.Workload.reads;
  Allocation.ensure_update_closure alloc;
  let classes =
    List.sort
      (fun a b -> Stdlib.compare b.Query_class.weight a.Query_class.weight)
      workload.Workload.reads
  in
  List.iter
    (fun c ->
      let holders =
        List.filter
          (fun b -> Allocation.holds alloc b c)
          (List.init n (fun b -> b))
      in
      let holders =
        if holders <> [] then holders
        else begin
          (* Should not happen for merged segment placements; fall back to
             installing the class on the least-utilized backend. *)
          let backends = Allocation.backends alloc in
          let best = ref 0 and best_u = ref infinity in
          for b = 0 to n - 1 do
            let u =
              Allocation.assigned_load alloc b /. backends.(b).Backend.load
            in
            if u < !best_u then begin
              best := b;
              best_u := u
            end
          done;
          Allocation.add_fragments alloc !best c.Query_class.fragments;
          Allocation.ensure_update_closure alloc;
          [ !best ]
        end
      in
      distribute alloc c holders)
    classes

let merge = function
  | [] -> invalid_arg "Segmented.merge: empty list"
  | first :: rest ->
      let merged = Allocation.copy first in
      let n = Allocation.num_backends merged in
      List.iter
        (fun alloc ->
          if Allocation.num_backends alloc <> n then
            invalid_arg "Segmented.merge: backend count mismatch";
          (* Align the segment's backends with the merged allocation so the
             union adds as little data as possible. *)
          let plan =
            Physical.plan_scaled
              ~old_fragments:
                (List.init n (fun b -> Allocation.fragments_of merged b))
              alloc
          in
          Array.iteri
            (fun v u ->
              let target = if u >= 0 then u else v in
              Allocation.add_fragments merged target
                (Allocation.fragments_of alloc v))
            plan.Physical.mapping)
        rest;
      reassign merged;
      merged

let allocate_segmented ~classify ~allocate ~window ~threshold journal =
  let segments = segment_journal ~window ~threshold journal in
  let allocations =
    List.map (fun s -> allocate (classify s.journal)) segments
  in
  (* The merged allocation serves the overall workload. *)
  match allocations with
  | [ single ] -> (single, segments)
  | several ->
      let overall = classify journal in
      let backends = Array.to_list (Allocation.backends (List.hd several)) in
      let merged_placement = merge several in
      (* Rebuild over the overall workload, importing the union placement. *)
      let final = Allocation.create overall backends in
      for b = 0 to Allocation.num_backends final - 1 do
        Allocation.add_fragments final b
          (Allocation.fragments_of merged_placement b)
      done;
      reassign final;
      (final, segments)
