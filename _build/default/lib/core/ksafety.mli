(** K-safe allocation (paper Appendix C, Algorithms 3–4).

    With k-safety the cluster tolerates the loss of any k backends without
    data loss or service interruption: every query class is allocated to at
    least k+1 backends (so each query can still execute locally after k
    failures), and consequently every fragment lives on at least k+1 nodes.
    Replicated query-class copies carry zero read weight — they are standby
    capacity — but replicated update classes do add update work. *)

val allocate : k:int -> Workload.t -> Backend.t list -> Allocation.t
(** Greedy allocation with the k-safety extension (Algorithm 4): after the
    base first-fit pass, under-replicated classes are re-enqueued as
    zero-weight replicas that must land on backends not already holding
    them.  @raise Invalid_argument when [k + 1] exceeds the backend count. *)

val replicate_fragments : k:int -> Allocation.t -> unit
(** Fragment-level k-safety for read-only data (Eq. 46): place additional
    copies of any fragment stored fewer than k+1 times, round-robin over
    the emptiest backends.  In-place; re-establishes the update closure. *)

val class_replica_count : Allocation.t -> Query_class.t -> int
(** Number of backends holding all of the class's fragments. *)

val is_k_safe : k:int -> Allocation.t -> bool
(** Whether every query class of the workload is served by at least k+1
    backends. *)

val survives : Allocation.t -> failed:int list -> bool
(** Whether every query class can still be processed locally by some
    surviving backend after the listed backends fail. *)
