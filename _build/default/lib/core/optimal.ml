module Simplex = Cdbs_lp.Simplex
module Mip = Cdbs_lp.Mip

type report = {
  allocation : Allocation.t;
  scale : float;
  space : float;
  proved_optimal : bool;
}

(* Variable layout for the MIP (see Appendix B):
   [0]                      scale
   [1 .. nb*nf]             A(i,j)    backend i, fragment j
   [.. + nb*nq]             LQ(i,k)
   [.. + nb*nu]             LU(i,m)
   [.. + nb*nq]             HQ(i,k)   binary
   [.. + nb*nu]             HU(i,m)   binary *)
type layout = {
  nb : int;
  nf : int;
  nq : int;
  nu : int;
  a0 : int;
  lq0 : int;
  lu0 : int;
  hq0 : int;
  hu0 : int;
  total : int;
}

let layout ~nb ~nf ~nq ~nu =
  let a0 = 1 in
  let lq0 = a0 + (nb * nf) in
  let lu0 = lq0 + (nb * nq) in
  let hq0 = lu0 + (nb * nu) in
  let hu0 = hq0 + (nb * nq) in
  { nb; nf; nq; nu; a0; lq0; lu0; hq0; hu0; total = hu0 + (nb * nu) }

let a_var l i j = l.a0 + (i * l.nf) + j
let lq_var l i k = l.lq0 + (i * l.nq) + k
let lu_var l i m = l.lu0 + (i * l.nu) + m
let hq_var l i k = l.hq0 + (i * l.nq) + k
let hu_var l i m = l.hu0 + (i * l.nu) + m

let build_rows l ~fragments ~reads ~updates ~loads ~overlap_pairs =
  let rows = ref [] in
  let add r = rows := r :: !rows in
  let frag_index =
    let h = Hashtbl.create 64 in
    Array.iteri (fun j f -> Hashtbl.replace h (Fragment.name f) j) fragments;
    fun f -> Hashtbl.find h (Fragment.name f)
  in
  (* scale >= 1 *)
  add (Simplex.row [ (0, 1.) ] Simplex.Ge 1.);
  (* Eq. 38: read classes fully distributed. *)
  Array.iteri
    (fun k (c : Query_class.t) ->
      add
        (Simplex.row
           (List.init l.nb (fun i -> (lq_var l i k, 1.)))
           Simplex.Eq c.weight))
    reads;
  (* Eq. 39: update classes allocated at least once. *)
  Array.iteri
    (fun m (c : Query_class.t) ->
      add
        (Simplex.row
           (List.init l.nb (fun i -> (lu_var l i m, 1.)))
           Simplex.Ge c.weight))
    updates;
  (* Eq. 42: LU = weight * HU. *)
  for i = 0 to l.nb - 1 do
    Array.iteri
      (fun m (c : Query_class.t) ->
        add
          (Simplex.row
             [ (lu_var l i m, 1.); (hu_var l i m, -.c.weight) ]
             Simplex.Eq 0.))
      updates
  done;
  (* HQ indicator: LQ <= weight * HQ. *)
  for i = 0 to l.nb - 1 do
    Array.iteri
      (fun k (c : Query_class.t) ->
        add
          (Simplex.row
             [ (lq_var l i k, 1.); (hq_var l i k, -.c.weight) ]
             Simplex.Le 0.))
      reads
  done;
  (* Eq. 41 second case: a read class forces its overlapping updates. *)
  for i = 0 to l.nb - 1 do
    List.iter
      (fun (k, m) ->
        add
          (Simplex.row
             [ (hu_var l i m, 1.); (hq_var l i k, -1.) ]
             Simplex.Ge 0.))
      overlap_pairs
  done;
  (* Eq. 43: per-backend capacity scaled by the scale factor. *)
  for i = 0 to l.nb - 1 do
    let coeffs =
      List.init l.nq (fun k -> (lq_var l i k, 1.))
      @ List.init l.nu (fun m -> (lu_var l i m, 1.))
      @ [ (0, -.loads.(i)) ]
    in
    add (Simplex.row coeffs Simplex.Le 0.)
  done;
  (* Eqs. 44-45: allocated classes need their fragments present. *)
  for i = 0 to l.nb - 1 do
    Array.iteri
      (fun k (c : Query_class.t) ->
        let frs = Fragment.Set.elements c.Query_class.fragments in
        add
          (Simplex.row
             (List.map (fun f -> (a_var l i (frag_index f), 1.)) frs
             @ [ (hq_var l i k, -.float_of_int (List.length frs)) ])
             Simplex.Ge 0.))
      reads;
    Array.iteri
      (fun m (c : Query_class.t) ->
        let frs = Fragment.Set.elements c.Query_class.fragments in
        add
          (Simplex.row
             (List.map (fun f -> (a_var l i (frag_index f), 1.)) frs
             @ [ (hu_var l i m, -.float_of_int (List.length frs)) ])
             Simplex.Ge 0.))
      updates
  done;
  (* A, HQ, HU in [0,1]. *)
  for i = 0 to l.nb - 1 do
    for j = 0 to l.nf - 1 do
      add (Simplex.row [ (a_var l i j, 1.) ] Simplex.Le 1.)
    done;
    for k = 0 to l.nq - 1 do
      add (Simplex.row [ (hq_var l i k, 1.) ] Simplex.Le 1.)
    done;
    for m = 0 to l.nu - 1 do
      add (Simplex.row [ (hu_var l i m, 1.) ] Simplex.Le 1.)
    done
  done;
  List.rev !rows

let incumbent_vector l ~fragments ~reads ~updates (alloc : Allocation.t) =
  let x = Array.make l.total 0. in
  x.(0) <- Allocation.scale alloc;
  Array.iteri
    (fun j f ->
      for i = 0 to l.nb - 1 do
        if Fragment.Set.mem f (Allocation.fragments_of alloc i) then
          x.(a_var l i j) <- 1.
      done)
    fragments;
  Array.iteri
    (fun k c ->
      for i = 0 to l.nb - 1 do
        let w = Allocation.get_assign alloc i c in
        x.(lq_var l i k) <- w;
        if w > 0. then x.(hq_var l i k) <- 1.
      done)
    reads;
  Array.iteri
    (fun m (c : Query_class.t) ->
      for i = 0 to l.nb - 1 do
        let w = Allocation.get_assign alloc i c in
        x.(lu_var l i m) <- w;
        if w > 0. then x.(hu_var l i m) <- 1.
      done)
    updates;
  x

let extract_allocation l ~fragments ~reads ~updates workload backend_list x =
  let alloc = Allocation.create workload backend_list in
  for i = 0 to l.nb - 1 do
    Array.iteri
      (fun j f ->
        if x.(a_var l i j) > 0.5 then
          Allocation.add_fragments alloc i (Fragment.Set.singleton f))
      fragments;
    Array.iteri
      (fun k c ->
        let w = x.(lq_var l i k) in
        if w > 1e-9 then Allocation.set_assign alloc i c w)
      reads;
    Array.iteri
      (fun m (c : Query_class.t) ->
        if x.(hu_var l i m) > 0.5 then
          Allocation.set_assign alloc i c c.weight)
      updates
  done;
  (* The MIP may store slightly more than an update class's overlap rule
     would demand; re-establish the exact closure invariant. *)
  Allocation.ensure_update_closure alloc;
  alloc

let allocate ?(node_limit = 50_000) ?(seed_with_greedy = true) workload
    backend_list =
  let reads = Array.of_list workload.Workload.reads in
  let updates = Array.of_list workload.Workload.updates in
  let fragments =
    Array.of_list (Fragment.Set.elements (Workload.fragments workload))
  in
  let backends = Array.of_list backend_list in
  let loads = Array.map (fun b -> b.Backend.load) backends in
  let l =
    layout ~nb:(Array.length backends) ~nf:(Array.length fragments)
      ~nq:(Array.length reads) ~nu:(Array.length updates)
  in
  let overlap_pairs =
    List.concat
      (List.init l.nq (fun k ->
           List.filter_map
             (fun m ->
               if Query_class.overlaps reads.(k) updates.(m) then Some (k, m)
               else None)
             (List.init l.nu (fun m -> m))))
  in
  let rows = build_rows l ~fragments ~reads ~updates ~loads ~overlap_pairs in
  let integer_vars =
    List.init (l.nb * l.nq) (fun v -> l.hq0 + v)
    @ List.init (l.nb * l.nu) (fun v -> l.hu0 + v)
    @ List.init (l.nb * l.nf) (fun v -> l.a0 + v)
  in
  (* A is integral automatically given integral H (constraints 44-45 force
     the needed entries to exactly 1 and minimization zeroes the rest), but
     declaring it integral is free: the relaxation already returns integral
     values, so no branching happens on A. *)
  let incumbent =
    if seed_with_greedy then
      Some
        (incumbent_vector l ~fragments ~reads ~updates
           (Greedy.allocate workload backend_list))
    else None
  in
  (* Phase 1: minimize scale. *)
  let obj1 = Array.make l.total 0. in
  obj1.(0) <- 1.;
  let p1 =
    { Mip.lp = { Simplex.num_vars = l.total; objective = obj1; rows };
      integer_vars }
  in
  match Mip.solve ~node_limit ?incumbent p1 with
  | Mip.No_solution -> Error "phase 1 infeasible"
  | Mip.Solved s1 ->
      let best_scale = s1.Mip.value in
      (* Phase 2: fix the scale, minimize allocated space. *)
      let obj2 = Array.make l.total 0. in
      Array.iteri
        (fun j f ->
          for i = 0 to l.nb - 1 do
            obj2.(a_var l i j) <- f.Fragment.size
          done)
        fragments;
      let scale_cap =
        Simplex.row [ (0, 1.) ] Simplex.Le (best_scale +. 1e-6)
      in
      let p2 =
        {
          Mip.lp =
            {
              Simplex.num_vars = l.total;
              objective = obj2;
              rows = scale_cap :: rows;
            };
          integer_vars;
        }
      in
      let incumbent2 = Some s1.Mip.assignment in
      (match Mip.solve ~node_limit ?incumbent:incumbent2 p2 with
      | Mip.No_solution -> Error "phase 2 infeasible"
      | Mip.Solved s2 ->
          let allocation =
            extract_allocation l ~fragments ~reads ~updates workload
              backend_list s2.Mip.assignment
          in
          Ok
            {
              allocation;
              scale = best_scale;
              space = s2.Mip.value;
              proved_optimal = s1.Mip.proved_optimal && s2.Mip.proved_optimal;
            })

let coarsen workload =
  let classes = Workload.all_classes workload in
  (* Signature of a fragment: the sorted ids of classes referencing it. *)
  let signature f =
    List.filter_map
      (fun c ->
        if Fragment.Set.mem f c.Query_class.fragments then
          Some c.Query_class.id
        else None)
      classes
  in
  let groups : (string list, Fragment.t list) Hashtbl.t = Hashtbl.create 32 in
  Fragment.Set.iter
    (fun f ->
      let s = signature f in
      Hashtbl.replace groups s
        (f :: Option.value ~default:[] (Hashtbl.find_opt groups s)))
    (Workload.fragments workload);
  (* Map original fragment name -> compound fragment. *)
  let mapping = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ fs ->
      let total = List.fold_left (fun a f -> a +. f.Fragment.size) 0. fs in
      let names =
        List.sort String.compare (List.map Fragment.name fs)
      in
      let compound =
        Fragment.table (String.concat "+" names) ~size:total
      in
      List.iter (fun f -> Hashtbl.replace mapping (Fragment.name f) compound) fs)
    groups;
  let remap c =
    {
      c with
      Query_class.fragments =
        Fragment.Set.fold
          (fun f acc ->
            Fragment.Set.add (Hashtbl.find mapping (Fragment.name f)) acc)
          c.Query_class.fragments Fragment.Set.empty;
    }
  in
  Workload.make
    ~reads:(List.map remap workload.Workload.reads)
    ~updates:(List.map remap workload.Workload.updates)
