let replica_counts alloc =
  let fragments =
    Fragment.Set.elements (Workload.fragments (Allocation.workload alloc))
  in
  List.map
    (fun f ->
      let count = ref 0 in
      for b = 0 to Allocation.num_backends alloc - 1 do
        if Fragment.Set.mem f (Allocation.fragments_of alloc b) then incr count
      done;
      (f, !count))
    fragments

let degree alloc =
  let base =
    Fragment.set_size (Workload.fragments (Allocation.workload alloc))
  in
  if base <= 0. then 0. else Allocation.total_stored alloc /. base

let histogram alloc ~max_replicas =
  if max_replicas <= 0 then invalid_arg "Replication.histogram";
  let bins = Array.make max_replicas 0 in
  List.iter
    (fun (_, count) ->
      if count >= 1 then begin
        let idx = min (max_replicas - 1) (count - 1) in
        bins.(idx) <- bins.(idx) + 1
      end)
    (replica_counts alloc);
  bins

let min_replicas alloc =
  List.fold_left
    (fun acc (_, count) -> min acc count)
    max_int (replica_counts alloc)
  |> fun m -> if m = max_int then 0 else m
