(** Time-segmented allocation for periodically changing workloads
    (paper Sec. 5, Fig. 6).

    The query history is cut into segments where the class mix is stable (a
    sliding window compares mix variance); each segment gets its own
    allocation, and the per-segment allocations are merged — aligning their
    backends with the Hungarian method so overlapping placements land on the
    same nodes — into one combined allocation that serves every segment's
    load shape without reallocation. *)

type segment = {
  start_time : float;
  end_time : float;
  journal : Journal.t;
}

val segment_journal :
  window:float -> threshold:float -> Journal.t -> segment list
(** Slide a [window]-second window over the journal (ordered by entry
    time); a new segment starts whenever the class-mix distance between
    adjacent windows exceeds [threshold] (total-variation distance on the
    per-statement cost shares, 0..1).  Always returns at least one segment
    covering the whole journal. *)

val merge : Allocation.t list -> Allocation.t
(** Merge per-segment allocations over the same backends: segment i+1's
    backends are matched to the merged allocation's backends by minimal
    additional data (Eq. 27); fragment sets are united; each class's
    assignment becomes its maximum share over the segments (standby
    capacity for the segment where it peaks).  @raise Invalid_argument on
    an empty list or mismatched backend counts. *)

val allocate_segmented :
  classify:(Journal.t -> Workload.t) ->
  allocate:(Workload.t -> Allocation.t) ->
  window:float ->
  threshold:float ->
  Journal.t ->
  Allocation.t * segment list
(** End-to-end pipeline: segment, classify and allocate each segment, then
    {!merge}. *)
