lib/core/query_class.ml: Fmt Fragment List String
