lib/core/speedup.mli: Allocation Workload
