lib/core/ksafety.ml: Allocation Array Backend Fragment Greedy List Query_class Stdlib Workload
