lib/core/optimal.ml: Allocation Array Backend Cdbs_lp Fragment Greedy Hashtbl List Option Query_class String Workload
