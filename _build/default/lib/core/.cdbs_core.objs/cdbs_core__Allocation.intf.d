lib/core/allocation.mli: Backend Fmt Fragment Query_class Workload
