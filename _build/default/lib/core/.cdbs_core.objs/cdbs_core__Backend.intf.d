lib/core/backend.mli: Fmt
