lib/core/fragment.mli: Cdbs_sql Fmt Set
