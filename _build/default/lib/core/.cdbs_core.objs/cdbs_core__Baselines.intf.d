lib/core/baselines.mli: Allocation Backend Cdbs_util Workload
