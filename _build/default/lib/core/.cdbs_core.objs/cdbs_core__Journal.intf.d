lib/core/journal.mli:
