lib/core/physical.ml: Allocation Array Cdbs_lp Fragment
