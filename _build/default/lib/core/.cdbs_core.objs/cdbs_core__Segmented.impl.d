lib/core/segmented.ml: Allocation Array Backend Hashtbl Journal List Option Physical Query_class Stdlib Workload
