lib/core/replication.mli: Allocation Fragment
