lib/core/robustness.mli: Allocation Query_class
