lib/core/workload.ml: Fmt Fragment List Printf Query_class String
