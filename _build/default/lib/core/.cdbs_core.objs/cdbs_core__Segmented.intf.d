lib/core/segmented.mli: Allocation Journal Workload
