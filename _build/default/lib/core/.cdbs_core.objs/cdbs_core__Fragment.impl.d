lib/core/fragment.ml: Cdbs_sql Fmt List Set Stdlib
