lib/core/memetic.mli: Allocation Backend Cdbs_util Workload
