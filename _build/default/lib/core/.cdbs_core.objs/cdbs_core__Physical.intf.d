lib/core/physical.mli: Allocation Fragment
