lib/core/baselines.ml: Allocation Array Backend Cdbs_util List Query_class Workload
