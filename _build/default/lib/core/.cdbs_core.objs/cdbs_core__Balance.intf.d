lib/core/balance.mli: Allocation
