lib/core/greedy.ml: Allocation Array Backend Fragment Hashtbl List Query_class Stdlib Workload
