lib/core/ksafety.mli: Allocation Backend Query_class Workload
