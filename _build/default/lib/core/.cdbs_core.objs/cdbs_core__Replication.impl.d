lib/core/replication.ml: Allocation Array Fragment List Workload
