lib/core/backend.ml: Fmt List Printf
