lib/core/classification.ml: Cdbs_sql Cdbs_storage Fragment Hashtbl Journal List Option Printf Query_class Stdlib Workload
