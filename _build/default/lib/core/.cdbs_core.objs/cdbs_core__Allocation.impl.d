lib/core/allocation.ml: Array Backend Fmt Fragment Hashtbl List Query_class String Workload
