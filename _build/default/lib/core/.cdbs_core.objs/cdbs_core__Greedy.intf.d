lib/core/greedy.mli: Allocation Backend Query_class Workload
