lib/core/memetic.ml: Allocation Array Cdbs_util Greedy List Query_class Workload
