lib/core/speedup.ml: Allocation List Workload
