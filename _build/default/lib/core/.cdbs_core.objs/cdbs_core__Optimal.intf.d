lib/core/optimal.mli: Allocation Backend Workload
