lib/core/robustness.ml: Allocation Array Backend List Query_class Stdlib Workload
