lib/core/query_class.mli: Fmt Fragment
