lib/core/balance.ml: Allocation Array Backend Cdbs_util List
