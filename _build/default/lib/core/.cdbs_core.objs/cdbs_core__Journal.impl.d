lib/core/journal.ml: Cdbs_util Fun Hashtbl List Option Printf String
