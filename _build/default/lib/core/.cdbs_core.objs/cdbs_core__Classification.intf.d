lib/core/classification.mli: Cdbs_sql Cdbs_storage Fragment Journal Workload
