lib/core/workload.mli: Fmt Fragment Query_class
