let over_utilization alloc c ~delta =
  let n = Allocation.num_backends alloc in
  let backends = Allocation.backends alloc in
  let total = ref 0. in
  for b = 0 to n - 1 do
    total := !total +. Allocation.get_assign alloc b c
  done;
  let scale = ref 1. in
  for b = 0 to n - 1 do
    let share =
      if !total > 0. then Allocation.get_assign alloc b c /. !total
      else 0.
    in
    let load = Allocation.assigned_load alloc b +. (delta *. share) in
    let r = load /. backends.(b).Backend.load in
    if r > !scale then scale := r
  done;
  !scale

let shiftable_weight alloc b =
  let workload = Allocation.workload alloc in
  let n = Allocation.num_backends alloc in
  List.fold_left
    (fun acc c ->
      let w = Allocation.get_assign alloc b c in
      if w <= 0. then acc
      else
        let rec elsewhere b' =
          b' < n && ((b' <> b && Allocation.holds alloc b' c) || elsewhere (b' + 1))
        in
        if elsewhere 0 then acc +. w else acc)
    0. workload.Workload.reads

let is_robust alloc ~tolerance =
  let n = Allocation.num_backends alloc in
  let backends = Allocation.backends alloc in
  let s = Allocation.scale alloc in
  let rec all b =
    b >= n
    ||
    let utilization =
      Allocation.assigned_load alloc b /. backends.(b).Backend.load
    in
    (* Only backends at the current maximum constrain robustness. *)
    ((utilization < s -. 1e-9) || shiftable_weight alloc b >= tolerance)
    && all (b + 1)
  in
  all 0

let harden alloc ~tolerance =
  let workload = Allocation.workload alloc in
  let n = Allocation.num_backends alloc in
  let backends = Allocation.backends alloc in
  let s = Allocation.scale alloc in
  for b = 0 to n - 1 do
    let utilization =
      Allocation.assigned_load alloc b /. backends.(b).Backend.load
    in
    if utilization >= s -. 1e-9 then begin
      (* Replicate this backend's read classes (smallest data first) onto
         other backends until enough weight could be shifted away. *)
      let local =
        List.filter
          (fun c -> Allocation.get_assign alloc b c > 0.)
          workload.Workload.reads
        |> List.sort (fun a c -> Stdlib.compare (Query_class.size a) (Query_class.size c))
      in
      List.iter
        (fun c ->
          if shiftable_weight alloc b < tolerance then begin
            (* Pick the least-utilized backend not holding the class. *)
            let best = ref (-1) and best_u = ref infinity in
            for b' = 0 to n - 1 do
              if b' <> b && not (Allocation.holds alloc b' c) then begin
                let u =
                  Allocation.assigned_load alloc b'
                  /. backends.(b').Backend.load
                in
                if u < !best_u then begin
                  best := b';
                  best_u := u
                end
              end
            done;
            if !best >= 0 then begin
              Allocation.add_fragments alloc !best c.Query_class.fragments;
              Allocation.ensure_update_closure alloc
            end
          end)
        local
    end
  done
