let utilizations alloc =
  let backends = Allocation.backends alloc in
  List.init (Array.length backends) (fun b ->
      Allocation.assigned_load alloc b /. backends.(b).Backend.load)

let deviation alloc = Cdbs_util.Stats.relative_deviation (utilizations alloc)

let underloaded alloc =
  let us = utilizations alloc in
  let mean = Cdbs_util.Stats.mean us in
  List.mapi (fun i u -> (i, u)) us
  |> List.filter (fun (_, u) -> u < 0.95 *. mean)
  |> List.map fst
