(** The greedy first-fit allocation heuristic (paper Algorithm 1).

    Query classes are sorted descending by the weight they would impose on a
    backend (own weight plus co-allocated update weight) times the size of
    the data they would bring, then placed first-fit: each class goes to the
    backend that needs the least additional data, spilling the remainder of
    a read class to further backends when the best backend's (scaled)
    capacity is exhausted.  Runs in polynomial time; the resulting
    allocation is valid but not necessarily optimal (see {!Memetic} and
    {!Optimal}). *)

val allocate : Workload.t -> Backend.t list -> Allocation.t
(** Compute a greedy allocation.  The workload should be normalized
    (weights summing to 1); backends must be non-empty.

    Deviation from the paper's pseudo-code, for correctness: when placing a
    class's fragments makes a backend overlap update classes beyond
    [updates(C)] (possible when update classes chain through fragments the
    class itself does not reference), those update classes are pinned too,
    so the result always satisfies the validity constraint of Eq. 10. *)

val sort_key : Workload.t -> Query_class.t -> rest_weight:float -> float
(** The ordering key: [(restWeight(C) + weight(updates(C))) * size(C ∪
    updates(C))]; exposed for tests reproducing the Appendix A trace. *)
