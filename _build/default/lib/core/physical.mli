(** Physical allocation: deploying a newly computed allocation onto backends
    that already hold data (paper Sec. 3.4), and elastic scale-out/scale-in
    (Sec. 5).

    The mapping of new to old backends is a minimum-cost perfect matching in
    a complete bipartite graph whose edge weight is the size of the data
    that would have to be shipped (Eq. 27); the Hungarian method solves it
    in O(n³).  For scaling, the smaller side is padded with empty virtual
    backends. *)

type plan = {
  mapping : int array;
      (** [mapping.(v) = u]: new backend v is deployed on old backend u;
          [-1] for a fresh (previously empty) node *)
  transfer : float;  (** total fragment size to ship and load *)
  per_backend : float array;  (** data shipped to each new backend *)
}

val transfer_cost : old_fragments:Fragment.Set.t -> Fragment.Set.t -> float
(** Eq. 27: total size of the fragments a new backend needs that the old
    backend does not already hold. *)

val plan : old_alloc:Allocation.t -> Allocation.t -> plan
(** Cost-minimal deployment of the new allocation onto the old one.  Both
    must have the same number of backends; use {!plan_scaled} otherwise. *)

val plan_scaled : old_fragments:Fragment.Set.t list -> Allocation.t -> plan
(** Deployment when the node count changes: [old_fragments] lists what each
    currently running backend stores (possibly fewer or more entries than
    the new allocation has backends).  Extra old backends are
    decommissioned; extra new backends start empty. *)

val deltas :
  plan ->
  old_fragments:Fragment.Set.t list ->
  new_fragments:Fragment.Set.t list ->
  Fragment.Set.t list
(** Per new backend, the fragments that must actually be shipped under the
    matching (what the ETL step copies); everything else is already in
    place on the matched old node. *)

val duration :
  ?prepare_rate:float ->
  ?transfer_rate:float ->
  ?load_rate:float ->
  plan ->
  fragmentation:float ->
  float
(** Estimated wall-clock seconds for the reallocation — the model behind
    Fig. 4(d): fragment preparation over the [fragmentation] volume, serial
    network shipping of the plan's total transfer from the single source,
    and parallel bulk loading bounded by the slowest backend.  Rates are in
    MB/s; full replication ships whole tables and has [fragmentation] 0. *)
