(** Load-balance measures (paper Fig. 4(j)).

    The paper plots the relative deviation from the average per-node
    processing time; an allocation that spreads its assigned weight in
    proportion to backend capacity has deviation 0. *)

val utilizations : Allocation.t -> float list
(** Per backend: assigned load divided by the backend's relative
    performance — 1.0 means exactly its fair share. *)

val deviation : Allocation.t -> float
(** Mean absolute relative deviation of the utilizations from their mean. *)

val underloaded : Allocation.t -> int list
(** Backends whose utilization is below 95% of the mean — the paper notes
    imbalance always stems from underloaded, never overloaded, nodes. *)
