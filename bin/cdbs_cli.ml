(* cdbs — command-line front end to the query-centric allocation library.

   Subcommands:
     classify    classify a SQL journal file into query classes
     allocate    compute an allocation for a journal or built-in workload
     simulate    simulate a workload on a cluster and report throughput
     experiment  run one of the paper-reproduction experiment sections *)

open Cmdliner

module Core = Cdbs_core

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let builtin_workload name granularity =
  match name with
  | "tpch" -> Ok (Cdbs_workloads.Tpch.workload ~granularity ~sf:1.)
  | "tpcapp" -> Ok (Cdbs_workloads.Tpcapp.workload ~granularity ~eb:300)
  | "trace" -> Ok (Cdbs_workloads.Trace.workload_at ~hour:12.)
  | other -> Error (`Msg ("unknown built-in workload " ^ other))

let granularity_conv =
  Arg.enum [ ("table", `Table); ("column", `Column) ]

let granularity_arg =
  Arg.(
    value
    & opt granularity_conv `Table
    & info [ "g"; "granularity" ] ~docv:"GRANULARITY"
        ~doc:"Classification granularity: $(b,table) or $(b,column).")

let backends_arg =
  Arg.(
    value & opt int 4
    & info [ "n"; "backends" ] ~docv:"N" ~doc:"Number of backends.")

let loads_arg =
  Arg.(
    value
    & opt (list float) []
    & info [ "loads" ] ~docv:"L1,L2,..."
        ~doc:
          "Relative backend performances for a heterogeneous cluster \
           (overrides $(b,--backends)).")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for the memetic search.")

let make_backends n loads =
  if loads = [] then Core.Backend.homogeneous n
  else Core.Backend.heterogeneous loads

let print_workload w =
  Fmt.pr "%a@." Core.Workload.pp w;
  Fmt.pr "total weight: %.4f, fragments: %d (%.1f MB)@."
    (Core.Workload.total_weight w)
    (Core.Fragment.Set.cardinal (Core.Workload.fragments w))
    (Core.Fragment.set_size (Core.Workload.fragments w))

let print_allocation alloc =
  Fmt.pr "%a@." Core.Allocation.pp_allocation_matrix alloc;
  Fmt.pr "%a@." Core.Allocation.pp_load_matrix alloc;
  Fmt.pr
    "scale %.4f, predicted speedup %.2f, degree of replication %.2f, stored \
     %.1f MB@."
    (Core.Allocation.scale alloc)
    (Core.Allocation.speedup alloc)
    (Core.Replication.degree alloc)
    (Core.Allocation.total_stored alloc)

(* ------------------------------------------------------------------ *)
(* classify                                                            *)
(* ------------------------------------------------------------------ *)

let classify_cmd =
  let journal_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOURNAL" ~doc:"Journal file (one SQL statement per line).")
  in
  let schema_arg =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("tpch", `Tpch); ("tpcapp", `Tpcapp); ("trace", `Trace) ]) `None
      & info [ "schema" ] ~docv:"SCHEMA"
          ~doc:
            "Schema used to resolve unqualified columns and size fragments: \
             $(b,tpch), $(b,tpcapp), $(b,trace) or $(b,none).  Column \
             granularity on multi-table statements needs a schema.")
  in
  let run path granularity schema_name =
    let journal =
      match Core.Journal.load_file path with
      | Ok j -> j
      | Error e -> prerr_endline e; exit 1
    in
    let schema, rows =
      match schema_name with
      | `None -> ([], [])
      | `Tpch ->
          (Cdbs_workloads.Tpch.schema, Cdbs_workloads.Tpch.row_counts ~sf:1.)
      | `Tpcapp ->
          ( Cdbs_workloads.Tpcapp.schema,
            Cdbs_workloads.Tpcapp.row_counts ~eb:300 )
      | `Trace ->
          (Cdbs_workloads.Trace.schema, Cdbs_workloads.Trace.row_counts)
    in
    (* Without a known schema, every fragment counts as 1 MB. *)
    let size_of =
      if schema = [] then fun _ -> 1.
      else Core.Classification.default_sizes ~schema ~rows
    in
    let g =
      match granularity with
      | `Table -> Core.Classification.By_table
      | `Column -> Core.Classification.By_column
    in
    let w = Core.Classification.classify ~schema ~size_of g journal in
    Fmt.pr "journal: %d entries, %d distinct statements@."
      (Core.Journal.length journal)
      (List.length (Core.Journal.occurrences journal));
    if granularity = `Column && schema = [] then
      Fmt.pr
        "note: no schema given — unqualified columns of multi-table \
         statements cannot be attributed and such statements are skipped \
         (pass --schema).@.";
    print_workload w
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a SQL journal into query classes")
    Term.(const run $ journal_arg $ granularity_arg $ schema_arg)

(* ------------------------------------------------------------------ *)
(* allocate                                                            *)
(* ------------------------------------------------------------------ *)

let algorithm_conv =
  Arg.enum [ ("greedy", `Greedy); ("memetic", `Memetic); ("optimal", `Optimal) ]

let allocate_cmd =
  let workload_arg =
    Arg.(
      value & opt string "tpch"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:"Built-in workload: $(b,tpch), $(b,tpcapp) or $(b,trace).")
  in
  let algorithm_arg =
    Arg.(
      value & opt algorithm_conv `Memetic
      & info [ "a"; "algorithm" ] ~docv:"ALG"
          ~doc:"Allocation algorithm: $(b,greedy), $(b,memetic) or $(b,optimal).")
  in
  let ksafety_arg =
    Arg.(
      value & opt int 0
      & info [ "k" ] ~docv:"K" ~doc:"k-safety degree (0 = none).")
  in
  let run name granularity n loads algorithm seed k =
    match builtin_workload name granularity with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok workload ->
        let backends = make_backends n loads in
        let alloc =
          if k > 0 then Core.Ksafety.allocate ~k workload backends
          else
          match algorithm with
          | `Greedy -> Core.Greedy.allocate workload backends
          | `Memetic ->
              Core.Memetic.allocate ~rng:(Cdbs_util.Rng.create seed) workload
                backends
          | `Optimal -> (
              match
                Core.Optimal.allocate (Core.Optimal.coarsen workload) backends
              with
              | Ok r ->
                  Fmt.pr "optimal scale %.4f (proved: %b)@." r.Core.Optimal.scale
                    r.Core.Optimal.proved_optimal;
                  r.Core.Optimal.allocation
              | Error e -> prerr_endline e; exit 1)
        in
        print_allocation alloc;
        if k > 0 then
          Fmt.pr "k-safe for k=%d: %b@." k (Core.Ksafety.is_k_safe ~k alloc)
  in
  Cmd.v
    (Cmd.info "allocate" ~doc:"Compute a partial-replication allocation")
    Term.(
      const run $ workload_arg $ granularity_arg $ backends_arg $ loads_arg
      $ algorithm_arg $ seed_arg $ ksafety_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let workload_arg =
    Arg.(
      value & opt string "tpch"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:"Built-in workload: $(b,tpch) or $(b,tpcapp).")
  in
  let strategy_conv =
    Arg.enum
      [
        ("full", Cdbs_experiments.Common.Full_replication);
        ("table", Cdbs_experiments.Common.Table_based);
        ("column", Cdbs_experiments.Common.Column_based);
        ("random", Cdbs_experiments.Common.Random_placement);
      ]
  in
  let strategy_arg =
    Arg.(
      value & opt strategy_conv Cdbs_experiments.Common.Table_based
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Allocation strategy: $(b,full), $(b,table), $(b,column) or \
             $(b,random).")
  in
  let requests_arg =
    Arg.(
      value & opt int 2000
      & info [ "r"; "requests" ] ~docv:"N" ~doc:"Requests to simulate.")
  in
  let run name strategy n loads requests seed =
    let rng = Cdbs_util.Rng.create seed in
    let backends = make_backends n loads in
    let table_workload, column_workload, reqs =
      match name with
      | "tpcapp" ->
          ( Cdbs_workloads.Tpcapp.workload ~granularity:`Table ~eb:300,
            Cdbs_workloads.Tpcapp.workload ~granularity:`Column ~eb:300,
            Cdbs_workloads.Tpcapp.requests ~rng ~granularity:`Table ~eb:300
              ~n:requests )
      | _ ->
          ( Cdbs_workloads.Tpch.workload ~granularity:`Table ~sf:1.,
            Cdbs_workloads.Tpch.workload ~granularity:`Column ~sf:1.,
            Cdbs_workloads.Tpch.requests ~rng ~sf:1. ~n:requests )
    in
    let alloc =
      Cdbs_experiments.Common.allocate ~rng strategy ~table_workload
        ~column_workload backends
    in
    let outcome = Cdbs_experiments.Common.simulate alloc reqs in
    print_allocation alloc;
    Fmt.pr
      "simulated %d requests: throughput %.2f q/s, makespan %.2f s, avg \
       response %.4f s, errors %d@."
      outcome.Cdbs_cluster.Simulator.completed
      outcome.Cdbs_cluster.Simulator.throughput
      outcome.Cdbs_cluster.Simulator.makespan
      outcome.Cdbs_cluster.Simulator.avg_response
      outcome.Cdbs_cluster.Simulator.errors;
    Fmt.pr "utilization:";
    Array.iter
      (fun u -> Fmt.pr " %.2f" u)
      outcome.Cdbs_cluster.Simulator.utilization;
    Fmt.pr "@."
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a workload on a CDBS cluster")
    Term.(
      const run $ workload_arg $ strategy_arg $ backends_arg $ loads_arg
      $ requests_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let section_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("tables", `Tables); ("tpch", `Tpch); ("tpcapp", `Tpcapp);
                  ("balance", `Balance); ("elastic", `Elastic);
                  ("ablation", `Ablation); ("migration", `Migration);
                  ("faults", `Faults); ("overload", `Overload);
                  ("day", `Day); ("zones", `Zones);
                ]))
          None
      & info [] ~docv:"SECTION"
          ~doc:
            "Experiment section: $(b,tables), $(b,tpch), $(b,tpcapp), \
             $(b,balance), $(b,elastic), $(b,ablation), $(b,migration), \
             $(b,faults), $(b,overload), $(b,day) or $(b,zones).")
  in
  let run = function
    | `Tables -> Cdbs_experiments.Tables.print_all ()
    | `Tpch -> Cdbs_experiments.Fig_tpch.print_all ()
    | `Tpcapp -> Cdbs_experiments.Fig_tpcapp.print_all ()
    | `Balance -> Cdbs_experiments.Fig_balance.print_all ()
    | `Elastic -> Cdbs_experiments.Fig_elastic.print_all ()
    | `Ablation -> Cdbs_experiments.Ablation.print_all ()
    | `Migration -> Cdbs_experiments.Fig_migration.print_all ()
    | `Faults -> Cdbs_experiments.Fig_faults.print_all ()
    | `Overload -> Cdbs_experiments.Fig_overload.print_all ()
    | `Day -> Cdbs_experiments.Fig_day.print_all ()
    | `Zones -> Cdbs_experiments.Fig_zones.print_all ()
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run a paper-reproduction experiment section")
    Term.(const run $ section_arg)

(* ------------------------------------------------------------------ *)
(* migrate                                                             *)
(* ------------------------------------------------------------------ *)

let migrate_cmd =
  let from_hour_arg =
    Arg.(
      value & opt float 4.
      & info [ "from-hour" ] ~docv:"H"
          ~doc:"Hour of day whose mix the cluster is currently allocated for.")
  in
  let to_hour_arg =
    Arg.(
      value & opt float 14.
      & info [ "to-hour" ] ~docv:"H"
          ~doc:"Hour of day whose mix to rebalance towards.")
  in
  let bandwidth_arg =
    Arg.(
      value & opt float 2.
      & info [ "b"; "bandwidth" ] ~docv:"MB/S"
          ~doc:"Copy throttle per stream in MB/s.")
  in
  let rate_arg =
    Arg.(
      value & opt float 40.
      & info [ "rate" ] ~docv:"R" ~doc:"Offered load in requests per second.")
  in
  let duration_arg =
    Arg.(
      value & opt float 600.
      & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
  in
  let at_arg =
    Arg.(
      value & opt float 150.
      & info [ "at" ] ~docv:"S" ~doc:"When the rebalance starts.")
  in
  let show_plan_arg =
    Arg.(
      value & flag
      & info [ "show-plan" ]
          ~doc:"Print the ordered per-fragment copy/drop plan.")
  in
  let run nodes from_hour to_hour bandwidth rate duration at show_plan seed =
    let module Fm = Cdbs_experiments.Fig_migration in
    if bandwidth <= 0. then begin
      prerr_endline "migrate: --bandwidth must be positive";
      exit 1
    end;
    if show_plan then begin
      let plan = Fm.plan ~nodes ~from_hour ~to_hour () in
      Fmt.pr "%a@." Cdbs_migration.Planner.pp plan;
      Fmt.pr "%a@." Cdbs_migration.Schedule.pp
        (Cdbs_migration.Schedule.make ~start:at ~bandwidth plan)
    end;
    let r =
      Fm.scenario ~nodes ~bandwidth ~rate_per_s:rate ~duration ~migrate_at:at
        ~seed ~from_hour ~to_hour ()
    in
    Fmt.pr "%10s%10s%12s%8s  %s@." "from(s)" "to(s)" "resp(ms)" "req" "phase";
    List.iter
      (fun (p : Fm.point) ->
        Fmt.pr "%10.0f%10.0f%12.2f%8d  %s@." p.Fm.t0 p.Fm.t1 p.Fm.avg_ms
          p.Fm.n p.Fm.phase)
      r.Fm.timeline;
    Fmt.pr
      "copy phase %.0fs - %.0fs; response before %.2f ms, during %.2f ms, \
       after %.2f ms@."
      r.Fm.copy_start r.Fm.copy_done r.Fm.before_ms r.Fm.during_ms
      r.Fm.after_ms;
    Fmt.pr
      "shipped %.1f MB live vs %.1f MB full rebuild; replayed %.2f MB; \
       errors %d; min live replicas %d; target deployed %b@."
      r.Fm.copied_mb r.Fm.full_rebuild_mb r.Fm.replayed_mb r.Fm.errors
      r.Fm.min_live_replicas r.Fm.target_deployed
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Rebalance a live cluster between two trace allocations while \
          serving, and report the response-time timeline")
    Term.(
      const run $ backends_arg $ from_hour_arg $ to_hour_arg $ bandwidth_arg
      $ rate_arg $ duration_arg $ at_arg $ show_plan_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* check — the static plan verifier                                    *)
(* ------------------------------------------------------------------ *)

module Diag = Cdbs_analysis.Diagnostic
module Check_w = Cdbs_analysis.Check_workload
module Check_a = Cdbs_analysis.Check_allocation
module Check_m = Cdbs_analysis.Check_migration

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

type check_result = { scenario : string; diagnostics : Diag.t list }

(* The running example of the paper (Sec. 3, Fig. 2) — the configuration
   examples/quickstart.ml allocates. *)
let quickstart_workload () =
  let a = Core.Fragment.table "A" ~size:1. in
  let b = Core.Fragment.table "B" ~size:1. in
  let c = Core.Fragment.table "C" ~size:1. in
  Core.Workload.make
    ~reads:
      [
        Core.Query_class.read "C1" [ a ] ~weight:0.30;
        Core.Query_class.read "C2" [ b ] ~weight:0.25;
        Core.Query_class.read "C3" [ c ] ~weight:0.25;
        Core.Query_class.read "C4" [ a; b ] ~weight:0.20;
      ]
    ~updates:[]

(* Deliberate corruptions, so users (and CI smoke tests) can confirm the
   verifier actually rejects broken artifacts with coded diagnostics. *)
let inject_allocation_fault fault alloc =
  let workload = Core.Allocation.workload alloc in
  let n = Core.Allocation.num_backends alloc in
  let holds = Core.Allocation.holds alloc in
  match fault with
  | `Locality ->
      let rec find = function
        | [] -> None
        | (c : Core.Query_class.t) :: rest ->
            let rec go b =
              if b >= n then find rest
              else if not (holds b c) then begin
                Core.Allocation.set_assign alloc b c 0.1;
                Some
                  (Printf.sprintf "assigned %s to B%d which lacks its data"
                     c.Core.Query_class.id (b + 1))
              end
              else go (b + 1)
            in
            go 0
      in
      find workload.Core.Workload.reads
  | `Read_sum ->
      let rec find = function
        | [] -> None
        | (c : Core.Query_class.t) :: rest ->
            let rec go b =
              if b >= n then find rest
              else
                let w = Core.Allocation.get_assign alloc b c in
                if w > 1e-6 then begin
                  Core.Allocation.set_assign alloc b c (w /. 2.);
                  Some
                    (Printf.sprintf "halved %s's share on B%d"
                       c.Core.Query_class.id (b + 1))
                end
                else go (b + 1)
            in
            go 0
      in
      find workload.Core.Workload.reads
  | `Unpin ->
      let overlaps b (u : Core.Query_class.t) =
        not
          (Core.Fragment.Set.is_empty
             (Core.Fragment.Set.inter u.Core.Query_class.fragments
                (Core.Allocation.fragments_of alloc b)))
      in
      let rec find = function
        | [] -> None
        | (u : Core.Query_class.t) :: rest ->
            let rec go b =
              if b >= n then find rest
              else if overlaps b u then begin
                Core.Allocation.set_assign alloc b u
                  (u.Core.Query_class.weight /. 2.);
                Some
                  (Printf.sprintf "unpinned update %s on B%d"
                     u.Core.Query_class.id (b + 1))
              end
              else go (b + 1)
            in
            go 0
      in
      find workload.Core.Workload.updates

let inject_plan_fault (plan : Cdbs_migration.Planner.plan) =
  match plan.Cdbs_migration.Planner.moves with
  | [] -> (plan, None)
  | (m : Cdbs_migration.Planner.move) :: _ ->
      (* Drop the fragment at the very backend a copy delivers it to: the
         contract phase now strands the destination short of its target. *)
      let bogus =
        {
          Cdbs_migration.Planner.victim = m.Cdbs_migration.Planner.fragment;
          at_backend = m.Cdbs_migration.Planner.dest;
        }
      in
      ( {
          plan with
          Cdbs_migration.Planner.drops =
            bogus :: plan.Cdbs_migration.Planner.drops;
        },
        Some
          (Printf.sprintf "added a drop of %s at its copy destination B%d"
             (Core.Fragment.name m.Cdbs_migration.Planner.fragment)
             m.Cdbs_migration.Planner.dest) )

let scenario_label name injected =
  match injected with
  | None -> name
  | Some what -> Printf.sprintf "%s [injected fault: %s]" name what

(* Lint a workload and verify the allocation an algorithm produces for it. *)
let check_allocation_scenario ~name ?schema ?(k = 0) ?topology ~workload
    ~alloc ~fault () =
  let workload_diags = Check_w.check ?schema workload in
  let injected =
    match fault with Some f -> inject_allocation_fault f alloc | None -> None
  in
  let alloc_diags = Check_a.check ~k ?topology alloc in
  {
    scenario = scenario_label name injected;
    diagnostics = workload_diags @ alloc_diags;
  }

let check_migration_scenario ~name ~nodes ~from_hour ~to_hour ~bandwidth
    ~corrupt () =
  let target_workload = Cdbs_workloads.Trace.workload_at ~hour:to_hour in
  let plan =
    Cdbs_experiments.Fig_migration.plan ~nodes ~from_hour ~to_hour ()
  in
  let plan, injected = if corrupt then inject_plan_fault plan else (plan, None) in
  let plan_diags = Check_m.check_plan ~workload:target_workload plan in
  let schedule_diags =
    Check_m.check_schedule (Cdbs_migration.Schedule.make ~bandwidth plan)
  in
  {
    scenario = scenario_label name injected;
    diagnostics = plan_diags @ schedule_diags;
  }

let check_cmd =
  let workload_arg =
    Arg.(
      value & opt string "all"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:
            "What to verify: $(b,all) (the shipped example scenarios), or a \
             single built-in workload $(b,quickstart), $(b,tpch), \
             $(b,tpcapp), $(b,trace), $(b,timeseries), $(b,zones) or \
             $(b,migration).")
  in
  let algorithm_arg =
    Arg.(
      value & opt algorithm_conv `Greedy
      & info [ "a"; "algorithm" ] ~docv:"ALG"
          ~doc:"Allocation algorithm for single-workload checks.")
  in
  let ksafety_arg =
    Arg.(
      value & opt int 0
      & info [ "k" ] ~docv:"K" ~doc:"k-safety degree to verify against.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the diagnostics as machine-readable JSON.")
  in
  let inject_conv =
    Arg.enum
      [
        ("none", `None); ("locality", `Locality); ("read-sum", `Read_sum);
        ("unpin", `Unpin); ("lost-replica", `Lost_replica);
      ]
  in
  let inject_arg =
    Arg.(
      value & opt inject_conv `None
      & info [ "inject" ] ~docv:"FAULT"
          ~doc:
            "Deliberately corrupt the checked artifact before verifying — \
             proves the verifier rejects it.  $(b,locality), $(b,read-sum) \
             and $(b,unpin) corrupt the allocation; $(b,lost-replica) \
             corrupts the migration plan.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero on warnings too, not just errors — the CI lint \
             gate.")
  in
  let run name granularity n loads algorithm seed k json strict inject =
    (* The verifier reports; it must not trip the in-algorithm assertions
       installed by the experiments harness before it can do so. *)
    Core.Invariants.disable ();
    let rng () = Cdbs_util.Rng.create seed in
    let backends = make_backends n loads in
    let memetic_params =
      {
        Core.Memetic.default_params with
        Core.Memetic.iterations = 20;
        population = 8;
      }
    in
    let allocate ?(alg = algorithm) ?(k = 0) workload bs =
      if k > 0 then Core.Ksafety.allocate ~k workload bs
      else
        match alg with
        | `Greedy -> Core.Greedy.allocate workload bs
        | `Memetic | `Optimal ->
            Core.Memetic.allocate ~params:memetic_params ~rng:(rng ()) workload
              bs
    in
    let alloc_fault =
      match inject with
      | `Locality -> Some `Locality
      | `Read_sum -> Some `Read_sum
      | `Unpin -> Some `Unpin
      | `None | `Lost_replica -> None
    in
    let corrupt_plan = inject = `Lost_replica in
    let quickstart_scenario ~fault () =
      let workload = quickstart_workload () in
      check_allocation_scenario ~name:"quickstart (paper Sec. 3 example)"
        ~workload
        ~alloc:(allocate ~alg:`Greedy workload (Core.Backend.homogeneous 4))
        ~fault ()
    in
    let builtin ~name ~schema ~workload ~alg ?(k = 0) ?(bs = backends) ~fault
        () =
      check_allocation_scenario ~name
        ~schema:(Cdbs_storage.Schema.to_assoc schema)
        ~k ~workload
        ~alloc:(allocate ~alg ~k workload bs)
        ~fault ()
    in
    let migration ~corrupt () =
      check_migration_scenario
        ~name:"live migration (trace 4h -> 14h, 2 MB/s)" ~nodes:n
        ~from_hour:4. ~to_hour:14. ~bandwidth:2. ~corrupt ()
    in
    let zones_scenario ~fault () =
      (* Domain-aware k-safety verified against the topology that built it
         (ALC013/ALC014): 6 backends in 2 contiguous racks. *)
      let workload = Cdbs_workloads.Trace.workload_at ~hour:14. in
      let nodes = 6 in
      let topology =
        Core.Topology.make (Array.init nodes (fun b -> b * 2 / nodes))
      in
      check_allocation_scenario
        ~name:"zones (trace 14h, k=1, 6 backends in 2 racks)"
        ~schema:(Cdbs_storage.Schema.to_assoc Cdbs_workloads.Trace.schema)
        ~k:1 ~topology ~workload
        ~alloc:
          (Core.Ksafety.allocate ~topology ~k:1 workload
             (Core.Backend.homogeneous nodes))
        ~fault ()
    in
    let results =
      match name with
      | "quickstart" -> [ quickstart_scenario ~fault:alloc_fault () ]
      | "tpch" ->
          [
            builtin ~name:"tpch" ~schema:Cdbs_workloads.Tpch.schema
              ~workload:(Cdbs_workloads.Tpch.workload ~granularity ~sf:1.)
              ~alg:algorithm ~fault:alloc_fault ();
          ]
      | "tpcapp" ->
          [
            builtin ~name:"tpcapp" ~schema:Cdbs_workloads.Tpcapp.schema
              ~workload:(Cdbs_workloads.Tpcapp.workload ~granularity ~eb:300)
              ~alg:algorithm ~k ~fault:alloc_fault ();
          ]
      | "trace" ->
          [
            builtin ~name:"trace (12h)" ~schema:Cdbs_workloads.Trace.schema
              ~workload:(Cdbs_workloads.Trace.workload_at ~hour:12.)
              ~alg:algorithm ~k ~fault:alloc_fault ();
          ]
      | "timeseries" ->
          [
            builtin ~name:"timeseries (horizontal partitioning)"
              ~schema:Cdbs_workloads.Timeseries.schema
              ~workload:
                (Cdbs_workloads.Timeseries.workload ~granularity:`Predicate
                   ~rng:(rng ()) ~n:2000)
              ~alg:algorithm ~fault:alloc_fault ();
          ]
      | "zones" -> [ zones_scenario ~fault:alloc_fault () ]
      | "migration" -> [ migration ~corrupt:corrupt_plan () ]
      | "all" ->
          (* The shipped example configurations (examples/*.ml), each
             verified end to end. *)
          [
            quickstart_scenario ~fault:alloc_fault ();
            builtin ~name:"tpch table greedy n=4"
              ~schema:Cdbs_workloads.Tpch.schema
              ~workload:(Cdbs_workloads.Tpch.workload ~granularity:`Table ~sf:1.)
              ~alg:`Greedy ~fault:None ();
            builtin ~name:"tpch column memetic n=6"
              ~schema:Cdbs_workloads.Tpch.schema
              ~workload:
                (Cdbs_workloads.Tpch.workload ~granularity:`Column ~sf:1.)
              ~alg:`Memetic
              ~bs:(Core.Backend.homogeneous 6)
              ~fault:None ();
            builtin ~name:"tpcapp table memetic n=8"
              ~schema:Cdbs_workloads.Tpcapp.schema
              ~workload:
                (Cdbs_workloads.Tpcapp.workload ~granularity:`Table ~eb:300)
              ~alg:`Memetic
              ~bs:(Core.Backend.homogeneous 8)
              ~fault:None ();
            builtin ~name:"tpcapp column greedy n=4"
              ~schema:Cdbs_workloads.Tpcapp.schema
              ~workload:
                (Cdbs_workloads.Tpcapp.workload ~granularity:`Column ~eb:300)
              ~alg:`Greedy ~fault:None ();
            builtin ~name:"trace night (4h) greedy n=4"
              ~schema:Cdbs_workloads.Trace.schema
              ~workload:(Cdbs_workloads.Trace.workload_at ~hour:4.)
              ~alg:`Greedy ~fault:None ();
            builtin ~name:"trace midday (14h) greedy n=4"
              ~schema:Cdbs_workloads.Trace.schema
              ~workload:(Cdbs_workloads.Trace.workload_at ~hour:14.)
              ~alg:`Greedy ~fault:None ();
            builtin ~name:"ksafety tpcapp k=1 n=4"
              ~schema:Cdbs_workloads.Tpcapp.schema
              ~workload:
                (Cdbs_workloads.Tpcapp.workload ~granularity:`Table ~eb:300)
              ~alg:`Greedy ~k:1 ~fault:None ();
            builtin ~name:"timeseries predicate greedy n=4"
              ~schema:Cdbs_workloads.Timeseries.schema
              ~workload:
                (Cdbs_workloads.Timeseries.workload ~granularity:`Predicate
                   ~rng:(rng ()) ~n:2000)
              ~alg:`Greedy ~fault:None ();
            zones_scenario ~fault:None ();
            migration ~corrupt:false ();
          ]
      | other ->
          prerr_endline ("check: unknown workload " ^ other);
          exit 2
    in
    if json then begin
      let objects =
        List.map
          (fun r ->
            Printf.sprintf "{\"scenario\":%s,\"summary\":%s,\"diagnostics\":%s}"
              (json_string r.scenario)
              (json_string (Diag.summary r.diagnostics))
              (Diag.list_to_json r.diagnostics))
          results
      in
      print_string ("[" ^ String.concat "," objects ^ "]\n")
    end
    else
      List.iter
        (fun r ->
          Fmt.pr "=== %s ===@.%a" r.scenario Diag.pp_report r.diagnostics)
        results;
    let total_errors =
      List.fold_left
        (fun acc r -> acc + List.length (Diag.errors r.diagnostics))
        0 results
    in
    let total_warnings =
      List.fold_left
        (fun acc r -> acc + List.length (Diag.warnings r.diagnostics))
        0 results
    in
    if not json then
      Fmt.pr "@.checked %d scenario%s: %d error%s, %d warning%s@."
        (List.length results)
        (if List.length results = 1 then "" else "s")
        total_errors
        (if total_errors = 1 then "" else "s")
        total_warnings
        (if total_warnings = 1 then "" else "s");
    if total_errors > 0 || (strict && total_warnings > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify allocations, migration plans and workloads \
          against the paper's structural invariants (Eqs. 8-11, 14-15, \
          k-safety, expand-then-contract)")
    Term.(
      const run $ workload_arg $ granularity_arg $ backends_arg $ loads_arg
      $ algorithm_arg $ seed_arg $ ksafety_arg $ json_arg $ strict_arg
      $ inject_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let mtbf_arg =
    Arg.(
      value & opt float 120.
      & info [ "mtbf" ] ~docv:"SECONDS"
          ~doc:"Mean time between failures per backend.")
  in
  let mttr_arg =
    Arg.(
      value & opt float 25.
      & info [ "mttr" ] ~docv:"SECONDS" ~doc:"Mean time to recovery.")
  in
  let duration_arg =
    Arg.(
      value & opt float 600.
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Run length (also the fault-injection horizon).")
  in
  let rate_arg =
    Arg.(
      value & opt float 20.
      & info [ "rate" ] ~docv:"REQ/S" ~doc:"Offered request rate.")
  in
  let k_arg =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K"
          ~doc:"k-safety degree of the allocation under test.")
  in
  let max_down_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-down" ] ~docv:"N"
          ~doc:
            "Cap on simultaneously crashed backends (incidents beyond the \
             cap are dropped).  Keep it at or below $(b,--k) to test the \
             regime the allocation is built to absorb.")
  in
  let min_avail_arg =
    Arg.(
      value & opt float 0.
      & info [ "min-availability" ] ~docv:"FRACTION"
          ~doc:
            "Exit non-zero when availability (completed / offered) falls \
             below this threshold — the CI smoke-test hook.")
  in
  let zones_arg =
    Arg.(
      value & opt int 1
      & info [ "zones" ] ~docv:"Z"
          ~doc:
            "Fault domains the backends are spread over (round-robin).  \
             With more than one zone the allocation is built domain-aware \
             and correlated faults resolve zone membership.")
  in
  let correlated_mtbf_arg =
    Arg.(
      value & opt (some float) None
      & info [ "correlated-mtbf" ] ~docv:"SECONDS"
          ~doc:
            "Mean time between correlated (whole-zone) incidents: network \
             partitions and zone outages.  Off by default.")
  in
  let partition_prob_arg =
    Arg.(
      value & opt float 0.5
      & info [ "partition-prob" ] ~docv:"P"
          ~doc:
            "Probability a correlated incident is a network partition \
             (isolation + fenced heal) rather than a zone outage (crash).")
  in
  let monitor_gate_arg =
    Arg.(
      value & flag
      & info [ "monitor" ]
          ~doc:
            "Exit non-zero on any protocol-monitor violation (violations \
             are always counted and reported).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the outcome as machine-readable JSON.")
  in
  let run n seed mtbf mttr duration rate k max_down min_avail zones
      correlated_mtbf partition_prob monitor_gate json =
    let module Faults = Cdbs_faults in
    let module Sim = Cdbs_cluster.Simulator in
    let module Mon = Cdbs_analysis.Monitor in
    let module Tel = Cdbs_telemetry in
    let workload = Cdbs_workloads.Trace.workload_at ~hour:14. in
    let topology =
      if zones > 1 then Some (Core.Topology.uniform ~zones n) else None
    in
    let alloc =
      Core.Ksafety.allocate ?topology ~k workload (Core.Backend.homogeneous n)
    in
    let rng = Cdbs_util.Rng.create seed in
    let faults =
      Faults.Chaos.generate ~rng ~num_backends:n
        {
          Faults.Chaos.default with
          Faults.Chaos.mtbf;
          mttr;
          horizon = duration;
          max_concurrent_down = max_down;
          correlated_mtbf;
          partition_prob;
          zones;
        }
    in
    let reqs =
      List.map
        (fun (r : Cdbs_cluster.Request.t) ->
          { r with Cdbs_cluster.Request.arrival = Cdbs_util.Rng.float rng duration })
        (Cdbs_workloads.Spec.requests ~rng
           ~n:(int_of_float (rate *. duration))
           (Cdbs_workloads.Trace.specs_at ~hour:14.))
    in
    let config = Sim.homogeneous_config n in
    let sink = Tel.Sink.create () in
    let monitor = Mon.create () in
    let fo =
      Sim.run_open_with_faults ~telemetry:sink ~monitor ?topology config alloc
        reqs ~faults
    in
    let count p = List.length (List.filter p faults) in
    let crashes =
      count (fun (t : Faults.Fault.timed) ->
          match t.Faults.Fault.event with
          | Faults.Fault.Crash _ -> true
          | _ -> false)
    in
    let partitions =
      count (fun (t : Faults.Fault.timed) ->
          match t.Faults.Fault.event with
          | Faults.Fault.Partition _ -> true
          | _ -> false)
    in
    let zone_outages =
      count (fun (t : Faults.Fault.timed) ->
          match t.Faults.Fault.event with
          | Faults.Fault.ZoneOutage _ -> true
          | _ -> false)
    in
    let trace_dropped = Tel.Trace.dropped sink.Tel.Sink.trace in
    let p50_ms = 1000. *. fo.Sim.run.Sim.p50_response in
    let p95_ms = 1000. *. fo.Sim.run.Sim.p95_response in
    let p99_ms = 1000. *. fo.Sim.run.Sim.p99_response in
    let total_downtime = Array.fold_left ( +. ) 0. fo.Sim.downtime in
    let utilization = fo.Sim.run.Sim.utilization in
    let json_floats a =
      String.concat ","
        (Array.to_list (Array.map (Printf.sprintf "%.4f") a))
    in
    (* The control-loop triple is structurally zero here (no loop runs in
       this scenario); the fields are present so the day/chaos/autotune
       JSON payloads share one schema. *)
    if json then
      Printf.printf
        "{\"seed\":%d,\"backends\":%d,\"k\":%d,\"zones\":%d,\"mtbf\":%g,\
         \"mttr\":%g,\
         \"duration\":%g,\"rate\":%g,\"fault_events\":%d,\"crashes\":%d,\
         \"partitions\":%d,\"zone_outages\":%d,\
         \"offered\":%d,\"completed\":%d,\"availability\":%.6f,\
         \"aborted\":%d,\"timeouts\":%d,\"retried_requests\":%d,\
         \"retries\":%d,\"avg_response_ms\":%.3f,\"p50_response_ms\":%.3f,\
         \"p95_response_ms\":%.3f,\"p99_response_ms\":%.3f,\
         \"utilization\":[%s],\
         \"cancelled_work_s\":%.3f,\"catch_up_mb\":%.3f,\"recoveries\":%d,\
         \"downtime_s\":%.3f,\"max_concurrent_down\":%d,\
         \"trace_dropped\":%d,\"monitor_violations\":%d,\
         \"reallocations\":0,\"rollbacks\":0,\"drift_score\":0}\n"
        seed n k zones mtbf mttr duration rate (List.length faults) crashes
        partitions zone_outages fo.Sim.offered fo.Sim.run.Sim.completed
        fo.Sim.availability fo.Sim.aborted fo.Sim.timeouts
        fo.Sim.retried_requests fo.Sim.retries
        (1000. *. fo.Sim.run.Sim.avg_response)
        p50_ms p95_ms p99_ms (json_floats utilization) fo.Sim.cancelled_work
        fo.Sim.catch_up_mb
        (List.length fo.Sim.recoveries)
        total_downtime fo.Sim.max_concurrent_down trace_dropped
        (Mon.violations monitor)
    else begin
      Fmt.pr "fault timeline (seed %d, mtbf %.0fs, mttr %.0fs):@." seed mtbf
        mttr;
      List.iter (fun t -> Fmt.pr "  %a@." Faults.Fault.pp_timed t) faults;
      Fmt.pr
        "offered %d, completed %d, availability %.4f (%d aborted, %d \
         timeouts)@."
        fo.Sim.offered fo.Sim.run.Sim.completed fo.Sim.availability
        fo.Sim.aborted fo.Sim.timeouts;
      Fmt.pr
        "retried %d requests (%d attempts), avg %.2f ms, p50 %.2f, p95 \
         %.2f, p99 %.2f ms@."
        fo.Sim.retried_requests fo.Sim.retries
        (1000. *. fo.Sim.run.Sim.avg_response)
        p50_ms p95_ms p99_ms;
      Fmt.pr "utilization per backend: %a@."
        Fmt.(array ~sep:sp (fmt "%.3f"))
        utilization;
      Fmt.pr
        "cancelled %.2fs of in-flight work, replayed %.2f MB at %d rejoins, \
         %.1fs total downtime, max %d down at once@."
        fo.Sim.cancelled_work fo.Sim.catch_up_mb
        (List.length fo.Sim.recoveries)
        total_downtime fo.Sim.max_concurrent_down;
      Fmt.pr
        "%d partitions, %d zone outages; monitor: %d events, %d \
         violation%s; trace dropped %d@."
        partitions zone_outages (Mon.events_seen monitor)
        (Mon.violations monitor)
        (if Mon.violations monitor = 1 then "" else "s")
        trace_dropped
    end;
    if fo.Sim.availability < min_avail then begin
      Fmt.epr "chaos: availability %.4f below threshold %.4f@."
        fo.Sim.availability min_avail;
      exit 1
    end;
    if monitor_gate && not (Mon.clean monitor) then begin
      Fmt.epr "%a" Diag.pp_report (Mon.report monitor);
      Fmt.epr "chaos: protocol monitor found %d violation%s@."
        (Mon.violations monitor)
        (if Mon.violations monitor = 1 then "" else "s");
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded chaos experiment: crash/recover/slowdown faults — \
          plus correlated network partitions and zone outages — against a \
          (fault-domain-aware) k-safe allocation, with retries, fencing, \
          catch-up and degradation metrics")
    Term.(
      const run $ backends_arg $ seed_arg $ mtbf_arg $ mttr_arg
      $ duration_arg $ rate_arg $ k_arg $ max_down_arg $ min_avail_arg
      $ zones_arg $ correlated_mtbf_arg $ partition_prob_arg
      $ monitor_gate_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* overload                                                            *)
(* ------------------------------------------------------------------ *)

let overload_cmd =
  let module Fo = Cdbs_experiments.Fig_overload in
  let seed_arg =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Random seed for the workload and jitter (deterministic).")
  in
  let rate_arg =
    Arg.(
      value & opt float 240.
      & info [ "rate" ] ~docv:"REQ/S" ~doc:"Offered request rate.")
  in
  let duration_arg =
    Arg.(
      value & opt float 120.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Run length.")
  in
  let slow_factor_arg =
    Arg.(
      value & opt float 3.
      & info [ "slow-factor" ] ~docv:"FACTOR"
          ~doc:
            "Service-time multiplier of the gray-failing backend (slowed \
             for the middle half of the run).")
  in
  let slow_backend_arg =
    Arg.(
      value & opt (some int) None
      & info [ "slow-backend" ] ~docv:"B"
          ~doc:
            "Backend to slow down (default: the busiest backend of a clean \
             probe run).")
  in
  let deadline_arg =
    Arg.(
      value & opt float 1.
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"End-to-end deadline budget clients abandon requests at.")
  in
  let max_p99_arg =
    Arg.(
      value & opt (some float) None
      & info [ "max-p99-ms" ] ~docv:"MS"
          ~doc:
            "Exit non-zero when the defended run's p99 exceeds this — the \
             CI smoke-test hook.")
  in
  let max_shed_arg =
    Arg.(
      value & opt (some float) None
      & info [ "max-shed-rate" ] ~docv:"FRACTION"
          ~doc:
            "Exit non-zero when the defended run sheds more than this \
             fraction of offered requests.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the outcome as machine-readable JSON.")
  in
  let run n seed rate duration slow_factor slow_backend deadline json
      max_p99 max_shed =
    let module Mon = Cdbs_analysis.Monitor in
    let module Tel = Cdbs_telemetry in
    let sink = Tel.Sink.create () in
    let monitor = Mon.create () in
    let victim, c =
      Fo.compare_at ~nodes:n ~seed ~duration ~slow_factor
        ~deadline_s:deadline ?slow_backend ~telemetry:sink ~monitor
        ~rate_per_s:rate ()
    in
    let trace_dropped = Tel.Trace.dropped sink.Tel.Sink.trace in
    let d = c.Fo.defended and u = c.Fo.undefended in
    let shed_rate = float_of_int d.Fo.shed /. float_of_int (max 1 d.Fo.offered) in
    let ok, violations = Fo.acceptance c in
    let json_floats a =
      String.concat ","
        (Array.to_list (Array.map (Printf.sprintf "%.4f") a))
    in
    if json then
      Printf.printf
        "{\"seed\":%d,\"backends\":%d,\"rate\":%g,\"duration\":%g,\
         \"slow_backend\":%d,\"slow_factor\":%g,\"deadline_s\":%g,\
         \"undefended\":{\"availability\":%.6f,\"p50_ms\":%.3f,\
         \"p95_ms\":%.3f,\"p99_ms\":%.3f,\"shed\":%d,\"timeouts\":%d,\
         \"wasted_s\":%.3f},\
         \"defended\":{\"availability\":%.6f,\"p50_ms\":%.3f,\
         \"p95_ms\":%.3f,\"p99_ms\":%.3f,\"shed\":%d,\"shed_updates\":%d,\
         \"timeouts\":%d,\"hedged\":%d,\"hedge_wins\":%d,\
         \"breaker_trips\":%d,\"wasted_s\":%.3f,\"shed_rate\":%.6f,\
         \"utilization\":[%s]},\
         \"trace_dropped\":%d,\"monitor_violations\":%d,\
         \"acceptance\":%b}\n"
        seed n rate duration victim slow_factor deadline u.Fo.availability
        u.Fo.p50_ms u.Fo.p95_ms u.Fo.p99_ms u.Fo.shed u.Fo.timeouts
        u.Fo.wasted_s d.Fo.availability d.Fo.p50_ms d.Fo.p95_ms d.Fo.p99_ms
        d.Fo.shed d.Fo.shed_updates d.Fo.timeouts d.Fo.hedged d.Fo.hedge_wins
        d.Fo.breaker_trips d.Fo.wasted_s shed_rate
        (json_floats d.Fo.utilization)
        trace_dropped (Mon.violations monitor) ok
    else begin
      Fmt.pr
        "overload: %d backends, %.0f req/s for %.0fs, backend %d at x%.1f \
         for the middle half, deadline %.2fs@."
        n rate duration victim slow_factor deadline;
      Fmt.pr "  %a@." Fo.pp_stats ("undefended", u);
      Fmt.pr "  %a@." Fo.pp_stats ("defended", d);
      Fmt.pr "  defended utilization: %a  (shed rate %.4f)@."
        Fmt.(array ~sep:sp (fmt "%.3f"))
        d.Fo.utilization shed_rate;
      Fmt.pr "  monitor: %d violation%s; trace dropped %d@."
        (Mon.violations monitor)
        (if Mon.violations monitor = 1 then "" else "s")
        trace_dropped;
      if ok then Fmt.pr "  acceptance: ok@."
      else begin
        Fmt.pr "  acceptance FAILED:@.";
        List.iter (fun v -> Fmt.pr "    - %s@." v) violations
      end
    end;
    let gate_violations =
      violations
      @ (match max_p99 with
        | Some t when d.Fo.p99_ms > t ->
            [
              Printf.sprintf "defended p99 %.1f ms above threshold %.1f ms"
                d.Fo.p99_ms t;
            ]
        | _ -> [])
      @
      match max_shed with
      | Some t when shed_rate > t ->
          [
            Printf.sprintf "defended shed rate %.4f above threshold %.4f"
              shed_rate t;
          ]
      | _ -> []
    in
    if gate_violations <> [] then begin
      List.iter (fun v -> Fmt.epr "overload: %s@." v) gate_violations;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Run the overload / gray-failure experiment at one offered rate: \
          undefended vs defended (admission control, circuit breakers, \
          hedged reads, deadline budgets), with acceptance and CI threshold \
          gates")
    Term.(
      const run $ backends_arg $ seed_arg $ rate_arg $ duration_arg
      $ slow_factor_arg $ slow_backend_arg $ deadline_arg $ json_arg
      $ max_p99_arg $ max_shed_arg)

(* ------------------------------------------------------------------ *)
(* day                                                                 *)
(* ------------------------------------------------------------------ *)

let day_cmd =
  let module Fd = Cdbs_experiments.Fig_day in
  let module Slo = Cdbs_telemetry.Slo_report in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Run the scaled-down CI preset (same scenario shape, ~3% of the \
             events) instead of the full macro-benchmark.")
  in
  let seed_arg =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Random seed (deterministic; default from the preset).")
  in
  let scale_arg =
    Arg.(
      value & opt (some float) None
      & info [ "scale" ] ~docv:"X"
          ~doc:"Multiplier on the diurnal trace's request rate.")
  in
  let window_arg =
    Arg.(
      value & opt (some float) None
      & info [ "window-minutes" ] ~docv:"MIN"
          ~doc:"Scheduling/autoscaling window length in minutes.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the BENCH_day.json payload to $(docv).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the BENCH_day.json payload on stdout instead of text.")
  in
  let min_avail_arg =
    Arg.(
      value & opt (some float) None
      & info [ "min-availability" ] ~docv:"FRAC"
          ~doc:"Exit non-zero if availability falls below $(docv).")
  in
  let max_p99_arg =
    Arg.(
      value & opt (some float) None
      & info [ "max-p99-ms" ] ~docv:"MS"
          ~doc:"Exit non-zero if the day's p99 latency exceeds $(docv).")
  in
  let max_shed_arg =
    Arg.(
      value & opt (some float) None
      & info [ "max-shed-rate" ] ~docv:"FRAC"
          ~doc:"Exit non-zero if the shed rate exceeds $(docv).")
  in
  let monitor_arg =
    Arg.(
      value & flag
      & info [ "monitor" ]
          ~doc:
            "Attach the protocol monitor to the day's event stream and exit \
             non-zero on any temporal-invariant violation.")
  in
  let autotune_arg =
    Arg.(
      value & flag
      & info [ "autotune" ]
          ~doc:
            "Compose the self-healing control loop into the day: measured \
             drift triggers guarded live reallocations with canary + \
             rollback alongside the autoscaler.  Implies $(b,--monitor) — \
             the run is gated on a clean protocol monitor (TRC016-018 \
             verify the control protocol).")
  in
  let trace_capacity_arg =
    Arg.(
      value & opt (some int) None
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:
            "Telemetry trace ring capacity in events (default from the \
             preset). The ring evicts oldest-first, so a capacity below the \
             run's event volume drops early events from the retained trace; \
             raise it to keep the full day for $(b,--monitor) or offline \
             analysis.")
  in
  let run smoke seed scale window_minutes out json min_avail max_p99 max_shed
      with_monitor autotune trace_capacity =
    let base = if smoke then Fd.smoke else Fd.default in
    (match trace_capacity with
    | Some n when n <= 0 ->
        Fmt.epr "day: --trace-capacity must be positive@.";
        exit 2
    | _ -> ());
    let params =
      {
        base with
        Fd.seed = Option.value seed ~default:base.Fd.seed;
        scale = Option.value scale ~default:base.Fd.scale;
        window_minutes =
          Option.value window_minutes ~default:base.Fd.window_minutes;
        trace_capacity =
          Option.value trace_capacity ~default:base.Fd.trace_capacity;
        autotune;
      }
    in
    (* --autotune is gated on a clean monitor: the control protocol is
       only trustworthy if TRC016-018 watched it. *)
    let monitor =
      if with_monitor || autotune then Some (Cdbs_analysis.Monitor.create ())
      else None
    in
    let r = Fd.run ~params ?monitor () in
    let mv = Option.map Cdbs_analysis.Monitor.violations monitor in
    if json then print_endline (Fd.to_json ?monitor_violations:mv r)
    else begin
      Fmt.pr
        "day: seed %d, scale %g, %g-minute windows, %d-%d nodes%s@."
        params.Fd.seed params.Fd.scale params.Fd.window_minutes
        params.Fd.nodes_min params.Fd.nodes_max
        (if autotune then ", autotune on" else "");
      Fmt.pr "%a@." Slo.pp r.Fd.report;
      Fmt.pr "%d events in %.1f s (%.0f events/s)@." r.Fd.events r.Fd.wall_s
        r.Fd.events_per_s
    end;
    (match out with
    | Some path ->
        Fd.write_json ?monitor_violations:mv ~path r;
        if not json then Fmt.pr "wrote %s@." path
    | None -> ());
    let gate =
      Slo.gate ?min_availability:min_avail
        ?max_p99_s:(Option.map (fun ms -> ms /. 1000.) max_p99)
        ?max_shed_rate:max_shed ()
    in
    let violations = Slo.check gate r.Fd.report in
    if violations <> [] then begin
      List.iter (fun v -> Fmt.epr "day: %s@." v) violations;
      exit 1
    end;
    match monitor with
    | None -> ()
    | Some m ->
        let module Mon = Cdbs_analysis.Monitor in
        if not json then
          Fmt.pr "monitor: %d events observed, %d violation%s@."
            (Mon.events_seen m) (Mon.violations m)
            (if Mon.violations m = 1 then "" else "s");
        if not (Mon.clean m) then begin
          Fmt.epr "%a" Diag.pp_report (Mon.report m);
          Fmt.epr "day: protocol monitor found %d violation%s@."
            (Mon.violations m)
            (if Mon.violations m = 1 then "" else "s");
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "day"
       ~doc:
         "Run the day-in-production SLO macro-benchmark: 24h diurnal load x \
          autoscaling x live migration x chaos faults x overload defenses, \
          with an SLO report and CI threshold gates")
    Term.(
      const run $ smoke_arg $ seed_arg $ scale_arg $ window_arg $ out_arg
      $ json_arg $ min_avail_arg $ max_p99_arg $ max_shed_arg $ monitor_arg
      $ autotune_arg $ trace_capacity_arg)

(* ------------------------------------------------------------------ *)
(* alloc — massive-instance allocator benchmark                        *)
(* ------------------------------------------------------------------ *)

let alloc_cmd =
  let module Fa = Cdbs_experiments.Fig_alloc in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Run the CI preset (100k fragments x 50 backends) instead of \
             the full 10^6-fragment benchmark.")
  in
  let fragments_arg =
    Arg.(
      value & opt (some int) None
      & info [ "fragments" ] ~docv:"N" ~doc:"Fragment count.")
  in
  let reads_arg =
    Arg.(
      value & opt (some int) None
      & info [ "reads" ] ~docv:"N" ~doc:"Read query-class count.")
  in
  let updates_arg =
    Arg.(
      value & opt (some int) None
      & info [ "updates" ] ~docv:"N" ~doc:"Update query-class count.")
  in
  let backends_arg =
    Arg.(
      value & opt (some int) None
      & info [ "n"; "backends" ] ~docv:"N" ~doc:"Backend count.")
  in
  let seed_arg =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Random seed for the instance, the deltas and the memetic.")
  in
  let strategy_conv = Arg.enum [ ("greedy", Fa.Greedy); ("memetic", Fa.Memetic) ] in
  let strategy_arg =
    Arg.(
      value & opt strategy_conv Fa.Greedy
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "$(b,greedy) runs the dense greedy only; $(b,memetic) follows \
             it with the Domain-parallel island optimizer.")
  in
  let islands_arg =
    Arg.(
      value & opt (some int) None
      & info [ "islands" ] ~docv:"N" ~doc:"Memetic island count.")
  in
  let generations_arg =
    Arg.(
      value & opt (some int) None
      & info [ "generations" ] ~docv:"N"
          ~doc:"Memetic generations per island.")
  in
  let population_arg =
    Arg.(
      value & opt (some int) None
      & info [ "population" ] ~docv:"N" ~doc:"Individuals per island.")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Domains running the islands (default: all available).  The \
             result is bit-identical for a fixed seed and island count \
             whatever this is set to.")
  in
  let no_repair_arg =
    Arg.(
      value & flag
      & info [ "no-repair" ]
          ~doc:"Skip the incremental-repair vs. re-solve comparison.")
  in
  let delta_frac_arg =
    Arg.(
      value & opt (some float) None
      & info [ "delta-frac" ] ~docv:"FRAC"
          ~doc:
            "Fraction of query classes the random workload delta touches \
             (default 0.01).")
  in
  let budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Cap on optional rebalance fragment copies during repair \
             (correctness moves are never dropped).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit non-zero if the dense checker finds any error in the \
             produced or repaired allocation.")
  in
  let max_seconds_arg =
    Arg.(
      value & opt (some float) None
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:"Exit non-zero if the greedy pass takes longer than $(docv).")
  in
  let max_moved_arg =
    Arg.(
      value & opt (some float) None
      & info [ "max-moved-frac" ] ~docv:"FRAC"
          ~doc:
            "Exit non-zero if repair moves more than $(docv) of the \
             fragment count — the O(delta) gate.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the BENCH_alloc.json payload on stdout instead of text.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the BENCH_alloc.json payload to $(docv).")
  in
  let run smoke fragments reads updates backends seed strategy islands
      generations population domains no_repair delta_frac budget check
      max_seconds max_moved json out =
    let base = if smoke then Fa.smoke else Fa.default in
    let params =
      {
        base with
        Fa.fragments = Option.value fragments ~default:base.Fa.fragments;
        reads = Option.value reads ~default:base.Fa.reads;
        updates = Option.value updates ~default:base.Fa.updates;
        backends = Option.value backends ~default:base.Fa.backends;
        seed = Option.value seed ~default:base.Fa.seed;
        strategy;
        islands = Option.value islands ~default:base.Fa.islands;
        generations = Option.value generations ~default:base.Fa.generations;
        population = Option.value population ~default:base.Fa.population;
        domains = (match domains with Some _ -> domains | None -> base.Fa.domains);
        repair = base.Fa.repair && not no_repair;
        delta_frac = Option.value delta_frac ~default:base.Fa.delta_frac;
        budget = (match budget with Some _ -> budget | None -> base.Fa.budget);
      }
    in
    if params.Fa.fragments <= 0 || params.Fa.backends <= 0 then begin
      Fmt.epr "alloc: --fragments and --backends must be positive@.";
      exit 2
    end;
    let r = Fa.run ~params () in
    if json then print_endline (Fa.to_json r)
    else Fmt.pr "%a" Fa.pp_result r;
    (match out with
    | Some path ->
        Fa.write_json ~path r;
        if not json then Fmt.pr "wrote %s@." path
    | None -> ());
    let fail = ref false in
    let errors =
      r.Fa.check_errors
      + match r.Fa.repair with Some rp -> rp.Fa.repair_errors | None -> 0
    in
    if check && errors > 0 then begin
      Fmt.epr "alloc: dense checker found %d error%s@." errors
        (if errors = 1 then "" else "s");
      fail := true
    end;
    (match max_seconds with
    | Some s when r.Fa.greedy_s > s ->
        Fmt.epr "alloc: greedy took %.2f s > %.2f s@." r.Fa.greedy_s s;
        fail := true
    | _ -> ());
    (match (max_moved, r.Fa.repair) with
    | Some frac, Some rp when rp.Fa.moved_frac > frac ->
        Fmt.epr "alloc: repair moved %.4f > %.4f of fragments@."
          rp.Fa.moved_frac frac;
        fail := true
    | _ -> ());
    if !fail then exit 1
  in
  Cmd.v
    (Cmd.info "alloc"
       ~doc:
         "Run the massive-instance allocator benchmark: dense greedy at \
          10^5-10^6 fragments, optional Domain-parallel memetic islands, \
          and O(delta) incremental repair timed against a from-scratch \
          re-solve, with checker and wall-clock gates for CI")
    Term.(
      const run $ smoke_arg $ fragments_arg $ reads_arg $ updates_arg
      $ backends_arg $ seed_arg $ strategy_arg $ islands_arg
      $ generations_arg $ population_arg $ domains_arg $ no_repair_arg
      $ delta_frac_arg $ budget_arg $ check_arg $ max_seconds_arg
      $ max_moved_arg $ json_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* autotune — self-tuning vs static under workload drift               *)
(* ------------------------------------------------------------------ *)

let autotune_cmd =
  let module Fdr = Cdbs_experiments.Fig_drift in
  let module Slo = Cdbs_telemetry.Slo_report in
  let module Mon = Cdbs_analysis.Monitor in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Run the scaled-down CI preset (shorter windows, lower rate) \
             instead of the full drift experiment.")
  in
  let seed_arg =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Random seed (deterministic; default from the preset).")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Add crash/recover renewals and a seeded workload-shift stream \
             (shared verbatim by both arms): drift and crashes together.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the BENCH_drift.json payload to $(docv).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the BENCH_drift.json payload on stdout instead of text.")
  in
  let monitor_arg =
    Arg.(
      value & flag
      & info [ "monitor" ]
          ~doc:
            "Attach the protocol monitor to both arms' event streams \
             (serving protocol plus the control protocol, TRC016-018) and \
             exit non-zero on any violation.")
  in
  let require_win_arg =
    Arg.(
      value & flag
      & info [ "require-win" ]
          ~doc:
            "Exit non-zero unless the self-tuning arm beats the static arm \
             on both p99 and availability — the CI headline gate.")
  in
  let min_avail_arg =
    Arg.(
      value & opt (some float) None
      & info [ "min-availability" ] ~docv:"FRAC"
          ~doc:
            "Exit non-zero if the self-tuning arm's availability falls \
             below $(docv).")
  in
  let max_p99_arg =
    Arg.(
      value & opt (some float) None
      & info [ "max-p99-ms" ] ~docv:"MS"
          ~doc:
            "Exit non-zero if the self-tuning arm's p99 latency exceeds \
             $(docv).")
  in
  let run smoke seed chaos json out with_monitor require_win min_avail max_p99
      =
    let base = if smoke then Fdr.smoke else Fdr.default in
    let params =
      {
        base with
        Fdr.seed = Option.value seed ~default:base.Fdr.seed;
        chaos = chaos || base.Fdr.chaos;
      }
    in
    let monitor = if with_monitor then Some (Mon.create ()) else None in
    let r = Fdr.run ~params ?monitor () in
    let mv = Option.map Mon.violations monitor in
    if json then print_endline (Fdr.to_json ?monitor_violations:mv r)
    else begin
      Fmt.pr
        "autotune: seed %d, %d windows x %g min, %d nodes, step at window \
         %d%s@."
        params.Fdr.seed params.Fdr.windows params.Fdr.window_minutes
        params.Fdr.nodes params.Fdr.step_window
        (if params.Fdr.chaos then ", chaos on" else "");
      Fmt.pr "@.static allocation:@.%a@." Slo.pp r.Fdr.static_.Fdr.report;
      Fmt.pr "@.self-tuning:@.%a@." Slo.pp r.Fdr.tuned.Fdr.report;
      Fmt.pr
        "@.reallocations %d (%d rolled back, %d committed), peak drift \
         %.2f@."
        r.Fdr.reallocations r.Fdr.rollbacks r.Fdr.commits r.Fdr.peak_drift;
      Fmt.pr
        "verdict: self-tuning %s (p99 %.0f ms vs %.0f ms, availability \
         %.4f vs %.4f)@."
        (if Fdr.verdict r then "wins" else "does NOT win")
        (1000. *. r.Fdr.tuned.Fdr.report.Slo.p99_s)
        (1000. *. r.Fdr.static_.Fdr.report.Slo.p99_s)
        r.Fdr.tuned.Fdr.report.Slo.availability
        r.Fdr.static_.Fdr.report.Slo.availability;
      Fmt.pr "%d events in %.1f s (%.0f events/s)@." r.Fdr.events r.Fdr.wall_s
        r.Fdr.events_per_s
    end;
    (match out with
    | Some path ->
        Fdr.write_json ?monitor_violations:mv ~path r;
        if not json then Fmt.pr "wrote %s@." path
    | None -> ());
    let gate =
      Slo.gate ?min_availability:min_avail
        ?max_p99_s:(Option.map (fun ms -> ms /. 1000.) max_p99)
        ()
    in
    let violations = Slo.check gate r.Fdr.tuned.Fdr.report in
    if violations <> [] then begin
      List.iter (fun v -> Fmt.epr "autotune: %s@." v) violations;
      exit 1
    end;
    if require_win && not (Fdr.verdict r) then begin
      Fmt.epr
        "autotune: self-tuning did not beat the static allocation (p99 \
         %.1f ms vs %.1f ms, availability %.6f vs %.6f)@."
        (1000. *. r.Fdr.tuned.Fdr.report.Slo.p99_s)
        (1000. *. r.Fdr.static_.Fdr.report.Slo.p99_s)
        r.Fdr.tuned.Fdr.report.Slo.availability
        r.Fdr.static_.Fdr.report.Slo.availability;
      exit 1
    end;
    match monitor with
    | None -> ()
    | Some m ->
        if not json then
          Fmt.pr "monitor: %d events observed, %d violation%s@."
            (Mon.events_seen m) (Mon.violations m)
            (if Mon.violations m = 1 then "" else "s");
        if not (Mon.clean m) then begin
          Fmt.epr "%a" Diag.pp_report (Mon.report m);
          Fmt.epr "autotune: protocol monitor found %d violation%s@."
            (Mon.violations m)
            (if Mon.violations m = 1 then "" else "s");
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Run the workload-drift experiment: the self-healing control loop \
          (measured cost model, drift detection, guarded live reallocation \
          with canary + automatic rollback) against a static allocation \
          under an adversarial step-change, with SLO gates for CI")
    Term.(
      const run $ smoke_arg $ seed_arg $ chaos_arg $ json_arg $ out_arg
      $ monitor_arg $ require_win_arg $ min_avail_arg $ max_p99_arg)

(* ------------------------------------------------------------------ *)
(* verify-trace — the protocol sanitizer                                *)
(* ------------------------------------------------------------------ *)

let verify_trace_cmd =
  let module Faults = Cdbs_faults in
  let module Sim = Cdbs_cluster.Simulator in
  let module Mon = Cdbs_analysis.Monitor in
  let module Tel = Cdbs_telemetry in
  let mtbf_arg =
    Arg.(
      value & opt float 120.
      & info [ "mtbf" ] ~docv:"SECONDS"
          ~doc:"Mean time between failures per backend.")
  in
  let mttr_arg =
    Arg.(
      value & opt float 25.
      & info [ "mttr" ] ~docv:"SECONDS" ~doc:"Mean time to recovery.")
  in
  let duration_arg =
    Arg.(
      value & opt float 600.
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Run length (also the fault-injection horizon).")
  in
  let rate_arg =
    Arg.(
      value & opt float 20.
      & info [ "rate" ] ~docv:"REQ/S" ~doc:"Offered request rate.")
  in
  let k_arg =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~docv:"K"
          ~doc:"k-safety degree of the allocation under test.")
  in
  let deadline_arg =
    Arg.(
      value & opt float 1.
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"End-to-end deadline budget of the defense stack.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the diagnostics as machine-readable JSON.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit non-zero on warnings too, not just errors.")
  in
  let inject_conv =
    Arg.enum
      [
        ("none", `None); ("breaker-hop", `Breaker_hop); ("rejoin", `Rejoin);
        ("deadline", `Deadline); ("down-serve", `Down_serve);
        ("split-brain", `Split_brain);
        ("overlap-realloc", `Overlap_realloc);
        ("cooldown-trigger", `Cooldown_trigger);
        ("rogue-rollback", `Rogue_rollback);
      ]
  in
  let inject_arg =
    Arg.(
      value & opt inject_conv `None
      & info [ "inject" ] ~docv:"FAULT"
          ~doc:
            "Replay a short synthetic event sequence that breaks one \
             temporal invariant after the real run — proves the monitor \
             rejects it.  $(b,breaker-hop) takes an illegal breaker \
             transition (TRC004), $(b,rejoin) serves a read before \
             catch-up finished (TRC005), $(b,deadline) grows the deadline \
             budget across retries (TRC007), $(b,down-serve) books work on \
             a crashed backend (TRC003), $(b,split-brain) walks the whole \
             partition pathology: a serve while isolated (TRC013), a read \
             on a fenced backend after the heal (TRC015) and a non-monotonic \
             fencing epoch (TRC014).  The control-loop protocol: \
             $(b,overlap-realloc) starts a reallocation while another is in \
             flight (TRC016), $(b,cooldown-trigger) fires a drift trigger \
             inside the post-action cooldown (TRC017), $(b,rogue-rollback) \
             rolls back with no guardrail breach (TRC018).")
  in
  let run n seed k mtbf mttr duration rate deadline json strict inject =
    (* The sanitizer reports; like check, it must not trip the in-engine
       assertions before it can do so. *)
    Core.Invariants.disable ();
    let policy = Cdbs_experiments.Fig_overload.defenses ~deadline_s:deadline in
    let chaos_params =
      {
        Faults.Chaos.default with
        Faults.Chaos.mtbf;
        mttr;
        horizon = duration;
        max_concurrent_down = Some k;
      }
    in
    let rng = Cdbs_util.Rng.create seed in
    let faults = Faults.Chaos.generate ~rng ~num_backends:n chaos_params in
    (* Static lints first: the defense bundle and the fault timeline. *)
    let static_diags =
      Cdbs_analysis.Check_policy.check policy
      @ Cdbs_analysis.Check_faults.check_params ~k chaos_params
      @ Cdbs_analysis.Check_faults.check_schedule ~k ~num_backends:n faults
    in
    let workload = Cdbs_workloads.Trace.workload_at ~hour:14. in
    let alloc =
      Core.Ksafety.allocate ~k workload (Core.Backend.homogeneous n)
    in
    let reqs =
      List.map
        (fun (r : Cdbs_cluster.Request.t) ->
          { r with Cdbs_cluster.Request.arrival = Cdbs_util.Rng.float rng duration })
        (Cdbs_workloads.Spec.requests ~rng
           ~n:(int_of_float (rate *. duration))
           (Cdbs_workloads.Trace.specs_at ~hour:14.))
    in
    (* The monitor subscribes to the full stream, so the ring capacity
       only decides whether a TRC012 overflow warning appears; size it to
       stay warning-clean at the default load. *)
    let sink =
      Tel.Sink.create
        ~capacity:(max 4096 (8 * int_of_float (rate *. duration)))
        ()
    in
    let monitor = Mon.create () in
    ignore (Mon.attach monitor sink);
    let config = Sim.homogeneous_config n in
    let fo =
      Sim.run_open_with_faults
        ~rng:(Cdbs_util.Rng.create (seed + 1))
        ~resilience:policy ~telemetry:sink config alloc reqs ~faults
    in
    (* Deliberate corruption: a synthetic mini-run of protocol events the
       monitor must reject (its own run.start isolates it from the real
       run's state). *)
    let tr = sink.Tel.Sink.trace in
    let ev at name attrs = Tel.Trace.emit tr ~at name attrs in
    let injected =
      match inject with
      | `None -> None
      | ( `Breaker_hop | `Rejoin | `Deadline | `Down_serve | `Split_brain
        | `Overlap_realloc | `Cooldown_trigger | `Rogue_rollback ) as f ->
          ev 0. "run.start"
            [ ("backends", Tel.Trace.Int n); ("offered", Tel.Trace.Int 0) ];
          Some
            (match f with
            | `Breaker_hop ->
                ev 1. "breaker.transition"
                  [
                    ("backend", Tel.Trace.Int 0);
                    ("state", Tel.Trace.Str "half_open");
                  ];
                "closed -> half_open breaker hop"
            | `Rejoin ->
                ev 1. "backend.crash" [ ("backend", Tel.Trace.Int 0) ];
                ev 2. "backend.recover"
                  [
                    ("backend", Tel.Trace.Int 0);
                    ("replay_mb", Tel.Trace.Float 4.);
                  ];
                ev 3. "backend.serve"
                  [
                    ("backend", Tel.Trace.Int 0);
                    ("kind", Tel.Trace.Str "read");
                    ("start", Tel.Trace.Float 3.);
                    ("finish", Tel.Trace.Float 3.1);
                  ];
                "read served before catch-up finished"
            | `Deadline ->
                ev 1. "request.retry"
                  [
                    ("uid", Tel.Trace.Int 7); ("attempt", Tel.Trace.Int 1);
                    ("retry_at", Tel.Trace.Float 1.5);
                    ("remaining_s", Tel.Trace.Float 0.8);
                  ];
                ev 2. "request.retry"
                  [
                    ("uid", Tel.Trace.Int 7); ("attempt", Tel.Trace.Int 2);
                    ("retry_at", Tel.Trace.Float 2.5);
                    ("remaining_s", Tel.Trace.Float 1.6);
                  ];
                "deadline budget grew across retries"
            | `Down_serve ->
                ev 1. "backend.crash" [ ("backend", Tel.Trace.Int 0) ];
                ev 2. "backend.serve"
                  [
                    ("backend", Tel.Trace.Int 0);
                    ("kind", Tel.Trace.Str "read");
                    ("start", Tel.Trace.Float 2.);
                    ("finish", Tel.Trace.Float 2.2);
                  ];
                "work booked on a crashed backend"
            | `Split_brain ->
                (* The full partition pathology: the isolated minority keeps
                   serving, the heal fence is ignored, and a replayed heal
                   reuses an old epoch. *)
                ev 1. "backend.partition" [ ("backend", Tel.Trace.Int 0) ];
                ev 2. "backend.serve"
                  [
                    ("backend", Tel.Trace.Int 0);
                    ("kind", Tel.Trace.Str "read");
                    ("start", Tel.Trace.Float 2.);
                    ("finish", Tel.Trace.Float 2.1);
                  ];
                ev 3. "backend.heal"
                  [
                    ("backend", Tel.Trace.Int 0);
                    ("epoch", Tel.Trace.Int 1);
                    ("replay_mb", Tel.Trace.Float 4.);
                  ];
                ev 4. "backend.serve"
                  [
                    ("backend", Tel.Trace.Int 0);
                    ("kind", Tel.Trace.Str "read");
                    ("start", Tel.Trace.Float 4.);
                    ("finish", Tel.Trace.Float 4.1);
                  ];
                ev 5. "backend.fence_lift"
                  [ ("backend", Tel.Trace.Int 0); ("epoch", Tel.Trace.Int 1) ];
                ev 6. "backend.partition" [ ("backend", Tel.Trace.Int 0) ];
                ev 7. "backend.heal"
                  [
                    ("backend", Tel.Trace.Int 0);
                    ("epoch", Tel.Trace.Int 1);
                    ("replay_mb", Tel.Trace.Float 0.);
                  ];
                "served while partitioned, read through the heal fence, \
                 stale fencing epoch"
            | `Overlap_realloc ->
                ev 1. "control.session" [];
                ev 2. "control.reallocate.start"
                  [
                    ("id", Tel.Trace.Int 1);
                    ("moved_mb", Tel.Trace.Float 64.);
                  ];
                ev 3. "control.reallocate.start"
                  [
                    ("id", Tel.Trace.Int 2);
                    ("moved_mb", Tel.Trace.Float 32.);
                  ];
                "second reallocation started while the first is still in \
                 flight"
            | `Cooldown_trigger ->
                ev 1. "control.session" [];
                ev 2. "control.reallocate.start" [ ("id", Tel.Trace.Int 1) ];
                ev 3. "control.commit" [ ("id", Tel.Trace.Int 1) ];
                ev 4. "control.trigger"
                  [
                    ("score", Tel.Trace.Float 2.);
                    ("threshold", Tel.Trace.Float 1.);
                    ("cooldown_s", Tel.Trace.Float 600.);
                  ];
                "drift trigger inside the post-action cooldown"
            | `Rogue_rollback ->
                ev 1. "control.session" [];
                ev 2. "control.reallocate.start" [ ("id", Tel.Trace.Int 1) ];
                ev 3. "control.rollback" [ ("id", Tel.Trace.Int 1) ];
                "rollback with no guardrail breach since the cutover")
    in
    let diags = Diag.sort (static_diags @ Mon.report monitor) in
    let errors = List.length (Diag.errors diags) in
    let warnings = List.length (Diag.warnings diags) in
    if json then
      Printf.printf
        "{\"seed\":%d,\"backends\":%d,\"k\":%d,\"mtbf\":%g,\"mttr\":%g,\
         \"duration\":%g,\"rate\":%g,\"deadline_s\":%g,\
         \"offered\":%d,\"completed\":%d,\"availability\":%.6f,\
         \"events_seen\":%d,\"trace_dropped\":%d,\
         \"monitor_violations\":%d,\"injected\":%s,\
         \"errors\":%d,\"warnings\":%d,\"diagnostics\":%s}\n"
        seed n k mtbf mttr duration rate deadline fo.Sim.offered
        fo.Sim.run.Sim.completed fo.Sim.availability
        (Mon.events_seen monitor)
        (Tel.Trace.dropped tr) (Mon.violations monitor)
        (match injected with
        | Some what -> json_string what
        | None -> "null")
        errors warnings (Diag.list_to_json diags)
    else begin
      Fmt.pr
        "verify-trace: %d backends, k=%d, seed %d, mtbf %.0fs, mttr %.0fs, \
         %.0fs at %.0f req/s, deadline %.2fs@."
        n k seed mtbf mttr duration rate deadline;
      Fmt.pr
        "run: offered %d, completed %d, availability %.4f; monitor observed \
         %d events@."
        fo.Sim.offered fo.Sim.run.Sim.completed fo.Sim.availability
        (Mon.events_seen monitor);
      (match injected with
      | Some what -> Fmt.pr "injected fault: %s@." what
      | None -> ());
      Fmt.pr "%a" Diag.pp_report diags;
      Fmt.pr "@.verified: %d error%s, %d warning%s@." errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")
    end;
    if errors > 0 || (strict && warnings > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "verify-trace"
       ~doc:
         "Run a seeded chaos scenario with the full defense stack and the \
          protocol monitor attached — temporal invariants over the \
          simulation trace plus resilience/fault configuration lints, with \
          non-zero exit on violations")
    Term.(
      const run $ backends_arg $ seed_arg $ k_arg $ mtbf_arg $ mttr_arg
      $ duration_arg $ rate_arg $ deadline_arg $ json_arg $ strict_arg
      $ inject_arg)

(* ------------------------------------------------------------------ *)
(* journalgen                                                          *)
(* ------------------------------------------------------------------ *)

let journalgen_cmd =
  let out_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output journal file.")
  in
  let entries_arg =
    Arg.(
      value & opt int 2000
      & info [ "e"; "entries" ] ~docv:"N" ~doc:"Journal entries to generate.")
  in
  let run path entries seed =
    let journal =
      Cdbs_workloads.Tpch_queries.journal
        ~rng:(Cdbs_util.Rng.create seed)
        ~n:entries ~sf:1.
    in
    Core.Journal.save_file journal path;
    Fmt.pr "wrote %d TPC-H journal entries to %s@."
      (Core.Journal.length journal)
      path
  in
  Cmd.v
    (Cmd.info "journalgen"
       ~doc:"Generate a sample TPC-H SQL journal file (for classify)")
    Term.(const run $ out_arg $ entries_arg $ seed_arg)

let () =
  let doc = "query-centric partitioning and allocation for CDBSs" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "cdbs" ~version:"1.0.0" ~doc)
          [
            classify_cmd; allocate_cmd; simulate_cmd; experiment_cmd;
            migrate_cmd; check_cmd; chaos_cmd; overload_cmd; day_cmd;
            alloc_cmd; autotune_cmd; verify_trace_cmd; journalgen_cmd;
          ]))
