(** The self-healing control loop: measured drift in, guarded live
    reallocation out, automatic rollback when the canary regresses.

    State machine (one {!observe_window} call per completed serving
    window):

    {v
    Idle/Observing --trigger+plan accepted--> Migrating (Cutover)
    Observing --trigger, plan rejected-----> Observing (cooldown)
    Migrating --window served--------------> Canary
    Canary --guardrail breach--------------> Rollback --> Observing
    Canary --windows clean-----------------> Commit ----> Observing
    v}

    The loop itself never migrates data: {!observe_window} returns a
    {!directive} and the {e driver} (an experiment harness, or
    [Controller.autotune]) executes the cutover or rollback with
    whatever migration machinery it owns, then keeps serving windows.
    This keeps the control policy free of any dependency on the cluster
    or simulator and makes every decision unit-testable.

    Per window the loop: closes the {!Estimator} window, scores the
    measured read mix against the incumbent allocation's assumed
    weights ({!Drift.score}), and when the detector fires builds a typed
    [Reweight] delta per drifted class, repairs the incumbent under a
    bounded rebalance budget ({!Cdbs_core.Incremental.repair} with
    [~balance:true]), and accepts the candidate only when
    {!Cdbs_analysis.Check_allocation.check_dense} is free of errors AND
    its modeled cost ({!Cdbs_core.Dense.scale}) beats the incumbent
    (same reweights, no data movement) by [margin].  After a cutover the
    next [canary_windows] windows are the canary: a window whose
    availability drops below [min_availability], or whose p99 exceeds
    the pre-cutover baseline by [max_p99_ratio] (or [abs_p99_s]
    absolutely), breaches the guardrail and rolls back to the snapshot.

    Every decision is published on the sink as [control.*] trace events
    ([session], [trigger], [plan], [reallocate.start], [breach],
    [rollback], [commit]) — the protocol the monitor's TRC016–018
    invariants verify. *)

type guardrails = {
  max_p99_ratio : float;
      (** canary p99 ceiling, relative to the pre-cutover window *)
  abs_p99_s : float;  (** absolute canary p99 ceiling ([infinity] = off) *)
  min_availability : float;  (** canary availability floor *)
}

val default_guardrails : guardrails
(** ratio 1.5, no absolute ceiling, availability floor 0.9. *)

type config = {
  detector : Drift.config;
  guardrails : guardrails;
  min_samples : float;
      (** decayed sample mass required before scoring at all *)
  margin : float;  (** required modeled-cost win, e.g. 0.02 = 2% *)
  budget : int;  (** rebalance fragment-copy budget per reallocation *)
  canary_windows : int;  (** windows the canary watches before commit *)
  half_life_windows : float;  (** estimator decay half-life *)
  k : int;  (** k-safety preserved through repairs *)
}

val default : config

type directive =
  | Stay  (** keep serving under the current allocation *)
  | Cutover of { id : int; next : Cdbs_core.Allocation.t; moved_mb : float }
      (** execute the live reallocation to [next], then keep serving *)
  | Rollback of { id : int; prev : Cdbs_core.Allocation.t }
      (** guardrail breach: restore [prev] *)

type t

val create :
  ?config:config ->
  ?topology:Cdbs_core.Topology.t ->
  sink:Cdbs_telemetry.Sink.t ->
  allocation:Cdbs_core.Allocation.t ->
  unit ->
  t
(** Attach an estimator to [sink] and emit ["control.session"] (which
    also resets the monitor's TRC016–018 state).
    @raise Invalid_argument on a nonsensical config. *)

val observe_window :
  t -> at:float -> p99_s:float -> availability:float -> directive
(** Report one completed serving window ([p99_s]/[availability] are that
    window's measurements; the estimator harvested its serve events off
    the trace already).  Returns what the driver must do next. *)

val set_allocation : t -> Cdbs_core.Allocation.t -> unit
(** Tell the loop the driver changed the allocation outside the control
    path (e.g. an autoscaling resize).  The new allocation's weights
    become the assumed mix.
    @raise Invalid_argument while a reallocation is in flight. *)

val allocation : t -> Cdbs_core.Allocation.t
(** The allocation the loop currently believes is serving. *)

val estimator : t -> Estimator.t

val migrating : t -> bool
(** A cutover's canary is still running. *)

val reallocations : t -> int
(** Cutovers executed. *)

val rollbacks : t -> int
(** Cutovers undone by the canary. *)

val commits : t -> int
(** Cutovers kept. *)

val peak_score : t -> float
(** Max drift score observed. *)

val last_score : t -> float

val detach : t -> unit
(** Unsubscribe the estimator from the sink. *)
