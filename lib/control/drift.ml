type config = { threshold : float; hysteresis : float; cooldown_s : float }

let default = { threshold = 0.5; hysteresis = 0.2; cooldown_s = 7200. }

let validate_config c =
  if
    not
      (Float.is_finite c.threshold && c.threshold > 0.
      && Float.is_finite c.hysteresis
      && c.hysteresis >= 0.
      && c.hysteresis < c.threshold
      && Float.is_finite c.cooldown_s && c.cooldown_s >= 0.)
  then
    invalid_arg
      "Drift: need 0 < threshold, 0 <= hysteresis < threshold, cooldown >= 0"

type t = {
  cfg : config;
  mutable armed : bool;
  mutable cooldown_until : float;
  mutable last_score : float;
}

let create cfg =
  validate_config cfg;
  { cfg; armed = true; cooldown_until = neg_infinity; last_score = 0. }

let config t = t.cfg
let armed t = t.armed
let cooldown_until t = t.cooldown_until
let last_score t = t.last_score
let in_cooldown t ~now = now < t.cooldown_until

(* Weighted relative error over the class mix.  Both vectors are
   re-normalized over their union, so callers can pass raw weights. *)
let floor_share = 0.01

let score ~assumed ~measured =
  let norm mix =
    let total =
      List.fold_left (fun acc (_, w) -> acc +. max 0. w) 0. mix
    in
    if total <= 0. then fun _ -> 0.
    else fun id ->
      max 0. (Option.value ~default:0. (List.assoc_opt id mix)) /. total
  in
  let a = norm assumed and m = norm measured in
  let ids =
    List.sort_uniq String.compare
      (List.map fst assumed @ List.map fst measured)
  in
  List.fold_left
    (fun acc id ->
      let av = a id and mv = m id in
      acc +. (max av mv *. Float.abs (mv -. av) /. max av floor_share))
    0. ids

let update t ~now ~score =
  t.last_score <- score;
  if score <= t.cfg.threshold -. t.cfg.hysteresis then t.armed <- true;
  if t.armed && score >= t.cfg.threshold && now >= t.cooldown_until then begin
    t.armed <- false;
    true
  end
  else false

let action_done t ~now = t.cooldown_until <- now +. t.cfg.cooldown_s
