(** Drift detection: divergence between assumed and measured class mix,
    with a Schmitt-trigger threshold and a post-action cooldown.

    The {!score} is a weighted relative error over the class mix: for
    each class, [max(assumed, measured) * |measured - assumed| /
    max(assumed, 0.01)] — a class that doubled from 30% to 60% of the
    mix scores far higher than one that doubled from 0.5% to 1%, and the
    1% floor keeps a class the static model assumed away from exploding
    the ratio.  0 means the mixes agree; the diurnal night-shift in
    {!Cdbs_workloads.Trace} scores ≈ 5.

    Oscillation control is two independent guards:

    - {b hysteresis}: the detector trigger is edge-triggered (armed →
      fired); after firing it re-arms only once the score falls to
      [threshold - hysteresis] or below, so a score hovering at the
      threshold cannot re-fire every window, and a rolled-back (or
      rejected) plan is not retried until the mix leaves and re-enters
      the band;
    - {b cooldown}: {!action_done} (called after a commit, a rollback,
      or a rejected plan) suppresses triggers for [cooldown_s] of
      simulated time regardless of arming, bounding the control loop to
      at most one reallocation per cooldown window under any workload,
      including an adversarial flapping one. *)

type config = {
  threshold : float;  (** fire at [score >= threshold] *)
  hysteresis : float;  (** re-arm at [score <= threshold - hysteresis] *)
  cooldown_s : float;  (** post-action trigger suppression *)
}

val default : config
(** threshold 0.5, hysteresis 0.2, cooldown 7200 s. *)

val score :
  assumed:(string * float) list -> measured:(string * float) list -> float
(** Both mixes are re-normalized over the union of their classes, so raw
    (unnormalized) weights are accepted; a class missing from one side
    counts as share 0 there. *)

type t

val create : config -> t
(** Starts armed, with no cooldown pending.
    @raise Invalid_argument unless
    [0 < threshold], [0 <= hysteresis < threshold], [0 <= cooldown_s]. *)

val update : t -> now:float -> score:float -> bool
(** Feed one windowed score; [true] means the detector fired (trigger a
    reallocation attempt).  Firing disarms the detector. *)

val action_done : t -> now:float -> unit
(** Record that the loop acted (commit, rollback, or rejected plan) at
    [now]: triggers are suppressed until [now + cooldown_s]. *)

val config : t -> config
val armed : t -> bool
val in_cooldown : t -> now:float -> bool
val cooldown_until : t -> float
(** [neg_infinity] before any action. *)

val last_score : t -> float
(** Score of the most recent {!update}. *)
