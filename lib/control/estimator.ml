module Trace = Cdbs_telemetry.Trace
module Sink = Cdbs_telemetry.Sink

type cls_stat = { mutable count : float; mutable service_s : float }

type t = {
  decay : float;
  win : (string, cls_stat) Hashtbl.t;
  agg : (string, cls_stat) Hashtbl.t;
  mutable windows : int;
  mutable harvested : int;
  mutable attachments : (Trace.t * Trace.subscription) list;
}

let create ?(half_life_windows = 3.) () =
  if not (Float.is_finite half_life_windows) || half_life_windows <= 0. then
    invalid_arg "Estimator.create: half_life_windows must be positive";
  {
    decay = 0.5 ** (1. /. half_life_windows);
    win = Hashtbl.create 16;
    agg = Hashtbl.create 16;
    windows = 0;
    harvested = 0;
    attachments = [];
  }

let stat_of tbl id =
  match Hashtbl.find_opt tbl id with
  | Some s -> s
  | None ->
      let s = { count = 0.; service_s = 0. } in
      Hashtbl.replace tbl id s;
      s

let attr e key = List.assoc_opt key e.Trace.attrs

let observe t (e : Trace.event) =
  if String.equal e.Trace.name "backend.serve" then
    match (attr e "cls", attr e "start", attr e "finish") with
    | Some (Trace.Str cls), Some (Trace.Float start), Some (Trace.Float fin)
      when Float.is_finite start && Float.is_finite fin && fin >= start ->
        let s = stat_of t.win cls in
        s.count <- s.count +. 1.;
        s.service_s <- s.service_s +. (fin -. start);
        t.harvested <- t.harvested + 1
    | _ -> ()

let attach t (sink : Sink.t) =
  let trace = sink.Sink.trace in
  if List.exists (fun (tr, _) -> tr == trace) t.attachments then false
  else begin
    let sub = Trace.subscribe trace (fun e -> observe t e) in
    t.attachments <- (trace, sub) :: t.attachments;
    true
  end

let detach t (sink : Sink.t) =
  let trace = sink.Sink.trace in
  match List.find_opt (fun (tr, _) -> tr == trace) t.attachments with
  | None -> ()
  | Some (_, sub) ->
      Trace.unsubscribe trace sub;
      t.attachments <- List.filter (fun (tr, _) -> tr != trace) t.attachments

let end_window t =
  Hashtbl.iter
    (fun id s ->
      let a = stat_of t.agg id in
      a.count <- (a.count *. t.decay) +. s.count;
      a.service_s <- (a.service_s *. t.decay) +. s.service_s)
    t.win;
  (* Classes absent from this window still decay, so a class that stops
     arriving fades out instead of holding its stale share forever. *)
  Hashtbl.iter
    (fun id a ->
      if not (Hashtbl.mem t.win id) then begin
        a.count <- a.count *. t.decay;
        a.service_s <- a.service_s *. t.decay
      end)
    t.agg;
  Hashtbl.reset t.win;
  t.windows <- t.windows + 1

let windows t = t.windows
let harvested t = t.harvested

let samples t =
  Hashtbl.fold (fun _ s acc -> acc +. s.count) t.agg 0.

(* Mix shares are service-time mass, not raw counts: workload weights
   are cost shares, and a cheap class served often would otherwise read
   as drift against an allocation that models it correctly. *)
let measured_mix t =
  let total =
    Hashtbl.fold (fun _ s acc -> acc +. s.service_s) t.agg 0.
  in
  if total <= 0. then []
  else
    Hashtbl.fold (fun id s acc -> (id, s.service_s /. total) :: acc) t.agg []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let mean_service_s t id =
  match Hashtbl.find_opt t.agg id with
  | Some s when s.count > 0. -> Some (s.service_s /. s.count)
  | _ -> None

let merge_into ?(prior_strength = 50.) t (w : Cdbs_core.Workload.t) =
  let total = samples t in
  if total <= 0. then w
  else begin
    let lambda = total /. (total +. max 0. prior_strength) in
    let read_mass =
      List.fold_left
        (fun acc c -> acc +. c.Cdbs_core.Query_class.weight)
        0. w.Cdbs_core.Workload.reads
    in
    if read_mass <= 0. then w
    else begin
      (* Measured shares over the workload's own read classes only:
         trace classes the workload does not know cannot be placed. *)
      let measured =
        List.map
          (fun c ->
            match Hashtbl.find_opt t.agg c.Cdbs_core.Query_class.id with
            | Some s -> s.service_s
            | None -> 0.)
          w.Cdbs_core.Workload.reads
      in
      let m_total = List.fold_left ( +. ) 0. measured in
      if m_total <= 0. then w
      else
        let reads =
          List.map2
            (fun c m ->
              let assumed_share = c.Cdbs_core.Query_class.weight /. read_mass in
              let measured_share = m /. m_total in
              let share =
                (lambda *. measured_share) +. ((1. -. lambda) *. assumed_share)
              in
              { c with Cdbs_core.Query_class.weight = read_mass *. share })
            w.Cdbs_core.Workload.reads measured
        in
        Cdbs_core.Workload.make ~reads ~updates:w.Cdbs_core.Workload.updates
    end
  end
