module Tel = Cdbs_telemetry
module Core = Cdbs_core

type guardrails = {
  max_p99_ratio : float;
  abs_p99_s : float;
  min_availability : float;
}

let default_guardrails =
  { max_p99_ratio = 1.5; abs_p99_s = infinity; min_availability = 0.9 }

type config = {
  detector : Drift.config;
  guardrails : guardrails;
  min_samples : float;
  margin : float;
  budget : int;
  canary_windows : int;
  half_life_windows : float;
  k : int;
}

let default =
  {
    detector = Drift.default;
    guardrails = default_guardrails;
    min_samples = 100.;
    margin = 0.02;
    budget = 64;
    canary_windows = 1;
    half_life_windows = 3.;
    k = 0;
  }

type directive =
  | Stay
  | Cutover of { id : int; next : Core.Allocation.t; moved_mb : float }
  | Rollback of { id : int; prev : Core.Allocation.t }

type phase =
  | Observing
  | Canary of {
      id : int;
      prev : Core.Allocation.t;
      baseline_p99 : float;
      mutable windows_left : int;
    }

type t = {
  cfg : config;
  topology : Core.Topology.t option;
  sink : Tel.Sink.t;
  est : Estimator.t;
  det : Drift.t;
  mutable alloc : Core.Allocation.t;
  mutable phase : phase;
  mutable next_id : int;
  mutable reallocations : int;
  mutable rollbacks : int;
  mutable commits : int;
  mutable peak_score : float;
}

let validate_config c =
  (* [Drift.create] validates the detector sub-config. *)
  if
    not
      (c.guardrails.max_p99_ratio >= 1.
      && c.guardrails.abs_p99_s > 0.
      && c.guardrails.min_availability >= 0.
      && c.guardrails.min_availability <= 1.
      && c.min_samples >= 0. && c.margin >= 0. && c.margin < 1.
      && c.budget >= 0 && c.canary_windows >= 1 && c.k >= 0)
  then invalid_arg "Loop: invalid config"

let create ?(config = default) ?topology ~sink ~allocation () =
  validate_config config;
  let est = Estimator.create ~half_life_windows:config.half_life_windows () in
  ignore (Estimator.attach est sink);
  Tel.Sink.ev (Some sink) ~at:0. "control.session"
    [
      ("threshold", Tel.Trace.Float config.detector.Drift.threshold);
      ("hysteresis", Tel.Trace.Float config.detector.Drift.hysteresis);
      ("cooldown_s", Tel.Trace.Float config.detector.Drift.cooldown_s);
      ("canary_windows", Tel.Trace.Int config.canary_windows);
    ];
  {
    cfg = config;
    topology;
    sink;
    est;
    det = Drift.create config.detector;
    alloc = allocation;
    phase = Observing;
    next_id = 1;
    reallocations = 0;
    rollbacks = 0;
    commits = 0;
    peak_score = 0.;
  }

let estimator t = t.est
let allocation t = t.alloc
let reallocations t = t.reallocations
let rollbacks t = t.rollbacks
let commits t = t.commits
let peak_score t = t.peak_score
let last_score t = Drift.last_score t.det
let migrating t = match t.phase with Canary _ -> true | Observing -> false
let detach t = Estimator.detach t.est t.sink

let set_allocation t alloc =
  if migrating t then
    invalid_arg "Loop.set_allocation: a reallocation is in flight";
  t.alloc <- alloc

let ev t ~at name attrs = Tel.Sink.ev (Some t.sink) ~at name attrs

let read_mix (w : Core.Workload.t) =
  List.map
    (fun c -> (c.Core.Query_class.id, c.Core.Query_class.weight))
    w.Core.Workload.reads

(* Reweight deltas from current → merged read weights.  Dense class
   indices follow [Workload.all_classes] order (reads first), which is
   exactly the order [merge_into] preserves. *)
let reweights ~current ~merged =
  let deltas = ref [] in
  List.iteri
    (fun i (c : Core.Query_class.t) ->
      let m = List.nth merged.Core.Workload.reads i in
      if Float.abs (m.Core.Query_class.weight -. c.Core.Query_class.weight)
         > 1e-9
      then
        deltas :=
          Core.Incremental.Reweight
            { cls = i; weight = m.Core.Query_class.weight }
          :: !deltas)
    current.Core.Workload.reads;
  List.rev !deltas

(* Plan a guarded reallocation: repair under a bounded budget, reject
   unless diagnostic-clean AND the modeled cost beats the incumbent (the
   same reweights applied without moving data) by the margin. *)
let plan t ~at ~merged =
  let current = Core.Allocation.workload t.alloc in
  let deltas = reweights ~current ~merged in
  if deltas = [] then None
  else begin
    let incumbent, _ =
      Core.Incremental.repair ~k:t.cfg.k ?topology:t.topology
        (Core.Dense.of_allocation t.alloc)
        deltas
    in
    let candidate, stats =
      Core.Incremental.repair ~k:t.cfg.k ?topology:t.topology
        ~budget:t.cfg.budget ~balance:true
        (Core.Dense.of_allocation t.alloc)
        deltas
    in
    let cost_before = Core.Dense.scale incumbent in
    let cost_after = Core.Dense.scale candidate in
    let clean =
      Cdbs_analysis.Diagnostic.errors
        (Cdbs_analysis.Check_allocation.check_dense ~k:t.cfg.k
           ?topology:t.topology candidate)
      = []
    in
    let wins = cost_after <= cost_before *. (1. -. t.cfg.margin) in
    let accepted = clean && wins in
    ev t ~at "control.plan"
      [
        ("accepted", Tel.Trace.Bool accepted);
        ("clean", Tel.Trace.Bool clean);
        ("cost_before", Tel.Trace.Float cost_before);
        ("cost_after", Tel.Trace.Float cost_after);
        ("moved_mb", Tel.Trace.Float stats.Core.Incremental.moved_mb);
        ( "moved_fragments",
          Tel.Trace.Int stats.Core.Incremental.moved_fragments );
      ];
    if accepted then
      Some (Core.Dense.to_allocation candidate, stats.Core.Incremental.moved_mb)
    else None
  end

let observe_window t ~at ~p99_s ~availability =
  Estimator.end_window t.est;
  match t.phase with
  | Canary c ->
      let g = t.cfg.guardrails in
      let breach =
        if availability < g.min_availability then
          Some ("availability", availability, g.min_availability)
        else if p99_s > c.baseline_p99 *. g.max_p99_ratio then
          Some ("p99_ratio", p99_s, c.baseline_p99 *. g.max_p99_ratio)
        else if p99_s > g.abs_p99_s then Some ("p99_s", p99_s, g.abs_p99_s)
        else None
      in
      (match breach with
      | Some (metric, value, limit) ->
          ev t ~at "control.breach"
            [
              ("id", Tel.Trace.Int c.id);
              ("metric", Tel.Trace.Str metric);
              ("value", Tel.Trace.Float value);
              ("limit", Tel.Trace.Float limit);
            ];
          ev t ~at "control.rollback" [ ("id", Tel.Trace.Int c.id) ];
          Drift.action_done t.det ~now:at;
          t.alloc <- c.prev;
          t.rollbacks <- t.rollbacks + 1;
          t.phase <- Observing;
          Rollback { id = c.id; prev = c.prev }
      | None ->
          c.windows_left <- c.windows_left - 1;
          if c.windows_left <= 0 then begin
            ev t ~at "control.commit" [ ("id", Tel.Trace.Int c.id) ];
            Drift.action_done t.det ~now:at;
            t.commits <- t.commits + 1;
            t.phase <- Observing
          end;
          Stay)
  | Observing ->
      if Estimator.samples t.est < t.cfg.min_samples then Stay
      else begin
        let assumed = read_mix (Core.Allocation.workload t.alloc) in
        let measured = Estimator.measured_mix t.est in
        let score = Drift.score ~assumed ~measured in
        t.peak_score <- max t.peak_score score;
        if not (Drift.update t.det ~now:at ~score) then Stay
        else begin
          ev t ~at "control.trigger"
            [
              ("score", Tel.Trace.Float score);
              ("threshold", Tel.Trace.Float t.cfg.detector.Drift.threshold);
              ("cooldown_s", Tel.Trace.Float t.cfg.detector.Drift.cooldown_s);
            ];
          let merged =
            Estimator.merge_into t.est (Core.Allocation.workload t.alloc)
          in
          match plan t ~at ~merged with
          | None ->
              (* Rejected plans start the cooldown too: without it the
                 same hopeless drift re-plans every single window. *)
              Drift.action_done t.det ~now:at;
              Stay
          | Some (next, moved_mb) ->
              let id = t.next_id in
              t.next_id <- t.next_id + 1;
              ev t ~at "control.reallocate.start"
                [
                  ("id", Tel.Trace.Int id);
                  ("moved_mb", Tel.Trace.Float moved_mb);
                ];
              let prev = t.alloc in
              t.alloc <- next;
              t.reallocations <- t.reallocations + 1;
              t.phase <-
                Canary
                  {
                    id;
                    prev;
                    baseline_p99 = p99_s;
                    windows_left = t.cfg.canary_windows;
                  };
              Cutover { id; next; moved_mb }
        end
      end
