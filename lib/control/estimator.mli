(** Online per-class cost/rate estimator.

    Harvests measured service times and class frequencies straight off a
    telemetry trace: every ["backend.serve"] event whose attributes carry
    a ["cls"] tag (reads — the simulator stamps them) contributes one
    sample to the current window.  {!end_window} folds the window into
    exponentially-decayed per-class aggregates (half-life measured in
    windows), so the measured mix tracks drift while smoothing over
    single-window noise.  Update classes are ROWA-pinned and never
    routed by weight, so only the read mix is estimated; {!merge_into}
    leaves update weights untouched.

    Estimators are pure observers (like {!Cdbs_analysis.Monitor}): they
    subscribe to the full event stream and never emit into the trace. *)

type t

val create : ?half_life_windows:float -> unit -> t
(** [half_life_windows] (default 3) is the number of {!end_window}
    boundaries after which a sample's contribution halves.
    @raise Invalid_argument when it is not positive. *)

val observe : t -> Cdbs_telemetry.Trace.event -> unit
(** Feed one event directly (tests); normally wired via {!attach}. *)

val attach : t -> Cdbs_telemetry.Sink.t -> bool
(** Subscribe to the sink's trace; [false] when already attached to it
    (idempotent per trace). *)

val detach : t -> Cdbs_telemetry.Sink.t -> unit

val end_window : t -> unit
(** Close the current measurement window: decay the aggregates and fold
    the window's raw counts in.  Classes that stopped arriving decay
    toward zero rather than holding a stale share. *)

val windows : t -> int
(** Windows closed so far. *)

val harvested : t -> int
(** Serve events harvested over the estimator's lifetime. *)

val samples : t -> float
(** Decayed total sample mass in the aggregates (0 before any window
    with traffic has been closed). *)

val measured_mix : t -> (string * float) list
(** Decayed per-class shares of the measured {e service-time mass},
    normalized to sum 1 and sorted by class id; [[]] when nothing has
    been harvested.  Service mass (not raw counts) is what workload
    weights model — a cheap class served very often is not drift. *)

val mean_service_s : t -> string -> float option
(** Decayed mean measured service time for one class. *)

val merge_into :
  ?prior_strength:float -> t -> Cdbs_core.Workload.t -> Cdbs_core.Workload.t
(** Blend the measured read mix into [w]'s static weights: each read
    class's share of the total read mass becomes
    [lambda * measured + (1 - lambda) * assumed] with
    [lambda = samples / (samples + prior_strength)] (default prior 50 —
    a thin measurement barely moves the static weights, a day of traffic
    dominates them).  Total read mass and all update weights are
    preserved, so a normalized workload stays normalized.  Returns [w]
    unchanged when no samples cover its classes. *)
