let class_replica_count alloc c =
  let count = ref 0 in
  for b = 0 to Allocation.num_backends alloc - 1 do
    if Allocation.holds alloc b c then incr count
  done;
  !count

let surviving_replica_count alloc ~failed c =
  let count = ref 0 in
  for b = 0 to Allocation.num_backends alloc - 1 do
    if (not (List.mem b failed)) && Allocation.holds alloc b c then incr count
  done;
  !count

let effective_k ?(failed = []) alloc =
  let survivors =
    let n = Allocation.num_backends alloc in
    let s = ref 0 in
    for b = 0 to n - 1 do
      if not (List.mem b failed) then incr s
    done;
    !s
  in
  List.fold_left
    (fun acc c -> min acc (surviving_replica_count alloc ~failed c - 1))
    (survivors - 1)
    (Workload.all_classes (Allocation.workload alloc))

let is_k_safe ~k alloc =
  List.for_all
    (fun c -> class_replica_count alloc c >= k + 1)
    (Workload.all_classes (Allocation.workload alloc))

let survives alloc ~failed =
  let n = Allocation.num_backends alloc in
  List.for_all
    (fun c ->
      let rec any b =
        b < n
        && ((not (List.mem b failed)) && Allocation.holds alloc b c
           || any (b + 1))
      in
      any 0)
    (Workload.all_classes (Allocation.workload alloc))

(* Closure fragments a class drags along (its updates' data). *)
let closure_fragments workload c =
  List.fold_left
    (fun acc u -> Fragment.Set.union acc u.Query_class.fragments)
    c.Query_class.fragments
    (Workload.updates_of workload c)

let class_holders ?(failed = []) alloc c =
  let acc = ref [] in
  for b = Allocation.num_backends alloc - 1 downto 0 do
    if (not (List.mem b failed)) && Allocation.holds alloc b c then
      acc := b :: !acc
  done;
  !acc

let class_zone_spread ?failed ~topology alloc c =
  Topology.zones_spanned topology (class_holders ?failed alloc c)

(* The spread a placement can actually achieve: [min (k+1)] and the number
   of zones that still have a surviving backend (a dead zone cannot host a
   replica). *)
let attainable_spread ?(failed = []) ~topology ~k alloc =
  let n = Allocation.num_backends alloc in
  let survivors =
    List.filter (fun b -> not (List.mem b failed)) (List.init n Fun.id)
  in
  min (k + 1) (Topology.zones_spanned topology survivors)

let spread_ok ?(failed = []) ~topology ~k alloc =
  let required = attainable_spread ~failed ~topology ~k alloc in
  List.for_all
    (fun c -> class_zone_spread ~failed ~topology alloc c >= required)
    (Workload.all_classes (Allocation.workload alloc))

(* Place one additional replica of [c] on the backend that does not yet hold
   it and needs the least new data; ties broken by lowest relative load
   (Algorithm 4 sets the difference to infinity for backends already
   holding a replica).  Backends in [avoid] (failed nodes, during repair)
   are never chosen.  With a topology, backends in zones that do not yet
   hold a (non-avoided) replica of [c] are preferred outright — the spread
   constraint dominates the data-movement key. *)
let place_replica_avoiding ?topology alloc ~avoid c =
  let workload = Allocation.workload alloc in
  let n = Allocation.num_backends alloc in
  let backends = Allocation.backends alloc in
  let zone_covered =
    match topology with
    | None -> fun _ -> 0.
    | Some t ->
        let covered = Array.make (Topology.zones t) false in
        List.iter
          (fun b -> covered.(Topology.zone_of t b) <- true)
          (class_holders ~failed:avoid alloc c);
        fun b -> if covered.(Topology.zone_of t b) then 1. else 0.
  in
  let best = ref (-1) and best_key = ref (infinity, infinity, infinity) in
  for b = 0 to n - 1 do
    if (not (List.mem b avoid)) && not (Allocation.holds alloc b c) then begin
      let extra =
        Fragment.set_size
          (Fragment.Set.diff
             (closure_fragments workload c)
             (Allocation.fragments_of alloc b))
      in
      let utilization =
        Allocation.assigned_load alloc b /. backends.(b).Backend.load
      in
      if (zone_covered b, extra, utilization) < !best_key then begin
        best := b;
        best_key := (zone_covered b, extra, utilization)
      end
    end
  done;
  match !best with
  | -1 -> false
  | b ->
      Allocation.add_fragments alloc b (closure_fragments workload c);
      Allocation.ensure_update_closure alloc;
      true

(* Heaviest first: their replicas bring the most data and constrain
   placement the most (same rationale as the base greedy order). *)
let classes_by_weight workload =
  List.sort
    (fun a b -> Stdlib.compare b.Query_class.weight a.Query_class.weight)
    (Workload.all_classes workload)

(* Add replicas until every class spans its attainable zone count.  A
   replica count of k+1 alone does not imply spread — greedy locality may
   stack all copies in one zone — so this pass places extra replicas
   restricted to backends in zones the class does not cover yet.  Each
   successful placement covers a new zone, so it terminates. *)
let spread_fill ?(failed = []) ~topology ~k alloc classes =
  let n = Allocation.num_backends alloc in
  let required = attainable_spread ~failed ~topology ~k alloc in
  List.iter
    (fun c ->
      let rec go () =
        let holders = class_holders ~failed alloc c in
        if Topology.zones_spanned topology holders < required then begin
          let covered = Array.make (Topology.zones topology) false in
          List.iter
            (fun b -> covered.(Topology.zone_of topology b) <- true)
            holders;
          let avoid =
            failed
            @ List.filter
                (fun b -> covered.(Topology.zone_of topology b))
                (List.init n Fun.id)
          in
          if place_replica_avoiding ~topology alloc ~avoid c then go ()
        end
      in
      go ())
    classes

let replicate_all_classes ?topology ~k alloc =
  let classes = classes_by_weight (Allocation.workload alloc) in
  List.iter
    (fun c ->
      let missing = (k + 1) - class_replica_count alloc c in
      for _ = 1 to missing do
        ignore (place_replica_avoiding ?topology alloc ~avoid:[] c)
      done)
    classes;
  match topology with
  | Some t -> spread_fill ~topology:t ~k alloc classes
  | None -> ()

let allocate ?topology ~k workload backend_list =
  if k < 0 then invalid_arg "Ksafety.allocate: negative k";
  if k + 1 > List.length backend_list then
    invalid_arg "Ksafety.allocate: k+1 exceeds the number of backends";
  (match topology with
  | Some t when Topology.num_backends t <> List.length backend_list ->
      invalid_arg "Ksafety.allocate: topology backend count <> backends"
  | _ -> ());
  let alloc = Greedy.allocate workload backend_list in
  replicate_all_classes ?topology ~k alloc;
  alloc

let replicate_fragments ~k alloc =
  let n = Allocation.num_backends alloc in
  if k + 1 > n then invalid_arg "Ksafety.replicate_fragments: k+1 > backends";
  let backends = Allocation.backends alloc in
  Fragment.Set.iter
    (fun f ->
      let holders = ref [] in
      for b = 0 to n - 1 do
        if Fragment.Set.mem f (Allocation.fragments_of alloc b) then
          holders := b :: !holders
      done;
      let missing = (k + 1) - List.length !holders in
      if missing > 0 then begin
        (* Emptiest (relative to capacity) non-holders first. *)
        let candidates =
          List.init n (fun b -> b)
          |> List.filter (fun b -> not (List.mem b !holders))
          |> List.sort (fun a b ->
                 Stdlib.compare
                   (Allocation.assigned_load alloc a
                   /. backends.(a).Backend.load)
                   (Allocation.assigned_load alloc b
                   /. backends.(b).Backend.load))
        in
        List.iteri
          (fun i b ->
            if i < missing then
              Allocation.add_fragments alloc b (Fragment.Set.singleton f))
          candidates
      end)
    (Workload.fragments (Allocation.workload alloc));
  Allocation.ensure_update_closure alloc

let repair ?topology ~k ~failed alloc =
  if k < 0 then invalid_arg "Ksafety.repair: negative k";
  let n = Allocation.num_backends alloc in
  (match topology with
  | Some t when Topology.num_backends t <> n ->
      invalid_arg "Ksafety.repair: topology backend count <> backends"
  | _ -> ());
  let failed = List.sort_uniq Int.compare failed in
  let survivors = n - List.length (List.filter (fun b -> b < n) failed) in
  if k + 1 > survivors then
    invalid_arg "Ksafety.repair: k+1 exceeds the surviving backends";
  let before = Array.init n (Allocation.fragments_of alloc) in
  let classes = classes_by_weight (Allocation.workload alloc) in
  List.iter
    (fun c ->
      let missing = (k + 1) - surviving_replica_count alloc ~failed c in
      for _ = 1 to missing do
        ignore (place_replica_avoiding ?topology alloc ~avoid:failed c)
      done)
    classes;
  (match topology with
  | Some t -> spread_fill ~failed ~topology:t ~k alloc classes
  | None -> ());
  Allocation.ensure_update_closure alloc;
  Array.init n (fun b ->
      Fragment.Set.diff (Allocation.fragments_of alloc b) before.(b))
