module Rng = Cdbs_util.Rng

type local_search_mode =
  | No_local_search
  | Consolidate_only
  | Both_strategies

type params = {
  population : int;
  iterations : int;
  mutations_per_parent : int;
  local_search_mode : local_search_mode;
}

let default_params =
  {
    population = 12;
    iterations = 60;
    mutations_per_parent = 2;
    local_search_mode = Both_strategies;
  }

let cost alloc = (Allocation.scale alloc, Allocation.total_stored alloc)

let better (sa, za) (sb, zb) =
  sa < sb -. Eps.assign || (abs_float (sa -. sb) <= Eps.assign && za < zb -. Eps.assign)

let compare_cost a b =
  let ca = cost a and cb = cost b in
  if better ca cb then -1 else if better cb ca then 1 else 0

(* ------------------------------------------------------------------ *)
(* Moves                                                               *)
(* ------------------------------------------------------------------ *)

(* Move [amount] of read class [c]'s assignment from [b1] to [b2]; installs
   the class's data (and update closure) on [b2] and prunes so dropped
   classes release their fragments. *)
let transfer alloc c ~b1 ~b2 ~amount =
  let a1 = Allocation.get_assign alloc b1 c in
  let amount = min amount a1 in
  if amount > 0. && b1 <> b2 then begin
    Allocation.set_assign alloc b1 c (a1 -. amount);
    Allocation.add_fragments alloc b2 c.Query_class.fragments;
    Allocation.set_assign alloc b2 c
      (Allocation.get_assign alloc b2 c +. amount);
    Allocation.prune alloc
  end

(* ------------------------------------------------------------------ *)
(* Local search                                                        *)
(* ------------------------------------------------------------------ *)

(* Strategy 1 (Eqs. 21-22): two read classes both split across a backend
   pair, with different update sets — consolidating each class on one side
   can drop a replicated update class. *)
let consolidate_pairs alloc =
  let workload = Allocation.workload alloc in
  let reads = Array.of_list workload.Workload.reads in
  let n = Allocation.num_backends alloc in
  let improved = ref false in
  for b1 = 0 to n - 1 do
    for b2 = b1 + 1 to n - 1 do
      Array.iteri
        (fun i c1 ->
          Array.iteri
            (fun j c2 ->
              if i < j then begin
                let on b c = Allocation.get_assign alloc b c > Eps.tiny in
                if
                  on b1 c1 && on b2 c1 && on b1 c2 && on b2 c2
                  && Workload.updates_of workload c1
                     <> Workload.updates_of workload c2
                then begin
                  let trial = Allocation.copy alloc in
                  transfer trial c1 ~b1:b2 ~b2:b1 ~amount:infinity;
                  transfer trial c2 ~b1 ~b2 ~amount:infinity;
                  if better (cost trial) (cost alloc) then begin
                    Allocation.blit ~src:trial ~dst:alloc;
                    improved := true
                  end
                end
              end)
            reads)
        reads
    done
  done;
  !improved

(* Strategy 2 (Eqs. 23-26): reduce the replication of a heavy update class
   by shifting the read classes that force it off one of its backends,
   accepting extra replication of lighter update classes. *)
let shift_heavy_updates alloc =
  let workload = Allocation.workload alloc in
  let n = Allocation.num_backends alloc in
  let improved = ref false in
  List.iter
    (fun u1 ->
      for b1 = 0 to n - 1 do
        for b2 = 0 to n - 1 do
          if b1 <> b2 then begin
            let on b u = Allocation.get_assign alloc b u > Eps.tiny in
            if on b1 u1 && on b2 u1 then begin
              let lighter_exists =
                List.exists
                  (fun u2 ->
                    u2.Query_class.id <> u1.Query_class.id
                    && on b1 u2
                    && u2.Query_class.weight < u1.Query_class.weight)
                  workload.Workload.updates
              in
              if lighter_exists then begin
                let trial = Allocation.copy alloc in
                List.iter
                  (fun c ->
                    if
                      Query_class.overlaps c u1
                      && Allocation.get_assign trial b1 c > Eps.tiny
                    then transfer trial c ~b1 ~b2 ~amount:infinity)
                  workload.Workload.reads;
                if better (cost trial) (cost alloc) then begin
                  Allocation.blit ~src:trial ~dst:alloc;
                  improved := true
                end
              end
            end
          end
        done
      done)
    workload.Workload.updates;
  !improved

let local_search alloc =
  let a = consolidate_pairs alloc in
  let b = shift_heavy_updates alloc in
  a || b

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let mutate rng alloc =
  let child = Allocation.copy alloc in
  let workload = Allocation.workload child in
  let reads = Array.of_list workload.Workload.reads in
  let n = Allocation.num_backends child in
  if Array.length reads = 0 || n < 2 then child
  else begin
    let attempts = 1 + Rng.int rng 3 in
    for _ = 1 to attempts do
      let c = Rng.pick rng reads in
      (* Source: a backend currently serving c (if any). *)
      let sources =
        List.filter
          (fun b -> Allocation.get_assign child b c > Eps.tiny)
          (List.init n (fun b -> b))
      in
      match sources with
      | [] -> ()
      | _ ->
          let b1 = Rng.pick_list rng sources in
          let b2 = Rng.int rng n in
          if b1 <> b2 then begin
            let a1 = Allocation.get_assign child b1 c in
            let amount = if Rng.bool rng then a1 else Rng.float rng a1 in
            transfer child c ~b1 ~b2 ~amount
          end
    done;
    child
  end

(* ------------------------------------------------------------------ *)
(* Evolutionary loop (Algorithm 2)                                     *)
(* ------------------------------------------------------------------ *)

let take k l =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go k l

let improve ?(params = default_params) ~rng alloc =
  let p = max 3 params.population in
  let population = ref [ Allocation.copy alloc ] in
  for _ = 1 to params.iterations do
    (* Offspring: mutations of random parents. *)
    let parents = Array.of_list !population in
    let offspring =
      List.init
        (max p (params.mutations_per_parent * Array.length parents))
        (fun _ -> mutate rng (Rng.pick rng parents))
    in
    (* (λ+µ) selection: best 2/3 old, best 1/3 offspring. *)
    let n_old = max 1 (2 * p / 3) in
    let n_new = max 1 (p - n_old) in
    let best l = List.sort compare_cost l in
    let survivors =
      take n_old (best !population) @ take n_new (best offspring)
    in
    (* Memetic step: improve a random third of the new population. *)
    let survivors = Array.of_list survivors in
    let improve_one alloc =
      match params.local_search_mode with
      | No_local_search -> ()
      | Consolidate_only -> ignore (consolidate_pairs alloc)
      | Both_strategies -> ignore (local_search alloc)
    in
    let k = max 1 (Array.length survivors / 3) in
    for _ = 1 to k do
      let i = Rng.int rng (Array.length survivors) in
      improve_one survivors.(i)
    done;
    population := Array.to_list survivors
  done;
  let all = alloc :: !population in
  let best = List.hd (List.sort compare_cost all) in
  Invariants.check_allocation ~context:"Memetic.improve" best;
  best

let allocate ?params ~rng workload backend_list =
  let seed = Greedy.allocate workload backend_list in
  improve ?params ~rng seed
