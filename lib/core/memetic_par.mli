(** Domain-parallel memetic optimizer over the {!Dense} representation.

    Island model: [islands] populations evolve independently (the
    parallel section, striped over a {!Cdbs_util.Pool}), exchanging
    elites around a ring every [migration_every] generations.  Each
    island owns an RNG split off the master seed in island order, and
    migration is a barrier with snapshotted elites, so the result is
    bit-identical for a fixed (seed, islands) whether the islands run on
    1 domain or 8 — parallelism buys wall-clock, never a different
    answer.

    Unlike the list-path {!Memetic}, there is no O(n²·reads²) local
    search: at dense scale the mutation volume (plus migration pressure)
    does that job. *)

type params = {
  population : int;
  generations : int;
  mutations_per_parent : int;
  islands : int;
  migration_every : int;
}

val default_params : params
(** 8 individuals × 24 generations over 4 islands, migrating every 6. *)

val better : float * float -> float * float -> bool
val compare_cost : Dense.t -> Dense.t -> int

val improve :
  ?params:params -> ?domains:int -> seed:int -> Dense.t -> Dense.t
(** Evolve from the given allocation; never returns anything worse than
    the input (the input stays in the candidate set). [domains] caps the
    pool ({!Cdbs_util.Pool.available} by default). *)

val allocate :
  ?params:params -> ?domains:int -> seed:int -> Dense.instance -> Dense.t
(** {!Dense.greedy} seed followed by {!improve}. *)
