(** Debug-mode invariant assertions.

    The allocation algorithms promise structural invariants (Eqs. 8–11) by
    construction; this module lets an independent checker verify them at
    the points where an allocation leaves an algorithm — without making
    [cdbs_core] depend on the checker.  {!Greedy.allocate},
    {!Memetic.improve} and the cluster controller call {!check_allocation}
    on their results; the call is a no-op unless checks are {!enable}d.

    The default checker is {!Allocation.validate}.  [Cdbs_analysis.Debug]
    installs the full diagnostics engine via {!set_allocation_hook}, so any
    program linking the analysis library gets the richer checks at the same
    call sites. *)

exception Violation of string
(** Raised (by the default hook) when a checked artifact breaks an
    invariant.  The message names the call site and the violations. *)

val active : unit -> bool
(** Whether checks currently run.  Off by default; on when the
    [CDBS_CHECKS] environment variable is set to anything but [0], [no] or
    [false], or after {!enable}. *)

val enable : unit -> unit
val disable : unit -> unit

val set_allocation_hook : (context:string -> Allocation.t -> unit) -> unit
(** Replace the checker run by {!check_allocation}.  The hook must raise to
    signal a violation. *)

val check_allocation : context:string -> Allocation.t -> unit
(** Run the installed allocation checker when {!active}; [context] names
    the call site (e.g. ["Greedy.allocate"]) for the error message. *)
