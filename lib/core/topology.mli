(** Cluster topology: backends assigned to fault domains (zones).

    The paper's allocation model (Eqs. 8-11) treats backends as independent
    failure units, but production clusters fail in correlated ways — a rack
    loses power, a zone drops off the network.  A topology maps each backend
    index to a fault domain so that placement ({!Ksafety}), verification
    ({!Check_allocation} via cdbs_analysis) and repair can enforce a
    {e spread constraint}: the k+1 replicas of every fragment must span
    [min (k+1) zones] distinct domains, making the allocation survive the
    loss of a whole domain, not just of k arbitrary backends.

    A topology is immutable; zone indices are dense [0 .. zones-1] and every
    zone is populated. *)

type t

val make : int array -> t
(** [make zone_of] where [zone_of.(b)] is backend [b]'s zone.
    @raise Invalid_argument on an empty array, a negative zone index, or an
    unpopulated zone (zone indices must be dense). *)

val of_zones : int list -> t
(** List form of {!make}. *)

val uniform : zones:int -> int -> t
(** [uniform ~zones n]: [n] backends striped round-robin over [zones]
    domains ([b mod zones] — backend 0 in zone 0, backend 1 in zone 1, ...).
    @raise Invalid_argument when [zones <= 0] or [n < zones]. *)

val single : int -> t
(** Degenerate one-zone topology: spread constraints are vacuous, placement
    behaves exactly as without a topology. *)

val zones : t -> int
val num_backends : t -> int

val zone_of : t -> int -> int
(** @raise Invalid_argument on an out-of-range backend index. *)

val backends_in : t -> int -> int list
(** Backends of a zone, ascending. @raise Invalid_argument out of range. *)

val zones_spanned : t -> int list -> int
(** Number of distinct zones covered by a backend list (out-of-range
    indices are ignored; duplicates count once). *)

val required_spread : t -> k:int -> int
(** [min (k+1) (zones t)] — how many domains the replicas of each fragment
    must cover for the allocation to be domain-aware k-safe. *)

val pp : t Fmt.t
