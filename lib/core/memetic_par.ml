module Rng = Cdbs_util.Rng
module Pool = Cdbs_util.Pool

type params = {
  population : int;  (** individuals per island *)
  generations : int;  (** total generations per island *)
  mutations_per_parent : int;
  islands : int;
  migration_every : int;  (** generations between elite ring migrations *)
}

let default_params =
  {
    population = 8;
    generations = 24;
    mutations_per_parent = 2;
    islands = 4;
    migration_every = 6;
  }

let better (sa, za) (sb, zb) =
  sa < sb -. Eps.assign
  || (abs_float (sa -. sb) <= Eps.assign && za < zb -. Eps.assign)

let compare_cost a b =
  let ca = Dense.cost a and cb = Dense.cost b in
  if better ca cb then -1 else if better cb ca then 1 else 0

type island = { mutable members : Dense.t array; rng : Rng.t }

let take k arr = Array.sub arr 0 (min k (Array.length arr))

(* One (λ+µ) generation, the dense counterpart of [Memetic.improve]'s loop
   body: offspring by mutation of random parents, then keep the best 2/3
   of the old population and the best 1/3 of the offspring.  The O(n²)
   local-search strategies of the list path are deliberately absent — at
   dense scale the mutation volume replaces them. *)
let generation p isl =
  let parents = isl.members in
  let n_off =
    max (max 3 p.population) (p.mutations_per_parent * Array.length parents)
  in
  let offspring =
    Array.init n_off (fun _ ->
        Dense.mutate isl.rng parents.(Rng.int isl.rng (Array.length parents)))
  in
  let pop = max 3 p.population in
  let n_old = max 1 (2 * pop / 3) in
  let n_new = max 1 (pop - n_old) in
  let old_sorted = Array.copy parents in
  Array.stable_sort compare_cost old_sorted;
  Array.stable_sort compare_cost offspring;
  isl.members <- Array.append (take n_old old_sorted) (take n_new offspring)

let best_of members =
  let best = ref members.(0) in
  Array.iter (fun m -> if compare_cost m !best < 0 then best := m) members;
  !best

let improve ?(params = default_params) ?domains ~seed t =
  let p =
    {
      params with
      islands = max 1 params.islands;
      migration_every = max 1 params.migration_every;
    }
  in
  let master = Rng.create seed in
  (* Per-island RNG streams are split off the master in island order, so
     the full evolution depends only on (seed, islands) — never on how
     many domains the pool actually runs. *)
  let islands =
    Array.init p.islands (fun _ ->
        { members = [| Dense.copy t |]; rng = Rng.split master })
  in
  let epochs =
    (max 1 p.generations + p.migration_every - 1) / p.migration_every
  in
  let gens_left = ref (max 1 p.generations) in
  for _ = 1 to epochs do
    let gens = min p.migration_every !gens_left in
    gens_left := !gens_left - gens;
    (* Islands evolve independently — this is the parallel section. *)
    ignore
      (Pool.map ?domains
         (fun isl ->
           for _ = 1 to gens do
             generation p isl
           done)
         islands);
    (* Ring migration: island i's elite replaces the worst member of
       island (i+1) mod islands.  Elites are snapshotted first so the
       exchange is simultaneous and order-independent. *)
    if p.islands > 1 then begin
      let elites = Array.map (fun isl -> best_of isl.members) islands in
      Array.iteri
        (fun i isl ->
          let incoming = Dense.copy elites.((i - 1 + p.islands) mod p.islands) in
          let members = Array.copy isl.members in
          Array.stable_sort compare_cost members;
          if Array.length members > 0 then
            members.(Array.length members - 1) <- incoming;
          isl.members <- members)
        islands
    end
  done;
  let best =
    best_of (Array.append [| t |] (Array.map (fun isl -> best_of isl.members) islands))
  in
  Dense.copy best

let allocate ?params ?domains ~seed inst =
  improve ?params ?domains ~seed (Dense.greedy inst)
