(** O(delta) incremental re-allocation (the DDIA ch. 6 rebalancing rule:
    fixed fragments ≫ nodes, move no more data than strictly necessary).

    Instead of re-solving from scratch when the workload or topology
    shifts, {!repair} takes an existing {!Dense.t} plus a typed delta and
    repairs only the affected cohort: reweighted classes are rescaled in
    place (no data moves), retired classes release their data, retired
    backends hand their assignments to the cheapest surviving holders,
    new classes are placed with the greedy key, and new backends are
    filled by a budget-bounded rebalance that moves the most
    load-per-byte first.  With [k] (and optionally a {!Topology}) the
    touched classes are re-replicated and re-spread, so k-safety and
    zone spread survive the delta.

    {!repair} CONSUMES its input: the result reuses the input's assign
    rows, bitsets and membership vectors in place (widened over an
    extended instance when classes or backends were added), so the
    input state must not be used afterwards — {!Dense.copy} it first if
    the pre-delta allocation is still needed.  This is what makes the
    repair O(delta): no O(fragments x backends) copy is ever taken;
    move statistics are computed against per-backend snapshots made the
    first time the repair touches a backend, and are returned for a
    controller to hand to [Cdbs_migration]. *)

type delta =
  | Reweight of { cls : int; weight : float }
      (** change class [cls]'s weight; read assignments rescale
          proportionally, pinned updates re-pin at the new weight —
          no data moves *)
  | Add_read of { id : string; weight : float; frags : int array }
  | Add_update of { id : string; weight : float; frags : int array }
      (** new classes over existing fragment indices; ids must be fresh *)
  | Retire_class of { cls : int }  (** tombstone the class, free its data *)
  | Add_backend of { name : string; capacity : float }
      (** [capacity] relative to the mean alive backend (1.0 = a peer);
          capacity shares are renormalized *)
  | Retire_backend of { backend : int }
      (** drain and deaden the backend; its index stays valid but dead *)

type stats = {
  touched_classes : int;
  moved_fragments : int;  (** fragment copies newly installed anywhere *)
  moved_mb : float;
  dropped_fragments : int;
  dropped_mb : float;
  rebalance_fragments : int;
      (** the optional (budget-bounded) subset of [moved_fragments] *)
  moves : (int * int * int option) array;
      (** (fragment, destination, source) — source [None] when the
          fragment had no surviving holder *)
}

val repair :
  ?k:int ->
  ?topology:Topology.t ->
  ?budget:int ->
  ?balance:bool ->
  Dense.t ->
  delta list ->
  Dense.t * stats
(** [budget] caps the number of fragment copies the {e optional}
    rebalance (new-backend fill, and the [balance] pass below) may
    install; correctness moves — update closure, Eq. 9/11 restoration,
    k-safety — are never dropped.  With [k > 0] local pruning is
    disabled so standby replicas of untouched classes survive the
    repair.

    [balance] (default [false]) appends a global budget-bounded balance
    pass: read weight shifts from the most-loaded alive backend to the
    least-loaded one, each step picking the class with the {e most
    transferable load} (the smaller of the donor's assigned weight and
    the load-equalizing amount; ties prefer fewer missing fragments) and
    installing whatever fragments the receiver is missing, until
    relative loads agree within 5 % or the budget runs dry.  A bare [Reweight] rescales in place and
    moves no data; with [balance] the same delta also grows extra
    replicas of the now-hot classes on underloaded backends — the
    mechanism the self-tuning control loop uses to turn measured drift
    into a better placement.  Off by default: existing callers get
    byte-identical repairs.
    @raise Invalid_argument on out-of-range indices or negative
    weights/capacities. *)

val random_delta :
  rng:Cdbs_util.Rng.t -> ?frac:float -> Dense.t -> delta list
(** A random delta touching about [frac] (default 1%) of the classes:
    weight shifts, new reads, retirements.  Used by the scale benchmark
    and the property tests. *)
