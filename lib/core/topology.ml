type t = { zones : int; zone_of : int array }

let make zone_of =
  let n = Array.length zone_of in
  if n = 0 then invalid_arg "Topology.make: no backends";
  let max_zone = Array.fold_left max (-1) zone_of in
  Array.iter
    (fun z -> if z < 0 then invalid_arg "Topology.make: negative zone index")
    zone_of;
  let zones = max_zone + 1 in
  let seen = Array.make zones false in
  Array.iter (fun z -> seen.(z) <- true) zone_of;
  Array.iteri
    (fun z populated ->
      if not populated then
        invalid_arg (Printf.sprintf "Topology.make: zone %d has no backends" z))
    seen;
  { zones; zone_of = Array.copy zone_of }

let of_zones zs = make (Array.of_list zs)

let uniform ~zones n =
  if zones <= 0 then invalid_arg "Topology.uniform: zones <= 0";
  if n < zones then invalid_arg "Topology.uniform: fewer backends than zones";
  make (Array.init n (fun b -> b mod zones))

let single n = uniform ~zones:1 n
let zones t = t.zones
let num_backends t = Array.length t.zone_of

let zone_of t b =
  if b < 0 || b >= Array.length t.zone_of then
    invalid_arg
      (Printf.sprintf "Topology.zone_of: backend %d of %d" b
         (Array.length t.zone_of));
  t.zone_of.(b)

let backends_in t z =
  if z < 0 || z >= t.zones then
    invalid_arg (Printf.sprintf "Topology.backends_in: zone %d of %d" z t.zones);
  let acc = ref [] in
  for b = Array.length t.zone_of - 1 downto 0 do
    if t.zone_of.(b) = z then acc := b :: !acc
  done;
  !acc

let zones_spanned t backends =
  let seen = Array.make t.zones false in
  List.iter
    (fun b ->
      if b >= 0 && b < Array.length t.zone_of then seen.(t.zone_of.(b)) <- true)
    backends;
  Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 seen

(* The spread target for a replication degree: with k+1 replicas and [zones]
   fault domains, the replicas of each fragment must cover
   min(k+1, zones) distinct domains (Golab-style placement: losing any one
   domain must leave a serving replica whenever k >= 1 and zones >= 2). *)
let required_spread t ~k = min (k + 1) t.zones

let pp ppf t =
  Fmt.pf ppf "@[<h>%d zones:" t.zones;
  for z = 0 to t.zones - 1 do
    Fmt.pf ppf " z%d={%a}" z
      Fmt.(list ~sep:(any ",") (fmt "B%d"))
      (List.map (fun b -> b + 1) (backends_in t z))
  done;
  Fmt.pf ppf "@]"
