exception Violation of string

let enabled =
  ref
    (match Sys.getenv_opt "CDBS_CHECKS" with
    | None | Some "" | Some "0" | Some "no" | Some "false" -> false
    | Some _ -> true)

let active () = !enabled
let enable () = enabled := true
let disable () = enabled := false

let default_hook ~context alloc =
  match Allocation.validate alloc with
  | Ok () -> ()
  | Error es -> raise (Violation (context ^ ": " ^ String.concat "; " es))

let allocation_hook = ref default_hook
let set_allocation_hook h = allocation_hook := h

let check_allocation ~context alloc =
  if !enabled then !allocation_hook ~context alloc
