let eps = Eps.assign

(* Fragments a class brings along: its own plus those of its updates. *)
let closure_fragments workload c =
  List.fold_left
    (fun acc u -> Fragment.Set.union acc u.Query_class.fragments)
    c.Query_class.fragments
    (Workload.updates_of workload c)

(* Combined weight of {C} ∪ updates(C), counting each class once. *)
let closure_weight workload c ~rest_weight =
  let updates = Workload.updates_of workload c in
  let update_weight =
    List.fold_left
      (fun acc u ->
        if u.Query_class.id = c.Query_class.id then acc
        else acc +. u.Query_class.weight)
      0. updates
  in
  rest_weight +. update_weight

let sort_key workload c ~rest_weight =
  closure_weight workload c ~rest_weight
  *. Fragment.set_size (closure_fragments workload c)

let allocate (workload : Workload.t) (backend_list : Backend.t list) :
    Allocation.t =
  let alloc = Allocation.create workload backend_list in
  let n = Allocation.num_backends alloc in
  if n = 0 then invalid_arg "Greedy.allocate: no backends";
  let backends = Allocation.backends alloc in
  let load b = backends.(b).Backend.load in
  let current_load = Array.make n 0. in
  let scaled_load = Array.init n load in
  let rest_weight : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c -> Hashtbl.replace rest_weight c.Query_class.id c.Query_class.weight)
    (Workload.all_classes workload);
  let rest c = Hashtbl.find rest_weight c.Query_class.id in
  (* C*: all read classes, plus update classes that overlap no read class
     (Eq. 20) — the rest are dragged in with the reads they overlap. *)
  let explicit =
    workload.Workload.reads
    @ List.filter
        (fun u ->
          not
            (List.exists
               (fun q -> Query_class.overlaps u q)
               workload.Workload.reads))
        workload.Workload.updates
  in
  (* Descending by the weight-times-size key; ties broken by remaining
     weight then by data size (the appendix trace orders (Q1, Q3) when both
     keys are equal but Q1 has more weight left). *)
  let sort cs =
    List.stable_sort
      (fun a b ->
        let ka = sort_key workload a ~rest_weight:(rest a)
        and kb = sort_key workload b ~rest_weight:(rest b) in
        match Stdlib.compare kb ka with
        | 0 -> (
            match Stdlib.compare (rest b) (rest a) with
            | 0 -> Stdlib.compare (Query_class.size b) (Query_class.size a)
            | c -> c)
        | c -> c)
      cs
  in
  let queue = ref (sort explicit) in
  (* Total pinned update weight on a backend. *)
  let pinned_update_weight b =
    List.fold_left
      (fun acc u -> acc +. Allocation.get_assign alloc b u)
      0. workload.Workload.updates
  in
  (* Pin every update class overlapping backend [b]'s data, chasing chained
     overlaps to a fixpoint; returns the update weight newly added. *)
  let pin_updates b =
    let before = pinned_update_weight b in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun u ->
          let frs = Allocation.fragments_of alloc b in
          let overlap =
            not
              (Fragment.Set.is_empty
                 (Fragment.Set.inter u.Query_class.fragments frs))
          in
          if overlap && Allocation.get_assign alloc b u < u.Query_class.weight
          then begin
            Allocation.add_fragments alloc b u.Query_class.fragments;
            Allocation.set_assign alloc b u u.Query_class.weight;
            Hashtbl.replace rest_weight u.Query_class.id 0.;
            changed := true
          end)
        workload.Workload.updates
    done;
    pinned_update_weight b -. before
  in
  let all_full () =
    let rec go b =
      b >= n || (current_load.(b) >= scaled_load.(b) -. eps && go (b + 1))
    in
    go 0
  in
  let difference c b =
    if current_load.(b) >= scaled_load.(b) -. eps then infinity
    else if current_load.(b) <= eps then 0.
    else
      Fragment.set_size
        (Fragment.Set.diff (closure_fragments workload c)
           (Allocation.fragments_of alloc b))
  in
  let continue = ref true in
  while !continue do
    match !queue with
    | [] -> continue := false
    | c :: remaining ->
        (* Line 7–9: when every backend is at capacity, open room in
           proportion to each backend's relative performance. *)
        if all_full () then
          for b = 0 to n - 1 do
            scaled_load.(b) <-
              current_load.(b) +. (load b *. c.Query_class.weight)
          done;
        (* Line 10–17: pick the backend needing the least new data. *)
        let best = ref 0 and best_diff = ref (difference c 0) in
        for b = 1 to n - 1 do
          let d = difference c b in
          if d < !best_diff then begin
            best := b;
            best_diff := d
          end
        done;
        let b = !best in
        (* Line 18–19: install the data and account the update load that is
           new on this backend. *)
        Allocation.add_fragments alloc b (closure_fragments workload c);
        let added_updates = pin_updates b in
        current_load.(b) <- current_load.(b) +. added_updates;
        if Query_class.is_update c then begin
          (* Line 20–23: update classes are placed exactly once. *)
          if current_load.(b) > scaled_load.(b) then
            scaled_load.(b) <- current_load.(b);
          queue := sort remaining
        end
        else begin
          (* Line 24–32: fill the backend with as much read weight as its
             scaled capacity allows. *)
          if current_load.(b) >= scaled_load.(b) -. eps then
            scaled_load.(b) <-
              current_load.(b) +. (load b *. c.Query_class.weight);
          let capacity = scaled_load.(b) -. current_load.(b) in
          let rw = rest c in
          if rw > capacity +. eps then begin
            Hashtbl.replace rest_weight c.Query_class.id (rw -. capacity);
            Allocation.set_assign alloc b c
              (Allocation.get_assign alloc b c +. capacity);
            current_load.(b) <- scaled_load.(b);
            queue := sort (c :: remaining)
          end
          else begin
            Allocation.set_assign alloc b c
              (Allocation.get_assign alloc b c +. rw);
            Hashtbl.replace rest_weight c.Query_class.id 0.;
            current_load.(b) <- current_load.(b) +. rw;
            queue := sort remaining
          end
        end
  done;
  Invariants.check_allocation ~context:"Greedy.allocate" alloc;
  alloc
