let utilizations alloc =
  let backends = Allocation.backends alloc in
  List.init (Array.length backends) (fun b ->
      Allocation.assigned_load alloc b /. backends.(b).Backend.load)

let deviation alloc = Cdbs_util.Stats.relative_deviation (utilizations alloc)

let underloaded alloc =
  let us = utilizations alloc in
  let mean = Cdbs_util.Stats.mean us in
  List.mapi (fun i u -> (i, u)) us
  (* The Eps.weight slack keeps float noise in the utilization sums from
     flagging a perfectly balanced backend (same constant the checker and
     Allocation.validate use for weight sums). *)
  |> List.filter (fun (_, u) -> u < (0.95 *. mean) -. Eps.weight)
  |> List.map fst
