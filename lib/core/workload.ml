type t = {
  reads : Query_class.t list;
  updates : Query_class.t list;
}

let make ~reads ~updates = { reads; updates }
let all_classes t = t.reads @ t.updates

let fragments t =
  List.fold_left
    (fun acc c -> Fragment.Set.union acc c.Query_class.fragments)
    Fragment.Set.empty (all_classes t)

let updates_of t c =
  List.filter (fun u -> Query_class.overlaps u c) t.updates

let update_weight_of t c =
  List.fold_left
    (fun acc u -> acc +. u.Query_class.weight)
    0. (updates_of t c)

let total_weight t =
  List.fold_left
    (fun acc c -> acc +. c.Query_class.weight)
    0. (all_classes t)

let normalize t =
  let total = total_weight t in
  if total <= 0. then t
  else
    let scale c =
      { c with Query_class.weight = c.Query_class.weight /. total }
    in
    { reads = List.map scale t.reads; updates = List.map scale t.updates }

let validate t =
  let classes = all_classes t in
  let ids = List.map (fun c -> c.Query_class.id) classes in
  if List.length (List.sort_uniq String.compare ids) <> List.length ids then
    Error "duplicate query class ids"
  else if List.exists (fun c -> c.Query_class.weight < 0.) classes then
    Error "negative class weight"
  else if
    List.exists
      (fun c -> Fragment.Set.is_empty c.Query_class.fragments)
      classes
  then Error "query class with empty fragment set"
  else if List.exists Query_class.is_update t.reads then
    Error "update class listed among reads"
  else if List.exists (fun c -> not (Query_class.is_update c)) t.updates then
    Error "read class listed among updates"
  else if abs_float (total_weight t -. 1.) > Eps.weight then
    Error (Printf.sprintf "weights sum to %f, expected 1" (total_weight t))
  else Ok ()

let find t id =
  List.find_opt (fun c -> c.Query_class.id = id) (all_classes t)

let pp ppf t =
  Fmt.pf ppf "@[<v>reads:@,%a@,updates:@,%a@]"
    Fmt.(list Query_class.pp)
    t.reads
    Fmt.(list Query_class.pp)
    t.updates
