(** Flat-array allocation core for massive instances.

    The legacy {!Allocation} keeps a [Fragment.Set.t] per backend and
    routes every lookup through class ids — fine for the paper's
    tens-of-fragments examples, hopeless at 10⁵–10⁷ fragments.  This
    module compiles a workload into an immutable {!instance} (CSR
    class→footprint and fragment→update-class tables over integer
    fragment ids) and represents an allocation as per-backend bitsets
    plus a dense assignment matrix, so the greedy and memetic hot paths
    run as indexed loops with reusable scratch buffers.

    Conversions {!of_allocation}/{!to_allocation} bridge to the legacy
    representation so every existing caller, checker and test keeps
    working; {!greedy} is an exact port of {!Greedy.allocate} (same
    placement order, same result up to float tie-breaks that are
    measure-zero for generic weights). *)

(** {1 Compiled instance} *)

type class_spec = {
  cs_id : string;
  cs_update : bool;
  cs_weight : float;
  cs_frags : int array;  (** fragment indices; deduped by the builder *)
}

type instance = {
  backends : Backend.t array;
  loads : float array;  (** relative capacity share per backend *)
  frag_size : float array;
  frags : Fragment.t array option;
      (** materialized fragments, needed only for {!to_allocation} *)
  n_frags : int;
  n_classes : int;
  kind : Bytes.t;  (** per class: ['\000'] read, ['\001'] update *)
  class_id : string array;
  class_weight : float array;
  class_off : int array;  (** footprint CSR offsets, length n_classes+1 *)
  class_frag : int array;  (** footprint CSR, sorted per class *)
  class_size : float array;
  read_idx : int array;  (** read class indices, workload order *)
  upd_idx : int array;  (** update class indices, workload order *)
  frag_upd_off : int array;  (** fragment→update CSR offsets *)
  frag_upd : int array;
  ext_used : bool ref;
      (** one-shot claim on the capacity slack of the class arrays; set
          by the first in-place {!Incremental} extension of this
          instance so a second extension of the same base falls back to
          copying *)
}

val class_capacity : int -> int
(** Physical length of the class-indexed arrays for a logical class
    count: ~12.5% slack plus a constant, reserved for in-place
    extension. *)

val make_instance :
  ?frags:Fragment.t array ->
  backends:Backend.t array ->
  frag_size:float array ->
  class_spec array ->
  instance

val is_update : instance -> int -> bool
val iter_footprint : instance -> int -> (int -> unit) -> unit

val synthetic :
  ?materialize:bool ->
  rng:Cdbs_util.Rng.t ->
  fragments:int ->
  reads:int ->
  updates:int ->
  backends:int ->
  unit ->
  instance
(** Random massive instance: contiguous range footprints (reads span up
    to 8 fragments, updates up to 4), weights normalized to sum 1 with
    roughly 4:1 read:update mass.  With [materialize] the [Fragment.t]
    array is built too (needed for {!to_allocation} / migration plans);
    off by default to keep 10⁶-fragment instances cheap. *)

(** {1 Allocation state} *)

(** Bitsets over fragment indices (bytes, 8 bits each). *)
module Bits : sig
  type t = Bytes.t

  val create : int -> t
  val get : t -> int -> bool
  val set : t -> int -> unit
  val reset : t -> unit
  val iter : (int -> unit) -> t -> unit
end

type t = {
  inst : instance;
  b_alive : bool array;  (** retired backends stay in place, flagged dead *)
  c_alive : bool array;  (** retired classes are tombstoned *)
  held : Bits.t array;  (** per backend, over fragments *)
  assign : float array array;  (** backends × classes *)
  load : float array;  (** cached row sums of [assign] *)
  stored : float array;  (** cached size of [held] *)
  upd_pins : int array;  (** per update class: backends where pinned *)
  active : int Cdbs_util.Vec.t array;
      (** per backend: read classes possibly assigned (may hold stale
          entries; compacted on prune) *)
  pinned : int Cdbs_util.Vec.t array;
      (** per backend: update classes possibly pinned *)
  scratch_bits : Bits.t;
  scratch_stack : int Cdbs_util.Vec.t;
}
(** Treat the fields as read-only outside [Cdbs_core]; mutate through the
    operations below so the cached sums and membership vectors stay
    consistent. *)

val create : instance -> t
(** Empty allocation (no data, no assignment). *)

val copy : t -> t
val num_backends : t -> int
val holds : t -> int -> int -> bool
val overlaps : t -> int -> int -> bool
val replica_count : t -> int -> int

val scale : t -> float
(** Eqs. 14–15 over alive backends, floored at 1. *)

val total_stored : t -> float
val cost : t -> float * float
val refresh : t -> unit

(** {1 Moves} *)

val install_fragment : t -> int -> int -> unit
(** Queue-installing primitive; pair with {!settle} to restore Eq. 10. *)

val settle : ?on_pin:(int -> unit) -> t -> int -> float
(** Chase the update-closure fixpoint on one backend for every fragment
    installed since the last settle; returns the newly pinned update
    weight. *)

val install_class : ?on_pin:(int -> unit) -> t -> int -> int -> float
val add_assign : t -> int -> int -> float -> unit
val prune_backend : t -> int -> unit
val transfer : t -> int -> b1:int -> b2:int -> amount:float -> unit

(** {1 Algorithms} *)

val greedy : instance -> t
(** Dense port of {!Greedy.allocate}: lazy max-heap over the
    weight×size keys instead of a full re-sort per placement, bitset
    difference scans instead of set operations. *)

val mutate : Cdbs_util.Rng.t -> t -> t
(** Dense port of the memetic mutation move (1–3 random read-class
    transfers followed by a local prune). *)

(** {1 Conversions} *)

val of_allocation : Allocation.t -> t
val to_allocation : t -> Allocation.t
(** @raise Invalid_argument when the instance has no materialized
    fragments, or (for [to_allocation]) always when fragments are absent. *)
