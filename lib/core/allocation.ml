type t = {
  backends : Backend.t array;
  workload : Workload.t;
  classes : Query_class.t array;
  index : (string, int) Hashtbl.t;  (** class id -> index into [classes] *)
  fragments : Fragment.Set.t array;  (** per backend *)
  assign : float array array;  (** backends x classes *)
}

let create workload backend_list =
  let backends = Array.of_list backend_list in
  let classes =
    Array.of_list (workload.Workload.reads @ workload.Workload.updates)
  in
  let index = Hashtbl.create (Array.length classes) in
  Array.iteri
    (fun i c -> Hashtbl.replace index c.Query_class.id i)
    classes;
  {
    backends;
    workload;
    classes;
    index;
    fragments = Array.make (Array.length backends) Fragment.Set.empty;
    assign =
      Array.make_matrix (Array.length backends) (Array.length classes) 0.;
  }

let copy t =
  {
    t with
    fragments = Array.copy t.fragments;
    assign = Array.map Array.copy t.assign;
  }

let blit ~src ~dst =
  if Array.length src.backends <> Array.length dst.backends
     || Array.length src.classes <> Array.length dst.classes
  then invalid_arg "Allocation.blit: shape mismatch";
  Array.blit src.fragments 0 dst.fragments 0 (Array.length src.fragments);
  Array.iteri (fun b row -> Array.blit row 0 dst.assign.(b) 0 (Array.length row)) src.assign

let backends t = t.backends
let workload t = t.workload
let num_backends t = Array.length t.backends
let classes t = t.classes

let class_index t c =
  match Hashtbl.find_opt t.index c.Query_class.id with
  | Some i -> i
  | None -> invalid_arg ("Allocation: unknown class " ^ c.Query_class.id)

let fragments_of t b = t.fragments.(b)

let holds t b c =
  Fragment.Set.subset c.Query_class.fragments t.fragments.(b)

let get_assign t b c = t.assign.(b).(class_index t c)
let set_assign t b c w = t.assign.(b).(class_index t c) <- w

let add_fragments t b frs =
  t.fragments.(b) <- Fragment.Set.union t.fragments.(b) frs

let assigned_load t b = Array.fold_left ( +. ) 0. t.assign.(b)

let update_weight t b c =
  List.fold_left
    (fun acc u -> acc +. get_assign t b u)
    0.
    (Workload.updates_of t.workload c)

let scale t =
  let s = ref 1. in
  Array.iteri
    (fun b backend ->
      let r = assigned_load t b /. backend.Backend.load in
      if r > !s then s := r)
    t.backends;
  !s

let scaled_load t b =
  let s = scale t in
  t.backends.(b).Backend.load *. if s > 1. then s else 1.

let speedup t = float_of_int (num_backends t) /. scale t

let total_stored t =
  Array.fold_left (fun acc frs -> acc +. Fragment.set_size frs) 0. t.fragments

let overlaps_backend t b (c : Query_class.t) =
  not (Fragment.Set.is_empty (Fragment.Set.inter c.Query_class.fragments t.fragments.(b)))

let ensure_update_closure t =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun u ->
        Array.iteri
          (fun b _ ->
            if overlaps_backend t b u then begin
              if not (holds t b u) then begin
                add_fragments t b u.Query_class.fragments;
                changed := true
              end;
              if get_assign t b u <> u.Query_class.weight then begin
                set_assign t b u u.Query_class.weight;
                changed := true
              end
            end)
          t.backends)
      t.workload.Workload.updates
  done

let prune t =
  (* Remember, per update class, one backend currently carrying it, to fall
     back on when pruning would orphan the class (Eq. 11). *)
  let home u =
    let rec find b =
      if b >= num_backends t then None
      else if get_assign t b u > 0. && holds t b u then Some b
      else find (b + 1)
    in
    find 0
  in
  let update_homes =
    List.map (fun u -> (u, home u)) t.workload.Workload.updates
  in
  (* Keep only fragments needed by assigned read classes. *)
  Array.iteri
    (fun b _ ->
      let needed =
        List.fold_left
          (fun acc c ->
            if get_assign t b c > 0. then
              Fragment.Set.union acc c.Query_class.fragments
            else acc)
          Fragment.Set.empty t.workload.Workload.reads
      in
      t.fragments.(b) <- needed;
      (* Clear update pinnings; the closure below re-establishes them. *)
      List.iter
        (fun u -> set_assign t b u 0.)
        t.workload.Workload.updates)
    t.backends;
  (* Re-home update classes that no longer overlap any backend. *)
  List.iter
    (fun (u, old_home) ->
      let somewhere =
        let rec any b =
          b < num_backends t && (overlaps_backend t b u || any (b + 1))
        in
        any 0
      in
      if not somewhere then begin
        let b =
          match old_home with
          | Some b -> b
          | None ->
              (* Least-loaded backend relative to its capacity. *)
              let best = ref 0 and best_r = ref infinity in
              Array.iteri
                (fun b backend ->
                  let r = assigned_load t b /. backend.Backend.load in
                  if r < !best_r then begin
                    best := b;
                    best_r := r
                  end)
                t.backends;
              !best
        in
        add_fragments t b u.Query_class.fragments
      end)
    update_homes;
  ensure_update_closure t

let validate t =
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  (* Eq. 8: positive assignment implies the data is present. *)
  Array.iteri
    (fun b _ ->
      Array.iteri
        (fun k w ->
          let c = t.classes.(k) in
          if w < -.Eps.assign then err "negative assignment of %s on B%d" c.Query_class.id (b + 1);
          if w > Eps.assign && not (holds t b c) then
            err "class %s assigned to B%d without its fragments"
              c.Query_class.id (b + 1))
        t.assign.(b))
    t.backends;
  (* Eq. 9: read classes fully assigned. *)
  List.iter
    (fun c ->
      let total = ref 0. in
      Array.iteri (fun b _ -> total := !total +. get_assign t b c) t.backends;
      if abs_float (!total -. c.Query_class.weight) > Eps.weight then
        err "read class %s assigned %.4f of weight %.4f" c.Query_class.id
          !total c.Query_class.weight)
    t.workload.Workload.reads;
  (* Eq. 10: updates pinned wherever their data lives. *)
  List.iter
    (fun u ->
      Array.iteri
        (fun b _ ->
          if overlaps_backend t b u then begin
            if abs_float (get_assign t b u -. u.Query_class.weight) > Eps.assign
            then
              err "update class %s not pinned at full weight on B%d"
                u.Query_class.id (b + 1)
          end
          else if get_assign t b u > Eps.assign then
            err "update class %s assigned to B%d without data"
              u.Query_class.id (b + 1))
        t.backends)
    t.workload.Workload.updates;
  (* Eq. 11: every update class allocated somewhere. *)
  List.iter
    (fun u ->
      let total = ref 0. in
      Array.iteri (fun b _ -> total := !total +. get_assign t b u) t.backends;
      if u.Query_class.weight > 0. && !total < u.Query_class.weight -. Eps.assign
      then err "update class %s nowhere allocated" u.Query_class.id)
    t.workload.Workload.updates;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_load_matrix ppf t =
  let class_ids =
    Array.to_list (Array.map (fun c -> c.Query_class.id) t.classes)
  in
  let width =
    List.fold_left (fun acc id -> max acc (String.length id + 2)) 8 class_ids
  in
  Fmt.pf ppf "@[<v>%8s" "";
  List.iter (fun id -> Fmt.pf ppf "%*s" width id) class_ids;
  Fmt.pf ppf "%9s@," "Overall";
  Array.iteri
    (fun b backend ->
      Fmt.pf ppf "%8s" backend.Backend.name;
      Array.iter
        (fun w -> Fmt.pf ppf "%*.1f%%" (width - 1) (100. *. w))
        t.assign.(b);
      Fmt.pf ppf "%8.1f%%@," (100. *. assigned_load t b))
    t.backends;
  Fmt.pf ppf "@]"

let pp_allocation_matrix ppf t =
  let all_fragments =
    Fragment.Set.elements (Workload.fragments t.workload)
  in
  Fmt.pf ppf "@[<v>%8s" "";
  List.iter (fun f -> Fmt.pf ppf "%12s" (Fragment.name f)) all_fragments;
  Fmt.pf ppf "@,";
  Array.iteri
    (fun b backend ->
      Fmt.pf ppf "%8s" backend.Backend.name;
      List.iter
        (fun f ->
          Fmt.pf ppf "%12d"
            (if Fragment.Set.mem f t.fragments.(b) then 1 else 0))
        all_fragments;
      Fmt.pf ppf "@,")
    t.backends;
  Fmt.pf ppf "@]"
