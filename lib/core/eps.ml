let weight = 1e-6
let assign = 1e-9
let tiny = 1e-12
