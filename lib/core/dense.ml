module Rng = Cdbs_util.Rng
module Vec = Cdbs_util.Vec

let eps = Eps.assign

(* ------------------------------------------------------------------ *)
(* Bitsets                                                             *)
(* ------------------------------------------------------------------ *)

module Bits = struct
  type t = Bytes.t

  let create n = Bytes.make ((n + 7) / 8) '\000'
  let copy = Bytes.copy

  let get t i =
    Char.code (Bytes.unsafe_get t (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set t i =
    let j = i lsr 3 in
    Bytes.unsafe_set t j
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t j) lor (1 lsl (i land 7))))

  let reset t = Bytes.fill t 0 (Bytes.length t) '\000'

  let blit ~src ~dst = Bytes.blit src 0 dst 0 (Bytes.length src)

  (* Iterate set bits of byte [v] at base index [base]. *)
  let iter_byte f base v =
    let rec go v k =
      if v <> 0 then begin
        if v land 1 <> 0 then f (base + k);
        go (v lsr 1) (k + 1)
      end
    in
    go v 0

  let iter f t =
    for j = 0 to Bytes.length t - 1 do
      let v = Char.code (Bytes.unsafe_get t j) in
      if v <> 0 then iter_byte f (j lsl 3) v
    done
end

(* ------------------------------------------------------------------ *)
(* Compiled instance                                                   *)
(* ------------------------------------------------------------------ *)

type class_spec = {
  cs_id : string;
  cs_update : bool;
  cs_weight : float;
  cs_frags : int array;
}

type instance = {
  backends : Backend.t array;
  loads : float array;
  frag_size : float array;
  frags : Fragment.t array option;
  n_frags : int;
  n_classes : int;
  kind : Bytes.t;  (* '\000' read, '\001' update *)
  class_id : string array;
  class_weight : float array;
  class_off : int array;
  class_frag : int array;
  class_size : float array;
  read_idx : int array;
  upd_idx : int array;
  frag_upd_off : int array;
  frag_upd : int array;
  ext_used : bool ref;
}

(* Physical capacity of the class-indexed arrays: ~12.5% slack plus a
   constant, so Incremental.extend_instance can append a small delta in
   place (indices >= n_classes, invisible to states sharing the base
   instance) instead of copying O(classes) arrays.  [ext_used] is the
   one-shot claim on that slack: the first in-place extension of an
   instance takes it; a second extension of the same base must copy. *)
let class_capacity nc = nc + (nc lsr 3) + 16

let is_update inst c = Bytes.get inst.kind c = '\001'

let iter_footprint inst c f =
  for k = inst.class_off.(c) to inst.class_off.(c + 1) - 1 do
    f inst.class_frag.(k)
  done

let make_instance ?frags ~backends ~frag_size specs =
  let nf = Array.length frag_size in
  let nc = Array.length specs in
  (match frags with
  | Some a when Array.length a <> nf ->
      invalid_arg "Dense.make_instance: frags/frag_size length mismatch"
  | _ -> ());
  let cap = class_capacity nc in
  let kind = Bytes.make cap '\000' in
  let class_id = Array.make cap "" in
  let class_weight = Array.make cap 0. in
  let class_off = Array.make (cap + 1) 0 in
  let footprints =
    Array.map
      (fun s ->
        let fs = Array.copy s.cs_frags in
        Array.sort compare fs;
        (* dedup in place *)
        let m = Array.length fs in
        let keep = ref 0 in
        for i = 0 to m - 1 do
          if fs.(i) < 0 || fs.(i) >= nf then
            invalid_arg "Dense.make_instance: fragment index out of range";
          if !keep = 0 || fs.(!keep - 1) <> fs.(i) then begin
            fs.(!keep) <- fs.(i);
            incr keep
          end
        done;
        Array.sub fs 0 !keep)
      specs
  in
  Array.iteri
    (fun c s ->
      if s.cs_weight < 0. then
        invalid_arg "Dense.make_instance: negative class weight";
      if s.cs_update then Bytes.set kind c '\001';
      class_id.(c) <- s.cs_id;
      class_weight.(c) <- s.cs_weight;
      class_off.(c + 1) <- class_off.(c) + Array.length footprints.(c))
    specs;
  let nfoot = class_off.(nc) in
  let class_frag = Array.make (nfoot + (nfoot lsr 3) + 256) 0 in
  let class_size = Array.make cap 0. in
  Array.iteri
    (fun c fp ->
      let base = class_off.(c) in
      Array.iteri (fun i f -> class_frag.(base + i) <- f) fp;
      class_size.(c) <-
        Array.fold_left (fun acc f -> acc +. frag_size.(f)) 0. fp)
    footprints;
  let read_idx = Vec.create () and upd_idx = Vec.create () in
  for c = 0 to nc - 1 do
    if Bytes.get kind c = '\001' then Vec.push upd_idx c
    else Vec.push read_idx c
  done;
  (* fragment -> update classes (counting-sort CSR) *)
  let frag_upd_off = Array.make (nf + 1) 0 in
  Vec.iter
    (fun u ->
      for k = class_off.(u) to class_off.(u + 1) - 1 do
        let f = class_frag.(k) in
        frag_upd_off.(f + 1) <- frag_upd_off.(f + 1) + 1
      done)
    upd_idx;
  for f = 0 to nf - 1 do
    frag_upd_off.(f + 1) <- frag_upd_off.(f + 1) + frag_upd_off.(f)
  done;
  let frag_upd = Array.make frag_upd_off.(nf) 0 in
  let cursor = Array.copy frag_upd_off in
  Vec.iter
    (fun u ->
      for k = class_off.(u) to class_off.(u + 1) - 1 do
        let f = class_frag.(k) in
        frag_upd.(cursor.(f)) <- u;
        cursor.(f) <- cursor.(f) + 1
      done)
    upd_idx;
  {
    backends;
    loads = Array.map (fun b -> b.Backend.load) backends;
    frag_size;
    frags;
    n_frags = nf;
    n_classes = nc;
    kind;
    class_id;
    class_weight;
    class_off;
    class_frag;
    class_size;
    read_idx = Vec.to_array read_idx;
    upd_idx = Vec.to_array upd_idx;
    frag_upd_off;
    frag_upd;
    ext_used = ref false;
  }

(* ------------------------------------------------------------------ *)
(* Allocation state                                                    *)
(* ------------------------------------------------------------------ *)

type t = {
  inst : instance;
  b_alive : bool array;
  c_alive : bool array;
  held : Bits.t array;
  assign : float array array;
  load : float array;
  stored : float array;
  upd_pins : int array;
  active : int Vec.t array;
  pinned : int Vec.t array;
  scratch_bits : Bits.t;
  scratch_stack : int Vec.t;
}

let num_backends t = Array.length t.inst.backends

let create inst =
  let n = Array.length inst.backends in
  (* Class-indexed state arrays mirror the instance's physical capacity
     so an in-place instance extension fits the state too. *)
  let cap = max inst.n_classes (Array.length inst.class_weight) in
  {
    inst;
    b_alive = Array.make n true;
    c_alive = Array.make cap true;
    held = Array.init n (fun _ -> Bits.create inst.n_frags);
    assign = Array.init n (fun _ -> Array.make cap 0.);
    load = Array.make n 0.;
    stored = Array.make n 0.;
    upd_pins = Array.make cap 0;
    active = Array.init n (fun _ -> Vec.create ());
    pinned = Array.init n (fun _ -> Vec.create ());
    scratch_bits = Bits.create inst.n_frags;
    scratch_stack = Vec.create ();
  }

let copy_vec v =
  let v' = Vec.create () in
  Vec.iter (Vec.push v') v;
  v'

let copy t =
  {
    inst = t.inst;
    b_alive = Array.copy t.b_alive;
    c_alive = Array.copy t.c_alive;
    held = Array.map Bits.copy t.held;
    assign = Array.map Array.copy t.assign;
    load = Array.copy t.load;
    stored = Array.copy t.stored;
    upd_pins = Array.copy t.upd_pins;
    active = Array.map copy_vec t.active;
    pinned = Array.map copy_vec t.pinned;
    scratch_bits = Bits.create t.inst.n_frags;
    scratch_stack = Vec.create ();
  }

let holds t b c =
  let ok = ref true in
  iter_footprint t.inst c (fun f -> if not (Bits.get t.held.(b) f) then ok := false);
  !ok

let overlaps t b c =
  let any = ref false in
  iter_footprint t.inst c (fun f -> if Bits.get t.held.(b) f then any := true);
  !any

let scale t =
  let s = ref 1. in
  for b = 0 to num_backends t - 1 do
    if t.b_alive.(b) then begin
      let r = t.load.(b) /. t.inst.loads.(b) in
      if r > !s then s := r
    end
  done;
  !s

let total_stored t =
  let acc = ref 0. in
  for b = 0 to num_backends t - 1 do
    if t.b_alive.(b) then acc := !acc +. t.stored.(b)
  done;
  !acc

let cost t = (scale t, total_stored t)

(* Resync the cached per-backend sums from the ground truth (assign rows
   and held bitsets), using the same summation order the legacy
   [Allocation.assigned_load]/[total_stored] use. *)
let refresh t =
  let inst = t.inst in
  for b = 0 to num_backends t - 1 do
    let acc = ref 0. in
    let row = t.assign.(b) in
    for c = 0 to inst.n_classes - 1 do
      acc := !acc +. row.(c)
    done;
    t.load.(b) <- !acc;
    let st = ref 0. in
    Bits.iter (fun f -> st := !st +. inst.frag_size.(f)) t.held.(b);
    t.stored.(b) <- !st
  done

(* ------------------------------------------------------------------ *)
(* Primitive moves (shared by greedy / memetic / incremental)          *)
(* ------------------------------------------------------------------ *)

(* Install one fragment on [b]; newly-set fragments go on the scratch
   worklist so [settle] can chase the update closure. *)
let install_fragment t b f =
  if not (Bits.get t.held.(b) f) then begin
    Bits.set t.held.(b) f;
    t.stored.(b) <- t.stored.(b) +. t.inst.frag_size.(f);
    Vec.push t.scratch_stack f
  end

(* Drain the worklist: pin every (alive) update class overlapping a newly
   installed fragment, installing its footprint in turn (Eq. 10 fixpoint).
   Returns the update weight newly pinned on [b]. *)
let settle ?on_pin t b =
  let inst = t.inst in
  let added = ref 0. in
  let continue = ref true in
  while !continue do
    match Vec.pop t.scratch_stack with
    | None -> continue := false
    | Some f ->
        for k = inst.frag_upd_off.(f) to inst.frag_upd_off.(f + 1) - 1 do
          let u = inst.frag_upd.(k) in
          let w = inst.class_weight.(u) in
          if t.c_alive.(u) && t.assign.(b).(u) < w then begin
            let old = t.assign.(b).(u) in
            t.assign.(b).(u) <- w;
            t.load.(b) <- t.load.(b) +. (w -. old);
            added := !added +. (w -. old);
            if old <= 0. then begin
              Vec.push t.pinned.(b) u;
              t.upd_pins.(u) <- t.upd_pins.(u) + 1
            end;
            (match on_pin with Some g -> g u | None -> ());
            iter_footprint inst u (fun j -> install_fragment t b j)
          end
        done
  done;
  !added

(* Install class [c]'s footprint (and its update closure) on [b]. *)
let install_class ?on_pin t b c =
  iter_footprint t.inst c (fun f -> install_fragment t b f);
  settle ?on_pin t b

(* Add read assignment, tracking membership in the active vector. *)
let add_assign t b c amount =
  let old = t.assign.(b).(c) in
  if old <= 0. && amount > 0. then Vec.push t.active.(b) c;
  t.assign.(b).(c) <- old +. amount

(* Local prune of one backend: keep only fragments some assigned read
   class here references, re-establish the update closure, and re-home
   update classes the prune orphaned (the dense counterpart of the global
   [Allocation.prune] when only [b] changed). *)
let prune_backend t b =
  let inst = t.inst in
  Bits.reset t.scratch_bits;
  Vec.filter_in_place (fun c -> t.assign.(b).(c) > 0.) t.active.(b);
  Vec.iter
    (fun c -> iter_footprint inst c (fun f -> Bits.set t.scratch_bits f))
    t.active.(b);
  (* Clear update pinnings on b; remember globally orphaned classes. *)
  let orphans = ref [] in
  Vec.iter
    (fun u ->
      if t.assign.(b).(u) > 0. then begin
        t.load.(b) <- t.load.(b) -. t.assign.(b).(u);
        t.assign.(b).(u) <- 0.;
        t.upd_pins.(u) <- t.upd_pins.(u) - 1;
        if t.upd_pins.(u) = 0 then orphans := u :: !orphans
      end)
    t.pinned.(b);
  Vec.clear t.pinned.(b);
  (* held(b) <- needed; rebuild stored; queue kept fragments for re-pin. *)
  Bits.blit ~src:t.scratch_bits ~dst:t.held.(b);
  let st = ref 0. in
  Bits.iter
    (fun f ->
      st := !st +. inst.frag_size.(f);
      Vec.push t.scratch_stack f)
    t.held.(b);
  t.stored.(b) <- !st;
  ignore (settle t b);
  (* Re-home updates that now overlap no backend: [b] was their last
     carrier, so (like the legacy prune) they return to it. *)
  List.iter
    (fun u ->
      if t.upd_pins.(u) = 0 && t.c_alive.(u) then ignore (install_class t b u))
    !orphans

(* Move [amount] of read class [c] from [b1] to [b2], installing the data
   (and update closure) on [b2] and pruning [b1]. *)
let transfer t c ~b1 ~b2 ~amount =
  let a1 = t.assign.(b1).(c) in
  let amount = min amount a1 in
  if amount > 0. && b1 <> b2 && t.b_alive.(b2) then begin
    t.assign.(b1).(c) <- a1 -. amount;
    t.load.(b1) <- t.load.(b1) -. amount;
    ignore (install_class t b2 c);
    add_assign t b2 c amount;
    t.load.(b2) <- t.load.(b2) +. amount;
    prune_backend t b1
  end

(* Number of alive backends holding the class's full footprint. *)
let replica_count t c =
  let n = ref 0 in
  for b = 0 to num_backends t - 1 do
    if t.b_alive.(b) && holds t b c then incr n
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Greedy (dense port of Greedy.allocate)                              *)
(* ------------------------------------------------------------------ *)

(* Lazy max-heap ordered by (key desc, rest desc, size desc, seq asc).
   The sort key of a queued class only ever decreases (its remaining
   weight is the only moving part), so re-pushing stale heads reproduces
   the legacy full re-sort order whenever keys are distinct. *)
module Heap = struct
  type entry = { key : float; hrest : float; hsize : float; seq : int; cls : int }

  type h = { mutable a : entry array; mutable len : int }

  let dummy = { key = 0.; hrest = 0.; hsize = 0.; seq = 0; cls = -1 }
  let create () = { a = Array.make 64 dummy; len = 0 }

  let before x y =
    x.key > y.key
    || (x.key = y.key
        && (x.hrest > y.hrest
            || (x.hrest = y.hrest
                && (x.hsize > y.hsize || (x.hsize = y.hsize && x.seq < y.seq)))))

  let push h e =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && before h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.len && before h.a.(l) h.a.(!best) then best := l;
        if r < h.len && before h.a.(r) h.a.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let tmp = h.a.(!best) in
          h.a.(!best) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !best
        end
      done;
      Some top
    end
end

let greedy inst =
  let t = create inst in
  let n = Array.length inst.backends in
  if n = 0 then invalid_arg "Dense.greedy: no backends";
  let nf = inst.n_frags and nc = inst.n_classes in
  (* --- greedy-only tables ------------------------------------------ *)
  (* Which fragments some read class touches: updates overlapping none of
     them are explicit (Eq. 20). *)
  let frag_has_read = Bits.create nf in
  Array.iter
    (fun c -> iter_footprint inst c (fun f -> Bits.set frag_has_read f))
    inst.read_idx;
  let explicit = Vec.create () in
  Array.iter (fun c -> Vec.push explicit c) inst.read_idx;
  Array.iter
    (fun u ->
      let touches_read = ref false in
      iter_footprint inst u (fun f ->
          if Bits.get frag_has_read f then touches_read := true);
      if not !touches_read then Vec.push explicit u)
    inst.upd_idx;
  let explicit = Vec.to_array explicit in
  let ne = Array.length explicit in
  (* Closure footprint (own fragments plus those of overlapping updates)
     and the static extra update weight, per explicit class. *)
  let ustamp = Array.make nc (-1) and fstamp = Array.make nf (-1) in
  let closure_off = Array.make (ne + 1) 0 in
  let closure_frag = Vec.create () in
  let closure_size = Array.make ne 0. in
  let extra_w = Array.make ne 0. in
  let uvec = Vec.create () in
  Array.iteri
    (fun ei c ->
      Vec.clear uvec;
      iter_footprint inst c (fun f ->
          for k = inst.frag_upd_off.(f) to inst.frag_upd_off.(f + 1) - 1 do
            let u = inst.frag_upd.(k) in
            if ustamp.(u) <> ei then begin
              ustamp.(u) <- ei;
              Vec.push uvec u
            end
          done);
      let size = ref 0. in
      let add_frag f =
        if fstamp.(f) <> ei then begin
          fstamp.(f) <- ei;
          Vec.push closure_frag f;
          size := !size +. inst.frag_size.(f)
        end
      in
      iter_footprint inst c add_frag;
      Vec.iter
        (fun u ->
          if u <> c then extra_w.(ei) <- extra_w.(ei) +. inst.class_weight.(u);
          iter_footprint inst u add_frag)
        uvec;
      closure_size.(ei) <- !size;
      closure_off.(ei + 1) <- Vec.length closure_frag)
    explicit;
  let closure_frag = Vec.to_array closure_frag in
  (* --- the queue ---------------------------------------------------- *)
  let rest = Array.copy inst.class_weight in
  let key ei = (rest.(explicit.(ei)) +. extra_w.(ei)) *. closure_size.(ei) in
  let heap = Heap.create () in
  Array.iteri
    (fun ei c ->
      Heap.push heap
        {
          Heap.key = key ei;
          hrest = rest.(c);
          hsize = inst.class_size.(c);
          seq = ei;
          cls = ei;
        })
    explicit;
  let requeue_seq = ref 0 in
  let requeue ei =
    (* Decreasing negative sequence numbers: a re-queued class beats older
       entries on full ties, mirroring its place at the head of the legacy
       stable sort. *)
    decr requeue_seq;
    Heap.push heap
      {
        Heap.key = key ei;
        hrest = rest.(explicit.(ei));
        hsize = inst.class_size.(explicit.(ei));
        seq = !requeue_seq;
        cls = ei;
      }
  in
  let scaled = Array.copy inst.loads in
  let all_full () =
    let rec go b = b >= n || (t.load.(b) >= scaled.(b) -. eps && go (b + 1)) in
    go 0
  in
  let difference ei b =
    if t.load.(b) >= scaled.(b) -. eps then infinity
    else if t.load.(b) <= eps then 0.
    else begin
      let missing = ref 0. in
      for k = closure_off.(ei) to closure_off.(ei + 1) - 1 do
        let f = closure_frag.(k) in
        if not (Bits.get t.held.(b) f) then
          missing := !missing +. inst.frag_size.(f)
      done;
      !missing
    end
  in
  let on_pin u = rest.(u) <- 0. in
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some e ->
        let ei = e.Heap.cls in
        let c = explicit.(ei) in
        if e.Heap.key <> key ei || e.Heap.hrest <> rest.(c) then requeue ei
        else begin
          let w = inst.class_weight.(c) in
          if all_full () then
            for b = 0 to n - 1 do
              scaled.(b) <- t.load.(b) +. (inst.loads.(b) *. w)
            done;
          let best = ref 0 and best_diff = ref (difference ei 0) in
          for b = 1 to n - 1 do
            let d = difference ei b in
            if d < !best_diff then begin
              best := b;
              best_diff := d
            end
          done;
          let b = !best in
          for k = closure_off.(ei) to closure_off.(ei + 1) - 1 do
            install_fragment t b closure_frag.(k)
          done;
          ignore (settle ~on_pin t b);
          if is_update inst c then begin
            if t.load.(b) > scaled.(b) then scaled.(b) <- t.load.(b)
          end
          else begin
            if t.load.(b) >= scaled.(b) -. eps then
              scaled.(b) <- t.load.(b) +. (inst.loads.(b) *. w);
            let capacity = scaled.(b) -. t.load.(b) in
            let rw = rest.(c) in
            if rw > capacity +. eps then begin
              rest.(c) <- rw -. capacity;
              add_assign t b c capacity;
              t.load.(b) <- scaled.(b);
              requeue ei
            end
            else begin
              add_assign t b c rw;
              rest.(c) <- 0.;
              t.load.(b) <- t.load.(b) +. rw
            end
          end
        end
  done;
  refresh t;
  t

(* ------------------------------------------------------------------ *)
(* Mutation (dense port of Memetic.mutate)                             *)
(* ------------------------------------------------------------------ *)

let mutate rng t =
  let child = copy t in
  let n = num_backends child in
  let reads = t.inst.read_idx in
  if Array.length reads = 0 || n < 2 then child
  else begin
    let sources = Array.make n 0 in
    let attempts = 1 + Rng.int rng 3 in
    for _ = 1 to attempts do
      let c = reads.(Rng.int rng (Array.length reads)) in
      let ns = ref 0 in
      for b = 0 to n - 1 do
        if child.b_alive.(b) && child.assign.(b).(c) > Eps.tiny then begin
          sources.(!ns) <- b;
          incr ns
        end
      done;
      if !ns > 0 then begin
        let b1 = sources.(Rng.int rng !ns) in
        let b2 = Rng.int rng n in
        if b1 <> b2 && child.b_alive.(b2) then begin
          let a1 = child.assign.(b1).(c) in
          let amount = if Rng.bool rng then a1 else Rng.float rng a1 in
          transfer child c ~b1 ~b2 ~amount
        end
      end
    done;
    child
  end

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let of_allocation (alloc : Allocation.t) =
  let workload = Allocation.workload alloc in
  let frag_list = Fragment.Set.elements (Workload.fragments workload) in
  let frags = Array.of_list frag_list in
  let nf = Array.length frags in
  let index : (Fragment.t, int) Hashtbl.t = Hashtbl.create (max 16 nf) in
  Array.iteri (fun i f -> Hashtbl.replace index f i) frags;
  let frag_size = Array.map (fun f -> f.Fragment.size) frags in
  let spec_of (c : Query_class.t) =
    {
      cs_id = c.Query_class.id;
      cs_update = Query_class.is_update c;
      cs_weight = c.Query_class.weight;
      cs_frags =
        Array.of_list
          (List.map
             (fun f -> Hashtbl.find index f)
             (Fragment.Set.elements c.Query_class.fragments));
    }
  in
  let specs =
    Array.of_list (List.map spec_of (Workload.all_classes workload))
  in
  let inst =
    make_instance ~frags ~backends:(Allocation.backends alloc) ~frag_size specs
  in
  let t = create inst in
  let classes = Allocation.classes alloc in
  for b = 0 to num_backends t - 1 do
    Fragment.Set.iter
      (fun f ->
        let i = Hashtbl.find index f in
        Bits.set t.held.(b) i)
      (Allocation.fragments_of alloc b);
    Array.iteri
      (fun c qc ->
        let w = Allocation.get_assign alloc b qc in
        if w > 0. then begin
          t.assign.(b).(c) <- w;
          if is_update inst c then begin
            Vec.push t.pinned.(b) c;
            t.upd_pins.(c) <- t.upd_pins.(c) + 1
          end
          else Vec.push t.active.(b) c
        end)
      classes
  done;
  refresh t;
  t

let to_allocation t =
  let inst = t.inst in
  let frags =
    match inst.frags with
    | Some a -> a
    | None ->
        invalid_arg
          "Dense.to_allocation: instance was built without Fragment.t values"
  in
  let class_of c =
    let fp = ref [] in
    iter_footprint inst c (fun f -> fp := frags.(f) :: !fp);
    let mk = if is_update inst c then Query_class.update else Query_class.read in
    mk inst.class_id.(c) !fp ~weight:inst.class_weight.(c)
  in
  let alive_classes idx =
    Array.to_list idx |> List.filter (fun c -> t.c_alive.(c))
  in
  let workload =
    Workload.make
      ~reads:(List.map class_of (alive_classes inst.read_idx))
      ~updates:(List.map class_of (alive_classes inst.upd_idx))
  in
  let live =
    Array.to_list (Array.init (num_backends t) Fun.id)
    |> List.filter (fun b -> t.b_alive.(b))
  in
  let backend_list =
    List.mapi
      (fun i b ->
        {
          Backend.id = i;
          name = inst.backends.(b).Backend.name;
          load = inst.loads.(b);
        })
      live
  in
  let alloc = Allocation.create workload backend_list in
  List.iteri
    (fun i b ->
      let set = ref Fragment.Set.empty in
      Bits.iter (fun f -> set := Fragment.Set.add frags.(f) !set) t.held.(b);
      Allocation.add_fragments alloc i !set;
      for c = 0 to inst.n_classes - 1 do
        if t.c_alive.(c) && t.assign.(b).(c) <> 0. then
          Allocation.set_assign alloc i
            (Option.get (Workload.find workload inst.class_id.(c)))
            t.assign.(b).(c)
      done)
    live;
  alloc

(* ------------------------------------------------------------------ *)
(* Synthetic massive instances                                         *)
(* ------------------------------------------------------------------ *)

let synthetic ?(materialize = false) ~rng ~fragments ~reads ~updates ~backends
    () =
  if fragments <= 0 || reads <= 0 || backends <= 0 then
    invalid_arg "Dense.synthetic: need positive fragments/reads/backends";
  let frag_size = Array.init fragments (fun _ -> 0.5 +. Rng.float rng 1.5) in
  let span max_span =
    let s = 1 + Rng.int rng (min max_span fragments) in
    let start = Rng.int rng (fragments - s + 1) in
    Array.init s (fun i -> start + i)
  in
  let raw = Array.make (reads + updates) 0. in
  let specs =
    Array.init (reads + updates) (fun i ->
        if i < reads then begin
          raw.(i) <- 0.01 +. Rng.float rng 1.0;
          {
            cs_id = Printf.sprintf "q%d" (i + 1);
            cs_update = false;
            cs_weight = 0.;
            cs_frags = span 8;
          }
        end
        else begin
          raw.(i) <- 0.25 *. (0.01 +. Rng.float rng 1.0);
          {
            cs_id = Printf.sprintf "u%d" (i - reads + 1);
            cs_update = true;
            cs_weight = 0.;
            cs_frags = span 4;
          }
        end)
  in
  let total = Array.fold_left ( +. ) 0. raw in
  let specs =
    Array.mapi (fun i s -> { s with cs_weight = raw.(i) /. total }) specs
  in
  let frags =
    if not materialize then None
    else
      Some
        (Array.init fragments (fun i ->
             Fragment.range "t" "k" ~lo:(float_of_int i)
               ~hi:(float_of_int (i + 1))
               ~size:frag_size.(i)))
  in
  make_instance ?frags
    ~backends:(Array.of_list (Backend.homogeneous backends))
    ~frag_size specs
