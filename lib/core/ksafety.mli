(** K-safe allocation (paper Appendix C, Algorithms 3–4).

    With k-safety the cluster tolerates the loss of any k backends without
    data loss or service interruption: every query class is allocated to at
    least k+1 backends (so each query can still execute locally after k
    failures), and consequently every fragment lives on at least k+1 nodes.
    Replicated query-class copies carry zero read weight — they are standby
    capacity — but replicated update classes do add update work. *)

val allocate : k:int -> Workload.t -> Backend.t list -> Allocation.t
(** Greedy allocation with the k-safety extension (Algorithm 4): after the
    base first-fit pass, under-replicated classes are re-enqueued as
    zero-weight replicas that must land on backends not already holding
    them.  @raise Invalid_argument when [k + 1] exceeds the backend count. *)

val replicate_fragments : k:int -> Allocation.t -> unit
(** Fragment-level k-safety for read-only data (Eq. 46): place additional
    copies of any fragment stored fewer than k+1 times, round-robin over
    the emptiest backends.  In-place; re-establishes the update closure. *)

val class_replica_count : Allocation.t -> Query_class.t -> int
(** Number of backends holding all of the class's fragments. *)

val is_k_safe : k:int -> Allocation.t -> bool
(** Whether every query class of the workload is served by at least k+1
    backends. *)

val survives : Allocation.t -> failed:int list -> bool
(** Whether every query class can still be processed locally by some
    surviving backend after the listed backends fail. *)

val effective_k : ?failed:int list -> Allocation.t -> int
(** The k-safety degree actually in force: the minimum over query classes
    of (surviving replicas - 1), restricted to backends outside [failed].
    [-1] means some class is not served at all; an allocation built with
    {!allocate}[ ~k] reports [k] while every backend is up, and degrades by
    one per failed replica holder.  With an empty workload it is the
    surviving backend count minus 1. *)

val repair : k:int -> failed:int list -> Allocation.t -> Fragment.Set.t array
(** Restore [effective_k ~failed] to at least [k] by re-replicating every
    under-replicated class onto surviving backends (Algorithm 4's placement
    rule, restricted to non-failed nodes), in place.  Returns the fragments
    each backend gained — the copy obligations a controller must ship to
    materialize the repair (entries for failed backends become due when the
    node rejoins).  @raise Invalid_argument when [k + 1] exceeds the number
    of surviving backends. *)
