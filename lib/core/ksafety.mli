(** K-safe allocation (paper Appendix C, Algorithms 3–4).

    With k-safety the cluster tolerates the loss of any k backends without
    data loss or service interruption: every query class is allocated to at
    least k+1 backends (so each query can still execute locally after k
    failures), and consequently every fragment lives on at least k+1 nodes.
    Replicated query-class copies carry zero read weight — they are standby
    capacity — but replicated update classes do add update work.

    With a {!Topology} the guarantee extends to {e correlated} failures:
    replica count alone is worthless when all k+1 copies share a rack that
    loses power.  Domain-aware placement additionally spreads each class's
    replicas over [min (k+1)] and the number of zones that still have a
    live backend, so losing any single fault domain leaves every class
    served. *)

val allocate :
  ?topology:Topology.t -> k:int -> Workload.t -> Backend.t list ->
  Allocation.t
(** Greedy allocation with the k-safety extension (Algorithm 4): after the
    base first-fit pass, under-replicated classes are re-enqueued as
    zero-weight replicas that must land on backends not already holding
    them.

    With [topology], placement is fault-domain aware: candidate backends in
    zones not yet holding a replica of the class are preferred outright
    (the spread key dominates the data-movement key), and a final pass adds
    replicas — restricted to uncovered zones — until every class spans
    [min (k+1, zones)] fault domains.  The spread pass may push a class
    above k+1 copies when the first k+1 landed in fewer zones.

    @raise Invalid_argument when [k + 1] exceeds the backend count, or when
    [topology] does not cover exactly the given backends. *)

val replicate_fragments : k:int -> Allocation.t -> unit
(** Fragment-level k-safety for read-only data (Eq. 46): place additional
    copies of any fragment stored fewer than k+1 times, round-robin over
    the emptiest backends.  In-place; re-establishes the update closure. *)

val class_replica_count : Allocation.t -> Query_class.t -> int
(** Number of backends holding all of the class's fragments. *)

val class_holders : ?failed:int list -> Allocation.t -> Query_class.t -> int list
(** The backends holding all of the class's fragments, ascending,
    excluding [failed]. *)

val class_zone_spread :
  ?failed:int list -> topology:Topology.t -> Allocation.t ->
  Query_class.t -> int
(** Number of distinct fault domains the class's surviving replicas span. *)

val spread_ok :
  ?failed:int list -> topology:Topology.t -> k:int -> Allocation.t -> bool
(** Whether every class's surviving replicas span at least
    [min (k+1, zones with a surviving backend)] fault domains — the
    domain-spread analogue of {!is_k_safe}.  This is the predicate a
    controller checks before declaring a repair unnecessary: replica
    {e count} can be fine while every copy sits in one zone. *)

val is_k_safe : k:int -> Allocation.t -> bool
(** Whether every query class of the workload is served by at least k+1
    backends. *)

val survives : Allocation.t -> failed:int list -> bool
(** Whether every query class can still be processed locally by some
    surviving backend after the listed backends fail. *)

val effective_k : ?failed:int list -> Allocation.t -> int
(** The k-safety degree actually in force: the minimum over query classes
    of (surviving replicas - 1), restricted to backends outside [failed].
    [-1] means some class is not served at all; an allocation built with
    {!allocate}[ ~k] reports [k] while every backend is up, and degrades by
    one per failed replica holder.  With an empty workload it is the
    surviving backend count minus 1. *)

val repair :
  ?topology:Topology.t -> k:int -> failed:int list -> Allocation.t ->
  Fragment.Set.t array
(** Restore [effective_k ~failed] to at least [k] by re-replicating every
    under-replicated class onto surviving backends (Algorithm 4's placement
    rule, restricted to non-failed nodes), in place.  Returns the fragments
    each backend gained — the copy obligations a controller must ship to
    materialize the repair (entries for failed backends become due when the
    node rejoins).

    With [topology], the repair also restores {e spread}: after the count
    pass, classes whose surviving replicas span fewer than
    [min (k+1, zones with a surviving backend)] domains gain replicas in
    uncovered zones, so the post-repair allocation satisfies {!spread_ok}
    [~failed].

    @raise Invalid_argument when [k + 1] exceeds the number of surviving
    backends, or when [topology] does not cover exactly the allocation's
    backends. *)
