(** Shared floating-point tolerances.

    Every weight-sum, assignment and load comparison in the allocation
    model, the algorithms and the static checker uses one of these three
    constants.  Keeping them in a single module prevents the checker and
    the code it verifies from drifting apart: a looser tolerance in
    [Allocation.validate] than in [Cdbs_analysis.Check_allocation] would
    make the checker reject allocations the model itself accepts. *)

val weight : float
(** Tolerance for sums of class weights (Eqs. 9, 11 and workload
    normalization): absolute drift accumulated over many additions. *)

val assign : float
(** Tolerance for a single assignment value (Eqs. 8, 10): distinguishes a
    genuinely positive share from float noise. *)

val tiny : float
(** Strictest threshold — "is this share exactly zero": used by the local
    searches when deciding whether a class still sits on a backend. *)
