module Vec = Cdbs_util.Vec
module Bits = Dense.Bits

(* ------------------------------------------------------------------ *)
(* Delta taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

type delta =
  | Reweight of { cls : int; weight : float }
  | Add_read of { id : string; weight : float; frags : int array }
  | Add_update of { id : string; weight : float; frags : int array }
  | Retire_class of { cls : int }
  | Add_backend of { name : string; capacity : float }
  | Retire_backend of { backend : int }

type stats = {
  touched_classes : int;
  moved_fragments : int;
  moved_mb : float;
  dropped_fragments : int;
  dropped_mb : float;
  rebalance_fragments : int;
  moves : (int * int * int option) array;
}

(* ------------------------------------------------------------------ *)
(* Instance extension                                                  *)
(* ------------------------------------------------------------------ *)

let sorted_dedup nf frags =
  let fs = Array.copy frags in
  Array.sort compare fs;
  let keep = ref 0 in
  for i = 0 to Array.length fs - 1 do
    if fs.(i) < 0 || fs.(i) >= nf then
      invalid_arg "Incremental: fragment index out of range";
    if !keep = 0 || fs.(!keep - 1) <> fs.(i) then begin
      fs.(!keep) <- fs.(i);
      incr keep
    end
  done;
  Array.sub fs 0 !keep

(* Extend the instance with the delta: classes appended, weights
   overridden, backends appended, capacity shares renormalized over the
   backends that remain alive.

   The class arrays are appended IN PLACE whenever this instance still
   owns its capacity slack (see [Dense.class_capacity] / [ext_used]):
   appends touch only indices >= n_classes, which states sharing the
   base instance never read, and reweights are within-bounds writes the
   (consumed) input is expected to observe.  When the slack is spent or
   exhausted the arrays are copied with geometric growth.  The
   fragment->update CSR is rebuilt only when update classes were added;
   retired classes stay in it and are gated by [c_alive] at settle
   time, exactly as before the delta. *)
let extend_instance (inst : Dense.instance) ~reweights ~added ~added_backends
    ~alive_caps =
  let open Dense in
  let nf = inst.n_frags in
  let nc = inst.n_classes and n = Array.length inst.backends in
  let nc' = nc + Array.length added in
  let n' = n + Array.length added_backends in
  let footprints = Array.map (fun (_, _, _, fp) -> sorted_dedup nf fp) added in
  let extra_foot =
    Array.fold_left (fun acc fp -> acc + Array.length fp) 0 footprints
  in
  let need_foot = inst.class_off.(nc) + extra_foot in
  let in_place =
    (not !(inst.ext_used))
    && nc' <= Array.length inst.class_weight
    && nc' <= Array.length inst.class_id
    && nc' <= Array.length inst.class_size
    && nc' < Array.length inst.class_off
    && nc' <= Bytes.length inst.kind
    && need_foot <= Array.length inst.class_frag
  in
  let kind, class_id, class_weight, class_off, class_frag, class_size =
    if in_place then begin
      inst.ext_used := true;
      (* Added-class slots (indices >= nc) are invisible to the old
         instance, so those arrays may be reused — but a reweight writes
         to a slot the old instance still reads.  [Dense.copy] shares
         the instance, so mutating it here would corrupt the copy's
         siblings (the pre-delta allocation the caller kept): reweights
         get a fresh weight array. *)
      let class_weight =
        if reweights = [] then inst.class_weight
        else Array.copy inst.class_weight
      in
      ( inst.kind, inst.class_id, class_weight, inst.class_off,
        inst.class_frag, inst.class_size )
    end
    else begin
      let cap = max (class_capacity nc') (2 * Array.length inst.class_weight) in
      let kind = Bytes.make cap '\000' in
      Bytes.blit inst.kind 0 kind 0 nc;
      let class_id = Array.make cap "" in
      Array.blit inst.class_id 0 class_id 0 nc;
      let class_weight = Array.make cap 0. in
      Array.blit inst.class_weight 0 class_weight 0 nc;
      let class_off = Array.make (cap + 1) 0 in
      Array.blit inst.class_off 0 class_off 0 (nc + 1);
      let fcap =
        max
          (need_foot + (need_foot lsr 3) + 256)
          (2 * Array.length inst.class_frag)
      in
      let class_frag = Array.make fcap 0 in
      Array.blit inst.class_frag 0 class_frag 0 inst.class_off.(nc);
      let class_size = Array.make cap 0. in
      Array.blit inst.class_size 0 class_size 0 nc;
      (kind, class_id, class_weight, class_off, class_frag, class_size)
    end
  in
  List.iter (fun (c, _w0, w1) -> class_weight.(c) <- w1) reweights;
  Array.iteri
    (fun i (id, upd, w, _) ->
      let c = nc + i in
      class_id.(c) <- id;
      class_weight.(c) <- w;
      Bytes.set kind c (if upd then '\001' else '\000');
      class_off.(c + 1) <- class_off.(c) + Array.length footprints.(i);
      let base = class_off.(c) in
      Array.iteri (fun j f -> class_frag.(base + j) <- f) footprints.(i);
      class_size.(c) <-
        Array.fold_left (fun acc f -> acc +. inst.frag_size.(f)) 0.
          footprints.(i))
    added;
  let new_reads = Vec.create () and new_upds = Vec.create () in
  Array.iteri
    (fun i (_, upd, _, _) ->
      if upd then Vec.push new_upds (nc + i) else Vec.push new_reads (nc + i))
    added;
  let read_idx =
    if Vec.length new_reads = 0 then inst.read_idx
    else Array.append inst.read_idx (Vec.to_array new_reads)
  and upd_idx =
    if Vec.length new_upds = 0 then inst.upd_idx
    else Array.append inst.upd_idx (Vec.to_array new_upds)
  in
  let backends = Array.make n' inst.backends.(0) in
  Array.blit inst.backends 0 backends 0 n;
  Array.iteri
    (fun j (name, _) ->
      backends.(n + j) <- { Backend.id = n + j; name; load = 0. })
    added_backends;
  (* Renormalize capacity shares over alive backends (retired ones keep
     their stale share; it is never read). *)
  let loads = Array.make n' 0. in
  Array.blit inst.loads 0 loads 0 n;
  let mean_cap =
    let total = ref 0. and cnt = ref 0 in
    Array.iter
      (fun cap ->
        if cap > 0. then begin
          total := !total +. cap;
          incr cnt
        end)
      alive_caps;
    if !cnt = 0 then 1. else !total /. float_of_int !cnt
  in
  let caps = Array.make n' 0. in
  Array.blit alive_caps 0 caps 0 n;
  Array.iteri
    (fun j (_, capacity) -> caps.(n + j) <- capacity *. mean_cap)
    added_backends;
  let total_cap = Array.fold_left ( +. ) 0. caps in
  if total_cap > 0. then
    Array.iteri
      (fun b cap -> if cap > 0. then loads.(b) <- cap /. total_cap)
      caps;
  Array.iteri (fun b l -> backends.(b) <- { backends.(b) with Backend.load = l })
    loads;
  let frag_upd_off, frag_upd =
    if Vec.length new_upds = 0 then (inst.frag_upd_off, inst.frag_upd)
    else begin
      let off = Array.make (nf + 1) 0 in
      Array.iter
        (fun u ->
          for k = class_off.(u) to class_off.(u + 1) - 1 do
            let f = class_frag.(k) in
            off.(f + 1) <- off.(f + 1) + 1
          done)
        upd_idx;
      for f = 0 to nf - 1 do
        off.(f + 1) <- off.(f + 1) + off.(f)
      done;
      let fu = Array.make off.(nf) 0 in
      let cursor = Array.copy off in
      Array.iter
        (fun u ->
          for k = class_off.(u) to class_off.(u + 1) - 1 do
            let f = class_frag.(k) in
            fu.(cursor.(f)) <- u;
            cursor.(f) <- cursor.(f) + 1
          done)
        upd_idx;
      (off, fu)
    end
  in
  {
    inst with
    backends;
    loads;
    n_classes = nc';
    kind;
    class_id;
    class_weight;
    class_off;
    class_frag;
    class_size;
    read_idx;
    upd_idx;
    frag_upd_off;
    frag_upd;
    ext_used = ref false;
  }

(* Widen the state onto the extended instance, CONSUMING the input: the
   assign rows, held bitsets and membership vectors are reused by the
   result, the slack region for appended classes is re-zeroed, and only
   the small per-backend outer arrays are rebuilt when backends were
   added.  O(backends + appended classes x backends), no O(fragments)
   or O(classes) copies on the common path. *)
let extend_state (t : Dense.t) (inst : Dense.instance) : Dense.t =
  let open Dense in
  let n = Array.length t.inst.backends and nc = t.inst.n_classes in
  let n' = Array.length inst.backends and nc' = inst.n_classes in
  let row_cap = if n = 0 then 0 else Array.length t.assign.(0) in
  let t =
    if
      nc' <= Array.length t.c_alive
      && nc' <= Array.length t.upd_pins
      && (n = 0 || nc' <= row_cap)
    then t
    else begin
      let cap = max (class_capacity nc') (2 * max row_cap nc') in
      let c_alive = Array.make cap true in
      Array.blit t.c_alive 0 c_alive 0 nc;
      let upd_pins = Array.make cap 0 in
      Array.blit t.upd_pins 0 upd_pins 0 nc;
      let assign =
        Array.map
          (fun row ->
            let row' = Array.make cap 0. in
            Array.blit row 0 row' 0 nc;
            row')
          t.assign
      in
      { t with c_alive; upd_pins; assign }
    end
  in
  (* Appended-class slots get explicit defaults (never rely on the slack
     still holding its creation-time zeros). *)
  for c = nc to nc' - 1 do
    t.c_alive.(c) <- true;
    t.upd_pins.(c) <- 0
  done;
  if nc' > nc then
    for b = 0 to n - 1 do
      Array.fill t.assign.(b) nc (nc' - nc) 0.
    done;
  if n' = n then { t with inst }
  else begin
    let row_cap =
      if n = 0 then class_capacity nc' else Array.length t.assign.(0)
    in
    let b_alive = Array.make n' true in
    Array.blit t.b_alive 0 b_alive 0 n;
    let load = Array.make n' 0. in
    Array.blit t.load 0 load 0 n;
    let stored = Array.make n' 0. in
    Array.blit t.stored 0 stored 0 n;
    {
      inst;
      b_alive;
      c_alive = t.c_alive;
      held =
        Array.init n' (fun b ->
            if b < n then t.held.(b) else Bits.create inst.n_frags);
      assign =
        Array.init n' (fun b ->
            if b < n then t.assign.(b) else Array.make row_cap 0.);
      load;
      stored;
      upd_pins = t.upd_pins;
      active =
        Array.init n' (fun b -> if b < n then t.active.(b) else Vec.create ());
      pinned =
        Array.init n' (fun b -> if b < n then t.pinned.(b) else Vec.create ());
      scratch_bits = t.scratch_bits;
      scratch_stack = t.scratch_stack;
    }
  end

(* ------------------------------------------------------------------ *)
(* Repair                                                              *)
(* ------------------------------------------------------------------ *)

let n_alive (st : Dense.t) =
  let n = ref 0 in
  Array.iter (fun a -> if a then incr n) st.Dense.b_alive;
  !n

let missing_mb (st : Dense.t) b c =
  let acc = ref 0. in
  Dense.iter_footprint st.Dense.inst c (fun f ->
      if not (Bits.get st.Dense.held.(b) f) then
        acc := !acc +. st.Dense.inst.Dense.frag_size.(f));
  !acc

let rel_load (st : Dense.t) b =
  let cap = st.Dense.inst.Dense.loads.(b) in
  if cap <= 0. then infinity else st.Dense.load.(b) /. cap

(* Pick a destination backend for class [c]: alive, outside [exclude],
   optionally not already a full holder; with a topology, backends in
   zones not yet covered by the class's replicas win outright — then
   least missing data, then least relative load (the Ksafety placement
   key, on dense views). *)
let best_dest (st : Dense.t) ?topology ?(exclude = -1) ?(skip_holders = false) c
    =
  let open Dense in
  let covered_zone =
    match topology with
    | None -> fun _ -> false
    | Some topo ->
        let zones = Array.make (Topology.zones topo) false in
        for b = 0 to num_backends st - 1 do
          if st.b_alive.(b) && holds st b c then
            zones.(Topology.zone_of topo b) <- true
        done;
        fun b -> zones.(Topology.zone_of topo b)
    in
  let best = ref (-1) and best_key = ref (max_int, infinity, infinity) in
  for b = 0 to num_backends st - 1 do
    if st.b_alive.(b) && b <> exclude && not (skip_holders && holds st b c)
    then begin
      let key =
        ((if covered_zone b then 1 else 0), missing_mb st b c, rel_load st b)
      in
      if key < !best_key then begin
        best := b;
        best_key := key
      end
    end
  done;
  !best

let pin_update (st : Dense.t) b u =
  let open Dense in
  let w = st.inst.class_weight.(u) in
  if st.assign.(b).(u) < w then begin
    let old = st.assign.(b).(u) in
    st.assign.(b).(u) <- w;
    st.load.(b) <- st.load.(b) +. (w -. old);
    if old <= 0. then begin
      Vec.push st.pinned.(b) u;
      st.upd_pins.(u) <- st.upd_pins.(u) + 1
    end
  end;
  ignore (install_class st b u)

let repair ?(k = 0) ?topology ?budget ?(balance = false) (t : Dense.t)
    (deltas : delta list) : Dense.t * stats =
  let open Dense in
  let old_inst = t.inst in
  let old_n = Array.length old_inst.backends in
  (* ---- partition the delta ---------------------------------------- *)
  let reweights = ref [] and added = ref [] and retired_classes = ref [] in
  let added_backends = ref [] and retired_backends = ref [] in
  List.iter
    (function
      | Reweight { cls; weight } ->
          if cls < 0 || cls >= old_inst.n_classes then
            invalid_arg "Incremental.repair: class index out of range";
          if weight < 0. then
            invalid_arg "Incremental.repair: negative weight";
          reweights := (cls, weight) :: !reweights
      | Add_read { id; weight; frags } ->
          added := (id, false, weight, frags) :: !added
      | Add_update { id; weight; frags } ->
          added := (id, true, weight, frags) :: !added
      | Retire_class { cls } ->
          if cls < 0 || cls >= old_inst.n_classes then
            invalid_arg "Incremental.repair: class index out of range";
          retired_classes := cls :: !retired_classes
      | Add_backend { name; capacity } ->
          if capacity <= 0. then
            invalid_arg "Incremental.repair: non-positive capacity";
          added_backends := (name, capacity) :: !added_backends
      | Retire_backend { backend } ->
          if backend < 0 || backend >= old_n then
            invalid_arg "Incremental.repair: backend index out of range";
          retired_backends := backend :: !retired_backends)
    deltas;
  let reweights_raw = List.rev !reweights
  and added = Array.of_list (List.rev !added)
  and retired_classes = List.rev !retired_classes
  and added_backends = Array.of_list (List.rev !added_backends)
  and retired_backends = List.rev !retired_backends in
  (* Deduplicate reweights (last write wins) and capture each class's
     pre-delta weight: scaling a read assignment by w1/w0 must see the
     original weight exactly once, or repeated reweights of one class
     compound. *)
  let reweights =
    let seen = Hashtbl.create 16 in
    List.rev reweights_raw
    |> List.filter (fun (c, _) ->
           if Hashtbl.mem seen c then false
           else begin
             Hashtbl.add seen c ();
             true
           end)
    |> List.rev_map (fun (c, w1) -> (c, old_inst.class_weight.(c), w1))
  in
  (* ---- extended instance + widened (consumed) state ----------------- *)
  let alive_caps =
    Array.mapi
      (fun b cap ->
        if t.b_alive.(b) && not (List.mem b retired_backends) then cap else 0.)
      old_inst.loads
  in
  let inst =
    extend_instance old_inst ~reweights ~added ~added_backends ~alive_caps
  in
  let st = extend_state t inst in
  (* Move accounting under in-place mutation: the held bitset of an old
     backend is snapshotted the first time the repair touches it —
     O(touched backends) copies, not O(backends). *)
  let old_alive = Array.sub st.b_alive 0 old_n in
  let snap : Bytes.t option array = Array.make old_n None in
  let touch_held b =
    if b < old_n && snap.(b) = None then
      snap.(b) <- Some (Bytes.copy st.held.(b))
  in
  let prune_allowed = k <= 0 in
  let touched = Bytes.make inst.n_classes '\000' in
  let touch c = Bytes.set touched c '\001' in
  let rebalance_frags = ref 0 in
  (* ---- 1. reweights ------------------------------------------------ *)
  List.iter
    (fun (c, w0, w1) ->
      touch c;
      if Dense.is_update inst c then
        for b = 0 to num_backends st - 1 do
          if st.assign.(b).(c) > 0. then begin
            st.load.(b) <- st.load.(b) +. (w1 -. st.assign.(b).(c));
            st.assign.(b).(c) <- w1
          end
        done
      else begin
        let to_prune = ref [] in
        if w0 > Eps.tiny then
          for b = 0 to num_backends st - 1 do
            let a = st.assign.(b).(c) in
            if a > 0. then begin
              let a' = a *. (w1 /. w0) in
              st.assign.(b).(c) <- a';
              st.load.(b) <- st.load.(b) +. (a' -. a);
              if a' <= 0. then to_prune := b :: !to_prune
            end
          done;
        if prune_allowed then
          List.iter
            (fun b ->
              touch_held b;
              prune_backend st b)
            !to_prune;
        if w0 <= Eps.tiny && w1 > Eps.tiny then begin
          (* Was weightless: behaves like a brand-new read class. *)
          let dest = best_dest st c in
          if dest >= 0 then begin
            touch_held dest;
            ignore (install_class st dest c);
            add_assign st dest c w1;
            st.load.(dest) <- st.load.(dest) +. w1
          end
        end
      end)
    reweights;
  (* ---- 2. retired classes ------------------------------------------ *)
  List.iter
    (fun c ->
      touch c;
      st.c_alive.(c) <- false;
      let to_prune = ref [] in
      for b = 0 to num_backends st - 1 do
        let a = st.assign.(b).(c) in
        if a > 0. then begin
          st.assign.(b).(c) <- 0.;
          st.load.(b) <- st.load.(b) -. a;
          if Dense.is_update inst c then
            st.upd_pins.(c) <- max 0 (st.upd_pins.(c) - 1);
          to_prune := b :: !to_prune
        end
      done;
      if prune_allowed then
        List.iter
          (fun b ->
            touch_held b;
            prune_backend st b)
          !to_prune)
    retired_classes;
  (* ---- 3. retired backends ----------------------------------------- *)
  List.iter
    (fun rb ->
      touch_held rb;
      (* Reads leave first (to holders when possible), then orphaned
         updates are re-homed, then the node's data is dropped. *)
      Vec.filter_in_place (fun c -> st.assign.(rb).(c) > 0.) st.active.(rb);
      Vec.iter
        (fun c ->
          let a = st.assign.(rb).(c) in
          if a > 0. && st.c_alive.(c) then begin
            touch c;
            st.assign.(rb).(c) <- 0.;
            st.load.(rb) <- st.load.(rb) -. a;
            let dest = best_dest st ~exclude:rb c in
            if dest >= 0 then begin
              touch_held dest;
              ignore (install_class st dest c);
              add_assign st dest c a;
              st.load.(dest) <- st.load.(dest) +. a
            end
          end)
        st.active.(rb);
      Vec.clear st.active.(rb);
      Vec.iter
        (fun u ->
          if st.assign.(rb).(u) > 0. then begin
            touch u;
            st.load.(rb) <- st.load.(rb) -. st.assign.(rb).(u);
            st.assign.(rb).(u) <- 0.;
            st.upd_pins.(u) <- st.upd_pins.(u) - 1;
            if st.upd_pins.(u) = 0 && st.c_alive.(u) then begin
              let dest = best_dest st ~exclude:rb u in
              if dest >= 0 then begin
                touch_held dest;
                pin_update st dest u
              end
            end
          end)
        st.pinned.(rb);
      Vec.clear st.pinned.(rb);
      Bits.reset st.held.(rb);
      st.stored.(rb) <- 0.;
      st.load.(rb) <- 0.;
      st.b_alive.(rb) <- false)
    retired_backends;
  (* ---- 4. added classes -------------------------------------------- *)
  Array.iteri
    (fun i (_, upd, w, _) ->
      let c = old_inst.n_classes + i in
      touch c;
      if upd then begin
        let pinned_somewhere = ref false in
        for b = 0 to num_backends st - 1 do
          if st.b_alive.(b) && overlaps st b c then begin
            touch_held b;
            pin_update st b c;
            pinned_somewhere := true
          end
        done;
        if not !pinned_somewhere then begin
          let dest = best_dest st c in
          if dest >= 0 then begin
            touch_held dest;
            pin_update st dest c
          end
        end
      end
      else begin
        let dest = best_dest st c in
        if dest >= 0 then begin
          touch_held dest;
          ignore (install_class st dest c);
          add_assign st dest c w;
          st.load.(dest) <- st.load.(dest) +. w
        end
      end)
    added;
  (* ---- 5. added backends: budget-bounded rebalance ----------------- *)
  let budget_left =
    ref (match budget with Some b -> b | None -> max_int)
  in
  Array.iteri
    (fun j _ ->
      let nb = old_n + j in
      let total_load = ref 0. and total_cap = ref 0. in
      for b = 0 to num_backends st - 1 do
        if st.b_alive.(b) then begin
          total_load := !total_load +. st.load.(b);
          total_cap := !total_cap +. inst.loads.(b)
        end
      done;
      let target =
        if !total_cap <= 0. then 0.
        else !total_load /. !total_cap *. inst.loads.(nb)
      in
      let progress = ref true in
      while !progress && st.load.(nb) < target -. Eps.assign && !budget_left > 0
      do
        progress := false;
        (* Heaviest alive donor, relative to capacity. *)
        let donor = ref (-1) and donor_r = ref (rel_load st nb) in
        for b = 0 to num_backends st - 1 do
          if st.b_alive.(b) && b <> nb && rel_load st b > !donor_r then begin
            donor := b;
            donor_r := rel_load st b
          end
        done;
        if !donor >= 0 then begin
          let d = !donor in
          Vec.filter_in_place (fun c -> st.assign.(d).(c) > 0.) st.active.(d);
          (* Cheapest-to-move read class: most weight per missing MB,
             within the remaining fragment budget. *)
          let best_c = ref (-1) and best_ratio = ref neg_infinity in
          Vec.iter
            (fun c ->
              if st.c_alive.(c) then begin
                let miss = ref 0 in
                Dense.iter_footprint inst c (fun f ->
                    if not (Bits.get st.held.(nb) f) then incr miss);
                if !miss <= !budget_left then begin
                  let ratio =
                    st.assign.(d).(c) /. (missing_mb st nb c +. 1e-9)
                  in
                  if ratio > !best_ratio then begin
                    best_ratio := ratio;
                    best_c := c
                  end
                end
              end)
            st.active.(d);
          if !best_c >= 0 then begin
            let c = !best_c in
            let miss = ref 0 in
            Dense.iter_footprint inst c (fun f ->
                if not (Bits.get st.held.(nb) f) then incr miss);
            let amount = min st.assign.(d).(c) (target -. st.load.(nb)) in
            if amount > Eps.assign then begin
              touch c;
              budget_left := !budget_left - !miss;
              rebalance_frags := !rebalance_frags + !miss;
              st.assign.(d).(c) <- st.assign.(d).(c) -. amount;
              st.load.(d) <- st.load.(d) -. amount;
              ignore (install_class st nb c);
              add_assign st nb c amount;
              st.load.(nb) <- st.load.(nb) +. amount;
              if prune_allowed && st.assign.(d).(c) <= 0. then begin
                touch_held d;
                prune_backend st d
              end;
              progress := true
            end
          end
        end
      done)
    added_backends;
  (* ---- 5b. optional global balance pass ---------------------------- *)
  (* With [balance], shift read weight from the most-loaded alive backend
     to the least-loaded one — installing the missing fragments, within
     the remaining fragment budget — until relative loads are within 5 %
     of each other, the budget runs dry, or no admissible class remains.
     A drift-triggered [Reweight] rescales in place and moves no data, so
     a workload shift concentrated on a hot class's few replicas would
     stay concentrated; this pass is what turns the reweight into extra
     replicas of the hot classes on underloaded backends. *)
  if balance then begin
    let guard = ref (4 * (inst.n_classes + num_backends st)) in
    let continue_ = ref true in
    while !continue_ && !budget_left > 0 && !guard > 0 do
      decr guard;
      continue_ := false;
      let donor = ref (-1) and donor_r = ref neg_infinity in
      let recv = ref (-1) and recv_r = ref infinity in
      for b = 0 to num_backends st - 1 do
        if st.b_alive.(b) && inst.loads.(b) > 0. then begin
          let r = rel_load st b in
          if r > !donor_r then begin
            donor := b;
            donor_r := r
          end;
          if r < !recv_r then begin
            recv := b;
            recv_r := r
          end
        end
      done;
      if
        !donor >= 0 && !recv >= 0 && !donor <> !recv
        && !donor_r > (!recv_r *. 1.05) +. Eps.assign
      then begin
        let d = !donor and nb = !recv in
        Vec.filter_in_place (fun c -> st.assign.(d).(c) > 0.) st.active.(d);
        (* The pairwise equalizing transfer: enough weight that both
           ends meet at the same relative load, capped per class by what
           the donor actually assigns to it. *)
        let cap_d = inst.loads.(d) and cap_n = inst.loads.(nb) in
        let equalize =
          (!donor_r -. !recv_r) /. ((1. /. cap_d) +. (1. /. cap_n))
        in
        (* Pick the class moving the most load, tie-broken by fewer
           missing fragments.  NOT load-per-missing-byte (the new-backend
           fill's key): that prefers zero-copy shifts of already-shared
           classes, which rebalance the model but grow no new replicas —
           the entire point of this pass is to install the overloaded
           (drifted-hot) classes on the underloaded backends. *)
        let best_c = ref (-1) and best_amt = ref 0. in
        let best_miss = ref max_int in
        Vec.iter
          (fun c ->
            if st.c_alive.(c) then begin
              let miss = ref 0 in
              Dense.iter_footprint inst c (fun f ->
                  if not (Bits.get st.held.(nb) f) then incr miss);
              if !miss <= !budget_left then begin
                let amt = min st.assign.(d).(c) equalize in
                if
                  amt > !best_amt +. Eps.assign
                  || (amt > !best_amt -. Eps.assign && !miss < !best_miss)
                then begin
                  best_amt := amt;
                  best_miss := !miss;
                  best_c := c
                end
              end
            end)
          st.active.(d);
        if !best_c >= 0 then begin
          let c = !best_c in
          let miss = ref !best_miss in
          let amount = !best_amt in
          if amount > Eps.assign then begin
            touch c;
            touch_held nb;
            budget_left := !budget_left - !miss;
            rebalance_frags := !rebalance_frags + !miss;
            st.assign.(d).(c) <- st.assign.(d).(c) -. amount;
            st.load.(d) <- st.load.(d) -. amount;
            ignore (install_class st nb c);
            add_assign st nb c amount;
            st.load.(nb) <- st.load.(nb) +. amount;
            if prune_allowed && st.assign.(d).(c) <= 0. then begin
              touch_held d;
              prune_backend st d
            end;
            continue_ := true
          end
        end
      end
    done
  end;
  (* ---- 6. k-safety and spread for the touched cohort --------------- *)
  if k > 0 then begin
    let alive = n_alive st in
    let want = min (k + 1) alive in
    let zones_alive =
      match topology with
      | None -> 0
      | Some topo ->
          let seen = Array.make (Topology.zones topo) false in
          for b = 0 to num_backends st - 1 do
            if st.b_alive.(b) then seen.(Topology.zone_of topo b) <- true
          done;
          Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 seen
    in
    for c = 0 to inst.n_classes - 1 do
      if Bytes.get touched c = '\001' && st.c_alive.(c) then begin
        let guard = ref (num_backends st) in
        while replica_count st c < want && !guard > 0 do
          decr guard;
          let dest = best_dest st ?topology ~skip_holders:true c in
          if dest >= 0 then begin
            touch_held dest;
            if Dense.is_update inst c then pin_update st dest c
            else ignore (install_class st dest c)
          end
          else guard := 0
        done;
        (match topology with
        | None -> ()
        | Some topo ->
            let spanned () =
              let seen = Array.make (Topology.zones topo) false in
              for b = 0 to num_backends st - 1 do
                if st.b_alive.(b) && holds st b c then
                  seen.(Topology.zone_of topo b) <- true
              done;
              Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 seen
            in
            let want_spread = min (k + 1) zones_alive in
            let guard = ref (num_backends st) in
            while spanned () < want_spread && !guard > 0 do
              decr guard;
              let dest = best_dest st ~topology:topo ~skip_holders:true c in
              if dest >= 0 then begin
                touch_held dest;
                if Dense.is_update inst c then pin_update st dest c
                else ignore (install_class st dest c)
              end
              else guard := 0
            done)
      end
    done
  end;
  refresh st;
  (* ---- stats: bitset diff against the snapshots -------------------- *)
  let moves = Vec.create () in
  let moved = ref 0 and moved_mb = ref 0. in
  let dropped = ref 0 and dropped_mb = ref 0. in
  let old_held b = match snap.(b) with Some h -> h | None -> st.held.(b) in
  let source_of f =
    let rec go b =
      if b >= old_n then None
      else if old_alive.(b) && Bits.get (old_held b) f then Some b
      else go (b + 1)
    in
    go 0
  in
  for b = 0 to num_backends st - 1 do
    if st.b_alive.(b) then begin
      if b >= old_n then
        Bits.iter
          (fun f ->
            incr moved;
            moved_mb := !moved_mb +. inst.frag_size.(f);
            Vec.push moves (f, b, source_of f))
          st.held.(b)
      else
        match snap.(b) with
        | None -> () (* untouched: identical to the input *)
        | Some h ->
            Bits.iter
              (fun f ->
                if not (Bits.get h f) then begin
                  incr moved;
                  moved_mb := !moved_mb +. inst.frag_size.(f);
                  Vec.push moves (f, b, source_of f)
                end)
              st.held.(b)
    end
  done;
  for b = 0 to old_n - 1 do
    if old_alive.(b) then
      match snap.(b) with
      | None -> ()
      | Some h ->
          Bits.iter
            (fun f ->
              if (not st.b_alive.(b)) || not (Bits.get st.held.(b) f) then begin
                incr dropped;
                dropped_mb := !dropped_mb +. old_inst.frag_size.(f)
              end)
            h
  done;
  let touched_classes = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr touched_classes) touched;
  ( st,
    {
      touched_classes = !touched_classes;
      moved_fragments = !moved;
      moved_mb = !moved_mb;
      dropped_fragments = !dropped;
      dropped_mb = !dropped_mb;
      rebalance_fragments = !rebalance_frags;
      moves = Vec.to_array moves;
    } )

(* ------------------------------------------------------------------ *)
(* Random deltas (benchmarks, property tests)                          *)
(* ------------------------------------------------------------------ *)

let random_delta ~rng ?(frac = 0.01) (t : Dense.t) =
  let open Dense in
  let module Rng = Cdbs_util.Rng in
  let inst = t.inst in
  let n_changes =
    max 1 (int_of_float (frac *. float_of_int inst.n_classes))
  in
  List.init n_changes (fun i ->
      match Rng.int rng 4 with
      | 0 | 1 ->
          (* weight shift on a random alive class *)
          let c =
            let c0 = Rng.int rng inst.n_classes in
            let rec find c tries =
              if tries = 0 || t.c_alive.(c) then c
              else find ((c + 1) mod inst.n_classes) (tries - 1)
            in
            find c0 inst.n_classes
          in
          let w = inst.class_weight.(c) *. (0.5 +. Rng.float rng 1.0) in
          Reweight { cls = c; weight = w }
      | 2 ->
          let span = 1 + Rng.int rng (min 6 (max 1 inst.n_frags)) in
          let span = min span inst.n_frags in
          let start = Rng.int rng (inst.n_frags - span + 1) in
          Add_read
            {
              id = Printf.sprintf "q+%d" (i + 1);
              weight = 0.2 /. float_of_int (max 1 inst.n_classes);
              frags = Array.init span (fun j -> start + j);
            }
      | _ ->
          let c = Rng.int rng inst.n_classes in
          if t.c_alive.(c) then Retire_class { cls = c }
          else Reweight { cls = c; weight = inst.class_weight.(c) })
