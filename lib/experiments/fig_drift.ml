module Trace = Cdbs_workloads.Trace
module Spec = Cdbs_workloads.Spec
module Backend = Cdbs_core.Backend
module Ksafety = Cdbs_core.Ksafety
module Allocation = Cdbs_core.Allocation
module Simulator = Cdbs_cluster.Simulator
module Cost_model = Cdbs_cluster.Cost_model
module Request = Cdbs_cluster.Request
module Fault = Cdbs_faults.Fault
module Chaos = Cdbs_faults.Chaos
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule
module Rng = Cdbs_util.Rng
module Res = Cdbs_resilience
module Tel = Cdbs_telemetry
module Loop = Cdbs_control.Loop
module Drift = Cdbs_control.Drift

(* The static allocation is planned for the early-afternoon mix; the
   adversary is the 3 am quiz-batch mix (B-dominant) refusing to recede
   when the model says it should. *)
let assumed_hour = 12.
let night_hour = 5.

type params = {
  seed : int;
  windows : int;
  window_minutes : float;
  nodes : int;
  rate_per_10min : float;
  step_window : int;
      (** window index at which the true mix step-changes to the night
          mix and stays there *)
  deadline_s : float;
  bandwidth_mb_s : float;
  copy_slowdown : float;
  scan_seconds_per_mb : float;
      (** cost-model override: heavier scans make placement (not just
          raw capacity) the bottleneck, as on the paper's real cluster *)
  chaos : bool;  (** add crash/recover + seeded workload-shift chaos *)
  mtbf : float;
  mttr : float;
  shift_mtbf : float;  (** chaos workload-shift inter-arrival *)
  trace_capacity : int;
  control : Loop.config;
}

let control_default =
  {
    Loop.default with
    Loop.detector =
      { Drift.threshold = 1.0; hysteresis = 0.4; cooldown_s = 3600. };
    min_samples = 50.;
    margin = 0.02;
    budget = 64;
    canary_windows = 1;
    half_life_windows = 2.;
    k = 1;
  }

let default =
  {
    seed = 42;
    windows = 16;
    window_minutes = 30.;
    nodes = 4;
    rate_per_10min = 4000.;
    step_window = 4;
    deadline_s = 2.;
    bandwidth_mb_s = 50.;
    copy_slowdown = 0.25;
    scan_seconds_per_mb = 0.3;
    chaos = false;
    mtbf = 7200.;
    mttr = 60.;
    shift_mtbf = 5400.;
    trace_capacity = 8192;
    control = control_default;
  }

(* Same shape at a fraction of the events: shorter windows, lower rate,
   but still past the 2-backend saturation knee so the headline ordering
   is preserved. *)
let smoke =
  {
    default with
    windows = 8;
    window_minutes = 10.;
    rate_per_10min = 2400.;
    step_window = 2;
    control =
      {
        control_default with
        Loop.detector =
          { Drift.threshold = 1.0; hysteresis = 0.4; cooldown_s = 1200. };
        min_samples = 20.;
      };
  }

type window_row = {
  hour : float;
  w_offered : int;
  w_completed : int;
  w_shed : int;
  w_p99_ms : float;
  w_action : string;  (** "", "cutover", "rollback" *)
  w_faults : int;
}

type arm = {
  report : Tel.Slo_report.t;
  rows : window_row list;
  sink : Tel.Sink.t;
}

type result = {
  params : params;
  static_ : arm;
  tuned : arm;
  reallocations : int;
  rollbacks : int;
  commits : int;
  peak_drift : float;
  final_alloc : Allocation.t;  (** the tuned arm's closing allocation *)
  events : int;
  wall_s : float;
  events_per_s : float;
}

let verdict r =
  r.tuned.report.Tel.Slo_report.p99_s <= r.static_.report.Tel.Slo_report.p99_s
  && r.tuned.report.Tel.Slo_report.availability
     >= r.static_.report.Tel.Slo_report.availability

let defenses ~deadline_s =
  Res.Policy.make
    ~admission:
      (Res.Admission.make ~max_depth:64 ~max_pending:(0.8 *. deadline_s) ())
    ~breaker:Res.Breaker.default_config ~hedge:Res.Hedge.default
    ~deadline:(Res.Deadline.make ~budget:deadline_s) ()

let p99_of responses =
  let h = Tel.Histogram.create () in
  List.iter (fun (_, r) -> Tel.Histogram.record h r) responses;
  Tel.Histogram.percentile h 99.

let checked_alloc ~context ~k alloc =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_allocation.check_exn ~k ~context alloc;
  alloc

(* Merged per-backend contention spans of a migration schedule, clamped
   to the serving window starting at [t0] (same model as Fig_day: copy
   traffic contends with foreground service on every backend a move
   touches). *)
let contention_faults ~t0 ~window_s ~nodes ~factor
    (schedule : Schedule.t) =
  let spans : (int, float * float) Hashtbl.t = Hashtbl.create 8 in
  let touch b s e =
    if b >= 0 && b < nodes && e > s then
      match Hashtbl.find_opt spans b with
      | None -> Hashtbl.replace spans b (s, e)
      | Some (s0, e0) -> Hashtbl.replace spans b (min s0 s, max e0 e)
  in
  List.iter
    (fun (tm : Schedule.timed_move) ->
      let s = max t0 tm.Schedule.start in
      let e = min (t0 +. window_s) tm.Schedule.finish in
      touch tm.Schedule.move.Planner.dest s e;
      match tm.Schedule.move.Planner.source with
      | Some src -> touch src s e
      | None -> ())
    schedule.Schedule.moves;
  Hashtbl.fold
    (fun b (s, e) acc ->
      Fault.slowdown ~at:s ~backend:b ~factor:(1. +. factor)
        ~duration:(e -. s)
      :: acc)
    spans []

let run ?(params = default) ?monitor () =
  let p = params in
  if p.windows < 1 || p.nodes < 2 then invalid_arg "Fig_drift.run: bad shape";
  if p.window_minutes <= 0. || p.rate_per_10min <= 0. then
    invalid_arg "Fig_drift.run: bad window/rate";
  let t_begin = Sys.time () in
  let window_s = p.window_minutes *. 60. in
  let horizon = float_of_int p.windows *. window_s in
  let day_mix = Trace.class_mix ~hour:assumed_hour in
  let night_mix = Trace.class_mix ~hour:night_hour in
  (* Serving starts at the hour the static model was planned for, so the
     arms begin aligned with the assumption and drift arrives later. *)
  let hour_of w = assumed_hour +. (float_of_int w *. p.window_minutes /. 60.) in
  (* The true per-window mix: diurnal until the step, then the night mix
     permanently (the adversarial part: the model expects the quiz batch
     to recede, it does not). *)
  let truth =
    Array.init p.windows (fun w ->
        if w < p.step_window then Trace.class_mix ~hour:(hour_of w)
        else night_mix)
  in
  let rng = Rng.create p.seed in
  (* Chaos, shared verbatim by both arms: per-window crash/recover
     renewals plus one run-long seeded workload-shift stream.  A shift
     both overrides the truth schedule from its window onward and is
     injected as a fault so the engine announces it on the trace. *)
  let window_faults = Array.make p.windows [] in
  if p.chaos then begin
    let crng = Rng.split rng in
    for w = 0 to p.windows - 1 do
      let t0 = float_of_int w *. window_s in
      window_faults.(w) <-
        Chaos.generate ~rng:(Rng.split crng) ~num_backends:p.nodes
          {
            Chaos.mtbf = p.mtbf;
            mttr = p.mttr;
            horizon = window_s;
            slowdown_prob = 0.;
            slowdown_factor = 3.;
            max_concurrent_down = Some 1;
            correlated_mtbf = None;
            partition_prob = 0.;
            zones = 1;
            shift_mtbf = None;
            shift_mixes = [];
          }
        |> List.map (fun (f : Fault.timed) ->
               { f with Fault.at = f.Fault.at +. t0 })
    done;
    let shifts =
      Chaos.generate ~rng:(Rng.split crng) ~num_backends:p.nodes
        {
          Chaos.mtbf = infinity;
          mttr = 1.;
          horizon;
          slowdown_prob = 0.;
          slowdown_factor = 3.;
          max_concurrent_down = None;
          correlated_mtbf = None;
          partition_prob = 0.;
          zones = 1;
          shift_mtbf = Some p.shift_mtbf;
          shift_mixes = [ day_mix; night_mix ];
        }
    in
    List.iter
      (fun (f : Fault.timed) ->
        let w = int_of_float (f.Fault.at /. window_s) in
        if w >= 0 && w < p.windows then begin
          window_faults.(w) <- window_faults.(w) @ [ f ];
          match f.Fault.event with
          | Fault.Workload_shift { mix } ->
              (* The shift takes effect from the next window boundary:
                 this window's arrivals are already in flight. *)
              for w' = w + 1 to p.windows - 1 do
                truth.(w') <- mix
              done
          | _ -> ()
        end)
      shifts
  end;
  Array.iteri
    (fun w f -> window_faults.(w) <- Fault.sort f)
    window_faults;
  (* One shared request stream per window, so the arms are compared on
     byte-identical offered load. *)
  let n_req = int_of_float (p.rate_per_10min *. p.window_minutes /. 10.) in
  let streams =
    Array.init p.windows (fun w ->
        let wrng = Rng.split rng in
        let t0 = float_of_int w *. window_s in
        Spec.requests ~rng:wrng ~n:n_req (Trace.specs_of_mix ~mix:truth.(w))
        |> List.map (fun (r : Request.t) ->
               { r with Request.arrival = t0 +. Rng.float wrng window_s }))
  in
  let resilience = defenses ~deadline_s:p.deadline_s in
  let config =
    Simulator.homogeneous_config
      ~cost:
        {
          Cost_model.default with
          Cost_model.scan_seconds_per_mb = p.scan_seconds_per_mb;
        }
      p.nodes
  in
  let initial () =
    checked_alloc ~context:"Fig_drift" ~k:1
      (Ksafety.allocate ~k:1
         (Trace.workload_of_mix ~mix:day_mix)
         (Backend.homogeneous p.nodes))
  in
  let events = ref 0 in
  (* One serving arm: identical windows, optionally driven by the
     control loop.  [srng] keeps per-window simulator randomness
     deterministic per arm. *)
  let run_arm ~tuned =
    let sink = Tel.Sink.create ~capacity:p.trace_capacity () in
    (match monitor with
    | Some m -> ignore (Cdbs_analysis.Monitor.attach m sink)
    | None -> ());
    let telemetry = Some sink in
    let srng = Rng.create (p.seed + if tuned then 7 else 13) in
    let alloc = ref (initial ()) in
    let loop =
      if tuned then
        Some (Loop.create ~config:p.control ~sink ~allocation:!alloc ())
      else None
    in
    let pending_mig = ref [] in
    let offered = ref 0 and completed = ref 0 in
    let shed = ref 0 and failed = ref 0 in
    let retries = ref 0 and hedges = ref 0 in
    let wasted = ref 0. and faults_n = ref 0 in
    let bytes_moved = ref 0. and migrations = ref 0 in
    let busy_acc = Array.make p.nodes 0. in
    let rows = ref [] in
    for w = 0 to p.windows - 1 do
      let t0 = float_of_int w *. window_s in
      let faults = Fault.sort (!pending_mig @ window_faults.(w)) in
      pending_mig := [];
      faults_n := !faults_n + List.length faults;
      let fo =
        Simulator.run_open_with_faults ~rng:(Rng.split srng) ~resilience
          ~telemetry:sink ?monitor config !alloc streams.(w) ~faults
      in
      offered := !offered + fo.Simulator.offered;
      completed := !completed + fo.Simulator.run.Simulator.completed;
      shed := !shed + fo.Simulator.shed;
      failed := !failed + (fo.Simulator.aborted - fo.Simulator.shed);
      retries := !retries + fo.Simulator.retries;
      hedges := !hedges + fo.Simulator.hedged;
      wasted := !wasted +. fo.Simulator.wasted_work;
      events := !events + fo.Simulator.events;
      Array.iteri
        (fun b busy -> if b < p.nodes then busy_acc.(b) <- busy_acc.(b) +. busy)
        fo.Simulator.run.Simulator.busy;
      let w_p99_s = p99_of fo.Simulator.responses in
      let action = ref "" in
      (match loop with
      | None -> ()
      | Some loop ->
          let availability =
            if fo.Simulator.offered = 0 then 1.
            else
              float_of_int fo.Simulator.run.Simulator.completed
              /. float_of_int fo.Simulator.offered
          in
          let migrate next =
            let old_fragments =
              List.init (Allocation.num_backends !alloc)
                (Allocation.fragments_of !alloc)
            in
            let plan = Planner.make ~old_fragments next in
            let t_next = t0 +. window_s in
            let schedule =
              Schedule.make ~start:t_next ~bandwidth:p.bandwidth_mb_s plan
            in
            bytes_moved := !bytes_moved +. plan.Planner.copy_mb;
            incr migrations;
            Tel.Sink.ev telemetry ~at:t_next "migration.start"
              [ ("copy_mb", Tel.Trace.Float plan.Planner.copy_mb) ];
            Tel.Sink.ev telemetry ~at:schedule.Schedule.copy_done
              "migration.copy_done"
              [ ("copy_mb", Tel.Trace.Float plan.Planner.copy_mb) ];
            pending_mig :=
              contention_faults ~t0:t_next ~window_s ~nodes:p.nodes
                ~factor:p.copy_slowdown schedule;
            alloc := next
          in
          (match
             Loop.observe_window loop ~at:(t0 +. window_s) ~p99_s:w_p99_s
               ~availability
           with
          | Loop.Stay -> ()
          | Loop.Cutover { next; _ } ->
              action := "cutover";
              migrate next
          | Loop.Rollback { prev; _ } ->
              action := "rollback";
              migrate prev));
      rows :=
        {
          hour = hour_of w;
          w_offered = fo.Simulator.offered;
          w_completed = fo.Simulator.run.Simulator.completed;
          w_shed = fo.Simulator.shed;
          w_p99_ms = 1000. *. w_p99_s;
          w_action = !action;
          w_faults = List.length faults;
        }
        :: !rows
    done;
    let hist =
      match
        Tel.Metrics.find_histogram sink.Tel.Sink.metrics "sim.response_s"
      with
      | Some h -> h
      | None -> Tel.Histogram.create ()
    in
    let reallocations, rollbacks, drift_score =
      match loop with
      | Some l -> (Loop.reallocations l, Loop.rollbacks l, Loop.peak_score l)
      | None -> (0, 0, 0.)
    in
    let report =
      Tel.Slo_report.of_histogram ~duration_s:horizon ~offered:!offered
        ~completed:!completed ~shed:!shed ~failed:!failed
        ~wasted_work_s:!wasted ~retries:!retries ~hedges:!hedges
        ~bytes_moved_mb:!bytes_moved ~migrations:!migrations
        ~faults_injected:!faults_n
        ~trace_dropped:(Tel.Trace.dropped sink.Tel.Sink.trace)
        ~reallocations ~rollbacks ~drift_score
        ~utilization:
          (List.init p.nodes (fun b -> (b, busy_acc.(b) /. horizon)))
        hist
    in
    (match loop with Some l -> Loop.detach l | None -> ());
    ({ report; rows = List.rev !rows; sink }, loop, !alloc)
  in
  let static_, _, _ = run_arm ~tuned:false in
  let tuned, loop, final_alloc = run_arm ~tuned:true in
  let reallocations, rollbacks, commits, peak_drift =
    match loop with
    | Some l ->
        (Loop.reallocations l, Loop.rollbacks l, Loop.commits l,
         Loop.peak_score l)
    | None -> (0, 0, 0, 0.)
  in
  let wall_s = Sys.time () -. t_begin in
  {
    params = p;
    static_;
    tuned;
    reallocations;
    rollbacks;
    commits;
    peak_drift;
    final_alloc;
    events = !events;
    wall_s;
    events_per_s = (if wall_s > 0. then float_of_int !events /. wall_s else 0.);
  }

let to_json ?(monitor_violations = 0) r =
  Printf.sprintf
    "{\"name\":\"fig_drift\",\"seed\":%d,\"windows\":%d,\
     \"window_minutes\":%g,\"nodes\":%d,\"rate_per_10min\":%g,\
     \"step_window\":%d,\"chaos\":%b,\"events\":%d,\"wall_s\":%.3f,\
     \"events_per_s\":%.0f,\"reallocations\":%d,\"rollbacks\":%d,\
     \"commits\":%d,\"peak_drift\":%.3f,\"monitor_violations\":%d,\
     \"verdict\":%b,\"static\":%s,\"tuned\":%s}"
    r.params.seed r.params.windows r.params.window_minutes r.params.nodes
    r.params.rate_per_10min r.params.step_window r.params.chaos r.events
    r.wall_s r.events_per_s r.reallocations r.rollbacks r.commits
    r.peak_drift monitor_violations (verdict r)
    (Tel.Slo_report.to_json r.static_.report)
    (Tel.Slo_report.to_json r.tuned.report)

let write_json ?monitor_violations ~path r =
  let oc = open_out path in
  output_string oc (to_json ?monitor_violations r);
  output_char oc '\n';
  close_out oc

let print_arm name (a : arm) =
  Fmt.pr "@.%s:@." name;
  Fmt.pr "%6s%9s%10s%7s%10s%10s%8s@." "hour" "offered" "completed" "shed"
    "p99(ms)" "action" "faults";
  List.iter
    (fun w ->
      Fmt.pr "%6.1f%9d%10d%7d%10.1f%10s%8d@." w.hour w.w_offered
        w.w_completed w.w_shed w.w_p99_ms w.w_action w.w_faults)
    a.rows;
  Fmt.pr "@.%a@." Tel.Slo_report.pp a.report

let print_all () =
  Common.header
    "Workload drift: self-tuning control loop vs static allocation under \
     an adversarial step-change";
  let r = run () in
  print_arm "static allocation" r.static_;
  print_arm "self-tuning" r.tuned;
  Fmt.pr "@.reallocations %d (%d rolled back, %d committed), peak drift \
          %.2f@."
    r.reallocations r.rollbacks r.commits r.peak_drift;
  Fmt.pr "verdict: self-tuning %s (p99 %.0f ms vs %.0f ms, availability \
          %.4f vs %.4f)@."
    (if verdict r then "wins" else "does NOT win")
    (1000. *. r.tuned.report.Tel.Slo_report.p99_s)
    (1000. *. r.static_.report.Tel.Slo_report.p99_s)
    r.tuned.report.Tel.Slo_report.availability
    r.static_.report.Tel.Slo_report.availability
