module Allocation = Cdbs_core.Allocation
module Workload = Cdbs_core.Workload
module Greedy = Cdbs_core.Greedy
module Memetic = Cdbs_core.Memetic
module Query_class = Cdbs_core.Query_class
module Simulator = Cdbs_cluster.Simulator

(* Every experiment run self-verifies: loading this harness installs the
   full static checker behind Cdbs_core.Invariants, so each allocation an
   algorithm emits (and each migration plan the controller builds) is
   verified before the figures use it. *)
let () = Cdbs_analysis.Debug.install ()

type strategy =
  | Full_replication
  | Table_based
  | Column_based
  | Random_placement

let strategy_name = function
  | Full_replication -> "full"
  | Table_based -> "table"
  | Column_based -> "column"
  | Random_placement -> "random"

let full_replication = Cdbs_core.Baselines.full_replication

let memetic_params =
  { Memetic.default_params with Memetic.iterations = 30; population = 8 }

let allocate ~rng strategy ~table_workload ~column_workload backends =
  let alloc =
    match strategy with
    | Full_replication -> full_replication table_workload backends
    | Table_based ->
        Memetic.improve ~params:memetic_params ~rng
          (Greedy.allocate table_workload backends)
    | Column_based ->
        Memetic.improve ~params:memetic_params ~rng
          (Greedy.allocate column_workload backends)
    | Random_placement ->
        Cdbs_core.Baselines.random_placement ~rng column_workload backends
  in
  Cdbs_core.Invariants.check_allocation
    ~context:("Common.allocate " ^ strategy_name strategy)
    alloc;
  alloc

let simulate ?(cost = Cdbs_cluster.Cost_model.default)
    ?(protocol = Cdbs_cluster.Protocol.default) alloc requests =
  let n = Allocation.num_backends alloc in
  let config = { Simulator.cost; speeds = Array.make n 1.; protocol } in
  Simulator.run_batch config alloc requests

let header title =
  Fmt.pr "@.=== %s ===@." title

let table ~columns rows =
  let width = 12 in
  Fmt.pr "%-28s" "";
  List.iter (fun c -> Fmt.pr "%*s" width c) columns;
  Fmt.pr "@.";
  List.iter
    (fun (label, values) ->
      Fmt.pr "%-28s" label;
      List.iter (fun v -> Fmt.pr "%*.3f" width v) values;
      Fmt.pr "@.")
    rows

let mean_of_runs f ~runs =
  let total = ref 0. in
  for seed = 1 to runs do
    total := !total +. f seed
  done;
  !total /. float_of_int runs
