(** Fault injection experiment: graceful degradation under crashes and the
    crash / recover / self-repair lifecycle.

    Two views:
    - a {e degradation grid} over k-safety degrees 0..2: crash 0..3
      backends mid-run (no recovery) and measure availability, aborts,
      retries and tail latency — with [crashes <= k] the allocation absorbs
      every crash (availability 1.0, zero aborts, only retried latency);
    - a {e lifecycle timeline} on a k=1 cluster: one backend crashes,
      recovers and catches up through the delta journal, while the
      allocation-level repair loop restores effective k on the survivors. *)

type row = {
  k : int;  (** k-safety degree the allocation was built for *)
  crashes : int;  (** backends crashed mid-run, never recovered *)
  availability : float;  (** completed / offered *)
  aborted : int;
  retried : int;  (** distinct reads that needed at least one retry *)
  retries : int;  (** total retry attempts *)
  avg_ms : float;
  p99_ms : float;
}

type point = {
  t0 : float;  (** bucket start, seconds *)
  t1 : float;
  avg_ms : float;
  n : int;
  phase : string;  (** ["before"], ["down"], ["catchup"] or ["after"] *)
}

type report = {
  grid : row list;  (** empty in {!scenario}'s report *)
  timeline : point list;
  crashed_backend : int;
      (** the victim: the backend whose loss drops effective k furthest *)
  crash_at : float;
  recovered_at : float;
  caught_up_at : float;  (** when the rejoined backend took reads again *)
  replayed_mb : float;  (** missed update volume replayed at rejoin *)
  availability : float;
  errors : int;
  retried_requests : int;
  retries : int;
  effective_k_before : int;
  effective_k_down : int;  (** after the crash, before repair *)
  effective_k_repaired : int;
  repair_mb : float;  (** shipped to survivors to restore k-safety *)
  time_to_repair : float;  (** [repair_mb / repair_bandwidth] *)
}

val degradation :
  ?nodes:int ->
  ?rate_per_s:float ->
  ?duration:float ->
  ?max_crashes:int ->
  ?seed:int ->
  ?monitor:Cdbs_analysis.Monitor.t ->
  unit ->
  row list
(** The degradation grid.  Defaults: 4 nodes, 30 requests/s over 300 s,
    crashes at t = 75 s, k in 0..2, crashes in 0..3.  [monitor] observes
    every cell's run ({!Cdbs_cluster.Simulator.run_open_with_faults}). *)

val scenario :
  ?nodes:int ->
  ?rate_per_s:float ->
  ?duration:float ->
  ?buckets:int ->
  ?seed:int ->
  ?repair_bandwidth:float ->
  ?monitor:Cdbs_analysis.Monitor.t ->
  unit ->
  report
(** The k=1 lifecycle: the most critical backend crashes at [duration/3],
    recovers at [2*duration/3] and catches up; {!Cdbs_core.Ksafety.repair} then restores
    effective k on the survivors (verified diagnostic-clean when debug
    checks are active). *)

val print_all : unit -> unit
