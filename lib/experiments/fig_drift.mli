(** Workload drift experiment: self-tuning vs static allocation.

    Two arms serve byte-identical per-window request streams on the same
    cluster.  The {e static} arm keeps the allocation planned for the
    early-afternoon class mix; the {e tuned} arm runs the
    {!Cdbs_control.Loop} control loop (measured mix off the trace →
    drift score → guarded reallocation → canary).  The true mix follows
    the diurnal schedule until [step_window], then step-changes to the
    3 am quiz-batch mix (B-dominant) {e permanently} — the adversarial
    case where the static model's assumption never comes back.  With
    [chaos] the arms additionally share per-window crash/recover
    renewals and a seeded {!Cdbs_faults.Chaos} workload-shift stream
    (drift and crashes together).

    Headline: the tuned arm beats the static arm on {e both} run-level
    p99 and availability ({!verdict}). *)

type params = {
  seed : int;
  windows : int;
  window_minutes : float;
  nodes : int;
  rate_per_10min : float;
  step_window : int;
  deadline_s : float;
  bandwidth_mb_s : float;
  copy_slowdown : float;
  scan_seconds_per_mb : float;
  chaos : bool;
  mtbf : float;
  mttr : float;
  shift_mtbf : float;
  trace_capacity : int;
  control : Cdbs_control.Loop.config;
}

val control_default : Cdbs_control.Loop.config
(** {!Cdbs_control.Loop.default} tightened for window-scale experiments:
    threshold 1.0, hysteresis 0.4, cooldown 3600 s, k = 1. *)

val default : params
val smoke : params
(** CI-sized variant (shorter windows, lower rate), still past the
    saturation knee so the headline ordering is preserved. *)

type window_row = {
  hour : float;
  w_offered : int;
  w_completed : int;
  w_shed : int;
  w_p99_ms : float;
  w_action : string;  (** "", ["cutover"] or ["rollback"] *)
  w_faults : int;
}

type arm = {
  report : Cdbs_telemetry.Slo_report.t;
  rows : window_row list;
  sink : Cdbs_telemetry.Sink.t;
}

type result = {
  params : params;
  static_ : arm;
  tuned : arm;
  reallocations : int;
  rollbacks : int;
  commits : int;
  peak_drift : float;
  final_alloc : Cdbs_core.Allocation.t;
  events : int;
  wall_s : float;
  events_per_s : float;
}

val verdict : result -> bool
(** Tuned p99 <= static p99 AND tuned availability >= static
    availability. *)

val run :
  ?params:params -> ?monitor:Cdbs_analysis.Monitor.t -> unit -> result
(** A [monitor] is attached to {e both} arms' sinks up front, so it
    verifies the serving protocol and the control protocol
    (TRC016–018) of the whole experiment. *)

val to_json : ?monitor_violations:int -> result -> string
val write_json : ?monitor_violations:int -> path:string -> result -> unit
val print_all : unit -> unit
