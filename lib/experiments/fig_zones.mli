(** Zone-outage experiment: fault-domain-aware vs naive k-safe placement.

    Replica {e count} is the wrong safety metric under correlated
    failures: a k=1 allocation whose two copies share a rack loses both
    when the rack loses power.  This experiment builds the same k-safe
    allocation twice — once topology-blind, once domain-aware
    ({!Cdbs_core.Ksafety.allocate} with [?topology]) — and subjects each
    to an {e adversarial} full-zone outage: the victim zone is chosen,
    per placement, to maximize the request weight whose every replica
    dies with the zone.  Domain-aware placement leaves that weight at
    zero by construction, so it keeps serving; the naive placement
    collapses for the outage window. *)

type side = {
  label : string;  (** ["domain-aware"] or ["naive"] *)
  victim_zone : int;  (** the adversarially-chosen zone *)
  zone_members : int list;
  min_spread : int;
      (** minimum fault domains any class's replicas span *)
  spread_ok : bool;  (** {!Cdbs_core.Ksafety.spread_ok} before the outage *)
  dead_weight : float;
      (** request weight whose every replica lives in the victim zone *)
  effective_k_outage : int;  (** effective k while the zone is down *)
  availability : float;
  aborted : int;
  retried : int;
  p99_ms : float;
}

type report = {
  nodes : int;
  zones : int;
  k : int;
  outage_at : float;
  outage_ends : float;
  aware : side;
  naive : side;
  verdict : bool;
      (** aware availability >= 0.99 while naive < 0.90, same seed — the
          headline predicate *)
}

val compare_placements :
  ?nodes:int ->
  ?zones:int ->
  ?k:int ->
  ?rate_per_s:float ->
  ?duration:float ->
  ?seed:int ->
  ?monitor:Cdbs_analysis.Monitor.t ->
  unit ->
  report
(** Defaults: 6 backends in 3 contiguous racks, k=1, 20 requests/s over
    300 s, the zone down from t=75 s to t=225 s.  Both runs share the seed
    and the request list; [monitor] observes both. *)

val print_all : unit -> unit
