module Trace = Cdbs_workloads.Trace
module Spec = Cdbs_workloads.Spec
module Backend = Cdbs_core.Backend
module Ksafety = Cdbs_core.Ksafety
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Fault = Cdbs_faults.Fault
module Rng = Cdbs_util.Rng
module Res = Cdbs_resilience
module Histogram = Cdbs_telemetry.Histogram

type run_stats = {
  offered : int;
  completed : int;
  availability : float;
  avg_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  shed : int;
  shed_updates : int;
  timeouts : int;
  hedged : int;
  hedge_wins : int;
  breaker_trips : int;
  wasted_s : float;
  utilization : float array;
  offered_updates : int;
  completed_updates : int;
}

type comparison = { rate_per_s : float; undefended : run_stats; defended : run_stats }

type report = {
  sweep : comparison list;
  nodes : int;
  slow_backend : int;
  slow_factor : float;
  deadline_s : float;
}

let checked_alloc ~context ~k alloc =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_allocation.check_exn ~k ~context alloc;
  alloc

(* Same seeded workload as the fault experiments: the midday e-learning
   mix, arrivals uniform over [0, duration). *)
let requests ~seed ~rate_per_s ~duration =
  let rng = Rng.create seed in
  let n = int_of_float (rate_per_s *. duration) in
  List.map
    (fun (r : Request.t) -> { r with Request.arrival = Rng.float rng duration })
    (Spec.requests ~rng ~n (Trace.specs_at ~hour:14.))

(* Both arms share the same client behaviour — requests are abandoned at
   the deadline.  The undefended arm has no server-side defense: doomed
   reads are still served (wasted capacity), slow backends keep taking
   traffic, stragglers are never hedged. *)
let clients_only ~deadline_s =
  Res.Policy.make ~deadline:(Res.Deadline.make ~budget:deadline_s) ()

let defenses ~deadline_s =
  Res.Policy.make
    ~admission:(Res.Admission.make ~max_depth:64 ~max_pending:(0.8 *. deadline_s) ())
    ~breaker:Res.Breaker.default_config ~hedge:Res.Hedge.default
    ~deadline:(Res.Deadline.make ~budget:deadline_s) ()

let stats_of (fo : Simulator.fault_outcome) =
  (* Latency percentiles through the telemetry histogram: both arms of a
     comparison use identical buckets, so the defended-vs-undefended
     ordering the acceptance criterion checks is preserved (the bucket
     map is monotone). *)
  let h = Histogram.create () in
  List.iter (fun (_, r) -> Histogram.record h r) fo.Simulator.responses;
  {
    offered = fo.Simulator.offered;
    completed = fo.Simulator.run.Simulator.completed;
    availability = fo.Simulator.availability;
    avg_ms = 1000. *. fo.Simulator.run.Simulator.avg_response;
    p50_ms = 1000. *. Histogram.percentile h 50.;
    p95_ms = 1000. *. Histogram.percentile h 95.;
    p99_ms = 1000. *. Histogram.percentile h 99.;
    shed = fo.Simulator.shed;
    shed_updates = fo.Simulator.shed_updates;
    timeouts = fo.Simulator.timeouts;
    hedged = fo.Simulator.hedged;
    hedge_wins = fo.Simulator.hedge_wins;
    breaker_trips = fo.Simulator.breaker_trips;
    wasted_s = fo.Simulator.wasted_work;
    utilization = fo.Simulator.run.Simulator.utilization;
    offered_updates = fo.Simulator.offered_updates;
    completed_updates = fo.Simulator.completed_updates;
  }

(* The gray-failure victim: the backend carrying the most read traffic in
   a clean probe run — slowing the busiest backend hurts the most, which
   is exactly the case the defenses must handle. *)
let pick_victim ~nodes ~seed ~rate_per_s ~duration alloc =
  let config = Simulator.homogeneous_config nodes in
  let probe =
    Simulator.run_open config alloc (requests ~seed ~rate_per_s ~duration)
  in
  let best = ref 0 in
  Array.iteri
    (fun b u ->
      if u > probe.Simulator.utilization.(!best) then best := b)
    probe.Simulator.utilization;
  !best

let run_one ?telemetry ?monitor ~nodes ~seed ~rate_per_s ~duration
    ~slow_backend ~slow_factor ~deadline_s ~defended alloc =
  let config = Simulator.homogeneous_config nodes in
  let faults =
    [
      Fault.slowdown ~at:(duration /. 4.) ~backend:slow_backend
        ~factor:slow_factor ~duration:(duration /. 2.);
    ]
  in
  let resilience =
    if defended then defenses ~deadline_s else clients_only ~deadline_s
  in
  let rng = if defended then Some (Rng.create (seed + 1)) else None in
  let fo =
    Simulator.run_open_with_faults ?rng ~resilience ?telemetry ?monitor config
      alloc
      (requests ~seed ~rate_per_s ~duration)
      ~faults
  in
  stats_of fo

let compare_at ?(nodes = 4) ?(seed = 11) ?(duration = 120.)
    ?(slow_factor = 3.) ?(deadline_s = 1.) ?slow_backend ?telemetry ?monitor
    ~rate_per_s () =
  let workload = Trace.workload_at ~hour:14. in
  let alloc =
    checked_alloc ~context:"Fig_overload.compare_at" ~k:1
      (Ksafety.allocate ~k:1 workload (Backend.homogeneous nodes))
  in
  let slow_backend =
    match slow_backend with
    | Some b -> b
    | None -> pick_victim ~nodes ~seed ~rate_per_s ~duration alloc
  in
  let run ~defended =
    run_one ?telemetry ?monitor ~nodes ~seed ~rate_per_s ~duration
      ~slow_backend ~slow_factor ~deadline_s ~defended alloc
  in
  ( slow_backend,
    {
      rate_per_s;
      undefended = run ~defended:false;
      defended = run ~defended:true;
    } )

let sweep ?(nodes = 4) ?(seed = 11) ?(duration = 120.) ?(slow_factor = 3.)
    ?(deadline_s = 1.) ?(rates = [ 60.; 120.; 240.; 360. ]) ?monitor () =
  let victim = ref 0 in
  let sweep =
    List.map
      (fun rate_per_s ->
        let b, c =
          compare_at ~nodes ~seed ~duration ~slow_factor ~deadline_s ?monitor
            ~rate_per_s ()
        in
        victim := b;
        c)
      rates
  in
  { sweep; nodes; slow_backend = !victim; slow_factor; deadline_s }

(* The PR's acceptance criterion, reused by the CLI gate and CI smoke:
   on the same seeded workload with one slowed backend, the defended run
   must improve tail latency without giving up availability, and neither
   arm may shed an update. *)
let acceptance c =
  let violations = ref [] in
  let check cond msg = if not cond then violations := msg :: !violations in
  check
    (c.defended.p99_ms <= c.undefended.p99_ms)
    (Printf.sprintf "defended p99 %.1f ms exceeds undefended %.1f ms"
       c.defended.p99_ms c.undefended.p99_ms);
  check
    (c.defended.availability >= c.undefended.availability)
    (Printf.sprintf "defended availability %.4f below undefended %.4f"
       c.defended.availability c.undefended.availability);
  check
    (c.defended.shed_updates = 0 && c.undefended.shed_updates = 0)
    "updates were shed";
  check
    (c.defended.completed_updates = c.defended.offered_updates)
    (Printf.sprintf "defended run lost updates (%d of %d committed)"
       c.defended.completed_updates c.defended.offered_updates);
  (!violations = [], List.rev !violations)

let pp_stats ppf (label, s) =
  Fmt.pf ppf
    "%-11s avail %.4f  p50 %7.1f  p95 %7.1f  p99 %7.1f ms  shed %4d  \
     timeout %4d  hedged %4d (%d won)  trips %d  wasted %6.1fs"
    label s.availability s.p50_ms s.p95_ms s.p99_ms s.shed s.timeouts s.hedged
    s.hedge_wins s.breaker_trips s.wasted_s

let print_all () =
  Common.header
    "Overload & gray failure: offered load sweep, one backend slowed x3";
  let r = sweep () in
  Fmt.pr
    "4 nodes, k=1, deadline %.1fs; backend %d serves at x%.0f for the middle \
     half of the run@.@."
    r.deadline_s r.slow_backend r.slow_factor;
  List.iter
    (fun c ->
      Fmt.pr "offered %.0f req/s@." c.rate_per_s;
      Fmt.pr "  %a@." pp_stats ("undefended", c.undefended);
      Fmt.pr "  %a@." pp_stats ("defended", c.defended))
    r.sweep;
  match List.rev r.sweep with
  | [] -> ()
  | heaviest :: _ ->
      let ok, violations = acceptance heaviest in
      if ok then
        Fmt.pr
          "@.acceptance (at %.0f req/s): defended run improves p99 and keeps \
           availability, zero shed updates@."
          heaviest.rate_per_s
      else begin
        Fmt.pr "@.acceptance FAILED:@.";
        List.iter (fun v -> Fmt.pr "  - %s@." v) violations
      end
