(* Massive-instance allocator benchmark: dense greedy at 10^5-10^6
   fragments, the island-parallel memetic, and O(delta) incremental
   repair vs. re-solving from scratch.  Seed-deterministic apart from
   the timing fields, so BENCH_alloc.json diffs cleanly run to run. *)

module Core = Cdbs_core
module Rng = Cdbs_util.Rng
module Dense = Core.Dense
module Incremental = Core.Incremental
module Memetic_par = Core.Memetic_par
module Check = Cdbs_analysis.Check_allocation
module Diag = Cdbs_analysis.Diagnostic

type strategy = Greedy | Memetic

type params = {
  fragments : int;
  reads : int;
  updates : int;
  backends : int;
  seed : int;
  strategy : strategy;
  population : int;
  generations : int;
  islands : int;
  migration_every : int;
  domains : int option;  (** [None] = all available *)
  repair : bool;
  delta_frac : float;
  budget : int option;
}

let default =
  {
    fragments = 1_000_000;
    reads = 120_000;
    updates = 30_000;
    backends = 100;
    seed = 42;
    strategy = Greedy;
    population = 6;
    generations = 8;
    islands = 4;
    migration_every = 3;
    domains = None;
    repair = true;
    delta_frac = 0.01;
    budget = None;
  }

(* CI preset: big enough that a quadratic regression in the dense core
   blows the wall-clock gate, small enough for a 1-core runner. *)
let smoke =
  {
    default with
    fragments = 100_000;
    reads = 25_000;
    updates = 6_000;
    backends = 50;
  }

type memetic_result = {
  memetic_s : float;
  memetic_scale : float;
  memetic_stored : float;
  domains_used : int;
}

type repair_result = {
  deltas : int;
  repair_s : float;
  resolve_s : float;
  repair_speedup : float;
  moved_fragments : int;
  moved_frac : float;
  rebalance_fragments : int;
  repair_errors : int;
}

type result = {
  p : params;
  greedy_s : float;
  greedy_scale : float;
  greedy_stored : float;
  check_errors : int;
  memetic : memetic_result option;
  repair : repair_result option;
}

let now = Unix.gettimeofday

let run ?(params = default) () =
  let p = params in
  let rng = Rng.create p.seed in
  let inst =
    Dense.synthetic ~rng ~fragments:p.fragments ~reads:p.reads
      ~updates:p.updates ~backends:p.backends ()
  in
  let t0 = now () in
  let g = Dense.greedy inst in
  let greedy_s = now () -. t0 in
  (* Snapshot the greedy cost up front: the repair below consumes [g]. *)
  let greedy_scale = Dense.scale g in
  let greedy_stored = Dense.total_stored g in
  let check_errors = List.length (Diag.errors (Check.check_dense g)) in
  let memetic =
    match p.strategy with
    | Greedy -> None
    | Memetic ->
        let mp =
          {
            Memetic_par.population = p.population;
            generations = p.generations;
            mutations_per_parent =
              Memetic_par.default_params.Memetic_par.mutations_per_parent;
            islands = p.islands;
            migration_every = p.migration_every;
          }
        in
        let domains_used =
          match p.domains with
          | Some d -> max 1 d
          | None -> Cdbs_util.Pool.available ()
        in
        let t0 = now () in
        let m =
          Memetic_par.improve ~params:mp ~domains:domains_used ~seed:p.seed
            (Dense.copy g)
        in
        let memetic_s = now () -. t0 in
        Some
          {
            memetic_s;
            memetic_scale = Dense.scale m;
            memetic_stored = Dense.total_stored m;
            domains_used;
          }
  in
  let repair =
    if not p.repair then None
    else begin
      let deltas = Incremental.random_delta ~rng ~frac:p.delta_frac g in
      let t0 = now () in
      let st, stats = Incremental.repair ?budget:p.budget g deltas in
      let repair_s = now () -. t0 in
      let t0 = now () in
      let resolved = Dense.greedy st.Dense.inst in
      let resolve_s = now () -. t0 in
      ignore (Dense.scale resolved);
      let repair_diags = Diag.errors (Check.check_dense st) in
      let repair_errors = List.length repair_diags in
      if repair_errors > 0 then
        List.iteri
          (fun i d -> if i < 5 then Fmt.epr "repair: %a@." Diag.pp d)
          repair_diags;
      Some
        {
          deltas = List.length deltas;
          repair_s;
          resolve_s;
          repair_speedup = (if repair_s > 0. then resolve_s /. repair_s else 0.);
          moved_fragments = stats.Incremental.moved_fragments;
          moved_frac =
            float_of_int stats.Incremental.moved_fragments
            /. float_of_int (max 1 inst.Dense.n_frags);
          rebalance_fragments = stats.Incremental.rebalance_fragments;
          repair_errors;
        }
    end
  in
  { p; greedy_s; greedy_scale; greedy_stored; check_errors; memetic; repair }

let to_json r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "{\"name\":\"fig_alloc\",\"seed\":%d,\"fragments\":%d,\"reads\":%d,\
     \"updates\":%d,\"backends\":%d,\"greedy_s\":%.3f,\"greedy_scale\":%.4f,\
     \"greedy_stored_mb\":%.1f,\"check_errors\":%d"
    r.p.seed r.p.fragments r.p.reads r.p.updates r.p.backends r.greedy_s
    r.greedy_scale r.greedy_stored r.check_errors;
  (match r.memetic with
  | None -> ()
  | Some m ->
      Printf.bprintf b
        ",\"memetic\":{\"wall_s\":%.3f,\"scale\":%.4f,\"stored_mb\":%.1f,\
         \"islands\":%d,\"generations\":%d,\"domains\":%d}"
        m.memetic_s m.memetic_scale m.memetic_stored r.p.islands
        r.p.generations m.domains_used);
  (match r.repair with
  | None -> ()
  | Some rp ->
      Printf.bprintf b
        ",\"repair\":{\"deltas\":%d,\"repair_s\":%.4f,\"resolve_s\":%.3f,\
         \"speedup\":%.1f,\"moved_fragments\":%d,\"moved_frac\":%.5f,\
         \"rebalance_fragments\":%d,\"errors\":%d}"
        rp.deltas rp.repair_s rp.resolve_s rp.repair_speedup
        rp.moved_fragments rp.moved_frac rp.rebalance_fragments
        rp.repair_errors);
  Buffer.add_char b '}';
  Buffer.contents b

let write_json ~path r =
  let oc = open_out path in
  output_string oc (to_json r);
  output_char oc '\n';
  close_out oc

let pp_result ppf r =
  Fmt.pf ppf
    "greedy: %d frags x %d classes on %d backends in %.2f s (scale %.3f, \
     %.0f MB stored, %d checker errors)@."
    r.p.fragments (r.p.reads + r.p.updates) r.p.backends r.greedy_s
    r.greedy_scale r.greedy_stored r.check_errors;
  (match r.memetic with
  | None -> ()
  | Some m ->
      Fmt.pf ppf
        "memetic: %d islands x %d generations on %d domain%s in %.2f s \
         (scale %.3f, %.0f MB stored)@."
        r.p.islands r.p.generations m.domains_used
        (if m.domains_used = 1 then "" else "s")
        m.memetic_s m.memetic_scale m.memetic_stored);
  match r.repair with
  | None -> ()
  | Some rp ->
      Fmt.pf ppf
        "repair: %d deltas in %.4f s vs %.2f s re-solve (%.0fx); moved \
         %d/%d fragments (%.2f%%), %d rebalance copies, %d errors@."
        rp.deltas rp.repair_s rp.resolve_s rp.repair_speedup
        rp.moved_fragments r.p.fragments (100. *. rp.moved_frac)
        rp.rebalance_fragments rp.repair_errors

let print_all () =
  Common.header
    "Massive-instance allocator: dense greedy, island memetic, incremental \
     repair";
  let r = run ~params:{ smoke with strategy = Memetic } () in
  Fmt.pr "%a" pp_result r;
  write_json ~path:"BENCH_alloc.json" r;
  Fmt.pr "wrote BENCH_alloc.json@."
