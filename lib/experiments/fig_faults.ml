module Trace = Cdbs_workloads.Trace
module Spec = Cdbs_workloads.Spec
module Backend = Cdbs_core.Backend
module Ksafety = Cdbs_core.Ksafety
module Allocation = Cdbs_core.Allocation
module Fragment = Cdbs_core.Fragment
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Fault = Cdbs_faults.Fault
module Rng = Cdbs_util.Rng
module Histogram = Cdbs_telemetry.Histogram

type row = {
  k : int;
  crashes : int;
  availability : float;
  aborted : int;
  retried : int;
  retries : int;
  avg_ms : float;
  p99_ms : float;
}

type point = {
  t0 : float;
  t1 : float;
  avg_ms : float;
  n : int;
  phase : string;
}

type report = {
  grid : row list;
  timeline : point list;
  crashed_backend : int;
  crash_at : float;
  recovered_at : float;
  caught_up_at : float;
  replayed_mb : float;
  availability : float;
  errors : int;
  retried_requests : int;
  retries : int;
  effective_k_before : int;
  effective_k_down : int;
  effective_k_repaired : int;
  repair_mb : float;
  time_to_repair : float;
}

let checked_alloc ~context ~k alloc =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_allocation.check_exn ~k ~context alloc;
  alloc

(* The midday e-learning mix, arrivals uniform over [0, duration). *)
let requests ~seed ~rate_per_s ~duration =
  let rng = Rng.create seed in
  let n = int_of_float (rate_per_s *. duration) in
  List.map
    (fun (r : Request.t) -> { r with Request.arrival = Rng.float rng duration })
    (Spec.requests ~rng ~n (Trace.specs_at ~hour:14.))

(* Tail latency via the telemetry histogram (2.6 % bucket width at the
   default resolution) instead of a full sort of the response list. *)
let p99_ms responses =
  let h = Histogram.create () in
  List.iter (fun (_, r) -> Histogram.record h r) responses;
  1000. *. Histogram.percentile h 99.

(* Degradation grid: for each k-safety degree, crash 0..max_crashes
   backends a quarter into the run (no recovery) and measure how service
   degrades.  With crashes <= k the allocation absorbs every crash:
   availability stays 1.0 and only retried requests pay extra latency. *)
let degradation ?(nodes = 4) ?(rate_per_s = 30.) ?(duration = 300.)
    ?(max_crashes = 3) ?(seed = 11) ?monitor () =
  let workload = Trace.workload_at ~hour:14. in
  let config = Simulator.homogeneous_config nodes in
  List.concat_map
    (fun k ->
      let alloc =
        checked_alloc ~context:"Fig_faults.degradation" ~k
          (Ksafety.allocate ~k workload (Backend.homogeneous nodes))
      in
      List.map
        (fun crashes ->
          let faults =
            List.init crashes (fun b -> Fault.crash ~at:(duration /. 4.) b)
          in
          let fo =
            Simulator.run_open_with_faults ?monitor config alloc
              (requests ~seed ~rate_per_s ~duration)
              ~faults
          in
          {
            k;
            crashes;
            availability = fo.Simulator.availability;
            aborted = fo.Simulator.aborted;
            retried = fo.Simulator.retried_requests;
            retries = fo.Simulator.retries;
            avg_ms = 1000. *. fo.Simulator.run.Simulator.avg_response;
            p99_ms = p99_ms fo.Simulator.responses;
          })
        (List.init (max_crashes + 1) (fun c -> c)))
    [ 0; 1; 2 ]

(* Crash / recover / self-repair lifecycle on a k=1 cluster: the most
   critical backend crashes, the survivors absorb its load, effective k
   drops to 0, the repair loop re-replicates onto the survivors, and the
   rejoined backend catches up through the delta journal before taking
   reads again. *)
let scenario ?(nodes = 4) ?(rate_per_s = 30.) ?(duration = 300.)
    ?(buckets = 20) ?(seed = 11) ?(repair_bandwidth = 2.) ?monitor () =
  let workload = Trace.workload_at ~hour:14. in
  let alloc =
    checked_alloc ~context:"Fig_faults.scenario" ~k:1
      (Ksafety.allocate ~k:1 workload (Backend.homogeneous nodes))
  in
  let config = Simulator.homogeneous_config nodes in
  (* Crash the most critical backend — the one whose loss drops effective k
     the furthest (greedy replication leaves some backends redundant). *)
  let victim =
    let best = ref 0 and best_k = ref max_int in
    for b = 0 to nodes - 1 do
      let ek = Ksafety.effective_k ~failed:[ b ] alloc in
      if ek < !best_k then begin
        best := b;
        best_k := ek
      end
    done;
    !best
  in
  let crash_at = duration /. 3. and recover_at = 2. *. duration /. 3. in
  let faults =
    [ Fault.crash ~at:crash_at victim; Fault.recover ~at:recover_at victim ]
  in
  let fo =
    Simulator.run_open_with_faults ?monitor config alloc
      (requests ~seed ~rate_per_s ~duration)
      ~faults
  in
  let recovered_at, caught_up_at, replayed_mb =
    match fo.Simulator.recoveries with
    | r :: _ ->
        ( r.Simulator.recovered_at,
          (if Float.is_nan r.Simulator.caught_up_at then r.Simulator.recovered_at
           else r.Simulator.caught_up_at),
          r.Simulator.replayed_mb )
    | [] -> (recover_at, recover_at, 0.)
  in
  let phase_of at =
    if at < crash_at then "before"
    else if at < recovered_at then "down"
    else if at < caught_up_at then "catchup"
    else "after"
  in
  let width = duration /. float_of_int buckets in
  let sums = Array.make buckets 0. and counts = Array.make buckets 0 in
  List.iter
    (fun (arrival, response) ->
      let b = min (buckets - 1) (int_of_float (arrival /. width)) in
      sums.(b) <- sums.(b) +. response;
      counts.(b) <- counts.(b) + 1)
    fo.Simulator.responses;
  let timeline =
    List.init buckets (fun b ->
        let t0 = float_of_int b *. width in
        {
          t0;
          t1 = t0 +. width;
          avg_ms =
            (if counts.(b) > 0 then 1000. *. sums.(b) /. float_of_int counts.(b)
             else 0.);
          n = counts.(b);
          phase = phase_of (t0 +. (width /. 2.));
        })
  in
  (* The self-repair loop, at the allocation level: re-replicate what the
     crash left under-replicated, on the survivors only. *)
  let effective_k_before = Ksafety.effective_k alloc in
  let effective_k_down = Ksafety.effective_k ~failed:[ victim ] alloc in
  let gained = Ksafety.repair ~k:1 ~failed:[ victim ] alloc in
  ignore
    (checked_alloc ~context:"Fig_faults.scenario repair" ~k:1 alloc);
  let effective_k_repaired = Ksafety.effective_k ~failed:[ victim ] alloc in
  let repair_mb =
    (* Obligations of the crashed backend itself ship at rejoin, not during
       the repair. *)
    let sum = ref 0. in
    Array.iteri
      (fun b frags ->
        if b <> victim then sum := !sum +. Fragment.set_size frags)
      gained;
    !sum
  in
  {
    grid = [];
    timeline;
    crashed_backend = victim;
    crash_at;
    recovered_at;
    caught_up_at;
    replayed_mb;
    availability = fo.Simulator.availability;
    errors = fo.Simulator.run.Simulator.errors;
    retried_requests = fo.Simulator.retried_requests;
    retries = fo.Simulator.retries;
    effective_k_before;
    effective_k_down;
    effective_k_repaired;
    repair_mb;
    time_to_repair = repair_mb /. repair_bandwidth;
  }

let print_all () =
  Common.header "Fault injection: graceful degradation by k-safety degree";
  let grid = degradation () in
  Fmt.pr "%4s%9s%14s%9s%9s%9s%12s%12s@." "k" "crashes" "availability"
    "aborted" "retried" "retries" "avg(ms)" "p99(ms)";
  List.iter
    (fun r ->
      Fmt.pr "%4d%9d%14.4f%9d%9d%9d%12.2f%12.2f@." r.k r.crashes
        r.availability r.aborted r.retried r.retries r.avg_ms r.p99_ms)
    grid;
  Common.header "Crash, recover and self-repair on a k=1 cluster";
  let r = scenario () in
  Fmt.pr "%10s%10s%12s%8s  %s@." "from(s)" "to(s)" "resp(ms)" "req" "phase";
  List.iter
    (fun p ->
      Fmt.pr "%10.0f%10.0f%12.2f%8d  %s@." p.t0 p.t1 p.avg_ms p.n p.phase)
    r.timeline;
  Fmt.pr
    "backend %d down %.0fs - %.0fs; caught up at %.1fs after replaying %.2f \
     MB of missed updates@."
    r.crashed_backend r.crash_at r.recovered_at r.caught_up_at r.replayed_mb;
  Fmt.pr
    "availability %.4f, errors %d, retried requests %d (%d retry attempts)@."
    r.availability r.errors r.retried_requests r.retries;
  Fmt.pr
    "self-repair: effective k %d -> %d at crash, repaired to %d by shipping \
     %.1f MB (%.1fs at 2 MB/s)@."
    r.effective_k_before r.effective_k_down r.effective_k_repaired r.repair_mb
    r.time_to_repair
