(** Massive-instance allocator benchmark (the scale claim of Sec. 3 taken
    to 10⁵–10⁶ fragments): times the dense greedy, the island-parallel
    memetic and O(delta) incremental repair against a from-scratch
    re-solve on one synthetic instance, verifying every product with the
    dense checker.  Seed-deterministic apart from the timing fields. *)

type strategy = Greedy | Memetic

type params = {
  fragments : int;
  reads : int;
  updates : int;
  backends : int;
  seed : int;
  strategy : strategy;  (** [Memetic] runs the island optimizer after greedy *)
  population : int;
  generations : int;
  islands : int;
  migration_every : int;
  domains : int option;  (** [None] = all available *)
  repair : bool;  (** also time a [delta_frac] repair vs. re-solve *)
  delta_frac : float;
  budget : int option;  (** rebalance-copy cap handed to {!Cdbs_core.Incremental.repair} *)
}

val default : params
(** 10⁶ fragments × 150k classes × 100 backends, greedy + 1% repair. *)

val smoke : params
(** CI preset: 10⁵ fragments × 50 backends — big enough that a quadratic
    regression in the dense core blows the wall-clock gate, small enough
    for a 1-core runner. *)

type memetic_result = {
  memetic_s : float;
  memetic_scale : float;
  memetic_stored : float;
  domains_used : int;
}

type repair_result = {
  deltas : int;
  repair_s : float;
  resolve_s : float;  (** greedy from scratch on the post-delta instance *)
  repair_speedup : float;
  moved_fragments : int;
  moved_frac : float;  (** of the instance's fragment count *)
  rebalance_fragments : int;
  repair_errors : int;  (** dense-checker errors on the repaired state *)
}

type result = {
  p : params;
  greedy_s : float;
  greedy_scale : float;
  greedy_stored : float;
  check_errors : int;
  memetic : memetic_result option;
  repair : repair_result option;
}

val run : ?params:params -> unit -> result
val to_json : result -> string
val write_json : path:string -> result -> unit
val pp_result : result Fmt.t
val print_all : unit -> unit
(** The bench-harness entry: smoke preset with the memetic enabled,
    writes [BENCH_alloc.json] in the current directory. *)
