(** A day in production: the integrated SLO macro-benchmark.

    One composed scenario exercises every subsystem the PRs so far built,
    against the 24-hour diurnal e-learning {!Cdbs_workloads.Trace}:

    - the day is simulated in windows; each window's offered load follows
      the diurnal rate curve (scaled by [scale]);
    - an autoscaler sizes the cluster per window (capacity headroom rule);
      every resize is deployed as a {e live migration} whose copy traffic
      contends with foreground service on the touched backends;
    - a seeded chaos process injects crash/recover faults throughout,
      capped at the allocation's k-safety degree;
    - the full overload/gray-failure defense stack (admission control,
      circuit breakers, hedged reads, deadline budgets) is active;
    - a {!Cdbs_telemetry.Sink} observes the whole day — the SLO report is
      derived from its accumulated latency histogram and counters.

    Windows are independent simulator runs gluing together on shared
    telemetry: a backend left down at a window boundary rejoins with the
    next window (incidents are shorter than a window at the default
    parameters), and migration cutover happens at the window boundary
    while its copy traffic slows the touched backends during the window.

    The run is deterministic for a given parameter set: equal seeds give
    bit-identical reports (timing fields aside). *)

type params = {
  seed : int;
  scale : float;  (** multiplier on the diurnal trace's request rate *)
  window_minutes : float;  (** scheduling/autoscaling window length *)
  nodes_min : int;
  nodes_max : int;
  capacity_per_node : float;  (** autoscaler sizing rule, requests/s/node *)
  bandwidth_mb_s : float;  (** migration copy throttle, per stream *)
  copy_slowdown : float;  (** foreground inflation on copying backends *)
  deadline_s : float;  (** end-to-end client deadline budget *)
  mtbf : float;  (** chaos: mean seconds between faults per backend *)
  mttr : float;  (** chaos: mean fault duration, seconds *)
  trace_capacity : int;  (** telemetry trace ring size *)
  autotune : bool;
      (** run the {!Cdbs_control.Loop} self-healing control loop over the
          day (configured as {!Fig_drift.control_default}): drift-triggered
          guarded reallocations deploy as live migrations exactly like
          resizes do, the canary blocks autoscaler resizes while it runs,
          and each resize resets the loop's assumed mix *)
}

val default : params
(** The full macro-benchmark: seed 42, scale 3 (≥ 10⁶ simulated events),
    30-minute windows, 2–6 nodes, chaos MTBF 2 h / MTTR 60 s, 2 s
    deadline. *)

val smoke : params
(** A scaled-down preset for CI: same shape, ~3 % of the events. *)

type window_row = {
  hour : float;
  rate_per_10min : float;  (** scaled offered rate *)
  nodes : int;
  w_offered : int;
  w_completed : int;
  w_shed : int;
  w_p99_ms : float;
  migrating : bool;
  w_faults : int;
}

type result = {
  params : params;
  report : Cdbs_telemetry.Slo_report.t;
  windows : window_row list;
  events : int;  (** total simulator events processed over the day *)
  wall_s : float;
      (** process CPU seconds for the whole run (the simulation is
          CPU-bound, so this tracks wall clock) *)
  events_per_s : float;  (** events / wall_s *)
  sink : Cdbs_telemetry.Sink.t;  (** the day's metrics and trace *)
}

val run :
  ?params:params -> ?monitor:Cdbs_analysis.Monitor.t -> unit -> result
(** [monitor] watches the day's whole event stream (it is attached to the
    result's sink before the first window and left attached, so
    {!Cdbs_analysis.Monitor.report} includes ring-overflow findings);
    under active debug invariants any protocol violation fails the run
    loudly at the offending window's end. *)

val to_json : ?monitor_violations:int -> result -> string
(** The BENCH_day.json payload: parameters, SLO report, wall clock and
    events/sec, one line.  The top level carries the cross-subcommand
    [trace_dropped] / [monitor_violations] pair (the latter defaults to 0
    when no monitor was attached) under the same field names the [chaos]
    and [overload] subcommands emit. *)

val write_json : ?monitor_violations:int -> path:string -> result -> unit

val print_all : unit -> unit
(** Human-readable rendering of a default-parameter run: per-window
    table, SLO report, throughput line. *)
