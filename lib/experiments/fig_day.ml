module Trace = Cdbs_workloads.Trace
module Spec = Cdbs_workloads.Spec
module Backend = Cdbs_core.Backend
module Ksafety = Cdbs_core.Ksafety
module Allocation = Cdbs_core.Allocation
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Fault = Cdbs_faults.Fault
module Chaos = Cdbs_faults.Chaos
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule
module Rng = Cdbs_util.Rng
module Res = Cdbs_resilience
module Tel = Cdbs_telemetry
module Loop = Cdbs_control.Loop

type params = {
  seed : int;
  scale : float;
  window_minutes : float;
  nodes_min : int;
  nodes_max : int;
  capacity_per_node : float;
  bandwidth_mb_s : float;
  copy_slowdown : float;
  deadline_s : float;
  mtbf : float;
  mttr : float;
  trace_capacity : int;
  autotune : bool;
}

let default =
  {
    seed = 42;
    scale = 3.;
    window_minutes = 30.;
    nodes_min = 2;
    nodes_max = 6;
    capacity_per_node = 5.;
    bandwidth_mb_s = 50.;
    copy_slowdown = 0.25;
    deadline_s = 2.;
    mtbf = 7200.;
    mttr = 60.;
    trace_capacity = 8192;
    autotune = false;
  }

(* Same shape at ~3 % of the events; the tighter per-node capacity keeps
   the autoscaler (and therefore the live-migration path) exercised at
   the reduced load. *)
let smoke =
  { default with scale = 0.1; window_minutes = 120.; capacity_per_node = 0.12 }

type window_row = {
  hour : float;
  rate_per_10min : float;
  nodes : int;
  w_offered : int;
  w_completed : int;
  w_shed : int;
  w_p99_ms : float;
  migrating : bool;
  w_faults : int;
}

type result = {
  params : params;
  report : Tel.Slo_report.t;
  windows : window_row list;
  events : int;
  wall_s : float;
  events_per_s : float;
  sink : Tel.Sink.t;
}

let checked_alloc ~context ~k alloc =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_allocation.check_exn ~k ~context alloc;
  alloc

(* The full defense stack, as in the overload experiment. *)
let defenses ~deadline_s =
  Res.Policy.make
    ~admission:
      (Res.Admission.make ~max_depth:64 ~max_pending:(0.8 *. deadline_s) ())
    ~breaker:Res.Breaker.default_config ~hedge:Res.Hedge.default
    ~deadline:(Res.Deadline.make ~budget:deadline_s) ()

let p99_ms_of responses =
  let h = Tel.Histogram.create () in
  List.iter (fun (_, r) -> Tel.Histogram.record h r) responses;
  1000. *. Tel.Histogram.percentile h 99.

let run ?(params = default) ?monitor () =
  let p = params in
  if p.nodes_min < 1 || p.nodes_max < p.nodes_min then
    invalid_arg "Fig_day.run: bad node bounds";
  if p.window_minutes <= 0. || p.scale <= 0. then
    invalid_arg "Fig_day.run: bad window/scale";
  let t_begin = Sys.time () in
  let rng = Rng.create p.seed in
  let sink = Tel.Sink.create ~capacity:p.trace_capacity () in
  (* Attached up front, so the monitor sees every window's stream plus
     the migration events emitted at this level; it stays attached after
     the run so the caller can report ring-overflow findings. *)
  (match monitor with
  | Some m -> ignore (Cdbs_analysis.Monitor.attach m sink)
  | None -> ());
  let telemetry = Some sink in
  let resilience = defenses ~deadline_s:p.deadline_s in
  let day_s = 24. *. 3600. in
  let window_s = p.window_minutes *. 60. in
  let steps = int_of_float (ceil (24. *. 60. /. p.window_minutes)) in
  let alloc_for ~hour nodes =
    checked_alloc ~context:"Fig_day" ~k:1
      (Ksafety.allocate ~k:1 (Trace.workload_at ~hour)
         (Backend.homogeneous nodes))
  in
  let nodes = ref p.nodes_min in
  let alloc = ref (alloc_for ~hour:0. !nodes) in
  (* The self-healing loop observes the same sink the day serves on.  It
     re-measures from scratch after every autoscaler resize (the resize
     resets the assumed mix via [set_allocation]); a control cutover's
     canary blocks resizes for its duration, so the two reallocation
     paths never overlap. *)
  let loop =
    if p.autotune then
      Some (Loop.create ~config:Fig_drift.control_default ~sink
              ~allocation:!alloc ())
    else None
  in
  let pending_ctl = ref [] in
  let busy_acc = Array.make p.nodes_max 0. in
  let offered = ref 0 and completed = ref 0 in
  let shed = ref 0 and failed = ref 0 in
  let retries = ref 0 and hedges = ref 0 in
  let wasted = ref 0. and events = ref 0 in
  let bytes_moved = ref 0. and migrations = ref 0 and faults_n = ref 0 in
  let rows = ref [] in
  for w = 0 to steps - 1 do
    let t0 = float_of_int w *. window_s in
    let hour = t0 /. 3600. in
    let rate10 = Trace.rate_per_10min ~hour *. p.scale in
    (* Autoscale for the window: 25 % headroom over the offered rate,
       clamped to the configured cluster bounds. *)
    let qps = rate10 /. 600. in
    let target =
      max p.nodes_min
        (min p.nodes_max
           (int_of_float (ceil (qps *. 1.25 /. p.capacity_per_node))))
    in
    (* A resize deploys as a live migration: the new placement serves from
       the window boundary while its copy traffic contends with foreground
       service on every backend it touches (one merged slowdown window per
       backend, clamped to this simulation window). *)
    (* A control cutover's canary owns the cluster until it commits or
       rolls back: the autoscaler stands down for those windows (TRC016
       forbids overlapping reallocations). *)
    let resizable =
      match loop with Some l -> not (Loop.migrating l) | None -> true
    in
    let mig_faults, migrating =
      if target = !nodes || not resizable then ([], false)
      else begin
        let next = alloc_for ~hour target in
        let old_fragments =
          List.init (Allocation.num_backends !alloc)
            (Allocation.fragments_of !alloc)
        in
        let plan = Planner.make ~old_fragments next in
        let schedule =
          Schedule.make ~start:t0 ~bandwidth:p.bandwidth_mb_s plan
        in
        bytes_moved := !bytes_moved +. plan.Planner.copy_mb;
        incr migrations;
        Tel.Sink.ev telemetry ~at:t0 "migration.start"
          [ ("from_nodes", Tel.Trace.Int !nodes);
            ("to_nodes", Tel.Trace.Int target);
            ("copy_mb", Tel.Trace.Float plan.Planner.copy_mb) ];
        Tel.Sink.ev telemetry ~at:schedule.Schedule.copy_done
          "migration.copy_done"
          [ ("copy_mb", Tel.Trace.Float plan.Planner.copy_mb) ];
        nodes := target;
        alloc := next;
        (* The resize resets the loop's assumed mix: it re-measures
           against the freshly planned allocation from here on. *)
        (match loop with
        | Some l -> Loop.set_allocation l next
        | None -> ());
        let spans : (int, float * float) Hashtbl.t = Hashtbl.create 8 in
        let touch b s e =
          if b >= 0 && b < target && e > s then
            match Hashtbl.find_opt spans b with
            | None -> Hashtbl.replace spans b (s, e)
            | Some (s0, e0) ->
                Hashtbl.replace spans b (min s0 s, max e0 e)
        in
        List.iter
          (fun (tm : Schedule.timed_move) ->
            let s = max t0 tm.Schedule.start in
            let e = min (t0 +. window_s) tm.Schedule.finish in
            touch tm.Schedule.move.Planner.dest s e;
            match tm.Schedule.move.Planner.source with
            | Some src -> touch src s e
            | None -> ())
          schedule.Schedule.moves;
        let faults =
          Hashtbl.fold
            (fun b (s, e) acc ->
              Fault.slowdown ~at:s ~backend:b
                ~factor:(1. +. p.copy_slowdown) ~duration:(e -. s)
              :: acc)
            spans []
        in
        (faults, true)
      end
    in
    (* Chaos for the window: crash/recover renewals, capped at the k=1
       guarantee.  (Slowdown-type chaos is off so the migration-contention
       slowdowns above can never overlap another slowdown on a backend.) *)
    let crng = Rng.split rng in
    let chaos =
      Chaos.generate ~rng:crng ~num_backends:!nodes
        {
          Chaos.mtbf = p.mtbf;
          mttr = p.mttr;
          horizon = window_s;
          slowdown_prob = 0.;
          slowdown_factor = 3.;
          max_concurrent_down = Some 1;
          correlated_mtbf = None;
          partition_prob = 0.5;
          zones = 1;
          shift_mtbf = None;
          shift_mixes = [];
        }
      |> List.map (fun (f : Fault.timed) ->
             { f with Fault.at = f.Fault.at +. t0 })
    in
    let faults = Fault.sort (mig_faults @ !pending_ctl @ chaos) in
    pending_ctl := [];
    faults_n := !faults_n + List.length faults;
    (* The window's offered load, arrivals uniform over the window. *)
    let wrng = Rng.split rng in
    let n_req = int_of_float (rate10 *. p.window_minutes /. 10.) in
    let requests =
      Spec.requests ~rng:wrng ~n:n_req (Trace.specs_at ~hour)
      |> List.map (fun (r : Request.t) ->
             { r with Request.arrival = t0 +. Rng.float wrng window_s })
    in
    let config = Simulator.homogeneous_config !nodes in
    let rrng = Rng.split rng in
    let fo =
      Simulator.run_open_with_faults ~rng:rrng ~resilience ~telemetry:sink
        ?monitor config !alloc requests ~faults
    in
    offered := !offered + fo.Simulator.offered;
    completed := !completed + fo.Simulator.run.Simulator.completed;
    shed := !shed + fo.Simulator.shed;
    failed := !failed + (fo.Simulator.aborted - fo.Simulator.shed);
    retries := !retries + fo.Simulator.retries;
    hedges := !hedges + fo.Simulator.hedged;
    wasted := !wasted +. fo.Simulator.wasted_work;
    events := !events + fo.Simulator.events;
    Array.iteri
      (fun b busy -> if b < p.nodes_max then
          busy_acc.(b) <- busy_acc.(b) +. busy)
      fo.Simulator.run.Simulator.busy;
    let w_p99_ms = p99_ms_of fo.Simulator.responses in
    (* Feed the window to the control loop and execute its directive as a
       live migration cutting over at the next window boundary, with copy
       contention exactly like a resize's. *)
    (match loop with
    | None -> ()
    | Some loop ->
        let availability =
          if fo.Simulator.offered = 0 then 1.
          else
            float_of_int fo.Simulator.run.Simulator.completed
            /. float_of_int fo.Simulator.offered
        in
        let migrate next =
          let old_fragments =
            List.init (Allocation.num_backends !alloc)
              (Allocation.fragments_of !alloc)
          in
          let plan = Planner.make ~old_fragments next in
          let t_next = t0 +. window_s in
          let schedule =
            Schedule.make ~start:t_next ~bandwidth:p.bandwidth_mb_s plan
          in
          bytes_moved := !bytes_moved +. plan.Planner.copy_mb;
          incr migrations;
          Tel.Sink.ev telemetry ~at:t_next "migration.start"
            [ ("copy_mb", Tel.Trace.Float plan.Planner.copy_mb) ];
          Tel.Sink.ev telemetry ~at:schedule.Schedule.copy_done
            "migration.copy_done"
            [ ("copy_mb", Tel.Trace.Float plan.Planner.copy_mb) ];
          let spans : (int, float * float) Hashtbl.t = Hashtbl.create 8 in
          let touch b s e =
            if b >= 0 && b < !nodes && e > s then
              match Hashtbl.find_opt spans b with
              | None -> Hashtbl.replace spans b (s, e)
              | Some (s0, e0) ->
                  Hashtbl.replace spans b (min s0 s, max e0 e)
          in
          List.iter
            (fun (tm : Schedule.timed_move) ->
              let s = max t_next tm.Schedule.start in
              let e = min (t_next +. window_s) tm.Schedule.finish in
              touch tm.Schedule.move.Planner.dest s e;
              match tm.Schedule.move.Planner.source with
              | Some src -> touch src s e
              | None -> ())
            schedule.Schedule.moves;
          pending_ctl :=
            Hashtbl.fold
              (fun b (s, e) acc ->
                Fault.slowdown ~at:s ~backend:b
                  ~factor:(1. +. p.copy_slowdown) ~duration:(e -. s)
                :: acc)
              spans [];
          alloc := next
        in
        match
          Loop.observe_window loop ~at:(t0 +. window_s)
            ~p99_s:(w_p99_ms /. 1000.) ~availability
        with
        | Loop.Stay -> ()
        | Loop.Cutover { next; _ } -> migrate next
        | Loop.Rollback { prev; _ } -> migrate prev);
    rows :=
      {
        hour;
        rate_per_10min = rate10;
        nodes = !nodes;
        w_offered = fo.Simulator.offered;
        w_completed = fo.Simulator.run.Simulator.completed;
        w_shed = fo.Simulator.shed;
        w_p99_ms;
        migrating;
        w_faults = List.length faults;
      }
      :: !rows
  done;
  let day_hist =
    match Tel.Metrics.find_histogram sink.Tel.Sink.metrics "sim.response_s" with
    | Some h -> h
    | None -> Tel.Histogram.create ()
  in
  let reallocations, rollbacks, drift_score =
    match loop with
    | Some l -> (Loop.reallocations l, Loop.rollbacks l, Loop.peak_score l)
    | None -> (0, 0, 0.)
  in
  let report =
    Tel.Slo_report.of_histogram ~duration_s:day_s ~offered:!offered
      ~completed:!completed ~shed:!shed ~failed:!failed ~wasted_work_s:!wasted
      ~retries:!retries ~hedges:!hedges ~bytes_moved_mb:!bytes_moved
      ~migrations:!migrations ~faults_injected:!faults_n
      ~trace_dropped:(Tel.Trace.dropped sink.Tel.Sink.trace)
      ~reallocations ~rollbacks ~drift_score
      ~utilization:
        (List.init p.nodes_max (fun b -> (b, busy_acc.(b) /. day_s)))
      day_hist
  in
  (match loop with Some l -> Loop.detach l | None -> ());
  let wall_s = Sys.time () -. t_begin in
  {
    params = p;
    report;
    windows = List.rev !rows;
    events = !events;
    wall_s;
    events_per_s =
      (if wall_s > 0. then float_of_int !events /. wall_s else 0.);
    sink;
  }

let to_json ?(monitor_violations = 0) r =
  Printf.sprintf
    "{\"name\":\"fig_day\",\"seed\":%d,\"scale\":%g,\"window_minutes\":%g,\
     \"nodes_min\":%d,\"nodes_max\":%d,\"autotune\":%b,\"windows\":%d,\
     \"events\":%d,\"wall_s\":%.3f,\"events_per_s\":%.0f,\
     \"trace_dropped\":%d,\"monitor_violations\":%d,\"slo\":%s}"
    r.params.seed r.params.scale r.params.window_minutes r.params.nodes_min
    r.params.nodes_max r.params.autotune (List.length r.windows) r.events
    r.wall_s r.events_per_s r.report.Tel.Slo_report.trace_dropped
    monitor_violations
    (Tel.Slo_report.to_json r.report)

let write_json ?monitor_violations ~path r =
  let oc = open_out path in
  output_string oc (to_json ?monitor_violations r);
  output_char oc '\n';
  close_out oc

let print_all () =
  Common.header
    "A day in production: diurnal load x autoscaling x live migration x \
     chaos x defenses";
  let r = run () in
  Fmt.pr "%6s%10s%7s%9s%10s%7s%10s%5s%8s@." "hour" "rate/10m" "nodes"
    "offered" "completed" "shed" "p99(ms)" "mig" "faults";
  List.iter
    (fun w ->
      Fmt.pr "%6.1f%10.0f%7d%9d%10d%7d%10.1f%5s%8d@." w.hour
        w.rate_per_10min w.nodes w.w_offered w.w_completed w.w_shed
        w.w_p99_ms
        (if w.migrating then "yes" else "")
        w.w_faults)
    r.windows;
  Fmt.pr "@.%a@." Tel.Slo_report.pp r.report;
  Fmt.pr "@.%d events in %.1f s (%.0f events/s)@." r.events r.wall_s
    r.events_per_s
