(** Live migration experiment: response-time timeline while a rebalance
    executes in the background, and bytes shipped vs. a full rebuild.

    The scenario replays the e-learning trace's day mix against a cluster
    still allocated for the night mix; at [migrate_at] the live rebalancer
    starts deploying the day allocation under a bandwidth throttle.  The
    timeline shows the three phases: steady state before, degraded (but
    fully served — zero routing errors) during the copy, and the improved
    target allocation after. *)

type point = {
  t0 : float;  (** bucket start, seconds *)
  t1 : float;  (** bucket end *)
  avg_ms : float;  (** mean response of requests arriving in the bucket *)
  n : int;  (** requests in the bucket *)
  phase : string;  (** ["before"], ["copy"] or ["after"] *)
}

type report = {
  timeline : point list;
  copy_start : float;
  copy_done : float;
  copied_mb : float;  (** shipped by the live plan *)
  full_rebuild_mb : float;  (** a stop-the-world rebuild would ship this *)
  replayed_mb : float;  (** delta-journal volume replayed at cutovers *)
  before_ms : float;  (** mean response before the migration starts *)
  during_ms : float;  (** mean response while copies are in flight *)
  after_ms : float;  (** mean response once the target is deployed *)
  errors : int;
  min_live_replicas : int;
      (** minimum over classes of simultaneously live replicas *)
  target_deployed : bool;
}

val plan :
  ?nodes:int -> ?from_hour:float -> ?to_hour:float -> unit ->
  Cdbs_migration.Planner.plan
(** The migration plan of the scenario (the [cdbs migrate --show-plan]
    view): greedy allocation for the [from_hour] mix rebalanced to the
    [to_hour] mix. *)

val scenario :
  ?nodes:int ->
  ?bandwidth:float ->
  ?rate_per_s:float ->
  ?duration:float ->
  ?migrate_at:float ->
  ?buckets:int ->
  ?seed:int ->
  ?from_hour:float ->
  ?to_hour:float ->
  unit ->
  report
(** Defaults: 4 nodes, 2 MB/s throttle, 40 requests/s over 600 s,
    migration starting at t = 150 s, 20 timeline buckets, night (4 h) to
    midday (14 h) allocations. *)

val print_all : unit -> unit
