module Trace = Cdbs_workloads.Trace
module Spec = Cdbs_workloads.Spec
module Greedy = Cdbs_core.Greedy
module Backend = Cdbs_core.Backend
module Allocation = Cdbs_core.Allocation
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Rng = Cdbs_util.Rng

type point = {
  t0 : float;
  t1 : float;
  avg_ms : float;
  n : int;
  phase : string;
}

type report = {
  timeline : point list;
  copy_start : float;
  copy_done : float;
  copied_mb : float;
  full_rebuild_mb : float;
  replayed_mb : float;
  before_ms : float;
  during_ms : float;
  after_ms : float;
  errors : int;
  min_live_replicas : int;
  target_deployed : bool;
}

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let allocations ~nodes ~from_hour ~to_hour =
  (* The cluster still runs the off-peak allocation when the new mix hits. *)
  let old_alloc =
    Greedy.allocate (Trace.workload_at ~hour:from_hour)
      (Backend.homogeneous nodes)
  in
  let target =
    Greedy.allocate (Trace.workload_at ~hour:to_hour)
      (Backend.homogeneous nodes)
  in
  (old_alloc, target)

(* Plans built here self-verify (expand-then-contract, placement equation,
   replica floors) whenever debug checks are active — which they are for
   every experiment run, since loading Common installs the verifier. *)
let checked_plan ~context target plan =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_migration.check_plan_exn ~context
      ~workload:(Allocation.workload target) plan;
  plan

let checked_schedule ~context schedule =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_migration.check_schedule_exn ~context schedule;
  schedule

let plan ?(nodes = 4) ?(from_hour = 4.) ?(to_hour = 14.) () =
  let old_alloc, target = allocations ~nodes ~from_hour ~to_hour in
  let old_fragments = List.init nodes (Allocation.fragments_of old_alloc) in
  checked_plan ~context:"Fig_migration.plan" target
    (Planner.make ~old_fragments target)

let scenario ?(nodes = 4) ?(bandwidth = 2.) ?(rate_per_s = 40.)
    ?(duration = 600.) ?(migrate_at = 150.) ?(buckets = 20) ?(seed = 11)
    ?(from_hour = 4.) ?(to_hour = 14.) () =
  let rng = Rng.create seed in
  let old_alloc, target = allocations ~nodes ~from_hour ~to_hour in
  let old_fragments =
    List.init nodes (Allocation.fragments_of old_alloc)
  in
  let plan =
    checked_plan ~context:"Fig_migration.scenario" target
      (Planner.make ~old_fragments target)
  in
  let schedule =
    checked_schedule ~context:"Fig_migration.scenario"
      (Schedule.make ~start:migrate_at ~bandwidth plan)
  in
  let n = int_of_float (rate_per_s *. duration) in
  let requests =
    List.map
      (fun (r : Request.t) ->
        { r with Request.arrival = Rng.float rng duration })
      (Spec.requests ~rng ~n (Trace.specs_at ~hour:to_hour))
  in
  let config = Simulator.homogeneous_config plan.Planner.num_physical in
  let mo = Simulator.run_open_with_migration config ~target ~schedule requests in
  let copy_done = mo.Simulator.copy_done in
  let phase_of at =
    if at < migrate_at then "before"
    else if at < copy_done then "copy"
    else "after"
  in
  let width = duration /. float_of_int buckets in
  let sums = Array.make buckets 0. and counts = Array.make buckets 0 in
  List.iter
    (fun (arrival, response) ->
      let b = min (buckets - 1) (int_of_float (arrival /. width)) in
      sums.(b) <- sums.(b) +. response;
      counts.(b) <- counts.(b) + 1)
    mo.Simulator.responses;
  let timeline =
    List.init buckets (fun b ->
        let t0 = float_of_int b *. width in
        {
          t0;
          t1 = t0 +. width;
          avg_ms =
            (if counts.(b) > 0 then 1000. *. sums.(b) /. float_of_int counts.(b)
             else 0.);
          n = counts.(b);
          phase = phase_of (t0 +. (width /. 2.));
        })
  in
  let in_phase p =
    List.filter_map
      (fun (arrival, response) ->
        if phase_of arrival = p then Some response else None)
      mo.Simulator.responses
  in
  {
    timeline;
    copy_start = migrate_at;
    copy_done;
    copied_mb = mo.Simulator.copied_mb;
    full_rebuild_mb = plan.Planner.full_rebuild_mb;
    replayed_mb = mo.Simulator.replayed_mb;
    before_ms = 1000. *. mean (in_phase "before");
    during_ms = 1000. *. mean (in_phase "copy");
    after_ms = 1000. *. mean (in_phase "after");
    errors = mo.Simulator.run.Simulator.errors;
    min_live_replicas =
      List.fold_left
        (fun acc (_, m) -> min acc m)
        max_int mo.Simulator.min_live_replicas;
    target_deployed = mo.Simulator.target_deployed;
  }

let print_all () =
  Common.header "Live migration: response-time timeline during a rebalance";
  let r = scenario () in
  Fmt.pr "%10s%10s%12s%8s  %s@." "from(s)" "to(s)" "resp(ms)" "req" "phase";
  List.iter
    (fun p ->
      Fmt.pr "%10.0f%10.0f%12.2f%8d  %s@." p.t0 p.t1 p.avg_ms p.n p.phase)
    r.timeline;
  Fmt.pr
    "copy phase %.0fs - %.0fs; response before %.2f ms, during copy %.2f ms, \
     after %.2f ms@."
    r.copy_start r.copy_done r.before_ms r.during_ms r.after_ms;
  Fmt.pr
    "shipped %.1f MB live (full rebuild would ship %.1f MB, %.0f%% saved), \
     replayed %.2f MB of deltas@."
    r.copied_mb r.full_rebuild_mb
    (100. *. (1. -. (r.copied_mb /. r.full_rebuild_mb)))
    r.replayed_mb;
  Fmt.pr
    "routing errors: %d, min live replicas per class: %d, target deployed: \
     %b@."
    r.errors r.min_live_replicas r.target_deployed
