(** Overload protection & gray-failure mitigation (fig_overload).

    The paper's allocation layer balances load under the assumption that
    every backend is healthy; this experiment measures what the runtime
    defenses buy when that assumption breaks.  On the same seeded
    open-arrival workload, with one backend slowed by a {!Cdbs_faults}
    [Slowdown] for the middle half of the run, it compares:

    - {e undefended}: clients abandon requests at their deadline but the
      system has no server-side defense — doomed reads are still served
      (wasted capacity), the slow backend keeps taking its share of
      traffic, and stragglers are never hedged;
    - {e defended}: admission control + circuit breakers + hedged reads +
      deadline budgets ({!Cdbs_resilience}).

    The acceptance criterion of the PR: the defended run improves p99 and
    keeps availability at least at the undefended level, with zero shed
    updates. *)

type run_stats = {
  offered : int;
  completed : int;
  availability : float;  (** completed / offered — the goodput ratio *)
  avg_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  shed : int;  (** reads refused by admission control *)
  shed_updates : int;  (** always 0 — the ROWA-preservation witness *)
  timeouts : int;  (** deadline expiries (client abandoned) *)
  hedged : int;
  hedge_wins : int;
  breaker_trips : int;
  wasted_s : float;  (** service seconds spent on doomed/losing work *)
  utilization : float array;  (** per-backend busy fraction *)
  offered_updates : int;
  completed_updates : int;
}

type comparison = {
  rate_per_s : float;
  undefended : run_stats;
  defended : run_stats;
}

type report = {
  sweep : comparison list;
  nodes : int;
  slow_backend : int;
  slow_factor : float;
  deadline_s : float;
}

val requests :
  seed:int -> rate_per_s:float -> duration:float -> Cdbs_cluster.Request.t list
(** The seeded open-arrival workload both arms replay (midday e-learning
    mix, uniform arrivals). *)

val clients_only : deadline_s:float -> Cdbs_resilience.Policy.t
(** Deadline-abandoning clients, no server-side defense. *)

val defenses : deadline_s:float -> Cdbs_resilience.Policy.t
(** The full defended bundle: admission (pending watermark at 80 % of the
    deadline), default breaker, default hedging, deadline budgets. *)

val compare_at :
  ?nodes:int ->
  ?seed:int ->
  ?duration:float ->
  ?slow_factor:float ->
  ?deadline_s:float ->
  ?slow_backend:int ->
  ?telemetry:Cdbs_telemetry.Sink.t ->
  ?monitor:Cdbs_analysis.Monitor.t ->
  rate_per_s:float ->
  unit ->
  int * comparison
(** One undefended/defended pair at the given offered rate.  Returns the
    slowed backend (by default the busiest backend of a clean probe run —
    the victim that hurts most) and the comparison.  Deterministic per
    seed.  [telemetry] and [monitor] observe both arms (the clean probe
    run is not observed — it uses the plain
    {!Cdbs_cluster.Simulator.run_open}). *)

val sweep :
  ?nodes:int ->
  ?seed:int ->
  ?duration:float ->
  ?slow_factor:float ->
  ?deadline_s:float ->
  ?rates:float list ->
  ?monitor:Cdbs_analysis.Monitor.t ->
  unit ->
  report
(** {!compare_at} across offered rates (default 60/120/240/360 req/s). *)

val acceptance : comparison -> bool * string list
(** The PR's acceptance predicate: defended p99 <= undefended p99,
    defended availability >= undefended, zero shed updates in both arms,
    and every offered update committed in the defended run.  Returns
    [(ok, violations)]. *)

val pp_stats : Format.formatter -> string * run_stats -> unit
(** One-line rendering of a labelled arm, shared with the CLI. *)

val print_all : unit -> unit
