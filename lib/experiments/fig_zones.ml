module Trace = Cdbs_workloads.Trace
module Spec = Cdbs_workloads.Spec
module Backend = Cdbs_core.Backend
module Ksafety = Cdbs_core.Ksafety
module Topology = Cdbs_core.Topology
module Allocation = Cdbs_core.Allocation
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Fault = Cdbs_faults.Fault
module Rng = Cdbs_util.Rng
module Histogram = Cdbs_telemetry.Histogram
module Workload = Cdbs_core.Workload

type side = {
  label : string;
  victim_zone : int;
  zone_members : int list;
  min_spread : int;
  spread_ok : bool;
  dead_weight : float;
  effective_k_outage : int;
  availability : float;
  aborted : int;
  retried : int;
  p99_ms : float;
}

type report = {
  nodes : int;
  zones : int;
  k : int;
  outage_at : float;
  outage_ends : float;
  aware : side;
  naive : side;
  verdict : bool;
}

let checked_alloc ?topology ~context ~k alloc =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_allocation.check_exn ~k ?topology ~context alloc;
  alloc

(* Racks are contiguous index ranges — the layout under which a
   topology-blind allocator stacks replicas the way real ones do, by
   filling neighbouring machines first. *)
let rack_topology ~zones nodes =
  Topology.make (Array.init nodes (fun b -> b * zones / nodes))

let requests ~seed ~rate_per_s ~duration =
  let rng = Rng.create seed in
  let n = int_of_float (rate_per_s *. duration) in
  List.map
    (fun (r : Request.t) -> { r with Request.arrival = Rng.float rng duration })
    (Spec.requests ~rng ~n (Trace.specs_at ~hour:14.))

let p99_ms responses =
  let h = Histogram.create () in
  List.iter (fun (_, r) -> Histogram.record h r) responses;
  1000. *. Histogram.percentile h 99.

(* Weight that dies with zone [z]: classes whose every replica lives
   inside it.  The adversarial victim is the zone maximizing this —
   exactly the correlated failure domain-aware placement is built to
   deny. *)
let dead_weight ~topology alloc z =
  List.fold_left
    (fun acc (c : Cdbs_core.Query_class.t) ->
      let holders = Ksafety.class_holders alloc c in
      if
        holders <> []
        && List.for_all (fun b -> Topology.zone_of topology b = z) holders
      then acc +. c.Cdbs_core.Query_class.weight
      else acc)
    0.
    (Workload.all_classes (Allocation.workload alloc))

let pick_victim ~topology alloc =
  let best = ref 0 and best_key = ref (neg_infinity, max_int) in
  for z = 0 to Topology.zones topology - 1 do
    let dw = dead_weight ~topology alloc z in
    let ek =
      Ksafety.effective_k ~failed:(Topology.backends_in topology z) alloc
    in
    (* Most dead weight first; then the zone whose loss drops effective k
       the furthest (compare on [-ek] so a bigger drop wins). *)
    if (dw, -ek) > !best_key then begin
      best := z;
      best_key := (dw, -ek)
    end
  done;
  !best

let min_spread ~topology alloc =
  List.fold_left
    (fun acc c -> min acc (Ksafety.class_zone_spread ~topology alloc c))
    max_int
    (Workload.all_classes (Allocation.workload alloc))

let run_side ?monitor ~label ~topology ~k ~config ~reqs ~outage_at
    ~outage_duration alloc =
  let victim = pick_victim ~topology alloc in
  let members = Topology.backends_in topology victim in
  let faults =
    [ Fault.zone_outage ~at:outage_at ~zone:victim ~duration:outage_duration ]
  in
  let fo =
    Simulator.run_open_with_faults ?monitor ~topology config alloc reqs ~faults
  in
  {
    label;
    victim_zone = victim;
    zone_members = members;
    min_spread = min_spread ~topology alloc;
    spread_ok = Ksafety.spread_ok ~topology ~k alloc;
    dead_weight = dead_weight ~topology alloc victim;
    effective_k_outage = Ksafety.effective_k ~failed:members alloc;
    availability = fo.Simulator.availability;
    aborted = fo.Simulator.aborted;
    retried = fo.Simulator.retried_requests;
    p99_ms = p99_ms fo.Simulator.responses;
  }

(* Same workload, same seed, same adversarial full-zone outage; the only
   difference is whether the allocator saw the topology. *)
let compare_placements ?(nodes = 6) ?(zones = 2) ?(k = 1) ?(rate_per_s = 20.)
    ?(duration = 300.) ?(seed = 11) ?monitor () =
  let workload = Trace.workload_at ~hour:14. in
  let topology = rack_topology ~zones nodes in
  let backends = Backend.homogeneous nodes in
  let aware_alloc =
    checked_alloc ~topology ~context:"Fig_zones aware" ~k
      (Ksafety.allocate ~topology ~k workload backends)
  in
  let naive_alloc =
    checked_alloc ~context:"Fig_zones naive" ~k
      (Ksafety.allocate ~k workload backends)
  in
  let config = Simulator.homogeneous_config nodes in
  let reqs = requests ~seed ~rate_per_s ~duration in
  let outage_at = duration /. 4. and outage_duration = duration /. 2. in
  let run = run_side ?monitor ~k ~config ~reqs ~outage_at ~outage_duration in
  let aware = run ~label:"domain-aware" ~topology aware_alloc in
  let naive = run ~label:"naive" ~topology naive_alloc in
  {
    nodes;
    zones;
    k;
    outage_at;
    outage_ends = outage_at +. outage_duration;
    aware;
    naive;
    verdict = aware.availability >= 0.99 && naive.availability < 0.90;
  }

let print_side s =
  Fmt.pr
    "%-13s zone %d down (backends %a): spread>=%d %s, dead weight %.3f, \
     effective k %d@."
    s.label s.victim_zone
    Fmt.(list ~sep:(any ",") int)
    s.zone_members s.min_spread
    (if s.spread_ok then "(spread ok)" else "(spread VIOLATED)")
    s.dead_weight s.effective_k_outage;
  Fmt.pr
    "%-13s availability %.4f, aborted %d, retried %d, p99 %.1f ms@." s.label
    s.availability s.aborted s.retried s.p99_ms

let print_all () =
  Common.header "Zone outage: domain-aware vs naive k-safe placement";
  let r = compare_placements () in
  Fmt.pr
    "%d backends in %d zones, k=%d; full-zone outage %.0fs - %.0fs \
     (adversarial victim per placement)@."
    r.nodes r.zones r.k r.outage_at r.outage_ends;
  print_side r.aware;
  print_side r.naive;
  Fmt.pr "verdict: %s@."
    (if r.verdict then
       "domain-aware placement survives the outage the naive one cannot"
     else "INCONCLUSIVE — tune the scenario")
