(** The CDBS controller — the middleware of the paper's prototype (Fig. 3).

    Owns a set of backend databases (each an independent in-memory
    {!Cdbs_storage} engine holding a subset of the tables), routes incoming
    SQL by the least-pending rule, applies updates read-once/write-all, and
    records every request in the query history.  Switching to allocation
    mode classifies the history, computes a new allocation (greedy +
    memetic), matches it cost-minimally against the running placement and
    rebuilds the backends.

    Physical placement is table-granular (the storage engine stores whole
    tables); column-granular allocations are exercised at the model and
    simulation level. *)

type t

val create :
  schema:Cdbs_storage.Schema.t ->
  rows:(string * int) list ->
  backends:int ->
  seed:int ->
  t
(** Bootstrap: generate data, start [backends] fully replicated backend
    databases (the paper's initial configuration used to collect a first
    weight distribution).  Read routing is guarded by a circuit breaker
    with {!Cdbs_resilience.Breaker.default_config}; see
    {!set_breaker_config}. *)

val submit : t -> string -> (Cdbs_storage.Executor.result, string) result
(** Route and execute one SQL statement; reads run on the least-pending
    eligible backend, updates on every backend holding the touched tables
    (and on the controller's authoritative master copy).  The request and
    its cost are recorded in the query history.

    Read routing consults the circuit breaker: backends whose breaker is
    open are skipped unless every eligible backend's is (fail open).
    Each read's estimated cost feeds the breaker as a latency sample;
    execution errors feed its error window.  The breaker clock is the
    controller's request counter, so [cool_down] is measured in submitted
    statements. *)

val journal : t -> Cdbs_core.Journal.t
val allocation : t -> Cdbs_core.Allocation.t option
(** [None] while fully replicated (before the first reallocation). *)

val breaker : t -> Cdbs_resilience.Breaker.t
(** The controller's circuit breaker — inspect per-backend health or
    force states ({!Cdbs_resilience.Breaker.force_open}) for operational
    overrides and tests. *)

val set_breaker_config : t -> Cdbs_resilience.Breaker.config -> unit
(** Replace the breaker with a fresh one under [config] (all backends
    Closed, statistics cleared). *)

val backend_tables : t -> string list list
(** Per backend, the tables it currently stores. *)

val reallocate : t -> ?iterations:int -> unit -> (float, string) result
(** Allocation mode: classify the history at table granularity, run greedy
    plus memetic improvement, deploy via Hungarian matching and bulk table
    copies.  Returns the total megabytes shipped.  Fails when the history
    is empty or a live migration is in progress.  This is the
    stop-the-world path; see {!reallocate_live} for the online one. *)

(** {1 Live migration}

    The online deployment path: the same Hungarian-matched target as
    {!reallocate}, executed as an ordered sequence of per-table snapshot
    copies while the controller keeps serving.  Each {!submit} ships the
    configured bandwidth budget of copy work; updates touching a table
    whose snapshot is on the wire are captured and replayed just before
    that table cuts over on its destination.  Surplus copies are dropped
    only after every copy has cut over (expand-then-contract), so no table
    — and hence no query class — ever loses its last serving replica. *)

type migration_progress = {
  tables_total : int;  (** copies the plan calls for *)
  tables_done : int;  (** copies already cut over *)
  mb_total : float;  (** total megabytes to ship *)
  mb_shipped : float;  (** megabytes shipped so far *)
  delta_pending : int;  (** captured statements awaiting replay *)
  replayed_statements : int;  (** delta statements replayed so far *)
}

val begin_reallocate_live :
  t ->
  ?iterations:int ->
  ?bandwidth_mb_per_request:float ->
  unit ->
  (Cdbs_migration.Planner.plan, string) result
(** Start a live reallocation (default throttle: 5 MB of copy work per
    submitted request).  Returns the migration plan; the copy work itself
    is performed incrementally by subsequent {!submit} calls and
    {!drive_migration}. *)

val is_migrating : t -> bool

val migration_progress : t -> migration_progress option
(** [None] when no migration is active. *)

val drive_migration : t -> ?budget_mb:float -> unit -> unit
(** Pump the background copier without submitting a request — e.g. to let
    an idle system finish its rebalance.  Without [budget_mb] the whole
    remaining migration completes. *)

val reallocate_live :
  t ->
  ?iterations:int ->
  ?bandwidth_mb_per_request:float ->
  unit ->
  (float, string) result
(** {!begin_reallocate_live} driven straight to completion; returns the
    megabytes shipped.  Equivalent to the offline {!reallocate} in outcome
    but exercises the snapshot / delta-replay / cutover pipeline. *)

val stats : t -> int * float
(** [(processed, total_cost)]: requests processed and their accumulated
    cost since creation. *)

(** {1 Self-tuning} *)

type autotune_outcome =
  | Tuned of { score : float; shipped_mb : float }
      (** drift fired and the live reallocation completed *)
  | No_drift of float  (** the detector did not fire; the score observed *)
  | Insufficient_history  (** fewer than [min_requests] journal entries *)
  | Migration_in_progress
  | Tune_failed of string  (** detector fired but the reallocation errored *)

val autotune :
  t ->
  ?drift:Cdbs_control.Drift.config ->
  ?iterations:int ->
  ?bandwidth_mb_per_request:float ->
  ?min_requests:int ->
  unit ->
  autotune_outcome
(** One turn of the self-healing control loop over the live prototype:
    classify the query history at table granularity, score the measured
    read mix against the deployed allocation's assumed weights
    ({!Cdbs_control.Drift.score}; a still-fully-replicated controller
    counts as infinite drift), and when the detector fires run
    {!reallocate_live} to completion.  The detector persists across
    calls — hysteresis and cooldown apply — and is replaced whenever a
    different [drift] config is passed.  Like the breaker, its clock is
    the request counter, so [cooldown_s] is measured in submitted
    statements.  [min_requests] (default 50) guards against tuning on a
    thin history. *)

(** {1 Crash / rejoin lifecycle and k-safety self-repair}

    A failed backend takes no traffic: reads route to surviving holders,
    updates apply ROWA to the master and the up holders only, so the down
    copy diverges.  {!rejoin_backend} re-admits it only after re-shipping
    its hosted tables from the authoritative master — the controller-level
    catch-up gate.  {!repair} restores the k-safety target while serving,
    by re-replicating under-replicated classes onto survivors. *)

val fail_backend : t -> backend:int -> unit
(** Mark the backend as crashed (idempotent).
    @raise Invalid_argument on an out-of-range index. *)

val rejoin_backend : t -> backend:int -> float
(** Bring a failed backend back: rebuild every table it should host under
    the current allocation (all tables while fully replicated) from the
    master, then re-admit it.  Returns the megabytes shipped — the rejoin's
    catch-up volume, including any copy obligations a {!repair} assigned to
    the node while it was down.  [0.] when the backend was already up. *)

val is_backend_up : t -> backend:int -> bool

val failed_backends : t -> int list
(** Indices of currently-failed backends, ascending. *)

val effective_k : t -> int
(** The k-safety degree in force right now, ignoring failed backends
    ({!Cdbs_core.Ksafety.effective_k}).  While fully replicated it is the
    surviving backend count minus 1; [-1] means some query class has no
    live replica. *)

val repair :
  ?topology:Cdbs_core.Topology.t -> t -> k:int -> (float, string) result
(** Self-repair loop body: when [effective_k t < k], re-replicate every
    under-replicated query class onto surviving backends
    ({!Cdbs_core.Ksafety.repair}) and ship the new copies from the master.
    Returns the megabytes shipped ([0.] when already k-safe).  Fails when a
    live migration is in progress, no allocation is deployed and too few
    backends survive, or fewer than [k + 1] backends are up.

    With [topology] the repair target includes {e spread}: even when the
    replica count is intact, a run is triggered if some class's surviving
    replicas span fewer than [min (k+1, live zones)] fault domains
    ({!Cdbs_core.Ksafety.spread_ok}) — losing a zone must never leave a
    class one outage away from extinction. *)
